file(REMOVE_RECURSE
  "CMakeFiles/KocherTest.dir/tests/KocherTest.cpp.o"
  "CMakeFiles/KocherTest.dir/tests/KocherTest.cpp.o.d"
  "KocherTest"
  "KocherTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/KocherTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
