# Empty compiler generated dependencies file for KocherTest.
# This may be replaced when dependencies are built.
