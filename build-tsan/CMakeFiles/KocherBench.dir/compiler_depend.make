# Empty compiler generated dependencies file for KocherBench.
# This may be replaced when dependencies are built.
