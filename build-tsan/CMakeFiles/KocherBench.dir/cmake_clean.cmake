file(REMOVE_RECURSE
  "CMakeFiles/KocherBench.dir/bench/KocherBench.cpp.o"
  "CMakeFiles/KocherBench.dir/bench/KocherBench.cpp.o.d"
  "KocherBench"
  "KocherBench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/KocherBench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
