file(REMOVE_RECURSE
  "CMakeFiles/Table2Bench.dir/bench/Table2Bench.cpp.o"
  "CMakeFiles/Table2Bench.dir/bench/Table2Bench.cpp.o.d"
  "Table2Bench"
  "Table2Bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/Table2Bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
