# Empty dependencies file for Table2Bench.
# This may be replaced when dependencies are built.
