file(REMOVE_RECURSE
  "CMakeFiles/MitigationBench.dir/bench/MitigationBench.cpp.o"
  "CMakeFiles/MitigationBench.dir/bench/MitigationBench.cpp.o.d"
  "MitigationBench"
  "MitigationBench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/MitigationBench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
