# Empty dependencies file for MitigationBench.
# This may be replaced when dependencies are built.
