file(REMOVE_RECURSE
  "CMakeFiles/sctcheck.dir/examples/sctcheck.cpp.o"
  "CMakeFiles/sctcheck.dir/examples/sctcheck.cpp.o.d"
  "sctcheck"
  "sctcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sctcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
