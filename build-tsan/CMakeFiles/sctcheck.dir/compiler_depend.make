# Empty compiler generated dependencies file for sctcheck.
# This may be replaced when dependencies are built.
