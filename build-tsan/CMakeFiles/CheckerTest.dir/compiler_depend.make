# Empty compiler generated dependencies file for CheckerTest.
# This may be replaced when dependencies are built.
