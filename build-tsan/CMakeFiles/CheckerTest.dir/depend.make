# Empty dependencies file for CheckerTest.
# This may be replaced when dependencies are built.
