file(REMOVE_RECURSE
  "CMakeFiles/CheckerTest.dir/tests/CheckerTest.cpp.o"
  "CMakeFiles/CheckerTest.dir/tests/CheckerTest.cpp.o.d"
  "CheckerTest"
  "CheckerTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CheckerTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
