file(REMOVE_RECURSE
  "CMakeFiles/ScalingBench.dir/bench/ScalingBench.cpp.o"
  "CMakeFiles/ScalingBench.dir/bench/ScalingBench.cpp.o.d"
  "ScalingBench"
  "ScalingBench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ScalingBench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
