# Empty compiler generated dependencies file for ScalingBench.
# This may be replaced when dependencies are built.
