file(REMOVE_RECURSE
  "CMakeFiles/crypto_audit.dir/examples/crypto_audit.cpp.o"
  "CMakeFiles/crypto_audit.dir/examples/crypto_audit.cpp.o.d"
  "crypto_audit"
  "crypto_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
