# Empty compiler generated dependencies file for crypto_audit.
# This may be replaced when dependencies are built.
