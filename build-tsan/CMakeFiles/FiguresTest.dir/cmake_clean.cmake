file(REMOVE_RECURSE
  "CMakeFiles/FiguresTest.dir/tests/FiguresTest.cpp.o"
  "CMakeFiles/FiguresTest.dir/tests/FiguresTest.cpp.o.d"
  "FiguresTest"
  "FiguresTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/FiguresTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
