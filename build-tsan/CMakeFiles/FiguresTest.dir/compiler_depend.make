# Empty compiler generated dependencies file for FiguresTest.
# This may be replaced when dependencies are built.
