
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/checker/DifferentialChecker.cpp" "CMakeFiles/sct.dir/src/checker/DifferentialChecker.cpp.o" "gcc" "CMakeFiles/sct.dir/src/checker/DifferentialChecker.cpp.o.d"
  "/root/repo/src/checker/FenceInsertion.cpp" "CMakeFiles/sct.dir/src/checker/FenceInsertion.cpp.o" "gcc" "CMakeFiles/sct.dir/src/checker/FenceInsertion.cpp.o.d"
  "/root/repo/src/checker/ProgramRewriter.cpp" "CMakeFiles/sct.dir/src/checker/ProgramRewriter.cpp.o" "gcc" "CMakeFiles/sct.dir/src/checker/ProgramRewriter.cpp.o.d"
  "/root/repo/src/checker/Retpoline.cpp" "CMakeFiles/sct.dir/src/checker/Retpoline.cpp.o" "gcc" "CMakeFiles/sct.dir/src/checker/Retpoline.cpp.o.d"
  "/root/repo/src/checker/SctChecker.cpp" "CMakeFiles/sct.dir/src/checker/SctChecker.cpp.o" "gcc" "CMakeFiles/sct.dir/src/checker/SctChecker.cpp.o.d"
  "/root/repo/src/checker/SequentialCt.cpp" "CMakeFiles/sct.dir/src/checker/SequentialCt.cpp.o" "gcc" "CMakeFiles/sct.dir/src/checker/SequentialCt.cpp.o.d"
  "/root/repo/src/checker/Violation.cpp" "CMakeFiles/sct.dir/src/checker/Violation.cpp.o" "gcc" "CMakeFiles/sct.dir/src/checker/Violation.cpp.o.d"
  "/root/repo/src/core/Configuration.cpp" "CMakeFiles/sct.dir/src/core/Configuration.cpp.o" "gcc" "CMakeFiles/sct.dir/src/core/Configuration.cpp.o.d"
  "/root/repo/src/core/Directive.cpp" "CMakeFiles/sct.dir/src/core/Directive.cpp.o" "gcc" "CMakeFiles/sct.dir/src/core/Directive.cpp.o.d"
  "/root/repo/src/core/Eval.cpp" "CMakeFiles/sct.dir/src/core/Eval.cpp.o" "gcc" "CMakeFiles/sct.dir/src/core/Eval.cpp.o.d"
  "/root/repo/src/core/Machine.cpp" "CMakeFiles/sct.dir/src/core/Machine.cpp.o" "gcc" "CMakeFiles/sct.dir/src/core/Machine.cpp.o.d"
  "/root/repo/src/core/Memory.cpp" "CMakeFiles/sct.dir/src/core/Memory.cpp.o" "gcc" "CMakeFiles/sct.dir/src/core/Memory.cpp.o.d"
  "/root/repo/src/core/Observation.cpp" "CMakeFiles/sct.dir/src/core/Observation.cpp.o" "gcc" "CMakeFiles/sct.dir/src/core/Observation.cpp.o.d"
  "/root/repo/src/core/RegisterFile.cpp" "CMakeFiles/sct.dir/src/core/RegisterFile.cpp.o" "gcc" "CMakeFiles/sct.dir/src/core/RegisterFile.cpp.o.d"
  "/root/repo/src/core/ReorderBuffer.cpp" "CMakeFiles/sct.dir/src/core/ReorderBuffer.cpp.o" "gcc" "CMakeFiles/sct.dir/src/core/ReorderBuffer.cpp.o.d"
  "/root/repo/src/core/ReturnStackBuffer.cpp" "CMakeFiles/sct.dir/src/core/ReturnStackBuffer.cpp.o" "gcc" "CMakeFiles/sct.dir/src/core/ReturnStackBuffer.cpp.o.d"
  "/root/repo/src/core/TransientInstr.cpp" "CMakeFiles/sct.dir/src/core/TransientInstr.cpp.o" "gcc" "CMakeFiles/sct.dir/src/core/TransientInstr.cpp.o.d"
  "/root/repo/src/core/Value.cpp" "CMakeFiles/sct.dir/src/core/Value.cpp.o" "gcc" "CMakeFiles/sct.dir/src/core/Value.cpp.o.d"
  "/root/repo/src/engine/CheckSession.cpp" "CMakeFiles/sct.dir/src/engine/CheckSession.cpp.o" "gcc" "CMakeFiles/sct.dir/src/engine/CheckSession.cpp.o.d"
  "/root/repo/src/isa/AsmParser.cpp" "CMakeFiles/sct.dir/src/isa/AsmParser.cpp.o" "gcc" "CMakeFiles/sct.dir/src/isa/AsmParser.cpp.o.d"
  "/root/repo/src/isa/AsmPrinter.cpp" "CMakeFiles/sct.dir/src/isa/AsmPrinter.cpp.o" "gcc" "CMakeFiles/sct.dir/src/isa/AsmPrinter.cpp.o.d"
  "/root/repo/src/isa/Instruction.cpp" "CMakeFiles/sct.dir/src/isa/Instruction.cpp.o" "gcc" "CMakeFiles/sct.dir/src/isa/Instruction.cpp.o.d"
  "/root/repo/src/isa/Opcode.cpp" "CMakeFiles/sct.dir/src/isa/Opcode.cpp.o" "gcc" "CMakeFiles/sct.dir/src/isa/Opcode.cpp.o.d"
  "/root/repo/src/isa/Program.cpp" "CMakeFiles/sct.dir/src/isa/Program.cpp.o" "gcc" "CMakeFiles/sct.dir/src/isa/Program.cpp.o.d"
  "/root/repo/src/isa/ProgramBuilder.cpp" "CMakeFiles/sct.dir/src/isa/ProgramBuilder.cpp.o" "gcc" "CMakeFiles/sct.dir/src/isa/ProgramBuilder.cpp.o.d"
  "/root/repo/src/sched/Executor.cpp" "CMakeFiles/sct.dir/src/sched/Executor.cpp.o" "gcc" "CMakeFiles/sct.dir/src/sched/Executor.cpp.o.d"
  "/root/repo/src/sched/RandomScheduler.cpp" "CMakeFiles/sct.dir/src/sched/RandomScheduler.cpp.o" "gcc" "CMakeFiles/sct.dir/src/sched/RandomScheduler.cpp.o.d"
  "/root/repo/src/sched/Schedule.cpp" "CMakeFiles/sct.dir/src/sched/Schedule.cpp.o" "gcc" "CMakeFiles/sct.dir/src/sched/Schedule.cpp.o.d"
  "/root/repo/src/sched/ScheduleExplorer.cpp" "CMakeFiles/sct.dir/src/sched/ScheduleExplorer.cpp.o" "gcc" "CMakeFiles/sct.dir/src/sched/ScheduleExplorer.cpp.o.d"
  "/root/repo/src/sched/SequentialScheduler.cpp" "CMakeFiles/sct.dir/src/sched/SequentialScheduler.cpp.o" "gcc" "CMakeFiles/sct.dir/src/sched/SequentialScheduler.cpp.o.d"
  "/root/repo/src/support/Label.cpp" "CMakeFiles/sct.dir/src/support/Label.cpp.o" "gcc" "CMakeFiles/sct.dir/src/support/Label.cpp.o.d"
  "/root/repo/src/support/Printing.cpp" "CMakeFiles/sct.dir/src/support/Printing.cpp.o" "gcc" "CMakeFiles/sct.dir/src/support/Printing.cpp.o.d"
  "/root/repo/src/workloads/ChaCha.cpp" "CMakeFiles/sct.dir/src/workloads/ChaCha.cpp.o" "gcc" "CMakeFiles/sct.dir/src/workloads/ChaCha.cpp.o.d"
  "/root/repo/src/workloads/CryptoLibs.cpp" "CMakeFiles/sct.dir/src/workloads/CryptoLibs.cpp.o" "gcc" "CMakeFiles/sct.dir/src/workloads/CryptoLibs.cpp.o.d"
  "/root/repo/src/workloads/Figures.cpp" "CMakeFiles/sct.dir/src/workloads/Figures.cpp.o" "gcc" "CMakeFiles/sct.dir/src/workloads/Figures.cpp.o.d"
  "/root/repo/src/workloads/Kocher.cpp" "CMakeFiles/sct.dir/src/workloads/Kocher.cpp.o" "gcc" "CMakeFiles/sct.dir/src/workloads/Kocher.cpp.o.d"
  "/root/repo/src/workloads/SpectreSuites.cpp" "CMakeFiles/sct.dir/src/workloads/SpectreSuites.cpp.o" "gcc" "CMakeFiles/sct.dir/src/workloads/SpectreSuites.cpp.o.d"
  "/root/repo/src/workloads/SuiteRunner.cpp" "CMakeFiles/sct.dir/src/workloads/SuiteRunner.cpp.o" "gcc" "CMakeFiles/sct.dir/src/workloads/SuiteRunner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
