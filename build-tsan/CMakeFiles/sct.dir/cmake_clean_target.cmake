file(REMOVE_RECURSE
  "libsct.a"
)
