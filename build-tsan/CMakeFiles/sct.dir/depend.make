# Empty dependencies file for sct.
# This may be replaced when dependencies are built.
