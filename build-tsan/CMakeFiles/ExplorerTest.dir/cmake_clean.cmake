file(REMOVE_RECURSE
  "CMakeFiles/ExplorerTest.dir/tests/ExplorerTest.cpp.o"
  "CMakeFiles/ExplorerTest.dir/tests/ExplorerTest.cpp.o.d"
  "ExplorerTest"
  "ExplorerTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ExplorerTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
