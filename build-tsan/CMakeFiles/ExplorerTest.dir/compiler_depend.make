# Empty compiler generated dependencies file for ExplorerTest.
# This may be replaced when dependencies are built.
