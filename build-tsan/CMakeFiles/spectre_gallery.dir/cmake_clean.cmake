file(REMOVE_RECURSE
  "CMakeFiles/spectre_gallery.dir/examples/spectre_gallery.cpp.o"
  "CMakeFiles/spectre_gallery.dir/examples/spectre_gallery.cpp.o.d"
  "spectre_gallery"
  "spectre_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectre_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
