# Empty compiler generated dependencies file for spectre_gallery.
# This may be replaced when dependencies are built.
