# Empty dependencies file for AsmTest.
# This may be replaced when dependencies are built.
