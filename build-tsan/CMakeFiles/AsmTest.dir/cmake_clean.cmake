file(REMOVE_RECURSE
  "AsmTest"
  "AsmTest.pdb"
  "CMakeFiles/AsmTest.dir/tests/AsmTest.cpp.o"
  "CMakeFiles/AsmTest.dir/tests/AsmTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/AsmTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
