file(REMOVE_RECURSE
  "CMakeFiles/FiguresBench.dir/bench/FiguresBench.cpp.o"
  "CMakeFiles/FiguresBench.dir/bench/FiguresBench.cpp.o.d"
  "FiguresBench"
  "FiguresBench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/FiguresBench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
