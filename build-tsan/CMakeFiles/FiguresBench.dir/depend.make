# Empty dependencies file for FiguresBench.
# This may be replaced when dependencies are built.
