file(REMOVE_RECURSE
  "CMakeFiles/RewriteTest.dir/tests/RewriteTest.cpp.o"
  "CMakeFiles/RewriteTest.dir/tests/RewriteTest.cpp.o.d"
  "RewriteTest"
  "RewriteTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/RewriteTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
