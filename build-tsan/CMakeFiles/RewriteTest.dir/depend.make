# Empty dependencies file for RewriteTest.
# This may be replaced when dependencies are built.
