# Empty compiler generated dependencies file for MachineTest.
# This may be replaced when dependencies are built.
