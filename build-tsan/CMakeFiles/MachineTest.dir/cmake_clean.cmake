file(REMOVE_RECURSE
  "CMakeFiles/MachineTest.dir/tests/MachineTest.cpp.o"
  "CMakeFiles/MachineTest.dir/tests/MachineTest.cpp.o.d"
  "MachineTest"
  "MachineTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/MachineTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
