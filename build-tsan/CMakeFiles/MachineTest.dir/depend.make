# Empty dependencies file for MachineTest.
# This may be replaced when dependencies are built.
