file(REMOVE_RECURSE
  "CMakeFiles/SpectreSuitesTest.dir/tests/SpectreSuitesTest.cpp.o"
  "CMakeFiles/SpectreSuitesTest.dir/tests/SpectreSuitesTest.cpp.o.d"
  "SpectreSuitesTest"
  "SpectreSuitesTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SpectreSuitesTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
