# Empty dependencies file for SpectreSuitesTest.
# This may be replaced when dependencies are built.
