file(REMOVE_RECURSE
  "CMakeFiles/DifferentialTest.dir/tests/DifferentialTest.cpp.o"
  "CMakeFiles/DifferentialTest.dir/tests/DifferentialTest.cpp.o.d"
  "DifferentialTest"
  "DifferentialTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/DifferentialTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
