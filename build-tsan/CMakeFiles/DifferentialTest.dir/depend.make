# Empty dependencies file for DifferentialTest.
# This may be replaced when dependencies are built.
