file(REMOVE_RECURSE
  "CMakeFiles/CryptoLibsTest.dir/tests/CryptoLibsTest.cpp.o"
  "CMakeFiles/CryptoLibsTest.dir/tests/CryptoLibsTest.cpp.o.d"
  "CryptoLibsTest"
  "CryptoLibsTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CryptoLibsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
