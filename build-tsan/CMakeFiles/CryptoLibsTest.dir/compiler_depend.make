# Empty compiler generated dependencies file for CryptoLibsTest.
# This may be replaced when dependencies are built.
