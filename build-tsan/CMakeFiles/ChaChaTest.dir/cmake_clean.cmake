file(REMOVE_RECURSE
  "CMakeFiles/ChaChaTest.dir/tests/ChaChaTest.cpp.o"
  "CMakeFiles/ChaChaTest.dir/tests/ChaChaTest.cpp.o.d"
  "ChaChaTest"
  "ChaChaTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ChaChaTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
