# Empty dependencies file for ChaChaTest.
# This may be replaced when dependencies are built.
