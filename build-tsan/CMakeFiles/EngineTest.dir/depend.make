# Empty dependencies file for EngineTest.
# This may be replaced when dependencies are built.
