file(REMOVE_RECURSE
  "CMakeFiles/EngineTest.dir/tests/EngineTest.cpp.o"
  "CMakeFiles/EngineTest.dir/tests/EngineTest.cpp.o.d"
  "EngineTest"
  "EngineTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/EngineTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
