//===- examples/crypto_audit.cpp - Auditing crypto code like §4.2 -----------===//
//
// Drives the checker the way the paper's evaluation does: both checker
// configurations against a small library of crypto implementations,
// producing a per-implementation audit with witnesses for everything
// flagged — including the Figure 10 MEE gadget, replayed in full.
//
// The whole audit is ONE engine batch: every implementation is expanded
// into its two §4.2.1 mode requests up front and a CheckSession fans the
// batch out over its worker pool; witnesses come back minimized.
//
//===----------------------------------------------------------------------===//

#include "checker/SctChecker.h"
#include "checker/SequentialCt.h"
#include "workloads/CryptoLibs.h"

#include <cstdio>
#include <vector>

using namespace sct;

int main(int Argc, char **Argv) {
  std::vector<SuiteCase> Cases = cryptoCases();
  SessionOptions SOpts = sessionOptionsFromArgs(Argc, Argv);

  // Expand: two requests per implementation, in case order.  Each
  // request inherits the CLI's minimization budget (--minimize-budget);
  // a request-level opt-in overrides the session's options entirely, so
  // they must be copied over, not assumed.
  std::vector<CheckRequest> Reqs;
  Reqs.reserve(Cases.size() * 2);
  for (const SuiteCase &C : Cases) {
    CheckRequest NoFwd;
    NoFwd.Id = C.Id + "/v1v11";
    NoFwd.Prog = C.Prog;
    NoFwd.Opts = v1v11Mode();
    PassConfig &NoFwdPasses = NoFwd.Passes.emplace(SOpts.Passes);
    NoFwdPasses.MinimizeWitnesses = true;
    Reqs.push_back(std::move(NoFwd));

    CheckRequest Fwd;
    Fwd.Id = C.Id + "/v4";
    Fwd.Prog = C.Prog;
    Fwd.Opts = v4Mode();
    PassConfig &FwdPasses = Fwd.Passes.emplace(SOpts.Passes);
    FwdPasses.MinimizeWitnesses = true;
    Reqs.push_back(std::move(Fwd));
  }

  CheckSession Session(SOpts);
  std::vector<CheckResult> Results =
      Session.checkMany(std::span<const CheckRequest>(Reqs));

  for (size_t I = 0; I < Cases.size(); ++I) {
    const SuiteCase &C = Cases[I];
    const CheckResult &NoFwd = Results[2 * I];
    const CheckResult &Fwd = Results[2 * I + 1];
    std::printf("=== %s ===\n%s\n", C.Id.c_str(), C.Description.c_str());

    // Step 0 of the paper's §4.2.1 procedure: the inputs are annotated
    // (our regions) and the code is verified sequentially constant-time.
    bool SeqCt = checkSequentialCt(C.Prog).secure();
    std::printf("sequentially constant-time: %s\n", SeqCt ? "yes" : "NO");

    // Step 1: Spectre v1/v1.1 hunt — bound 250, no forwarding hazards.
    std::printf("v1/v1.1 mode: %s",
                describeResult(C.Prog, NoFwd.Exploration).c_str());

    // Step 2: the forwarding-hazard verdict at bound 20.  (The paper
    // re-runs only when step 1 is clean; the batch checks both up front
    // and reports in the same shape.)
    if (NoFwd.secure()) {
      std::printf("v4 mode:      %s",
                  describeResult(C.Prog, Fwd.Exploration).c_str());
      if (!Fwd.secure()) {
        Machine M(C.Prog);
        std::printf("\nfirst witness (forwarding-hazard attack, "
                    "minimized):\n%s",
                    describeLeak(M, Configuration::initial(C.Prog),
                                 Fwd.Exploration.Leaks.front())
                        .c_str());
      }
    }
    std::printf("\n");
  }
  return 0;
}
