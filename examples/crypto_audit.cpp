//===- examples/crypto_audit.cpp - Auditing crypto code like §4.2 -----------===//
//
// Drives the checker the way the paper's evaluation does: both checker
// configurations against a small library of crypto implementations,
// producing a per-implementation audit with witnesses for everything
// flagged — including the Figure 10 MEE gadget, replayed in full.
//
//===----------------------------------------------------------------------===//

#include "checker/SctChecker.h"
#include "checker/SequentialCt.h"
#include "workloads/CryptoLibs.h"

#include <cstdio>

using namespace sct;

int main() {
  for (const SuiteCase &C : cryptoCases()) {
    std::printf("=== %s ===\n%s\n", C.Id.c_str(), C.Description.c_str());

    // Step 0 of the paper's §4.2.1 procedure: the inputs are annotated
    // (our regions) and the code is verified sequentially constant-time.
    bool SeqCt = checkSequentialCt(C.Prog).secure();
    std::printf("sequentially constant-time: %s\n", SeqCt ? "yes" : "NO");

    // Step 1: Spectre v1/v1.1 hunt — bound 250, no forwarding hazards.
    SctReport NoFwd = checkSct(C.Prog, v1v11Mode());
    std::printf("v1/v1.1 mode: %s",
                describeResult(C.Prog, NoFwd.Exploration).c_str());

    // Step 2: only if clean, re-run with forwarding hazards at bound 20.
    if (NoFwd.secure()) {
      SctReport Fwd = checkSct(C.Prog, v4Mode());
      std::printf("v4 mode:      %s",
                  describeResult(C.Prog, Fwd.Exploration).c_str());
      if (!Fwd.secure()) {
        Machine M(C.Prog);
        std::printf("\nfirst witness (forwarding-hazard attack):\n%s",
                    describeLeak(M, Configuration::initial(C.Prog),
                                 Fwd.Exploration.Leaks.front())
                        .c_str());
      }
    }
    std::printf("\n");
  }
  return 0;
}
