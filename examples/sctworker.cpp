//===- examples/sctworker.cpp - Audit-service worker process ----------------===//
//
// The subprocess half of the multi-process audit service: reads
// length-prefixed serialized CheckRequests on stdin, runs each through a
// CheckSession, and writes serialized CheckResults back on stdout —
// echoing the dispatcher's sequence stamp and job index so replies can
// never be mis-attributed (engine/ProcessPool.h documents the frames).
//
// stdout belongs to the frame protocol; nothing else may write to it.
// Diagnostics go to stderr.  EOF on stdin is the normal shutdown signal.
//
// Not usually run by hand: CheckSession spawns it via `--workers N`
// (default binary: sctworker beside the calling executable, or
// $SCT_WORKER_BIN).
//
//===----------------------------------------------------------------------===//

#include "engine/ProcessPool.h"
#include "engine/Serialization.h"
#include "engine/SessionArgs.h"

#include <cstdio>

using namespace sct;

int main(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      std::printf(
          "usage: sctworker\n\n"
          "Audit-service worker: speaks the framed request/result protocol\n"
          "of engine/ProcessPool.h on stdin/stdout.  Spawned by drivers\n"
          "running with --workers N; not meant for interactive use.\n\n"
          "The dispatching session resolves these flags and serializes the\n"
          "result into each request, so the worker itself takes none:\n\n%s",
          sessionFlagsHelp().c_str());
      return 0;
    }
    std::fprintf(stderr, "sctworker: unexpected argument '%s' (see --help)\n",
                 Argv[I]);
    return 2;
  }

  WireFrame F;
  while (readWireFrame(0, F)) {
    std::optional<WireRequest> Req = deserializeWireRequest(F.Payload);
    if (!Req) {
      // A payload we cannot parse means the stream is desynced or the
      // dispatcher speaks a different format version; nothing sensible
      // can follow.
      std::fprintf(stderr, "sctworker: malformed request payload\n");
      return 1;
    }

    SessionOptions SOpts;
    SOpts.Threads = Req->Opts.Threads ? Req->Opts.Threads : 1;
    SOpts.Passes = Req->Passes;
    CheckSession Session(SOpts);

    CheckRequest CR;
    CR.Id = Req->Id;
    CR.Prog = std::move(Req->Prog);
    CR.Opts = Req->Opts;
    CR.MOpts = Req->MOpts;
    CheckResult Res = Session.check(CR);

    WireFrame Reply;
    Reply.Seq = F.Seq;
    Reply.Job = F.Job;
    Reply.Payload = serializeCheckResult(Res);
    if (!writeWireFrame(1, Reply))
      return 1; // Dispatcher went away.
  }
  return 0; // EOF: clean shutdown.
}
