//===- examples/quickstart.cpp - libsct in five minutes ---------------------===//
//
// Builds a Spectre v1 gadget, checks it for speculative constant-time
// through a CheckSession, replays the *minimized* attack the checker
// found, and repairs the program with a fence.  The original and the
// fenced program go through the engine as one batch.
//
//===----------------------------------------------------------------------===//

#include "checker/FenceInsertion.h"
#include "checker/SctChecker.h"
#include "checker/SequentialCt.h"
#include "isa/AsmParser.h"
#include "isa/AsmPrinter.h"

#include <cstdio>

using namespace sct;

int main() {
  // 1. Write a program in the paper's ISA.  `ra` is an attacker-
  //    controlled index; the branch is a bounds check; the Key region is
  //    the secret the attacker is after.
  Program Prog = parseAsmOrDie(R"(
    .reg ra rb rc
    .init ra 9                 ; out of bounds for the 4-entry array
    .region A   0x40 4 public
    .region B   0x44 4 public
    .region Key 0x48 4 secret
    .data 0x48 11 22 33 44
    start:
      br ult ra, 4 -> body, end
    body:
      rb = load [0x40, ra]     ; speculatively reads Key[1]
      rc = load [0x44, rb]     ; address now depends on the secret
    end:
  )");

  // 2. The classical (sequential) constant-time discipline is satisfied:
  //    architecturally the bounds check protects everything.
  std::printf("sequential constant-time: %s\n",
              checkSequentialCt(Prog).secure() ? "yes" : "NO");

  // 3. Speculative constant-time is not.  Both the vulnerable program and
  //    its fence-repaired variant (§3.6) run through one CheckSession
  //    batch; every witness is delta-debugged to a minimal attack.
  Program Fenced = FenceInsertion(FencePolicy::BranchTargets).run(Prog).Prog;
  CheckRequest Reqs[2];
  Reqs[0].Id = "gadget";
  Reqs[0].Prog = Prog;
  Reqs[0].Passes.emplace().MinimizeWitnesses = true;
  Reqs[1].Id = "fenced";
  Reqs[1].Prog = Fenced;
  Reqs[1].Passes.emplace().MinimizeWitnesses = true;

  CheckSession Session;
  std::vector<CheckResult> Results =
      Session.checkMany(std::span<const CheckRequest>(Reqs));
  const CheckResult &Vuln = Results[0];
  const CheckResult &Fixed = Results[1];
  std::printf("%s\n", describeResult(Prog, Vuln.Exploration).c_str());

  // 4. Replay the first witness: the minimized directive-by-directive
  //    attack, in the paper's three-column figure format.  The raw
  //    exploration prefix is still available in LeakRecord::Sched.
  if (!Vuln.secure()) {
    Machine M(Prog);
    const LeakRecord &Leak = Vuln.Exploration.Leaks.front();
    std::printf("raw witness: %zu directives; minimized: %zu\n",
                Leak.Sched.size(), Leak.MinSched.size());
    std::printf("minimized witness replay:\n%s\n",
                printRun(M, Configuration::initial(Prog), Leak.MinSched)
                    .c_str());
  }

  // 5. The repair: a fence in every branch shadow blocks the attack.
  std::printf("after fence insertion (%zu fences):\n%s",
              countFences(Fenced), printAsm(Fenced).c_str());
  std::printf("\nre-check: %s\n",
              Fixed.secure() ? "secure — speculative constant-time holds"
                             : "still leaking!");
  return Fixed.secure() && !Vuln.secure() ? 0 : 1;
}
