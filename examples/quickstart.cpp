//===- examples/quickstart.cpp - libsct in five minutes ---------------------===//
//
// Builds a Spectre v1 gadget, checks it for speculative constant-time,
// replays the attack the checker found, and repairs the program with a
// fence.
//
//===----------------------------------------------------------------------===//

#include "checker/FenceInsertion.h"
#include "checker/SctChecker.h"
#include "checker/SequentialCt.h"
#include "isa/AsmParser.h"
#include "isa/AsmPrinter.h"

#include <cstdio>

using namespace sct;

int main() {
  // 1. Write a program in the paper's ISA.  `ra` is an attacker-
  //    controlled index; the branch is a bounds check; the Key region is
  //    the secret the attacker is after.
  Program Prog = parseAsmOrDie(R"(
    .reg ra rb rc
    .init ra 9                 ; out of bounds for the 4-entry array
    .region A   0x40 4 public
    .region B   0x44 4 public
    .region Key 0x48 4 secret
    .data 0x48 11 22 33 44
    start:
      br ult ra, 4 -> body, end
    body:
      rb = load [0x40, ra]     ; speculatively reads Key[1]
      rc = load [0x44, rb]     ; address now depends on the secret
    end:
  )");

  // 2. The classical (sequential) constant-time discipline is satisfied:
  //    architecturally the bounds check protects everything.
  std::printf("sequential constant-time: %s\n",
              checkSequentialCt(Prog).secure() ? "yes" : "NO");

  // 3. Speculative constant-time is not.  checkSct explores the worst-
  //    case attacker schedules and returns replayable witnesses.
  SctReport Report = checkSct(Prog, ExplorerOptions{});
  std::printf("%s\n", describeResult(Prog, Report.Exploration).c_str());

  // 4. Replay the first witness: the directive-by-directive attack, in
  //    the paper's three-column figure format.
  if (!Report.secure()) {
    Machine M(Prog);
    const LeakRecord &Leak = Report.Exploration.Leaks.front();
    std::printf("witness replay:\n%s\n",
                printRun(M, Configuration::initial(Prog), Leak.Sched)
                    .c_str());
  }

  // 5. Repair: a fence in every branch shadow (§3.6) and re-check.
  Program Fenced = insertFences(Prog, FencePolicy::BranchTargets);
  std::printf("after fence insertion (%zu fences):\n%s",
              countFences(Fenced), printAsm(Fenced).c_str());
  SctReport Fixed = checkSct(Fenced, ExplorerOptions{});
  std::printf("\nre-check: %s\n",
              Fixed.secure() ? "secure — speculative constant-time holds"
                             : "still leaking!");
  return Fixed.secure() && !Report.secure() ? 0 : 1;
}
