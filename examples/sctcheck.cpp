//===- examples/sctcheck.cpp - Command-line SCT checker ---------------------===//
//
// The Pitchfork workflow as a CLI: assemble a .sct file, check it for
// speculative constant-time under configurable attacker power, and print
// replayable witnesses.
//
//   sctcheck FILE [--bound N] [--no-fwd] [--alias] [--seq-only]
//            [--indirect-targets a,b,..] [--rsb-targets a,b,..]
//            [--fence-branches] [--fence-stores] [--first]
//            [--mitigate fence|retpoline|minimal-fence]
//            [--replay-snapshots] [--stats] [--validate] [--print]
//            [session flags: --threads, --shards, --cache-dir,
//             --workers, --minimize-*, --prove-sps, ... (--help)]
//
// Checks run through the engine layer (CheckSession).  The session-level
// knobs — thread budget, frontier sharding, snapshot policy, witness
// minimization, the SPS proof backend, the persistent result cache
// (--cache-dir) and the worker-process pool (--workers) — all parse
// through the shared declarative flag table (engine/SessionArgs.h); this
// driver only adds the per-file attacker knobs above.  With --cache-dir,
// a hit/miss line goes to *stderr* so stdout stays byte-comparable
// between cold and warm audits (the CI cache-smoke relies on this).
// --validate replays every witness differentially to confirm it as a
// concrete trace divergence.
//
// --mitigate runs the mitigation engine (engine/MitigationSession.h)
// instead of a plain check: the program is checked, transformed
// (fence = blanket fences, retpoline, minimal-fence = the placement
// search), and re-checked with the baseline's seen-state table reused
// through the transform's provenance; the report lists per-leak closure,
// placement cost, and what reuse pruned.  Jump-table programs yield the
// transform's structured not-relocatable error instead of a miscompile.
//
//===----------------------------------------------------------------------===//

#include "checker/DifferentialChecker.h"
#include "checker/FenceInsertion.h"
#include "checker/Retpoline.h"
#include "checker/SctChecker.h"
#include "checker/SequentialCt.h"
#include "engine/MitigationSession.h"
#include "engine/ResultCache.h"
#include "engine/SessionArgs.h"
#include "isa/AsmParser.h"
#include "isa/AsmPrinter.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace sct;

namespace {

void usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s FILE.sct [options]\n"
      "  --bound N              speculation bound (default 20)\n"
      "  --no-fwd               disable forwarding-hazard detection\n"
      "  --alias                explore alias prediction (PS 3.5)\n"
      "  --indirect-targets L   comma-separated mistraining labels (v2)\n"
      "  --rsb-targets L        comma-separated underflow labels\n"
      "  --seq-only             classical sequential CT check only\n"
      "  --fence-branches       insert fences at branch targets first\n"
      "  --fence-stores         insert fences after stores first\n"
      "  --mitigate KIND        run the mitigation engine: check, apply\n"
      "                         KIND (fence|retpoline|minimal-fence),\n"
      "                         re-check reusing the baseline's seen\n"
      "                         states, report per-leak closure + cost\n"
      "  --first                stop at the first violation\n"
      "  --stats                collect and print exploration diagnostics:\n"
      "                         fork-copy accounting (configurations\n"
      "                         forked, ROB bytes moved vs. flat layout),\n"
      "                         seen-table occupancy/probe lengths, fork-\n"
      "                         filter verdicts, convergence prunes, and\n"
      "                         the distinct-state-per-depth histogram\n"
      "  --replay-snapshots     prefix-replay fork checkpoints\n"
      "  --validate             differentially confirm each witness\n"
      "  --print                echo the (possibly transformed) program\n"
      "session flags (shared with every engine driver):\n%s",
      Prog, sessionFlagsHelp().c_str());
}

std::vector<PC> parseTargets(const Program &P, const char *List) {
  std::vector<PC> Out;
  std::stringstream Stream(List);
  std::string Name;
  while (std::getline(Stream, Name, ',')) {
    auto It = P.codeLabels().find(Name);
    if (It == P.codeLabels().end()) {
      std::fprintf(stderr, "error: unknown label '%s'\n", Name.c_str());
      std::exit(2);
    }
    Out.push_back(It->second);
  }
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I)
    if (!std::strcmp(Argv[I], "--help") || !std::strcmp(Argv[I], "-h")) {
      usage(Argv[0]);
      return 0;
    }
  if (Argc < 2) {
    usage(Argv[0]);
    return 2;
  }

  std::ifstream In(Argv[1]);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Argv[1]);
    return 2;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  ParseResult Parsed = parseAsm(Buffer.str());
  if (!Parsed.ok()) {
    std::fprintf(stderr, "%s: assembly errors:\n%s", Argv[1],
                 Parsed.errorText().c_str());
    return 2;
  }
  Program Prog = std::move(*Parsed.Prog);

  // Session flags (thread budget, sharding, snapshot policy, passes,
  // cache, workers) parse through the shared table; the loop below only
  // handles what the table left unconsumed.
  SessionArgs SA = parseSessionArgs(Argc, Argv);
  ExplorerOptions Opts = SA.Opts.DefaultOpts;
  bool SeqOnly = false, Print = false, Validate = false;
  const char *IndirectList = nullptr, *RsbList = nullptr;
  const char *MitigateKind = nullptr;
  auto ApplyFences = [&Prog](FencePolicy Policy) {
    MitigationResult R = FenceInsertion(Policy).run(Prog);
    if (!R.ok()) {
      std::fprintf(stderr, "error: %s: %s\n",
                   std::string(fencePolicyName(Policy)).c_str(),
                   R.Error->Message.c_str());
      for (uint64_t A : R.Error->SuspectAddrs)
        std::fprintf(stderr, "  suspect data word at 0x%llx\n",
                     static_cast<unsigned long long>(A));
      std::exit(2);
    }
    Prog = std::move(R.Prog);
  };
  for (int I = 2; I < Argc; ++I) {
    if (SA.Consumed[static_cast<size_t>(I)])
      continue;
    if (!std::strcmp(Argv[I], "--bound") && I + 1 < Argc)
      Opts.SpeculationBound = static_cast<unsigned>(atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--no-fwd"))
      Opts.ExploreForwardingHazards = false;
    else if (!std::strcmp(Argv[I], "--alias"))
      Opts.ExploreAliasPrediction = true;
    else if (!std::strcmp(Argv[I], "--indirect-targets") && I + 1 < Argc)
      IndirectList = Argv[++I];
    else if (!std::strcmp(Argv[I], "--rsb-targets") && I + 1 < Argc)
      RsbList = Argv[++I];
    else if (!std::strcmp(Argv[I], "--seq-only"))
      SeqOnly = true;
    else if (!std::strcmp(Argv[I], "--fence-branches"))
      ApplyFences(FencePolicy::BranchTargets);
    else if (!std::strcmp(Argv[I], "--fence-stores"))
      ApplyFences(FencePolicy::AfterStores);
    else if (!std::strcmp(Argv[I], "--mitigate") && I + 1 < Argc)
      MitigateKind = Argv[++I];
    else if (!std::strcmp(Argv[I], "--first"))
      Opts.StopAtFirstLeak = true;
    else if (!std::strcmp(Argv[I], "--stats"))
      Opts.CollectStats = true;
    else if (!std::strcmp(Argv[I], "--replay-snapshots"))
      Opts.Snapshots = SnapshotPolicy::Replay;
    else if (!std::strcmp(Argv[I], "--validate"))
      Validate = true;
    else if (!std::strcmp(Argv[I], "--print"))
      Print = true;
    else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Argv[I]);
      usage(Argv[0]);
      return 2;
    }
  }
  if (IndirectList)
    Opts.IndirectTargets = parseTargets(Prog, IndirectList);
  if (RsbList)
    Opts.RsbUnderflowTargets = parseTargets(Prog, RsbList);

  if (Print)
    std::printf("%s\n", printAsm(Prog).c_str());

  if (MitigateKind) {
    MitigationSession MSession(SA.Opts);
    bool WantStores = Opts.ExploreForwardingHazards;
    FencePolicy Blanket = WantStores ? FencePolicy::BranchTargetsAndStores
                                     : FencePolicy::BranchTargets;

    if (!std::strcmp(MitigateKind, "minimal-fence")) {
      FencePlacementOptions FOpts;
      FOpts.Blanket = Blanket;
      FencePlacementResult R =
          MSession.minimizeFencePlacement(Prog, Opts, FOpts);
      if (R.Error) {
        std::fprintf(stderr, "error: %s\n", R.Error->Message.c_str());
        return 2;
      }
      std::printf("baseline: %zu leak(s)\n",
                  R.Baseline.Exploration.Leaks.size());
      std::printf("minimal fence placement: %zu of %zu blanket fence(s) "
                  "suffice (%u re-checks)\n",
                  R.Sites.size(), R.BlanketSites, R.ChecksSpent);
      for (PC S : R.Sites) {
        std::optional<std::string> L = Prog.labelAt(S);
        std::printf("  fence before %u%s%s\n", S, L ? "  ; " : "",
                    L ? L->c_str() : "");
      }
      std::printf("re-check with minimal set: %s\n",
                  R.RestoredSct ? "secure" : "still LEAKS");
      return R.RestoredSct ? 0 : 1;
    }

    std::unique_ptr<Mitigation> M;
    if (!std::strcmp(MitigateKind, "fence"))
      M = std::make_unique<FenceInsertion>(Blanket);
    else if (!std::strcmp(MitigateKind, "retpoline"))
      M = std::make_unique<Retpoline>();
    else {
      std::fprintf(stderr,
                   "error: unknown --mitigate kind '%s' "
                   "(fence|retpoline|minimal-fence)\n",
                   MitigateKind);
      return 2;
    }
    MitigationReport Rep = MSession.run(Prog, Opts, *M);
    std::printf("baseline: %zu leak(s), %llu steps\n",
                Rep.Baseline.Exploration.Leaks.size(),
                static_cast<unsigned long long>(
                    Rep.Baseline.Exploration.TotalSteps));
    const MitigationVariant &V = Rep.Variants.front();
    if (!V.applied()) {
      std::fprintf(stderr, "%s refused: %s\n", V.Name.c_str(),
                   V.Error->Message.c_str());
      for (uint64_t A : V.Error->SuspectAddrs)
        std::fprintf(stderr, "  suspect data word at 0x%llx\n",
                     static_cast<unsigned long long>(A));
      return 2;
    }
    std::printf("%s: +%u instruction(s), %u fence(s), %u site(s)\n",
                V.Name.c_str(), V.Cost.InstructionsAdded, V.Cost.FencesAdded,
                V.Cost.Sites);
    std::printf("sequential schedule: %zu -> %zu steps\n",
                Rep.SeqStepsBaseline, V.SeqSteps);
    std::printf("re-check: %s; closed %zu/%zu leak(s); seen-state reuse "
                "pruned %llu subtree(s)\n",
                V.restoredSct() ? "secure" : "still LEAKS", V.closedCount(),
                V.Leaks.size(),
                static_cast<unsigned long long>(V.ReusePrunedNodes));
    for (const LeakClosure &L : V.Leaks)
      std::printf("  leak at pc %u: %s%s\n", L.Origin,
                  L.Closed ? "closed" : "OPEN",
                  L.ReplayPredictsOpen ? " (witness still replays)" : "");
    return V.restoredSct() ? 0 : 1;
  }

  SequentialCtReport Seq = checkSequentialCt(Prog);
  std::printf("sequential constant-time: %s\n",
              Seq.secure() ? "yes" : "VIOLATION");
  for (const Observation &O : Seq.Leaks)
    std::printf("  sequential leak: %s\n", O.str().c_str());
  if (SeqOnly)
    return Seq.secure() ? 0 : 1;

  CheckSession Session(SA.Opts);
  CheckRequest Req;
  Req.Id = Argv[1];
  Req.Prog = Prog;
  Req.Opts = Opts;
  CheckResult Check = Session.check(Req);
  // The hit/miss line goes to stderr: stdout must stay byte-identical
  // between a cold audit and its warm re-run (the cache-smoke contract).
  if (Session.cache())
    std::fprintf(stderr, "cache: %s\n", Check.FromCache ? "hit" : "miss");
  if (Check.Sps) {
    const SpsReport &S = *Check.Sps;
    const char *V = S.Verdict == SpsVerdict::Proved ? "PROVED leak-free"
                    : S.Verdict == SpsVerdict::CounterExample
                        ? "COUNTEREXAMPLE"
                        : "inconclusive";
    std::printf("sps proof backend: %s (%llu tapes, %llu retires, %.3fs)%s%s\n",
                V, static_cast<unsigned long long>(S.TapesRun),
                static_cast<unsigned long long>(S.RetiresTotal), S.Seconds,
                S.Reason.empty() ? "" : " — ", S.Reason.c_str());
    for (const SpsCounterExample &CE : S.CounterExamples) {
      std::optional<std::string> L = Prog.labelAt(CE.Origin);
      std::printf("  sps counterexample at pc %u%s%s: %s%s\n", CE.Origin,
                  L ? "  ; " : "", L ? L->c_str() : "", CE.Obs.str().c_str(),
                  CE.Speculative ? " (speculative)" : " (architectural)");
    }
    if (S.conclusive())
      return S.proved() && Seq.secure() ? 0 : 1;
    std::printf("falling back to schedule exploration\n");
  }
  SctReport Report = toReport(Check);
  std::printf("%s", describeResult(Prog, Report.Exploration).c_str());
  std::printf("explored %llu steps in %.3fs (%u thread%s)\n",
              static_cast<unsigned long long>(Report.Exploration.TotalSteps),
              Report.Seconds, Check.Opts.Threads,
              Check.Opts.Threads == 1 ? "" : "s");
  if (Check.Opts.PruneSeen)
    std::printf("seen-state pruning dropped %llu convergent subtrees\n",
                static_cast<unsigned long long>(
                    Report.Exploration.PrunedNodes));
  if (Check.Opts.CollectStats && Report.Exploration.ConfigsForked) {
    const ExploreResult &Ex = Report.Exploration;
    double Factor = Ex.RobBytesCopied
                        ? double(Ex.RobBytesFlat) / double(Ex.RobBytesCopied)
                        : 0.0;
    std::printf("fork copies: %llu configuration(s), %llu ROB bytes moved "
                "(%llu flat-equivalent, %.1fx shared)\n",
                static_cast<unsigned long long>(Ex.ConfigsForked),
                static_cast<unsigned long long>(Ex.RobBytesCopied),
                static_cast<unsigned long long>(Ex.RobBytesFlat), Factor);
  }
  if (Report.Exploration.Stats) {
    // The blowup-diagnosis block (docs/WITNESSES.md "diagnosing budget
    // blowups"): which of table pressure, missed recurrence, or genuine
    // exponential growth is eating the budget.
    const ExploreStats &St = *Report.Exploration.Stats;
    double ProbeLen = St.Seen.Lookups
                          ? double(St.Seen.Probes) / double(St.Seen.Lookups)
                          : 0.0;
    uint64_t ForkTotal = St.ForkInsertNew + St.ForkInsertDup;
    std::printf("stats: seen table %llu states in %llu slots, %.2f probes"
                "/lookup over %llu lookups\n",
                static_cast<unsigned long long>(St.Seen.Entries),
                static_cast<unsigned long long>(St.Seen.Capacity), ProbeLen,
                static_cast<unsigned long long>(St.Seen.Lookups));
    std::printf("stats: fork filter %llu fresh / %llu duplicate (%.1f%% "
                "pruned); convergence %llu prunes / %llu checks\n",
                static_cast<unsigned long long>(St.ForkInsertNew),
                static_cast<unsigned long long>(St.ForkInsertDup),
                ForkTotal ? 100.0 * double(St.ForkInsertDup) /
                                double(ForkTotal)
                          : 0.0,
                static_cast<unsigned long long>(St.ConvergencePrunes),
                static_cast<unsigned long long>(St.ConvergenceChecks));
    std::printf("stats: distinct states per depth bucket (%zu directives "
                "each):\n", ExploreStats::DepthBucket);
    for (size_t B = 0; B < St.NewStatesPerDepth.size(); ++B)
      std::printf("  [%4zu..%4zu) %llu\n", B * ExploreStats::DepthBucket,
                  (B + 1) * ExploreStats::DepthBucket,
                  static_cast<unsigned long long>(St.NewStatesPerDepth[B]));
  }
  if (Check.Opts.Snapshots == SnapshotPolicy::Hybrid)
    std::printf("hybrid snapshots: %llu checkpoints (K=%u), %llu replayed "
                "directives\n",
                static_cast<unsigned long long>(
                    Report.Exploration.Checkpoints),
                Check.Opts.CheckpointInterval,
                static_cast<unsigned long long>(
                    Report.Exploration.ReplaySteps));
  if (Check.Minimization)
    std::printf("witness minimization: %llu -> %llu directives over %zu "
                "witness(es), %llu replays%s\n",
                static_cast<unsigned long long>(
                    Check.Minimization->RawDirectives),
                static_cast<unsigned long long>(
                    Check.Minimization->MinimizedDirectives),
                Report.Exploration.Leaks.size(),
                static_cast<unsigned long long>(Check.Minimization->Replays),
                Check.Minimization->BudgetExhausted ? " (budget exhausted)"
                                                    : "");
  if (!Report.secure()) {
    Machine M(Prog);
    std::printf("\n%s", describeLeak(M, Configuration::initial(Prog),
                                     Report.Exploration.Leaks.front())
                            .c_str());
  }
  if (Validate && !Report.secure()) {
    Machine M(Prog);
    WitnessValidation V = validateWitnesses(M, Report.Exploration);
    std::printf("\ndifferential validation: %zu/%zu witnesses confirmed "
                "as concrete trace divergences\n",
                V.Confirmed, V.Checked);
  }
  return Report.secure() && Seq.secure() ? 0 : 1;
}
