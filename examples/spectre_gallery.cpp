//===- examples/spectre_gallery.cpp - Every Spectre variant, end to end -----===//
//
// A tour of the attack classes the semantics captures — v1 (Figure 1),
// v1.1 (Figure 6), v4 (Figure 7), v2 (Figure 11), ret2spec (Figure 12),
// and the hypothetical aliasing predictor (Figure 2) — each with its
// paper walkthrough replayed and the checker knob that exposes it.
//
//===----------------------------------------------------------------------===//

#include "checker/SctChecker.h"
#include "sched/Executor.h"
#include "workloads/Figures.h"

#include <cstdio>

using namespace sct;

namespace {

void tour(const FigureCase &C, const char *Variant, const char *Knob) {
  std::printf("--- %s (%s) ---\n", Variant, C.Name.c_str());
  std::printf("%s\n", C.Description.c_str());
  std::printf("checker knob: %s\n", Knob);

  Machine M(C.Prog);
  if (!C.PaperSchedule.empty()) {
    RunResult R =
        runSchedule(M, Configuration::initial(C.Prog), C.PaperSchedule);
    std::printf("paper schedule: %s\n", printSchedule(C.PaperSchedule).c_str());
    std::printf("leakage trace:  ");
    bool First = true;
    for (const Observation &O : R.observations()) {
      std::printf("%s%s", First ? "" : "; ", O.str().c_str());
      First = false;
    }
    std::printf("\n");
  }
  SctReport Report = checkSct(C.Prog, C.CheckOpts);
  std::printf("verdict: %s (expected %s)\n\n",
              Report.secure() ? "secure" : "VIOLATION",
              C.ExpectLeak ? "violation" : "secure");
}

} // namespace

int main() {
  tour(figure1(), "Spectre v1 — bounds check bypass",
       "default exploration (branch mispredict forks)");
  tour(figure6(), "Spectre v1.1 — speculative store forward",
       "v1v11Mode(): bound 250, no forwarding-hazard forks needed");
  tour(figure7(), "Spectre v4 — speculative store bypass",
       "v4Mode(): forwarding-hazard detection on, bound 20");
  tour(figure2(), "Aliasing predictor (hypothetical, §3.5)",
       "ExploreAliasPrediction = true");
  tour(figure11(), "Spectre v2 — mistrained indirect branch",
       "IndirectTargets = {gadget}");
  tour(figure12(), "ret2spec — RSB underflow",
       "RsbUnderflowTargets = {gadget}");
  tour(figure8(), "v1 + fence mitigation (Figure 8)",
       "any — the fence blocks the loads");
  tour(figure13(), "v2 + retpoline mitigation (Figure 13)",
       "all attacker knobs on — speculation only reaches the trap");
  return 0;
}
