//===- examples/spectre_gallery.cpp - Every Spectre variant, end to end -----===//
//
// A tour of the attack classes the semantics captures — v1 (Figure 1),
// v1.1 (Figure 6), v4 (Figure 7), v2 (Figure 11), ret2spec (Figure 12),
// and the hypothetical aliasing predictor (Figure 2) — each with its
// paper walkthrough replayed and the checker knob that exposes it.  All
// eight figures are checked as one CheckSession batch with witness
// minimization on, so every verdict comes with the minimal attack
// schedule next to the paper's hand-written one.
//
//===----------------------------------------------------------------------===//

#include "checker/SctChecker.h"
#include "sched/Executor.h"
#include "workloads/Figures.h"

#include <cstdio>
#include <vector>

using namespace sct;

namespace {

struct TourStop {
  FigureCase Fig;
  const char *Variant;
  const char *Knob;
};

void tour(const TourStop &Stop, const CheckResult &Check) {
  const FigureCase &C = Stop.Fig;
  std::printf("--- %s (%s) ---\n", Stop.Variant, C.Name.c_str());
  std::printf("%s\n", C.Description.c_str());
  std::printf("checker knob: %s\n", Stop.Knob);

  Machine M(C.Prog);
  if (!C.PaperSchedule.empty()) {
    RunResult R =
        runSchedule(M, Configuration::initial(C.Prog), C.PaperSchedule);
    std::printf("paper schedule: %s\n", printSchedule(C.PaperSchedule).c_str());
    std::printf("leakage trace:  ");
    bool First = true;
    for (const Observation &O : R.observations()) {
      std::printf("%s%s", First ? "" : "; ", O.str().c_str());
      First = false;
    }
    std::printf("\n");
  }
  std::printf("verdict: %s (expected %s)\n",
              Check.secure() ? "secure" : "VIOLATION",
              C.ExpectLeak ? "violation" : "secure");
  if (!Check.secure()) {
    const LeakRecord &L = Check.Exploration.Leaks.front();
    std::printf("minimized attack (%zu directives, raw %zu): %s\n",
                L.MinSched.size(), L.Sched.size(),
                printSchedule(L.MinSched).c_str());
  }
  std::printf("\n");
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<TourStop> Stops = {
      {figure1(), "Spectre v1 — bounds check bypass",
       "default exploration (branch mispredict forks)"},
      {figure6(), "Spectre v1.1 — speculative store forward",
       "v1v11Mode(): bound 250, no forwarding-hazard forks needed"},
      {figure7(), "Spectre v4 — speculative store bypass",
       "v4Mode(): forwarding-hazard detection on, bound 20"},
      {figure2(), "Aliasing predictor (hypothetical, §3.5)",
       "ExploreAliasPrediction = true"},
      {figure11(), "Spectre v2 — mistrained indirect branch",
       "IndirectTargets = {gadget}"},
      {figure12(), "ret2spec — RSB underflow",
       "RsbUnderflowTargets = {gadget}"},
      {figure8(), "v1 + fence mitigation (Figure 8)",
       "any — the fence blocks the loads"},
      {figure13(), "v2 + retpoline mitigation (Figure 13)",
       "all attacker knobs on — speculation only reaches the trap"},
  };

  // One batch: each figure keeps its own CheckOpts (the knob that exposes
  // its variant), witness minimization on everywhere with the CLI's
  // budget (request-level opt-in overrides the session's options, so
  // they are copied over).
  SessionOptions SOpts = sessionOptionsFromArgs(Argc, Argv);
  std::vector<CheckRequest> Reqs;
  Reqs.reserve(Stops.size());
  for (const TourStop &S : Stops) {
    CheckRequest Req;
    Req.Id = S.Fig.Name;
    Req.Prog = S.Fig.Prog;
    Req.Opts = S.Fig.CheckOpts;
    Req.Passes.emplace(SOpts.Passes).MinimizeWitnesses = true;
    Reqs.push_back(std::move(Req));
  }
  CheckSession Session(SOpts);
  std::vector<CheckResult> Results =
      Session.checkMany(std::span<const CheckRequest>(Reqs));

  for (size_t I = 0; I < Stops.size(); ++I)
    tour(Stops[I], Results[I]);
  return 0;
}
