//===- bench/ContentionBench.cpp - Frontier contention: shared vs stealing --===//
//
// The tentpole measurement for the sharded-frontier engine: the same
// fork-heavy schedule trees drained by
//   - the PR 1 baseline (one mutex+condvar frontier shared by all
//     workers; `Shards = 1`),
//   - the work-stealing sharded frontier (`Shards = 0`, one Chase-Lev
//     style deque per worker), and
//   - stealing plus the cross-schedule seen-state table (`PruneSeen`),
// each at 1/2/4/8 worker threads.  Every run's deduplicated leak set is
// cross-checked against the sequential reference — a configuration that
// went faster by dropping findings fails the whole bench.
//
// Results are printed as a table and recorded to BENCH_CONTENTION.json
// (override with --out FILE) for the "reproducing the paper's figures"
// workflow in README.md.  `--quick` runs a reduced matrix for CI smoke.
//
//===----------------------------------------------------------------------===//

#include "checker/SctChecker.h"
#include "isa/AsmParser.h"
#include "support/Printing.h"
#include "workloads/CryptoLibs.h"
#include "workloads/Kocher.h"
#include "workloads/SpectreSuites.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

using namespace sct;

namespace {

struct BenchCase {
  std::string Id;
  Program Prog;
  ExplorerOptions Mode;
};

struct RunRecord {
  std::string Config;
  unsigned Threads = 0;
  double Seconds = 0;
  uint64_t Steps = 0;
  uint64_t Schedules = 0;
  uint64_t Steals = 0;
  uint64_t Pruned = 0;
  size_t Leaks = 0;
  bool LeakSetOk = true;
};

std::set<uint64_t> leakKeys(const ExploreResult &R) {
  std::set<uint64_t> S;
  for (const LeakRecord &L : R.Leaks)
    S.insert(L.key());
  return S;
}

/// A synthetic fork-dense tree: a ladder of data-independent branches.
/// Every rung doubles the schedule count while each path does almost no
/// work, so the frontier is popped and pushed at the highest possible
/// rate — the pure contention stressor (real crypto trees interleave far
/// more stepping per node).
Program forkLadder(unsigned Rungs) {
  std::string Asm = ".reg ra rb\n.init ra 1\nstart:\n";
  for (unsigned I = 0; I < Rungs; ++I) {
    std::string N = std::to_string(I);
    Asm += "  br ult ra, 4 -> t" + N + ", f" + N + "\n";
    Asm += "t" + N + ":\n  rb = add rb, 1\n";
    Asm += "f" + N + ":\n  rb = add rb, 2\n";
  }
  Asm += "end:\n";
  return parseAsmOrDie(Asm);
}

RunRecord runOne(const BenchCase &C, const char *Config, unsigned Threads,
                 unsigned Shards, bool Prune,
                 const std::set<uint64_t> &RefLeaks) {
  ExplorerOptions Opts = C.Mode;
  Opts.Threads = Threads;
  Opts.Shards = Shards;
  Opts.PruneSeen = Prune;
  Machine M(C.Prog);
  auto T0 = std::chrono::steady_clock::now();
  ExploreResult R = explore(M, Configuration::initial(C.Prog), Opts);
  auto T1 = std::chrono::steady_clock::now();

  RunRecord Rec;
  Rec.Config = Config;
  Rec.Threads = Threads;
  Rec.Seconds = std::chrono::duration<double>(T1 - T0).count();
  Rec.Steps = R.TotalSteps;
  Rec.Schedules = R.SchedulesCompleted;
  Rec.Steals = R.Steals;
  Rec.Pruned = R.PrunedNodes;
  Rec.Leaks = R.Leaks.size();
  Rec.LeakSetOk = leakKeys(R) == RefLeaks;
  return Rec;
}

void jsonRun(FILE *F, const RunRecord &R, bool Last) {
  std::fprintf(F,
               "      {\"config\": \"%s\", \"threads\": %u, "
               "\"seconds\": %.6f, \"steps\": %llu, \"schedules\": %llu, "
               "\"steals\": %llu, \"pruned\": %llu, \"leaks\": %zu, "
               "\"leak_set_matches_reference\": %s}%s\n",
               R.Config.c_str(), R.Threads, R.Seconds,
               static_cast<unsigned long long>(R.Steps),
               static_cast<unsigned long long>(R.Schedules),
               static_cast<unsigned long long>(R.Steals),
               static_cast<unsigned long long>(R.Pruned), R.Leaks,
               R.LeakSetOk ? "true" : "false", Last ? "" : ",");
}

} // namespace

int main(int Argc, char **Argv) {
  const char *OutPath = "BENCH_CONTENTION.json";
  bool Quick = false;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--out") && I + 1 < Argc)
      OutPath = Argv[++I];
    else if (!std::strcmp(Argv[I], "--quick"))
      Quick = true;
    else {
      std::fprintf(stderr, "usage: %s [--out FILE] [--quick]\n", Argv[0]);
      return 2;
    }
  }

  std::vector<BenchCase> Cases;
  {
    BenchCase Ladder;
    Ladder.Id = "fork-ladder-14";
    Ladder.Prog = forkLadder(Quick ? 10 : 14);
    Ladder.Mode = v1v11Mode();
    if (Quick)
      Ladder.Id = "fork-ladder-10";
    Cases.push_back(std::move(Ladder));
  }
  if (!Quick) {
    // The two largest real schedule trees in the repo: both run into the
    // 8M-step budget, so every frontier configuration drains the same
    // amount of work — a constant-work contention comparison.
    BenchCase Mee;
    Mee.Id = "mee-c-v4";
    Mee.Prog = meeC().Prog;
    Mee.Mode = v4Mode();
    Cases.push_back(std::move(Mee));

    BenchCase Ssl;
    Ssl.Id = "ssl3-c-v4";
    Ssl.Prog = ssl3C().Prog;
    Ssl.Mode = v4Mode();
    Cases.push_back(std::move(Ssl));
  }

  std::vector<unsigned> ThreadCounts =
      Quick ? std::vector<unsigned>{1, 8} : std::vector<unsigned>{1, 2, 4, 8};

  FILE *Out = std::fopen(OutPath, "w");
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutPath);
    return 2;
  }
  std::fprintf(Out, "{\n  \"bench\": \"frontier-contention\",\n"
                    "  \"baseline\": \"shared (Shards=1, the PR 1 single "
                    "mutex-guarded frontier)\",\n  \"cases\": [\n");

  bool AllOk = true;
  double Shared8 = 0, Steal8 = 0, StealPrune8 = 0;
  for (size_t CI = 0; CI < Cases.size(); ++CI) {
    const BenchCase &C = Cases[CI];
    // Sequential reference leak set (the determinism anchor).
    ExplorerOptions Ref = C.Mode;
    Ref.Threads = 1;
    Machine M(C.Prog);
    std::set<uint64_t> RefLeaks =
        leakKeys(explore(M, Configuration::initial(C.Prog), Ref));

    std::printf("%s:\n", C.Id.c_str());
    std::vector<RunRecord> Runs;
    for (unsigned T : ThreadCounts) {
      Runs.push_back(runOne(C, "shared", T, /*Shards=*/1, false, RefLeaks));
      Runs.push_back(runOne(C, "steal", T, /*Shards=*/0, false, RefLeaks));
      Runs.push_back(
          runOne(C, "steal+prune", T, /*Shards=*/0, true, RefLeaks));
    }

    std::vector<std::vector<std::string>> Table;
    for (const RunRecord &R : Runs) {
      Table.push_back({R.Config, std::to_string(R.Threads),
                       std::to_string(R.Seconds).substr(0, 6),
                       std::to_string(R.Steps), std::to_string(R.Steals),
                       std::to_string(R.Pruned),
                       R.LeakSetOk ? "ok" : "MISMATCH"});
      AllOk &= R.LeakSetOk;
      if (R.Threads == 8) {
        if (R.Config == "shared")
          Shared8 += R.Seconds;
        else if (R.Config == "steal")
          Steal8 += R.Seconds;
        else
          StealPrune8 += R.Seconds;
      }
    }
    std::printf("%s\n",
                renderTable({"frontier", "threads", "seconds", "steps",
                             "steals", "pruned", "leak set"},
                            Table)
                    .c_str());

    std::fprintf(Out, "    {\"id\": \"%s\", \"runs\": [\n", C.Id.c_str());
    for (size_t I = 0; I < Runs.size(); ++I)
      jsonRun(Out, Runs[I], I + 1 == Runs.size());
    std::fprintf(Out, "    ]}%s\n", CI + 1 == Cases.size() ? "" : ",");
  }

  double StealSpeedup = Steal8 > 0 ? Shared8 / Steal8 : 0;
  double PruneSpeedup = StealPrune8 > 0 ? Shared8 / StealPrune8 : 0;
  std::fprintf(Out,
               "  ],\n  \"aggregate_8_threads\": {\"shared_seconds\": %.6f, "
               "\"steal_seconds\": %.6f, \"steal_prune_seconds\": %.6f, "
               "\"steal_speedup_vs_shared\": %.3f, "
               "\"steal_prune_speedup_vs_shared\": %.3f},\n"
               "  \"all_leak_sets_match_reference\": %s\n}\n",
               Shared8, Steal8, StealPrune8, StealSpeedup, PruneSpeedup,
               AllOk ? "true" : "false");
  std::fclose(Out);

  std::printf("aggregate at 8 threads: shared %.3fs, steal %.3fs (%.2fx), "
              "steal+prune %.3fs (%.2fx)\n",
              Shared8, Steal8, StealSpeedup, StealPrune8, PruneSpeedup);
  std::printf("recorded %s\n", OutPath);
  if (!AllOk) {
    std::printf("LEAK SET MISMATCH against the sequential reference\n");
    return 1;
  }
  return 0;
}
