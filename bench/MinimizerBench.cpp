//===- bench/MinimizerBench.cpp - Minimization: threads x seeding sweep -----===//
//
// The measurement behind the parallel, checkpoint-seeded minimization
// phase.  Each case builds a deterministic leak corpus — the explorer's
// own witnesses (Threads=1 hybrid-snapshot exploration with checkpoint
// chains recorded) plus, for the deep trees, bloated random-schedule
// witnesses (fixed seeds; the junk-rich "unreadable witness" inputs
// docs/WITNESSES.md frames as minimization's motivating case) — and
// minimizes it under:
//
//   - `prior-minimizer`: the PR 3 pipeline verbatim — sequential, every
//     candidate replayed in full from the initial configuration, no
//     excursion slicing, no candidate memo.  The "sequential
//     from-initial baseline".
//   - `from-initial`: the shipped pipeline (slicing on) with the replay
//     engine pinned from-initial (no seeding, no memo), sequential.
//     This is the byte-identity reference: seeding, memoization, and
//     threads are all provably output-preserving, so every row below
//     must match it exactly.
//   - `seeded-tN`: the full phase — checkpoint-seeded replays, candidate
//     memo, excursion slicing — at Threads in {1, 2, 4, 8}.
//
// Two ratios fall out, reported per case and summarized for the deepest
// tree: the full phase against the prior minimizer (the end-to-end
// speedup; slicing converges to its own — equally valid, same leak key,
// never longer — 1-minimal fixpoint, so `matches_prior` is reported but
// not required), and the full phase against `from-initial` (byte-equal
// outputs enforced: a mismatch fails the whole bench).  `replayed_steps`
// counts machine steps actually executed — the honest CPU cost;
// `seeded_steps` is what checkpoint seeding skipped.  Wall-clock rows on
// a single-core host show the step ratio; thread scaling needs cores.
//
// Results are printed as a table and recorded to BENCH_MINIMIZER.json
// (override with --out FILE).  `--quick` runs a reduced matrix for CI
// smoke.
//
//===----------------------------------------------------------------------===//

#include "checker/SctChecker.h"
#include "sched/RandomScheduler.h"
#include "support/Printing.h"
#include "workloads/CryptoLibs.h"
#include "workloads/Kocher.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

using namespace sct;

namespace {

struct BenchCase {
  std::string Id;
  Program Prog;
  ExplorerOptions Mode;
  /// Also harvest bloated random-schedule witnesses (deep trees only —
  /// kocher gadgets are too small to bloat).
  bool BloatedCorpus = false;
};

struct RunRecord {
  std::string Config;
  unsigned Threads = 1;
  bool Seeded = false;
  bool Sliced = false;
  double Seconds = 0;
  MinimizeStats Stats;
  bool MatchesFromInitial = true;
  bool MatchesPrior = true;
};

/// MinSched per leak key — the identity oracle between configurations.
std::map<uint64_t, Schedule> minSchedByKey(const std::vector<LeakRecord> &Ls) {
  std::map<uint64_t, Schedule> Out;
  for (const LeakRecord &L : Ls)
    Out[L.key()] = L.MinSched;
  return Out;
}

/// Deterministic bloated witnesses: random well-formed schedules run to
/// their first secret observation, kept when the prefix is long enough
/// to be junk-rich.  Mirrors tests/MinimizerTest.cpp's corpus recipe.
std::vector<LeakRecord> bloatedWitnesses(const Machine &M,
                                         const Configuration &Init,
                                         size_t MaxWitnesses) {
  std::vector<LeakRecord> Out;
  for (uint64_t Seed = 1; Seed <= 80 && Out.size() < MaxWitnesses; ++Seed) {
    RandomRunOptions ROpts;
    ROpts.Seed = Seed;
    ROpts.MaxSteps = 600;
    ROpts.FetchWeight = 6; // Deep speculation: leaky and junk-rich.
    RunResult R = runRandom(M, Init, ROpts);
    Schedule Prefix;
    Configuration C = Init;
    for (const StepRecord &S : R.Trace) {
      PC Origin = leakOriginOf(C, S.D);
      auto Res = M.step(C, S.D);
      if (!Res)
        break;
      Prefix.push_back(S.D);
      if (Res->Obs.isSecret()) {
        if (Prefix.size() >= 64)
          Out.push_back(LeakRecord{Prefix, Res->Obs, Origin, Res->Rule});
        break;
      }
    }
  }
  return Out;
}

RunRecord runOne(const Machine &M, const Configuration &Init,
                 const std::vector<LeakRecord> &RawLeaks, const char *Config,
                 unsigned Threads, bool Seed, bool Memo, bool Slice,
                 const std::map<uint64_t, Schedule> *RefFromInitial,
                 const std::map<uint64_t, Schedule> *RefPrior) {
  std::vector<LeakRecord> Leaks = RawLeaks; // Fresh copies: MinSched empty.
  MinimizeOptions Opts;
  Opts.Threads = Threads;
  Opts.SeedReplays = Seed;
  Opts.MemoizeCandidates = Memo;
  Opts.SliceExcursions = Slice;
  auto T0 = std::chrono::steady_clock::now();
  MinimizeStats Stats = minimizeWitnesses(M, Init, Leaks, Opts);
  auto T1 = std::chrono::steady_clock::now();

  RunRecord Rec;
  Rec.Config = Config;
  Rec.Threads = Threads;
  Rec.Seeded = Seed;
  Rec.Sliced = Slice;
  Rec.Seconds = std::chrono::duration<double>(T1 - T0).count();
  Rec.Stats = Stats;
  std::map<uint64_t, Schedule> Mine = minSchedByKey(Leaks);
  if (RefFromInitial)
    Rec.MatchesFromInitial = Mine == *RefFromInitial;
  if (RefPrior)
    Rec.MatchesPrior = Mine == *RefPrior;
  return Rec;
}

void jsonRun(FILE *F, const RunRecord &R, bool Last) {
  std::fprintf(
      F,
      "      {\"config\": \"%s\", \"threads\": %u, \"seeded\": %s, "
      "\"sliced\": %s, \"seconds\": %.6f, \"replays\": %llu, "
      "\"replayed_steps\": %llu, \"seeded_steps\": %llu, "
      "\"sliced_excursions\": %llu, \"minimized_directives\": %llu, "
      "\"matches_from_initial\": %s, \"matches_prior\": %s}%s\n",
      R.Config.c_str(), R.Threads, R.Seeded ? "true" : "false",
      R.Sliced ? "true" : "false", R.Seconds,
      static_cast<unsigned long long>(R.Stats.Replays),
      static_cast<unsigned long long>(R.Stats.ReplayedSteps),
      static_cast<unsigned long long>(R.Stats.SeededSteps),
      static_cast<unsigned long long>(R.Stats.SlicedExcursions),
      static_cast<unsigned long long>(R.Stats.MinimizedDirectives),
      R.MatchesFromInitial ? "true" : "false",
      R.MatchesPrior ? "true" : "false", Last ? "" : ",");
}

} // namespace

int main(int Argc, char **Argv) {
  const char *OutPath = "BENCH_MINIMIZER.json";
  bool Quick = false;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--out") && I + 1 < Argc)
      OutPath = Argv[++I];
    else if (!std::strcmp(Argv[I], "--quick"))
      Quick = true;
    else {
      std::fprintf(stderr, "usage: %s [--out FILE] [--quick]\n", Argv[0]);
      return 2;
    }
  }

  std::vector<BenchCase> Cases;
  {
    BenchCase Kocher;
    Kocher.Id = "kocher-05-v4";
    Kocher.Prog = kocherCases()[4].Prog;
    Kocher.Mode = v4Mode();
    Cases.push_back(std::move(Kocher));
  }
  if (!Quick) {
    BenchCase Mee;
    Mee.Id = "mee-c-v4";
    Mee.Prog = meeC().Prog;
    Mee.Mode = v4Mode();
    Mee.BloatedCorpus = true;
    Cases.push_back(std::move(Mee));
  }
  {
    // The deep-tree case the acceptance ratio is read on (last in the
    // matrix); --quick keeps it with a smaller bloated corpus.
    BenchCase Ssl;
    Ssl.Id = "ssl3-c-v4";
    Ssl.Prog = ssl3C().Prog;
    Ssl.Mode = v4Mode();
    Ssl.BloatedCorpus = true;
    Cases.push_back(std::move(Ssl));
  }

  std::vector<unsigned> ThreadLadder =
      Quick ? std::vector<unsigned>{1, 2} : std::vector<unsigned>{1, 2, 4, 8};

  FILE *Out = std::fopen(OutPath, "w");
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutPath);
    return 2;
  }
  std::fprintf(
      Out,
      "{\n  \"bench\": \"minimizer-scaling\",\n"
      "  \"baselines\": {\n"
      "    \"prior-minimizer\": \"the sequential from-initial baseline: "
      "every candidate replayed in full from the initial configuration, "
      "no slicing, no memo (the pre-phase pipeline)\",\n"
      "    \"from-initial\": \"the shipped pipeline with replays pinned "
      "from-initial — the byte-identity reference for seeding, "
      "memoization, and threads\"\n  },\n  \"cases\": [\n");

  bool AllOk = true;
  double PhaseStepX = 0, PhaseWallX = 0, SeedStepX = 0, SeedWallX = 0;
  for (size_t CI = 0; CI < Cases.size(); ++CI) {
    const BenchCase &C = Cases[CI];
    // One deterministic exploration feeds every config: Threads=1 hybrid
    // snapshots with the checkpoint chain recorded, exactly what a
    // minimizing CheckSession would request.
    ExplorerOptions EOpts = C.Mode;
    EOpts.Threads = 1;
    EOpts.Snapshots = SnapshotPolicy::Hybrid;
    EOpts.RecordCheckpointChain = true;
    Machine M(C.Prog);
    Configuration Init = Configuration::initial(C.Prog);
    ExploreResult R = explore(M, Init, EOpts);
    std::vector<LeakRecord> Corpus = R.Leaks;
    if (C.BloatedCorpus)
      for (LeakRecord &L : bloatedWitnesses(M, Init, Quick ? 2 : 8))
        Corpus.push_back(std::move(L));

    uint64_t RawTotal = 0;
    for (const LeakRecord &L : Corpus)
      RawTotal += L.Sched.size();
    std::printf("%s: %zu witnesses, %llu raw directives\n", C.Id.c_str(),
                Corpus.size(), static_cast<unsigned long long>(RawTotal));

    std::vector<RunRecord> Runs;
    Runs.push_back(runOne(M, Init, Corpus, "prior-minimizer", 1,
                          /*Seed=*/false, /*Memo=*/false, /*Slice=*/false,
                          nullptr, nullptr));
    std::map<uint64_t, Schedule> RefPrior, RefFrom;
    {
      std::vector<LeakRecord> Tmp = Corpus;
      MinimizeOptions O;
      O.Threads = 1;
      O.SeedReplays = false;
      O.MemoizeCandidates = false;
      O.SliceExcursions = false;
      minimizeWitnesses(M, Init, Tmp, O);
      RefPrior = minSchedByKey(Tmp);
      Tmp = Corpus;
      O.SliceExcursions = true;
      minimizeWitnesses(M, Init, Tmp, O);
      RefFrom = minSchedByKey(Tmp);
    }
    Runs.push_back(runOne(M, Init, Corpus, "from-initial", 1, false, false,
                          true, &RefFrom, &RefPrior));
    for (unsigned T : ThreadLadder)
      Runs.push_back(runOne(M, Init, Corpus,
                            ("seeded-t" + std::to_string(T)).c_str(), T,
                            true, true, true, &RefFrom, &RefPrior));

    const RunRecord &Prior = Runs[0];
    const RunRecord &From = Runs[1];
    std::vector<std::vector<std::string>> Table;
    for (const RunRecord &Rec : Runs) {
      double StepX = Rec.Stats.ReplayedSteps
                         ? double(Prior.Stats.ReplayedSteps) /
                               double(Rec.Stats.ReplayedSteps)
                         : 0;
      double WallX = Rec.Seconds ? Prior.Seconds / Rec.Seconds : 0;
      Table.push_back({Rec.Config, std::to_string(Rec.Threads),
                       std::to_string(Rec.Seconds).substr(0, 6),
                       std::to_string(Rec.Stats.Replays),
                       std::to_string(Rec.Stats.ReplayedSteps),
                       std::to_string(StepX).substr(0, 4) + "x",
                       std::to_string(WallX).substr(0, 4) + "x",
                       Rec.MatchesFromInitial ? "ok" : "MISMATCH"});
      AllOk &= Rec.MatchesFromInitial;
    }
    std::printf("%s\n",
                renderTable({"config", "threads", "seconds", "replays",
                             "replayed steps", "steps vs prior",
                             "wall vs prior", "vs from-initial"},
                            Table)
                    .c_str());

    // The summary ratios are read on the deepest tree in the matrix.
    if (CI + 1 == Cases.size()) {
      const RunRecord &Full = Runs.back();
      if (Full.Stats.ReplayedSteps) {
        PhaseStepX = double(Prior.Stats.ReplayedSteps) /
                     double(Full.Stats.ReplayedSteps);
        SeedStepX = double(From.Stats.ReplayedSteps) /
                    double(Full.Stats.ReplayedSteps);
      }
      if (Full.Seconds) {
        PhaseWallX = Prior.Seconds / Full.Seconds;
        SeedWallX = From.Seconds / Full.Seconds;
      }
    }

    std::fprintf(Out,
                 "    {\"id\": \"%s\", \"witnesses\": %zu, "
                 "\"raw_directives\": %llu, \"runs\": [\n",
                 C.Id.c_str(), Corpus.size(),
                 static_cast<unsigned long long>(RawTotal));
    for (size_t I = 0; I < Runs.size(); ++I)
      jsonRun(Out, Runs[I], I + 1 == Runs.size());
    std::fprintf(Out, "    ]}%s\n", CI + 1 == Cases.size() ? "" : ",");
  }

  std::fprintf(
      Out,
      "  ],\n  \"deep_tree_summary\": {\n"
      "    \"full_phase_vs_prior_minimizer\": {\"replay_steps\": %.2f, "
      "\"wall_clock\": %.2f},\n"
      "    \"full_phase_vs_from_initial\": {\"replay_steps\": %.2f, "
      "\"wall_clock\": %.2f},\n"
      "    \"note\": \"threads do not shorten wall-clock on a 1-core "
      "host; the CI smoke run shows the parallel axis\"\n  },\n"
      "  \"all_min_scheds_match_from_initial\": %s\n}\n",
      PhaseStepX, PhaseWallX, SeedStepX, SeedWallX, AllOk ? "true" : "false");
  std::fclose(Out);
  std::printf("recorded %s\n", OutPath);
  if (!AllOk) {
    std::printf("MIN SCHED MISMATCH against the from-initial reference\n");
    return 1;
  }
  return 0;
}
