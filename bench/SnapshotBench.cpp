//===- bench/SnapshotBench.cpp - Snapshot policies: the K-sweep -------------===//
//
// The measurement behind ExplorerOptions::CheckpointInterval's default:
// the same schedule trees explored under
//   - SnapshotPolicy::Copy    (every fork stores its configuration),
//   - SnapshotPolicy::Replay  (prefix-only nodes, replay from the root),
//   - SnapshotPolicy::Hybrid  at K in {1, 2, 4, 8, 16, 32, 64}
// on one thread, so every counter is deterministic.  For each run the
// bench records wall-clock, TotalSteps (identical across policies by the
// engine's contract — a mismatch fails the bench), ReplaySteps (the CPU
// the policy pays re-deriving states) and Checkpoints (the frontier
// memory it pays holding full configurations).  Copy is the memory
// ceiling and CPU floor; Replay the reverse; the sweep shows where the
// hybrid stops paying replay without approaching Copy's footprint.
//
// Results are printed as a table and recorded to BENCH_SNAPSHOT.json
// (override with --out FILE).  `--quick` runs a reduced matrix for CI
// smoke.  Every run's deduplicated leak set is cross-checked against the
// Copy reference — a policy that went faster by dropping findings fails
// the whole bench.
//
//===----------------------------------------------------------------------===//

#include "checker/SctChecker.h"
#include "isa/AsmParser.h"
#include "support/Printing.h"
#include "workloads/CryptoLibs.h"
#include "workloads/Kocher.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

using namespace sct;

namespace {

struct BenchCase {
  std::string Id;
  Program Prog;
  ExplorerOptions Mode;
};

struct RunRecord {
  std::string Policy;
  unsigned K = 0; // 0 for Copy/Replay.
  double Seconds = 0;
  uint64_t Steps = 0;
  uint64_t ReplaySteps = 0;
  uint64_t Checkpoints = 0;
  size_t Leaks = 0;
  bool LeakSetOk = true;
};

std::set<uint64_t> leakKeys(const ExploreResult &R) {
  std::set<uint64_t> S;
  for (const LeakRecord &L : R.Leaks)
    S.insert(L.key());
  return S;
}

/// The fork-dense contention ladder from ContentionBench: pure frontier
/// traffic, so snapshot cost dominates the runtime.
Program forkLadder(unsigned Rungs) {
  std::string Asm = ".reg ra rb\n.init ra 1\nstart:\n";
  for (unsigned I = 0; I < Rungs; ++I) {
    std::string N = std::to_string(I);
    Asm += "  br ult ra, 4 -> t" + N + ", f" + N + "\n";
    Asm += "t" + N + ":\n  rb = add rb, 1\n";
    Asm += "f" + N + ":\n  rb = add rb, 2\n";
  }
  Asm += "end:\n";
  return parseAsmOrDie(Asm);
}

RunRecord runOne(const BenchCase &C, const char *Policy, SnapshotPolicy P,
                 unsigned K, const std::set<uint64_t> &RefLeaks,
                 uint64_t RefSteps) {
  ExplorerOptions Opts = C.Mode;
  Opts.Threads = 1;
  Opts.Snapshots = P;
  Opts.CheckpointInterval = K;
  Machine M(C.Prog);
  auto T0 = std::chrono::steady_clock::now();
  ExploreResult R = explore(M, Configuration::initial(C.Prog), Opts);
  auto T1 = std::chrono::steady_clock::now();

  RunRecord Rec;
  Rec.Policy = Policy;
  Rec.K = K;
  Rec.Seconds = std::chrono::duration<double>(T1 - T0).count();
  Rec.Steps = R.TotalSteps;
  Rec.ReplaySteps = R.ReplaySteps;
  Rec.Checkpoints = R.Checkpoints;
  Rec.Leaks = R.Leaks.size();
  Rec.LeakSetOk = leakKeys(R) == RefLeaks && R.TotalSteps == RefSteps;
  return Rec;
}

void jsonRun(FILE *F, const RunRecord &R, bool Last) {
  std::fprintf(F,
               "      {\"policy\": \"%s\", \"k\": %u, \"seconds\": %.6f, "
               "\"steps\": %llu, \"replay_steps\": %llu, "
               "\"checkpoints\": %llu, \"leaks\": %zu, "
               "\"matches_reference\": %s}%s\n",
               R.Policy.c_str(), R.K, R.Seconds,
               static_cast<unsigned long long>(R.Steps),
               static_cast<unsigned long long>(R.ReplaySteps),
               static_cast<unsigned long long>(R.Checkpoints), R.Leaks,
               R.LeakSetOk ? "true" : "false", Last ? "" : ",");
}

} // namespace

int main(int Argc, char **Argv) {
  const char *OutPath = "BENCH_SNAPSHOT.json";
  bool Quick = false;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--out") && I + 1 < Argc)
      OutPath = Argv[++I];
    else if (!std::strcmp(Argv[I], "--quick"))
      Quick = true;
    else {
      std::fprintf(stderr, "usage: %s [--out FILE] [--quick]\n", Argv[0]);
      return 2;
    }
  }

  std::vector<BenchCase> Cases;
  {
    BenchCase Ladder;
    Ladder.Id = Quick ? "fork-ladder-10" : "fork-ladder-14";
    Ladder.Prog = forkLadder(Quick ? 10 : 14);
    Ladder.Mode = v1v11Mode();
    Cases.push_back(std::move(Ladder));
  }
  {
    BenchCase Kocher;
    Kocher.Id = "kocher-05-v4";
    Kocher.Prog = kocherCases()[4].Prog;
    Kocher.Mode = v4Mode();
    Cases.push_back(std::move(Kocher));
  }
  if (!Quick) {
    // The two largest real trees; with PruneSeen (the default) both
    // complete, so the sweep measures snapshots on production-shaped
    // work, not on a truncation artifact.
    BenchCase Mee;
    Mee.Id = "mee-c-v4";
    Mee.Prog = meeC().Prog;
    Mee.Mode = v4Mode();
    Cases.push_back(std::move(Mee));

    BenchCase Ssl;
    Ssl.Id = "ssl3-c-v4";
    Ssl.Prog = ssl3C().Prog;
    Ssl.Mode = v4Mode();
    Cases.push_back(std::move(Ssl));
  }

  std::vector<unsigned> Ks = Quick ? std::vector<unsigned>{4, 16}
                                   : std::vector<unsigned>{1, 2, 4, 8,
                                                           16, 32, 64};

  FILE *Out = std::fopen(OutPath, "w");
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutPath);
    return 2;
  }
  std::fprintf(Out,
               "{\n  \"bench\": \"snapshot-policies\",\n"
               "  \"reference\": \"copy (every fork stores its COW "
               "configuration)\",\n  \"cases\": [\n");

  bool AllOk = true;
  for (size_t CI = 0; CI < Cases.size(); ++CI) {
    const BenchCase &C = Cases[CI];
    // Copy is the reference for both the leak set and the step counters.
    ExplorerOptions Ref = C.Mode;
    Ref.Threads = 1;
    Machine M(C.Prog);
    ExploreResult RefRun = explore(M, Configuration::initial(C.Prog), Ref);
    std::set<uint64_t> RefLeaks = leakKeys(RefRun);

    std::printf("%s:\n", C.Id.c_str());
    std::vector<RunRecord> Runs;
    Runs.push_back(
        runOne(C, "copy", SnapshotPolicy::Copy, 0, RefLeaks,
               RefRun.TotalSteps));
    Runs.push_back(runOne(C, "replay", SnapshotPolicy::Replay, 0, RefLeaks,
                          RefRun.TotalSteps));
    for (unsigned K : Ks)
      Runs.push_back(runOne(C, "hybrid", SnapshotPolicy::Hybrid, K,
                            RefLeaks, RefRun.TotalSteps));

    std::vector<std::vector<std::string>> Table;
    for (const RunRecord &R : Runs) {
      Table.push_back(
          {R.Policy, R.K ? std::to_string(R.K) : "-",
           std::to_string(R.Seconds).substr(0, 6), std::to_string(R.Steps),
           std::to_string(R.ReplaySteps), std::to_string(R.Checkpoints),
           R.LeakSetOk ? "ok" : "MISMATCH"});
      AllOk &= R.LeakSetOk;
    }
    std::printf("%s\n",
                renderTable({"policy", "K", "seconds", "steps",
                             "replay steps", "checkpoints", "vs copy"},
                            Table)
                    .c_str());

    std::fprintf(Out, "    {\"id\": \"%s\", \"runs\": [\n", C.Id.c_str());
    for (size_t I = 0; I < Runs.size(); ++I)
      jsonRun(Out, Runs[I], I + 1 == Runs.size());
    std::fprintf(Out, "    ]}%s\n", CI + 1 == Cases.size() ? "" : ",");
  }

  std::fprintf(Out,
               "  ],\n  \"default_checkpoint_interval\": 16,\n"
               "  \"all_runs_match_reference\": %s\n}\n",
               AllOk ? "true" : "false");
  std::fclose(Out);
  std::printf("recorded %s\n", OutPath);
  if (!AllOk) {
    std::printf("LEAK SET / STEP MISMATCH against the Copy reference\n");
    return 1;
  }
  return 0;
}
