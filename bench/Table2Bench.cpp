//===- bench/Table2Bench.cpp - Reproduces Table 2 ---------------------------===//
//
// Runs both §4.2.1 checker configurations over the eight crypto
// case-study models and prints the paper's detection matrix:
//
//   x = SCT violation found without forwarding-hazard detection
//       (speculation bound 250)
//   f = violation found only with forwarding-hazard detection
//       (speculation bound 20)
//   - = no violation found in either mode
//
//===----------------------------------------------------------------------===//

#include "checker/SctChecker.h"
#include "support/Printing.h"
#include "workloads/CryptoLibs.h"

#include <cstdio>

using namespace sct;

int main() {
  std::printf("Table 2: SCT violations in crypto case studies "
              "(paper §4.2.2)\n");
  std::printf("expected: donna {-,-}  secretbox {x,-}  ssl3 {x,f}  "
              "mee {x,f}\n\n");

  struct Row {
    const char *Name;
    SuiteCase CVariant, FactVariant;
  };
  Row Rows[] = {
      {"curve25519-donna", donnaC(), donnaFact()},
      {"libsodium secretbox", secretboxC(), secretboxFact()},
      {"OpenSSL ssl3 record validate", ssl3C(), ssl3Fact()},
      {"OpenSSL MEE-CBC", meeC(), meeFact()},
  };

  std::vector<std::vector<std::string>> Table;
  bool AllMatch = true;
  for (const Row &R : Rows) {
    TwoModeReport C = checkSctBothModes(R.CVariant.Prog);
    TwoModeReport F = checkSctBothModes(R.FactVariant.Prog);
    auto Stats = [](const TwoModeReport &Rep) {
      return std::to_string(Rep.V1V11.Exploration.TotalSteps +
                            Rep.V4.Exploration.TotalSteps) +
             " steps / " +
             std::to_string(Rep.V1V11.Exploration.SchedulesCompleted +
                            Rep.V4.Exploration.SchedulesCompleted) +
             " schedules";
    };
    Table.push_back({R.Name, C.cell(), F.cell(), Stats(C), Stats(F)});

    auto Expect = [&](const SuiteCase &S, const TwoModeReport &Rep) {
      bool Match = (!Rep.V1V11.secure()) == S.ExpectV1V11Leak &&
                   (!Rep.V4.secure()) == S.ExpectV4Leak;
      if (!Match)
        AllMatch = false;
    };
    Expect(R.CVariant, C);
    Expect(R.FactVariant, F);
  }

  std::printf("%s", renderTable({"Case Study", "C", "FaCT", "C (work)",
                                 "FaCT (work)"},
                                Table)
                        .c_str());
  std::printf("\nverdicts %s the paper's Table 2\n",
              AllMatch ? "MATCH" : "DO NOT MATCH");
  return AllMatch ? 0 : 1;
}
