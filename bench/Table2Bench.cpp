//===- bench/Table2Bench.cpp - Reproduces Table 2 ---------------------------===//
//
// Runs both §4.2.1 checker configurations over the eight crypto
// case-study models and prints the paper's detection matrix:
//
//   x = SCT violation found without forwarding-hazard detection
//       (speculation bound 250)
//   f = violation found only with forwarding-hazard detection
//       (speculation bound 20)
//   - = no violation found in either mode
//
// All sixteen explorations (8 programs × 2 modes) go to the engine as a
// single checkMany() batch and fan out over the session's worker pool.
// `Table2Bench [--threads N]`; N defaults to the hardware concurrency.
//
//===----------------------------------------------------------------------===//

#include "checker/SctChecker.h"
#include "engine/SessionArgs.h"
#include "support/Printing.h"
#include "workloads/CryptoLibs.h"

#include <cstdio>
#include <cstring>

using namespace sct;

int main(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I)
    if (!std::strcmp(Argv[I], "--help") || !std::strcmp(Argv[I], "-h")) {
      std::printf("usage: %s [session flags]\n%s", Argv[0],
                  sct::sessionFlagsHelp().c_str());
      return 0;
    }
  CheckSession Session(sessionOptionsFromArgs(Argc, Argv));

  std::printf("Table 2: SCT violations in crypto case studies "
              "(paper §4.2.2)\n");
  std::printf("expected: donna {-,-}  secretbox {x,-}  ssl3 {x,f}  "
              "mee {x,f}\n");
  std::printf("engine: %u worker thread(s)\n\n", Session.options().Threads);

  struct Row {
    const char *Name;
    SuiteCase CVariant, FactVariant;
  };
  Row Rows[] = {
      {"curve25519-donna", donnaC(), donnaFact()},
      {"libsodium secretbox", secretboxC(), secretboxFact()},
      {"OpenSSL ssl3 record validate", ssl3C(), ssl3Fact()},
      {"OpenSSL MEE-CBC", meeC(), meeFact()},
  };

  // One batch: for every row, both variants under both modes.
  std::vector<CheckRequest> Reqs;
  for (const Row &R : Rows)
    for (const SuiteCase *S : {&R.CVariant, &R.FactVariant})
      for (bool Fwd : {false, true}) {
        CheckRequest Req;
        Req.Id = S->Id + (Fwd ? "/v4" : "/v1v11");
        Req.Prog = S->Prog;
        Req.Opts = Fwd ? v4Mode() : v1v11Mode();
        Reqs.push_back(std::move(Req));
      }
  std::vector<CheckResult> Results =
      Session.checkMany(std::span<const CheckRequest>(Reqs));

  std::vector<std::vector<std::string>> Table;
  bool AllMatch = true;
  size_t Next = 0;
  for (const Row &R : Rows) {
    auto TakeTwoMode = [&]() {
      TwoModeReport Rep;
      Rep.V1V11 = toReport(std::move(Results[Next++]));
      Rep.V4 = toReport(std::move(Results[Next++]));
      return Rep;
    };
    TwoModeReport C = TakeTwoMode();
    TwoModeReport F = TakeTwoMode();
    auto Stats = [](const TwoModeReport &Rep) {
      return std::to_string(Rep.V1V11.Exploration.TotalSteps +
                            Rep.V4.Exploration.TotalSteps) +
             " steps / " +
             std::to_string(Rep.V1V11.Exploration.SchedulesCompleted +
                            Rep.V4.Exploration.SchedulesCompleted) +
             " schedules";
    };
    Table.push_back({R.Name, C.cell(), F.cell(), Stats(C), Stats(F)});

    auto Expect = [&](const SuiteCase &S, const TwoModeReport &Rep) {
      bool Match = (!Rep.V1V11.secure()) == S.ExpectV1V11Leak &&
                   (!Rep.V4.secure()) == S.ExpectV4Leak;
      if (!Match)
        AllMatch = false;
    };
    Expect(R.CVariant, C);
    Expect(R.FactVariant, F);
  }

  std::printf("%s", renderTable({"Case Study", "C", "FaCT", "C (work)",
                                 "FaCT (work)"},
                                Table)
                        .c_str());
  std::printf("\nverdicts %s the paper's Table 2\n",
              AllMatch ? "MATCH" : "DO NOT MATCH");
  return AllMatch ? 0 : 1;
}
