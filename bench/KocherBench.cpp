//===- bench/KocherBench.cpp - §4.2 test-suite detection results ------------===//
//
// The paper: "We use Pitchfork to detect leaks in the well-known Kocher
// test cases [19] for Spectre v1, as well as our more extensive test
// suite which includes Spectre v1.1 variants."  This harness prints, per
// case: the sequential-CT baseline verdict and the SCT verdicts in both
// checker modes, with the exploration work done.
//
//===----------------------------------------------------------------------===//

#include "checker/SctChecker.h"
#include "checker/SequentialCt.h"
#include "support/Printing.h"
#include "workloads/Kocher.h"
#include "workloads/SpectreSuites.h"

#include <cstdio>

using namespace sct;

namespace {

bool reportSuite(const char *Title, const std::vector<SuiteCase> &Cases) {
  std::printf("%s\n", Title);
  std::vector<std::vector<std::string>> Table;
  bool AllMatch = true;
  for (const SuiteCase &C : Cases) {
    bool SeqLeak = !checkSequentialCt(C.Prog).secure();
    SctReport NoFwd = checkSct(C.Prog, v1v11Mode());
    SctReport Fwd = checkSct(C.Prog, v4Mode());
    bool Match = SeqLeak == C.ExpectSeqLeak &&
                 !NoFwd.secure() == C.ExpectV1V11Leak &&
                 !Fwd.secure() == C.ExpectV4Leak;
    AllMatch = AllMatch && Match;
    Table.push_back(
        {C.Id, SeqLeak ? "leak" : "ct", !NoFwd.secure() ? "LEAK" : "secure",
         !Fwd.secure() ? "LEAK" : "secure",
         std::to_string(NoFwd.Exploration.TotalSteps),
         std::to_string(Fwd.Exploration.TotalSteps),
         Match ? "ok" : "MISMATCH"});
  }
  std::printf("%s\n",
              renderTable({"case", "seq-ct", "sct (no fwd)", "sct (fwd)",
                           "steps (no fwd)", "steps (fwd)", "expected"},
                          Table)
                  .c_str());
  return AllMatch;
}

} // namespace

int main() {
  bool Ok = true;
  Ok &= reportSuite("Kocher Spectre v1 cases (adapted, speculative-only):",
                    kocherCases());
  Ok &= reportSuite("Kocher original-style cases (sequentially leaky):",
                    kocherOriginalCases());
  Ok &= reportSuite("Spectre v1.1 suite:", spectreV11Cases());
  Ok &= reportSuite("Spectre v4 suite:", spectreV4Cases());
  std::printf("all verdicts %s expectations\n", Ok ? "MATCH" : "DO NOT MATCH");
  return Ok ? 0 : 1;
}
