//===- bench/KocherBench.cpp - §4.2 test-suite detection results ------------===//
//
// The paper: "We use Pitchfork to detect leaks in the well-known Kocher
// test cases [19] for Spectre v1, as well as our more extensive test
// suite which includes Spectre v1.1 variants."  This harness prints, per
// case: the sequential-CT baseline verdict and the SCT verdicts in both
// checker modes, with the exploration work done.
//
// Every suite goes through the engine layer: one CheckSession, one
// checkMany() batch per suite (two mode-requests per case), fanned out
// over the worker pool.  `KocherBench [--threads N]`; N defaults to the
// hardware concurrency.
//
//===----------------------------------------------------------------------===//

#include "support/Printing.h"
#include "workloads/Kocher.h"
#include "workloads/SpectreSuites.h"
#include "workloads/SuiteRunner.h"

#include <cstdio>

using namespace sct;

namespace {

bool reportSuite(const CheckSession &Session, const char *Title,
                 const std::vector<SuiteCase> &Cases) {
  std::printf("%s\n", Title);
  std::vector<SuiteVerdict> Verdicts = runSuite(Session, Cases);
  std::vector<std::vector<std::string>> Table;
  for (const SuiteVerdict &V : Verdicts)
    Table.push_back(
        {V.Id, V.SeqLeak ? "leak" : "ct",
         !V.V1V11.secure() ? "LEAK" : "secure",
         !V.V4.secure() ? "LEAK" : "secure",
         std::to_string(V.V1V11.Exploration.TotalSteps),
         std::to_string(V.V4.Exploration.TotalSteps),
         V.Matches ? "ok" : "MISMATCH"});
  std::printf("%s\n",
              renderTable({"case", "seq-ct", "sct (no fwd)", "sct (fwd)",
                           "steps (no fwd)", "steps (fwd)", "expected"},
                          Table)
                  .c_str());
  return allMatch(Verdicts);
}

} // namespace

int main(int Argc, char **Argv) {
  CheckSession Session(sessionOptionsFromArgs(Argc, Argv));
  std::printf("engine: %u worker thread(s)\n\n", Session.options().Threads);

  bool Ok = true;
  Ok &= reportSuite(Session,
                    "Kocher Spectre v1 cases (adapted, speculative-only):",
                    kocherCases());
  Ok &= reportSuite(Session,
                    "Kocher original-style cases (sequentially leaky):",
                    kocherOriginalCases());
  Ok &= reportSuite(Session, "Spectre v1.1 suite:", spectreV11Cases());
  Ok &= reportSuite(Session, "Spectre v4 suite:", spectreV4Cases());
  std::printf("all verdicts %s expectations\n", Ok ? "MATCH" : "DO NOT MATCH");
  return Ok ? 0 : 1;
}
