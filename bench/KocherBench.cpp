//===- bench/KocherBench.cpp - §4.2 test-suite detection results ------------===//
//
// The paper: "We use Pitchfork to detect leaks in the well-known Kocher
// test cases [19] for Spectre v1, as well as our more extensive test
// suite which includes Spectre v1.1 variants."  This harness prints, per
// case: the sequential-CT baseline verdict and the SCT verdicts in both
// checker modes, with the exploration work done.
//
// Every suite goes through the engine layer: one CheckSession, one
// checkMany() batch per suite (two mode-requests per case), fanned out
// over the worker pool.  `KocherBench [--threads N]`; N defaults to the
// hardware concurrency.
//
//===----------------------------------------------------------------------===//

#include "isa/AsmPrinter.h"
#include "engine/SessionArgs.h"
#include "support/Printing.h"
#include "workloads/Kocher.h"
#include "workloads/SpectreSuites.h"
#include "workloads/SuiteRunner.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

using namespace sct;

namespace {

bool reportSuite(const CheckSession &Session, const char *Title,
                 const std::vector<SuiteCase> &Cases) {
  std::printf("%s\n", Title);
  std::vector<SuiteVerdict> Verdicts = runSuite(Session, Cases);
  std::vector<std::vector<std::string>> Table;
  for (const SuiteVerdict &V : Verdicts)
    Table.push_back(
        {V.Id, V.SeqLeak ? "leak" : "ct",
         !V.V1V11.secure() ? "LEAK" : "secure",
         !V.V4.secure() ? "LEAK" : "secure",
         std::to_string(V.V1V11.Exploration.TotalSteps),
         std::to_string(V.V4.Exploration.TotalSteps),
         V.Matches ? "ok" : "MISMATCH"});
  std::printf("%s\n",
              renderTable({"case", "seq-ct", "sct (no fwd)", "sct (fwd)",
                           "steps (no fwd)", "steps (fwd)", "expected"},
                          Table)
                  .c_str());
  return allMatch(Verdicts);
}

} // namespace

int main(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I)
    if (!std::strcmp(Argv[I], "--help") || !std::strcmp(Argv[I], "-h")) {
      std::printf("usage: %s [session flags]\n%s", Argv[0],
                  sct::sessionFlagsHelp().c_str());
      return 0;
    }
  // `--dump-asm DIR` writes each case as DIR/<id>.sct and exits — the CI
  // smoke feeds these to `sctcheck --prove-sps` over the whole corpus.
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--dump-asm") && I + 1 < Argc) {
      std::string Dir = Argv[I + 1];
      std::error_code Ec;
      std::filesystem::create_directories(Dir, Ec);
      if (Ec) {
        std::fprintf(stderr, "error: cannot create '%s': %s\n", Dir.c_str(),
                     Ec.message().c_str());
        return 2;
      }
      auto Dump = [&Dir](const std::vector<SuiteCase> &Cases) {
        for (const SuiteCase &C : Cases) {
          std::string Path = Dir + "/" + C.Id + ".sct";
          std::ofstream Out(Path);
          if (!Out) {
            std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
            std::exit(2);
          }
          Out << printAsm(C.Prog);
        }
      };
      Dump(kocherCases());
      Dump(kocherOriginalCases());
      std::printf("dumped %zu cases to %s\n",
                  kocherCases().size() + kocherOriginalCases().size(),
                  Dir.c_str());
      return 0;
    }
  }

  CheckSession Session(sessionOptionsFromArgs(Argc, Argv));
  std::printf("engine: %u worker thread(s)\n\n", Session.options().Threads);

  bool Ok = true;
  Ok &= reportSuite(Session,
                    "Kocher Spectre v1 cases (adapted, speculative-only):",
                    kocherCases());
  Ok &= reportSuite(Session,
                    "Kocher original-style cases (sequentially leaky):",
                    kocherOriginalCases());
  Ok &= reportSuite(Session, "Spectre v1.1 suite:", spectreV11Cases());
  Ok &= reportSuite(Session, "Spectre v4 suite:", spectreV4Cases());
  std::printf("all verdicts %s expectations\n", Ok ? "MATCH" : "DO NOT MATCH");
  return Ok ? 0 : 1;
}
