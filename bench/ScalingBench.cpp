//===- bench/ScalingBench.cpp - Exploration cost vs speculation bound -------===//
//
// §4.2: "exploring every speculative branch and potential store-forward
// within a given speculation bound leads to an explosion in state space.
// In our tests, we were able to support speculation bounds of up to 20
// instructions [with forwarding hazards].  We were able to increase this
// bound to 250 instructions when we disabled checking for store-
// forwarding hazards."
//
// Google-benchmark sweeps over the speculation bound in both modes on a
// crypto-sized workload, plus raw machine-step and sequential-execution
// throughput — and the engine axes on top: frontier worker threads,
// snapshot policy (Copy vs Replay), and batched multi-program checking
// through CheckSession::checkMany.
//
//===----------------------------------------------------------------------===//

#include "checker/SctChecker.h"
#include "sched/SequentialScheduler.h"
#include "workloads/ChaCha.h"
#include "workloads/CryptoLibs.h"
#include "workloads/Figures.h"
#include "workloads/Kocher.h"
#include "workloads/SpectreSuites.h"

#include <benchmark/benchmark.h>

using namespace sct;

namespace {

void BM_ExploreNoForwardingHazards(benchmark::State &State) {
  SuiteCase C = secretboxC();
  Machine M(C.Prog);
  uint64_t Steps = 0;
  for (auto _ : State) {
    ExplorerOptions Opts = v1v11Mode();
    Opts.SpeculationBound = static_cast<unsigned>(State.range(0));
    ExploreResult R = explore(M, Configuration::initial(C.Prog), Opts);
    benchmark::DoNotOptimize(R.Leaks.size());
    Steps += R.TotalSteps;
  }
  State.counters["steps"] =
      benchmark::Counter(static_cast<double>(Steps),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ExploreNoForwardingHazards)
    ->Arg(10)
    ->Arg(20)
    ->Arg(50)
    ->Arg(100)
    ->Arg(250);

void BM_ExploreWithForwardingHazards(benchmark::State &State) {
  SuiteCase C = meeFact();
  Machine M(C.Prog);
  uint64_t Steps = 0;
  for (auto _ : State) {
    ExplorerOptions Opts = v4Mode();
    Opts.SpeculationBound = static_cast<unsigned>(State.range(0));
    ExploreResult R = explore(M, Configuration::initial(C.Prog), Opts);
    benchmark::DoNotOptimize(R.Leaks.size());
    Steps += R.TotalSteps;
  }
  State.counters["steps"] =
      benchmark::Counter(static_cast<double>(Steps),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ExploreWithForwardingHazards)->Arg(5)->Arg(10)->Arg(20);

void BM_ExploreDonnaStraightLine(benchmark::State &State) {
  // The clean-crypto cost: the paper's tractability claim rests on
  // straight-line constant-time kernels exploring cheaply.
  SuiteCase C = donnaFact();
  Machine M(C.Prog);
  for (auto _ : State) {
    ExplorerOptions Opts = State.range(0) ? v4Mode() : v1v11Mode();
    ExploreResult R = explore(M, Configuration::initial(C.Prog), Opts);
    benchmark::DoNotOptimize(R.SchedulesCompleted);
  }
}
BENCHMARK(BM_ExploreDonnaStraightLine)->Arg(0)->Arg(1);

void BM_ExploreArxKernel(benchmark::State &State) {
  // Straight-line ARX scalability: exploration cost vs kernel size
  // (double-rounds), v4 mode.
  SuiteCase C = chachaKernel(static_cast<unsigned>(State.range(0)));
  Machine M(C.Prog);
  for (auto _ : State) {
    ExploreResult R = explore(M, Configuration::initial(C.Prog), v4Mode());
    benchmark::DoNotOptimize(R.SchedulesCompleted);
  }
  State.counters["instrs"] = static_cast<double>(C.Prog.size());
}
BENCHMARK(BM_ExploreArxKernel)->Arg(1)->Arg(2)->Arg(4);

void BM_ExploreThreadScaling(benchmark::State &State) {
  // The parallel engine on the largest schedule tree in the repo:
  // MEE-CBC (C variant) in v1/v1.1 mode — hundreds of thousands of
  // schedules, millions of steps.  Sweeping the worker count measures
  // frontier-drain scaling on the program where it matters.
  SuiteCase C = meeC();
  Machine M(C.Prog);
  for (auto _ : State) {
    ExplorerOptions Opts = v1v11Mode();
    Opts.Threads = static_cast<unsigned>(State.range(0));
    ExploreResult R = explore(M, Configuration::initial(C.Prog), Opts);
    benchmark::DoNotOptimize(R.Leaks.size());
  }
  State.counters["threads"] = static_cast<double>(State.range(0));
}
BENCHMARK(BM_ExploreThreadScaling)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ExploreThreadScalingFwd(benchmark::State &State) {
  // Same sweep with forwarding-hazard detection (v4 mode) on the
  // FaCT MEE model.
  SuiteCase C = meeFact();
  Machine M(C.Prog);
  for (auto _ : State) {
    ExplorerOptions Opts = v4Mode();
    Opts.Threads = static_cast<unsigned>(State.range(0));
    ExploreResult R = explore(M, Configuration::initial(C.Prog), Opts);
    benchmark::DoNotOptimize(R.Leaks.size());
  }
  State.counters["threads"] = static_cast<double>(State.range(0));
}
BENCHMARK(BM_ExploreThreadScalingFwd)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ExploreThreadScalingNoFwd(benchmark::State &State) {
  // Same sweep in v1/v1.1 mode (bound 250) on secretbox.
  SuiteCase C = secretboxC();
  Machine M(C.Prog);
  for (auto _ : State) {
    ExplorerOptions Opts = v1v11Mode();
    Opts.Threads = static_cast<unsigned>(State.range(0));
    ExploreResult R = explore(M, Configuration::initial(C.Prog), Opts);
    benchmark::DoNotOptimize(R.Leaks.size());
  }
  State.counters["threads"] = static_cast<double>(State.range(0));
}
BENCHMARK(BM_ExploreThreadScalingNoFwd)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SnapshotPolicy(benchmark::State &State) {
  // Copy (COW configurations) vs Replay (prefix-only nodes) fork cost.
  SuiteCase C = meeFact();
  Machine M(C.Prog);
  for (auto _ : State) {
    ExplorerOptions Opts = v4Mode();
    Opts.Snapshots = State.range(0) ? SnapshotPolicy::Replay
                                    : SnapshotPolicy::Copy;
    ExploreResult R = explore(M, Configuration::initial(C.Prog), Opts);
    benchmark::DoNotOptimize(R.Leaks.size());
  }
  State.SetLabel(State.range(0) ? "replay" : "copy");
}
BENCHMARK(BM_SnapshotPolicy)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_CheckManyBatch(benchmark::State &State) {
  // Program-level fan-out: the whole Kocher + v1.1 corpus as one
  // checkMany batch, sweeping the session thread budget.
  std::vector<Program> Progs;
  for (const SuiteCase &C : kocherCases())
    Progs.push_back(C.Prog);
  for (const SuiteCase &C : spectreV11Cases())
    Progs.push_back(C.Prog);
  SessionOptions SOpts;
  SOpts.Threads = static_cast<unsigned>(State.range(0));
  SOpts.DefaultOpts = v4Mode();
  CheckSession Session(SOpts);
  for (auto _ : State) {
    std::vector<CheckResult> R =
        Session.checkMany(std::span<const Program>(Progs));
    benchmark::DoNotOptimize(R.size());
  }
  State.counters["programs"] = static_cast<double>(Progs.size());
}
BENCHMARK(BM_CheckManyBatch)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_MachineStepThroughput(benchmark::State &State) {
  // Raw small-step speed: one fetch+execute+retire op cycle.
  FigureCase C = figure1();
  Machine M(C.Prog);
  Configuration Init = Configuration::initial(C.Prog);
  Schedule D = C.PaperSchedule;
  for (auto _ : State) {
    RunResult R = runSchedule(M, Init, D);
    benchmark::DoNotOptimize(R.Trace.size());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(D.size()));
}
BENCHMARK(BM_MachineStepThroughput);

void BM_SequentialExecution(benchmark::State &State) {
  SuiteCase C = donnaC();
  Machine M(C.Prog);
  Configuration Init = Configuration::initial(C.Prog);
  for (auto _ : State) {
    SequentialResult R = runSequential(M, Init);
    benchmark::DoNotOptimize(R.Run.Retires);
    State.counters["retired"] = static_cast<double>(R.Run.Retires);
  }
}
BENCHMARK(BM_SequentialExecution);

} // namespace

BENCHMARK_MAIN();
