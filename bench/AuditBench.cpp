//===- bench/AuditBench.cpp - Cold vs warm corpus audit ---------------------===//
//
// The audit-service tentpole number: re-auditing an unchanged corpus
// through the content-addressed result cache must be an order of
// magnitude faster than the cold audit that populated it — and serve
// results whose re-serialized bytes are identical to the cold run's.
//
// Flow: dump the Kocher corpus into a fresh cache directory twice through
// the same CheckSession configuration.  The cold pass explores everything
// and stores; the warm pass must be all hits.  A third pass flips one
// option (the speculation bound) to confirm the fingerprint separates it
// — a changed audit must MISS, not serve a stale verdict.
//
//   AuditBench [--quick] [--out BENCH_AUDIT.json] [session flags]
//
// The committed BENCH_AUDIT.json is this harness's full-corpus output.
//
//===----------------------------------------------------------------------===//

#include "checker/SctChecker.h"
#include "engine/ResultCache.h"
#include "engine/Serialization.h"
#include "engine/SessionArgs.h"
#include "workloads/Kocher.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <unistd.h>
#include <vector>

using namespace sct;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

int main(int Argc, char **Argv) {
  const char *OutPath = "BENCH_AUDIT.json";
  bool Quick = false;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--help") || !std::strcmp(Argv[I], "-h")) {
      std::printf("usage: %s [--quick] [--out FILE] [session flags]\n%s",
                  Argv[0], sessionFlagsHelp().c_str());
      return 0;
    }
  }
  SessionArgs SA = parseSessionArgs(Argc, Argv);
  for (int I = 1; I < Argc; ++I) {
    if (SA.Consumed[static_cast<size_t>(I)])
      continue;
    if (!std::strcmp(Argv[I], "--out") && I + 1 < Argc)
      OutPath = Argv[++I];
    else if (!std::strcmp(Argv[I], "--quick"))
      Quick = true;
    else {
      std::fprintf(stderr, "usage: %s [--quick] [--out FILE] [session flags]\n",
                   Argv[0]);
      return 2;
    }
  }

  // Corpus: every Kocher case in both checker modes (the paper's two
  // configurations).  --quick keeps one mode to fit the CI smoke.
  std::vector<CheckRequest> Reqs;
  for (const SuiteCase &C : kocherCases()) {
    CheckRequest V1;
    V1.Id = C.Id + "/v1v11";
    V1.Prog = C.Prog;
    V1.Opts = v1v11Mode();
    Reqs.push_back(std::move(V1));
    if (Quick)
      continue;
    CheckRequest V4;
    V4.Id = C.Id + "/v4";
    V4.Prog = C.Prog;
    V4.Opts = v4Mode();
    Reqs.push_back(std::move(V4));
  }

  // A fresh cache directory per run: the bench measures the cold->warm
  // transition, not whatever a previous run left behind.
  std::string CacheDir =
      (std::filesystem::temp_directory_path() /
       ("sct-audit-bench-" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(CacheDir);

  SessionOptions SOpts = SA.Opts;
  SOpts.CacheDir = CacheDir;
  auto Audit = [&](std::vector<CheckResult> &Out, uint64_t &Hits) {
    // A fresh session per pass: hit counters and cache handle start clean.
    CheckSession Session(SOpts);
    double T0 = now();
    Out = Session.checkMany(std::span<const CheckRequest>(Reqs));
    double T1 = now();
    Hits = Session.cache() ? Session.cache()->hits() : 0;
    return T1 - T0;
  };

  std::vector<CheckResult> Cold, Warm;
  uint64_t ColdHits = 0, WarmHits = 0;
  double ColdSec = Audit(Cold, ColdHits);
  double WarmSec = Audit(Warm, WarmHits);

  // The warm pass must serve every request from disk, and its results
  // must re-serialize to exactly the cold run's bytes.
  bool AllHits = WarmHits == Reqs.size();
  bool ByteIdentical = true;
  for (size_t I = 0; I < Reqs.size(); ++I) {
    if (!Warm[I].FromCache ||
        serializeCheckResult(Cold[I]) != serializeCheckResult(Warm[I])) {
      std::fprintf(stderr, "mismatch on %s (from-cache: %s)\n",
                   Reqs[I].Id.c_str(), Warm[I].FromCache ? "yes" : "no");
      ByteIdentical = false;
    }
  }

  // Fingerprint separation: change one behavior-affecting option and the
  // warm cache must miss (a stale verdict would be a soundness bug).
  std::vector<CheckRequest> Changed = Reqs;
  for (CheckRequest &R : Changed)
    R.Opts.SpeculationBound += 1;
  CheckSession ChangedSession(SOpts);
  std::vector<CheckResult> ChangedRes =
      ChangedSession.checkMany(std::span<const CheckRequest>(Changed));
  bool ChangedAllMiss =
      ChangedSession.cache() && ChangedSession.cache()->hits() == 0;

  double Speedup = WarmSec > 0 ? ColdSec / WarmSec : 0;
  std::printf("audit corpus: %zu request(s)\n", Reqs.size());
  std::printf("cold: %.3fs (%llu hit(s)); warm: %.3fs (%llu hit(s))\n",
              ColdSec, static_cast<unsigned long long>(ColdHits), WarmSec,
              static_cast<unsigned long long>(WarmHits));
  std::printf("warm speedup: %.1fx; byte-identical results: %s; "
              "changed-options all-miss: %s\n",
              Speedup, ByteIdentical ? "yes" : "NO",
              ChangedAllMiss ? "yes" : "NO");

  FILE *Out = std::fopen(OutPath, "w");
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutPath);
    return 2;
  }
  std::fprintf(
      Out,
      "{\n  \"bench\": \"audit-cache\",\n"
      "  \"corpus\": \"kocher%s\",\n"
      "  \"requests\": %zu,\n"
      "  \"cold_seconds\": %.6f,\n"
      "  \"warm_seconds\": %.6f,\n"
      "  \"warm_speedup\": %.2f,\n"
      "  \"warm_hits\": %llu,\n"
      "  \"warm_all_hits\": %s,\n"
      "  \"byte_identical_results\": %s,\n"
      "  \"changed_options_all_miss\": %s\n}\n",
      Quick ? " (v1v11 only)" : " (v1v11 + v4)", Reqs.size(), ColdSec,
      WarmSec, Speedup, static_cast<unsigned long long>(WarmHits),
      AllHits ? "true" : "false", ByteIdentical ? "true" : "false",
      ChangedAllMiss ? "true" : "false");
  std::fclose(Out);
  std::printf("wrote %s\n", OutPath);

  std::filesystem::remove_all(CacheDir);
  bool Ok = AllHits && ByteIdentical && ChangedAllMiss && Speedup >= 10.0;
  if (!Ok)
    std::fprintf(stderr, "FAIL: all-hits=%d byte-identical=%d all-miss=%d "
                         "speedup=%.1f (need >= 10x)\n",
                 AllHits, ByteIdentical, ChangedAllMiss, Speedup);
  return Ok ? 0 : 1;
}
