//===- bench/FiguresBench.cpp - Regenerates every figure walkthrough --------===//
//
// For each worked figure of the paper, prints the program, the figure's
// attacker-directive schedule, and the resulting directive / buffer-
// effect / leakage table (the paper's three-column figure layout), plus
// the checker verdict.  Also prints Table 1 (instruction and transient
// forms) from the live implementation.
//
//===----------------------------------------------------------------------===//

#include "checker/SctChecker.h"
#include "engine/SessionArgs.h"
#include "checker/SequentialCt.h"
#include "isa/AsmPrinter.h"
#include "support/Printing.h"
#include "workloads/Figures.h"

#include <cstdio>
#include <cstring>

using namespace sct;

namespace {

void printTable1() {
  std::printf("Table 1: instructions and their transient forms\n");
  std::vector<std::vector<std::string>> Rows = {
      {"arithmetic op", "(r = op(op, rv.., n'))",
       "(r = op(op, rv..)) | (r = v_l)"},
      {"conditional branch", "br(op, rv.., nt, nf)",
       "br(op, rv.., n0, (nt, nf)) | jump n0"},
      {"memory load", "(r = load(rv.., n'))",
       "(r = load(rv..))_n | (r = load(rv.., (v_l, j)))_n | "
       "(r = v_l{_|j, a})_n"},
      {"memory store", "store(rv, rv.., n')",
       "store(rv, rv..) | store(v_l, a_l)"},
      {"indirect jump", "jmpi(rv..)", "jmpi(rv.., n0) | jump n0"},
      {"function call", "call(nf, nret)", "call (+ rsp bump + ret store)"},
      {"return", "ret", "ret (+ load + rsp drop + jmpi)"},
      {"speculation fence", "fence n", "fence"},
  };
  std::printf("%s\n",
              renderTable({"instruction", "physical form", "transient forms"},
                          Rows)
                  .c_str());
}

void printFigure(const FigureCase &C, const SctReport &R) {
  std::printf("=== %s: %s ===\n", C.Name.c_str(), C.Description.c_str());
  std::printf("program:\n%s\n", printAsm(C.Prog).c_str());

  Machine M(C.Prog);
  if (!C.PaperSchedule.empty()) {
    std::printf("attacker schedule: %s\n\n",
                printSchedule(C.PaperSchedule).c_str());
    std::printf("%s\n",
                printRun(M, Configuration::initial(C.Prog), C.PaperSchedule)
                    .c_str());
  }

  bool SeqLeak = !checkSequentialCt(C.Prog).secure();
  std::printf("sequential constant-time: %s\n", SeqLeak ? "LEAK" : "yes");
  std::printf("checker: %s", describeResult(C.Prog, R.Exploration).c_str());
  std::printf("expected: %s — %s\n\n",
              C.ExpectLeak ? "violation" : "secure",
              (!R.secure() == C.ExpectLeak) ? "MATCH" : "MISMATCH");
}

} // namespace

int main(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I)
    if (!std::strcmp(Argv[I], "--help") || !std::strcmp(Argv[I], "-h")) {
      std::printf("usage: %s [session flags]\n%s", Argv[0],
                  sct::sessionFlagsHelp().c_str());
      return 0;
    }
  CheckSession Session(sessionOptionsFromArgs(Argc, Argv));

  printTable1();

  // One engine batch: every figure under its own checker options; each
  // figure is explored exactly once.
  std::vector<FigureCase> Figures = allFigures();
  std::vector<CheckRequest> Reqs;
  for (const FigureCase &C : Figures) {
    CheckRequest Req;
    Req.Id = C.Name;
    Req.Prog = C.Prog;
    Req.Opts = C.CheckOpts;
    Reqs.push_back(std::move(Req));
  }
  std::vector<CheckResult> Results =
      Session.checkMany(std::span<const CheckRequest>(Reqs));

  bool AllMatch = true;
  for (size_t I = 0; I < Figures.size(); ++I) {
    SctReport R = toReport(std::move(Results[I]));
    printFigure(Figures[I], R);
    AllMatch = AllMatch && (!R.secure() == Figures[I].ExpectLeak);
  }
  std::printf("all figure verdicts %s the paper\n",
              AllMatch ? "MATCH" : "DO NOT MATCH");
  return AllMatch ? 0 : 1;
}
