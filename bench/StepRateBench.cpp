//===- bench/StepRateBench.cpp - Engine core step rate --------------------===//
//
// The tentpole measurement for the cache-friendly engine core (flat COW
// memory, chunked structurally-shared ROB with a lazily-folded
// incremental fingerprint, flat seen-state table): per-core steps/sec on
// the two largest pruned v4 crypto trees, against the **pre-PR layout**
// — the node-based engine this rewrite replaced.  Each run also records
// the fork-copy accounting (configurations forked, ROB bytes actually
// moved vs. the flat-slab equivalent): the chunked layout's sharing is
// what turned fork cost from O(live suffix) into O(delta).
//
// The old layout no longer exists in this binary, so its rates are
// embedded below as measured constants with provenance (same machine,
// equivalent best-of driver, runs interleaved with the new layout to
// cancel machine drift; identity digests over full leak records were
// byte-identical).  `--prepr ID=RATE` re-anchors them after
// re-measuring on different hardware.
//
// The binary still carries one knob of the old behaviour:
// `ExplorerOptions::FromScratchHashing` makes every seen-state probe
// re-walk the whole configuration instead of reading the maintained
// fingerprint.  Both modes run here as a hashing-sensitivity column —
// they compute bit-identical hash values, and the bench enforces result
// identity: every run's leak-key set must match the sequential
// reference, the Threads=1 runs must produce byte-identical LeakRecords
// (keys, schedules, observations), and their minimized witnesses must
// match byte-for-byte.
//
// Results go to BENCH_STEPRATE.json (override with --out FILE); the
// headline is per-core steps/sec at Threads=1 vs the pre-PR layout,
// with the >=2x target recorded alongside.  `--quick` runs a reduced
// matrix for CI smoke, and `--check-against FILE` compares this run's
// per-core step rate with a committed JSON, failing on a >25%
// regression.  The comparison normalizes both sides by a small
// fixed-work calibration loop timed in the same process, so the gate
// survives moving between machines of different single-core speed.
//
//===----------------------------------------------------------------------===//

#include "checker/SctChecker.h"
#include "engine/WitnessMinimizer.h"
#include "support/Hashing.h"
#include "support/Printing.h"
#include "workloads/CryptoLibs.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace sct;

namespace {

/// Pre-PR layout per-core steps/sec at Threads=1 (prune on), measured at
/// the growth-seed commit with an equivalent driver: best of interleaved
/// best-of-5 timed explores, -O2 -DNDEBUG, same machine as the committed
/// BENCH_STEPRATE.json.  Leak records, raw schedules, and minimized
/// schedules were byte-identical between the layouts at Threads=1 (full
/// record digest) and leak-key sets equal at Threads=8.
struct PreprBaseline {
  const char *Id;
  double PerCoreT1;
};
PreprBaseline PreprBaselines[] = {
    {"mee-c-v4", 2571788.0},
    {"ssl3-c-v4", 2103168.0},
};

/// Timed explores repeat this many times per cell; the best wall time
/// wins (the usual bench defence against scheduler noise).
constexpr int Repeats = 5;

struct BenchCase {
  std::string Id;
  Program Prog;
  ExplorerOptions Mode;
};

struct RunRecord {
  std::string Config;
  unsigned Threads = 0;
  double Seconds = 0;
  uint64_t Steps = 0;
  size_t Leaks = 0;
  bool LeakSetOk = true;
  /// Fork-copy accounting from the structurally-shared ROB (see
  /// ExploreResult): configurations copied at fork sites, the ROB bytes
  /// those copies actually moved, and the flat-slab equivalent.  The
  /// flat/copied ratio is the sharing factor the chunked layout buys.
  uint64_t Forked = 0;
  uint64_t RobCopied = 0;
  uint64_t RobFlat = 0;
  double stepsPerSec() const { return Seconds > 0 ? Steps / Seconds : 0; }
  double perCore() const { return Threads ? stepsPerSec() / Threads : 0; }
  double shareFactor() const {
    return RobCopied ? double(RobFlat) / double(RobCopied) : 0;
  }
};

std::set<uint64_t> leakKeys(const ExploreResult &R) {
  std::set<uint64_t> S;
  for (const LeakRecord &L : R.Leaks)
    S.insert(L.key());
  return S;
}

/// Full byte-level equality of two leak lists: same order, same keys,
/// same raw schedules, same observations.  Only meaningful at
/// Threads=1, where exploration is fully deterministic.
bool recordsIdentical(const std::vector<LeakRecord> &A,
                      const std::vector<LeakRecord> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I) {
    if (A[I].key() != B[I].key() || A[I].Sched != B[I].Sched ||
        A[I].MinSched != B[I].MinSched)
      return false;
  }
  return true;
}

std::pair<RunRecord, ExploreResult> runOne(const BenchCase &C,
                                           const char *Config,
                                           unsigned Threads, bool FromScratch,
                                           const std::set<uint64_t> &RefLeaks) {
  ExplorerOptions Opts = C.Mode;
  Opts.Threads = Threads;
  Opts.PruneSeen = true;
  Opts.FromScratchHashing = FromScratch;
  Machine M(C.Prog);

  RunRecord Rec;
  Rec.Config = Config;
  Rec.Threads = Threads;
  ExploreResult Best;
  for (int I = 0; I < Repeats; ++I) {
    auto T0 = std::chrono::steady_clock::now();
    ExploreResult R = explore(M, Configuration::initial(C.Prog), Opts);
    auto T1 = std::chrono::steady_clock::now();
    double Secs = std::chrono::duration<double>(T1 - T0).count();
    Rec.LeakSetOk &= leakKeys(R) == RefLeaks;
    if (I == 0 || Secs < Rec.Seconds) {
      Rec.Seconds = Secs;
      Rec.Steps = R.TotalSteps;
      Rec.Leaks = R.Leaks.size();
      Rec.Forked = R.ConfigsForked;
      Rec.RobCopied = R.RobBytesCopied;
      Rec.RobFlat = R.RobBytesFlat;
      Best = std::move(R);
    }
  }
  return {Rec, std::move(Best)};
}

/// Fixed-work single-core calibration: hash-avalanche a chain for a
/// fixed iteration count and time it.  Pure cache-resident ALU work, so
/// it scales with the machine's single-core speed the same way the
/// explore loop's fingerprint arithmetic does — dividing step rates by
/// this makes committed-vs-current comparisons survive hardware changes.
double calibrationScore() {
  constexpr uint64_t Iters = 1u << 25;
  double BestSecs = 0;
  for (int R = 0; R < 3; ++R) {
    uint64_t H = HashSeed;
    auto T0 = std::chrono::steady_clock::now();
    for (uint64_t I = 0; I < Iters; ++I)
      H = hashAvalanche(H ^ I);
    auto T1 = std::chrono::steady_clock::now();
    // Fold H into the timing sink so the loop cannot be elided.
    double Secs = std::chrono::duration<double>(T1 - T0).count() +
                  (H == 0 ? 1e-12 : 0);
    if (R == 0 || Secs < BestSecs)
      BestSecs = Secs;
  }
  return Iters / BestSecs;
}

void jsonRun(FILE *F, const RunRecord &R, bool Last) {
  std::fprintf(F,
               "      {\"config\": \"%s\", \"threads\": %u, "
               "\"seconds\": %.6f, \"steps\": %llu, "
               "\"steps_per_sec\": %.1f, \"per_core_steps_per_sec\": %.1f, "
               "\"leaks\": %zu, \"leak_set_matches_reference\": %s, "
               "\"configs_forked\": %llu, \"rob_bytes_copied\": %llu, "
               "\"rob_bytes_flat_equiv\": %llu, "
               "\"rob_flat_over_copied\": %.2f}%s\n",
               R.Config.c_str(), R.Threads, R.Seconds,
               static_cast<unsigned long long>(R.Steps), R.stepsPerSec(),
               R.perCore(), R.Leaks, R.LeakSetOk ? "true" : "false",
               static_cast<unsigned long long>(R.Forked),
               static_cast<unsigned long long>(R.RobCopied),
               static_cast<unsigned long long>(R.RobFlat), R.shareFactor(),
               Last ? "" : ",");
}

/// Pulls the first number following `"<key>":` out of our own emitted
/// JSON — no dependency, fine for the fixed format this bench writes.
double jsonNumber(const std::string &Text, const std::string &Key) {
  size_t P = Text.find("\"" + Key + "\":");
  if (P == std::string::npos)
    return -1;
  P = Text.find(':', P);
  return std::strtod(Text.c_str() + P + 1, nullptr);
}

double preprRate(const std::string &Id) {
  for (const PreprBaseline &B : PreprBaselines)
    if (Id == B.Id)
      return B.PerCoreT1;
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  const char *OutPath = "BENCH_STEPRATE.json";
  const char *CheckPath = nullptr;
  bool Quick = false;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--out") && I + 1 < Argc)
      OutPath = Argv[++I];
    else if (!std::strcmp(Argv[I], "--check-against") && I + 1 < Argc)
      CheckPath = Argv[++I];
    else if (!std::strcmp(Argv[I], "--quick"))
      Quick = true;
    else if (!std::strcmp(Argv[I], "--prepr") && I + 1 < Argc) {
      // ID=RATE: re-anchor one embedded pre-PR baseline.
      std::string Arg = Argv[++I];
      size_t Eq = Arg.find('=');
      bool Found = false;
      if (Eq != std::string::npos)
        for (PreprBaseline &B : PreprBaselines)
          if (Arg.compare(0, Eq, B.Id) == 0) {
            B.PerCoreT1 = std::strtod(Arg.c_str() + Eq + 1, nullptr);
            Found = true;
          }
      if (!Found) {
        std::fprintf(stderr, "error: bad --prepr '%s' (want ID=RATE)\n",
                     Arg.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out FILE] [--quick] [--check-against FILE] "
                   "[--prepr ID=RATE]\n",
                   Argv[0]);
      return 2;
    }
  }

  // The two largest real schedule trees in the repo (both saturate the
  // step budget unpruned); with pruning on they collapse to the
  // recurrence-free core, where every surviving step pays the engine's
  // full fetch/execute/fork cost — exactly the loop this bench measures.
  std::vector<BenchCase> Cases;
  {
    BenchCase Mee;
    Mee.Id = "mee-c-v4";
    Mee.Prog = meeC().Prog;
    Mee.Mode = v4Mode();
    Cases.push_back(std::move(Mee));
  }
  if (!Quick) {
    BenchCase Ssl;
    Ssl.Id = "ssl3-c-v4";
    Ssl.Prog = ssl3C().Prog;
    Ssl.Mode = v4Mode();
    Cases.push_back(std::move(Ssl));
  }

  std::vector<unsigned> ThreadCounts =
      Quick ? std::vector<unsigned>{1} : std::vector<unsigned>{1, 2, 4, 8};

  double Calib = calibrationScore();

  FILE *Out = std::fopen(OutPath, "w");
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutPath);
    return 2;
  }
  std::fprintf(
      Out,
      "{\n  \"bench\": \"engine-step-rate\",\n"
      "  \"baseline\": \"pre-PR layout (node-based engine before the "
      "flat-memory/arena/incremental-hash rewrite)\",\n"
      "  \"pre_pr_provenance\": \"per-core steps/sec at Threads=1 measured "
      "at the growth-seed commit with an equivalent best-of driver, "
      "interleaved with the new layout on the same machine; leak records, "
      "raw schedules, and minimized schedules byte-identical at Threads=1, "
      "leak-key sets equal at Threads=8\",\n"
      "  \"calibration_hashes_per_sec\": %.0f,\n"
      "  \"target_per_core_speedup_at_1_thread\": 2.0,\n"
      "  \"cases\": [\n",
      Calib);

  bool AllOk = true;
  double MinSpeedup1 = 0, MinPerCore1 = 0;
  for (size_t CI = 0; CI < Cases.size(); ++CI) {
    const BenchCase &C = Cases[CI];
    // Sequential incremental reference: the determinism anchor for
    // every other run's leak-key set.
    ExplorerOptions Ref = C.Mode;
    Ref.Threads = 1;
    Ref.PruneSeen = true;
    Machine M(C.Prog);
    ExploreResult RefRun = explore(M, Configuration::initial(C.Prog), Ref);
    std::set<uint64_t> RefLeaks = leakKeys(RefRun);

    std::printf("%s:\n", C.Id.c_str());
    std::vector<RunRecord> Runs;
    double New1 = 0;
    bool T1Identical = true, T1MinIdentical = true;
    for (unsigned T : ThreadCounts) {
      auto [OldRec, OldRes] =
          runOne(C, "from-scratch", T, /*FromScratch=*/true, RefLeaks);
      auto [NewRec, NewRes] =
          runOne(C, "incremental", T, /*FromScratch=*/false, RefLeaks);
      if (T == 1) {
        New1 = NewRec.perCore();
        // Sequential exploration is deterministic, so the two hashing
        // modes must agree on every byte of every record — and their
        // minimized witnesses must match too (minimization replays use
        // the same incremental fingerprints for convergence rejoins).
        T1Identical = recordsIdentical(OldRes.Leaks, NewRes.Leaks);
        MinimizeOptions MinOpts;
        minimizeWitnesses(M, Configuration::initial(C.Prog), OldRes.Leaks,
                          MinOpts);
        minimizeWitnesses(M, Configuration::initial(C.Prog), NewRes.Leaks,
                          MinOpts);
        T1MinIdentical = recordsIdentical(OldRes.Leaks, NewRes.Leaks);
      }
      Runs.push_back(std::move(OldRec));
      Runs.push_back(std::move(NewRec));
    }

    std::vector<std::vector<std::string>> Table;
    for (const RunRecord &R : Runs) {
      char Rate[32];
      std::snprintf(Rate, sizeof Rate, "%.0f", R.perCore());
      Table.push_back({R.Config, std::to_string(R.Threads),
                       std::to_string(R.Seconds).substr(0, 6),
                       std::to_string(R.Steps), Rate,
                       R.LeakSetOk ? "ok" : "MISMATCH"});
      AllOk &= R.LeakSetOk;
    }
    AllOk &= T1Identical && T1MinIdentical;
    std::printf("%s\n",
                renderTable({"hashing", "threads", "seconds", "steps",
                             "steps/s/core", "leak set"},
                            Table)
                    .c_str());

    double Prepr = preprRate(C.Id);
    double Speedup1 = Prepr > 0 ? New1 / Prepr : 0;
    if (CI == 0 || Speedup1 < MinSpeedup1)
      MinSpeedup1 = Speedup1;
    if (CI == 0 || New1 < MinPerCore1)
      MinPerCore1 = New1;
    // T=1 incremental is Runs[1] (from-scratch T=1 is Runs[0]); its
    // fork accounting is deterministic, so it is the sharing headline.
    double Share1 = Runs.size() > 1 ? Runs[1].shareFactor() : 0;
    std::printf("  per-core at 1 thread: %.0f steps/s, %.2fx the pre-PR "
                "layout's %.0f; T=1 records %s, minimized witnesses %s\n",
                New1, Speedup1, Prepr, T1Identical ? "identical" : "DIFFER",
                T1MinIdentical ? "identical" : "DIFFER");
    std::printf("  fork copies at 1 thread: %llu, ROB bytes %llu vs %llu "
                "flat (%.1fx shared)\n",
                static_cast<unsigned long long>(
                    Runs.size() > 1 ? Runs[1].Forked : 0),
                static_cast<unsigned long long>(
                    Runs.size() > 1 ? Runs[1].RobCopied : 0),
                static_cast<unsigned long long>(
                    Runs.size() > 1 ? Runs[1].RobFlat : 0),
                Share1);

    std::fprintf(Out, "    {\"id\": \"%s\",\n", C.Id.c_str());
    std::fprintf(Out,
                 "     \"pre_pr_per_core_steps_per_sec_at_1_thread\": %.1f,\n"
                 "     \"per_core_speedup_vs_pre_pr_at_1_thread\": %.3f,\n"
                 "     \"rob_flat_over_copied_at_1_thread\": %.2f,\n"
                 "     \"t1_records_identical\": %s,\n"
                 "     \"t1_minimized_identical\": %s,\n"
                 "     \"runs\": [\n",
                 Prepr, Speedup1, Share1, T1Identical ? "true" : "false",
                 T1MinIdentical ? "true" : "false");
    for (size_t I = 0; I < Runs.size(); ++I)
      jsonRun(Out, Runs[I], I + 1 == Runs.size());
    std::fprintf(Out, "    ]}%s\n", CI + 1 == Cases.size() ? "" : ",");
  }

  std::fprintf(Out,
               "  ],\n  \"min_per_core_steps_per_sec_at_1_thread\": %.1f,\n"
               "  \"min_per_core_speedup_at_1_thread\": %.3f,\n"
               "  \"meets_2x_target\": %s,\n"
               "  \"all_results_identical\": %s\n}\n",
               MinPerCore1, MinSpeedup1, MinSpeedup1 >= 2.0 ? "true" : "false",
               AllOk ? "true" : "false");
  std::fclose(Out);

  std::printf("minimum per-core speedup at 1 thread: %.2fx (target 2.0x)\n",
              MinSpeedup1);
  std::printf("recorded %s\n", OutPath);
  if (!AllOk) {
    std::printf("RESULT MISMATCH between hashing modes\n");
    return 1;
  }

  if (CheckPath) {
    std::ifstream In(CheckPath);
    if (!In) {
      std::fprintf(stderr, "error: cannot read '%s'\n", CheckPath);
      return 2;
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    double CommittedRate =
        jsonNumber(Buf.str(), "min_per_core_steps_per_sec_at_1_thread");
    double CommittedCalib =
        jsonNumber(Buf.str(), "calibration_hashes_per_sec");
    if (CommittedRate <= 0 || CommittedCalib <= 0) {
      std::fprintf(stderr, "error: no committed baseline in '%s'\n",
                   CheckPath);
      return 2;
    }
    // Normalize both sides by their calibration scores so the gate
    // compares engine efficiency (steps per unit of single-core hash
    // throughput), not the raw speed of whichever machine ran last.
    double CommittedNorm = CommittedRate / CommittedCalib;
    double CurrentNorm = MinPerCore1 / Calib;
    std::printf("committed %.0f steps/s/core (calib %.0f), this run %.0f "
                "(calib %.0f); normalized ratio %.2f (gate: >= 0.75)\n",
                CommittedRate, CommittedCalib, MinPerCore1, Calib,
                CurrentNorm / CommittedNorm);
    if (CurrentNorm < 0.75 * CommittedNorm) {
      std::printf("PER-CORE STEP RATE REGRESSION (>25%% vs %s)\n", CheckPath);
      return 1;
    }
  }
  return 0;
}
