//===- bench/MitigationBench.cpp - Mitigation cost ablation -----------------===//
//
// An ablation over the §3.6 / Appendix A.2 countermeasures on the leaky
// suite programs: which mitigation restores SCT, and at what cost
// (instructions added, sequential schedule growth — the abstract
// machine's stand-in for runtime overhead).
//
// Each policy runs as two engine batches — every case checked unmitigated,
// then every still-relevant case re-checked after fencing — so the whole
// ablation fans out over the session pool.  `MitigationBench
// [--threads N]`; N defaults to the hardware concurrency.
//
//===----------------------------------------------------------------------===//

#include "checker/FenceInsertion.h"
#include "checker/Retpoline.h"
#include "checker/SctChecker.h"
#include "sched/SequentialScheduler.h"
#include "support/Printing.h"
#include "workloads/Figures.h"
#include "workloads/Kocher.h"
#include "workloads/SpectreSuites.h"

#include <cstdio>

using namespace sct;

namespace {

size_t seqScheduleLength(const Program &P) {
  Machine M(P);
  SequentialResult R = runSequential(M, Configuration::initial(P));
  return R.Run.Stuck ? 0 : R.Sched.size();
}

void reportPolicy(const CheckSession &Session, const char *Title,
                  const std::vector<SuiteCase> &Cases, FencePolicy Policy,
                  const ExplorerOptions &Mode) {
  std::printf("%s\n", Title);

  // Batch 1: every case unmitigated.
  std::vector<CheckRequest> BeforeReqs;
  for (const SuiteCase &C : Cases) {
    CheckRequest Req;
    Req.Id = C.Id;
    Req.Prog = C.Prog;
    Req.Opts = Mode;
    BeforeReqs.push_back(std::move(Req));
  }
  std::vector<CheckResult> Before =
      Session.checkMany(std::span<const CheckRequest>(BeforeReqs));

  // Batch 2: the leaky ones, fenced.
  std::vector<size_t> LeakyIdx;
  std::vector<Program> FencedProgs;
  std::vector<CheckRequest> AfterReqs;
  for (size_t I = 0; I < Cases.size(); ++I) {
    if (Before[I].secure())
      continue; // Only ablate the leaky ones.
    LeakyIdx.push_back(I);
    CheckRequest Req;
    Req.Id = Cases[I].Id + "/fenced";
    Req.Prog = insertFences(Cases[I].Prog, Policy);
    FencedProgs.push_back(Req.Prog);
    Req.Opts = Mode;
    AfterReqs.push_back(std::move(Req));
  }
  std::vector<CheckResult> After =
      Session.checkMany(std::span<const CheckRequest>(AfterReqs));

  std::vector<std::vector<std::string>> Table;
  for (size_t J = 0; J < LeakyIdx.size(); ++J) {
    const SuiteCase &C = Cases[LeakyIdx[J]];
    const Program &Fenced = FencedProgs[J];
    size_t LenBefore = seqScheduleLength(C.Prog);
    size_t LenAfter = seqScheduleLength(Fenced);
    double Overhead =
        LenBefore ? 100.0 * (double(LenAfter) - double(LenBefore)) /
                        double(LenBefore)
                  : 0.0;
    char OverheadBuf[32];
    std::snprintf(OverheadBuf, sizeof(OverheadBuf), "%.1f%%", Overhead);
    Table.push_back({C.Id, !After[J].secure() ? "still LEAKS" : "secure",
                     std::to_string(countFences(Fenced)),
                     std::to_string(LenBefore), std::to_string(LenAfter),
                     OverheadBuf});
  }
  std::printf("%s\n",
              renderTable({"case", "after fencing", "fences", "seq steps",
                           "fenced steps", "overhead"},
                          Table)
                  .c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  CheckSession Session(sessionOptionsFromArgs(Argc, Argv));
  std::printf("engine: %u worker thread(s)\n\n", Session.options().Threads);

  reportPolicy(Session,
               "Fences at branch targets vs the Kocher v1 suite "
               "(§3.6, Figure 8):",
               kocherCases(), FencePolicy::BranchTargets, v1v11Mode());
  reportPolicy(Session, "Fences at branch targets vs the v1.1 suite:",
               spectreV11Cases(), FencePolicy::BranchTargets, v1v11Mode());
  reportPolicy(Session, "Fences after stores vs the v4 suite:",
               spectreV4Cases(), FencePolicy::AfterStores, v4Mode());

  // Retpoline vs the Figure 11 v2 gadget (fences provably do not help —
  // the figure's point — but the retpoline does).
  FigureCase V2 = figure11();
  SctReport Before = toReport(Session.check(V2.Prog, V2.CheckOpts));
  Program Fenced = insertFences(V2.Prog, FencePolicy::BranchTargetsAndStores);
  SctReport FencedReport = toReport(Session.check(Fenced, V2.CheckOpts));
  FigureCase Retpolined = figure13();
  SctReport RetpolineReport =
      toReport(Session.check(Retpolined.Prog, Retpolined.CheckOpts));
  std::printf("Spectre v2 (Figure 11 gadget):\n");
  std::printf("  unmitigated:        %s\n",
              Before.secure() ? "secure" : "LEAKS");
  std::printf("  fences everywhere:  %s   (fences cannot stop mistrained "
              "indirect jumps)\n",
              FencedReport.secure() ? "secure" : "still LEAKS");
  std::printf("  retpoline:          %s\n",
              RetpolineReport.secure() ? "secure" : "still LEAKS");
  return 0;
}
