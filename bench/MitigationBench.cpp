//===- bench/MitigationBench.cpp - Mitigation engine ablation ---------------===//
//
// The §3.6 / Appendix A.2 countermeasures run through the mitigation
// engine (engine/MitigationSession.h) over the leaky suite programs:
// which mitigation closes which leaks, at what placement cost
// (instructions added, sequential-schedule growth), how much of the
// re-check the baseline's seen-state table paid for, and how far the
// minimal-fence-placement search shrinks the blanket policy.
//
//   MitigationBench [--threads N] [--quick] [--no-reuse]
//
// --quick restricts to the Kocher suite + the v2 figure (the CI smoke);
// --no-reuse disables seen-state reuse (the from-scratch re-check
// baseline — verdicts must not move, only step counts).
//
//===----------------------------------------------------------------------===//

#include "checker/Retpoline.h"
#include "checker/SctChecker.h"
#include "engine/MitigationSession.h"
#include "engine/SessionArgs.h"
#include "support/Printing.h"
#include "workloads/CryptoLibs.h"
#include "workloads/Figures.h"
#include "workloads/Kocher.h"
#include "workloads/SpectreSuites.h"

#include <cstdio>
#include <cstring>

using namespace sct;

namespace {

struct PlacementTally {
  unsigned LeakyCases = 0;
  unsigned StrictlyFewer = 0;
  unsigned Restored = 0;
};

void reportGroup(const MitigationSession &MS, const char *Title,
                 const std::vector<SuiteCase> &Cases, FencePolicy Policy,
                 const ExplorerOptions &Mode, PlacementTally &Tally,
                 bool Quick) {
  std::printf("%s\n", Title);
  std::vector<std::vector<std::string>> Table;
  unsigned Done = 0;
  for (const SuiteCase &C : Cases) {
    // kocher-05's *fenced* tree runs to the 8M-step budget (~1 min per
    // re-check); the smoke run skips it and caps the corpus.
    if (Quick && (C.Id == "kocher-05" || Done >= 8))
      continue;
    ++Done;
    MitigationReport Rep = MS.run(C.Prog, Mode, FenceInsertion(Policy));
    if (Rep.Baseline.secure())
      continue; // Only ablate the leaky ones.
    FencePlacementOptions FOpts;
    FOpts.Blanket = Policy;
    // Hand the placement search the baseline run() just produced so the
    // schedule tree is explored once per case, not twice.
    FencePlacementResult FP = MS.minimizeFencePlacement(
        C.Prog, Mode, FOpts, MachineOptions{}, &Rep.Baseline);
    const MitigationVariant &V = Rep.Variants.front();
    if (!V.applied()) {
      Table.push_back({C.Id, "not relocatable", "-", "-", "-", "-", "-"});
      continue;
    }
    ++Tally.LeakyCases;
    Tally.Restored += FP.RestoredSct;
    Tally.StrictlyFewer += FP.RestoredSct && FP.Sites.size() < FP.BlanketSites;

    double Overhead =
        Rep.SeqStepsBaseline
            ? 100.0 * (double(V.SeqSteps) - double(Rep.SeqStepsBaseline)) /
                  double(Rep.SeqStepsBaseline)
            : 0.0;
    char OverheadBuf[32];
    std::snprintf(OverheadBuf, sizeof(OverheadBuf), "%.1f%%", Overhead);
    char Closed[32];
    std::snprintf(Closed, sizeof(Closed), "%zu/%zu", V.closedCount(),
                  V.Leaks.size());
    char Minimal[48];
    if (FP.RestoredSct)
      std::snprintf(Minimal, sizeof(Minimal), "%zu of %zu (%u checks)",
                    FP.Sites.size(), FP.BlanketSites, FP.ChecksSpent);
    else
      std::snprintf(Minimal, sizeof(Minimal), "blanket insufficient");
    Table.push_back({C.Id, V.restoredSct() ? "secure" : "still LEAKS",
                     Closed, std::to_string(V.Cost.FencesAdded), OverheadBuf,
                     std::to_string(V.ReusePrunedNodes), Minimal});
  }
  std::printf("%s\n",
              renderTable({"case", "after fencing", "closed", "fences",
                           "overhead", "reuse-pruned", "minimal fences"},
                          Table)
                  .c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I)
    if (!std::strcmp(Argv[I], "--help") || !std::strcmp(Argv[I], "-h")) {
      std::printf("usage: %s [session flags]\n%s", Argv[0],
                  sct::sessionFlagsHelp().c_str());
      return 0;
    }
  bool Quick = false, NoReuse = false;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--quick"))
      Quick = true;
    else if (!std::strcmp(Argv[I], "--no-reuse"))
      NoReuse = true;
  }
  SessionOptions SOpts = sessionOptionsFromArgs(Argc, Argv);
  MitigationOptions MOpts;
  MOpts.ReuseSeenStates = !NoReuse;
  MitigationSession MS(SOpts, MOpts);
  std::printf("engine: %u worker thread(s); seen-state reuse %s\n\n",
              MS.session().options().Threads, NoReuse ? "OFF" : "on");

  PlacementTally Tally;
  reportGroup(MS,
              "Fences at branch targets vs the Kocher v1 suite "
              "(§3.6, Figure 8):",
              kocherCases(), FencePolicy::BranchTargets, v1v11Mode(), Tally,
              Quick);
  if (!Quick) {
    reportGroup(MS, "Fences at branch targets vs the v1.1 suite:",
                spectreV11Cases(), FencePolicy::BranchTargets, v1v11Mode(),
                Tally, Quick);
    reportGroup(MS, "Fences after stores vs the v4 suite:", spectreV4Cases(),
                FencePolicy::AfterStores, v4Mode(), Tally, Quick);
    reportGroup(MS,
                "Fences (branches+stores) vs the Table 2 crypto models, "
                "v4 mode:",
                cryptoCases(), FencePolicy::BranchTargetsAndStores, v4Mode(),
                Tally, Quick);
  }
  std::printf("minimal fence placement: restored SCT on %u/%u leaky "
              "case(s); strictly fewer fences than the blanket on %u\n\n",
              Tally.Restored, Tally.LeakyCases, Tally.StrictlyFewer);

  // Retpoline vs the Figure 11 v2 gadget (fences provably do not help —
  // the figure's point — but the retpoline does).
  FigureCase V2 = figure11();
  MitigationReport FenceRep = MS.run(
      V2.Prog, V2.CheckOpts, FenceInsertion(FencePolicy::BranchTargetsAndStores));
  Retpoline Retp({}, {*V2.Prog.regByName("rb")});
  MitigationReport RetpRep = MS.run(V2.Prog, V2.CheckOpts, Retp);
  std::printf("Spectre v2 (Figure 11 gadget):\n");
  std::printf("  unmitigated:        %s\n",
              FenceRep.Baseline.secure() ? "secure" : "LEAKS");
  const MitigationVariant &FV = FenceRep.Variants.front();
  std::printf("  fences everywhere:  %s   (%u applicable fence sites — "
              "fences cannot stop mistrained indirect jumps)\n",
              FV.restoredSct() ? "secure" : "still LEAKS", FV.Cost.Sites);
  const MitigationVariant &RV = RetpRep.Variants.front();
  if (RV.applied())
    std::printf("  retpoline:          %s   (+%u instructions, closed "
                "%zu/%zu)\n",
                RV.restoredSct() ? "secure" : "still LEAKS",
                RV.Cost.InstructionsAdded, RV.closedCount(), RV.Leaks.size());
  else
    std::printf("  retpoline:          refused (%s)\n",
                RV.Error->Message.c_str());
  return 0;
}
