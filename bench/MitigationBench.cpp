//===- bench/MitigationBench.cpp - Mitigation cost ablation -----------------===//
//
// An ablation over the §3.6 / Appendix A.2 countermeasures on the leaky
// suite programs: which mitigation restores SCT, and at what cost
// (instructions added, sequential schedule growth — the abstract
// machine's stand-in for runtime overhead).
//
//===----------------------------------------------------------------------===//

#include "checker/FenceInsertion.h"
#include "checker/Retpoline.h"
#include "checker/SctChecker.h"
#include "sched/SequentialScheduler.h"
#include "support/Printing.h"
#include "workloads/Figures.h"
#include "workloads/Kocher.h"
#include "workloads/SpectreSuites.h"

#include <cstdio>

using namespace sct;

namespace {

size_t seqScheduleLength(const Program &P) {
  Machine M(P);
  SequentialResult R = runSequential(M, Configuration::initial(P));
  return R.Run.Stuck ? 0 : R.Sched.size();
}

void reportPolicy(const char *Title, const std::vector<SuiteCase> &Cases,
                  FencePolicy Policy, const ExplorerOptions &Mode) {
  std::printf("%s\n", Title);
  std::vector<std::vector<std::string>> Table;
  for (const SuiteCase &C : Cases) {
    SctReport Before = checkSct(C.Prog, Mode);
    if (Before.secure())
      continue; // Only ablate the leaky ones.
    Program Fenced = insertFences(C.Prog, Policy);
    SctReport After = checkSct(Fenced, Mode);
    size_t LenBefore = seqScheduleLength(C.Prog);
    size_t LenAfter = seqScheduleLength(Fenced);
    double Overhead =
        LenBefore ? 100.0 * (double(LenAfter) - double(LenBefore)) /
                        double(LenBefore)
                  : 0.0;
    char OverheadBuf[32];
    std::snprintf(OverheadBuf, sizeof(OverheadBuf), "%.1f%%", Overhead);
    Table.push_back({C.Id, !After.secure() ? "still LEAKS" : "secure",
                     std::to_string(countFences(Fenced)),
                     std::to_string(LenBefore), std::to_string(LenAfter),
                     OverheadBuf});
  }
  std::printf("%s\n",
              renderTable({"case", "after fencing", "fences", "seq steps",
                           "fenced steps", "overhead"},
                          Table)
                  .c_str());
}

} // namespace

int main() {
  reportPolicy("Fences at branch targets vs the Kocher v1 suite "
               "(§3.6, Figure 8):",
               kocherCases(), FencePolicy::BranchTargets, v1v11Mode());
  reportPolicy("Fences at branch targets vs the v1.1 suite:",
               spectreV11Cases(), FencePolicy::BranchTargets, v1v11Mode());
  reportPolicy("Fences after stores vs the v4 suite:", spectreV4Cases(),
               FencePolicy::AfterStores, v4Mode());

  // Retpoline vs the Figure 11 v2 gadget (fences provably do not help —
  // the figure's point — but the retpoline does).
  FigureCase V2 = figure11();
  SctReport Before = checkSct(V2.Prog, V2.CheckOpts);
  Program Fenced = insertFences(V2.Prog, FencePolicy::BranchTargetsAndStores);
  SctReport FencedReport = checkSct(Fenced, V2.CheckOpts);
  FigureCase Retpolined = figure13();
  SctReport RetpolineReport =
      checkSct(Retpolined.Prog, Retpolined.CheckOpts);
  std::printf("Spectre v2 (Figure 11 gadget):\n");
  std::printf("  unmitigated:        %s\n",
              Before.secure() ? "secure" : "LEAKS");
  std::printf("  fences everywhere:  %s   (fences cannot stop mistrained "
              "indirect jumps)\n",
              FencedReport.secure() ? "secure" : "still LEAKS");
  std::printf("  retpoline:          %s\n",
              RetpolineReport.secure() ? "secure" : "still LEAKS");
  return 0;
}
