//===- support/ByteStream.h - Bounds-checked byte readers/writers -*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-stream primitives under engine/Serialization.h: a growable
/// little-endian writer and a bounds-checked reader with a sticky fail
/// bit.  Fixed-width integers are written explicitly byte-by-byte (no
/// struct memcpy), so the wire format is identical across hosts and a
/// format change is always a deliberate edit here or in the serializer —
/// never an accidental ABI drift.
///
/// The reader never throws and never reads out of bounds: any over-read
/// sets `fail()` and returns zeros from then on, so deserializers can
/// decode a whole record and check `ok()` once at the end.  Length
/// prefixes are validated against the remaining bytes *before* any
/// allocation, which is what makes truncated or corrupted cache entries
/// a cheap miss instead of a bad_alloc.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_SUPPORT_BYTESTREAM_H
#define SCT_SUPPORT_BYTESTREAM_H

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sct {

/// Growable little-endian byte sink.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void u16(uint16_t V) { fixed(V, 2); }
  void u32(uint32_t V) { fixed(V, 4); }
  void u64(uint64_t V) { fixed(V, 8); }
  void b(bool V) { u8(V ? 1 : 0); }
  /// IEEE-754 bit pattern; exact round-trip.
  void f64(double V) { u64(std::bit_cast<uint64_t>(V)); }

  /// Length-prefixed string (u64 length + raw bytes).
  void str(std::string_view S) {
    u64(S.size());
    Buf.insert(Buf.end(), S.begin(), S.end());
  }

  /// Raw bytes, no prefix.
  void bytes(std::span<const uint8_t> B) {
    Buf.insert(Buf.end(), B.begin(), B.end());
  }

  const std::vector<uint8_t> &buffer() const { return Buf; }
  std::vector<uint8_t> take() { return std::move(Buf); }
  size_t size() const { return Buf.size(); }

private:
  void fixed(uint64_t V, unsigned Bytes) {
    for (unsigned I = 0; I < Bytes; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  std::vector<uint8_t> Buf;
};

/// Bounds-checked little-endian byte source with a sticky fail bit.
class ByteReader {
public:
  explicit ByteReader(std::span<const uint8_t> Buf) : Buf(Buf) {}

  uint8_t u8() { return static_cast<uint8_t>(fixed(1)); }
  uint16_t u16() { return static_cast<uint16_t>(fixed(2)); }
  uint32_t u32() { return static_cast<uint32_t>(fixed(4)); }
  uint64_t u64() { return fixed(8); }
  bool b() { return u8() != 0; }
  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    uint64_t Len = u64();
    if (!checkLen(Len))
      return {};
    std::string S(reinterpret_cast<const char *>(Buf.data() + Pos),
                  static_cast<size_t>(Len));
    Pos += static_cast<size_t>(Len);
    return S;
  }

  /// Reads \p N raw bytes into \p Out; on under-run fails and leaves
  /// \p Out untouched.
  bool bytes(std::span<uint8_t> Out) {
    if (!checkLen(Out.size()))
      return false;
    std::memcpy(Out.data(), Buf.data() + Pos, Out.size());
    Pos += Out.size();
    return true;
  }

  /// Reads a u64 element count and validates it against the bytes left
  /// (each element needs at least \p MinElemBytes).  Returns 0 and fails
  /// on a count the buffer cannot possibly hold — the corruption guard
  /// that keeps a flipped length byte from becoming a giant resize.
  uint64_t count(size_t MinElemBytes) {
    uint64_t N = u64();
    if (MinElemBytes != 0 && N > remaining() / MinElemBytes) {
      Failed = true;
      return 0;
    }
    return N;
  }

  size_t remaining() const { return Failed ? 0 : Buf.size() - Pos; }
  bool ok() const { return !Failed; }
  /// True iff everything decoded and the buffer was consumed exactly.
  bool done() const { return !Failed && Pos == Buf.size(); }
  void fail() { Failed = true; }

private:
  uint64_t fixed(unsigned Bytes) {
    if (!checkLen(Bytes))
      return 0;
    uint64_t V = 0;
    for (unsigned I = 0; I < Bytes; ++I)
      V |= static_cast<uint64_t>(Buf[Pos + I]) << (8 * I);
    Pos += Bytes;
    return V;
  }

  bool checkLen(uint64_t Len) {
    if (Failed || Len > Buf.size() - Pos) {
      Failed = true;
      return false;
    }
    return true;
  }

  std::span<const uint8_t> Buf;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace sct

#endif // SCT_SUPPORT_BYTESTREAM_H
