//===- support/Label.h - Security label lattice ----------------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Security labels drawn from a join-semilattice, as required by the paper's
/// semantics ("Each value is annotated with a label from a lattice of
/// security labels with join operator ⊔", §3).
///
/// The lattice implemented here is the powerset of up to 64 distinct secret
/// *taint sources*, ordered by inclusion, with join = set union.  The
/// classical two-point lattice {public ⊑ secret} of the paper's examples is
/// the special case with a single source; using a powerset instead lets
/// violation reports name exactly which secret reached an observation.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_SUPPORT_LABEL_H
#define SCT_SUPPORT_LABEL_H

#include <cassert>
#include <cstdint>
#include <string>

namespace sct {

/// A security label: a set of secret taint sources (empty set = public).
class Label {
public:
  /// Maximum number of distinct taint sources.
  static constexpr unsigned MaxSources = 64;

  /// Constructs the bottom element (public).
  constexpr Label() = default;

  /// Returns the bottom lattice element: no taint, i.e. public data.
  static constexpr Label publicLabel() { return Label(); }

  /// Returns the label carrying the single taint source \p SourceId.
  static Label secret(unsigned SourceId = 0) {
    assert(SourceId < MaxSources && "taint source id out of range");
    return Label(uint64_t(1) << SourceId);
  }

  /// Returns a label from a raw source bitmask.
  static constexpr Label fromMask(uint64_t Mask) { return Label(Mask); }

  /// True iff this is the bottom element (no secret taint).
  constexpr bool isPublic() const { return Bits == 0; }

  /// True iff at least one secret source taints this label.
  constexpr bool isSecret() const { return Bits != 0; }

  /// Lattice join (⊔): union of taint sources.
  constexpr Label join(Label Other) const { return Label(Bits | Other.Bits); }

  /// Lattice partial order: true iff this ⊑ \p Other (subset of sources).
  constexpr bool flowsTo(Label Other) const {
    return (Bits & ~Other.Bits) == 0;
  }

  /// True iff taint source \p SourceId is present in this label.
  bool contains(unsigned SourceId) const {
    assert(SourceId < MaxSources && "taint source id out of range");
    return (Bits >> SourceId) & 1;
  }

  /// Raw bitmask of taint sources.
  constexpr uint64_t mask() const { return Bits; }

  constexpr bool operator==(const Label &Other) const = default;

  /// Renders "pub", "sec", or "sec{i,j,...}" for multi-source labels.
  std::string str() const;

private:
  explicit constexpr Label(uint64_t Bits) : Bits(Bits) {}

  uint64_t Bits = 0;
};

} // namespace sct

#endif // SCT_SUPPORT_LABEL_H
