//===- support/Printing.h - Small string formatting helpers ----*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers used by the pretty-printers across the library.  Library
/// code renders into std::string; only tools/tests/benches perform I/O.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_SUPPORT_PRINTING_H
#define SCT_SUPPORT_PRINTING_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sct {

/// Renders \p V as "0x.." hexadecimal (no leading zeros beyond one digit).
std::string toHex(uint64_t V);

/// Joins \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts, std::string_view Sep);

/// Left-pads (right-aligns) \p S to width \p Width with spaces.
std::string padLeft(std::string S, size_t Width);

/// Right-pads (left-aligns) \p S to width \p Width with spaces.
std::string padRight(std::string S, size_t Width);

/// Renders a simple ASCII table: header row + data rows, columns sized to
/// the widest cell.  Used by the bench harnesses to print paper-style rows.
std::string renderTable(const std::vector<std::string> &Header,
                        const std::vector<std::vector<std::string>> &Rows);

} // namespace sct

#endif // SCT_SUPPORT_PRINTING_H
