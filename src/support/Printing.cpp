//===- support/Printing.cpp - Small string formatting helpers ------------===//

#include "support/Printing.h"

#include <algorithm>

using namespace sct;

std::string sct::toHex(uint64_t V) {
  static const char Digits[] = "0123456789abcdef";
  std::string Body;
  do {
    Body.push_back(Digits[V & 0xF]);
    V >>= 4;
  } while (V != 0);
  std::reverse(Body.begin(), Body.end());
  return "0x" + Body;
}

std::string sct::join(const std::vector<std::string> &Parts,
                      std::string_view Sep) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

std::string sct::padLeft(std::string S, size_t Width) {
  if (S.size() < Width)
    S.insert(S.begin(), Width - S.size(), ' ');
  return S;
}

std::string sct::padRight(std::string S, size_t Width) {
  if (S.size() < Width)
    S.append(Width - S.size(), ' ');
  return S;
}

std::string sct::renderTable(const std::vector<std::string> &Header,
                             const std::vector<std::vector<std::string>> &Rows) {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t C = 0; C < Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size() && C < Widths.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto RenderRow = [&](const std::vector<std::string> &Row) {
    std::string Line = "|";
    for (size_t C = 0; C < Widths.size(); ++C) {
      std::string Cell = C < Row.size() ? Row[C] : std::string();
      Line += " " + padRight(std::move(Cell), Widths[C]) + " |";
    }
    return Line + "\n";
  };

  std::string Result = RenderRow(Header);
  std::string Rule = "|";
  for (size_t C = 0; C < Widths.size(); ++C)
    Rule += std::string(Widths[C] + 2, '-') + "|";
  Result += Rule + "\n";
  for (const auto &Row : Rows)
    Result += RenderRow(Row);
  return Result;
}
