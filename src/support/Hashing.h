//===- support/Hashing.h - 64-bit hash combinators -------------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one hash-combine scheme the whole tree uses: every 64-bit field is
/// avalanched through a splitmix64 finalizer before combining, so fields
/// that straddle bit boundaries (wide taint masks, large buffer indices)
/// cannot cancel against each other the way shifted-XOR packings allow.
///
/// Two consumers with different stakes share it:
///  - `LeakRecord::key()` deduplicates findings across schedules; a
///    collision merges two distinct leak reports (annoying, not unsound);
///  - `Configuration::hash()` fingerprints machine states for the
///    explorer's cross-schedule seen-state table; a collision there would
///    prune a subtree that was never explored, so SeenStateTest keeps an
///    empirical no-collision guarantee over the whole suite corpus.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_SUPPORT_HASHING_H
#define SCT_SUPPORT_HASHING_H

#include <cstdint>
#include <initializer_list>

namespace sct {

/// splitmix64's finalizer: a full-avalanche bijection on 64-bit words
/// (every input bit flips ~half the output bits).
constexpr uint64_t hashAvalanche(uint64_t V) {
  V += 0x9e3779b97f4a7c15ull;
  V = (V ^ (V >> 30)) * 0xbf58476d1ce4e5b9ull;
  V = (V ^ (V >> 27)) * 0x94d049bb133111ebull;
  return V ^ (V >> 31);
}

/// Seed for hash chains (pi; an arbitrary non-zero constant).
inline constexpr uint64_t HashSeed = 0x243f6a8885a308d3ull;

/// Folds \p Field into the running hash \p H.  Non-commutative and
/// avalanche-separated, so field order matters and adjacent small fields
/// cannot cancel.
constexpr uint64_t hashCombine(uint64_t H, uint64_t Field) {
  return hashAvalanche(H ^ hashAvalanche(Field));
}

/// Chains a fixed field list from the seed.
constexpr uint64_t hashFields(std::initializer_list<uint64_t> Fields) {
  uint64_t H = HashSeed;
  for (uint64_t F : Fields)
    H = hashCombine(H, F);
  return H;
}

/// Cheap per-field fold for hot fixed-shape records (one multiply-add
/// per field instead of hashCombine's two avalanches): polynomial
/// chaining with an odd 64-bit multiplier, non-commutative, finalized
/// once through hashFinish().  Only sound when every hash of the record
/// type folds the same number of fields in the same order (no
/// length-extension ambiguity) — TransientInstr::hash() is the intended
/// consumer; everything else should keep using hashCombine/hashFields.
constexpr uint64_t hashFold(uint64_t H, uint64_t Field) {
  return H * 0x9e3779b97f4a7c15ull + Field;
}

/// Finalizer for a hashFold chain: one full avalanche so the last
/// (un-multiplied) fields diffuse across all output bits before the
/// value enters an XOR-multiset or an open-addressing probe sequence.
constexpr uint64_t hashFinish(uint64_t H) { return hashAvalanche(H); }

} // namespace sct

#endif // SCT_SUPPORT_HASHING_H
