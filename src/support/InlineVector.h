//===- support/InlineVector.h - Small-buffer vector ------------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal small-buffer vector: up to `N` elements live inline in the
/// object, larger sequences spill to the heap.  Reorder-buffer entries
/// carry short operand lists (address expressions are one or two operands,
/// condition argument lists rarely more), and a configuration is copied at
/// every schedule fork — inlining the common case removes one heap
/// allocation and one pointer chase per entry per fork, which is where the
/// engine's copy time goes (see ARCHITECTURE.md, "memory layout &
/// allocation").
///
/// Deliberately tiny interface: construction from a span, push_back,
/// indexing, iteration, equality.  Elements must be copyable; the inline
/// case is kept trivially relocatable by requiring nothing beyond copy
/// construction.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_SUPPORT_INLINEVECTOR_H
#define SCT_SUPPORT_INLINEVECTOR_H

#include <cassert>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <new>
#include <span>
#include <type_traits>
#include <utility>

namespace sct {

/// A vector whose first \p N elements are stored inline.
template <typename T, unsigned N> class InlineVector {
public:
  InlineVector() = default;

  InlineVector(std::span<const T> Elems) { assign(Elems); }
  InlineVector(std::initializer_list<T> Elems) {
    assign(std::span<const T>(Elems.begin(), Elems.size()));
  }

  InlineVector(const InlineVector &Other) {
    assign(std::span<const T>(Other.data(), Other.size()));
  }
  InlineVector(InlineVector &&Other) noexcept { stealFrom(Other); }

  InlineVector &operator=(const InlineVector &Other) {
    if (this != &Other) {
      clear();
      assign(std::span<const T>(Other.data(), Other.size()));
    }
    return *this;
  }
  InlineVector &operator=(InlineVector &&Other) noexcept {
    if (this != &Other) {
      clear();
      stealFrom(Other);
    }
    return *this;
  }

  ~InlineVector() { clear(); }

  size_t size() const { return Size; }
  bool empty() const { return Size == 0; }

  const T *data() const {
    return Size <= N ? inlineData() : Heap;
  }
  T *data() { return Size <= N ? inlineData() : Heap; }

  const T &operator[](size_t I) const {
    assert(I < Size && "index out of range");
    return data()[I];
  }
  T &operator[](size_t I) {
    assert(I < Size && "index out of range");
    return data()[I];
  }

  const T *begin() const { return data(); }
  const T *end() const { return data() + Size; }
  T *begin() { return data(); }
  T *end() { return data() + Size; }

  void push_back(const T &V) {
    new (grow()) T(V);
    ++Size;
  }
  void push_back(T &&V) {
    new (grow()) T(std::move(V));
    ++Size;
  }

  T &front() {
    assert(Size && "front of empty vector");
    return data()[0];
  }
  const T &front() const {
    assert(Size && "front of empty vector");
    return data()[0];
  }
  T &back() {
    assert(Size && "back of empty vector");
    return data()[Size - 1];
  }
  const T &back() const {
    assert(Size && "back of empty vector");
    return data()[Size - 1];
  }

  /// Destroys elements [NewSize, size()); only shrinks.
  void resize(size_t NewSize) {
    assert(NewSize <= Size && "resize only shrinks");
    T *D = data();
    for (size_t I = NewSize; I < Size; ++I)
      D[I].~T();
    size_t Old = Size;
    Size = static_cast<uint32_t>(NewSize);
    unspillIfNeeded(Old);
  }

  /// Removes the first element, shifting the rest down (O(size)).
  void eraseFront() {
    assert(Size && "eraseFront of empty vector");
    T *D = data();
    for (size_t I = 1; I < Size; ++I)
      D[I - 1] = std::move(D[I]);
    D[Size - 1].~T();
    size_t Old = Size;
    --Size;
    unspillIfNeeded(Old);
  }

  void clear() {
    if (Size <= N) {
      for (size_t I = 0; I < Size; ++I)
        inlineData()[I].~T();
    } else {
      for (size_t I = 0; I < Size; ++I)
        Heap[I].~T();
      ::operator delete(Heap);
      Heap = nullptr;
      HeapCap = 0;
    }
    Size = 0;
  }

  operator std::span<const T>() const {
    return std::span<const T>(data(), Size);
  }

  bool operator==(const InlineVector &Other) const {
    if (Size != Other.Size)
      return false;
    for (size_t I = 0; I < Size; ++I)
      if (!(data()[I] == Other.data()[I]))
        return false;
    return true;
  }

private:
  T *inlineData() { return std::launder(reinterpret_cast<T *>(Inline)); }
  const T *inlineData() const {
    return std::launder(reinterpret_cast<const T *>(Inline));
  }

  void assign(std::span<const T> Elems) {
    assert(Size == 0 && "assign into a non-empty vector");
    if (Elems.size() > N) {
      spillAlloc(Elems.size());
      for (const T &V : Elems)
        new (Heap + Size++) T(V);
      return;
    }
    if constexpr (std::is_trivially_copyable_v<T>) {
      // The common case is a whole-object copy at a schedule fork or a
      // chunk unshare; a straight memcpy beats the element loop's
      // per-iteration branching.
      std::memcpy(Inline, Elems.data(), Elems.size() * sizeof(T));
      Size = static_cast<uint32_t>(Elems.size());
      return;
    }
    for (const T &V : Elems)
      new (inlineData() + Size++) T(V);
  }

  void stealFrom(InlineVector &Other) noexcept {
    assert(Size == 0 && "steal into a non-empty vector");
    if constexpr (std::is_trivially_copyable_v<T>) {
      if (Other.Size <= N) {
        // Fixed-size copy of the whole inline buffer compiles to a few
        // vector moves; trailing bytes past Other.Size are never read
        // back (Size gates every access).
        std::memcpy(Inline, Other.Inline, sizeof(Inline));
        Size = Other.Size;
        Other.Size = 0;
        return;
      }
    }
    if (Other.Size > N) {
      Heap = Other.Heap;
      HeapCap = Other.HeapCap;
      Size = Other.Size;
      Other.Heap = nullptr;
      Other.HeapCap = 0;
      Other.Size = 0;
      return;
    }
    for (size_t I = 0; I < Other.Size; ++I)
      new (inlineData() + I) T(std::move(Other.inlineData()[I]));
    Size = Other.Size;
    Other.clear();
  }

  /// Returns raw storage for one more element (capacity grown as needed);
  /// the caller placement-constructs into it and bumps Size.
  T *grow() {
    if (Size < N)
      return inlineData() + Size;
    if (Size == N)
      spill(Size + 1);
    else if (Size == HeapCap)
      regrow(HeapCap * 2);
    return Heap + Size;
  }

  /// Restores the "inline iff Size <= N" representation after a shrink
  /// took a spilled vector back under the inline capacity.
  void unspillIfNeeded(size_t OldSize) {
    if (OldSize <= N || Size > N)
      return;
    T *OldHeap = Heap;
    for (size_t I = 0; I < Size; ++I) {
      new (inlineData() + I) T(std::move(OldHeap[I]));
      OldHeap[I].~T();
    }
    ::operator delete(OldHeap);
    Heap = nullptr;
    HeapCap = 0;
  }

  void spillAlloc(size_t Cap) {
    Heap = static_cast<T *>(::operator new(Cap * sizeof(T)));
    HeapCap = Cap;
  }

  /// Moves the inline elements to a fresh heap block of \p Cap slots.
  void spill(size_t Cap) {
    T *Fresh = static_cast<T *>(::operator new(Cap * sizeof(T)));
    for (size_t I = 0; I < Size; ++I) {
      new (Fresh + I) T(std::move(inlineData()[I]));
      inlineData()[I].~T();
    }
    Heap = Fresh;
    HeapCap = Cap;
  }

  void regrow(size_t Cap) {
    T *Fresh = static_cast<T *>(::operator new(Cap * sizeof(T)));
    for (size_t I = 0; I < Size; ++I) {
      new (Fresh + I) T(std::move(Heap[I]));
      Heap[I].~T();
    }
    ::operator delete(Heap);
    Heap = Fresh;
    HeapCap = Cap;
  }

  alignas(T) unsigned char Inline[N * sizeof(T)];
  T *Heap = nullptr;
  // 32-bit counters: a reorder-buffer entry embeds one of these, so the
  // header's footprint is copied at every schedule fork; operand lists
  // never approach 2^32 elements.
  uint32_t HeapCap = 0;
  uint32_t Size = 0;
};

} // namespace sct

#endif // SCT_SUPPORT_INLINEVECTOR_H
