//===- support/Label.cpp - Security label lattice -------------------------===//

#include "support/Label.h"

#include <bit>

using namespace sct;

std::string Label::str() const {
  if (isPublic())
    return "pub";
  if (std::popcount(Bits) == 1 && (Bits & 1))
    return "sec";
  std::string Result = "sec{";
  bool First = true;
  for (unsigned I = 0; I < MaxSources; ++I) {
    if (!contains(I))
      continue;
    if (!First)
      Result += ",";
    Result += std::to_string(I);
    First = false;
  }
  Result += "}";
  return Result;
}
