//===- isa/Instruction.h - Physical instructions ---------------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Physical (architectural) instructions — the left column of the paper's
/// Table 1:
///
///   (r = op(op, rv⃗, n'))        arithmetic operation
///   br(op, rv⃗, ntrue, nfalse)   conditional branch
///   (r = load(rv⃗, n'))          memory load
///   store(rv, rv⃗, n')           memory store
///   jmpi(rv⃗)                    indirect jump
///   call(nf, nret)              function call
///   ret                         function return
///   fence n                     speculation barrier
///
/// Program points `n` are indices into a Program's text section; the
/// explicit successor `n'` is stored in Instruction::Next.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_ISA_INSTRUCTION_H
#define SCT_ISA_INSTRUCTION_H

#include "isa/Opcode.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace sct {

/// A program point: an index into a Program's text section.
using PC = uint32_t;

/// A register name.  Two registers are architecturally reserved for the
/// call/ret expansion of Appendix A.2: `rsp` (stack pointer) and `rtmp`
/// (return-address temporary).
class Reg {
public:
  static constexpr uint16_t SpId = 0;
  static constexpr uint16_t TmpId = 1;
  static constexpr uint16_t FirstUserId = 2;

  constexpr Reg() = default;
  explicit constexpr Reg(uint16_t Id) : Id(Id) {}

  /// The reserved stack-pointer register `rsp`.
  static constexpr Reg sp() { return Reg(SpId); }
  /// The reserved return-address temporary `rtmp`.
  static constexpr Reg tmp() { return Reg(TmpId); }

  constexpr uint16_t id() const { return Id; }
  constexpr bool operator==(const Reg &Other) const = default;

private:
  uint16_t Id = 0;
};

/// An instruction operand `rv`: a register or an immediate value.
/// Immediates embedded in program text are public by construction.
class Operand {
public:
  /// Creates a register operand.
  static Operand reg(Reg R) {
    Operand Op;
    Op.IsReg = true;
    Op.R = R;
    return Op;
  }

  /// Creates an immediate operand.
  static Operand imm(uint64_t V) {
    Operand Op;
    Op.IsReg = false;
    Op.Imm = V;
    return Op;
  }

  bool isReg() const { return IsReg; }
  bool isImm() const { return !IsReg; }

  Reg getReg() const {
    assert(IsReg && "not a register operand");
    return R;
  }

  uint64_t getImm() const {
    assert(!IsReg && "not an immediate operand");
    return Imm;
  }

  bool operator==(const Operand &Other) const {
    if (IsReg != Other.IsReg)
      return false;
    return IsReg ? R == Other.R : Imm == Other.Imm;
  }

private:
  bool IsReg = false;
  Reg R;
  uint64_t Imm = 0;
};

/// Kinds of physical instructions (Table 1, left column).
enum class InstrKind : unsigned char {
  Op,     ///< r = op(op, rv⃗, n')
  Branch, ///< br(op, rv⃗, ntrue, nfalse)
  Load,   ///< r = load(rv⃗, n')
  Store,  ///< store(rv, rv⃗, n')
  JumpI,  ///< jmpi(rv⃗)
  Call,   ///< call(nf, nret)
  CallI,  ///< calli(rv⃗, nret) — indirect call (App. A.1's omitted
          ///< extension: "imitating the semantics for indirect jumps")
  Ret,    ///< ret
  Fence,  ///< fence n
};

/// A physical instruction.  A single tagged class (in the style of LLVM's
/// MachineInstr) rather than a class hierarchy; accessors assert the kind.
class Instruction {
public:
  /// Builds r = op(op, rv⃗, ·).
  static Instruction makeOp(Reg Dest, Opcode Opc, std::vector<Operand> Args);
  /// Builds br(cond, rv⃗, ntrue, nfalse).
  static Instruction makeBranch(Opcode Cond, std::vector<Operand> Args,
                                PC NTrue, PC NFalse);
  /// Builds r = load(rv⃗, ·).
  static Instruction makeLoad(Reg Dest, std::vector<Operand> AddrArgs);
  /// Builds store(rv, rv⃗, ·).
  static Instruction makeStore(Operand Val, std::vector<Operand> AddrArgs);
  /// Builds jmpi(rv⃗).
  static Instruction makeJumpI(std::vector<Operand> AddrArgs);
  /// Builds call(nf, ·); the return point nret is the successor Next.
  static Instruction makeCall(PC Callee);
  /// Builds calli(rv⃗, ·); the callee is computed from the operands.
  static Instruction makeCallI(std::vector<Operand> TargetArgs);
  /// Builds ret.
  static Instruction makeRet();
  /// Builds fence ·.
  static Instruction makeFence();

  InstrKind kind() const { return Kind; }
  bool is(InstrKind K) const { return Kind == K; }

  /// Destination register (Op, Load).
  Reg dest() const {
    assert((Kind == InstrKind::Op || Kind == InstrKind::Load) &&
           "instruction has no destination register");
    return Dest;
  }

  /// Operation or branch-condition opcode (Op, Branch).
  Opcode opcode() const {
    assert((Kind == InstrKind::Op || Kind == InstrKind::Branch) &&
           "instruction has no opcode");
    return Opc;
  }

  /// Operand list rv⃗ (Op/Branch condition args, Load/Store/JumpI address
  /// args).  Empty for Call/Ret/Fence.
  const std::vector<Operand> &args() const { return Args; }

  /// Value operand rv of a Store.
  Operand storeValue() const {
    assert(Kind == InstrKind::Store && "not a store");
    return StoreVal;
  }

  PC trueTarget() const {
    assert(Kind == InstrKind::Branch && "not a branch");
    return NTrue;
  }

  PC falseTarget() const {
    assert(Kind == InstrKind::Branch && "not a branch");
    return NFalse;
  }

  PC callee() const {
    assert(Kind == InstrKind::Call && "not a call");
    return Callee;
  }

  /// Successor program point n' (the return point nret for Call).
  PC next() const { return Next; }

  /// Sets the successor program point; called by Program finalization.
  void setNext(PC N) { Next = N; }

  /// Rewrites the control-flow targets of a Branch.
  void setBranchTargets(PC TrueTarget, PC FalseTarget) {
    assert(Kind == InstrKind::Branch && "not a branch");
    NTrue = TrueTarget;
    NFalse = FalseTarget;
  }

  /// Rewrites the callee of a Call.
  void setCallee(PC NewCallee) {
    assert(Kind == InstrKind::Call && "not a call");
    Callee = NewCallee;
  }

private:
  InstrKind Kind = InstrKind::Fence;
  Opcode Opc = Opcode::True;
  Reg Dest;
  Operand StoreVal = Operand::imm(0);
  std::vector<Operand> Args;
  PC NTrue = 0;
  PC NFalse = 0;
  PC Callee = 0;
  PC Next = 0;
};

} // namespace sct

#endif // SCT_ISA_INSTRUCTION_H
