//===- isa/AsmPrinter.h - Program pretty-printer ---------------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders Programs (and single instructions) back to the assembler syntax
/// accepted by AsmParser; `parseAsm(printAsm(P))` round-trips.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_ISA_ASMPRINTER_H
#define SCT_ISA_ASMPRINTER_H

#include "isa/Program.h"

#include <string>

namespace sct {

/// Renders one operand ("ra", "42", "0x40").
std::string printOperand(const Program &P, const Operand &Op);

/// Renders the instruction at \p N in assembler syntax (one line, no
/// label prefix).  Branch/call targets print as "pc<N>" pseudo-labels when
/// the program has no label at the target.
std::string printInstruction(const Program &P, PC N);

/// Renders the whole program: directives, then the text section with code
/// labels.  The output parses back to an equivalent program.
std::string printAsm(const Program &P);

} // namespace sct

#endif // SCT_ISA_ASMPRINTER_H
