//===- isa/AsmParser.cpp - Textual assembler -------------------------------===//

#include "isa/AsmParser.h"

#include "isa/ProgramBuilder.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>

using namespace sct;

namespace {

/// A lexed token within one source line.
struct Token {
  enum class Kind { Ident, Number, Punct, End } K = Kind::End;
  std::string Text;    // Ident text or punct spelling.
  uint64_t Value = 0;  // Number value.
};

/// A trivial per-line lexer.
class LineLexer {
public:
  explicit LineLexer(std::string_view Line) : Line(Line) {}

  Token peek() {
    if (!Lookahead)
      Lookahead = lex();
    return *Lookahead;
  }

  Token next() {
    Token T = peek();
    Lookahead.reset();
    return T;
  }

  bool atEnd() { return peek().K == Token::Kind::End; }

  bool Failed = false;

private:
  std::string_view Line;
  size_t Pos = 0;
  std::optional<Token> Lookahead;

  Token lex() {
    while (Pos < Line.size() && std::isspace((unsigned char)Line[Pos]))
      ++Pos;
    if (Pos >= Line.size())
      return {};

    char C = Line[Pos];
    Token T;
    if (std::isalpha((unsigned char)C) || C == '_' || C == '.' || C == '@') {
      size_t Start = Pos;
      ++Pos;
      while (Pos < Line.size() &&
             (std::isalnum((unsigned char)Line[Pos]) || Line[Pos] == '_' ||
              Line[Pos] == '.'))
        ++Pos;
      T.K = Token::Kind::Ident;
      T.Text = std::string(Line.substr(Start, Pos - Start));
      return T;
    }
    if (std::isdigit((unsigned char)C) ||
        (C == '-' && Pos + 1 < Line.size() &&
         std::isdigit((unsigned char)Line[Pos + 1]))) {
      bool Negative = C == '-';
      if (Negative)
        ++Pos;
      size_t Start = Pos;
      int Base = 10;
      if (Line[Pos] == '0' && Pos + 1 < Line.size() &&
          (Line[Pos + 1] == 'x' || Line[Pos + 1] == 'X')) {
        Base = 16;
        Pos += 2;
        Start = Pos;
      }
      while (Pos < Line.size() &&
             (std::isalnum((unsigned char)Line[Pos])))
        ++Pos;
      std::string Digits(Line.substr(Start, Pos - Start));
      char *End = nullptr;
      uint64_t V = std::strtoull(Digits.c_str(), &End, Base);
      if (End == nullptr || *End != '\0' || Digits.empty())
        Failed = true;
      T.K = Token::Kind::Number;
      T.Value = Negative ? uint64_t(0) - V : V;
      return T;
    }
    // Punctuation; "->" is a single token.
    if (C == '-' && Pos + 1 < Line.size() && Line[Pos + 1] == '>') {
      Pos += 2;
      T.K = Token::Kind::Punct;
      T.Text = "->";
      return T;
    }
    ++Pos;
    T.K = Token::Kind::Punct;
    T.Text = std::string(1, C);
    return T;
  }
};

/// Parser state shared between the two passes.
class Parser {
public:
  explicit Parser(std::string_view Source) { splitLines(Source); }

  ParseResult run() {
    pass1();
    if (!Errors.empty())
      return {std::nullopt, std::move(Errors)};
    pass2();
    if (!Errors.empty())
      return {std::nullopt, std::move(Errors)};
    Program P = Builder.build();
    for (const std::string &Problem : P.validate())
      error(0, "validation: " + Problem);
    if (!Errors.empty())
      return {std::nullopt, std::move(Errors)};
    return {std::move(P), {}};
  }

private:
  struct SourceLine {
    unsigned Number;
    std::string Text;
  };

  std::vector<SourceLine> Lines;
  std::map<std::string, PC> LabelPCs;
  ProgramBuilder Builder;
  std::vector<ParseError> Errors;
  std::string EntryLabel;

  void splitLines(std::string_view Source) {
    unsigned Number = 1;
    size_t Start = 0;
    while (Start <= Source.size()) {
      size_t NewLine = Source.find('\n', Start);
      std::string_view Raw = Source.substr(
          Start, NewLine == std::string_view::npos ? std::string_view::npos
                                                   : NewLine - Start);
      // Strip comments.
      size_t Comment = Raw.find_first_of(";#");
      if (Comment != std::string_view::npos)
        Raw = Raw.substr(0, Comment);
      Lines.push_back({Number, std::string(Raw)});
      if (NewLine == std::string_view::npos)
        break;
      Start = NewLine + 1;
      ++Number;
    }
  }

  void error(unsigned Line, std::string Message) {
    Errors.push_back({Line, std::move(Message)});
  }

  /// Splits an optional `label:` prefix off the line; returns the rest.
  /// A line may carry several label definitions.
  std::string stripLabels(const SourceLine &L,
                          std::vector<std::string> *LabelsOut) {
    std::string Rest = L.Text;
    for (;;) {
      LineLexer Lex(Rest);
      Token First = Lex.next();
      if (First.K != Token::Kind::Ident || First.Text[0] == '.' ||
          First.Text[0] == '@')
        return Rest;
      Token Second = Lex.next();
      if (Second.K != Token::Kind::Punct || Second.Text != ":")
        return Rest;
      if (LabelsOut)
        LabelsOut->push_back(First.Text);
      // Remove everything up to and including the colon.
      size_t Colon = Rest.find(':');
      Rest = Rest.substr(Colon + 1);
    }
  }

  /// True iff the statement text holds an instruction (vs. blank/directive).
  static bool isInstructionText(const std::string &Text) {
    for (char C : Text)
      if (!std::isspace((unsigned char)C))
        return true;
    return false;
  }

  // --- Pass 1: assign program points to code labels. ---------------------
  void pass1() {
    PC Here = 0;
    for (const SourceLine &L : Lines) {
      std::string Trimmed = L.Text;
      LineLexer Probe(Trimmed);
      if (Probe.atEnd())
        continue;
      Token First = Probe.peek();
      if (First.K == Token::Kind::Ident && First.Text[0] == '.')
        continue; // Directive.
      std::vector<std::string> Labels;
      std::string Rest = stripLabels(L, &Labels);
      for (const std::string &Name : Labels) {
        if (LabelPCs.count(Name)) {
          error(L.Number, "duplicate code label '" + Name + "'");
          continue;
        }
        LabelPCs[Name] = Here;
      }
      if (isInstructionText(Rest))
        ++Here;
    }
  }

  // --- Pass 2: parse directives and instructions. -------------------------
  void pass2() {
    for (const SourceLine &L : Lines) {
      LineLexer Probe(L.Text);
      if (Probe.atEnd())
        continue;
      Token First = Probe.peek();
      if (First.K == Token::Kind::Ident && First.Text[0] == '.') {
        parseDirective(L);
        continue;
      }
      std::vector<std::string> Labels;
      std::string Rest = stripLabels(L, &Labels);
      for (const std::string &Name : Labels)
        Builder.labelAtPC(Name, LabelPCs[Name]);
      if (!isInstructionText(Rest))
        continue;
      parseInstruction(L.Number, Rest);
    }
    if (!EntryLabel.empty()) {
      auto It = LabelPCs.find(EntryLabel);
      if (It == LabelPCs.end())
        error(0, "unknown entry label '" + EntryLabel + "'");
      else
        Builder.entryPC(It->second);
    }
  }

  bool expectPunct(LineLexer &Lex, unsigned Line, const char *Spelling) {
    Token T = Lex.next();
    if (T.K == Token::Kind::Punct && T.Text == Spelling)
      return true;
    error(Line, std::string("expected '") + Spelling + "'");
    return false;
  }

  std::optional<std::string> expectIdent(LineLexer &Lex, unsigned Line,
                                         const char *What) {
    Token T = Lex.next();
    if (T.K == Token::Kind::Ident)
      return T.Text;
    error(Line, std::string("expected ") + What);
    return std::nullopt;
  }

  std::optional<uint64_t> expectNumber(LineLexer &Lex, unsigned Line,
                                       const char *What) {
    Token T = Lex.next();
    if (T.K == Token::Kind::Number)
      return T.Value;
    error(Line, std::string("expected ") + What);
    return std::nullopt;
  }

  std::optional<PC> resolveLabel(unsigned Line, const std::string &Name) {
    auto It = LabelPCs.find(Name);
    if (It == LabelPCs.end()) {
      error(Line, "unknown code label '" + Name + "'");
      return std::nullopt;
    }
    return It->second;
  }

  /// Parses one operand: register, number, or @label.
  std::optional<Operand> parseOperand(LineLexer &Lex, unsigned Line) {
    Token T = Lex.next();
    if (T.K == Token::Kind::Number)
      return Operand::imm(T.Value);
    if (T.K == Token::Kind::Ident) {
      if (T.Text[0] == '@') {
        auto Target = resolveLabel(Line, T.Text.substr(1));
        if (!Target)
          return std::nullopt;
        return Operand::imm(*Target);
      }
      // Must be a declared register (rsp/rtmp are always declared).
      if (auto R = Builder.lookupReg(T.Text))
        return Operand::reg(*R);
      error(Line, "unknown register '" + T.Text +
                      "' (declare it with .reg, or use @label)");
      return std::nullopt;
    }
    error(Line, "expected operand");
    return std::nullopt;
  }

  /// Parses a comma-separated operand list until end-of-line or a stop
  /// punct (not consumed).
  std::optional<std::vector<Operand>>
  parseOperandList(LineLexer &Lex, unsigned Line, const char *Stop = nullptr) {
    std::vector<Operand> Ops;
    if (Lex.atEnd() || (Stop && Lex.peek().K == Token::Kind::Punct &&
                        Lex.peek().Text == Stop))
      return Ops;
    for (;;) {
      auto Op = parseOperand(Lex, Line);
      if (!Op)
        return std::nullopt;
      Ops.push_back(*Op);
      if (Lex.atEnd())
        return Ops;
      Token P = Lex.peek();
      if (P.K == Token::Kind::Punct && P.Text == ",") {
        Lex.next();
        continue;
      }
      return Ops;
    }
  }

  /// Parses `[ a, b, ... ]`.
  std::optional<std::vector<Operand>> parseAddr(LineLexer &Lex,
                                                unsigned Line) {
    if (!expectPunct(Lex, Line, "["))
      return std::nullopt;
    auto Ops = parseOperandList(Lex, Line, "]");
    if (!Ops)
      return std::nullopt;
    if (!expectPunct(Lex, Line, "]"))
      return std::nullopt;
    if (Ops->empty()) {
      error(Line, "empty address operand list");
      return std::nullopt;
    }
    return Ops;
  }

  void expectLineEnd(LineLexer &Lex, unsigned Line) {
    if (!Lex.atEnd())
      error(Line, "trailing tokens after instruction");
  }

  void parseDirective(const SourceLine &L) {
    LineLexer Lex(L.Text);
    std::string Name = Lex.next().Text;
    if (Name == ".reg") {
      while (!Lex.atEnd()) {
        Token T = Lex.next();
        if (T.K != Token::Kind::Ident) {
          error(L.Number, ".reg expects register names");
          return;
        }
        Builder.reg(T.Text);
      }
      return;
    }
    if (Name == ".init") {
      auto RegName = expectIdent(Lex, L.Number, "register name");
      if (!RegName)
        return;
      std::optional<uint64_t> V;
      Token ValTok = Lex.next();
      if (ValTok.K == Token::Kind::Number) {
        V = ValTok.Value;
      } else if (ValTok.K == Token::Kind::Ident && ValTok.Text[0] == '@') {
        auto Target = resolveLabel(L.Number, ValTok.Text.substr(1));
        if (!Target)
          return;
        V = *Target;
      } else {
        error(L.Number, "expected initial value (number or @label)");
        return;
      }
      auto R = Builder.lookupReg(*RegName);
      if (!R) {
        error(L.Number, "unknown register '" + *RegName + "' in .init");
        return;
      }
      Builder.init(*R, *V);
      expectLineEnd(Lex, L.Number);
      return;
    }
    if (Name == ".region") {
      auto RegionName = expectIdent(Lex, L.Number, "region name");
      auto Base = RegionName ? expectNumber(Lex, L.Number, "region base")
                             : std::nullopt;
      auto Size =
          Base ? expectNumber(Lex, L.Number, "region size") : std::nullopt;
      auto Vis = Size ? expectIdent(Lex, L.Number, "'public' or 'secret'")
                      : std::nullopt;
      if (!Vis)
        return;
      Label RegionLabel = Label::publicLabel();
      if (*Vis == "secret") {
        uint64_t Src = 0;
        if (!Lex.atEnd()) {
          auto Explicit = expectNumber(Lex, L.Number, "taint source id");
          if (!Explicit)
            return;
          Src = *Explicit;
        }
        if (Src >= Label::MaxSources) {
          error(L.Number, "taint source id out of range");
          return;
        }
        RegionLabel = Label::secret(static_cast<unsigned>(Src));
      } else if (*Vis != "public") {
        error(L.Number, "region visibility must be 'public' or 'secret'");
        return;
      }
      Builder.region(*RegionName, *Base, *Size, RegionLabel);
      expectLineEnd(Lex, L.Number);
      return;
    }
    if (Name == ".data") {
      auto Base = expectNumber(Lex, L.Number, "base address");
      if (!Base)
        return;
      uint64_t Addr = *Base;
      while (!Lex.atEnd()) {
        Token T = Lex.next();
        uint64_t W = 0;
        if (T.K == Token::Kind::Number) {
          W = T.Value;
        } else if (T.K == Token::Kind::Ident && T.Text[0] == '@') {
          auto Target = resolveLabel(L.Number, T.Text.substr(1));
          if (!Target)
            return;
          W = *Target;
        } else {
          error(L.Number, ".data expects word values");
          return;
        }
        Builder.data(Addr++, {W});
      }
      return;
    }
    if (Name == ".entry") {
      auto LabelName = expectIdent(Lex, L.Number, "entry label");
      if (!LabelName)
        return;
      EntryLabel = *LabelName;
      expectLineEnd(Lex, L.Number);
      return;
    }
    error(L.Number, "unknown directive '" + Name + "'");
  }

  void parseInstruction(unsigned Line, const std::string &Text) {
    LineLexer Lex(Text);
    Token First = Lex.next();
    if (First.K != Token::Kind::Ident) {
      error(Line, "expected instruction");
      return;
    }
    const std::string &Head = First.Text;

    if (Head == "store") {
      auto Val = parseOperand(Lex, Line);
      if (!Val || !expectPunct(Lex, Line, ","))
        return;
      auto Addr = parseAddr(Lex, Line);
      if (!Addr)
        return;
      Builder.store(*Val, std::move(*Addr));
      expectLineEnd(Lex, Line);
      return;
    }
    if (Head == "br") {
      auto CondName = expectIdent(Lex, Line, "branch condition");
      if (!CondName)
        return;
      auto Cond = parseOpcode(*CondName);
      if (!Cond || !isCondition(*Cond)) {
        error(Line, "unknown branch condition '" + *CondName + "'");
        return;
      }
      auto Args = parseOperandList(Lex, Line, "->");
      if (!Args)
        return;
      if (!expectPunct(Lex, Line, "->"))
        return;
      auto TrueName = expectIdent(Lex, Line, "true-branch label");
      if (!TrueName || !expectPunct(Lex, Line, ","))
        return;
      auto FalseName = expectIdent(Lex, Line, "false-branch label");
      if (!FalseName)
        return;
      auto TruePC = resolveLabel(Line, *TrueName);
      auto FalsePC = resolveLabel(Line, *FalseName);
      if (!TruePC || !FalsePC)
        return;
      if (Args->size() != opcodeArity(*Cond)) {
        error(Line, "operand count mismatch for condition '" + *CondName +
                        "'");
        return;
      }
      Builder.brPC(*Cond, std::move(*Args), *TruePC, *FalsePC);
      expectLineEnd(Lex, Line);
      return;
    }
    if (Head == "jmp") {
      auto Target = expectIdent(Lex, Line, "jump label");
      if (!Target)
        return;
      auto TargetPC = resolveLabel(Line, *Target);
      if (!TargetPC)
        return;
      Builder.brPC(Opcode::True, {}, *TargetPC, *TargetPC);
      expectLineEnd(Lex, Line);
      return;
    }
    if (Head == "jmpi") {
      auto Addr = parseAddr(Lex, Line);
      if (!Addr)
        return;
      Builder.jmpi(std::move(*Addr));
      expectLineEnd(Lex, Line);
      return;
    }
    if (Head == "calli") {
      auto Addr = parseAddr(Lex, Line);
      if (!Addr)
        return;
      Builder.calli(std::move(*Addr));
      expectLineEnd(Lex, Line);
      return;
    }
    if (Head == "call") {
      auto Callee = expectIdent(Lex, Line, "callee label");
      if (!Callee)
        return;
      auto CalleePC = resolveLabel(Line, *Callee);
      if (!CalleePC)
        return;
      Builder.callPC(*CalleePC);
      expectLineEnd(Lex, Line);
      return;
    }
    if (Head == "ret") {
      Builder.ret();
      expectLineEnd(Lex, Line);
      return;
    }
    if (Head == "fence") {
      Builder.fence();
      expectLineEnd(Lex, Line);
      return;
    }

    // Remaining form: `reg = load [...]` or `reg = OPC args`.
    auto Dest = Builder.lookupReg(Head);
    if (!Dest) {
      error(Line, "unknown instruction or register '" + Head + "'");
      return;
    }
    if (!expectPunct(Lex, Line, "="))
      return;
    auto OpName = expectIdent(Lex, Line, "opcode or 'load'");
    if (!OpName)
      return;
    if (*OpName == "load") {
      auto Addr = parseAddr(Lex, Line);
      if (!Addr)
        return;
      Builder.load(*Dest, std::move(*Addr));
      expectLineEnd(Lex, Line);
      return;
    }
    auto Opc = parseOpcode(*OpName);
    if (!Opc) {
      error(Line, "unknown opcode '" + *OpName + "'");
      return;
    }
    auto Args = parseOperandList(Lex, Line);
    if (!Args)
      return;
    if (Args->size() != opcodeArity(*Opc)) {
      error(Line, "operand count mismatch for opcode '" + *OpName + "'");
      return;
    }
    Builder.op(*Dest, *Opc, std::move(*Args));
    expectLineEnd(Lex, Line);
  }
};

} // namespace

std::string ParseResult::errorText() const {
  std::string Result;
  for (const ParseError &E : Errors) {
    Result += "line " + std::to_string(E.Line) + ": " + E.Message + "\n";
  }
  return Result;
}

ParseResult sct::parseAsm(std::string_view Source) {
  Parser P(Source);
  return P.run();
}

Program sct::parseAsmOrDie(std::string_view Source) {
  ParseResult R = parseAsm(Source);
  if (!R.ok()) {
    std::fprintf(stderr, "parseAsmOrDie failed:\n%s", R.errorText().c_str());
    std::abort();
  }
  return std::move(*R.Prog);
}
