//===- isa/ProgramBuilder.h - Fluent program construction ------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fluent builder for Program.  Control-flow targets are given as string
/// labels and resolved at build() time, so programs can reference labels
/// forward.  Straight-line successors default to the next instruction.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_ISA_PROGRAMBUILDER_H
#define SCT_ISA_PROGRAMBUILDER_H

#include "isa/Program.h"

#include <initializer_list>

namespace sct {

/// Fluent builder.  Typical use:
/// \code
///   ProgramBuilder B;
///   Reg Ra = B.reg("ra");
///   B.region("A", 0x40, 4, Label::publicLabel());
///   B.br(Opcode::Ult, {B.r(Ra), B.imm(4)}, "body", "end");
///   B.label("body");
///   ...
///   B.label("end");
///   Program P = B.build();
/// \endcode
class ProgramBuilder {
public:
  ProgramBuilder();

  /// Declares (or returns the existing) register named \p Name.
  Reg reg(const std::string &Name);

  /// Looks up a register previously declared with reg(); does not declare.
  std::optional<Reg> lookupReg(std::string_view Name) const {
    return Prog.regByName(Name);
  }

  /// Shorthand operand constructors.
  static Operand r(Reg R) { return Operand::reg(R); }
  static Operand imm(uint64_t V) { return Operand::imm(V); }

  /// Attaches code label \p Name to the next emitted instruction.
  ProgramBuilder &label(const std::string &Name);

  /// Emits r = op(op, rv⃗, ·).
  ProgramBuilder &op(Reg Dest, Opcode Opc, std::vector<Operand> Args);
  /// Emits r = mov v.
  ProgramBuilder &movi(Reg Dest, uint64_t V);
  /// Emits br(cond, rv⃗, @TrueLabel, @FalseLabel).
  ProgramBuilder &br(Opcode Cond, std::vector<Operand> Args,
                     const std::string &TrueLabel,
                     const std::string &FalseLabel);
  /// Emits br with pre-resolved program points (used by the assembler).
  ProgramBuilder &brPC(Opcode Cond, std::vector<Operand> Args, PC NTrue,
                       PC NFalse);
  /// Emits an unconditional direct jump (encoded br true).
  ProgramBuilder &jmp(const std::string &Target);
  /// Emits r = load(rv⃗, ·).
  ProgramBuilder &load(Reg Dest, std::vector<Operand> AddrArgs);
  /// Emits store(rv, rv⃗, ·).
  ProgramBuilder &store(Operand Val, std::vector<Operand> AddrArgs);
  /// Emits jmpi(rv⃗).
  ProgramBuilder &jmpi(std::vector<Operand> AddrArgs);
  /// Emits call(@Callee, ·).
  ProgramBuilder &call(const std::string &Callee);
  /// Emits call with a pre-resolved callee (used by the assembler).
  ProgramBuilder &callPC(PC Callee);
  /// Emits calli(rv⃗, ·).
  ProgramBuilder &calli(std::vector<Operand> TargetArgs);
  /// Emits ret.
  ProgramBuilder &ret();
  /// Emits fence ·.
  ProgramBuilder &fence();
  /// Places \p I verbatim, trusting every field including the successor
  /// (used by ProgramRewriter, which computes layout itself).
  ProgramBuilder &raw(Instruction I);

  /// Declares a labelled data region.
  ProgramBuilder &region(const std::string &Name, uint64_t Base, uint64_t Size,
                         Label RegionLabel);
  /// Sets the initial value of a register (defaults to 0).
  ProgramBuilder &init(Reg R, uint64_t V);
  /// Sets initial memory words starting at \p Base.
  ProgramBuilder &data(uint64_t Base, std::initializer_list<uint64_t> Words);
  /// Sets the entry label (defaults to the first instruction).
  ProgramBuilder &entry(const std::string &Name);
  /// Sets the entry point directly (used by the assembler).
  ProgramBuilder &entryPC(PC N);
  /// Records a code label at an explicit point (used by the assembler).
  ProgramBuilder &labelAtPC(const std::string &Name, PC N);

  /// The program point of a previously placed label; asserts existence.
  PC pcOf(const std::string &Name) const;

  /// Resolves all label references and successors and returns the program.
  /// Asserts on dangling labels; call Program::validate() for full checks.
  Program build();

private:
  struct PendingTarget {
    size_t InstrIndex;
    std::string TrueLabel;  // Branch true / Call callee.
    std::string FalseLabel; // Branch false.
    bool IsBranch;
  };

  Program Prog;
  std::vector<PendingTarget> Pending;
  std::vector<std::string> PendingLabels;

  void place(Instruction I);
};

} // namespace sct

#endif // SCT_ISA_PROGRAMBUILDER_H
