//===- isa/ProgramBuilder.cpp - Fluent program construction ---------------===//

#include "isa/ProgramBuilder.h"

using namespace sct;

ProgramBuilder::ProgramBuilder() {
  // The reserved registers exist in every program (Appendix A.2).
  Prog.RegNames.push_back("rsp");
  Prog.RegNames.push_back("rtmp");
}

Reg ProgramBuilder::reg(const std::string &Name) {
  if (auto Existing = Prog.regByName(Name))
    return *Existing;
  Prog.RegNames.push_back(Name);
  return Reg(static_cast<uint16_t>(Prog.RegNames.size() - 1));
}

ProgramBuilder &ProgramBuilder::label(const std::string &Name) {
  PendingLabels.push_back(Name);
  return *this;
}

void ProgramBuilder::place(Instruction I) {
  PC Here = static_cast<PC>(Prog.Text.size());
  for (const std::string &Name : PendingLabels) {
    assert(!Prog.CodeLabels.count(Name) && "duplicate code label");
    Prog.CodeLabels[Name] = Here;
  }
  PendingLabels.clear();
  I.setNext(Here + 1); // Straight-line successor; branches ignore it.
  Prog.Text.push_back(std::move(I));
}

ProgramBuilder &ProgramBuilder::op(Reg Dest, Opcode Opc,
                                   std::vector<Operand> Args) {
  place(Instruction::makeOp(Dest, Opc, std::move(Args)));
  return *this;
}

ProgramBuilder &ProgramBuilder::movi(Reg Dest, uint64_t V) {
  return op(Dest, Opcode::Mov, {imm(V)});
}

ProgramBuilder &ProgramBuilder::br(Opcode Cond, std::vector<Operand> Args,
                                   const std::string &TrueLabel,
                                   const std::string &FalseLabel) {
  Pending.push_back(
      {Prog.Text.size(), TrueLabel, FalseLabel, /*IsBranch=*/true});
  place(Instruction::makeBranch(Cond, std::move(Args), 0, 0));
  return *this;
}

ProgramBuilder &ProgramBuilder::brPC(Opcode Cond, std::vector<Operand> Args,
                                     PC NTrue, PC NFalse) {
  place(Instruction::makeBranch(Cond, std::move(Args), NTrue, NFalse));
  return *this;
}

ProgramBuilder &ProgramBuilder::jmp(const std::string &Target) {
  return br(Opcode::True, {}, Target, Target);
}

ProgramBuilder &ProgramBuilder::load(Reg Dest, std::vector<Operand> AddrArgs) {
  place(Instruction::makeLoad(Dest, std::move(AddrArgs)));
  return *this;
}

ProgramBuilder &ProgramBuilder::store(Operand Val,
                                      std::vector<Operand> AddrArgs) {
  place(Instruction::makeStore(Val, std::move(AddrArgs)));
  return *this;
}

ProgramBuilder &ProgramBuilder::jmpi(std::vector<Operand> AddrArgs) {
  place(Instruction::makeJumpI(std::move(AddrArgs)));
  return *this;
}

ProgramBuilder &ProgramBuilder::call(const std::string &Callee) {
  Pending.push_back({Prog.Text.size(), Callee, "", /*IsBranch=*/false});
  place(Instruction::makeCall(0));
  return *this;
}

ProgramBuilder &ProgramBuilder::callPC(PC Callee) {
  place(Instruction::makeCall(Callee));
  return *this;
}

ProgramBuilder &ProgramBuilder::calli(std::vector<Operand> TargetArgs) {
  place(Instruction::makeCallI(std::move(TargetArgs)));
  return *this;
}

ProgramBuilder &ProgramBuilder::ret() {
  place(Instruction::makeRet());
  return *this;
}

ProgramBuilder &ProgramBuilder::fence() {
  place(Instruction::makeFence());
  return *this;
}

ProgramBuilder &ProgramBuilder::raw(Instruction I) {
  PC Here = static_cast<PC>(Prog.Text.size());
  for (const std::string &Name : PendingLabels)
    Prog.CodeLabels[Name] = Here;
  PendingLabels.clear();
  Prog.Text.push_back(std::move(I));
  return *this;
}

ProgramBuilder &ProgramBuilder::region(const std::string &Name, uint64_t Base,
                                       uint64_t Size, Label RegionLabel) {
  Prog.Regions.push_back({Name, Base, Size, RegionLabel});
  return *this;
}

ProgramBuilder &ProgramBuilder::init(Reg R, uint64_t V) {
  Prog.RegInits.emplace_back(R, V);
  return *this;
}

ProgramBuilder &ProgramBuilder::data(uint64_t Base,
                                     std::initializer_list<uint64_t> Words) {
  uint64_t Addr = Base;
  for (uint64_t W : Words)
    Prog.MemInits.emplace_back(Addr++, W);
  return *this;
}

ProgramBuilder &ProgramBuilder::entry(const std::string &Name) {
  // Recorded as a pending label lookup resolved in build(); reuse the
  // Pending list with a sentinel instruction index.
  Pending.push_back({SIZE_MAX, Name, "", /*IsBranch=*/false});
  return *this;
}

ProgramBuilder &ProgramBuilder::entryPC(PC N) {
  Prog.Entry = N;
  return *this;
}

ProgramBuilder &ProgramBuilder::labelAtPC(const std::string &Name, PC N) {
  Prog.CodeLabels[Name] = N;
  return *this;
}

PC ProgramBuilder::pcOf(const std::string &Name) const {
  auto It = Prog.CodeLabels.find(Name);
  assert(It != Prog.CodeLabels.end() && "unknown code label");
  return It->second;
}

Program ProgramBuilder::build() {
  // Labels trailing the last instruction name the end program point.
  PC End = static_cast<PC>(Prog.Text.size());
  for (const std::string &Name : PendingLabels)
    Prog.CodeLabels[Name] = End;
  PendingLabels.clear();

  auto Resolve = [&](const std::string &Name) {
    auto It = Prog.CodeLabels.find(Name);
    assert(It != Prog.CodeLabels.end() && "dangling code label");
    return It->second;
  };

  for (const PendingTarget &P : Pending) {
    if (P.InstrIndex == SIZE_MAX) {
      Prog.Entry = Resolve(P.TrueLabel);
      continue;
    }
    Instruction &I = Prog.Text[P.InstrIndex];
    if (P.IsBranch)
      I.setBranchTargets(Resolve(P.TrueLabel), Resolve(P.FalseLabel));
    else
      I.setCallee(Resolve(P.TrueLabel));
  }
  Pending.clear();
  return Prog;
}
