//===- isa/Opcode.h - Operation codes for `op` and `br` --------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Opcodes for the paper's `op` instruction ("op specifies opcode", Table 1)
/// and for the Boolean operator of conditional branches.  The paper leaves
/// the operation set abstract; we provide the operations needed to express
/// the paper's examples plus the masking/selection idioms used by real
/// constant-time cryptographic code (the §4.2 case studies).
///
//===----------------------------------------------------------------------===//

#ifndef SCT_ISA_OPCODE_H
#define SCT_ISA_OPCODE_H

#include <optional>
#include <string_view>

namespace sct {

/// Operation codes usable in `op` instructions and as branch conditions.
enum class Opcode : unsigned char {
  // Arithmetic / logic.
  Add,
  Sub,
  Mul,
  UDiv, // Division by zero yields 0 (total semantics).
  URem, // Remainder by zero yields the dividend.
  And,
  Or,
  Xor,
  Shl, // Shift amounts are taken modulo 64.
  Shr,
  Not,
  Neg,
  Mov,
  Select, // select(c, a, b) = c != 0 ? a : b — constant-time select.
  // Comparisons (produce 0 or 1); also the Boolean operators of `br`.
  Eq,
  Ne,
  Ult,
  Ule,
  Ugt,
  Uge,
  Slt,
  Sle,
  Sgt,
  Sge,
  // Nullary conditions: `br true -> n, n` encodes a direct jump.
  True,
  False,
  // Abstract stack-pointer successor/predecessor used by call/ret
  // expansion (Appendix A.2 keeps succ/pred abstract; see MachineOptions).
  Succ,
  Pred,
};

/// Number of operands \p Opc consumes.
unsigned opcodeArity(Opcode Opc);

/// True iff \p Opc is a comparison or nullary condition, i.e. is valid as
/// the Boolean operator of a conditional branch.
bool isCondition(Opcode Opc);

/// Lower-case mnemonic for \p Opc.
std::string_view opcodeName(Opcode Opc);

/// Parses a mnemonic; returns std::nullopt for unknown names.
std::optional<Opcode> parseOpcode(std::string_view Name);

} // namespace sct

#endif // SCT_ISA_OPCODE_H
