//===- isa/Instruction.cpp - Physical instructions ------------------------===//

#include "isa/Instruction.h"

using namespace sct;

Instruction Instruction::makeOp(Reg Dest, Opcode Opc,
                                std::vector<Operand> Args) {
  assert(opcodeArity(Opc) == Args.size() && "operand count mismatch");
  Instruction I;
  I.Kind = InstrKind::Op;
  I.Dest = Dest;
  I.Opc = Opc;
  I.Args = std::move(Args);
  return I;
}

Instruction Instruction::makeBranch(Opcode Cond, std::vector<Operand> Args,
                                    PC NTrue, PC NFalse) {
  assert(isCondition(Cond) && "branch operator must be a condition");
  assert(opcodeArity(Cond) == Args.size() && "operand count mismatch");
  Instruction I;
  I.Kind = InstrKind::Branch;
  I.Opc = Cond;
  I.Args = std::move(Args);
  I.NTrue = NTrue;
  I.NFalse = NFalse;
  return I;
}

Instruction Instruction::makeLoad(Reg Dest, std::vector<Operand> AddrArgs) {
  assert(!AddrArgs.empty() && "load needs address operands");
  Instruction I;
  I.Kind = InstrKind::Load;
  I.Dest = Dest;
  I.Args = std::move(AddrArgs);
  return I;
}

Instruction Instruction::makeStore(Operand Val, std::vector<Operand> AddrArgs) {
  assert(!AddrArgs.empty() && "store needs address operands");
  Instruction I;
  I.Kind = InstrKind::Store;
  I.StoreVal = Val;
  I.Args = std::move(AddrArgs);
  return I;
}

Instruction Instruction::makeJumpI(std::vector<Operand> AddrArgs) {
  assert(!AddrArgs.empty() && "jmpi needs target operands");
  Instruction I;
  I.Kind = InstrKind::JumpI;
  I.Args = std::move(AddrArgs);
  return I;
}

Instruction Instruction::makeCall(PC Callee) {
  Instruction I;
  I.Kind = InstrKind::Call;
  I.Callee = Callee;
  return I;
}

Instruction Instruction::makeCallI(std::vector<Operand> TargetArgs) {
  assert(!TargetArgs.empty() && "calli needs target operands");
  Instruction I;
  I.Kind = InstrKind::CallI;
  I.Args = std::move(TargetArgs);
  return I;
}

Instruction Instruction::makeRet() {
  Instruction I;
  I.Kind = InstrKind::Ret;
  return I;
}

Instruction Instruction::makeFence() {
  Instruction I;
  I.Kind = InstrKind::Fence;
  return I;
}
