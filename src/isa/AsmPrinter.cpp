//===- isa/AsmPrinter.cpp - Program pretty-printer -------------------------===//

#include "isa/AsmPrinter.h"

#include "support/Printing.h"

#include <map>

using namespace sct;

std::string sct::printOperand(const Program &P, const Operand &Op) {
  if (Op.isReg())
    return P.regName(Op.getReg());
  uint64_t V = Op.getImm();
  if (V >= 0x40)
    return toHex(V);
  return std::to_string(V);
}

namespace {

std::string operandList(const Program &P, const std::vector<Operand> &Ops) {
  std::vector<std::string> Parts;
  Parts.reserve(Ops.size());
  for (const Operand &Op : Ops)
    Parts.push_back(printOperand(P, Op));
  return join(Parts, ", ");
}

/// Returns a printable name for program point \p N, inventing "pc<N>"
/// pseudo-labels where the program has none.
std::string targetName(const Program &P, PC N) {
  if (auto Name = P.labelAt(N))
    return *Name;
  return "pc" + std::to_string(N);
}

} // namespace

std::string sct::printInstruction(const Program &P, PC N) {
  const Instruction &I = P.at(N);
  switch (I.kind()) {
  case InstrKind::Op:
    return P.regName(I.dest()) + " = " + std::string(opcodeName(I.opcode())) +
           (I.args().empty() ? "" : " " + operandList(P, I.args()));
  case InstrKind::Branch:
    if (I.opcode() == Opcode::True && I.trueTarget() == I.falseTarget())
      return "jmp " + targetName(P, I.trueTarget());
    return "br " + std::string(opcodeName(I.opcode())) +
           (I.args().empty() ? "" : " " + operandList(P, I.args())) + " -> " +
           targetName(P, I.trueTarget()) + ", " +
           targetName(P, I.falseTarget());
  case InstrKind::Load:
    return P.regName(I.dest()) + " = load [" + operandList(P, I.args()) + "]";
  case InstrKind::Store:
    return "store " + printOperand(P, I.storeValue()) + ", [" +
           operandList(P, I.args()) + "]";
  case InstrKind::JumpI:
    return "jmpi [" + operandList(P, I.args()) + "]";
  case InstrKind::Call:
    return "call " + targetName(P, I.callee());
  case InstrKind::CallI:
    return "calli [" + operandList(P, I.args()) + "]";
  case InstrKind::Ret:
    return "ret";
  case InstrKind::Fence:
    return "fence";
  }
  return "<invalid>";
}

std::string sct::printAsm(const Program &P) {
  std::string Out;

  // Register declarations (user registers only; rsp/rtmp are implicit).
  if (P.numRegs() > Reg::FirstUserId) {
    Out += ".reg";
    for (unsigned I = Reg::FirstUserId; I < P.numRegs(); ++I)
      Out += " " + P.regName(Reg(static_cast<uint16_t>(I)));
    Out += "\n";
  }

  for (const auto &[R, V] : P.regInits())
    Out += ".init " + P.regName(R) + " " + toHex(V) + "\n";

  for (const MemRegion &R : P.regions()) {
    Out += ".region " + R.Name + " " + toHex(R.Base) + " " +
           std::to_string(R.Size) + " ";
    if (R.RegionLabel.isPublic()) {
      Out += "public\n";
      continue;
    }
    Out += "secret";
    for (unsigned S = 0; S < Label::MaxSources; ++S)
      if (R.RegionLabel.contains(S)) {
        Out += " " + std::to_string(S);
        break; // The syntax supports one source per region.
      }
    Out += "\n";
  }

  for (const auto &[Addr, V] : P.memInits())
    Out += ".data " + toHex(Addr) + " " + toHex(V) + "\n";

  // Collect label names per program point, inventing names for targets
  // that have none so the printed text round-trips.
  std::map<PC, std::vector<std::string>> LabelsAt;
  for (const auto &[Name, Point] : P.codeLabels())
    LabelsAt[Point].push_back(Name);
  auto EnsureLabel = [&](PC N) {
    if (!LabelsAt.count(N))
      LabelsAt[N].push_back("pc" + std::to_string(N));
  };
  for (PC N = 0; N < P.size(); ++N) {
    const Instruction &I = P.at(N);
    if (I.is(InstrKind::Branch)) {
      EnsureLabel(I.trueTarget());
      EnsureLabel(I.falseTarget());
    } else if (I.is(InstrKind::Call)) {
      EnsureLabel(I.callee());
    }
  }
  if (P.entry() != 0) {
    EnsureLabel(P.entry());
    Out += ".entry " + LabelsAt[P.entry()].front() + "\n";
  }

  for (PC N = 0; N <= P.size(); ++N) {
    if (auto It = LabelsAt.find(N); It != LabelsAt.end())
      for (const std::string &Name : It->second)
        Out += Name + ":\n";
    if (N < P.size())
      Out += "  " + printInstruction(P, N) + "\n";
  }
  return Out;
}
