//===- isa/Program.h - A complete program image ----------------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Program bundles the text section (instruction memory), named data
/// regions with their security labels, initial register/memory values, and
/// the entry point.  The paper uses a single memory µ mapping addresses to
/// both instructions and data; we split instruction memory (the text
/// section, indexed by program points) from the word-addressed data memory
/// — no semantics rule reads instructions through data accesses or vice
/// versa, so the split is behaviour-preserving (see DESIGN.md §2).
///
//===----------------------------------------------------------------------===//

#ifndef SCT_ISA_PROGRAM_H
#define SCT_ISA_PROGRAM_H

#include "isa/Instruction.h"
#include "support/Label.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sct {

/// A named, labelled range of data memory.  The region's label is attached
/// to every initial value inside it (the attacker's "secret" annotations of
/// §4.2.1).
struct MemRegion {
  std::string Name;
  uint64_t Base = 0;
  uint64_t Size = 0; ///< In words; each address holds one 64-bit value.
  Label RegionLabel;
};

/// A complete program image: text, data layout, and initial state.
class Program {
public:
  friend class ProgramBuilder;

  /// Number of instructions in the text section.
  size_t size() const { return Text.size(); }

  /// True iff \p N names an instruction (the fetch rules' "µ(n) defined").
  bool contains(PC N) const { return N < Text.size(); }

  /// The program point one past the last instruction; reaching it with an
  /// empty reorder buffer is the terminal configuration (Definition B.2).
  PC endPC() const { return static_cast<PC>(Text.size()); }

  /// Entry program point.
  PC entry() const { return Entry; }

  const Instruction &at(PC N) const {
    assert(contains(N) && "program point out of range");
    return Text[N];
  }

  Instruction &at(PC N) {
    assert(contains(N) && "program point out of range");
    return Text[N];
  }

  /// All instructions in program-point order.
  const std::vector<Instruction> &text() const { return Text; }

  /// Number of architectural registers (including rsp and rtmp).
  unsigned numRegs() const { return static_cast<unsigned>(RegNames.size()); }

  /// Name of register \p R ("rsp"/"rtmp" for the reserved pair).
  const std::string &regName(Reg R) const {
    assert(R.id() < RegNames.size() && "register id out of range");
    return RegNames[R.id()];
  }

  /// Looks a register up by name.
  std::optional<Reg> regByName(std::string_view Name) const;

  /// Declared memory regions.
  const std::vector<MemRegion> &regions() const { return Regions; }

  /// Looks a region up by name.
  const MemRegion *regionByName(std::string_view Name) const;

  /// Label of address \p Addr: the label of the containing region, or
  /// public if no region contains it.
  Label labelForAddr(uint64_t Addr) const;

  /// Initial register values (registers not listed start as 0 public).
  const std::vector<std::pair<Reg, uint64_t>> &regInits() const {
    return RegInits;
  }

  /// Initial memory values (addresses not listed start as 0, labelled per
  /// their region).
  const std::vector<std::pair<uint64_t, uint64_t>> &memInits() const {
    return MemInits;
  }

  /// Code labels (name -> program point), for diagnostics and printing.
  const std::map<std::string, PC> &codeLabels() const { return CodeLabels; }

  /// Name of program point \p N if a code label points at it.
  std::optional<std::string> labelAt(PC N) const;

  /// Structural validation: branch/call targets in range, register ids
  /// declared, operand arities consistent, region overlaps.  Returns a list
  /// of human-readable problems; empty means the program is well-formed.
  std::vector<std::string> validate() const;

private:
  std::vector<Instruction> Text;
  std::vector<std::string> RegNames;
  std::vector<MemRegion> Regions;
  std::vector<std::pair<Reg, uint64_t>> RegInits;
  std::vector<std::pair<uint64_t, uint64_t>> MemInits;
  std::map<std::string, PC> CodeLabels;
  PC Entry = 0;
};

} // namespace sct

#endif // SCT_ISA_PROGRAM_H
