//===- isa/Opcode.cpp - Operation codes -----------------------------------===//

#include "isa/Opcode.h"

#include <cassert>

using namespace sct;

unsigned sct::opcodeArity(Opcode Opc) {
  switch (Opc) {
  case Opcode::True:
  case Opcode::False:
    return 0;
  case Opcode::Not:
  case Opcode::Neg:
  case Opcode::Mov:
  case Opcode::Succ:
  case Opcode::Pred:
    return 1;
  case Opcode::Select:
    return 3;
  default:
    return 2;
  }
}

bool sct::isCondition(Opcode Opc) {
  switch (Opc) {
  case Opcode::Eq:
  case Opcode::Ne:
  case Opcode::Ult:
  case Opcode::Ule:
  case Opcode::Ugt:
  case Opcode::Uge:
  case Opcode::Slt:
  case Opcode::Sle:
  case Opcode::Sgt:
  case Opcode::Sge:
  case Opcode::True:
  case Opcode::False:
    return true;
  default:
    return false;
  }
}

std::string_view sct::opcodeName(Opcode Opc) {
  switch (Opc) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::UDiv:
    return "udiv";
  case Opcode::URem:
    return "urem";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::Not:
    return "not";
  case Opcode::Neg:
    return "neg";
  case Opcode::Mov:
    return "mov";
  case Opcode::Select:
    return "select";
  case Opcode::Eq:
    return "eq";
  case Opcode::Ne:
    return "ne";
  case Opcode::Ult:
    return "ult";
  case Opcode::Ule:
    return "ule";
  case Opcode::Ugt:
    return "ugt";
  case Opcode::Uge:
    return "uge";
  case Opcode::Slt:
    return "slt";
  case Opcode::Sle:
    return "sle";
  case Opcode::Sgt:
    return "sgt";
  case Opcode::Sge:
    return "sge";
  case Opcode::True:
    return "true";
  case Opcode::False:
    return "false";
  case Opcode::Succ:
    return "succ";
  case Opcode::Pred:
    return "pred";
  }
  assert(false && "unknown opcode");
  return "<invalid>";
}

std::optional<Opcode> sct::parseOpcode(std::string_view Name) {
  static constexpr Opcode All[] = {
      Opcode::Add,  Opcode::Sub, Opcode::Mul,    Opcode::UDiv, Opcode::URem,
      Opcode::And,  Opcode::Or,  Opcode::Xor,    Opcode::Shl,  Opcode::Shr,
      Opcode::Not,  Opcode::Neg, Opcode::Mov,    Opcode::Select,
      Opcode::Eq,   Opcode::Ne,  Opcode::Ult,    Opcode::Ule,  Opcode::Ugt,
      Opcode::Uge,  Opcode::Slt, Opcode::Sle,    Opcode::Sgt,  Opcode::Sge,
      Opcode::True, Opcode::False, Opcode::Succ, Opcode::Pred};
  for (Opcode Opc : All)
    if (opcodeName(Opc) == Name)
      return Opc;
  return std::nullopt;
}
