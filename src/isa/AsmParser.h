//===- isa/AsmParser.h - Textual assembler ---------------------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A line-oriented assembler for the paper's ISA.  Example:
///
/// \code
///   ; Figure 1 of the paper.
///   .reg ra rb rc
///   .init ra 9
///   .region A   0x40 4 public
///   .region B   0x44 4 public
///   .region Key 0x48 4 secret
///   .entry start
///   start:
///     br ult ra, 4 -> body, end
///   body:
///     rb = load [0x40, ra]
///     rc = load [0x44, rb]
///   end:
/// \endcode
///
/// Statement forms:
///   `reg = load [a, b, ...]`          memory load
///   `reg = OPC a, b, ...`             arithmetic op (OPC a mnemonic)
///   `store v, [a, b, ...]`            memory store
///   `br COND a, b -> tlbl, flbl`      conditional branch
///   `jmp lbl`                         direct jump (encoded br true)
///   `jmpi [a, b, ...]`                indirect jump
///   `call lbl` / `ret` / `fence`
///
/// Operands are declared register names, integer literals (decimal,
/// 0x-hex, or negative decimal), or `@lbl` — the program point of a code
/// label as an immediate (for jump tables and RSB experiments).
/// Directives: `.reg`, `.init`, `.region NAME BASE SIZE public|secret
/// [SRC]`, `.data BASE W...`, `.entry LBL`.  Comments start with `;` or
/// `#`.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_ISA_ASMPARSER_H
#define SCT_ISA_ASMPARSER_H

#include "isa/Program.h"

#include <string_view>

namespace sct {

/// A parse diagnostic with its 1-based source line.
struct ParseError {
  unsigned Line = 0;
  std::string Message;
};

/// Result of assembling a source string.
struct ParseResult {
  std::optional<Program> Prog;
  std::vector<ParseError> Errors;

  bool ok() const { return Prog.has_value() && Errors.empty(); }

  /// All diagnostics as "line N: msg" joined with newlines.
  std::string errorText() const;
};

/// Assembles \p Source into a Program.
ParseResult parseAsm(std::string_view Source);

/// Convenience wrapper for known-good sources (tests, workloads): asserts
/// that parsing and validation succeed and returns the program.
Program parseAsmOrDie(std::string_view Source);

} // namespace sct

#endif // SCT_ISA_ASMPARSER_H
