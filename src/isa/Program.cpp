//===- isa/Program.cpp - A complete program image --------------------------===//

#include "isa/Program.h"

#include "support/Printing.h"

using namespace sct;

std::optional<Reg> Program::regByName(std::string_view Name) const {
  for (size_t I = 0; I < RegNames.size(); ++I)
    if (RegNames[I] == Name)
      return Reg(static_cast<uint16_t>(I));
  return std::nullopt;
}

const MemRegion *Program::regionByName(std::string_view Name) const {
  for (const MemRegion &R : Regions)
    if (R.Name == Name)
      return &R;
  return nullptr;
}

Label Program::labelForAddr(uint64_t Addr) const {
  for (const MemRegion &R : Regions)
    if (Addr >= R.Base && Addr - R.Base < R.Size)
      return R.RegionLabel;
  return Label::publicLabel();
}

std::optional<std::string> Program::labelAt(PC N) const {
  for (const auto &[Name, Point] : CodeLabels)
    if (Point == N)
      return Name;
  return std::nullopt;
}

std::vector<std::string> Program::validate() const {
  std::vector<std::string> Problems;
  auto CheckPC = [&](PC N, size_t At, const char *What) {
    if (N > Text.size())
      Problems.push_back("instruction " + std::to_string(At) + ": " + What +
                         " target " + std::to_string(N) + " is out of range");
  };
  auto CheckOperand = [&](const Operand &Op, size_t At) {
    if (Op.isReg() && Op.getReg().id() >= RegNames.size())
      Problems.push_back("instruction " + std::to_string(At) +
                         ": undeclared register id " +
                         std::to_string(Op.getReg().id()));
  };

  for (size_t At = 0; At < Text.size(); ++At) {
    const Instruction &I = Text[At];
    for (const Operand &Op : I.args())
      CheckOperand(Op, At);
    switch (I.kind()) {
    case InstrKind::Op:
      if (opcodeArity(I.opcode()) != I.args().size())
        Problems.push_back("instruction " + std::to_string(At) +
                           ": operand count mismatch for op");
      if (I.dest().id() >= RegNames.size())
        Problems.push_back("instruction " + std::to_string(At) +
                           ": undeclared destination register");
      break;
    case InstrKind::Branch:
      if (!isCondition(I.opcode()))
        Problems.push_back("instruction " + std::to_string(At) +
                           ": branch operator is not a condition");
      CheckPC(I.trueTarget(), At, "branch true");
      CheckPC(I.falseTarget(), At, "branch false");
      break;
    case InstrKind::Load:
      if (I.dest().id() >= RegNames.size())
        Problems.push_back("instruction " + std::to_string(At) +
                           ": undeclared destination register");
      break;
    case InstrKind::Store:
      CheckOperand(I.storeValue(), At);
      break;
    case InstrKind::Call:
      CheckPC(I.callee(), At, "call");
      break;
    case InstrKind::JumpI:
    case InstrKind::CallI:
    case InstrKind::Ret:
    case InstrKind::Fence:
      break;
    }
    CheckPC(I.next(), At, "successor");
  }

  for (const auto &[R, V] : RegInits) {
    (void)V;
    if (R.id() >= RegNames.size())
      Problems.push_back("initial value for undeclared register id " +
                         std::to_string(R.id()));
  }

  for (size_t I = 0; I < Regions.size(); ++I)
    for (size_t J = I + 1; J < Regions.size(); ++J) {
      const MemRegion &A = Regions[I];
      const MemRegion &B = Regions[J];
      bool Disjoint = A.Base + A.Size <= B.Base || B.Base + B.Size <= A.Base;
      if (!Disjoint)
        Problems.push_back("memory regions '" + A.Name + "' and '" + B.Name +
                           "' overlap");
    }

  if (Entry > Text.size())
    Problems.push_back("entry point out of range");
  return Problems;
}
