//===- workloads/SuiteCase.h - Shared test-suite case type -----*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common shape of a checker test case: a program plus expected verdicts
/// under the classical sequential baseline and the two §4.2.1 checker
/// modes (without / with forwarding-hazard detection).
///
//===----------------------------------------------------------------------===//

#ifndef SCT_WORKLOADS_SUITECASE_H
#define SCT_WORKLOADS_SUITECASE_H

#include "isa/Program.h"

#include <string>
#include <vector>

namespace sct {

/// One suite entry.
struct SuiteCase {
  std::string Id;
  std::string Description;
  Program Prog;
  /// Expected verdict of the classical (sequential) constant-time check.
  bool ExpectSeqLeak = false;
  /// Expected verdict in v1v11Mode (bound 250, no forwarding hazards).
  bool ExpectV1V11Leak = false;
  /// Expected verdict in v4Mode (bound 20, forwarding hazards).
  bool ExpectV4Leak = false;
};

} // namespace sct

#endif // SCT_WORKLOADS_SUITECASE_H
