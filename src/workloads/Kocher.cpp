//===- workloads/Kocher.cpp - Kocher Spectre v1 test cases ------------------===//

#include "workloads/Kocher.h"

#include "isa/AsmParser.h"

using namespace sct;

namespace {

/// Shared declarations: registers, memory map, attacker index.
constexpr const char *Prelude = R"(
  .reg x y z t sz i c d p
  .init x 9
  .region arr1   0x40 4  public
  .data 0x40 1 0 2 3
  .region secret 0x44 16 secret
  .data 0x44 21 22 23 24 25 26 27 28 29 30 31 32 33 34 35 36
  .region arr2   0x60 64 public
  .region meta   0xA0 4  public
  .data 0xA0 4 0xA0
  .init rsp 0x38
  .region stack  0x30 9  public
)";

SuiteCase speculativeOnly(std::string Id, std::string Description,
                          const std::string &Body) {
  SuiteCase C;
  C.Id = std::move(Id);
  C.Description = std::move(Description);
  C.Prog = parseAsmOrDie(std::string(Prelude) + Body);
  C.ExpectSeqLeak = false;
  C.ExpectV1V11Leak = true;
  C.ExpectV4Leak = true;
  return C;
}

} // namespace

std::vector<SuiteCase> sct::kocherCases() {
  std::vector<SuiteCase> Cases;

  Cases.push_back(speculativeOnly(
      "kocher-01", "baseline bounds-check bypass (Kocher ex. 1)", R"(
    start:
      sz = load [0xA0]
      br ult x, sz -> in, out
    in:
      y = load [0x40, x]
      t = load [0x60, y]
    out:
  )"));

  Cases.push_back(speculativeOnly(
      "kocher-02", "leak combined into an accumulator with AND", R"(
    start:
      sz = load [0xA0]
      t = mov 0xFF
      br ult x, sz -> in, out
    in:
      y = load [0x40, x]
      z = load [0x60, y]
      t = and t, z
    out:
  )"));

  Cases.push_back(speculativeOnly(
      "kocher-03", "access moved into a called function", R"(
    start:
      sz = load [0xA0]
      br ult x, sz -> in, out
    in:
      call leakfn
    out:
      jmp done
    leakfn:
      y = load [0x40, x]
      t = load [0x60, y]
      ret
    done:
  )"));

  Cases.push_back(speculativeOnly(
      "kocher-04", "bounds check written as x <= size-1", R"(
    start:
      sz = load [0xA0]
      d = sub sz, 1
      br ule x, d -> in, out
    in:
      y = load [0x40, x]
      t = load [0x60, y]
    out:
  )"));

  Cases.push_back(speculativeOnly(
      "kocher-05", "guarded two-element strided read", R"(
    start:
      sz = load [0xA0]
      i = mov 0
    loop:
      br ult i, 2 -> body, out
    body:
      d = add x, i
      br ult d, sz -> in, next
    in:
      y = load [0x40, d]
      t = load [0x60, y]
    next:
      i = add i, 1
      jmp loop
    out:
  )"));

  Cases.push_back(speculativeOnly(
      "kocher-06", "array1_size reached through a pointer indirection",
      R"(
    start:
      p = load [0xA1]
      sz = load [p]
      br ult x, sz -> in, out
    in:
      y = load [0x40, x]
      t = load [0x60, y]
    out:
  )"));

  Cases.push_back(speculativeOnly(
      "kocher-07", "index xor-perturbed before check and use", R"(
    start:
      sz = load [0xA0]
      d = xor x, 1
      br ult d, sz -> in, out
    in:
      y = load [0x40, d]
      t = load [0x60, y]
    out:
  )"));

  // Case 08 uses a constant-time select instead of a branch: the index is
  // clamped data-dependently, there is nothing to mispredict, and the
  // program is secure — the checker must NOT flag it.
  {
    SuiteCase C;
    C.Id = "kocher-08";
    C.Description = "ternary-operator masking via constant-time select "
                    "(secure: no branch to mispredict)";
    C.Prog = parseAsmOrDie(std::string(Prelude) + R"(
      start:
        sz = load [0xA0]
        c = ult x, sz
        d = select c, x, 0
        y = load [0x40, d]
        t = load [0x60, y]
    )");
    C.ExpectSeqLeak = false;
    C.ExpectV1V11Leak = false;
    C.ExpectV4Leak = false;
    Cases.push_back(C);
  }

  Cases.push_back(speculativeOnly(
      "kocher-09", "redundant double bounds check still bypassable", R"(
    start:
      sz = load [0xA0]
      br ult x, sz -> chk2, out
    chk2:
      br ult x, sz -> in, out
    in:
      y = load [0x40, x]
      t = load [0x60, y]
    out:
  )"));

  Cases.push_back(speculativeOnly(
      "kocher-10", "leak through a branch on the out-of-bounds value",
      R"(
    start:
      sz = load [0xA0]
      br ult x, sz -> in, out
    in:
      y = load [0x40, x]
      br eq y, 42 -> hit, out
    hit:
      t = load [0x60]
    out:
  )"));

  // Case 11 leaks through a *store address*.  Worst-case schedules resolve
  // wrong-path store addresses eagerly only in the no-forwarding-hazard
  // mode (with hazard exploration the address resolves at retire, which a
  // squashed wrong-path store never reaches) — the two §4.2.1 modes
  // together cover it.
  {
    SuiteCase C;
    C.Id = "kocher-11";
    C.Description = "leak through the address of a guarded store";
    C.Prog = parseAsmOrDie(std::string(Prelude) + R"(
      start:
        sz = load [0xA0]
        br ult x, sz -> in, out
      in:
        y = load [0x40, x]
        store 1, [0x60, y]
      out:
    )");
    C.ExpectSeqLeak = false;
    C.ExpectV1V11Leak = true;
    C.ExpectV4Leak = false;
    Cases.push_back(C);
  }

  Cases.push_back(speculativeOnly(
      "kocher-12", "index reassembled from two attacker-controlled halves",
      R"(
    start:
      sz = load [0xA0]
      d = shr x, 2
      z = and x, 3
      d = shl d, 2
      d = or d, z
      br ult d, sz -> in, out
    in:
      y = load [0x40, d]
      t = load [0x60, y]
    out:
  )"));

  Cases.push_back(speculativeOnly(
      "kocher-13", "base and index operands swapped in the address", R"(
    start:
      sz = load [0xA0]
      br ult x, sz -> in, out
    in:
      y = load [x, 0x40]
      t = load [0x60, y]
    out:
  )"));

  Cases.push_back(speculativeOnly(
      "kocher-14", "loop-exit misprediction overruns the array", R"(
    start:
      i = mov 0
    loop:
      y = load [0x40, i]
      t = load [0x60, y]
      i = add i, 1
      br ult i, 4 -> loop, out
    out:
  )"));

  Cases.push_back(speculativeOnly(
      "kocher-15", "two levels of dependent indexing", R"(
    start:
      sz = load [0xA0]
      br ult x, sz -> in, out
    in:
      y = load [0x40, x]
      z = load [0x60, y]
      t = load [0x60, z]
    out:
  )"));

  return Cases;
}

std::vector<SuiteCase> sct::kocherOriginalCases() {
  auto Sequential = [](std::string Id, std::string Description,
                       const std::string &Body) {
    SuiteCase C;
    C.Id = std::move(Id);
    C.Description = std::move(Description);
    C.Prog = parseAsmOrDie(std::string(Prelude) + Body);
    C.ExpectSeqLeak = true;
    C.ExpectV1V11Leak = true;
    C.ExpectV4Leak = true;
    return C;
  };

  std::vector<SuiteCase> Cases;
  Cases.push_back(Sequential(
      "kocher-orig-01",
      "in-bounds table lookup indexed by a secret byte", R"(
    start:
      y = load [0x44]
      t = load [0x60, y]
  )"));
  Cases.push_back(Sequential(
      "kocher-orig-02", "direct branch on a secret comparison", R"(
    start:
      y = load [0x44]
      br eq y, 7 -> a, b
    a:
      t = mov 1
    b:
  )"));
  Cases.push_back(Sequential(
      "kocher-orig-03", "loop whose trip count is a secret", R"(
    start:
      z = load [0x45]
      z = and z, 3
      i = mov 0
    loop:
      br ult i, z -> body, out
    body:
      i = add i, 1
      jmp loop
    out:
  )"));
  Cases.push_back(Sequential(
      "kocher-orig-04", "store whose address depends on a secret", R"(
    start:
      y = load [0x46]
      y = and y, 31
      store 3, [0x60, y]
  )"));
  return Cases;
}
