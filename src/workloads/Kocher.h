//===- workloads/Kocher.h - Kocher Spectre v1 test cases -------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Spectre v1 test suite of §4.2: fifteen gadgets adapted from Paul
/// Kocher's well-known MSVC examples [19], rebuilt in the paper's ISA so
/// that they violate SCT *only speculatively* (the paper's own "new set of
/// Spectre v1 test cases which only exhibit violations when executed
/// speculatively"), plus four "original-style" cases that already violate
/// the classical sequential discipline, mirroring the paper's remark that
/// "many of the Kocher examples exhibit violations even during sequential
/// execution".
///
/// Every case shares the memory map
///   array1  0x40..0x43  public (in-bounds data)
///   secret  0x44..0x53  secret (adjacent; out-of-bounds reads land here)
///   array2  0x60..0x9F  public (the cache side-channel surface)
///   meta    0xA0..0xA3  public (array1_size and a pointer to it)
/// and the attacker-controlled index x = 9 (out of bounds).
///
//===----------------------------------------------------------------------===//

#ifndef SCT_WORKLOADS_KOCHER_H
#define SCT_WORKLOADS_KOCHER_H

#include "workloads/SuiteCase.h"

namespace sct {

/// The fifteen speculative-only cases, "kocher-01" .. "kocher-15".
std::vector<SuiteCase> kocherCases();

/// The four original-style sequentially-leaky cases, "kocher-orig-01" ..
/// "kocher-orig-04".
std::vector<SuiteCase> kocherOriginalCases();

} // namespace sct

#endif // SCT_WORKLOADS_KOCHER_H
