//===- workloads/ChaCha.h - ARX cipher kernel workload ---------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A ChaCha-style ARX (add/rotate/xor) kernel: the other major family of
/// constant-time crypto cores alongside donna's ladder.  ARX code has no
/// secret-dependent branches or addresses by construction, so it must be
/// speculative constant-time out of the box — a scalability and
/// true-negative workload for the checker on realistic straight-line code
/// (§4.2.2's intuition that "crypto primitives will not themselves be
/// vulnerable to Spectre attacks").
///
//===----------------------------------------------------------------------===//

#ifndef SCT_WORKLOADS_CHACHA_H
#define SCT_WORKLOADS_CHACHA_H

#include "workloads/SuiteCase.h"

namespace sct {

/// The kernel: loads a 16-word state (key words secret, constants and
/// counter public), runs \p DoubleRounds column+diagonal double-rounds of
/// quarter-rounds, adds the initial state back, and stores the keystream
/// block.  Clean in every checker mode.
SuiteCase chachaKernel(unsigned DoubleRounds = 2);

/// The same kernel wrapped in a leaky wrapper: after producing the
/// block, a C-style length dispatch branches on a public length and a
/// bounds-check bypass reaches the key schedule — the "clean primitive,
/// leaky caller" pattern of the paper's secretbox finding.
SuiteCase chachaWithLeakyWrapper();

} // namespace sct

#endif // SCT_WORKLOADS_CHACHA_H
