//===- workloads/Figures.cpp - The paper's figure programs ------------------===//

#include "workloads/Figures.h"

#include "checker/Retpoline.h"
#include "checker/SctChecker.h"
#include "isa/AsmParser.h"

using namespace sct;

namespace {

Directive F() { return Directive::fetch(); }
Directive FB(bool B) { return Directive::fetchBool(B); }
Directive FT(PC N) { return Directive::fetchTarget(N); }
Directive X(BufIdx I) { return Directive::execute(I); }
Directive XV(BufIdx I) { return Directive::executeValue(I); }
Directive XA(BufIdx I) { return Directive::executeAddr(I); }
Directive XF(BufIdx I, BufIdx J) { return Directive::executeFwd(I, J); }
Directive R() { return Directive::retire(); }

} // namespace

FigureCase sct::figure1() {
  FigureCase C;
  C.Name = "Figure 1";
  C.Description = "Spectre v1: the branch acts as a bounds check for array "
                  "A; speculation ignores it and leaks a byte of Key";
  C.Prog = parseAsmOrDie(R"(
    ; ra = 9 is out of bounds for the 4-element array A.
    .reg ra rb rc
    .init ra 9
    .region A   0x40 4 public
    .region B   0x44 4 public
    .region Key 0x48 4 secret
    .data 0x40 1 2 3 4
    .data 0x48 11 22 33 44
    start:
      br ult ra, 4 -> body, end
    body:
      rb = load [0x40, ra]
      rc = load [0x44, rb]
    end:
  )");
  // Figure 1's directive column: mispredict the bounds check, then execute
  // both loads out of order.
  C.PaperSchedule = {FB(true), F(), F(), X(2), X(3)};
  C.CheckOpts = ExplorerOptions{};
  C.ExpectLeak = true;
  return C;
}

FigureCase sct::figure2() {
  FigureCase C;
  C.Name = "Figure 2";
  C.Description = "hypothetical aliasing predictor: a load is guessed to "
                  "alias an unresolved store and receives a secret (§3.5)";
  C.Prog = parseAsmOrDie(R"(
    .reg ra rb rc
    .init ra 2
    .region Key 0x40 4 secret
    .region A   0x44 4 public
    .region B   0x48 4 public
    .data 0x40 9 8 7 6
    .data 0x44 0 0 0 0
    start:
      rb = load [0x40]        ; rb = x_sec
      store rb, [0x40, ra]    ; secretKey[ra]; address resolves late
      rc = load [0x45]        ; guessed to alias the store
      rc = load [0x48, rc]    ; leaks the forwarded secret
  )");
  // The figure's walkthrough: value-resolve the store, alias-predict the
  // first load, leak through the second, then detect the mismatch.
  C.PaperSchedule = {F(),      F(),   F(),  F(),   X(1),
                     XV(2),    XF(3, 2),    X(4),  XA(2), X(3)};
  C.CheckOpts = ExplorerOptions{};
  C.CheckOpts.ExploreAliasPrediction = true;
  C.ExpectLeak = true;
  return C;
}

namespace {

Program figure4Program() {
  return parseAsmOrDie(R"(
    .reg ra rb rc rg rh rd
    .init ra 3
    start:
      rb = mov 4
      br ult ra, 2 -> then, else
    then:
      rc = add rb, 1
      jmp end
    else:
      rd = mul rg, rh
    end:
  )");
}

} // namespace

FigureCase sct::figure4a() {
  FigureCase C;
  C.Name = "Figure 4a";
  C.Description = "branch predicted correctly: the branch resolves to a "
                  "jump and execution proceeds";
  C.Prog = figure4Program();
  C.PaperSchedule = {F(), FB(false), F(), X(2)};
  C.CheckOpts = ExplorerOptions{};
  C.ExpectLeak = false;
  return C;
}

FigureCase sct::figure4b() {
  FigureCase C;
  C.Name = "Figure 4b";
  C.Description = "branch predicted incorrectly: the misprediction rolls "
                  "the buffer back to the branch";
  C.Prog = figure4Program();
  C.PaperSchedule = {F(), FB(true), F(), X(2)};
  C.CheckOpts = ExplorerOptions{};
  C.ExpectLeak = false;
  return C;
}

FigureCase sct::figure5() {
  FigureCase C;
  C.Name = "Figure 5";
  C.Description = "store hazard: a load forwards from the wrong store "
                  "because a newer store's address resolves late";
  C.Prog = parseAsmOrDie(R"(
    .reg ra rc
    .init ra 0x40
    .region D 0x40 8 public
    .data 0x40 1 2 3 4 5 6 7 8
    start:
      store 12, [0x43]
      store 20, [3, ra]
      rc = load [0x43]
  )");
  C.PaperSchedule = {F(), F(), F(), X(3), XA(2)};
  C.CheckOpts = ExplorerOptions{};
  C.ExpectLeak = false; // All data public; the figure shows the machinery.
  return C;
}

FigureCase sct::figure6() {
  FigureCase C;
  C.Name = "Figure 6";
  C.Description = "Spectre v1.1: a speculative out-of-bounds store forwards "
                  "a secret to a benign load, which then leaks it";
  C.Prog = parseAsmOrDie(R"(
    ; ra = 5 is out of bounds for the 4-word secretKey.
    .reg ra rb rc
    .init ra 5
    .region Key 0x40 4 secret
    .region A   0x44 4 public
    .region B   0x48 4 public
    .data 0x40 9 8 7 6
    start:
      rb = load [0x43]          ; rb = x_sec
      br ule ra, 3 -> st, skip  ; bounds check for the store
    st:
      store rb, [0x40, ra]      ; lands on pubArrA[1] = 0x45
    skip:
      rc = load [0x45]          ; normally benign
      rc = load [0x48, rc]      ; leaks the forwarded secret
  )");
  C.PaperSchedule = {F(),   X(1),  R(),  FB(true), F(),  F(),  F(),
                     XV(3), XA(3), X(4), X(5),     X(2)};
  C.CheckOpts = v1v11Mode(); // Found *without* forwarding-hazard forks.
  C.ExpectLeak = true;
  return C;
}

FigureCase sct::figure7() {
  FigureCase C;
  C.Name = "Figure 7";
  C.Description = "Spectre v4: the zeroing store executes too late and the "
                  "load reads (and leaks) the stale secret";
  C.Prog = parseAsmOrDie(R"(
    .reg ra rc
    .init ra 0x40
    .region Key 0x40 4 secret
    .region A   0x44 4 public
    .data 0x40 11 22 33 44
    start:
      store 0, [3, ra]       ; zeroes secretKey[3]
      rc = load [0x43]       ; stale read while the address is unresolved
      rc = load [0x44, rc]   ; leaks the stale secret
  )");
  C.PaperSchedule = {F(), F(), F(), X(2), X(3), XA(1)};
  C.CheckOpts = v4Mode(); // Needs forwarding-hazard exploration.
  C.ExpectLeak = true;
  return C;
}

FigureCase sct::figure8() {
  FigureCase C;
  C.Name = "Figure 8";
  C.Description = "fence mitigation: the fence after the bounds check "
                  "keeps the Figure 1 loads from executing";
  C.Prog = parseAsmOrDie(R"(
    .reg ra rb rc
    .init ra 9
    .region A   0x40 4 public
    .region B   0x44 4 public
    .region Key 0x48 4 secret
    .data 0x48 11 22 33 44
    start:
      br ult ra, 4 -> body, end
    body:
      fence
      rb = load [0x40, ra]
      rc = load [0x44, rb]
    end:
  )");
  // Executing the branch exposes the misprediction; the loads (and the
  // fence) roll back without ever executing.
  C.PaperSchedule = {FB(true), F(), F(), F(), X(1)};
  C.CheckOpts = ExplorerOptions{};
  C.CheckOpts.ExploreAliasPrediction = true;
  C.ExpectLeak = false;
  return C;
}

FigureCase sct::figure11() {
  FigureCase C;
  C.Name = "Figure 11";
  C.Description = "Spectre v2: a mistrained indirect branch sends "
                  "speculation to a gadget; fences do not help";
  C.Prog = parseAsmOrDie(R"(
    .reg ra rb rc rd
    .init ra 1
    .init rb @legit
    .region B   0x44 4 public
    .region Key 0x48 4 secret
    .data 0x48 5 6 7 8
    start:
      rc = load [0x48, ra]   ; rc = Key[1] (public address, secret value)
      fence
      jmpi [rb]              ; legitimate target: legit
    gadget:
      rd = load [0x44, rc]   ; leaks rc
    legit:
      rd = mov 0
  )");
  PC GadgetPC = C.Prog.codeLabels().at("gadget");
  // The figure's schedule: the fence retires before the gadget load
  // executes, so it delays but does not prevent the leak.
  C.PaperSchedule = {F(), F(), X(1), FT(GadgetPC), F(), R(), R(), X(4)};
  C.CheckOpts = ExplorerOptions{};
  C.CheckOpts.IndirectTargets = {GadgetPC};
  C.ExpectLeak = true;
  return C;
}

FigureCase sct::figure12() {
  FigureCase C;
  C.Name = "Figure 12";
  C.Description = "ret2spec: an unmatched ret underflows the RSB and the "
                  "attacker supplies the speculative return target";
  C.Prog = parseAsmOrDie(R"(
    .reg rc rd
    .init rsp 0x20
    .region Stack 0x10 17 public
    .region B     0x44 4  public
    .region Key   0x48 4  secret
    .data 0x48 5 6 7 8
    .data 0x20 @end
    main:
      call f
      ret                    ; RSB is empty here: underflow
    f:
      ret
    gadget:
      rc = load [0x48]
      rd = load [0x44, rc]   ; leaks Key[0]
    end:
      rd = mov 0
  )");
  PC GadgetPC = C.Prog.codeLabels().at("gadget");
  // call f (group 1-3); f's ret predicted via RSB (group 4-7); the final
  // ret underflows: the attacker sends speculation to the gadget.
  C.PaperSchedule = {
      F(),  X(2), XA(3), R(),              // call f
      F(),  X(5), X(6),  X(7), R(),        // ret from f (RSB correct)
      FT(GadgetPC),                        // ret underflow -> gadget
      F(),  F(),                           // fetch the gadget loads
      X(12), X(13),                        // leak
      X(9), X(10), X(11)                   // resolve; jump rolls back
  };
  C.CheckOpts = ExplorerOptions{};
  C.CheckOpts.RsbUnderflowTargets = {GadgetPC};
  C.ExpectLeak = true;
  return C;
}

FigureCase sct::figure13() {
  FigureCase C;
  C.Name = "Figure 13";
  C.Description = "retpoline: the indirect jump of a v2 gadget becomes a "
                  "call/fence-trap/ret sequence; speculation only ever "
                  "reaches the trap";
  Program Original = parseAsmOrDie(R"(
    .reg ra rb rc rd
    .init ra 1
    .init rsp 0x38
    .region Stack 0x32 8 public
    .region T   0x30 1 public
    .data 0x30 @legit            ; the jump table holding the real target
    .region B   0x44 4 public
    .region Key 0x48 4 secret
    .data 0x48 5 6 7 8
    start:
      rc = load [0x48, ra]
      rb = load [0x30]
      jmpi [rb]
    gadget:
      rd = load [0x44, rc]
    legit:
      rd = mov 0
  )");
  MitigationResult RP = Retpoline({0x30}).run(Original);
  assert(RP.ok() && "figure 13's jump table is declared");
  C.Prog = std::move(RP.Prog);
  C.CheckOpts = ExplorerOptions{};
  C.CheckOpts.IndirectTargets = {C.Prog.codeLabels().at("gadget")};
  C.CheckOpts.RsbUnderflowTargets = {C.Prog.codeLabels().at("gadget")};
  C.ExpectLeak = false;
  return C;
}

std::vector<FigureCase> sct::allFigures() {
  return {figure1(), figure2(),  figure4a(), figure4b(), figure5(),
          figure6(), figure7(),  figure8(),  figure11(), figure12(),
          figure13()};
}
