//===- workloads/SuiteRunner.h - Suites through the engine API -*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs whole SuiteCase batches through a CheckSession: every case is
/// expanded into its two §4.2.1 mode requests (v1/v1.1 and v4), the whole
/// batch fans out over the session's worker pool in one checkMany() call,
/// and the verdicts come back folded per case against the suite's
/// expectations.  All suite-driving benches and tests share this path.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_WORKLOADS_SUITERUNNER_H
#define SCT_WORKLOADS_SUITERUNNER_H

#include "checker/SctChecker.h"
#include "workloads/SuiteCase.h"

#include <span>

namespace sct {

/// One case's folded outcome.
struct SuiteVerdict {
  std::string Id;
  /// Sequential constant-time baseline found a leak.
  bool SeqLeak = false;
  /// The two §4.2.1 mode results.
  SctReport V1V11;
  SctReport V4;
  /// All three verdicts match the case's expectations.
  bool Matches = false;

  /// Table-2 style cell for this case ("x", "f" or "-").
  std::string cell() const;
};

/// Runs every case in \p Cases under both checker modes through
/// \p Session (one batched checkMany call) plus the sequential baseline.
/// Results are in case order.
std::vector<SuiteVerdict> runSuite(const CheckSession &Session,
                                   std::span<const SuiteCase> Cases);

/// True iff every verdict in \p Verdicts matches its expectations.
bool allMatch(const std::vector<SuiteVerdict> &Verdicts);

} // namespace sct

#endif // SCT_WORKLOADS_SUITERUNNER_H
