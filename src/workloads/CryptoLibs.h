//===- workloads/CryptoLibs.h - §4.2 crypto case-study models --*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IR models of the paper's four crypto case studies (§4.2.1, Table 2),
/// each in a C-style and a FaCT-style variant.  The models reproduce the
/// exact leak gadgets §4.2.2 describes — and the clean implementations
/// contain none — so the Table 2 detection matrix reproduces:
///
///   case study        |  C   | FaCT
///   ------------------+------+------
///   curve25519-donna  |  —   |  —
///   libsodium         |  ✓   |  —     (stack-protector __libc_message
///     secretbox       |      |         list walk, Figure 9)
///   OpenSSL ssl3      |  ✓   |  f     (C: padding-loop bounds bypass;
///     record validate |      |         FaCT: stale scratch reuse, v4)
///   OpenSSL MEE-CBC   |  ✓   |  f     (C: length-check bypass; FaCT:
///                     |      |         ret-forwarding gadget, Figure 10)
///
///   ✓ = flagged without forwarding-hazard detection (v1/v1.1 mode)
///   f = flagged only with forwarding-hazard detection (v4 mode)
///   — = clean in both modes
///
/// What the paper analysed were x86-64 binaries of the real libraries; the
/// models here are the paper-ISA programs with the same control/data-flow
/// skeletons (see DESIGN.md §2 for the substitution argument).
///
//===----------------------------------------------------------------------===//

#ifndef SCT_WORKLOADS_CRYPTOLIBS_H
#define SCT_WORKLOADS_CRYPTOLIBS_H

#include "workloads/SuiteCase.h"

namespace sct {

/// curve25519-donna: a Montgomery-ladder step over 4-limb field elements
/// with mask-based cswap.  The C variant drives the ladder with a
/// public-counter loop; the FaCT variant is fully unrolled straight-line
/// code.  Both are clean.
SuiteCase donnaC();
SuiteCase donnaFact();

/// libsodium crypto_secretbox: a stream-cipher XOR core plus, in the C
/// variant, the stack-protector epilogue whose error path walks an iovec
/// list off the rails (Figure 9).
SuiteCase secretboxC();
SuiteCase secretboxFact();

/// OpenSSL ssl3 record validation: MAC-and-padding handling.  The C
/// variant guards per-byte record reads with a bounds check the attacker
/// bypasses; the FaCT variant is branchless but re-reads a cleansed
/// scratch cell whose stale content is secret (v4).
SuiteCase ssl3C();
SuiteCase ssl3Fact();

/// OpenSSL MAC-then-encrypt CBC.  The C variant has a length-check bypass;
/// the FaCT variant contains the Figure 10 gadget: a delayed return-
/// address store lets `ret` return to the previous call site, re-executing
/// the record access with a secret-derived length register.
SuiteCase meeC();
SuiteCase meeFact();

/// All eight, in Table 2 order (C/FaCT interleaved per case study).
std::vector<SuiteCase> cryptoCases();

} // namespace sct

#endif // SCT_WORKLOADS_CRYPTOLIBS_H
