//===- workloads/ChaCha.cpp - ARX cipher kernel workload --------------------===//

#include "workloads/ChaCha.h"

#include "isa/AsmParser.h"
#include "isa/ProgramBuilder.h"

using namespace sct;

namespace {

constexpr uint64_t StateBase = 0x300; // 16-word working state.
constexpr uint64_t InitBase = 0x320;  // Initial state copy (for feed-forward).
constexpr uint64_t OutBase = 0x340;   // Keystream block.
constexpr uint64_t Mask32 = 0xFFFFFFFF;

/// Emits a 32-bit left-rotation of \p X by \p Amount into \p X, using
/// \p Tmp as scratch (ARX kernels are exactly add/rotate/xor).
void emitRotl32(ProgramBuilder &B, Reg X, Reg Tmp, unsigned Amount) {
  auto Imm = ProgramBuilder::imm;
  auto R = ProgramBuilder::r;
  B.op(Tmp, Opcode::Shr, {R(X), Imm(32 - Amount)});
  B.op(X, Opcode::Shl, {R(X), Imm(Amount)});
  B.op(X, Opcode::Or, {R(X), R(Tmp)});
  B.op(X, Opcode::And, {R(X), Imm(Mask32)});
}

/// One ChaCha quarter-round over state words a, b, c, d (in registers).
void emitQuarterRound(ProgramBuilder &B, Reg A, Reg Bq, Reg C, Reg D,
                      Reg Tmp) {
  auto Imm = ProgramBuilder::imm;
  auto R = ProgramBuilder::r;
  auto AddMasked = [&](Reg Dst, Reg Src) {
    B.op(Dst, Opcode::Add, {R(Dst), R(Src)});
    B.op(Dst, Opcode::And, {R(Dst), Imm(Mask32)});
  };
  AddMasked(A, Bq);
  B.op(D, Opcode::Xor, {R(D), R(A)});
  emitRotl32(B, D, Tmp, 16);
  AddMasked(C, D);
  B.op(Bq, Opcode::Xor, {R(Bq), R(C)});
  emitRotl32(B, Bq, Tmp, 12);
  AddMasked(A, Bq);
  B.op(D, Opcode::Xor, {R(D), R(A)});
  emitRotl32(B, D, Tmp, 8);
  AddMasked(C, D);
  B.op(Bq, Opcode::Xor, {R(Bq), R(C)});
  emitRotl32(B, Bq, Tmp, 7);
}

/// Loads state words i0..i3 into the four registers, runs a quarter
/// round, stores them back.
void emitQuarterRoundOnWords(ProgramBuilder &B, Reg A, Reg Bq, Reg C, Reg D,
                             Reg Tmp, unsigned I0, unsigned I1, unsigned I2,
                             unsigned I3) {
  auto Imm = ProgramBuilder::imm;
  auto R = ProgramBuilder::r;
  B.load(A, {Imm(StateBase + I0)});
  B.load(Bq, {Imm(StateBase + I1)});
  B.load(C, {Imm(StateBase + I2)});
  B.load(D, {Imm(StateBase + I3)});
  emitQuarterRound(B, A, Bq, C, D, Tmp);
  B.store(R(A), {Imm(StateBase + I0)});
  B.store(R(Bq), {Imm(StateBase + I1)});
  B.store(R(C), {Imm(StateBase + I2)});
  B.store(R(D), {Imm(StateBase + I3)});
}

Program buildChaCha(unsigned DoubleRounds) {
  ProgramBuilder B;
  Reg A = B.reg("a"), Bq = B.reg("b"), C = B.reg("c"), D = B.reg("d"),
      Tmp = B.reg("tmp"), T2 = B.reg("t2");

  // State layout: words 0-3 constants (public), 4-11 key (secret),
  // 12 counter + 13-15 nonce (public).  The copy at InitBase feeds the
  // final addition.
  B.region("st_const", StateBase, 4, Label::publicLabel());
  B.data(StateBase, {0x61707865, 0x3320646e, 0x79622d32, 0x6b206574});
  B.region("st_key", StateBase + 4, 8, Label::secret());
  B.data(StateBase + 4, {0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88});
  B.region("st_ctr", StateBase + 12, 4, Label::publicLabel());
  B.data(StateBase + 12, {1, 0x9A, 0x9B, 0x9C});
  B.region("st_init", InitBase, 16, Label::publicLabel());
  B.region("out", OutBase, 16, Label::publicLabel());

  auto Imm = ProgramBuilder::imm;
  auto R = ProgramBuilder::r;

  // Copy the initial state for the feed-forward.
  for (unsigned W = 0; W < 16; ++W) {
    B.load(A, {Imm(StateBase + W)});
    B.store(R(A), {Imm(InitBase + W)});
  }

  for (unsigned Round = 0; Round < DoubleRounds; ++Round) {
    // Column rounds.
    emitQuarterRoundOnWords(B, A, Bq, C, D, Tmp, 0, 4, 8, 12);
    emitQuarterRoundOnWords(B, A, Bq, C, D, Tmp, 1, 5, 9, 13);
    emitQuarterRoundOnWords(B, A, Bq, C, D, Tmp, 2, 6, 10, 14);
    emitQuarterRoundOnWords(B, A, Bq, C, D, Tmp, 3, 7, 11, 15);
    // Diagonal rounds.
    emitQuarterRoundOnWords(B, A, Bq, C, D, Tmp, 0, 5, 10, 15);
    emitQuarterRoundOnWords(B, A, Bq, C, D, Tmp, 1, 6, 11, 12);
    emitQuarterRoundOnWords(B, A, Bq, C, D, Tmp, 2, 7, 8, 13);
    emitQuarterRoundOnWords(B, A, Bq, C, D, Tmp, 3, 4, 9, 14);
  }

  // Feed-forward and keystream output.
  for (unsigned W = 0; W < 16; ++W) {
    B.load(A, {Imm(StateBase + W)});
    B.load(T2, {Imm(InitBase + W)});
    B.op(A, Opcode::Add, {R(A), R(T2)});
    B.op(A, Opcode::And, {R(A), Imm(Mask32)});
    B.store(R(A), {Imm(OutBase + W)});
  }
  return B.build();
}

} // namespace

SuiteCase sct::chachaKernel(unsigned DoubleRounds) {
  SuiteCase C;
  C.Id = "chacha-kernel";
  C.Description = "ChaCha-style ARX block function (" +
                  std::to_string(DoubleRounds) +
                  " double-rounds): pure add/rotate/xor, no branches";
  C.Prog = buildChaCha(DoubleRounds);
  return C; // Clean everywhere by construction.
}

SuiteCase sct::chachaWithLeakyWrapper() {
  SuiteCase C;
  C.Id = "chacha-leaky-wrapper";
  C.Description = "the same clean primitive behind a C-style caller whose "
                  "length dispatch can be speculatively bypassed into the "
                  "key schedule";
  // The wrapper alone carries the gadget; the kernel's cleanliness is
  // established by chachaKernel() and the checker localises the leak to
  // the wrapper (like the secretbox finding, §4.2.2).
  C.Prog = parseAsmOrDie(R"(
    .reg len i b z acc
    .region blk  0x340 8 public    ; keystream block prefix
    .data 0x340 1 2 3 4 5 6 7 8
    .region ksch 0x348 8 secret    ; key schedule sits right after
    .data 0x348 41 42 43 44 45 46 47 48
    .region tab  0x380 64 public
    .region meta 0xA0 1 public
    .data 0xA0 8
    wrapper:
      len = load [0xA0]
      acc = mov 0
      i = mov 0
    copy:
      br ult i, 12 -> chk, out     ; fixed scan over a max-size block
    chk:
      br ult i, len -> rd, next    ; the bypassable per-word bound
    rd:
      b = load [0x340, i]
      b = and b, 63
      z = load [0x380, b]
      acc = xor acc, z
    next:
      i = add i, 1
      jmp copy
    out:
  )");
  C.ExpectSeqLeak = false;
  C.ExpectV1V11Leak = true;
  C.ExpectV4Leak = true;
  return C;
}
