//===- workloads/SuiteRunner.cpp - Suites through the engine API ------------===//

#include "workloads/SuiteRunner.h"

#include "checker/SequentialCt.h"

using namespace sct;

std::string SuiteVerdict::cell() const {
  if (!V1V11.secure())
    return "x";
  if (!V4.secure())
    return "f";
  return "-";
}

std::vector<SuiteVerdict> sct::runSuite(const CheckSession &Session,
                                        std::span<const SuiteCase> Cases) {
  // Two requests per case, whole suite in one batch.
  std::vector<CheckRequest> Reqs;
  Reqs.reserve(Cases.size() * 2);
  for (const SuiteCase &C : Cases) {
    CheckRequest NoFwd;
    NoFwd.Id = C.Id + "/v1v11";
    NoFwd.Prog = C.Prog;
    NoFwd.Opts = v1v11Mode();
    Reqs.push_back(std::move(NoFwd));
    CheckRequest Fwd;
    Fwd.Id = C.Id + "/v4";
    Fwd.Prog = C.Prog;
    Fwd.Opts = v4Mode();
    Reqs.push_back(std::move(Fwd));
  }
  std::vector<CheckResult> Results =
      Session.checkMany(std::span<const CheckRequest>(Reqs));

  std::vector<SuiteVerdict> Verdicts;
  Verdicts.reserve(Cases.size());
  for (size_t I = 0; I < Cases.size(); ++I) {
    const SuiteCase &C = Cases[I];
    SuiteVerdict V;
    V.Id = C.Id;
    V.SeqLeak = !checkSequentialCt(C.Prog).secure();
    V.V1V11 = toReport(std::move(Results[2 * I]));
    V.V4 = toReport(std::move(Results[2 * I + 1]));
    V.Matches = V.SeqLeak == C.ExpectSeqLeak &&
                !V.V1V11.secure() == C.ExpectV1V11Leak &&
                !V.V4.secure() == C.ExpectV4Leak;
    Verdicts.push_back(std::move(V));
  }
  return Verdicts;
}

bool sct::allMatch(const std::vector<SuiteVerdict> &Verdicts) {
  for (const SuiteVerdict &V : Verdicts)
    if (!V.Matches)
      return false;
  return true;
}
