//===- workloads/CryptoLibs.cpp - §4.2 crypto case-study models -------------===//

#include "workloads/CryptoLibs.h"

#include "isa/AsmParser.h"
#include "isa/ProgramBuilder.h"

using namespace sct;

//===----------------------------------------------------------------------===//
// curve25519-donna
//===----------------------------------------------------------------------===//

namespace {

/// Builds the donna model: a Montgomery-ladder fragment over 4-limb field
/// elements.  The scalar is secret; limb values become secret through the
/// mask-based cswap, but every address and branch stays public — the
/// defining property of the real library (§4.2.2: "a straightforward
/// implementation of crypto primitives").
Program buildDonna(bool Unrolled) {
  ProgramBuilder B;
  Reg Bit = B.reg("bit"), Mask = B.reg("mask"), A = B.reg("a"),
      Cl = B.reg("cl"), Td = B.reg("td"), T1 = B.reg("t1"),
      T2 = B.reg("t2"), Acc = B.reg("acc"), I = B.reg("i"),
      X2b = B.reg("x2b"), X3b = B.reg("x3b"), Z2b = B.reg("z2b"),
      Z3b = B.reg("z3b"), Tb = B.reg("tb");

  const uint64_t Scalar = 0x200, X2 = 0x210, Z2 = 0x220, X3 = 0x230,
                 Z3 = 0x240, X1 = 0x250, Tmp = 0x260;
  B.region("scalar", Scalar, 4, Label::secret());
  B.data(Scalar, {1, 0, 1, 1});
  B.region("x2", X2, 4, Label::publicLabel());
  B.data(X2, {1, 0, 0, 0});
  B.region("z2", Z2, 4, Label::publicLabel());
  B.region("x3", X3, 4, Label::publicLabel());
  B.data(X3, {9, 1, 2, 3});
  B.region("z3", Z3, 4, Label::publicLabel());
  B.data(Z3, {1, 0, 0, 0});
  B.region("x1", X1, 4, Label::publicLabel());
  B.data(X1, {9, 1, 2, 3});
  B.region("tmp", Tmp, 4, Label::publicLabel());

  auto Imm = ProgramBuilder::imm;
  auto R = ProgramBuilder::r;

  // Limb base pointers live in registers so stores use register-relative
  // addresses (late-resolving in the v4 checker mode, like compiled code).
  B.movi(X2b, X2).movi(X3b, X3).movi(Z2b, Z2).movi(Z3b, Z3).movi(Tb, Tmp);

  auto EmitRound = [&](Operand BitIndex) {
    // mask = 0 - (scalar[bit] & 1): all-ones or all-zeros, secret.
    B.load(Bit, {Imm(Scalar), BitIndex});
    B.op(Bit, Opcode::And, {R(Bit), Imm(1)});
    B.op(Mask, Opcode::Neg, {R(Bit)});
    // Constant-time conditional swap of (x2, x3) and (z2, z3).
    const std::pair<std::pair<uint64_t, Reg>, std::pair<uint64_t, Reg>>
        Pairs[] = {{{X2, X2b}, {X3, X3b}}, {{Z2, Z2b}, {Z3, Z3b}}};
    for (const auto &[P1, P2] : Pairs)
      for (uint64_t J = 0; J < 4; ++J) {
        B.load(A, {Imm(P1.first + J)});
        B.load(Cl, {Imm(P2.first + J)});
        B.op(Td, Opcode::Xor, {R(A), R(Cl)});
        B.op(Td, Opcode::And, {R(Td), R(Mask)});
        B.op(T1, Opcode::Xor, {R(A), R(Td)});
        B.store(R(T1), {R(P1.second), Imm(J)});
        B.op(T2, Opcode::Xor, {R(Cl), R(Td)});
        B.store(R(T2), {R(P2.second), Imm(J)});
      }
    // tmp = x2 + z2 (carry-free model of fe_add).
    for (uint64_t J = 0; J < 4; ++J) {
      B.load(A, {Imm(X2 + J)});
      B.load(Cl, {Imm(Z2 + J)});
      B.op(T1, Opcode::Add, {R(A), R(Cl)});
      B.store(R(T1), {R(Tb), Imm(J)});
    }
    // z2 = tmp ⊛ x1 (schoolbook cross terms, carry-free).
    B.load(T1, {Imm(Tmp)});
    B.load(T2, {Imm(X1)});
    for (uint64_t J = 0; J < 4; ++J) {
      B.load(A, {Imm(Tmp + J)});
      B.load(Cl, {Imm(X1 + J)});
      B.op(A, Opcode::Mul, {R(A), R(T2)});
      B.op(Cl, Opcode::Mul, {R(Cl), R(T1)});
      B.op(Acc, Opcode::Add, {R(A), R(Cl)});
      B.op(Acc, Opcode::And, {R(Acc), Imm(0xFFFF)});
      B.store(R(Acc), {R(Z2b), Imm(J)});
    }
    // x2 = tmp - z2.
    for (uint64_t J = 0; J < 4; ++J) {
      B.load(A, {Imm(Tmp + J)});
      B.load(Cl, {Imm(Z2 + J)});
      B.op(T1, Opcode::Sub, {R(A), R(Cl)});
      B.store(R(T1), {R(X2b), Imm(J)});
    }
  };

  if (Unrolled) {
    // FaCT style: fully unrolled, no control flow at all.
    EmitRound(Imm(0));
    EmitRound(Imm(1));
  } else {
    // C style: public-counter ladder loop.
    B.movi(I, 0);
    B.label("ladder");
    EmitRound(R(I));
    B.op(I, Opcode::Add, {R(I), Imm(1)});
    B.br(Opcode::Ult, {R(I), Imm(2)}, "ladder", "done");
    B.label("done");
    B.movi(Acc, 0);
  }
  return B.build();
}

} // namespace

SuiteCase sct::donnaC() {
  SuiteCase C;
  C.Id = "donna-c";
  C.Description = "curve25519-donna, C build: looped Montgomery ladder "
                  "with cswap masks";
  C.Prog = buildDonna(/*Unrolled=*/false);
  return C; // Clean everywhere.
}

SuiteCase sct::donnaFact() {
  SuiteCase C;
  C.Id = "donna-fact";
  C.Description = "curve25519-donna, FaCT build: unrolled straight-line "
                  "ladder";
  C.Prog = buildDonna(/*Unrolled=*/true);
  return C; // Clean everywhere.
}

//===----------------------------------------------------------------------===//
// libsodium crypto_secretbox
//===----------------------------------------------------------------------===//

namespace {

/// The stream-cipher core both secretbox variants share: out[i] = msg[i]
/// xor keystream[i], public addresses throughout.
constexpr const char *SecretboxKernel = R"(
  .reg m k o cn node val t i
  .region msg  0x100 4 secret
  .data 0x100 10 20 30 40
  .region key  0x110 4 secret
  .data 0x110 77 66 55 44
  .region out  0x120 4 public
  .region misc 0x130 9 public
  .data 0x130 0x1234      ; stack canary
  .data 0x134 0xE0        ; __libc_message iovec list head
  .region nodes 0xE0 4 public
  .data 0xE0 0xF0 0xE2    ; node0 = {str, next}
  .data 0xE2 0xF1 0x110   ; node1 = {str, next -> runs into the key!}
  .region strs 0xF0 2 public
  start:
    m = load [0x100]
    k = load [0x110]
    o = xor m, k
    store o, [0x120]
    m = load [0x101]
    k = load [0x111]
    o = xor m, k
    store o, [0x121]
    m = load [0x102]
    k = load [0x112]
    o = xor m, k
    store o, [0x122]
    m = load [0x103]
    k = load [0x113]
    o = xor m, k
    store o, [0x123]
)";

} // namespace

SuiteCase sct::secretboxC() {
  SuiteCase C;
  C.Id = "secretbox-c";
  C.Description = "libsodium secretbox, C build: XOR core plus the "
                  "stack-protector epilogue whose __libc_message error "
                  "path walks the iovec list into the key (Figure 9)";
  C.Prog = parseAsmOrDie(std::string(SecretboxKernel) + R"(
    ; Stack-protector epilogue: canary intact -> done.
    cn = load [0x130]
    br eq cn, 0x1234 -> done, smash
  smash:
    ; __libc_message(): for (cnt...) { iov[cnt].iov_base = list->str;
    ;                                  list = list->next; }
    node = load [0x134]      ; list head
    val  = load [node]       ; node0->str
    store val, [0x138]
    node = load [node, 1]    ; node0->next
    val  = load [node]       ; node1->str
    store val, [0x139]
    node = load [node, 1]    ; node1->next — now points into the key
    val  = load [node]       ; "str" = key word (secret value)
    store val, [0x138]
    node = load [node, 1]    ; next = key word: the pointer IS a secret
    val  = load [node]       ; secret-dependent dereference: the leak
  done:
    t = mov 0
  )");
  C.ExpectSeqLeak = false;
  C.ExpectV1V11Leak = true;
  C.ExpectV4Leak = true;
  return C;
}

SuiteCase sct::secretboxFact() {
  SuiteCase C;
  C.Id = "secretbox-fact";
  C.Description = "libsodium secretbox, FaCT build: the XOR core alone "
                  "(no stack-protector machinery)";
  C.Prog = parseAsmOrDie(std::string(SecretboxKernel) + R"(
    t = mov 0
  )");
  return C; // Clean everywhere.
}

//===----------------------------------------------------------------------===//
// OpenSSL ssl3 record validation
//===----------------------------------------------------------------------===//

SuiteCase sct::ssl3C() {
  SuiteCase C;
  C.Id = "ssl3-c";
  C.Description = "OpenSSL ssl3 record validate, C build: the per-byte "
                  "bounds check in the padding scan is bypassed and the "
                  "MAC key is read out of bounds";
  C.Prog = parseAsmOrDie(R"(
    .reg len acc i b z
    .region rec    0x100 4 public
    .data 0x100 3 1 2 0
    .region mackey 0x104 4 secret
    .data 0x104 61 62 63 64
    .region tab    0x140 64 public
    .region meta   0xA0 1 public
    .data 0xA0 4             ; record length
    start:
      len = load [0xA0]
      acc = mov 0
      i = mov 0
    scan:
      br ult i, 6 -> body, out    ; fixed maxpad-style scan bound
    body:
      br ult i, len -> rd, next   ; per-byte guard (the bypassed check)
    rd:
      b = load [0x100, i]
      b = and b, 63
      z = load [0x140, b]         ; rotated-MAC table access
      acc = xor acc, z
    next:
      i = add i, 1
      jmp scan
    out:
  )");
  C.ExpectSeqLeak = false;
  C.ExpectV1V11Leak = true;
  C.ExpectV4Leak = true;
  return C;
}

SuiteCase sct::ssl3Fact() {
  SuiteCase C;
  C.Id = "ssl3-fact";
  C.Description = "OpenSSL ssl3 record validate, FaCT build: branchless "
                  "masked scan, but a cleansed scratch cell is re-read "
                  "before the zeroing store resolves (stale secret, v4)";
  C.Prog = parseAsmOrDie(R"(
    .reg len acc i b z c idx sb
    .region rec     0x100 4 public
    .data 0x100 3 1 2 0
    .region mackey  0x104 4 secret
    .data 0x104 61 62 63 64
    .region tab     0x140 64 public
    .region scratch 0x190 1 secret  ; stale MAC byte of the last record
    .region meta    0xA0 1 public
    .data 0xA0 4
    start:
      len = load [0xA0]
      acc = mov 0
      ; FaCT-style masked scan: idx = i < len ? i : 0 — never OOB, no
      ; branches.
      i = mov 0
      c = ult i, len
      idx = select c, i, 0
      b = load [0x100, idx]
      b = and b, 63
      z = load [0x140, b]
      acc = xor acc, z
      i = mov 1
      c = ult i, len
      idx = select c, i, 0
      b = load [0x100, idx]
      b = and b, 63
      z = load [0x140, b]
      acc = xor acc, z
      ; Scratch-cell reuse: cleanse, then read back for the rotation
      ; offset of the next block.
      sb = mov 0x190
      store 0, [sb]            ; the cleansing store (address via register)
      b = load [0x190]         ; may execute before the store resolves
      b = and b, 63
      z = load [0x140, b]      ; stale secret reaches the address
      acc = xor acc, z
  )");
  C.ExpectSeqLeak = false;
  C.ExpectV1V11Leak = false;
  C.ExpectV4Leak = true; // Table 2's `f`.
  return C;
}

//===----------------------------------------------------------------------===//
// OpenSSL MAC-then-encrypt CBC
//===----------------------------------------------------------------------===//

SuiteCase sct::meeC() {
  SuiteCase C;
  C.Id = "mee-c";
  C.Description = "OpenSSL MEE-CBC, C build: the record-length check on "
                  "the MAC copy loop is bypassed and key material is read "
                  "out of bounds";
  C.Prog = parseAsmOrDie(R"(
    .reg len i b z acc
    .region rec    0x100 4 public
    .data 0x100 7 5 3 1
    .region macsec 0x104 4 secret
    .data 0x104 51 52 53 54
    .region tab    0x140 64 public
    .region meta   0xA0 1 public
    .data 0xA0 4
    start:
      len = load [0xA0]
      acc = mov 0
      i = mov 5
    scan:                         ; downward maxpad-style scan
      br ult i, len -> rd, next   ; bypassable per-byte bound
    rd:
      b = load [0x100, i]
      b = and b, 63
      z = load [0x140, b]
      acc = xor acc, z
    next:
      br ugt i, 0 -> dec, out
    dec:
      i = sub i, 1
      jmp scan
    out:
  )");
  C.ExpectSeqLeak = false;
  C.ExpectV1V11Leak = true;
  C.ExpectV4Leak = true;
  return C;
}

SuiteCase sct::meeFact() {
  SuiteCase C;
  C.Id = "mee-fact";
  C.Description = "OpenSSL MEE-CBC, FaCT build: the Figure 10 gadget — a "
                  "delayed return-address store lets sha1_update's ret "
                  "land after the *previous* call, re-executing the "
                  "record access with the secret-derived pad flag in r14";
  C.Prog = parseAsmOrDie(R"(
    .reg r14 pad maxpad cmp acc tmp
    .init rsp 0x3A
    .region stack  0x34 7 public
    .region hidden 0x58 8 secret   ; _out[-1] neighbourhood
    .region out    0x60 8 secret   ; decrypted record
    .data 0x60 1 2 3 4 5 6 7 8
    .region tabs   0x80 16 public
    main:
      r14 = mov 8                  ; len _out (public)
      call aes                     ; aesni_cbc_encrypt(...)
    L1:
      pad = load [0x5F, r14]       ; pad = _out[len-1] (secret value)
      maxpad = mov 3
      cmp = ugt pad, maxpad        ; secret comparison ...
      r14 = select cmp, 0, 1       ; ... handled in constant time (FaCT)
      call sha                     ; _sha1_update(...)
    L2:
      acc = mov 0
      jmp done
    aes:
      tmp = mov 1
      ret
    sha:
      tmp = mov 2
      ret
    done:
  )");
  C.ExpectSeqLeak = false;
  C.ExpectV1V11Leak = false;
  C.ExpectV4Leak = true; // Table 2's `f`.
  return C;
}

std::vector<SuiteCase> sct::cryptoCases() {
  return {donnaC(), donnaFact(),   secretboxC(), secretboxFact(),
          ssl3C(),  ssl3Fact(),    meeC(),       meeFact()};
}
