//===- workloads/SpectreSuites.cpp - v1.1 and v4 suites ---------------------===//

#include "workloads/SpectreSuites.h"

#include "isa/AsmParser.h"

using namespace sct;

namespace {

/// Shared memory map: a 4-word secret buffer with public arrays around it
/// and a small stack for the call-based variants.
constexpr const char *Prelude = R"(
  .reg x y z t i c idx
  .init x 9
  .region key  0x40 4  secret
  .data 0x40 9 8 7 6
  .region bufA 0x44 4  public
  .data 0x44 0 0 0 0
  .region bufB 0x48 16 public
  .region tab  0x60 64 public
  .region meta 0xA0 2  public
  .data 0xA0 4 2
  .init rsp 0x38
  .region stack 0x30 9 public
)";

SuiteCase v11Case(std::string Id, std::string Description,
                  const std::string &Body) {
  SuiteCase C;
  C.Id = std::move(Id);
  C.Description = std::move(Description);
  C.Prog = parseAsmOrDie(std::string(Prelude) + Body);
  C.ExpectSeqLeak = false;
  C.ExpectV1V11Leak = true; // Store-forwarding itself needs no hazard forks.
  C.ExpectV4Leak = true;
  return C;
}

SuiteCase v4Case(std::string Id, std::string Description,
                 const std::string &Body) {
  SuiteCase C;
  C.Id = std::move(Id);
  C.Description = std::move(Description);
  C.Prog = parseAsmOrDie(std::string(Prelude) + Body);
  C.ExpectSeqLeak = false;
  C.ExpectV1V11Leak = false; // Invisible without forwarding hazards.
  C.ExpectV4Leak = true;
  return C;
}

} // namespace

std::vector<SuiteCase> sct::spectreV11Cases() {
  std::vector<SuiteCase> Cases;

  Cases.push_back(v11Case("v1.1-01",
                          "out-of-bounds store forwards a secret to a "
                          "benign load (Figure 6 shape)",
                          R"(
    start:
      y = load [0x43]          ; y = secret
      c = load [0xA0]
      br ule x, 3 -> st, skip  ; bounds check for key[x] write
    st:
      store y, [0x40, x]       ; x = 9: lands on bufB
    skip:
      t = load [0x49]          ; normally public
      t = load [0x60, t]       ; leaks the forwarded secret
  )"));

  Cases.push_back(v11Case("v1.1-02",
                          "forwarded secret overwrites an index cell",
                          R"(
    start:
      y = load [0x42]
      br ule x, 3 -> st, skip
    st:
      store y, [0x40, x]       ; overwrites bufB[1] = the index cell
    skip:
      idx = load [0x49]
      t = load [0x60, idx]
  )"));

  Cases.push_back(v11Case("v1.1-03",
                          "forward skips one intervening unrelated store",
                          R"(
    start:
      y = load [0x41]
      br ule x, 3 -> st, skip
    st:
      store y, [0x40, x]
      store 5, [0x44]          ; unrelated, different address
    skip:
      t = load [0x49]
      t = load [0x60, t]
  )"));

  Cases.push_back(v11Case("v1.1-04",
                          "one speculative store forwards to two loads",
                          R"(
    start:
      y = load [0x40]
      br ule x, 3 -> st, skip
    st:
      store y, [0x40, x]
    skip:
      z = load [0x49]
      t = load [0x49]
      t = load [0x60, t]
  )"));

  Cases.push_back(v11Case("v1.1-05",
                          "forwarded secret becomes a branch condition",
                          R"(
    start:
      y = load [0x43]
      br ule x, 3 -> st, skip
    st:
      store y, [0x40, x]
    skip:
      z = load [0x49]
      br eq z, 0 -> a, b
    a:
      t = mov 1
    b:
  )"));

  Cases.push_back(v11Case("v1.1-06",
                          "aliasing through distinct address expressions",
                          R"(
    start:
      y = load [0x42]
      br ule x, 3 -> st, skip
    st:
      store y, [0x40, x]       ; 0x40 + 9
    skip:
      i = mov 5
      t = load [0x44, i]       ; 0x44 + 5 — the same cell
      t = load [0x60, t]
  )"));

  Cases.push_back(v11Case("v1.1-07",
                          "speculative store poisons the return-address "
                          "slot; the return target leaks the secret",
                          R"(
    start:
      y = load [0x43]
      call f
    after:
      t = mov 0
      jmp done
    f:
      z = add x, 30            ; z = 39: 0x10 + 39 = 0x37, the slot
                               ; holding the saved return address
      c = ugt z, 40            ; architectural guard (false: 39 <= 40)
      br eq c, 1 -> wr, fret
    wr:
      store y, [0x10, z]       ; poisons the return-address slot
    fret:
      ret
    done:
  )"));

  Cases.push_back(v11Case("v1.1-08",
                          "double-indexed forward through two cells",
                          R"(
    start:
      y = load [0x40]
      z = load [0x41]
      br ule x, 3 -> st, skip
    st:
      store y, [0x40, x]
      store z, [0x41, x]
    skip:
      t = load [0x49]
      i = load [0x4A]
      t = add t, i
      t = load [0x60, t]
  )"));

  return Cases;
}

std::vector<SuiteCase> sct::spectreV4Cases() {
  std::vector<SuiteCase> Cases;

  Cases.push_back(v4Case("v4-01",
                         "late zeroing store; stale secret leaks "
                         "(Figure 7 shape)",
                         R"(
    start:
      i = mov 0x40
      store 0, [3, i]          ; zeroes key[3]
      t = load [0x43]          ; stale while the address is unresolved
      t = load [0x60, t]
  )"));

  Cases.push_back(v4Case("v4-02",
                         "stale read separated by unrelated arithmetic",
                         R"(
    start:
      i = mov 0x40
      store 0, [3, i]
      z = mov 7
      z = add z, 1
      t = load [0x43]
      t = load [0x60, t]
  )"));

  Cases.push_back(v4Case("v4-03",
                         "two late stores to the same cell; the load sees "
                         "the original secret",
                         R"(
    start:
      i = mov 0x40
      store 0, [3, i]
      store 1, [3, i]
      t = load [0x43]
      t = load [0x60, t]
  )"));

  Cases.push_back(v4Case("v4-04",
                         "interleaved cleansing of two cells; one load "
                         "slips ahead",
                         R"(
    start:
      i = mov 0x40
      store 0, [2, i]
      store 0, [3, i]
      z = load [0x42]
      t = load [0x43]
      t = add t, z
      t = load [0x60, t]
  )"));

  Cases.push_back(v4Case("v4-05",
                         "stale secret becomes a branch condition",
                         R"(
    start:
      i = mov 0x40
      store 0, [3, i]
      z = load [0x43]
      br eq z, 0 -> a, b
    a:
      t = mov 1
    b:
  )"));

  Cases.push_back(v4Case("v4-06",
                         "callee cleanses a slot; the caller's load "
                         "overtakes the store",
                         R"(
    start:
      call wipe
      t = load [0x43]
      t = load [0x60, t]
      jmp done
    wipe:
      i = mov 0x40
      store 0, [3, i]
      ret
    done:
  )"));

  return Cases;
}
