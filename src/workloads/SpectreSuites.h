//===- workloads/SpectreSuites.h - v1.1 and v4 suites ----------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's own additional suites (§4.2): Spectre v1.1 data attacks
/// (speculative out-of-bounds stores whose values forward to younger
/// loads) and Spectre v4 attacks (loads executing before an older store's
/// address resolves, reading stale secrets).  Every case is sequentially
/// constant-time; the v1.1 cases are flagged without forwarding-hazard
/// detection, the v4 cases only with it.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_WORKLOADS_SPECTRESUITES_H
#define SCT_WORKLOADS_SPECTRESUITES_H

#include "workloads/SuiteCase.h"

namespace sct {

/// Spectre v1.1 store-forwarding cases, "v1.1-01" .. "v1.1-08".
std::vector<SuiteCase> spectreV11Cases();

/// Spectre v4 stale-load cases, "v4-01" .. "v4-06".
std::vector<SuiteCase> spectreV4Cases();

} // namespace sct

#endif // SCT_WORKLOADS_SPECTRESUITES_H
