//===- workloads/Figures.h - The paper's figure programs -------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable reconstructions of every worked figure in the paper, each
/// bundling the program, the figure's attacker-directive walkthrough, the
/// checker options that expose it, and the expected verdicts:
///
///   Figure 1  — Spectre v1 bounds-check bypass
///   Figure 2  — hypothetical aliasing-predictor attack (§3.5)
///   Figure 4  — correct vs incorrect branch prediction
///   Figure 5  — store hazard from late store-address resolution
///   Figure 6  — Spectre v1.1 store-to-load forward
///   Figure 7  — Spectre v4 stale load
///   Figure 8  — fence mitigation of Figure 1
///   Figure 11 — Spectre v2 mistrained indirect branch (fences useless)
///   Figure 12 — ret2spec RSB underflow
///   Figure 13 — retpoline defeating Figure 11's attack
///
//===----------------------------------------------------------------------===//

#ifndef SCT_WORKLOADS_FIGURES_H
#define SCT_WORKLOADS_FIGURES_H

#include "sched/ScheduleExplorer.h"

#include <string>

namespace sct {

/// One figure: program + paper walkthrough + expected verdicts.
struct FigureCase {
  std::string Name;
  std::string Description;
  Program Prog;
  /// The figure's directive column, adapted to this program's buffer
  /// indices (empty when the figure demonstrates machinery, not leakage).
  Schedule PaperSchedule;
  /// Checker options under which the expectation below holds.
  ExplorerOptions CheckOpts;
  /// Expected SCT verdict under CheckOpts.
  bool ExpectLeak = false;
  /// Expected verdict of the classical sequential-CT baseline (every
  /// figure program is sequentially constant-time — that is the point).
  bool ExpectSequentialLeak = false;
};

FigureCase figure1();
FigureCase figure2();
FigureCase figure4a();
FigureCase figure4b();
FigureCase figure5();
FigureCase figure6();
FigureCase figure7();
FigureCase figure8();
FigureCase figure11();
FigureCase figure12();
FigureCase figure13();

/// All figures, in paper order.
std::vector<FigureCase> allFigures();

} // namespace sct

#endif // SCT_WORKLOADS_FIGURES_H
