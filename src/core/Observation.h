//===- core/Observation.h - Leakage observations ---------------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observations: the externally visible effects the semantics exposes
/// instead of modelling caches or predictors (§3.1).  Reads, forwards,
/// writes, and control flow each leak a labelled payload; rollbacks are
/// observable through instruction timing and therefore annotate the
/// observation they accompany.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CORE_OBSERVATION_H
#define SCT_CORE_OBSERVATION_H

#include "core/Value.h"
#include "isa/Instruction.h"

#include <string>

namespace sct {

/// One leakage observation.
struct Observation {
  enum class Kind : unsigned char {
    None,  ///< Silent step (ε).
    Read,  ///< read a_ℓ — memory load at address a.
    Fwd,   ///< fwd a_ℓ — store-to-load forward at address a.
    Write, ///< write a_ℓ — memory commit at address a.
    Jump,  ///< jump n_ℓ — resolved control flow to n.
  };

  Kind K = Kind::None;
  /// True when the step rolled back misspeculated work ("rollback, o").
  bool Rollback = false;
  /// The leaked address or jump target, with the label the semantics
  /// derived for it.
  Value Payload;

  static Observation none() { return {}; }
  static Observation read(Value Addr, bool Rollback = false) {
    return {Kind::Read, Rollback, Addr};
  }
  static Observation fwd(Value Addr, bool Rollback = false) {
    return {Kind::Fwd, Rollback, Addr};
  }
  static Observation write(Value Addr) { return {Kind::Write, false, Addr}; }
  static Observation jump(Value Target, bool Rollback = false) {
    return {Kind::Jump, Rollback, Target};
  }

  bool isNone() const { return K == Kind::None && !Rollback; }

  /// True iff the observation leaks data carrying a secret label — the
  /// violation condition the checker looks for (a secret-dependent
  /// observation cannot be trace-equal across low-equivalent runs).
  bool isSecret() const { return K != Kind::None && Payload.isSecret(); }

  /// Attacker-visible equality: kind, rollback, and payload *bits* (labels
  /// are verification metadata, not observable).  This is the equality on
  /// traces used by Definition 3.1.
  bool observablyEquals(const Observation &Other) const {
    if (K != Other.K || Rollback != Other.Rollback)
      return false;
    return K == Kind::None || Payload.Bits == Other.Payload.Bits;
  }

  bool operator==(const Observation &Other) const = default;

  /// Renders the paper's notation, e.g. "rollback, fwd 0x43_pub".
  std::string str() const;
};

} // namespace sct

#endif // SCT_CORE_OBSERVATION_H
