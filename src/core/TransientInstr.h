//===- core/TransientInstr.h - Transient instructions ----------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Transient instructions — the right column of the paper's Table 1.  A
/// physical instruction becomes one (or, for call/ret, several) transient
/// instructions when fetched into the reorder buffer, then mutates through
/// partially- and fully-resolved forms as it executes:
///
///   (r = op(op, rv⃗))              unresolved op
///   (r = v_ℓ)                     resolved value
///   br(op, rv⃗, n0, (nt, nf))      unresolved conditional
///   jump n0                       resolved conditional / indirect jump
///   (r = load(rv⃗))_n              unresolved load
///   (r = load(rv⃗, (v_ℓ, j)))_n    partially resolved load (§3.5)
///   (r = v_ℓ{⊥, a})_n             resolved load from memory
///   (r = v_ℓ{j, a})_n             resolved load forwarded from store j
///   store(rv, rv⃗)                 store; value and address resolve
///   store(v_ℓ, a_ℓa)              independently (§3.4)
///   jmpi(rv⃗, n0)                  unresolved indirect jump
///   call / ret                    markers for the A.2 expansions
///   fence                         speculation barrier
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CORE_TRANSIENTINSTR_H
#define SCT_CORE_TRANSIENTINSTR_H

#include "core/Value.h"
#include "isa/Program.h"
#include "support/InlineVector.h"

#include <optional>
#include <span>

namespace sct {

/// Index into the reorder buffer (the paper's natural-number buffer
/// indices).  Indices are monotonically increasing across a run and never
/// reused, which preserves the paper's contiguous-domain invariant while
/// keeping schedules unambiguous.
using BufIdx = uint64_t;

/// An optional buffer index packed into one word: 0 encodes "no index"
/// (the paper's ⊥ provenance), any other value encodes the index plus
/// one.  Drop-in for the `std::optional<BufIdx>` it replaces in
/// reorder-buffer entries, where the separate engaged flag doubled the
/// field to 16 bytes; the raw word is also exactly the value the entry
/// fingerprint has always folded (`Dep ? *Dep + 1 : 0`), so swapping the
/// representation leaves every hash unchanged.
class OptBufIdx {
public:
  constexpr OptBufIdx() = default;
  constexpr OptBufIdx(std::nullopt_t) {}
  constexpr OptBufIdx(BufIdx I) : Raw(I + 1) {}

  constexpr explicit operator bool() const { return Raw != 0; }
  constexpr BufIdx operator*() const {
    assert(Raw != 0 && "dereferencing empty OptBufIdx");
    return Raw - 1;
  }
  /// The sentinel word itself (index + 1, 0 = none).
  constexpr uint64_t raw() const { return Raw; }

  constexpr bool operator==(const OptBufIdx &Other) const = default;

private:
  uint64_t Raw = 0;
};

/// Maps program points of one program into another's coordinate space —
/// the hook behind the remap-aware fingerprints
/// (`Configuration::hash(const PcRemap &)`).  A relocated program's
/// configurations can hash commensurably with the original's by mapping
/// every program point back through the relocation's provenance; a
/// nullopt marks a point with no image (an inserted instruction, or one
/// the consumer refuses to equate — see sched/SeenStates.h for the
/// explorer's reuse adapter).
class PcRemap {
public:
  virtual ~PcRemap() = default;
  /// Image of a *control-flow* coordinate: a branch/jump target or RSB
  /// entry — a point the machine will still travel *to*, so the image
  /// must account for anything inserted on the way in.
  virtual std::optional<PC> target(PC N) const = 0;
  /// Image of an *instruction-identity* coordinate: a transient
  /// instruction's origin.
  virtual std::optional<PC> instr(PC N) const = 0;
  /// Image of a configuration's *fetch point*: the machine already sits
  /// at \p N, so whatever was inserted before it has been consumed and
  /// only what lies ahead matters.  Defaults to the target channel;
  /// consumers that distinguish "arriving at" from "being at" (the
  /// mitigation re-check's influence veto) override this with a mapping
  /// that only refuses points with insertions still reachable ahead.
  virtual std::optional<PC> fetchPoint(PC N) const { return target(N); }
};

/// Kinds of transient instructions.
enum class TransientKind : unsigned char {
  Op,            ///< (r = op(op, rv⃗)) — unresolved op
  ResolvedValue, ///< (r = v_ℓ) — resolved op
  Branch,        ///< br(op, rv⃗, n0, (ntrue, nfalse)) — unresolved
  Jump,          ///< jump n0 — resolved branch / indirect jump
  Load,          ///< (r = load(rv⃗))_n — unresolved load
  LoadGuessed,   ///< (r = load(rv⃗, (v_ℓ, j)))_n — alias-predicted (§3.5)
  LoadResolved,  ///< (r = v_ℓ{j|⊥, a})_n — resolved load
  Store,         ///< store(rv|v_ℓ, rv⃗|a_ℓa)
  JumpI,         ///< jmpi(rv⃗, n0) — unresolved indirect jump
  CallMarker,    ///< call
  RetMarker,     ///< ret
  Fence,         ///< fence
};

/// One reorder-buffer entry.  A single tagged struct; which fields are
/// meaningful depends on Kind (see the factory functions).
///
/// The field order is chosen for size, not narrative: the byte-wide tag,
/// opcode, and resolution flags share the leading word with the 16-bit
/// register, and every 8-byte-aligned field follows without padding.
/// tests/CoreTest.cpp asserts the resulting sizeof ceiling — an entry is
/// copied at every schedule fork and chunk unshare, so accidental
/// padding regressions are a measured cost, not a cosmetic one.
struct TransientInstr {
  TransientKind Kind = TransientKind::Fence;
  /// Op opcode or Branch condition.
  Opcode Opc = Opcode::True;
  /// Whether the store's value has resolved into StoreResolvedVal.
  bool StoreValIsResolved : 1 = false;
  /// Whether the store's address has resolved into StoreAddr.
  bool StoreAddrIsResolved : 1 = false;
  /// Destination register (Op, ResolvedValue, Load*).
  Reg Dest;

  /// Operand list rv⃗ (Op args, Branch condition args, Load/Store/JumpI
  /// address args).  Address expressions and condition lists are one or
  /// two operands in every workload, so they live inline in the entry —
  /// no per-entry heap allocation to chase (or re-allocate) when a
  /// configuration is copied at a schedule fork.
  InlineVector<Operand, 2> Args;

  /// Resolved value: ResolvedValue and LoadResolved carry the assigned
  /// value; LoadGuessed carries the speculatively forwarded value.
  Value Val;

  /// Store value operand rv (unresolved form).
  Operand StoreVal = Operand::imm(0);
  Value StoreResolvedVal;
  Value StoreAddr;

  /// LoadResolved: the address annotation a of (r = v{j,a}).
  uint64_t LoadAddr = 0;
  /// LoadResolved: originating store index j, or none for ⊥ (memory).
  /// LoadGuessed: the predicted originating store index j.
  OptBufIdx Dep;

  /// Index of the leading transient of this instruction's fetch group.
  /// Equals the entry's own index except for the call/ret expansions of
  /// Appendix A.2, whose members all point at the call/ret marker so a
  /// rollback into the middle of a group widens to the whole group.
  BufIdx GroupLeader = 0;

  /// Branch: speculatively chosen target n0.  Jump: resolved target.
  /// JumpI: predicted target n0.
  PC N0 = 0;
  /// Branch: the two static targets.
  PC NTrue = 0;
  PC NFalse = 0;

  /// Program point of the originating physical instruction (the paper's
  /// load annotation `(...)_n`, kept for every transient for diagnostics
  /// and hazard rollback).
  PC Origin = 0;

  // --- Factories -----------------------------------------------------------
  static TransientInstr makeOp(Reg Dest, Opcode Opc,
                               std::span<const Operand> Args, PC Origin);
  static TransientInstr makeResolvedValue(Reg Dest, Value V, PC Origin);
  static TransientInstr makeBranch(Opcode Cond, std::span<const Operand> Args,
                                   PC Chosen, PC NTrue, PC NFalse, PC Origin);
  static TransientInstr makeJump(PC Target, PC Origin);
  static TransientInstr makeLoad(Reg Dest, std::span<const Operand> AddrArgs,
                                 PC Origin);
  static TransientInstr makeStore(Operand Val,
                                  std::span<const Operand> AddrArgs,
                                  PC Origin);
  static TransientInstr makeJumpI(std::span<const Operand> AddrArgs,
                                  PC Predicted, PC Origin);
  // Braced-list conveniences (C++20 spans don't bind to initializer
  // lists); forward to the span factories above.
  static TransientInstr makeOp(Reg Dest, Opcode Opc,
                               std::initializer_list<Operand> Args,
                               PC Origin) {
    return makeOp(Dest, Opc, std::span<const Operand>(Args.begin(), Args.size()),
                  Origin);
  }
  static TransientInstr makeBranch(Opcode Cond,
                                   std::initializer_list<Operand> Args,
                                   PC Chosen, PC NTrue, PC NFalse, PC Origin) {
    return makeBranch(Cond,
                      std::span<const Operand>(Args.begin(), Args.size()),
                      Chosen, NTrue, NFalse, Origin);
  }
  static TransientInstr makeLoad(Reg Dest,
                                 std::initializer_list<Operand> AddrArgs,
                                 PC Origin) {
    return makeLoad(
        Dest, std::span<const Operand>(AddrArgs.begin(), AddrArgs.size()),
        Origin);
  }
  static TransientInstr makeStore(Operand Val,
                                  std::initializer_list<Operand> AddrArgs,
                                  PC Origin) {
    return makeStore(
        Val, std::span<const Operand>(AddrArgs.begin(), AddrArgs.size()),
        Origin);
  }
  static TransientInstr makeJumpI(std::initializer_list<Operand> AddrArgs,
                                  PC Predicted, PC Origin) {
    return makeJumpI(
        std::span<const Operand>(AddrArgs.begin(), AddrArgs.size()), Predicted,
        Origin);
  }
  static TransientInstr makeCallMarker(PC Origin);
  static TransientInstr makeRetMarker(PC Origin);
  static TransientInstr makeFence(PC Origin);

  // --- Queries -------------------------------------------------------------
  bool is(TransientKind K) const { return Kind == K; }

  /// True iff this entry assigns register \p R when (fully or partially)
  /// resolved — the "(r = _)" shapes of the register-resolve function
  /// (Figure 3 and its §3.5 extension).
  bool assignsReg(Reg R) const;

  /// True iff this is a store whose resolved address equals \p Addr — the
  /// "buf(j) = store(_, a)" premise of the load rules.
  bool isStoreToAddr(uint64_t Addr) const {
    return Kind == TransientKind::Store && StoreAddrIsResolved &&
           StoreAddr.Bits == Addr;
  }

  /// True iff this is a fully-resolved store store(v_ℓ, a_ℓa).
  bool isResolvedStore() const {
    return Kind == TransientKind::Store && StoreValIsResolved &&
           StoreAddrIsResolved;
  }

  /// True iff this entry is fully resolved (retirable shape).
  bool isResolved() const;

  bool operator==(const TransientInstr &Other) const = default;

  /// Fingerprint over every field operator== compares, resolution state
  /// included — a store with a resolved address must never hash like its
  /// unresolved twin.
  uint64_t hash() const;

  /// Remap-aware fingerprint: identical chaining to hash(), but with the
  /// entry's program points pushed through \p R first — Origin through
  /// the instruction map, the kind-dependent target fields (a branch's
  /// chosen/static targets, a jump's target, a jmpi's prediction) through
  /// the target map.  nullopt iff some point has no image.  Keep this in
  /// lockstep with hash(): `hash(Identity) == hash()` must hold for every
  /// entry (tests/SeenStateTest.cpp pins it).
  std::optional<uint64_t> hash(const PcRemap &R) const;

  /// Renders the paper's notation, e.g. "(rb = load([0x40, ra]))".
  std::string str(const Program &P) const;
};

} // namespace sct

#endif // SCT_CORE_TRANSIENTINSTR_H
