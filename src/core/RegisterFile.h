//===- core/RegisterFile.h - The register map ρ ----------------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The architectural register map `ρ : R ⇀ V` of a configuration (§3,
/// "Configurations").  All declared registers are total here, initialised
/// to 0_pub unless the program specifies otherwise.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CORE_REGISTERFILE_H
#define SCT_CORE_REGISTERFILE_H

#include "core/Value.h"
#include "isa/Instruction.h"

#include <vector>

namespace sct {

/// The register map ρ.
class RegisterFile {
public:
  RegisterFile() = default;
  explicit RegisterFile(unsigned NumRegs) : Values(NumRegs) {}

  unsigned size() const { return static_cast<unsigned>(Values.size()); }

  const Value &get(Reg R) const {
    assert(R.id() < Values.size() && "register out of range");
    return Values[R.id()];
  }

  void set(Reg R, Value V) {
    assert(R.id() < Values.size() && "register out of range");
    Values[R.id()] = V;
  }

  bool operator==(const RegisterFile &Other) const = default;

  /// Fingerprint over the register count and every (bits, label) pair.
  uint64_t hash() const;

  /// True iff both files agree on labels everywhere and on the bits of all
  /// public registers (the register half of ≃pub).
  bool lowEquivalent(const RegisterFile &Other) const;

private:
  std::vector<Value> Values;
};

} // namespace sct

#endif // SCT_CORE_REGISTERFILE_H
