//===- core/RegisterFile.h - The register map ρ ----------------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The architectural register map `ρ : R ⇀ V` of a configuration (§3,
/// "Configurations").  All declared registers are total here, initialised
/// to 0_pub unless the program specifies otherwise.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CORE_REGISTERFILE_H
#define SCT_CORE_REGISTERFILE_H

#include "core/Value.h"
#include "isa/Instruction.h"

#include <vector>

namespace sct {

/// The register map ρ.
class RegisterFile {
public:
  RegisterFile() = default;
  explicit RegisterFile(unsigned NumRegs) : Values(NumRegs) {
    for (unsigned I = 0; I < NumRegs; ++I)
      RegXor ^= contribution(I, Values[I]);
  }

  unsigned size() const { return static_cast<unsigned>(Values.size()); }

  const Value &get(Reg R) const {
    assert(R.id() < Values.size() && "register out of range");
    return Values[R.id()];
  }

  void set(Reg R, Value V) {
    assert(R.id() < Values.size() && "register out of range");
    // Incremental fingerprint: swap the register's term in the
    // XOR-multiset before the write lands.
    RegXor ^= contribution(R.id(), Values[R.id()]) ^ contribution(R.id(), V);
    Values[R.id()] = V;
  }

  bool operator==(const RegisterFile &Other) const {
    return Values == Other.Values;
  }

  /// Fingerprint over the register count and every (index, bits, label)
  /// triple.  Maintained incrementally as an XOR-multiset of avalanched
  /// per-register contributions, updated by set() — hash() itself is O(1).
  /// `hashFromScratch()` is the O(registers) verification oracle
  /// (tests/HashEquivalenceTest.cpp keeps them bit-equal).
  uint64_t hash() const;

  /// Recomputes hash() by walking every register.
  uint64_t hashFromScratch() const;

  /// True iff both files agree on labels everywhere and on the bits of all
  /// public registers (the register half of ≃pub).
  bool lowEquivalent(const RegisterFile &Other) const;

private:
  /// Register \p I's term in the XOR-multiset fingerprint.
  static uint64_t contribution(uint64_t I, const Value &V);

  std::vector<Value> Values;
  /// XOR of contribution over all registers.
  uint64_t RegXor = 0;
};

} // namespace sct

#endif // SCT_CORE_REGISTERFILE_H
