//===- core/Directive.h - Attacker directives ------------------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Attacker directives (§2, §3): the adversary resolves all scheduling and
/// prediction non-determinism by supplying a sequence of directives, which
/// is how the semantics abstracts over every possible predictor.
///
///   fetch                 fetch the next instruction
///   fetch: b              fetch a conditional branch, guessing b
///   fetch: n              fetch an indirect jump / RSB-empty ret,
///                         predicting target n
///   execute i             execute buffer entry i
///   execute i : value     resolve the value of store i
///   execute i : addr      resolve the address of store i
///   execute i : fwd j     alias-predict: forward store j's data to load i
///   retire                retire the oldest buffer entry
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CORE_DIRECTIVE_H
#define SCT_CORE_DIRECTIVE_H

#include "core/TransientInstr.h"

#include <string>

namespace sct {

/// One attacker directive.
struct Directive {
  enum class Kind : unsigned char {
    Fetch,        ///< fetch
    FetchBool,    ///< fetch: true / fetch: false
    FetchTarget,  ///< fetch: n
    Execute,      ///< execute i
    ExecuteValue, ///< execute i : value
    ExecuteAddr,  ///< execute i : addr
    ExecuteFwd,   ///< execute i : fwd j
    Retire,       ///< retire
  };

  Kind K = Kind::Fetch;
  bool Guess = false;  ///< FetchBool: the guessed branch direction.
  PC Target = 0;       ///< FetchTarget: the predicted program point.
  BufIdx Idx = 0;      ///< Execute*: the buffer index i.
  BufIdx FwdFrom = 0;  ///< ExecuteFwd: the originating store j.

  static Directive fetch() { return {}; }
  static Directive fetchBool(bool B) {
    Directive D;
    D.K = Kind::FetchBool;
    D.Guess = B;
    return D;
  }
  static Directive fetchTarget(PC N) {
    Directive D;
    D.K = Kind::FetchTarget;
    D.Target = N;
    return D;
  }
  static Directive execute(BufIdx I) {
    Directive D;
    D.K = Kind::Execute;
    D.Idx = I;
    return D;
  }
  static Directive executeValue(BufIdx I) {
    Directive D;
    D.K = Kind::ExecuteValue;
    D.Idx = I;
    return D;
  }
  static Directive executeAddr(BufIdx I) {
    Directive D;
    D.K = Kind::ExecuteAddr;
    D.Idx = I;
    return D;
  }
  static Directive executeFwd(BufIdx I, BufIdx J) {
    Directive D;
    D.K = Kind::ExecuteFwd;
    D.Idx = I;
    D.FwdFrom = J;
    return D;
  }
  static Directive retire() {
    Directive D;
    D.K = Kind::Retire;
    return D;
  }

  bool isFetch() const {
    return K == Kind::Fetch || K == Kind::FetchBool || K == Kind::FetchTarget;
  }
  bool isExecute() const {
    return K == Kind::Execute || K == Kind::ExecuteValue ||
           K == Kind::ExecuteAddr || K == Kind::ExecuteFwd;
  }
  bool isRetire() const { return K == Kind::Retire; }

  bool operator==(const Directive &Other) const = default;

  /// Renders the paper's notation, e.g. "execute 3 : addr".
  std::string str() const;
};

} // namespace sct

#endif // SCT_CORE_DIRECTIVE_H
