//===- core/Configuration.h - Machine configurations -----------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configurations `C = (ρ, µ, n, buf)` (§3), extended with the return
/// stack buffer σ of Appendix A.2.  Also defines the two equivalences the
/// paper's metatheory uses:
///  - `≈`  (sameArchState): registers and memory equal, speculative state
///    ignored — used by sequential-equivalence (Theorem 3.2);
///  - `≃pub` (lowEquivalent): agreement on all labels and on public
///    values — the indistinguishability underlying SCT (Definition 3.1).
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CORE_CONFIGURATION_H
#define SCT_CORE_CONFIGURATION_H

#include "core/Memory.h"
#include "core/RegisterFile.h"
#include "core/ReorderBuffer.h"
#include "core/ReturnStackBuffer.h"

namespace sct {

/// A machine configuration.
struct Configuration {
  RegisterFile Regs;
  Memory Mem;
  PC N = 0;
  ReorderBuffer Buf;
  ReturnStackBuffer Rsb;

  /// Builds the initial configuration of \p P: registers and memory from
  /// the program's init lists, program point at the entry, empty buffers.
  static Configuration initial(const Program &P);

  /// The paper's `≈`: equal registers and memory (speculative state — buf,
  /// σ, and the program point — may differ).
  bool sameArchState(const Configuration &Other) const {
    return Regs == Other.Regs && Mem == Other.Mem;
  }

  /// The paper's `≃pub`: configurations coincide on public values in
  /// registers and memory (labels must agree everywhere).
  bool lowEquivalent(const Configuration &Other) const {
    return Regs.lowEquivalent(Other.Regs) && Mem.lowEquivalent(Other.Mem);
  }

  /// Terminal configuration (Definition B.2): empty reorder buffer.  The
  /// run has additionally finished when no instruction remains to fetch.
  bool isTerminal() const { return Buf.empty(); }

  /// True iff the run can make no further progress: nothing speculative in
  /// flight and the program point is outside the text section.
  bool isFinal(const Program &P) const {
    return Buf.empty() && !P.contains(N);
  }

  bool operator==(const Configuration &Other) const = default;

  /// Canonical 64-bit fingerprint of the whole configuration — registers,
  /// observable memory (default-valued cells contribute nothing), program
  /// point, reorder buffer, and RSB journal.  Equal configurations hash
  /// equal by construction; the explorer's cross-schedule seen-state
  /// table keys on this to prune re-exploration of states recurring
  /// across schedule forks (see ExplorerOptions::PruneSeen for the
  /// collision caveat).
  ///
  /// O(1) amortized: each component maintains its fingerprint
  /// incrementally as an XOR-multiset updated on
  /// store/set/push/pop/rollback, so this call just chains five running
  /// values — no state walk (the maintenance contract is ARCHITECTURE.md
  /// invariant 4; hashFromScratch() is the recomputation oracle the
  /// property suite checks against).  The reorder buffer's per-entry
  /// terms are folded lazily (ReorderBuffer's file comment): on a
  /// mutable configuration this overload memoizes the entries touched
  /// since the last probe; the const overload computes them on the fly
  /// without writing, so it stays safe on a shared configuration.
  uint64_t hash();
  uint64_t hash() const;

  /// Recomputes hash() by walking every register, cell, buffer entry, and
  /// journal entry — the verification oracle for the incremental
  /// fingerprints (tests/HashEquivalenceTest.cpp), and the cost model for
  /// the pre-incremental engine (bench/StepRateBench.cpp's baseline mode).
  uint64_t hashFromScratch() const;

  /// Remap-aware fingerprint: every program point — the fetch point, the
  /// reorder buffer's origins/targets, the RSB's pushed return points —
  /// maps through \p R before folding, with the chaining otherwise
  /// identical to hash().  A configuration of a *relocated* program
  /// thereby hashes commensurably with the original program's states:
  /// when R inverts the relocation's provenance, this equals the plain
  /// hash() of the corresponding original-program configuration.  nullopt
  /// iff some point has no image (e.g. an inserted fence is in flight).
  /// Register and memory *values* are folded raw — values that encode
  /// code pointers (jump tables, spilled return addresses) simply never
  /// match, which errs toward fewer matches, never wrong ones.
  std::optional<uint64_t> hash(const PcRemap &R) const;
};

} // namespace sct

#endif // SCT_CORE_CONFIGURATION_H
