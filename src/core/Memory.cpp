//===- core/Memory.cpp - The data memory µ ----------------------------------===//

#include "core/Memory.h"

#include "support/Hashing.h"

using namespace sct;

Value Memory::load(uint64_t Addr) const {
  if (Cells) {
    auto It = Cells->find(Addr);
    if (It != Cells->end())
      return It->second;
  }
  return Value(0, defaultLabel(Addr));
}

void Memory::store(uint64_t Addr, Value V) {
  // Copy-on-write: writers get a private map; copies sharing the old map
  // keep reading it unchanged.  A unique map is mutated in place.
  if (!Cells) {
    auto Fresh = std::make_shared<std::map<uint64_t, Value>>();
    Fresh->emplace(Addr, V);
    Cells = std::move(Fresh);
    return;
  }
  if (Cells.use_count() > 1) {
    auto Own = std::make_shared<std::map<uint64_t, Value>>(*Cells);
    (*Own)[Addr] = V;
    Cells = std::move(Own);
    return;
  }
  // Sole owner: drop const on our private map.
  (*std::const_pointer_cast<std::map<uint64_t, Value>>(Cells))[Addr] = V;
}

Label Memory::defaultLabel(uint64_t Addr) const {
  if (Regions)
    for (const MemRegion &R : *Regions)
      if (Addr >= R.Base && Addr - R.Base < R.Size)
        return R.RegionLabel;
  return Label::publicLabel();
}

bool Memory::operator==(const Memory &Other) const {
  // Shared cells and region tables compare equal without walking a word.
  if (Cells == Other.Cells && Regions == Other.Regions)
    return true;
  // Compare over the union of explicitly-written addresses; all other
  // addresses read as region defaults, which agree iff the loads agree.
  for (const auto &[Addr, V] : cells()) {
    (void)V;
    if (!(load(Addr) == Other.load(Addr)))
      return false;
  }
  for (const auto &[Addr, V] : Other.cells()) {
    (void)V;
    if (!(load(Addr) == Other.load(Addr)))
      return false;
  }
  return true;
}

uint64_t Memory::hash() const {
  // std::map iterates in ascending address order, so the fold is
  // order-canonical; default-valued cells are skipped to stay consistent
  // with operator==, which cannot tell an explicit default apart from an
  // unwritten address.
  uint64_t H = HashSeed;
  for (const auto &[Addr, V] : cells()) {
    if (V.Bits == 0 && V.Taint == defaultLabel(Addr))
      continue;
    H = hashCombine(H, Addr);
    H = hashCombine(H, V.Bits);
    H = hashCombine(H, V.Taint.mask());
  }
  return H;
}

bool Memory::lowEquivalent(const Memory &Other) const {
  auto CellsAgree = [](Value A, Value B) {
    if (A.Taint != B.Taint)
      return false;
    return A.isSecret() || A.Bits == B.Bits;
  };
  for (const auto &[Addr, V] : cells()) {
    (void)V;
    if (!CellsAgree(load(Addr), Other.load(Addr)))
      return false;
  }
  for (const auto &[Addr, V] : Other.cells()) {
    (void)V;
    if (!CellsAgree(load(Addr), Other.load(Addr)))
      return false;
  }
  return true;
}
