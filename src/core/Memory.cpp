//===- core/Memory.cpp - The data memory µ ----------------------------------===//

#include "core/Memory.h"

#include "support/Hashing.h"

#include <algorithm>

using namespace sct;

namespace {

/// Binary search for \p Addr in the sorted cell array; the iterator's
/// constness follows the array's.
template <typename ArrayT> auto findCell(ArrayT &Cells, uint64_t Addr) {
  auto It = std::lower_bound(
      Cells.begin(), Cells.end(), Addr,
      [](const auto &Cell, uint64_t A) { return Cell.first < A; });
  return It;
}

} // namespace

Value Memory::load(uint64_t Addr) const {
  if (Cells) {
    auto It = findCell(*Cells, Addr);
    if (It != Cells->end() && It->first == Addr)
      return It->second;
  }
  return Value(0, defaultLabel(Addr));
}

uint64_t Memory::cellContribution(uint64_t Addr, const Value &V) const {
  // Default-valued cells are observationally indistinguishable from
  // unwritten addresses (operator== reads through defaults), so they must
  // contribute nothing — that keeps the fingerprint canonical whether or
  // not a default was spelled out explicitly.
  if (V.Bits == 0 && V.Taint == defaultLabel(Addr))
    return 0;
  return hashFields({Addr, V.Bits, V.Taint.mask()});
}

void Memory::store(uint64_t Addr, Value V) {
  // Incremental fingerprint: the cell's old contribution leaves the
  // multiset, the new one enters.  The running XOR lives per-copy, so the
  // update never touches copies still sharing the old cell array.
  CellXor ^= cellContribution(Addr, load(Addr)) ^ cellContribution(Addr, V);

  // Copy-on-write: writers get a private array; copies sharing the old
  // one keep reading it unchanged.  A unique array is mutated in place.
  if (!Cells) {
    auto Fresh = std::make_shared<CellArray>();
    Fresh->emplace_back(Addr, V);
    Cells = std::move(Fresh);
    return;
  }
  if (Cells.use_count() > 1) {
    auto Own = std::make_shared<CellArray>(*Cells);
    auto It = findCell(*Own, Addr);
    if (It != Own->end() && It->first == Addr)
      It->second = V;
    else
      Own->insert(It, {Addr, V});
    Cells = std::move(Own);
    return;
  }
  // Sole owner: drop const on our private array.
  auto &Own = *std::const_pointer_cast<CellArray>(Cells);
  auto It = findCell(Own, Addr);
  if (It != Own.end() && It->first == Addr)
    It->second = V;
  else
    Own.insert(It, {Addr, V});
}

Label Memory::defaultLabel(uint64_t Addr) const {
  if (Regions)
    for (const MemRegion &R : *Regions)
      if (Addr >= R.Base && Addr - R.Base < R.Size)
        return R.RegionLabel;
  return Label::publicLabel();
}

bool Memory::operator==(const Memory &Other) const {
  // Shared cells and region tables compare equal without walking a word.
  if (Cells == Other.Cells && Regions == Other.Regions)
    return true;
  // Compare over the union of explicitly-written addresses; all other
  // addresses read as region defaults, which agree iff the loads agree.
  bool Equal = true;
  forEachCell([&](uint64_t Addr, const Value &) {
    if (Equal && !(load(Addr) == Other.load(Addr)))
      Equal = false;
  });
  Other.forEachCell([&](uint64_t Addr, const Value &) {
    if (Equal && !(load(Addr) == Other.load(Addr)))
      Equal = false;
  });
  return Equal;
}

uint64_t Memory::hash() const { return hashCombine(HashSeed, CellXor); }

uint64_t Memory::hashFromScratch() const {
  uint64_t Xor = 0;
  forEachCell([&](uint64_t Addr, const Value &V) {
    Xor ^= cellContribution(Addr, V);
  });
  return hashCombine(HashSeed, Xor);
}

bool Memory::lowEquivalent(const Memory &Other) const {
  auto CellsAgree = [](Value A, Value B) {
    if (A.Taint != B.Taint)
      return false;
    return A.isSecret() || A.Bits == B.Bits;
  };
  bool Equiv = true;
  forEachCell([&](uint64_t Addr, const Value &) {
    if (Equiv && !CellsAgree(load(Addr), Other.load(Addr)))
      Equiv = false;
  });
  Other.forEachCell([&](uint64_t Addr, const Value &) {
    if (Equiv && !CellsAgree(load(Addr), Other.load(Addr)))
      Equiv = false;
  });
  return Equiv;
}
