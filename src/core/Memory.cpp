//===- core/Memory.cpp - The data memory µ ----------------------------------===//

#include "core/Memory.h"

using namespace sct;

Value Memory::load(uint64_t Addr) const {
  auto It = Cells.find(Addr);
  if (It != Cells.end())
    return It->second;
  return Value(0, defaultLabel(Addr));
}

void Memory::store(uint64_t Addr, Value V) { Cells[Addr] = V; }

Label Memory::defaultLabel(uint64_t Addr) const {
  for (const MemRegion &R : Regions)
    if (Addr >= R.Base && Addr - R.Base < R.Size)
      return R.RegionLabel;
  return Label::publicLabel();
}

bool Memory::operator==(const Memory &Other) const {
  // Compare over the union of explicitly-written addresses; all other
  // addresses read as region defaults, which agree iff the loads agree.
  for (const auto &[Addr, V] : Cells) {
    (void)V;
    if (!(load(Addr) == Other.load(Addr)))
      return false;
  }
  for (const auto &[Addr, V] : Other.Cells) {
    (void)V;
    if (!(load(Addr) == Other.load(Addr)))
      return false;
  }
  return true;
}

bool Memory::lowEquivalent(const Memory &Other) const {
  auto CellsAgree = [](Value A, Value B) {
    if (A.Taint != B.Taint)
      return false;
    return A.isSecret() || A.Bits == B.Bits;
  };
  for (const auto &[Addr, V] : Cells) {
    (void)V;
    if (!CellsAgree(load(Addr), Other.load(Addr)))
      return false;
  }
  for (const auto &[Addr, V] : Other.Cells) {
    (void)V;
    if (!CellsAgree(load(Addr), Other.load(Addr)))
      return false;
  }
  return true;
}
