//===- core/ReorderBuffer.h - The reorder buffer ---------------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reorder buffer `buf : N ⇀ TransInstr` (§3).  The paper's rules
/// "add and remove indices in a way that ensures that buf's domain will
/// always be contiguous"; this class makes that invariant structural: a
/// chunked sequence of entries plus the index of the first live one.
/// Unlike the paper's convention MIN(∅) = MAX(∅) = 0 (which makes indices
/// restart at 1 after a drain), indices here increase monotonically over a
/// whole run and are never reused — semantically equivalent (every rule
/// compares indices relatively) and unambiguous for recorded schedules.
///
/// **Storage: persistent, structurally shared, allocation-free to copy.**
/// A configuration is copied at every schedule fork, and the flat-slab
/// layout this replaces made each copy O(live suffix) — the engine's top
/// profile entry.  Here entries live in fixed-size chunks held by
/// `shared_ptr` (mirroring `core/Memory`'s copy-on-write cells); the last
/// chunk is *open* — `push` writes straight into its next free slot — and
/// becomes immutable-while-shared the moment a fork copies the buffer,
/// exactly like every other chunk.  A copy duplicates only the chunk
/// *pointers* (held in an InlineVector sized for the default speculation
/// window), so a fork moves O(#chunks) refcounted pointers and performs
/// zero heap allocations.  All mutation funnels through two chokepoints
/// that clone a chunk on the first write through a shared reference
/// (`mut()`, and `push()` when the open chunk is shared) — Memory's
/// first-store unshare, applied here.  `popFront()` only advances `Base`
/// (a fully dead front chunk is dropped by releasing its pointer — no
/// entry ever moves on retire — and a sole-owned one is parked for reuse
/// by the next chunk-open, with a thread-local block pool behind it for
/// the shared-at-drop case, making the steady-state issue/retire cycle
/// allocation-free); `truncateFrom()` re-opens the cut chunk in place —
/// rollback copies no entries at all.  Chunks are aligned: the chunk
/// holding index I always starts at `ChunkBase + k·ChunkCap`, so forks
/// that share a chunk agree on every slot's absolute index.  Reference
/// stability matches the old slab: references returned by at()/mut() are
/// invalidated by push(), popFront(), and truncateFrom().  Machine.cpp's
/// rules copy what they need before any of those calls and re-acquire
/// after a rollback.
///
/// **Incremental fingerprint, lazily folded per slot.**  hash() is an
/// XOR-multiset of avalanched per-entry contributions keyed by
/// (index, entry hash).  Hashing a TransientInstr is the engine's
/// measured hot spot, and most entries are pushed, mutated, and retired
/// between two fingerprint probes — their hashes are never observed.  So
/// contributions stay lazy, tracked by per-copy *pending bitmasks*:
///
///  - `EntryXor` is the XOR of the contributions of every live *folded*
///    slot.  A freshly pushed or mutated slot is *pending*: excluded
///    from `EntryXor` until the next fold or hash probe.
///  - Each chunk ref carries this copy's pending mask plus `Folded`, the
///    XOR of that chunk's folded live contributions (a partition of
///    `EntryXor`).  mut() un-folds exactly one slot (one memo load);
///    foldPending() folds exactly the pending slots; retiring a pending
///    slot just clears its bit — an entry mutated and then retired
///    between probes is never hashed at all; dropping a whole chunk or a
///    truncated suffix subtracts folded contributions without rehashing.
///  - Chunks memoize per-slot contributions in caches *inside the chunk*
///    (`Chunk::Memo`) and therefore shared: a slot any fork has folded is
///    hashed by no other fork again.  A memo is only read for a folded
///    slot, and folding wrote the memo first, so stale values left behind
///    by mut() are unreachable — no in-band sentinel needed.  Memo slots
///    are relaxed atomics: forks sharing a chunk agree bit-for-bit on
///    slot content and absolute index, so concurrent memoizers write
///    identical values (pure idempotent publication;
///    tests/HashEquivalenceTest.cpp pins this under TSan).
///
/// The const hash() overload recomputes pending contributions on the fly
/// and performs **no writes at all** — frozen checkpoints hash
/// concurrently from many threads, in O(1) once fully folded.  The
/// non-const overload folds first so repeated probes stay O(1).
/// hashFromScratch() is the O(n) oracle; `hash() == hashFromScratch()`
/// after every mutation is property-tested in
/// tests/HashEquivalenceTest.cpp, and invariant 4 in docs/ARCHITECTURE.md
/// spells out the maintenance contract.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CORE_REORDERBUFFER_H
#define SCT_CORE_REORDERBUFFER_H

#include "core/TransientInstr.h"
#include "support/Hashing.h"
#include "support/InlineVector.h"

#include <array>
#include <atomic>
#include <bit>
#include <cassert>
#include <memory>
#include <optional>
#include <vector>

namespace sct {

struct PcRemap;

namespace detail {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SCT_CHUNK_POOL_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define SCT_CHUNK_POOL_DISABLED 1
#endif
#endif

/// A thread-local free list of equally-sized blocks backing reorder-buffer
/// chunk allocations.  Chunks churn at the engine's issue/retire rate and
/// are usually *shared* when dropped (sibling forks still hold them), so
/// the in-buffer Spare recycler rarely engages inside an exploration —
/// this pool catches the remainder without touching the global allocator.
/// Blocks freed on a thread go to that thread's list; no cross-thread
/// state, no locks.  Disabled under ASan/TSan so sanitizer jobs see real
/// allocations.
class BlockPool {
public:
  void *alloc(size_t Bytes) {
#ifndef SCT_CHUNK_POOL_DISABLED
    if (Head && BlockBytes == Bytes) {
      void *B = Head;
      Head = *static_cast<void **>(B);
      --Count;
      return B;
    }
#endif
    return ::operator new(Bytes);
  }
  void free(void *B, size_t Bytes) noexcept {
#ifndef SCT_CHUNK_POOL_DISABLED
    if (Count < MaxBlocks && (Head == nullptr || BlockBytes == Bytes)) {
      BlockBytes = Bytes;
      *static_cast<void **>(B) = Head;
      Head = B;
      ++Count;
      return;
    }
#endif
    ::operator delete(B);
  }
  ~BlockPool() {
    while (Head) {
      void *N = *static_cast<void **>(Head);
      ::operator delete(Head);
      Head = N;
    }
  }

private:
  static constexpr size_t MaxBlocks = 256;
  void *Head = nullptr;
  size_t BlockBytes = 0;
  size_t Count = 0;
};

inline BlockPool &chunkPool() {
  static thread_local BlockPool P;
  return P;
}

/// Minimal allocator over chunkPool() for allocate_shared (the library
/// rebinds it to the combined object+control block, so every allocation a
/// given binary makes through it has one size — exactly what BlockPool
/// serves).
template <typename T> struct ChunkPoolAlloc {
  using value_type = T;
  ChunkPoolAlloc() = default;
  template <typename U> ChunkPoolAlloc(const ChunkPoolAlloc<U> &) noexcept {}
  T *allocate(size_t N) {
    assert(N == 1 && "pool allocator serves single objects");
    return static_cast<T *>(chunkPool().alloc(sizeof(T)));
  }
  void deallocate(T *P, size_t) noexcept { chunkPool().free(P, sizeof(T)); }
  template <typename U>
  bool operator==(const ChunkPoolAlloc<U> &) const noexcept {
    return true;
  }
};

} // namespace detail

/// The reorder buffer: a dense, contiguously indexed window of transient
/// instructions.  Indices are stable for an entry's lifetime; index 0 is
/// reserved as a null sentinel (the first pushed entry gets index 1).
class ReorderBuffer {
public:
  /// Entries per chunk.  Small on purpose: a smaller cap shrinks the
  /// clone a shared open chunk pays on first post-fork push and lets a
  /// fully-retired front chunk be dropped (its sharing reclaimed) sooner.
  static constexpr size_t ChunkCap = 4;

  ReorderBuffer() = default;
  ReorderBuffer(const ReorderBuffer &O) { copyFrom(O); }
  ReorderBuffer &operator=(const ReorderBuffer &O) {
    if (this != &O)
      copyFrom(O);
    return *this;
  }
  ReorderBuffer(ReorderBuffer &&) = default;
  ReorderBuffer &operator=(ReorderBuffer &&) = default;

  bool empty() const { return Base == nextIndex(); }
  size_t size() const { return size_t(nextIndex() - Base); }

  /// Index of the oldest live entry (the next to retire).
  BufIdx minIndex() const {
    assert(!empty() && "minIndex of empty buffer");
    return Base;
  }
  /// Index of the youngest live entry.
  BufIdx maxIndex() const {
    assert(!empty() && "maxIndex of empty buffer");
    return nextIndex() - 1;
  }
  /// Index the next push will get.
  BufIdx nextIndex() const {
    return Chunks.empty()
               ? ChunkBase
               : ChunkBase + (Chunks.size() - 1) * ChunkCap + OpenN;
  }

  bool contains(BufIdx I) const { return I >= Base && I < nextIndex(); }

  /// True iff a live Fence entry precedes index \p I — the paper's
  /// fence-blocking side condition for loads.
  bool hasFenceBefore(BufIdx I) const {
    return !Fences.empty() && Fences.front() < I;
  }

  /// Read-only access.  Never unshares a chunk.
  const TransientInstr &at(BufIdx I) const {
    assert(contains(I) && "index not live");
    size_t G = size_t(I - ChunkBase);
    return Chunks[G >> ChunkShift].Ptr->E[G & ChunkMask];
  }

  /// Calls `F(I, at(I))` for each live index in
  /// [max(Lo, minIndex), min(Hi, nextIndex)) in ascending order.  Loads
  /// each chunk pointer once per chunk instead of once per entry — the
  /// machine's and explorer's window scans all funnel through this (or
  /// scanReverse) rather than per-index at() calls.
  template <typename Fn> void forEachIn(BufIdx Lo, BufIdx Hi, Fn &&F) const {
    if (Lo < Base)
      Lo = Base;
    BufIdx End = nextIndex();
    if (Hi > End)
      Hi = End;
    while (Lo < Hi) {
      size_t G = size_t(Lo - ChunkBase);
      const Chunk &C = *Chunks[G >> ChunkShift].Ptr;
      size_t S = G & ChunkMask;
      size_t Take = ChunkCap - S;
      if (Take > size_t(Hi - Lo))
        Take = size_t(Hi - Lo);
      for (size_t T = 0; T < Take; ++T)
        F(Lo + T, C.E[S + T]);
      Lo += Take;
    }
  }

  /// Descending variant over the same clamped range, visiting Hi-1 down
  /// to Lo.  Stops as soon as \p F returns true; returns true iff it
  /// stopped early.
  template <typename Fn> bool scanReverse(BufIdx Lo, BufIdx Hi, Fn &&F) const {
    if (Lo < Base)
      Lo = Base;
    BufIdx End = nextIndex();
    if (Hi > End)
      Hi = End;
    while (Hi > Lo) {
      size_t G = size_t(Hi - 1 - ChunkBase);
      const Chunk &C = *Chunks[G >> ChunkShift].Ptr;
      size_t S = G & ChunkMask;
      size_t Take = S + 1;
      if (Take > size_t(Hi - Lo))
        Take = size_t(Hi - Lo);
      for (size_t T = 0; T < Take; ++T)
        if (F(Hi - 1 - T, C.E[S - T]))
          return true;
      Hi -= Take;
    }
    return false;
  }

  /// Mutable access.  Unshares the containing chunk if another copy still
  /// holds it, and marks the slot pending: its old contribution leaves
  /// `EntryXor` (via the memo) and the new one is folded lazily.
  TransientInstr &mut(BufIdx I) {
    assert(contains(I) && "index not live");
    size_t G = size_t(I - ChunkBase);
    size_t K = G >> ChunkShift;
    ChunkRef &R = Chunks[K];
    if (R.Ptr.use_count() > 1)
      R.Ptr = cloneChunk(*R.Ptr, K + 1 == Chunks.size() ? OpenN : ChunkCap);
    size_t S = G & ChunkMask;
    uint8_t Bit = uint8_t(1u << S);
    if (!(R.Pending & Bit)) {
      uint64_t C = R.Ptr->Memo[S].load(std::memory_order_relaxed);
      EntryXor ^= C;
      R.Folded ^= C;
      R.Pending |= Bit;
    }
    return R.Ptr->E[S];
  }

  /// Appends \p T at the tail of the open chunk (opening a fresh one as
  /// needed) and returns its index.  A defaulted GroupLeader resolves to
  /// the entry's own index (it leads its own speculation group until a
  /// branch nests it).  Takes an rvalue so the entry moves into the chunk
  /// slot exactly once — entries are wide, and this runs once per fetch.
  BufIdx push(TransientInstr &&T) {
    BufIdx I = nextIndex();
    if (T.GroupLeader == 0)
      T.GroupLeader = I;
    if (T.is(TransientKind::Fence))
      Fences.push_back(I); // Pushes ascend, so Fences stays sorted.
    if (Chunks.empty() || OpenN == ChunkCap) {
      std::shared_ptr<Chunk> P = Spare ? std::move(Spare) : newChunk();
      // Stale entries/memos in a recycled chunk are fine: a slot becomes
      // visible only when pushed, and arrives pending.
      P->First = ChunkBase + Chunks.size() * ChunkCap;
      Chunks.push_back(ChunkRef{std::move(P), 0, 0});
      OpenN = 0;
    }
    ChunkRef &R = Chunks.back();
    if (R.Ptr.use_count() > 1)
      R.Ptr = cloneChunk(*R.Ptr, OpenN);
    size_t S = OpenN;
    R.Ptr->E[S] = std::move(T);
    R.Pending |= uint8_t(1u << S);
    ++OpenN;
    return I;
  }

  /// Retires the oldest entry.  In-order retirement only.
  void popFront() {
    assert(!empty() && "popFront of empty buffer");
    if (!Fences.empty() && Fences.front() == Base)
      Fences.erase(Fences.begin());
    size_t G = size_t(Base - ChunkBase);
    ChunkRef &R = Chunks.front();
    uint8_t Bit = uint8_t(1u << G);
    if (R.Pending & Bit) {
      R.Pending &= uint8_t(~Bit); // never hashed; nothing to subtract
    } else {
      uint64_t C = R.Ptr->Memo[G].load(std::memory_order_relaxed);
      EntryXor ^= C;
      R.Folded ^= C;
    }
    if (G + 1 == ChunkCap) {
      // Front chunk fully dead: every slot retired, so its folded word
      // has drained to zero and no slot is pending.
      assert(R.Folded == 0 && R.Pending == 0 &&
             "dead chunk still carries fingerprint state");
      if (!Spare && R.Ptr.use_count() == 1)
        Spare = std::move(R.Ptr); // park for the next chunk-open
      Chunks.eraseFront();
      ChunkBase += ChunkCap;
    }
    ++Base;
    if (Base == nextIndex()) {
      // Empty: re-anchor so the dead prefix cannot grow without bound.
      if (!Chunks.empty()) {
        // Only a fully-dead open chunk can remain (full ones dropped
        // above, earlier chunks before that).
        assert(Chunks.size() == 1 && Chunks.front().Folded == 0 &&
               Chunks.front().Pending == 0);
        if (!Spare && Chunks.front().Ptr.use_count() == 1)
          Spare = std::move(Chunks.front().Ptr);
        Chunks.clear();
      }
      OpenN = 0;
      ChunkBase = Base;
    }
  }

  /// Rolls back: discards every entry with index >= \p I (misprediction
  /// squash).  Entries below the retire head are untouched.  Copies no
  /// entries: the cut chunk simply re-opens in place.
  void truncateFrom(BufIdx I) {
    if (empty() || I >= nextIndex())
      return;
    BufIdx Cut = I < Base ? Base : I;
    while (!Fences.empty() && Fences.back() >= Cut)
      Fences.pop_back();
    size_t G = size_t(Cut - ChunkBase);
    size_t K = G >> ChunkShift, Slot = G & ChunkMask;
    // Chunks wholly past the cut: subtract their folded words (pending
    // slots never entered EntryXor).
    for (size_t J = K + (Slot != 0 ? 1 : 0); J < Chunks.size(); ++J)
      EntryXor ^= Chunks[J].Folded;
    if (Slot == 0) {
      Chunks.resize(K);
      OpenN = K ? uint32_t(ChunkCap) : 0;
      if (Chunks.empty())
        ChunkBase = Cut; // Cut == Base here: the buffer drained
      return;
    }
    // The cut lands inside chunk K: it becomes the open chunk with Slot
    // filled slots; the dropped suffix's folded live contributions leave
    // EntryXor (and this ref's Folded) slot by slot.
    ChunkRef &R = Chunks[K];
    size_t Lim = K + 1 == Chunks.size() ? OpenN : ChunkCap;
    for (size_t S = Slot; S < Lim; ++S) {
      uint8_t Bit = uint8_t(1u << S);
      if (R.Pending & Bit)
        continue;
      if (R.Ptr->First + S < Base)
        continue; // dead prefix slot (front chunk only)
      uint64_t C = R.Ptr->Memo[S].load(std::memory_order_relaxed);
      EntryXor ^= C;
      R.Folded ^= C;
    }
    R.Pending &= uint8_t((1u << Slot) - 1);
    Chunks.resize(K + 1);
    OpenN = uint32_t(Slot);
  }

  bool operator==(const ReorderBuffer &O) const {
    if (Base != O.Base || size() != O.size())
      return false;
    for (BufIdx I = Base, E = nextIndex(); I != E; ++I)
      if (!(at(I) == O.at(I)))
        return false;
    return true;
  }

  /// Incremental fingerprint over (Base, size, live entry multiset).
  /// Folds pending contributions first, so repeated calls are O(1).
  uint64_t hash() {
    foldPending();
    return hashFields({Base, size(), EntryXor});
  }

  /// Const overload: recomputes pending contributions on the fly and
  /// performs **no writes at all** — safe to call concurrently on a
  /// frozen configuration other threads are also hashing, even while
  /// forks sharing these chunks mutate and hash their own copies.
  uint64_t hash() const {
    uint64_t Xor = EntryXor;
    for (const ChunkRef &R : Chunks)
      for (uint8_t P = R.Pending; P; P &= uint8_t(P - 1)) {
        size_t S = size_t(std::countr_zero(P));
        Xor ^= contribution(R.Ptr->First + S, R.Ptr->E[S]);
      }
    return hashFields({Base, size(), Xor});
  }

  /// Folds every pending slot's contribution into the fingerprint (and
  /// the shared memo caches).  Called by the non-const hash().
  void foldPending() {
    for (size_t K = 0; K < Chunks.size(); ++K) {
      ChunkRef &R = Chunks[K];
      while (R.Pending) {
        size_t S = size_t(std::countr_zero(R.Pending));
        uint64_t C = contribution(R.Ptr->First + S, R.Ptr->E[S]);
        R.Ptr->Memo[S].store(C, std::memory_order_relaxed);
        R.Folded ^= C;
        EntryXor ^= C;
        R.Pending &= uint8_t(R.Pending - 1);
      }
    }
  }

  /// O(n) oracle: recomputes the fingerprint from the live entries alone,
  /// ignoring all incremental state.  Must equal hash() always.
  uint64_t hashFromScratch() const;

  /// Remap-aware fingerprint for canonicalized comparison (invariant 4's
  /// second overload, see TransientInstr::hash(const PcRemap &)): hashes
  /// entries with program counters translated through \p R.  Shares the
  /// per-entry walk with hashFromScratch by construction; nullopt iff any
  /// entry's remap misses.
  std::optional<uint64_t> hash(const PcRemap &R) const;

  /// True iff any chunk is shared with another buffer copy (fork-side
  /// observability hook for tests).
  bool sharesChunks() const {
    for (const ChunkRef &R : Chunks)
      if (R.Ptr.use_count() > 1)
        return true;
    return false;
  }

  /// Bytes a copy of this buffer actually moves eagerly: the chunk-ref
  /// list and the fence list.  Shared chunk payloads are *not* counted —
  /// that is the point.
  size_t bytesPerCopy() const {
    return Chunks.size() * sizeof(ChunkRef) + Fences.size() * sizeof(BufIdx);
  }

  /// Bytes the pre-chunking flat layout would have copied for the same
  /// window: every live entry plus its contribution slot, plus fences.
  size_t bytesIfFlat() const {
    return size() * (sizeof(TransientInstr) + sizeof(uint64_t)) +
           Fences.size() * sizeof(BufIdx);
  }

private:
  static constexpr size_t ChunkShift = 2;
  static constexpr size_t ChunkMask = ChunkCap - 1;
  static_assert(ChunkCap == (size_t(1) << ChunkShift), "cap/shift mismatch");
  static_assert(ChunkCap <= 8, "pending masks are uint8_t");

  /// A block of ChunkCap entry slots starting at buffer index First.
  /// Immutable while shared: mut()/push() clone first (slots at or past a
  /// holder's open count are out of its live window and never read).  The
  /// memo array is a shared cache of per-slot contributions, written only
  /// with values derived from the slot's settled entry bytes — concurrent
  /// writers store bit-identical words, so the relaxed atomics are pure
  /// idempotent publication.
  struct Chunk {
    std::array<TransientInstr, ChunkCap> E;
    mutable std::array<std::atomic<uint64_t>, ChunkCap> Memo{};
    BufIdx First = 0;
  };

  /// Per-copy view of one chunk.  Folded is the XOR of the contributions
  /// of this chunk's live *folded* slots (a partition of EntryXor).
  /// Pending bit S set means slot S is live but its contribution is not
  /// in Folded/EntryXor — and its memo must not be trusted until the next
  /// fold rewrites it.
  struct ChunkRef {
    std::shared_ptr<Chunk> Ptr;
    uint64_t Folded = 0;
    uint8_t Pending = 0;
  };

  /// The per-(index, entry) fingerprint contribution.  Must stay in sync
  /// with the remap-aware variant in ReorderBuffer.cpp.
  static uint64_t contribution(BufIdx I, const TransientInstr &T) {
    return hashFields({I, T.hash()});
  }

  void copyFrom(const ReorderBuffer &O) {
    Fences = O.Fences;
    Chunks = O.Chunks;
    ChunkBase = O.ChunkBase;
    Base = O.Base;
    EntryXor = O.EntryXor;
    OpenN = O.OpenN;
    // Spare is deliberately not copied: it is this copy's private
    // allocation cache, not part of the buffer's value.
  }

  static std::shared_ptr<Chunk> newChunk() {
    return std::allocate_shared<Chunk>(detail::ChunkPoolAlloc<Chunk>());
  }

  /// Clones the first \p Filled slots of \p C (the rest are outside this
  /// copy's live window and stay default-constructed in the clone).
  static std::shared_ptr<Chunk> cloneChunk(const Chunk &C, size_t Filled) {
    std::shared_ptr<Chunk> Fresh = newChunk();
    for (size_t S = 0; S < Filled; ++S) {
      Fresh->E[S] = C.E[S];
      Fresh->Memo[S].store(C.Memo[S].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    }
    Fresh->First = C.First;
    return Fresh;
  }

  /// Live fence indices, ascending (fences issue in order).  Almost
  /// always empty or one element.
  std::vector<BufIdx> Fences;
  /// Chunks, oldest first; chunk K covers indices
  /// [ChunkBase + K*ChunkCap, ChunkBase + (K+1)*ChunkCap).  The last
  /// chunk is open: only its first OpenN slots are filled.  Inline
  /// capacity covers the default speculation window (bound 20 → at most
  /// 7 live chunks), so fork copies do not allocate.
  InlineVector<ChunkRef, 7> Chunks;
  /// Index of the first slot of the oldest chunk (== Base when no chunks
  /// exist).  <= Base; the gap is the dead prefix.
  BufIdx ChunkBase = 1;
  /// Index of the oldest live entry; 0 is the null sentinel.
  BufIdx Base = 1;
  /// XOR of contribution(I, at(I)) over all live *folded* slots.
  uint64_t EntryXor = 0;
  /// Filled slots in the last (open) chunk; in [1, ChunkCap] when chunks
  /// exist, 0 otherwise.
  uint32_t OpenN = 0;
  /// A fully-dead sole-owned chunk parked by popFront for reuse by the
  /// next chunk-open.  Private to this copy: never copied, never shared.
  std::shared_ptr<Chunk> Spare;
};

/// Renders the buffer one entry per line, "i -> <transient>", mirroring
/// the paper's figure layout.
std::string dumpReorderBuffer(const ReorderBuffer &Buf, const Program &P);

} // namespace sct

#endif // SCT_CORE_REORDERBUFFER_H
