//===- core/ReorderBuffer.h - The reorder buffer ---------------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reorder buffer `buf : N ⇀ TransInstr` (§3).  The paper's rules
/// "add and remove indices in a way that ensures that buf's domain will
/// always be contiguous"; this class makes that invariant structural: a
/// deque of entries plus the index of the first one.  Unlike the paper's
/// convention MIN(∅) = MAX(∅) = 0 (which makes indices restart at 1 after
/// a drain), indices here increase monotonically over a whole run and are
/// never reused — semantically equivalent (every rule compares indices
/// relatively) and unambiguous for recorded schedules.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CORE_REORDERBUFFER_H
#define SCT_CORE_REORDERBUFFER_H

#include "core/TransientInstr.h"

#include <deque>

namespace sct {

/// The reorder buffer.
class ReorderBuffer {
public:
  bool empty() const { return Entries.empty(); }
  size_t size() const { return Entries.size(); }

  /// MIN(buf); asserts non-empty.
  BufIdx minIndex() const {
    assert(!empty() && "minIndex of empty buffer");
    return Base;
  }

  /// MAX(buf); asserts non-empty.
  BufIdx maxIndex() const {
    assert(!empty() && "maxIndex of empty buffer");
    return Base + Entries.size() - 1;
  }

  /// The index the next push will occupy (MAX(buf) + 1).
  BufIdx nextIndex() const { return Base + Entries.size(); }

  bool contains(BufIdx I) const { return I >= Base && I < nextIndex(); }

  const TransientInstr &at(BufIdx I) const {
    assert(contains(I) && "buffer index out of range");
    return Entries[I - Base];
  }

  TransientInstr &at(BufIdx I) {
    assert(contains(I) && "buffer index out of range");
    return Entries[I - Base];
  }

  /// Appends \p T at MAX+1 and returns its index.  The entry's GroupLeader
  /// defaults to its own index if the caller left it unset (0).
  BufIdx push(TransientInstr T) {
    BufIdx I = nextIndex();
    if (T.GroupLeader == 0)
      T.GroupLeader = I;
    Entries.push_back(std::move(T));
    return I;
  }

  /// Removes the oldest entry (retire).
  void popFront() {
    assert(!empty() && "popFront of empty buffer");
    Entries.pop_front();
    ++Base;
  }

  /// Removes every entry with index >= \p I (rollback); \p I may be past
  /// the end, in which case nothing happens.
  void truncateFrom(BufIdx I) {
    if (empty() || I >= nextIndex())
      return;
    BufIdx Cut = I < Base ? Base : I;
    Entries.erase(Entries.begin() + (Cut - Base), Entries.end());
  }

  bool operator==(const ReorderBuffer &Other) const = default;

  /// Fingerprint over the base index and every entry, oldest first.  The
  /// base participates because buffer indices name entries in recorded
  /// schedules and forwarding dependencies, so shifted-but-identical
  /// contents are genuinely different states.
  uint64_t hash() const;

  /// Remap-aware variant: entries hash through \p R (see
  /// TransientInstr::hash(const PcRemap &)); nullopt iff any entry's
  /// program points have no image.
  std::optional<uint64_t> hash(const PcRemap &R) const;

private:
  std::deque<TransientInstr> Entries;
  BufIdx Base = 1; // The paper's examples number entries from 1.
};

/// Renders the buffer one entry per line, "i -> <transient>", mirroring
/// the paper's figure layout.
std::string dumpReorderBuffer(const ReorderBuffer &Buf, const Program &P);

} // namespace sct

#endif // SCT_CORE_REORDERBUFFER_H
