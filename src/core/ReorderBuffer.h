//===- core/ReorderBuffer.h - The reorder buffer ---------------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reorder buffer `buf : N ⇀ TransInstr` (§3).  The paper's rules
/// "add and remove indices in a way that ensures that buf's domain will
/// always be contiguous"; this class makes that invariant structural: a
/// flat slab of entries plus the index of the first live one.  Unlike the
/// paper's convention MIN(∅) = MAX(∅) = 0 (which makes indices restart at
/// 1 after a drain), indices here increase monotonically over a whole run
/// and are never reused — semantically equivalent (every rule compares
/// indices relatively) and unambiguous for recorded schedules.
///
/// **Storage.**  Entries live in one contiguous vector (`Slab`); retiring
/// advances a head offset instead of shifting elements, and the dead
/// prefix is compacted away once it dominates the slab.  A configuration
/// is copied at every schedule fork, and copying one flat block beats
/// copying a node-based deque's scattered chunks — this is part of the
/// engine's cache-locality rewrite (ARCHITECTURE.md, "memory layout &
/// allocation").  Reference stability is accordingly *weaker than deque*:
/// references returned by at() are invalidated by push(), popFront(), and
/// truncateFrom().  Machine.cpp's rules copy what they need before any of
/// those calls.
///
/// **Incremental fingerprint, lazily folded.**  hash() is an XOR-multiset
/// of avalanched per-entry contributions keyed by (index, entry hash).
/// Hashing a TransientInstr is the engine's measured hot spot, and most
/// entries are pushed, mutated, and retired between two fingerprint
/// probes — their hashes are never observed.  So contributions are
/// computed *lazily*: `Contrib[slot]` caches entry `slot`'s contribution,
/// with 0 meaning "pending" (not yet folded into `EntryXor`).  push()
/// records a pending slot without hashing; mut() un-folds the touched
/// slot back to pending; popFront()/truncateFrom() subtract exactly what
/// was folded.  A probe on a *mutable* buffer folds every pending live
/// slot first (memoizing it); the const overload computes pending
/// contributions on the fly without writing, so it stays safe to call
/// concurrently on a shared configuration (checkpoint rung verification).
/// A contribution that genuinely hashes to 0 merely stays pending and is
/// recomputed per probe — correct, just unmemoized.
/// tests/HashEquivalenceTest.cpp asserts hash() == hashFromScratch()
/// across randomized execute/rollback sequences.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CORE_REORDERBUFFER_H
#define SCT_CORE_REORDERBUFFER_H

#include "core/TransientInstr.h"
#include "support/Hashing.h"

#include <optional>
#include <vector>

namespace sct {

/// The reorder buffer.
class ReorderBuffer {
public:
  ReorderBuffer() = default;
  /// Copies take only the live suffix (the retired prefix is dead weight
  /// the original keeps merely to amortize its own compaction) and
  /// reserve a few slots of slack: a fork copies the parent's
  /// configuration and immediately pushes its probing steps, and an
  /// exact-fit copy would make that first push reallocate and re-copy
  /// the whole slab, doubling the per-fork cost for nothing.
  ReorderBuffer(const ReorderBuffer &O)
      : Fences(O.Fences), Base(O.Base), EntryXor(O.EntryXor) {
    Slab.reserve(O.size() + CopySlack);
    Slab.insert(Slab.end(), O.Slab.begin() + O.Head, O.Slab.end());
    Contrib.reserve(O.size() + CopySlack);
    Contrib.insert(Contrib.end(), O.Contrib.begin() + O.Head,
                   O.Contrib.end());
  }
  ReorderBuffer &operator=(const ReorderBuffer &O) {
    if (this == &O)
      return *this;
    Fences = O.Fences;
    Slab.clear();
    Slab.reserve(O.size() + CopySlack);
    Slab.insert(Slab.end(), O.Slab.begin() + O.Head, O.Slab.end());
    Contrib.clear();
    Contrib.reserve(O.size() + CopySlack);
    Contrib.insert(Contrib.end(), O.Contrib.begin() + O.Head,
                   O.Contrib.end());
    Head = 0;
    Base = O.Base;
    EntryXor = O.EntryXor;
    return *this;
  }
  ReorderBuffer(ReorderBuffer &&) = default;
  ReorderBuffer &operator=(ReorderBuffer &&) = default;

  bool empty() const { return Head == Slab.size(); }
  size_t size() const { return Slab.size() - Head; }

  /// MIN(buf); asserts non-empty.
  BufIdx minIndex() const {
    assert(!empty() && "minIndex of empty buffer");
    return Base;
  }

  /// MAX(buf); asserts non-empty.
  BufIdx maxIndex() const {
    assert(!empty() && "maxIndex of empty buffer");
    return Base + size() - 1;
  }

  /// The index the next push will occupy (MAX(buf) + 1).
  BufIdx nextIndex() const { return Base + size(); }

  bool contains(BufIdx I) const { return I >= Base && I < nextIndex(); }

  /// True iff a fence entry sits strictly before index \p I — the
  /// "∀j < i : buf(j) ≠ fence" premise of every execute rule (§3.6),
  /// answered O(1) from the maintained fence-index list instead of a
  /// per-execute scan of the live window.
  bool hasFenceBefore(BufIdx I) const {
    return !Fences.empty() && Fences.front() < I;
  }

  const TransientInstr &at(BufIdx I) const {
    assert(contains(I) && "buffer index out of range");
    return Slab[Head + (I - Base)];
  }

  /// Mutable access — the single chokepoint through which Machine.cpp
  /// rewrites entries in place.  Un-folds \p I's cached contribution (if
  /// any) back to pending, so the fingerprint never reflects a
  /// half-mutated entry.  Deliberately NOT an at() overload: reads on a
  /// non-const buffer should keep resolving to the const at() above
  /// rather than spuriously invalidating cached contributions.
  TransientInstr &mut(BufIdx I) {
    assert(contains(I) && "buffer index out of range");
    size_t S = Head + (I - Base);
    if (Contrib[S]) {
      EntryXor ^= Contrib[S];
      Contrib[S] = 0;
    }
    return Slab[S];
  }

  /// Appends \p T at MAX+1 and returns its index.  The entry's GroupLeader
  /// defaults to its own index if the caller left it unset (0).  The new
  /// entry starts pending — no hash is computed here.
  BufIdx push(TransientInstr T) {
    BufIdx I = nextIndex();
    if (T.GroupLeader == 0)
      T.GroupLeader = I;
    if (Head == Slab.size() && Head != 0) {
      // Empty with a dead prefix: restart the slab for free.
      Slab.clear();
      Contrib.clear();
      Head = 0;
    }
    if (T.is(TransientKind::Fence))
      Fences.push_back(I); // Pushes ascend, so Fences stays sorted.
    Slab.push_back(std::move(T));
    Contrib.push_back(0);
    return I;
  }

  /// Removes the oldest entry (retire).
  void popFront() {
    assert(!empty() && "popFront of empty buffer");
    EntryXor ^= Contrib[Head]; // 0 if pending: nothing was folded.
    if (!Fences.empty() && Fences.front() == Base)
      Fences.erase(Fences.begin());
    ++Head;
    ++Base;
    compact();
  }

  /// Removes every entry with index >= \p I (rollback); \p I may be past
  /// the end, in which case nothing happens.
  void truncateFrom(BufIdx I) {
    if (empty() || I >= nextIndex())
      return;
    BufIdx Cut = I < Base ? Base : I;
    size_t S = Head + (Cut - Base);
    for (size_t J = S; J < Slab.size(); ++J)
      EntryXor ^= Contrib[J]; // 0 if pending: nothing was folded.
    while (!Fences.empty() && Fences.back() >= Cut)
      Fences.pop_back();
    Slab.erase(Slab.begin() + S, Slab.end());
    Contrib.erase(Contrib.begin() + S, Contrib.end());
  }

  bool operator==(const ReorderBuffer &Other) const {
    if (Base != Other.Base || size() != Other.size())
      return false;
    for (size_t I = 0; I < size(); ++I)
      if (!(Slab[Head + I] == Other.Slab[Other.Head + I]))
        return false;
    return true;
  }

  /// Fingerprint over the base index and every entry.  The base
  /// participates because buffer indices name entries in recorded
  /// schedules and forwarding dependencies, so shifted-but-identical
  /// contents are genuinely different states.  On a mutable buffer this
  /// folds (and memoizes) every pending contribution first; cost is one
  /// entry hash per slot touched since the previous probe.
  uint64_t hash() {
    foldPending();
    return hashFields({Base, size(), EntryXor});
  }

  /// Const overload: computes pending contributions on the fly without
  /// memoizing them; never writes, so it is safe to call concurrently on
  /// a shared configuration.
  uint64_t hash() const {
    uint64_t Xor = EntryXor;
    for (size_t S = Head; S < Slab.size(); ++S)
      if (!Contrib[S])
        Xor ^= contribution(Base + (S - Head), Slab[S]);
    return hashFields({Base, size(), Xor});
  }

  /// Folds every pending live slot's contribution into the running
  /// fingerprint (hash() on a mutable buffer does this automatically).
  void foldPending() {
    for (size_t S = Head; S < Slab.size(); ++S)
      if (!Contrib[S]) {
        Contrib[S] = contribution(Base + (S - Head), Slab[S]);
        EntryXor ^= Contrib[S];
      }
  }

  /// Recomputes hash() by walking every entry (the verification oracle
  /// for the incremental fingerprint; O(entries)).
  uint64_t hashFromScratch() const;

  /// Remap-aware variant: entries hash through \p R (see
  /// TransientInstr::hash(const PcRemap &)); nullopt iff any entry's
  /// program points have no image.  Always a full walk; under an identity
  /// remap it equals hash() — tests pin this.
  std::optional<uint64_t> hash(const PcRemap &R) const;

private:
  /// Extra slots reserved by copies; covers a fork's probing pushes.
  static constexpr size_t CopySlack = 4;

  /// Entry \p I's term in the XOR-multiset fingerprint.
  static uint64_t contribution(BufIdx I, const TransientInstr &T) {
    return hashFields({I, T.hash()});
  }

  /// Drops the dead prefix once it dominates the slab, keeping copies of
  /// this buffer (every schedule fork) from paying for retired entries.
  void compact() {
    if (Head >= 16 && Head * 2 >= Slab.size()) {
      Slab.erase(Slab.begin(), Slab.begin() + Head);
      Contrib.erase(Contrib.begin(), Contrib.begin() + Head);
      Head = 0;
    }
  }

  /// Live fence entries' indices, ascending (usually empty: only
  /// mitigated programs fetch fences).  Backs hasFenceBefore().
  std::vector<BufIdx> Fences;
  /// Live entries are Slab[Head..]; indices Base..Base+size()-1.
  std::vector<TransientInstr> Slab;
  /// Contrib[slot] caches Slab[slot]'s folded contribution; 0 = pending.
  std::vector<uint64_t> Contrib;
  size_t Head = 0;
  BufIdx Base = 1; // The paper's examples number entries from 1.
  /// XOR of the cached (nonzero) contributions over live entries.
  uint64_t EntryXor = 0;
};

/// Renders the buffer one entry per line, "i -> <transient>", mirroring
/// the paper's figure layout.
std::string dumpReorderBuffer(const ReorderBuffer &Buf, const Program &P);

} // namespace sct

#endif // SCT_CORE_REORDERBUFFER_H
