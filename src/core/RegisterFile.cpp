//===- core/RegisterFile.cpp - The register map ρ ---------------------------===//

#include "core/RegisterFile.h"

#include "support/Hashing.h"

using namespace sct;

uint64_t RegisterFile::contribution(uint64_t I, const Value &V) {
  return hashFields({I, V.Bits, V.Taint.mask()});
}

uint64_t RegisterFile::hash() const {
  return hashFields({Values.size(), RegXor});
}

uint64_t RegisterFile::hashFromScratch() const {
  uint64_t Xor = 0;
  for (size_t I = 0; I < Values.size(); ++I)
    Xor ^= contribution(I, Values[I]);
  return hashFields({Values.size(), Xor});
}

bool RegisterFile::lowEquivalent(const RegisterFile &Other) const {
  if (Values.size() != Other.Values.size())
    return false;
  for (size_t I = 0; I < Values.size(); ++I) {
    if (Values[I].Taint != Other.Values[I].Taint)
      return false;
    if (Values[I].isPublic() && Values[I].Bits != Other.Values[I].Bits)
      return false;
  }
  return true;
}
