//===- core/RegisterFile.cpp - The register map ρ ---------------------------===//

#include "core/RegisterFile.h"

using namespace sct;

bool RegisterFile::lowEquivalent(const RegisterFile &Other) const {
  if (Values.size() != Other.Values.size())
    return false;
  for (size_t I = 0; I < Values.size(); ++I) {
    if (Values[I].Taint != Other.Values[I].Taint)
      return false;
    if (Values[I].isPublic() && Values[I].Bits != Other.Values[I].Bits)
      return false;
  }
  return true;
}
