//===- core/RegisterFile.cpp - The register map ρ ---------------------------===//

#include "core/RegisterFile.h"

#include "support/Hashing.h"

using namespace sct;

uint64_t RegisterFile::hash() const {
  uint64_t H = hashCombine(HashSeed, Values.size());
  for (const Value &V : Values) {
    H = hashCombine(H, V.Bits);
    H = hashCombine(H, V.Taint.mask());
  }
  return H;
}

bool RegisterFile::lowEquivalent(const RegisterFile &Other) const {
  if (Values.size() != Other.Values.size())
    return false;
  for (size_t I = 0; I < Values.size(); ++I) {
    if (Values[I].Taint != Other.Values[I].Taint)
      return false;
    if (Values[I].isPublic() && Values[I].Bits != Other.Values[I].Bits)
      return false;
  }
  return true;
}
