//===- core/ReorderBuffer.cpp - The reorder buffer --------------------------===//

#include "core/ReorderBuffer.h"

namespace sct {

std::string dumpReorderBuffer(const ReorderBuffer &Buf, const Program &P) {
  std::string Out;
  if (Buf.empty())
    return "  (empty)\n";
  for (BufIdx I = Buf.minIndex(); I <= Buf.maxIndex(); ++I)
    Out += "  " + std::to_string(I) + " -> " + Buf.at(I).str(P) + "\n";
  return Out;
}

} // namespace sct
