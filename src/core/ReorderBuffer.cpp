//===- core/ReorderBuffer.cpp - The reorder buffer --------------------------===//

#include "core/ReorderBuffer.h"

#include "support/Hashing.h"

namespace sct {

uint64_t ReorderBuffer::hash() const {
  uint64_t H = hashCombine(HashSeed, Base);
  H = hashCombine(H, Entries.size());
  for (const TransientInstr &T : Entries)
    H = hashCombine(H, T.hash());
  return H;
}

std::optional<uint64_t> ReorderBuffer::hash(const PcRemap &R) const {
  uint64_t H = hashCombine(HashSeed, Base);
  H = hashCombine(H, Entries.size());
  for (const TransientInstr &T : Entries) {
    std::optional<uint64_t> TH = T.hash(R);
    if (!TH)
      return std::nullopt;
    H = hashCombine(H, *TH);
  }
  return H;
}

std::string dumpReorderBuffer(const ReorderBuffer &Buf, const Program &P) {
  std::string Out;
  if (Buf.empty())
    return "  (empty)\n";
  for (BufIdx I = Buf.minIndex(); I <= Buf.maxIndex(); ++I)
    Out += "  " + std::to_string(I) + " -> " + Buf.at(I).str(P) + "\n";
  return Out;
}

} // namespace sct
