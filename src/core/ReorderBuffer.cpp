//===- core/ReorderBuffer.cpp - The reorder buffer --------------------------===//

#include "core/ReorderBuffer.h"

#include "support/Hashing.h"

namespace sct {

uint64_t ReorderBuffer::hashFromScratch() const {
  uint64_t Xor = 0;
  if (!empty())
    for (BufIdx I = minIndex(); I <= maxIndex(); ++I)
      Xor ^= contribution(I, at(I));
  return hashFields({Base, size(), Xor});
}

std::optional<uint64_t> ReorderBuffer::hash(const PcRemap &R) const {
  uint64_t Xor = 0;
  if (!empty())
    for (BufIdx I = minIndex(); I <= maxIndex(); ++I) {
      std::optional<uint64_t> TH = at(I).hash(R);
      if (!TH)
        return std::nullopt;
      Xor ^= hashFields({I, *TH});
    }
  return hashFields({Base, size(), Xor});
}

std::string dumpReorderBuffer(const ReorderBuffer &Buf, const Program &P) {
  std::string Out;
  if (Buf.empty())
    return "  (empty)\n";
  for (BufIdx I = Buf.minIndex(); I <= Buf.maxIndex(); ++I)
    Out += "  " + std::to_string(I) + " -> " + Buf.at(I).str(P) + "\n";
  return Out;
}

} // namespace sct
