//===- core/Directive.cpp - Attacker directives -----------------------------===//

#include "core/Directive.h"

using namespace sct;

std::string Directive::str() const {
  switch (K) {
  case Kind::Fetch:
    return "fetch";
  case Kind::FetchBool:
    return Guess ? "fetch: true" : "fetch: false";
  case Kind::FetchTarget:
    return "fetch: " + std::to_string(Target);
  case Kind::Execute:
    return "execute " + std::to_string(Idx);
  case Kind::ExecuteValue:
    return "execute " + std::to_string(Idx) + " : value";
  case Kind::ExecuteAddr:
    return "execute " + std::to_string(Idx) + " : addr";
  case Kind::ExecuteFwd:
    return "execute " + std::to_string(Idx) + " : fwd " +
           std::to_string(FwdFrom);
  case Kind::Retire:
    return "retire";
  }
  return "<invalid>";
}
