//===- core/Machine.cpp - The small-step speculative semantics -------------===//

#include "core/Machine.h"

using namespace sct;

std::string_view sct::ruleName(RuleId R) {
  switch (R) {
  case RuleId::SimpleFetch:
    return "simple-fetch";
  case RuleId::CondFetch:
    return "cond-fetch";
  case RuleId::JmpiFetch:
    return "jmpi-fetch";
  case RuleId::CallFetch:
    return "call-direct-fetch";
  case RuleId::CallIFetch:
    return "calli-fetch";
  case RuleId::RetFetchRsb:
    return "ret-fetch-rsb";
  case RuleId::RetFetchRsbEmpty:
    return "ret-fetch-rsb-empty";
  case RuleId::OpExecute:
    return "op-execute";
  case RuleId::CondExecuteCorrect:
    return "cond-execute-correct";
  case RuleId::CondExecuteIncorrect:
    return "cond-execute-incorrect";
  case RuleId::LoadExecuteNodep:
    return "load-execute-nodep";
  case RuleId::LoadExecuteForward:
    return "load-execute-forward";
  case RuleId::LoadExecuteFwdGuessed:
    return "load-execute-forwarded-guessed";
  case RuleId::LoadExecuteAddrOk:
    return "load-execute-addr-ok";
  case RuleId::LoadExecuteAddrHazard:
    return "load-execute-addr-hazard";
  case RuleId::LoadExecuteAddrMemMatch:
    return "load-execute-addr-mem-match";
  case RuleId::LoadExecuteAddrMemHazard:
    return "load-execute-addr-mem-hazard";
  case RuleId::StoreExecuteValue:
    return "store-execute-value";
  case RuleId::StoreExecuteAddrOk:
    return "store-execute-addr-ok";
  case RuleId::StoreExecuteAddrHazard:
    return "store-execute-addr-hazard";
  case RuleId::JmpiExecuteCorrect:
    return "jmpi-execute-correct";
  case RuleId::JmpiExecuteIncorrect:
    return "jmpi-execute-incorrect";
  case RuleId::ValueRetire:
    return "value-retire";
  case RuleId::JumpRetire:
    return "jump-retire";
  case RuleId::StoreRetire:
    return "store-retire";
  case RuleId::FenceRetire:
    return "fence-retire";
  case RuleId::CallRetire:
    return "call-retire";
  case RuleId::RetRetire:
    return "ret-retire";
  }
  return "<invalid>";
}

namespace {

std::optional<StepOutcome> fail(std::string *WhyNot, std::string Reason) {
  if (WhyNot)
    *WhyNot = std::move(Reason);
  return std::nullopt;
}

StepOutcome ok(RuleId Rule, Observation Obs = Observation::none()) {
  return {Obs, Rule};
}

} // namespace

//===----------------------------------------------------------------------===//
// Register resolution (Figure 3 + §3.5 extension)
//===----------------------------------------------------------------------===//

std::optional<Value> Machine::resolveReg(const Configuration &C, BufIdx I,
                                         Reg R) const {
  const ReorderBuffer &Buf = C.Buf;
  std::optional<Value> Res;
  bool Found = Buf.scanReverse(
      Buf.minIndex(), I, [&](BufIdx, const TransientInstr &T) {
        if (!T.assignsReg(R))
          return false;
        switch (T.Kind) {
        case TransientKind::ResolvedValue:
        case TransientKind::LoadResolved:
          Res = T.Val;
          break;
        case TransientKind::LoadGuessed:
          // §3.5: a partially resolved load supplies its predicted value.
          Res = T.Val;
          break;
        default:
          // Latest assignment is unresolved: (buf +i ρ)(r) = ⊥.
          break;
        }
        return true;
      });
  if (Found)
    return Res;
  // No pending assignment: fall through to the register map ρ.
  return C.Regs.get(R);
}

std::optional<Value> Machine::resolveOperand(const Configuration &C, BufIdx I,
                                             const Operand &Op) const {
  if (Op.isImm())
    return Value::pub(Op.getImm());
  return resolveReg(C, I, Op.getReg());
}

std::optional<InlineVector<Value, 4>>
Machine::resolveOperands(const Configuration &C, BufIdx I,
                         std::span<const Operand> Ops) const {
  InlineVector<Value, 4> Values;
  for (const Operand &Op : Ops) {
    auto V = resolveOperand(C, I, Op);
    if (!V)
      return std::nullopt;
    Values.push_back(*V);
  }
  return Values;
}

bool Machine::fenceBefore(const ReorderBuffer &Buf, BufIdx I) {
  return Buf.hasFenceBefore(I);
}

//===----------------------------------------------------------------------===//
// Rollback
//===----------------------------------------------------------------------===//

PC Machine::rollbackTo(Configuration &C, BufIdx K) const {
  assert(C.Buf.contains(K) && "rollback target not in buffer");
  // Widen into call/ret expansion groups: their hidden transients have no
  // fetchable program point of their own, so restarting must re-fetch the
  // whole call/ret (see DESIGN.md §4).
  BufIdx Leader = C.Buf.at(K).GroupLeader;
  if (Leader < K)
    K = Leader;
  PC Origin = C.Buf.at(K).Origin;
  C.Buf.truncateFrom(K);
  C.Rsb.rollbackFrom(K);
  return Origin;
}

//===----------------------------------------------------------------------===//
// Step dispatch
//===----------------------------------------------------------------------===//

std::optional<StepOutcome> Machine::step(Configuration &C, const Directive &D,
                                         std::string *WhyNot) const {
  if (D.isFetch())
    return stepFetch(C, D, WhyNot);
  if (D.isExecute())
    return stepExecute(C, D, WhyNot);
  return stepRetire(C, WhyNot);
}

//===----------------------------------------------------------------------===//
// Fetch stage
//===----------------------------------------------------------------------===//

std::optional<StepOutcome> Machine::stepFetch(Configuration &C,
                                              const Directive &D,
                                              std::string *WhyNot) const {
  if (!Prog.contains(C.N))
    return fail(WhyNot, "no instruction at program point " +
                            std::to_string(C.N));
  const Instruction &I = Prog.at(C.N);

  switch (I.kind()) {
  case InstrKind::Op:
  case InstrKind::Load:
  case InstrKind::Store:
  case InstrKind::Fence: {
    // Rule simple-fetch.
    if (D.K != Directive::Kind::Fetch)
      return fail(WhyNot, "instruction takes a plain fetch directive");
    TransientInstr T;
    switch (I.kind()) {
    case InstrKind::Op:
      T = TransientInstr::makeOp(I.dest(), I.opcode(), I.args(), C.N);
      break;
    case InstrKind::Load:
      T = TransientInstr::makeLoad(I.dest(), I.args(), C.N);
      break;
    case InstrKind::Store:
      T = TransientInstr::makeStore(I.storeValue(), I.args(), C.N);
      break;
    default:
      T = TransientInstr::makeFence(C.N);
      break;
    }
    C.Buf.push(std::move(T));
    C.N = I.next();
    return ok(RuleId::SimpleFetch);
  }

  case InstrKind::Branch: {
    // Rule cond-fetch: the directive's guess picks the speculative path.
    if (D.K != Directive::Kind::FetchBool)
      return fail(WhyNot, "conditional branch takes fetch: true/false");
    PC Chosen = D.Guess ? I.trueTarget() : I.falseTarget();
    C.Buf.push(TransientInstr::makeBranch(I.opcode(), I.args(), Chosen,
                                          I.trueTarget(), I.falseTarget(),
                                          C.N));
    C.N = Chosen;
    return ok(RuleId::CondFetch);
  }

  case InstrKind::JumpI: {
    // Rule jmpi-fetch: the directive supplies the predicted target.
    if (D.K != Directive::Kind::FetchTarget)
      return fail(WhyNot, "indirect jump takes fetch: n");
    C.Buf.push(TransientInstr::makeJumpI(I.args(), D.Target, C.N));
    C.N = D.Target;
    return ok(RuleId::JmpiFetch);
  }

  case InstrKind::Call: {
    // Rule call-direct-fetch: marker + rsp bump + return-address store;
    // push the return point onto the RSB.
    if (D.K != Directive::Kind::Fetch)
      return fail(WhyNot, "call takes a plain fetch directive");
    PC RetPoint = I.next();
    BufIdx Leader =
        C.Buf.push(TransientInstr::makeCallMarker(C.N));
    TransientInstr Bump = TransientInstr::makeOp(
        Reg::sp(), Opcode::Succ, {Operand::reg(Reg::sp())}, C.N);
    Bump.GroupLeader = Leader;
    C.Buf.push(std::move(Bump));
    TransientInstr Save = TransientInstr::makeStore(
        Operand::imm(RetPoint), {Operand::reg(Reg::sp())}, C.N);
    Save.GroupLeader = Leader;
    C.Buf.push(std::move(Save));
    C.Rsb.push(Leader, RetPoint);
    C.N = I.callee();
    return ok(RuleId::CallFetch);
  }

  case InstrKind::CallI: {
    // Indirect call (the extension App. A.1 sketches): the call group of
    // call-direct-fetch plus a jmpi transient that validates the
    // directive-predicted callee, exactly as jmpi-fetch would.
    if (D.K != Directive::Kind::FetchTarget)
      return fail(WhyNot, "calli takes fetch: n");
    PC RetPoint = I.next();
    BufIdx Leader = C.Buf.push(TransientInstr::makeCallMarker(C.N));
    TransientInstr Bump = TransientInstr::makeOp(
        Reg::sp(), Opcode::Succ, {Operand::reg(Reg::sp())}, C.N);
    Bump.GroupLeader = Leader;
    C.Buf.push(std::move(Bump));
    TransientInstr Save = TransientInstr::makeStore(
        Operand::imm(RetPoint), {Operand::reg(Reg::sp())}, C.N);
    Save.GroupLeader = Leader;
    C.Buf.push(std::move(Save));
    TransientInstr Jump = TransientInstr::makeJumpI(I.args(), D.Target, C.N);
    Jump.GroupLeader = Leader;
    C.Buf.push(std::move(Jump));
    C.Rsb.push(Leader, RetPoint);
    C.N = D.Target;
    return ok(RuleId::CallIFetch);
  }

  case InstrKind::Ret: {
    // Rules ret-fetch-rsb / ret-fetch-rsb-empty: marker + return-address
    // load + rsp drop + indirect jump predicted through the RSB.
    std::optional<PC> Predicted;
    RuleId Rule = RuleId::RetFetchRsb;
    switch (Opts.RsbOnEmpty) {
    case RsbPolicy::Circular:
      Predicted = C.Rsb.topCircular(Opts.RsbCircularSize);
      break;
    case RsbPolicy::AttackerChoice:
    case RsbPolicy::Stall:
      Predicted = C.Rsb.top();
      break;
    }
    if (Predicted) {
      if (D.K != Directive::Kind::Fetch)
        return fail(WhyNot, "ret takes a plain fetch while the RSB predicts");
    } else {
      if (Opts.RsbOnEmpty == RsbPolicy::Stall)
        return fail(WhyNot, "RSB empty and the machine refuses to speculate");
      if (D.K != Directive::Kind::FetchTarget)
        return fail(WhyNot, "ret with empty RSB takes fetch: n");
      Predicted = D.Target;
      Rule = RuleId::RetFetchRsbEmpty;
    }

    BufIdx Leader = C.Buf.push(TransientInstr::makeRetMarker(C.N));
    TransientInstr LoadRet = TransientInstr::makeLoad(
        Reg::tmp(), {Operand::reg(Reg::sp())}, C.N);
    LoadRet.GroupLeader = Leader;
    C.Buf.push(std::move(LoadRet));
    TransientInstr Drop = TransientInstr::makeOp(
        Reg::sp(), Opcode::Pred, {Operand::reg(Reg::sp())}, C.N);
    Drop.GroupLeader = Leader;
    C.Buf.push(std::move(Drop));
    TransientInstr Jump = TransientInstr::makeJumpI(
        {Operand::reg(Reg::tmp())}, *Predicted, C.N);
    Jump.GroupLeader = Leader;
    C.Buf.push(std::move(Jump));
    C.Rsb.pop(Leader);
    C.N = *Predicted;
    return ok(Rule);
  }
  }
  return fail(WhyNot, "unknown instruction kind");
}

//===----------------------------------------------------------------------===//
// Execute stage
//===----------------------------------------------------------------------===//

std::optional<StepOutcome> Machine::stepExecute(Configuration &C,
                                                const Directive &D,
                                                std::string *WhyNot) const {
  BufIdx I = D.Idx;
  if (!C.Buf.contains(I))
    return fail(WhyNot, "no buffer entry at index " + std::to_string(I));
  if (fenceBefore(C.Buf, I))
    return fail(WhyNot, "an earlier fence blocks execution");

  TransientInstr &T = C.Buf.mut(I);
  switch (T.Kind) {
  case TransientKind::Op: {
    if (D.K != Directive::Kind::Execute)
      return fail(WhyNot, "op takes a plain execute directive");
    auto Args = resolveOperands(C, I, T.Args);
    if (!Args)
      return fail(WhyNot, "op operands are unresolved");
    Value V = evalOp(T.Opc, *Args, Opts);
    BufIdx Leader = T.GroupLeader; // Call/ret group membership survives.
    T = TransientInstr::makeResolvedValue(T.Dest, V, T.Origin);
    T.GroupLeader = Leader;
    return ok(RuleId::OpExecute);
  }

  case TransientKind::Branch: {
    if (D.K != Directive::Kind::Execute)
      return fail(WhyNot, "branch takes a plain execute directive");
    auto Args = resolveOperands(C, I, T.Args);
    if (!Args)
      return fail(WhyNot, "branch condition operands are unresolved");
    Value Cond = evalOp(T.Opc, *Args, Opts);
    PC Actual = truthy(Cond) ? T.NTrue : T.NFalse;
    Value Leak(Actual, Cond.Taint);
    if (Actual == T.N0) {
      // Rule cond-execute-correct.
      PC Origin = T.Origin;
      BufIdx Leader = T.GroupLeader;
      T = TransientInstr::makeJump(Actual, Origin);
      T.GroupLeader = Leader;
      return ok(RuleId::CondExecuteCorrect, Observation::jump(Leak));
    }
    // Rule cond-execute-incorrect: discard this entry and everything
    // younger, then re-insert the resolved jump at the same index.
    PC Origin = T.Origin;
    C.Buf.truncateFrom(I);
    C.Rsb.rollbackFrom(I);
    C.Buf.push(TransientInstr::makeJump(Actual, Origin));
    C.N = Actual;
    return ok(RuleId::CondExecuteIncorrect,
              Observation::jump(Leak, /*Rollback=*/true));
  }

  case TransientKind::JumpI: {
    if (D.K != Directive::Kind::Execute)
      return fail(WhyNot, "jmpi takes a plain execute directive");
    auto Args = resolveOperands(C, I, T.Args);
    if (!Args)
      return fail(WhyNot, "jmpi target operands are unresolved");
    Value Target = evalAddr(*Args, Opts);
    PC Actual = static_cast<PC>(Target.Bits);
    Value Leak(Actual, Target.Taint);
    if (Actual == T.N0) {
      // Rule jmpi-execute-correct.
      PC Origin = T.Origin;
      BufIdx Leader = T.GroupLeader;
      T = TransientInstr::makeJump(Actual, Origin);
      T.GroupLeader = Leader;
      return ok(RuleId::JmpiExecuteCorrect, Observation::jump(Leak));
    }
    // Rule jmpi-execute-incorrect.
    PC Origin = T.Origin;
    BufIdx Leader = T.GroupLeader;
    C.Buf.truncateFrom(I);
    C.Rsb.rollbackFrom(I);
    TransientInstr J = TransientInstr::makeJump(Actual, Origin);
    J.GroupLeader = Leader; // A ret-group jmpi stays in its group.
    C.Buf.push(std::move(J));
    C.N = Actual;
    return ok(RuleId::JmpiExecuteIncorrect,
              Observation::jump(Leak, /*Rollback=*/true));
  }

  case TransientKind::Load: {
    if (D.K == Directive::Kind::ExecuteFwd) {
      // Rule load-execute-forwarded-guessed (§3.5): the attacker picks any
      // earlier store with a resolved value; its address may be unknown.
      BufIdx J = D.FwdFrom;
      if (J >= I || !C.Buf.contains(J))
        return fail(WhyNot, "fwd source must be an earlier buffer entry");
      const TransientInstr &S = C.Buf.at(J);
      if (!S.is(TransientKind::Store) || !S.StoreValIsResolved)
        return fail(WhyNot, "fwd source is not a value-resolved store");
      T.Kind = TransientKind::LoadGuessed;
      T.Val = S.StoreResolvedVal;
      T.Dep = J;
      return ok(RuleId::LoadExecuteFwdGuessed);
    }
    if (D.K != Directive::Kind::Execute)
      return fail(WhyNot, "load takes execute or execute: fwd");
    auto Args = resolveOperands(C, I, T.Args);
    if (!Args)
      return fail(WhyNot, "load address operands are unresolved");
    Value Addr = evalAddr(*Args, Opts);
    uint64_t A = Addr.Bits;

    // Latest earlier store with a resolved address equal to a.
    std::optional<BufIdx> Match;
    C.Buf.scanReverse(C.Buf.minIndex(), I,
                      [&](BufIdx J, const TransientInstr &S) {
                        if (!S.isStoreToAddr(A))
                          return false;
                        Match = J;
                        return true;
                      });

    if (!Match) {
      // Rule load-execute-nodep: no matching store; read from memory.
      // Stores with *unresolved* addresses do not block — the Spectre v4
      // behaviour of Figure 7.
      Value V = C.Mem.load(A);
      T.Kind = TransientKind::LoadResolved;
      T.Val = V;
      T.Dep = std::nullopt;
      T.LoadAddr = A;
      return ok(RuleId::LoadExecuteNodep, Observation::read(Addr));
    }
    const TransientInstr &S = C.Buf.at(*Match);
    if (!S.StoreValIsResolved)
      return fail(WhyNot,
                  "matching store's value is unresolved; load must wait");
    // Rule load-execute-forward: forward without touching memory.
    T.Kind = TransientKind::LoadResolved;
    T.Val = S.StoreResolvedVal;
    T.Dep = *Match;
    T.LoadAddr = A;
    return ok(RuleId::LoadExecuteForward, Observation::fwd(Addr));
  }

  case TransientKind::LoadGuessed: {
    if (D.K != Directive::Kind::Execute)
      return fail(WhyNot, "guessed load takes a plain execute directive");
    auto Args = resolveOperands(C, I, T.Args);
    if (!Args)
      return fail(WhyNot, "load address operands are unresolved");
    Value Addr = evalAddr(*Args, Opts);
    uint64_t A = Addr.Bits;
    BufIdx J = *T.Dep;

    if (C.Buf.contains(J)) {
      // The originating store is still in flight.
      const TransientInstr &S = C.Buf.at(J);
      bool AddrMismatch = S.StoreAddrIsResolved && S.StoreAddr.Bits != A;
      bool Intervening = C.Buf.scanReverse(
          J + 1, I, [&](BufIdx, const TransientInstr &S) {
            return S.isStoreToAddr(A);
          });
      if (!AddrMismatch && !Intervening) {
        // Rule load-execute-addr-ok.
        T.Kind = TransientKind::LoadResolved;
        T.LoadAddr = A;
        return ok(RuleId::LoadExecuteAddrOk, Observation::fwd(Addr));
      }
      // Rule load-execute-addr-hazard: discard this load and everything
      // younger; restart at the load's own program point.
      PC Restart = rollbackTo(C, I);
      C.N = Restart;
      return ok(RuleId::LoadExecuteAddrHazard,
                Observation::fwd(Addr, /*Rollback=*/true));
    }

    // The originating store already retired: validate against memory.
    if (C.Buf.scanReverse(C.Buf.minIndex(), I,
                          [&](BufIdx, const TransientInstr &S) {
                            return S.isStoreToAddr(A);
                          }))
      return fail(WhyNot, "an earlier in-flight store to the same address "
                          "must retire first");
    Value V = C.Mem.load(A);
    if (V == T.Val) {
      // Rule load-execute-addr-mem-match.
      T.Kind = TransientKind::LoadResolved;
      T.Val = V;
      T.Dep = std::nullopt;
      T.LoadAddr = A;
      return ok(RuleId::LoadExecuteAddrMemMatch, Observation::read(Addr));
    }
    // Rule load-execute-addr-mem-hazard.
    PC Restart = rollbackTo(C, I);
    C.N = Restart;
    return ok(RuleId::LoadExecuteAddrMemHazard,
              Observation::read(Addr, /*Rollback=*/true));
  }

  case TransientKind::Store: {
    if (D.K == Directive::Kind::ExecuteValue) {
      // Rule store-execute-value.
      if (T.StoreValIsResolved)
        return fail(WhyNot, "store value already resolved");
      auto V = resolveOperand(C, I, T.StoreVal);
      if (!V)
        return fail(WhyNot, "store value operand is unresolved");
      T.StoreValIsResolved = true;
      T.StoreResolvedVal = *V;
      return ok(RuleId::StoreExecuteValue);
    }
    if (D.K != Directive::Kind::ExecuteAddr)
      return fail(WhyNot, "store takes execute: value or execute: addr");
    if (T.StoreAddrIsResolved)
      return fail(WhyNot, "store address already resolved");
    auto Args = resolveOperands(C, I, T.Args);
    if (!Args)
      return fail(WhyNot, "store address operands are unresolved");
    Value Addr = evalAddr(*Args, Opts);
    uint64_t A = Addr.Bits;

    // Scan younger resolved loads {j_k, a_k} for forwarding mistakes:
    // (a_k = a ∧ j_k < i) — the load read stale data (⊥ counts as < i) —
    // or (j_k = i ∧ a_k ≠ a) — the load took this store's data for the
    // wrong address.
    std::optional<BufIdx> Hazard;
    for (BufIdx K = I + 1; !C.Buf.empty() && K <= C.Buf.maxIndex(); ++K) {
      const TransientInstr &L = C.Buf.at(K);
      if (!L.is(TransientKind::LoadResolved))
        continue;
      bool DepBeforeStore = !L.Dep || *L.Dep < I;
      if ((L.LoadAddr == A && DepBeforeStore) ||
          (L.Dep && *L.Dep == I && L.LoadAddr != A)) {
        Hazard = K;
        break;
      }
    }

    T.StoreAddrIsResolved = true;
    T.StoreAddr = Addr;
    if (!Hazard)
      // Rule store-execute-addr-ok.
      return ok(RuleId::StoreExecuteAddrOk, Observation::fwd(Addr));
    // Rule store-execute-addr-hazard: restart at the earliest wronged
    // load's program point; the store itself (index i < k) survives.
    PC Restart = rollbackTo(C, *Hazard);
    C.N = Restart;
    return ok(RuleId::StoreExecuteAddrHazard,
              Observation::fwd(Addr, /*Rollback=*/true));
  }

  case TransientKind::ResolvedValue:
  case TransientKind::LoadResolved:
  case TransientKind::Jump:
    return fail(WhyNot, "entry is already resolved");
  case TransientKind::CallMarker:
  case TransientKind::RetMarker:
  case TransientKind::Fence:
    return fail(WhyNot, "entry has no execute step");
  }
  return fail(WhyNot, "unknown transient kind");
}

//===----------------------------------------------------------------------===//
// Retire stage
//===----------------------------------------------------------------------===//

std::optional<StepOutcome> Machine::stepRetire(Configuration &C,
                                               std::string *WhyNot) const {
  if (C.Buf.empty())
    return fail(WhyNot, "nothing to retire");
  BufIdx I = C.Buf.minIndex();
  const TransientInstr &T = C.Buf.at(I);

  switch (T.Kind) {
  case TransientKind::ResolvedValue:
  case TransientKind::LoadResolved: {
    // Rule value-retire (covers resolved loads: the annotations drop).
    C.Regs.set(T.Dest, T.Val);
    C.Buf.popFront();
    return ok(RuleId::ValueRetire);
  }

  case TransientKind::Jump:
    // Rule jump-retire.
    C.Buf.popFront();
    return ok(RuleId::JumpRetire);

  case TransientKind::Store: {
    // Rule store-retire.
    if (!T.isResolvedStore())
      return fail(WhyNot, "store not fully resolved");
    Value Addr = T.StoreAddr;
    C.Mem.store(Addr.Bits, T.StoreResolvedVal);
    C.Buf.popFront();
    return ok(RuleId::StoreRetire, Observation::write(Addr));
  }

  case TransientKind::Fence:
    // Rule fence-retire.
    C.Buf.popFront();
    return ok(RuleId::FenceRetire);

  case TransientKind::CallMarker: {
    // Rule call-retire: the marker, the rsp bump, and the return-address
    // store retire together; an indirect call's group additionally holds
    // the resolved callee jump.
    if (!C.Buf.contains(I + 2))
      return fail(WhyNot, "call group incomplete");
    const TransientInstr &Bump = C.Buf.at(I + 1);
    const TransientInstr &Save = C.Buf.at(I + 2);
    if (!Bump.is(TransientKind::ResolvedValue))
      return fail(WhyNot, "call stack-pointer update not resolved");
    if (!Save.isResolvedStore())
      return fail(WhyNot, "call return-address store not resolved");
    bool Indirect =
        C.Buf.contains(I + 3) && C.Buf.at(I + 3).GroupLeader == I;
    if (Indirect) {
      const TransientInstr &Callee = C.Buf.at(I + 3);
      if (!Callee.is(TransientKind::Jump))
        return fail(WhyNot, "indirect call target not resolved");
    }
    Value Addr = Save.StoreAddr;
    C.Regs.set(Reg::sp(), Bump.Val);
    C.Mem.store(Addr.Bits, Save.StoreResolvedVal);
    C.Buf.popFront();
    C.Buf.popFront();
    C.Buf.popFront();
    if (Indirect)
      C.Buf.popFront();
    return ok(RuleId::CallRetire, Observation::write(Addr));
  }

  case TransientKind::RetMarker: {
    // Rule ret-retire: marker, return-address load, rsp drop, and the
    // resolved jump retire together; rtmp is not committed.
    if (!C.Buf.contains(I + 3))
      return fail(WhyNot, "ret group incomplete");
    const TransientInstr &LoadRet = C.Buf.at(I + 1);
    const TransientInstr &Drop = C.Buf.at(I + 2);
    const TransientInstr &Jump = C.Buf.at(I + 3);
    if (!LoadRet.is(TransientKind::LoadResolved) &&
        !LoadRet.is(TransientKind::ResolvedValue))
      return fail(WhyNot, "ret return-address load not resolved");
    if (!Drop.is(TransientKind::ResolvedValue))
      return fail(WhyNot, "ret stack-pointer update not resolved");
    if (!Jump.is(TransientKind::Jump))
      return fail(WhyNot, "ret jump not resolved");
    C.Regs.set(Reg::sp(), Drop.Val);
    C.Buf.popFront();
    C.Buf.popFront();
    C.Buf.popFront();
    C.Buf.popFront();
    return ok(RuleId::RetRetire);
  }

  case TransientKind::Op:
  case TransientKind::Branch:
  case TransientKind::Load:
  case TransientKind::LoadGuessed:
  case TransientKind::JumpI:
    return fail(WhyNot, "oldest entry is unresolved");
  }
  return fail(WhyNot, "unknown transient kind");
}

//===----------------------------------------------------------------------===//
// Applicable-directive enumeration (probing)
//===----------------------------------------------------------------------===//

std::vector<Directive> Machine::applicableDirectives(
    const Configuration &C) const {
  std::vector<Directive> Candidates;

  if (Prog.contains(C.N)) {
    switch (Prog.at(C.N).kind()) {
    case InstrKind::Branch:
      Candidates.push_back(Directive::fetchBool(true));
      Candidates.push_back(Directive::fetchBool(false));
      break;
    case InstrKind::JumpI:
      for (PC Target = 0; Target <= Prog.endPC(); ++Target)
        Candidates.push_back(Directive::fetchTarget(Target));
      break;
    case InstrKind::CallI:
      for (PC Target = 0; Target <= Prog.endPC(); ++Target)
        Candidates.push_back(Directive::fetchTarget(Target));
      break;
    case InstrKind::Ret:
      Candidates.push_back(Directive::fetch());
      for (PC Target = 0; Target <= Prog.endPC(); ++Target)
        Candidates.push_back(Directive::fetchTarget(Target));
      break;
    default:
      Candidates.push_back(Directive::fetch());
      break;
    }
  }

  if (!C.Buf.empty()) {
    for (BufIdx I = C.Buf.minIndex(); I <= C.Buf.maxIndex(); ++I) {
      const TransientInstr &T = C.Buf.at(I);
      switch (T.Kind) {
      case TransientKind::Op:
      case TransientKind::Branch:
      case TransientKind::JumpI:
      case TransientKind::LoadGuessed:
        Candidates.push_back(Directive::execute(I));
        break;
      case TransientKind::Load:
        Candidates.push_back(Directive::execute(I));
        for (BufIdx J = C.Buf.minIndex(); J < I; ++J)
          if (C.Buf.at(J).is(TransientKind::Store))
            Candidates.push_back(Directive::executeFwd(I, J));
        break;
      case TransientKind::Store:
        Candidates.push_back(Directive::executeValue(I));
        Candidates.push_back(Directive::executeAddr(I));
        break;
      default:
        break;
      }
    }
    Candidates.push_back(Directive::retire());
  }

  std::vector<Directive> Applicable;
  for (const Directive &D : Candidates) {
    Configuration Probe = C;
    if (step(Probe, D))
      Applicable.push_back(D);
  }
  return Applicable;
}
