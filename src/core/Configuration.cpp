//===- core/Configuration.cpp - Machine configurations ----------------------===//

#include "core/Configuration.h"

using namespace sct;

Configuration Configuration::initial(const Program &P) {
  Configuration C;
  C.Regs = RegisterFile(P.numRegs());
  for (const auto &[R, V] : P.regInits())
    C.Regs.set(R, Value::pub(V));
  C.Mem = Memory(P.regions());
  for (const auto &[Addr, V] : P.memInits())
    C.Mem.store(Addr, Value(V, C.Mem.defaultLabel(Addr)));
  C.N = P.entry();
  return C;
}
