//===- core/Configuration.cpp - Machine configurations ----------------------===//

#include "core/Configuration.h"

#include "support/Hashing.h"

using namespace sct;

uint64_t Configuration::hash() {
  // Mirrors the const overload below, but picks ReorderBuffer's non-const
  // hash(): it folds pending contributions and then skips the per-chunk
  // pending walk entirely — this is the explorer's per-step probe path.
  uint64_t H = hashCombine(HashSeed, Regs.hash());
  H = hashCombine(H, Mem.hash());
  H = hashCombine(H, N);
  H = hashCombine(H, Buf.hash());
  H = hashCombine(H, Rsb.hash());
  return H;
}

uint64_t Configuration::hash() const {
  uint64_t H = hashCombine(HashSeed, Regs.hash());
  H = hashCombine(H, Mem.hash());
  H = hashCombine(H, N);
  H = hashCombine(H, Buf.hash());
  H = hashCombine(H, Rsb.hash());
  return H;
}

uint64_t Configuration::hashFromScratch() const {
  uint64_t H = hashCombine(HashSeed, Regs.hashFromScratch());
  H = hashCombine(H, Mem.hashFromScratch());
  H = hashCombine(H, N);
  H = hashCombine(H, Buf.hashFromScratch());
  H = hashCombine(H, Rsb.hashFromScratch());
  return H;
}

std::optional<uint64_t> Configuration::hash(const PcRemap &R) const {
  // N is where this configuration already *is*, not a point it still has
  // to reach — the fetch-point channel may be more permissive than the
  // target channel (core/TransientInstr.h).
  std::optional<PC> MN = R.fetchPoint(N);
  if (!MN)
    return std::nullopt;
  std::optional<uint64_t> BufH = Buf.hash(R);
  if (!BufH)
    return std::nullopt;
  std::optional<uint64_t> RsbH = Rsb.hash(R);
  if (!RsbH)
    return std::nullopt;
  uint64_t H = hashCombine(HashSeed, Regs.hash());
  H = hashCombine(H, Mem.hash());
  H = hashCombine(H, *MN);
  H = hashCombine(H, *BufH);
  H = hashCombine(H, *RsbH);
  return H;
}

Configuration Configuration::initial(const Program &P) {
  Configuration C;
  C.Regs = RegisterFile(P.numRegs());
  for (const auto &[R, V] : P.regInits())
    C.Regs.set(R, Value::pub(V));
  C.Mem = Memory(P.regions());
  for (const auto &[Addr, V] : P.memInits())
    C.Mem.store(Addr, Value(V, C.Mem.defaultLabel(Addr)));
  C.N = P.entry();
  return C;
}
