//===- core/Memory.h - The data memory µ -----------------------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The word-addressed data memory `µ : V ⇀ V` of a configuration.  Each
/// address holds one labelled 64-bit value.  Unwritten addresses read as 0
/// labelled according to the program's region table — this is how the
/// attacker's secrecy annotations (§4.2.1) enter the semantics.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CORE_MEMORY_H
#define SCT_CORE_MEMORY_H

#include "core/Value.h"
#include "isa/Program.h"

#include <map>

namespace sct {

/// The data memory µ.
class Memory {
public:
  Memory() = default;

  /// Builds memory with \p Regions as the labelling policy for unwritten
  /// addresses.
  explicit Memory(std::vector<MemRegion> Regions)
      : Regions(std::move(Regions)) {}

  /// Reads µ(a); unwritten addresses yield 0 with the region label.
  Value load(uint64_t Addr) const;

  /// Writes µ[a ↦ v].
  void store(uint64_t Addr, Value V);

  /// The label an unwritten word at \p Addr carries.
  Label defaultLabel(uint64_t Addr) const;

  /// All explicitly written/initialised cells.
  const std::map<uint64_t, Value> &cells() const { return Cells; }

  /// Structural equality modulo default cells (two memories are equal iff
  /// every address reads equal).
  bool operator==(const Memory &Other) const;

  /// True iff both memories agree on labels at every address and on bits
  /// at public addresses (the memory half of ≃pub).
  bool lowEquivalent(const Memory &Other) const;

private:
  std::vector<MemRegion> Regions;
  std::map<uint64_t, Value> Cells;
};

} // namespace sct

#endif // SCT_CORE_MEMORY_H
