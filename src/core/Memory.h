//===- core/Memory.h - The data memory µ -----------------------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The word-addressed data memory `µ : V ⇀ V` of a configuration.  Each
/// address holds one labelled 64-bit value.  Unwritten addresses read as 0
/// labelled according to the program's region table — this is how the
/// attacker's secrecy annotations (§4.2.1) enter the semantics.
///
/// Memories have value semantics but copy in O(1): the cell array and the
/// region table live behind shared_ptrs, shared between copies until a
/// store unshares the cells (copy-on-write).  Schedule exploration forks a
/// configuration at every decision point, and most forks never write
/// memory before diverging on observations alone — sharing makes those
/// forks nearly free.  Concurrent readers of shared cells are safe; the
/// unshare gives a writer its private array before the first mutation.
///
/// The cells are a flat vector sorted by address (binary-search loads, one
/// contiguous block per memory) rather than a node-based map: the explorer
/// hashes and compares memories at every fork, and walking a pointer-free
/// array is what makes that cheap.  The observable-memory fingerprint is
/// additionally maintained *incrementally*: an XOR-multiset of avalanched
/// per-cell contributions, updated in O(log cells) on every store, so
/// `hash()` is O(1) instead of O(cells) (see the invariant note at
/// `hash()` and ARCHITECTURE.md invariant 4).
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CORE_MEMORY_H
#define SCT_CORE_MEMORY_H

#include "core/Value.h"
#include "isa/Program.h"

#include <memory>
#include <utility>
#include <vector>

namespace sct {

/// The data memory µ.
class Memory {
public:
  Memory() = default;

  /// Builds memory with \p Regions as the labelling policy for unwritten
  /// addresses.
  explicit Memory(std::vector<MemRegion> Regions)
      : Regions(std::make_shared<const std::vector<MemRegion>>(
            std::move(Regions))) {}

  /// Reads µ(a); unwritten addresses yield 0 with the region label.
  Value load(uint64_t Addr) const;

  /// Writes µ[a ↦ v].
  void store(uint64_t Addr, Value V);

  /// The label an unwritten word at \p Addr carries.
  Label defaultLabel(uint64_t Addr) const;

  /// Number of explicitly written/initialised cells.
  size_t cellCount() const { return Cells ? Cells->size() : 0; }

  /// Visits every explicitly written/initialised cell in ascending address
  /// order as (address, value) pairs.  This is the iteration interface
  /// over the cell array — the array itself (and its container type) stays
  /// private, so callers cannot alias the shared COW storage.
  template <typename Fn> void forEachCell(Fn &&F) const {
    if (Cells)
      for (const auto &[Addr, V] : *Cells)
        F(Addr, V);
  }

  /// True iff this memory shares its cell array with another copy (the
  /// cells have not been unshared yet).  Exposed for tests and fork-cost
  /// accounting.
  bool sharesCells() const { return Cells && Cells.use_count() > 1; }

  /// Structural equality modulo default cells (two memories are equal iff
  /// every address reads equal).
  bool operator==(const Memory &Other) const;

  /// Canonical fingerprint over the *observable* memory: cells whose value
  /// equals the region default contribute nothing, so two memories that
  /// compare equal under operator== (which reads through defaults) hash
  /// equal no matter which of them spelled the default out explicitly.
  ///
  /// Maintained incrementally: `CellXor` is the XOR over all cells of an
  /// avalanched per-cell contribution (XOR makes the multiset
  /// order-independent and single-cell updates O(1); avalanching keeps
  /// structured cells from cancelling).  Every store updates it by XORing
  /// out the old cell's contribution and XORing in the new one, so hash()
  /// itself is O(1).  `hashFromScratch()` recomputes the same value by
  /// walking the cells; tests/HashEquivalenceTest.cpp asserts they stay
  /// bit-equal across randomized store sequences and COW unshare points.
  uint64_t hash() const;

  /// Recomputes hash() from the cell array (the verification oracle for
  /// the incremental fingerprint; O(cells)).
  uint64_t hashFromScratch() const;

  /// True iff both memories agree on labels at every address and on bits
  /// at public addresses (the memory half of ≃pub).
  bool lowEquivalent(const Memory &Other) const;

private:
  using Cell = std::pair<uint64_t, Value>;
  using CellArray = std::vector<Cell>;

  /// The cell's term in the XOR-multiset fingerprint; 0 for default-valued
  /// cells (they are observationally absent).
  uint64_t cellContribution(uint64_t Addr, const Value &V) const;

  /// Region table; immutable after construction, shared between copies.
  std::shared_ptr<const std::vector<MemRegion>> Regions;
  /// Written cells, sorted by address; shared between copies, unshared on
  /// first store.  nullptr encodes the empty memory.
  std::shared_ptr<const CellArray> Cells;
  /// XOR of cellContribution over all cells (the incremental half of the
  /// fingerprint).  Per-copy, not shared: it tracks this copy's view and
  /// updates on every store without touching the shared array.
  uint64_t CellXor = 0;
};

} // namespace sct

#endif // SCT_CORE_MEMORY_H
