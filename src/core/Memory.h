//===- core/Memory.h - The data memory µ -----------------------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The word-addressed data memory `µ : V ⇀ V` of a configuration.  Each
/// address holds one labelled 64-bit value.  Unwritten addresses read as 0
/// labelled according to the program's region table — this is how the
/// attacker's secrecy annotations (§4.2.1) enter the semantics.
///
/// Memories have value semantics but copy in O(1): the word map and the
/// region table live behind shared_ptrs, shared between copies until a
/// store unshares the map (copy-on-write).  Schedule exploration forks a
/// configuration at every decision point, and most forks never write
/// memory before diverging on observations alone — sharing makes those
/// forks nearly free.  Concurrent readers of a shared map are safe; the
/// unshare gives a writer its private map before the first mutation.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CORE_MEMORY_H
#define SCT_CORE_MEMORY_H

#include "core/Value.h"
#include "isa/Program.h"

#include <map>
#include <memory>

namespace sct {

/// The data memory µ.
class Memory {
public:
  Memory() = default;

  /// Builds memory with \p Regions as the labelling policy for unwritten
  /// addresses.
  explicit Memory(std::vector<MemRegion> Regions)
      : Regions(std::make_shared<const std::vector<MemRegion>>(
            std::move(Regions))) {}

  /// Reads µ(a); unwritten addresses yield 0 with the region label.
  Value load(uint64_t Addr) const;

  /// Writes µ[a ↦ v].
  void store(uint64_t Addr, Value V);

  /// The label an unwritten word at \p Addr carries.
  Label defaultLabel(uint64_t Addr) const;

  /// All explicitly written/initialised cells.
  const std::map<uint64_t, Value> &cells() const {
    static const std::map<uint64_t, Value> Empty;
    return Cells ? *Cells : Empty;
  }

  /// True iff this memory shares its word map with another copy (the cells
  /// have not been unshared yet).  Exposed for tests and fork-cost
  /// accounting.
  bool sharesCells() const { return Cells && Cells.use_count() > 1; }

  /// Structural equality modulo default cells (two memories are equal iff
  /// every address reads equal).
  bool operator==(const Memory &Other) const;

  /// Canonical fingerprint over the *observable* memory: cells whose value
  /// equals the region default are skipped, so two memories that compare
  /// equal under operator== (which reads through defaults) hash equal no
  /// matter which of them spelled the default out explicitly.  O(written
  /// cells); the shared COW map is walked without unsharing.
  uint64_t hash() const;

  /// True iff both memories agree on labels at every address and on bits
  /// at public addresses (the memory half of ≃pub).
  bool lowEquivalent(const Memory &Other) const;

private:
  /// Region table; immutable after construction, shared between copies.
  std::shared_ptr<const std::vector<MemRegion>> Regions;
  /// Written cells; shared between copies, unshared on first store.
  /// nullptr encodes the empty map.
  std::shared_ptr<const std::map<uint64_t, Value>> Cells;
};

} // namespace sct

#endif // SCT_CORE_MEMORY_H
