//===- core/ReturnStackBuffer.cpp - The RSB σ -------------------------------===//

#include "core/ReturnStackBuffer.h"

#include "support/Hashing.h"

using namespace sct;

uint64_t ReturnStackBuffer::hash() const {
  uint64_t H = hashCombine(HashSeed, Journal.size());
  for (const Entry &E : Journal) {
    H = hashCombine(H, E.Idx);
    H = hashCombine(H, (uint64_t(E.Target) << 1) | E.IsPush);
  }
  return H;
}

std::optional<uint64_t> ReturnStackBuffer::hash(const PcRemap &R) const {
  uint64_t H = hashCombine(HashSeed, Journal.size());
  for (const Entry &E : Journal) {
    PC Target = E.Target; // Pops record no target (raw 0, like hash()).
    if (E.IsPush) {
      std::optional<PC> M = R.target(E.Target);
      if (!M)
        return std::nullopt;
      Target = *M;
    }
    H = hashCombine(H, E.Idx);
    H = hashCombine(H, (uint64_t(Target) << 1) | E.IsPush);
  }
  return H;
}

std::optional<PC> ReturnStackBuffer::top() const {
  // Replay the journal into a stack (the paper's JσK), then take the top.
  std::vector<PC> Stack;
  for (const Entry &E : Journal) {
    if (E.IsPush) {
      Stack.push_back(E.Target);
      continue;
    }
    if (!Stack.empty())
      Stack.pop_back();
  }
  if (Stack.empty())
    return std::nullopt;
  return Stack.back();
}

PC ReturnStackBuffer::topCircular(unsigned Size) const {
  assert(Size > 0 && "circular RSB needs at least one slot");
  std::vector<PC> Ring(Size, 0);
  unsigned Ptr = 0;
  for (const Entry &E : Journal) {
    if (E.IsPush) {
      Ptr = (Ptr + 1) % Size;
      Ring[Ptr] = E.Target;
      continue;
    }
    Ptr = (Ptr + Size - 1) % Size;
  }
  // The next pop reads the slot the pointer rests on; on underflow the
  // pointer has wrapped and exposes a stale (or zero) entry.
  return Ring[Ptr];
}

void ReturnStackBuffer::rollbackFrom(BufIdx I) {
  while (!Journal.empty() && Journal.back().Idx >= I)
    Journal.pop_back();
}
