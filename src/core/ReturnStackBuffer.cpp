//===- core/ReturnStackBuffer.cpp - The RSB σ -------------------------------===//

#include "core/ReturnStackBuffer.h"

#include "support/Hashing.h"

using namespace sct;

uint64_t ReturnStackBuffer::hash() const {
  return hashFields({journal().size(), JournalXor});
}

uint64_t ReturnStackBuffer::hashFromScratch() const {
  const std::vector<Entry> &J = journal();
  uint64_t Xor = 0;
  for (size_t Pos = 0; Pos < J.size(); ++Pos)
    Xor ^= contribution(Pos, J[Pos]);
  return hashFields({J.size(), Xor});
}

std::optional<uint64_t> ReturnStackBuffer::hash(const PcRemap &R) const {
  const std::vector<Entry> &J = journal();
  uint64_t Xor = 0;
  for (size_t Pos = 0; Pos < J.size(); ++Pos) {
    Entry E = J[Pos]; // Pops record no target (raw 0, like hash()).
    if (E.IsPush) {
      std::optional<PC> M = R.target(E.Target);
      if (!M)
        return std::nullopt;
      E.Target = *M;
    }
    Xor ^= contribution(Pos, E);
  }
  return hashFields({J.size(), Xor});
}

std::optional<PC> ReturnStackBuffer::top() const {
  // Replay the journal into a stack (the paper's JσK), then take the top.
  std::vector<PC> Stack;
  for (const Entry &E : journal()) {
    if (E.IsPush) {
      Stack.push_back(E.Target);
      continue;
    }
    if (!Stack.empty())
      Stack.pop_back();
  }
  if (Stack.empty())
    return std::nullopt;
  return Stack.back();
}

PC ReturnStackBuffer::topCircular(unsigned Size) const {
  assert(Size > 0 && "circular RSB needs at least one slot");
  std::vector<PC> Ring(Size, 0);
  unsigned Ptr = 0;
  for (const Entry &E : journal()) {
    if (E.IsPush) {
      Ptr = (Ptr + 1) % Size;
      Ring[Ptr] = E.Target;
      continue;
    }
    Ptr = (Ptr + Size - 1) % Size;
  }
  // The next pop reads the slot the pointer rests on; on underflow the
  // pointer has wrapped and exposes a stale (or zero) entry.
  return Ring[Ptr];
}

void ReturnStackBuffer::rollbackFrom(BufIdx I) {
  // Peek through the read view first: rollbacks that drop nothing (the
  // common case — most squashed windows contain no call/ret) must not
  // clone a shared journal.
  if (journal().empty() || journal().back().Idx < I)
    return;
  std::vector<Entry> &J = mutJournal();
  while (!J.empty() && J.back().Idx >= I) {
    JournalXor ^= contribution(J.size() - 1, J.back());
    J.pop_back();
  }
}
