//===- core/Observation.cpp - Leakage observations ---------------------------===//

#include "core/Observation.h"

using namespace sct;

std::string Observation::str() const {
  std::string Body;
  switch (K) {
  case Kind::None:
    Body = Rollback ? "" : "-";
    break;
  case Kind::Read:
    Body = "read " + Payload.str();
    break;
  case Kind::Fwd:
    Body = "fwd " + Payload.str();
    break;
  case Kind::Write:
    Body = "write " + Payload.str();
    break;
  case Kind::Jump:
    Body = "jump " + Payload.str();
    break;
  }
  if (!Rollback)
    return Body;
  return Body.empty() ? "rollback" : "rollback, " + Body;
}
