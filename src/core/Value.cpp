//===- core/Value.cpp - Labelled machine values ----------------------------===//

#include "core/Value.h"

#include "support/Printing.h"

using namespace sct;

std::string Value::str() const {
  std::string Body =
      Bits >= 0x40 ? toHex(Bits) : std::to_string(Bits);
  return Body + "_" + Taint.str();
}
