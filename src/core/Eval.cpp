//===- core/Eval.cpp - The evaluation functions J·K --------------------------===//

#include "core/Eval.h"

using namespace sct;

Value sct::evalOp(Opcode Opc, std::span<const Value> Args,
                  const MachineOptions &Opts) {
  assert(Args.size() == opcodeArity(Opc) && "operand count mismatch");
  Label L = Label::publicLabel();
  for (const Value &V : Args)
    L = L.join(V.Taint);

  auto A = [&](size_t I) { return Args[I].Bits; };
  uint64_t R = 0;
  switch (Opc) {
  case Opcode::Add:
    R = A(0) + A(1);
    break;
  case Opcode::Sub:
    R = A(0) - A(1);
    break;
  case Opcode::Mul:
    R = A(0) * A(1);
    break;
  case Opcode::UDiv:
    R = A(1) == 0 ? 0 : A(0) / A(1);
    break;
  case Opcode::URem:
    R = A(1) == 0 ? A(0) : A(0) % A(1);
    break;
  case Opcode::And:
    R = A(0) & A(1);
    break;
  case Opcode::Or:
    R = A(0) | A(1);
    break;
  case Opcode::Xor:
    R = A(0) ^ A(1);
    break;
  case Opcode::Shl:
    R = A(0) << (A(1) & 63);
    break;
  case Opcode::Shr:
    R = A(0) >> (A(1) & 63);
    break;
  case Opcode::Not:
    R = ~A(0);
    break;
  case Opcode::Neg:
    R = 0 - A(0);
    break;
  case Opcode::Mov:
    R = A(0);
    break;
  case Opcode::Select:
    R = A(0) != 0 ? A(1) : A(2);
    break;
  case Opcode::Eq:
    R = A(0) == A(1);
    break;
  case Opcode::Ne:
    R = A(0) != A(1);
    break;
  case Opcode::Ult:
    R = A(0) < A(1);
    break;
  case Opcode::Ule:
    R = A(0) <= A(1);
    break;
  case Opcode::Ugt:
    R = A(0) > A(1);
    break;
  case Opcode::Uge:
    R = A(0) >= A(1);
    break;
  case Opcode::Slt:
    R = static_cast<int64_t>(A(0)) < static_cast<int64_t>(A(1));
    break;
  case Opcode::Sle:
    R = static_cast<int64_t>(A(0)) <= static_cast<int64_t>(A(1));
    break;
  case Opcode::Sgt:
    R = static_cast<int64_t>(A(0)) > static_cast<int64_t>(A(1));
    break;
  case Opcode::Sge:
    R = static_cast<int64_t>(A(0)) >= static_cast<int64_t>(A(1));
    break;
  case Opcode::True:
    R = 1;
    break;
  case Opcode::False:
    R = 0;
    break;
  case Opcode::Succ:
    R = Opts.StackGrowsDown ? A(0) - Opts.StackStep : A(0) + Opts.StackStep;
    break;
  case Opcode::Pred:
    R = Opts.StackGrowsDown ? A(0) + Opts.StackStep : A(0) - Opts.StackStep;
    break;
  }
  return Value(R, L);
}

Value sct::evalAddr(std::span<const Value> Args,
                    const MachineOptions &Opts) {
  assert(!Args.empty() && "address computation needs operands");
  Label L = Label::publicLabel();
  for (const Value &V : Args)
    L = L.join(V.Taint);

  uint64_t A = 0;
  switch (Opts.Addressing) {
  case AddrMode::Sum:
    for (const Value &V : Args)
      A += V.Bits;
    break;
  case AddrMode::BaseIndexScale:
    if (Args.size() >= 3) {
      A = Args[0].Bits + Args[1].Bits * Args[2].Bits;
      // Trailing operands beyond the triple are summed in.
      for (size_t I = 3; I < Args.size(); ++I)
        A += Args[I].Bits;
    } else {
      for (const Value &V : Args)
        A += V.Bits;
    }
    break;
  }
  return Value(A, L);
}
