//===- core/ReturnStackBuffer.h - The RSB σ --------------------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The return stack buffer σ of Appendix A.2.  σ is a journal of
/// push/pop commands indexed by reorder-buffer indices; `top(σ)` replays
/// the journal into a stack and returns its top.  Journalling (rather than
/// a plain stack) is what lets σ roll back together with the reorder
/// buffer on misspeculation ("Similar to the reorder buffer, we address
/// the RSB through indices and roll it back").
///
/// The paper describes three hardware behaviours for `ret` with an empty
/// RSB; all three are selectable (MachineOptions::RsbOnEmpty):
///  - AttackerChoice: the schedule supplies the target (ret-fetch-rsb-empty);
///  - Stall: refuse to speculate (AMD);
///  - Circular: replay over a fixed-size circular buffer that wraps on
///    underflow ("most" Intel parts).
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CORE_RETURNSTACKBUFFER_H
#define SCT_CORE_RETURNSTACKBUFFER_H

#include "core/TransientInstr.h"
#include "support/Hashing.h"

#include <memory>
#include <optional>
#include <vector>

namespace sct {

/// RSB behaviour when `top(σ)` would be ⊥.
enum class RsbPolicy : unsigned char {
  AttackerChoice, ///< fetch: n' supplies the prediction (paper default).
  Stall,          ///< ret cannot fetch until the RSB refills (AMD).
  Circular,       ///< fixed-size circular buffer; wraps on underflow.
};

/// The return stack buffer σ.
///
/// The journal is held behind a shared_ptr with copy-on-write semantics,
/// mirroring core/Memory and the reorder buffer's chunks: a configuration
/// is copied at every schedule fork and branch probe, while the journal
/// itself only changes at call/ret fetches and rollbacks — so copies
/// share the journal by pointer and the first mutation through a shared
/// reference clones it.
class ReturnStackBuffer {
public:
  /// Records "σ[i ↦ push n]" (call fetch).
  void push(BufIdx I, PC Target) {
    std::vector<Entry> &J = mutJournal();
    JournalXor ^= contribution(J.size(), {I, Target, true});
    J.push_back({I, Target, true});
  }

  /// Records "σ[i ↦ pop]" (ret fetch).
  void pop(BufIdx I) {
    std::vector<Entry> &J = mutJournal();
    JournalXor ^= contribution(J.size(), {I, 0, false});
    J.push_back({I, 0, false});
  }

  /// top(σ) under the standard stack replay; std::nullopt encodes ⊥.
  std::optional<PC> top() const;

  /// top(σ) replayed over a \p Size -entry circular buffer (never ⊥;
  /// underflow wraps around, initially reading program point 0).
  PC topCircular(unsigned Size) const;

  /// Rolls back: drops every journal entry with index >= \p I.
  void rollbackFrom(BufIdx I);

  /// Number of journal entries (for tests).
  size_t journalSize() const { return journal().size(); }

  bool operator==(const ReturnStackBuffer &Other) const {
    return journal() == Other.journal();
  }

  /// Fingerprint over the whole journal in order (σ is journalled state:
  /// two RSBs with equal replayed tops but different histories roll back
  /// differently, so the history is what gets hashed).  Maintained
  /// incrementally as an XOR-multiset of avalanched per-entry
  /// contributions — the journal position participates in each term, so
  /// order still matters; push/pop/rollbackFrom update the running value
  /// and hash() is O(1).  `hashFromScratch()` is the O(journal)
  /// verification oracle (tests/HashEquivalenceTest.cpp).
  uint64_t hash() const;

  /// Recomputes hash() by walking the journal.
  uint64_t hashFromScratch() const;

  /// Remap-aware variant: push targets (return points) map through
  /// \p R's target channel; nullopt iff any has no image.  Always a full
  /// walk (remaps are the cross-program re-check path, not the hot path);
  /// under an identity remap it equals hash() — tests pin this.
  std::optional<uint64_t> hash(const PcRemap &R) const;

private:
  struct Entry {
    BufIdx Idx;
    PC Target;
    bool IsPush;

    bool operator==(const Entry &Other) const = default;
  };

  /// Journal entry \p Pos's term in the XOR-multiset fingerprint.
  static uint64_t contribution(uint64_t Pos, const Entry &E) {
    return hashFields({Pos, E.Idx, (uint64_t(E.Target) << 1) | E.IsPush});
  }

  /// Read view; a never-pushed RSB holds no allocation at all.
  const std::vector<Entry> &journal() const {
    static const std::vector<Entry> Empty;
    return Journal ? *Journal : Empty;
  }

  /// Write access: allocates on first use, clones when shared.
  std::vector<Entry> &mutJournal() {
    if (!Journal)
      Journal = std::make_shared<std::vector<Entry>>();
    else if (Journal.use_count() > 1)
      Journal = std::make_shared<std::vector<Entry>>(*Journal);
    return *Journal;
  }

  /// Shared copy-on-write journal (null encodes empty).
  std::shared_ptr<std::vector<Entry>> Journal;
  /// XOR of contribution over the whole journal.
  uint64_t JournalXor = 0;
};

} // namespace sct

#endif // SCT_CORE_RETURNSTACKBUFFER_H
