//===- core/Value.h - Labelled machine values ------------------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine values `v_ℓ`: a 64-bit word annotated with a security label
/// (§3, "Values and labels").
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CORE_VALUE_H
#define SCT_CORE_VALUE_H

#include "support/Label.h"

#include <cstdint>
#include <string>

namespace sct {

/// A labelled 64-bit machine value.
struct Value {
  uint64_t Bits = 0;
  Label Taint;

  constexpr Value() = default;
  constexpr Value(uint64_t Bits, Label Taint) : Bits(Bits), Taint(Taint) {}

  /// A public value.
  static constexpr Value pub(uint64_t Bits) {
    return Value(Bits, Label::publicLabel());
  }

  /// A value tainted by secret source \p Source.
  static Value sec(uint64_t Bits, unsigned Source = 0) {
    return Value(Bits, Label::secret(Source));
  }

  bool isPublic() const { return Taint.isPublic(); }
  bool isSecret() const { return Taint.isSecret(); }

  /// Full equality: both bits and label (used by the §3.5 memory-match
  /// rule, which compares v'_ℓ' against v_ℓ).
  constexpr bool operator==(const Value &Other) const = default;

  /// Renders e.g. "9_pub" or "0x48_sec".
  std::string str() const;
};

} // namespace sct

#endif // SCT_CORE_VALUE_H
