//===- core/Eval.h - The evaluation functions J·K --------------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation function J·K for operations and the abstract address
/// operator Jaddr(·)K (§3.4, "Address calculation").  The paper keeps both
/// abstract; we provide total 64-bit semantics and two addressing modes:
/// the simple sum of operands (used in all paper figures) and an
/// x86-style base + index·scale mode.
///
/// Labels propagate conservatively: the result label is the join of all
/// operand labels (for Select, including the selector — the selected value
/// depends on it).
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CORE_EVAL_H
#define SCT_CORE_EVAL_H

#include "core/ReturnStackBuffer.h"
#include "core/Value.h"
#include "isa/Opcode.h"

#include <span>
#include <vector>

namespace sct {

/// How Jaddr(v⃗)K combines operands.
enum class AddrMode : unsigned char {
  Sum,            ///< a = v1 + v2 + ... (paper's simple mode).
  BaseIndexScale, ///< a = v1 + v2·v3 (x86-style); fewer operands sum.
};

/// Knobs for the abstract parts of the semantics.  Defaults match the
/// paper's figures.
struct MachineOptions {
  AddrMode Addressing = AddrMode::Sum;
  /// Stack direction for the abstract succ/pred of Appendix A.2.
  bool StackGrowsDown = true;
  /// Stack step in words (memory is word-addressed).
  uint64_t StackStep = 1;
  /// ret behaviour on empty RSB.
  RsbPolicy RsbOnEmpty = RsbPolicy::AttackerChoice;
  /// Slots of the circular RSB model (RsbPolicy::Circular).
  unsigned RsbCircularSize = 16;
};

/// Evaluates Jop(v⃗)K; total on all inputs (division by zero yields 0,
/// shifts are modulo 64).  Takes a span so callers can pass any
/// contiguous operand buffer (the hot path resolves into an
/// InlineVector; braced lists forward through the inline overload).
Value evalOp(Opcode Opc, std::span<const Value> Args,
             const MachineOptions &Opts);
inline Value evalOp(Opcode Opc, std::initializer_list<Value> Args,
                    const MachineOptions &Opts) {
  return evalOp(Opc, std::span<const Value>(Args.begin(), Args.size()), Opts);
}

/// Evaluates Jaddr(v⃗)K; result label is the join of operand labels.
Value evalAddr(std::span<const Value> Args, const MachineOptions &Opts);
inline Value evalAddr(std::initializer_list<Value> Args,
                      const MachineOptions &Opts) {
  return evalAddr(std::span<const Value>(Args.begin(), Args.size()), Opts);
}

/// Branch-condition truth: nonzero is true.
inline bool truthy(const Value &V) { return V.Bits != 0; }

} // namespace sct

#endif // SCT_CORE_EVAL_H
