//===- core/TransientInstr.cpp - Transient instructions --------------------===//

#include "core/TransientInstr.h"

#include "isa/AsmPrinter.h"
#include "support/Hashing.h"
#include "support/Printing.h"

using namespace sct;

TransientInstr TransientInstr::makeOp(Reg Dest, Opcode Opc,
                                      std::vector<Operand> Args, PC Origin) {
  TransientInstr T;
  T.Kind = TransientKind::Op;
  T.Dest = Dest;
  T.Opc = Opc;
  T.Args = std::move(Args);
  T.Origin = Origin;
  return T;
}

TransientInstr TransientInstr::makeResolvedValue(Reg Dest, Value V,
                                                 PC Origin) {
  TransientInstr T;
  T.Kind = TransientKind::ResolvedValue;
  T.Dest = Dest;
  T.Val = V;
  T.Origin = Origin;
  return T;
}

TransientInstr TransientInstr::makeBranch(Opcode Cond,
                                          std::vector<Operand> Args, PC Chosen,
                                          PC NTrue, PC NFalse, PC Origin) {
  TransientInstr T;
  T.Kind = TransientKind::Branch;
  T.Opc = Cond;
  T.Args = std::move(Args);
  T.N0 = Chosen;
  T.NTrue = NTrue;
  T.NFalse = NFalse;
  T.Origin = Origin;
  return T;
}

TransientInstr TransientInstr::makeJump(PC Target, PC Origin) {
  TransientInstr T;
  T.Kind = TransientKind::Jump;
  T.N0 = Target;
  T.Origin = Origin;
  return T;
}

TransientInstr TransientInstr::makeLoad(Reg Dest, std::vector<Operand> AddrArgs,
                                        PC Origin) {
  TransientInstr T;
  T.Kind = TransientKind::Load;
  T.Dest = Dest;
  T.Args = std::move(AddrArgs);
  T.Origin = Origin;
  return T;
}

TransientInstr TransientInstr::makeStore(Operand Val,
                                         std::vector<Operand> AddrArgs,
                                         PC Origin) {
  TransientInstr T;
  T.Kind = TransientKind::Store;
  T.StoreVal = Val;
  T.Args = std::move(AddrArgs);
  T.Origin = Origin;
  // "Either step may be skipped if data or address are already in
  // immediate form" (§3.4): an immediate store value, or a
  // single-immediate address, is born resolved (Figure 5's
  // store(12, 43pub) arrives fully resolved).
  if (Val.isImm()) {
    T.StoreValIsResolved = true;
    T.StoreResolvedVal = Value::pub(Val.getImm());
  }
  if (T.Args.size() == 1 && T.Args[0].isImm()) {
    T.StoreAddrIsResolved = true;
    T.StoreAddr = Value::pub(T.Args[0].getImm());
  }
  return T;
}

TransientInstr TransientInstr::makeJumpI(std::vector<Operand> AddrArgs,
                                         PC Predicted, PC Origin) {
  TransientInstr T;
  T.Kind = TransientKind::JumpI;
  T.Args = std::move(AddrArgs);
  T.N0 = Predicted;
  T.Origin = Origin;
  return T;
}

TransientInstr TransientInstr::makeCallMarker(PC Origin) {
  TransientInstr T;
  T.Kind = TransientKind::CallMarker;
  T.Origin = Origin;
  return T;
}

TransientInstr TransientInstr::makeRetMarker(PC Origin) {
  TransientInstr T;
  T.Kind = TransientKind::RetMarker;
  T.Origin = Origin;
  return T;
}

TransientInstr TransientInstr::makeFence(PC Origin) {
  TransientInstr T;
  T.Kind = TransientKind::Fence;
  T.Origin = Origin;
  return T;
}

bool TransientInstr::assignsReg(Reg R) const {
  switch (Kind) {
  case TransientKind::Op:
  case TransientKind::ResolvedValue:
  case TransientKind::Load:
  case TransientKind::LoadGuessed:
  case TransientKind::LoadResolved:
    return Dest == R;
  default:
    return false;
  }
}

uint64_t TransientInstr::hash() const {
  // Every field operator== compares participates, in declaration order.
  // Operands fold a register/immediate tag first so reg(5) and imm(5)
  // separate.
  uint64_t H = hashFields({uint64_t(Kind), Dest.id(), uint64_t(Opc)});
  auto FoldOperand = [&H](const Operand &Op) {
    H = hashCombine(H, Op.isReg() ? 1 : 2);
    H = hashCombine(H, Op.isReg() ? Op.getReg().id() : Op.getImm());
  };
  H = hashCombine(H, Args.size());
  for (const Operand &Op : Args)
    FoldOperand(Op);
  H = hashCombine(H, Val.Bits);
  H = hashCombine(H, Val.Taint.mask());
  FoldOperand(StoreVal);
  H = hashCombine(H, StoreValIsResolved);
  H = hashCombine(H, StoreResolvedVal.Bits);
  H = hashCombine(H, StoreResolvedVal.Taint.mask());
  H = hashCombine(H, StoreAddrIsResolved);
  H = hashCombine(H, StoreAddr.Bits);
  H = hashCombine(H, StoreAddr.Taint.mask());
  H = hashCombine(H, LoadAddr);
  H = hashCombine(H, Dep ? *Dep + 1 : 0);
  H = hashCombine(H, (uint64_t(N0) << 32) | NTrue);
  H = hashCombine(H, (uint64_t(NFalse) << 32) | Origin);
  H = hashCombine(H, GroupLeader);
  return H;
}

std::optional<uint64_t> TransientInstr::hash(const PcRemap &R) const {
  // Only the target fields the entry's kind actually uses are remapped —
  // the factories leave the others at 0, and the plain hash of the
  // corresponding original-program entry folds those raw zeros.
  PC MN0 = N0, MNTrue = NTrue, MNFalse = NFalse;
  auto MapTarget = [&R](PC N, PC &Out) {
    std::optional<PC> M = R.target(N);
    if (!M)
      return false;
    Out = *M;
    return true;
  };
  switch (Kind) {
  case TransientKind::Branch:
    if (!MapTarget(N0, MN0) || !MapTarget(NTrue, MNTrue) ||
        !MapTarget(NFalse, MNFalse))
      return std::nullopt;
    break;
  case TransientKind::Jump:
  case TransientKind::JumpI:
    if (!MapTarget(N0, MN0))
      return std::nullopt;
    break;
  default:
    break;
  }
  std::optional<PC> MOrigin = R.instr(Origin);
  if (!MOrigin)
    return std::nullopt;

  // From here on: byte-for-byte the chaining of hash(), with the mapped
  // points substituted.
  uint64_t H = hashFields({uint64_t(Kind), Dest.id(), uint64_t(Opc)});
  auto FoldOperand = [&H](const Operand &Op) {
    H = hashCombine(H, Op.isReg() ? 1 : 2);
    H = hashCombine(H, Op.isReg() ? Op.getReg().id() : Op.getImm());
  };
  H = hashCombine(H, Args.size());
  for (const Operand &Op : Args)
    FoldOperand(Op);
  H = hashCombine(H, Val.Bits);
  H = hashCombine(H, Val.Taint.mask());
  FoldOperand(StoreVal);
  H = hashCombine(H, StoreValIsResolved);
  H = hashCombine(H, StoreResolvedVal.Bits);
  H = hashCombine(H, StoreResolvedVal.Taint.mask());
  H = hashCombine(H, StoreAddrIsResolved);
  H = hashCombine(H, StoreAddr.Bits);
  H = hashCombine(H, StoreAddr.Taint.mask());
  H = hashCombine(H, LoadAddr);
  H = hashCombine(H, Dep ? *Dep + 1 : 0);
  H = hashCombine(H, (uint64_t(MN0) << 32) | MNTrue);
  H = hashCombine(H, (uint64_t(MNFalse) << 32) | *MOrigin);
  H = hashCombine(H, GroupLeader);
  return H;
}

bool TransientInstr::isResolved() const {
  switch (Kind) {
  case TransientKind::ResolvedValue:
  case TransientKind::LoadResolved:
  case TransientKind::Jump:
  case TransientKind::Fence:
  case TransientKind::CallMarker:
  case TransientKind::RetMarker:
    return true;
  case TransientKind::Store:
    return isResolvedStore();
  case TransientKind::Op:
  case TransientKind::Branch:
  case TransientKind::Load:
  case TransientKind::LoadGuessed:
  case TransientKind::JumpI:
    return false;
  }
  return false;
}

namespace {

std::string operandList(const Program &P, const std::vector<Operand> &Ops) {
  std::vector<std::string> Parts;
  Parts.reserve(Ops.size());
  for (const Operand &Op : Ops)
    Parts.push_back(printOperand(P, Op));
  return join(Parts, ", ");
}

} // namespace

std::string TransientInstr::str(const Program &P) const {
  switch (Kind) {
  case TransientKind::Op:
    return "(" + P.regName(Dest) + " = op(" + std::string(opcodeName(Opc)) +
           ", [" + operandList(P, Args) + "]))";
  case TransientKind::ResolvedValue:
    return "(" + P.regName(Dest) + " = " + Val.str() + ")";
  case TransientKind::Branch:
    return "br(" + std::string(opcodeName(Opc)) + ", [" +
           operandList(P, Args) + "], " + std::to_string(N0) + ", (" +
           std::to_string(NTrue) + ", " + std::to_string(NFalse) + "))";
  case TransientKind::Jump:
    return "jump " + std::to_string(N0);
  case TransientKind::Load:
    return "(" + P.regName(Dest) + " = load([" + operandList(P, Args) + "]))";
  case TransientKind::LoadGuessed:
    return "(" + P.regName(Dest) + " = load([" + operandList(P, Args) +
           "], (" + Val.str() + ", " + std::to_string(*Dep) + ")))";
  case TransientKind::LoadResolved:
    return "(" + P.regName(Dest) + " = " + Val.str() + "{" +
           (Dep ? std::to_string(*Dep) : std::string("_")) + ", " +
           toHex(LoadAddr) + "})";
  case TransientKind::Store: {
    std::string V = StoreValIsResolved ? StoreResolvedVal.str()
                                       : printOperand(P, StoreVal);
    std::string A = StoreAddrIsResolved
                        ? StoreAddr.str()
                        : "[" + operandList(P, Args) + "]";
    return "store(" + V + ", " + A + ")";
  }
  case TransientKind::JumpI:
    return "jmpi([" + operandList(P, Args) + "], " + std::to_string(N0) + ")";
  case TransientKind::CallMarker:
    return "call";
  case TransientKind::RetMarker:
    return "ret";
  case TransientKind::Fence:
    return "fence";
  }
  return "<invalid>";
}
