//===- core/TransientInstr.cpp - Transient instructions --------------------===//

#include "core/TransientInstr.h"

#include "isa/AsmPrinter.h"
#include "support/Hashing.h"
#include "support/Printing.h"

using namespace sct;

TransientInstr TransientInstr::makeOp(Reg Dest, Opcode Opc,
                                      std::span<const Operand> Args,
                                      PC Origin) {
  TransientInstr T;
  T.Kind = TransientKind::Op;
  T.Dest = Dest;
  T.Opc = Opc;
  T.Args = InlineVector<Operand, 2>(Args);
  T.Origin = Origin;
  return T;
}

TransientInstr TransientInstr::makeResolvedValue(Reg Dest, Value V,
                                                 PC Origin) {
  TransientInstr T;
  T.Kind = TransientKind::ResolvedValue;
  T.Dest = Dest;
  T.Val = V;
  T.Origin = Origin;
  return T;
}

TransientInstr TransientInstr::makeBranch(Opcode Cond,
                                          std::span<const Operand> Args,
                                          PC Chosen, PC NTrue, PC NFalse,
                                          PC Origin) {
  TransientInstr T;
  T.Kind = TransientKind::Branch;
  T.Opc = Cond;
  T.Args = InlineVector<Operand, 2>(Args);
  T.N0 = Chosen;
  T.NTrue = NTrue;
  T.NFalse = NFalse;
  T.Origin = Origin;
  return T;
}

TransientInstr TransientInstr::makeJump(PC Target, PC Origin) {
  TransientInstr T;
  T.Kind = TransientKind::Jump;
  T.N0 = Target;
  T.Origin = Origin;
  return T;
}

TransientInstr TransientInstr::makeLoad(Reg Dest,
                                        std::span<const Operand> AddrArgs,
                                        PC Origin) {
  TransientInstr T;
  T.Kind = TransientKind::Load;
  T.Dest = Dest;
  T.Args = InlineVector<Operand, 2>(AddrArgs);
  T.Origin = Origin;
  return T;
}

TransientInstr TransientInstr::makeStore(Operand Val,
                                         std::span<const Operand> AddrArgs,
                                         PC Origin) {
  TransientInstr T;
  T.Kind = TransientKind::Store;
  T.StoreVal = Val;
  T.Args = InlineVector<Operand, 2>(AddrArgs);
  T.Origin = Origin;
  // "Either step may be skipped if data or address are already in
  // immediate form" (§3.4): an immediate store value, or a
  // single-immediate address, is born resolved (Figure 5's
  // store(12, 43pub) arrives fully resolved).
  if (Val.isImm()) {
    T.StoreValIsResolved = true;
    T.StoreResolvedVal = Value::pub(Val.getImm());
  }
  if (T.Args.size() == 1 && T.Args[0].isImm()) {
    T.StoreAddrIsResolved = true;
    T.StoreAddr = Value::pub(T.Args[0].getImm());
  }
  return T;
}

TransientInstr TransientInstr::makeJumpI(std::span<const Operand> AddrArgs,
                                         PC Predicted, PC Origin) {
  TransientInstr T;
  T.Kind = TransientKind::JumpI;
  T.Args = InlineVector<Operand, 2>(AddrArgs);
  T.N0 = Predicted;
  T.Origin = Origin;
  return T;
}

TransientInstr TransientInstr::makeCallMarker(PC Origin) {
  TransientInstr T;
  T.Kind = TransientKind::CallMarker;
  T.Origin = Origin;
  return T;
}

TransientInstr TransientInstr::makeRetMarker(PC Origin) {
  TransientInstr T;
  T.Kind = TransientKind::RetMarker;
  T.Origin = Origin;
  return T;
}

TransientInstr TransientInstr::makeFence(PC Origin) {
  TransientInstr T;
  T.Kind = TransientKind::Fence;
  T.Origin = Origin;
  return T;
}

bool TransientInstr::assignsReg(Reg R) const {
  switch (Kind) {
  case TransientKind::Op:
  case TransientKind::ResolvedValue:
  case TransientKind::Load:
  case TransientKind::LoadGuessed:
  case TransientKind::LoadResolved:
    return Dest == R;
  default:
    return false;
  }
}

namespace {

/// The one chaining both hash() and the remap-aware hash() share, with
/// the program points passed in (mapped or raw).  Every field
/// operator== compares participates, in declaration order; operands
/// fold a register/immediate tag first so reg(5) and imm(5) separate.
/// This is the engine's single hottest function (entry fingerprints
/// back the reorder buffer's XOR-multiset), so it uses the cheap
/// hashFold/hashFinish chain: sound here because every TransientInstr
/// folds exactly the same field sequence (Args is length-prefixed).
uint64_t hashEntryFields(const TransientInstr &T, PC N0, PC NTrue, PC NFalse,
                         PC Origin) {
  uint64_t H = hashFold(HashSeed, uint64_t(T.Kind));
  H = hashFold(H, T.Dest.id());
  H = hashFold(H, uint64_t(T.Opc));
  auto FoldOperand = [&H](const Operand &Op) {
    H = hashFold(H, Op.isReg() ? 1 : 2);
    H = hashFold(H, Op.isReg() ? Op.getReg().id() : Op.getImm());
  };
  H = hashFold(H, T.Args.size());
  for (const Operand &Op : T.Args)
    FoldOperand(Op);
  H = hashFold(H, T.Val.Bits);
  H = hashFold(H, T.Val.Taint.mask());
  FoldOperand(T.StoreVal);
  H = hashFold(H, T.StoreValIsResolved);
  H = hashFold(H, T.StoreResolvedVal.Bits);
  H = hashFold(H, T.StoreResolvedVal.Taint.mask());
  H = hashFold(H, T.StoreAddrIsResolved);
  H = hashFold(H, T.StoreAddr.Bits);
  H = hashFold(H, T.StoreAddr.Taint.mask());
  H = hashFold(H, T.LoadAddr);
  // OptBufIdx's raw word is already the index-plus-one sentinel this
  // line has always folded.
  H = hashFold(H, T.Dep.raw());
  H = hashFold(H, (uint64_t(N0) << 32) | NTrue);
  H = hashFold(H, (uint64_t(NFalse) << 32) | Origin);
  H = hashFold(H, T.GroupLeader);
  return hashFinish(H);
}

} // namespace

uint64_t TransientInstr::hash() const {
  return hashEntryFields(*this, N0, NTrue, NFalse, Origin);
}

std::optional<uint64_t> TransientInstr::hash(const PcRemap &R) const {
  // Only the target fields the entry's kind actually uses are remapped —
  // the factories leave the others at 0, and the plain hash of the
  // corresponding original-program entry folds those raw zeros.
  PC MN0 = N0, MNTrue = NTrue, MNFalse = NFalse;
  auto MapTarget = [&R](PC N, PC &Out) {
    std::optional<PC> M = R.target(N);
    if (!M)
      return false;
    Out = *M;
    return true;
  };
  switch (Kind) {
  case TransientKind::Branch:
    if (!MapTarget(N0, MN0) || !MapTarget(NTrue, MNTrue) ||
        !MapTarget(NFalse, MNFalse))
      return std::nullopt;
    break;
  case TransientKind::Jump:
  case TransientKind::JumpI:
    if (!MapTarget(N0, MN0))
      return std::nullopt;
    break;
  default:
    break;
  }
  std::optional<PC> MOrigin = R.instr(Origin);
  if (!MOrigin)
    return std::nullopt;

  // Byte-for-byte the chaining of hash(), with the mapped points
  // substituted.
  return hashEntryFields(*this, MN0, MNTrue, MNFalse, *MOrigin);
}

bool TransientInstr::isResolved() const {
  switch (Kind) {
  case TransientKind::ResolvedValue:
  case TransientKind::LoadResolved:
  case TransientKind::Jump:
  case TransientKind::Fence:
  case TransientKind::CallMarker:
  case TransientKind::RetMarker:
    return true;
  case TransientKind::Store:
    return isResolvedStore();
  case TransientKind::Op:
  case TransientKind::Branch:
  case TransientKind::Load:
  case TransientKind::LoadGuessed:
  case TransientKind::JumpI:
    return false;
  }
  return false;
}

namespace {

std::string operandList(const Program &P, std::span<const Operand> Ops) {
  std::vector<std::string> Parts;
  Parts.reserve(Ops.size());
  for (const Operand &Op : Ops)
    Parts.push_back(printOperand(P, Op));
  return join(Parts, ", ");
}

} // namespace

std::string TransientInstr::str(const Program &P) const {
  switch (Kind) {
  case TransientKind::Op:
    return "(" + P.regName(Dest) + " = op(" + std::string(opcodeName(Opc)) +
           ", [" + operandList(P, Args) + "]))";
  case TransientKind::ResolvedValue:
    return "(" + P.regName(Dest) + " = " + Val.str() + ")";
  case TransientKind::Branch:
    return "br(" + std::string(opcodeName(Opc)) + ", [" +
           operandList(P, Args) + "], " + std::to_string(N0) + ", (" +
           std::to_string(NTrue) + ", " + std::to_string(NFalse) + "))";
  case TransientKind::Jump:
    return "jump " + std::to_string(N0);
  case TransientKind::Load:
    return "(" + P.regName(Dest) + " = load([" + operandList(P, Args) + "]))";
  case TransientKind::LoadGuessed:
    return "(" + P.regName(Dest) + " = load([" + operandList(P, Args) +
           "], (" + Val.str() + ", " + std::to_string(*Dep) + ")))";
  case TransientKind::LoadResolved:
    return "(" + P.regName(Dest) + " = " + Val.str() + "{" +
           (Dep ? std::to_string(*Dep) : std::string("_")) + ", " +
           toHex(LoadAddr) + "})";
  case TransientKind::Store: {
    std::string V = StoreValIsResolved ? StoreResolvedVal.str()
                                       : printOperand(P, StoreVal);
    std::string A = StoreAddrIsResolved
                        ? StoreAddr.str()
                        : "[" + operandList(P, Args) + "]";
    return "store(" + V + ", " + A + ")";
  }
  case TransientKind::JumpI:
    return "jmpi([" + operandList(P, Args) + "], " + std::to_string(N0) + ")";
  case TransientKind::CallMarker:
    return "call";
  case TransientKind::RetMarker:
    return "ret";
  case TransientKind::Fence:
    return "fence";
  }
  return "<invalid>";
}
