//===- core/Machine.h - The small-step speculative semantics ---*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine: one step `C ↪—o—↪_d C'` of the paper's three-stage
/// (fetch / execute / retire) out-of-order, speculative semantics.  Every
/// inference rule of §3.3–3.7 and Appendix A is implemented and named by a
/// RuleId so tests can assert exactly which rule fired.
///
/// A directive may be *inapplicable* in a configuration (no rule matches);
/// step() then returns std::nullopt and reports why.  Well-formed
/// schedules only ever issue applicable directives.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CORE_MACHINE_H
#define SCT_CORE_MACHINE_H

#include "core/Configuration.h"
#include "core/Directive.h"
#include "core/Eval.h"
#include "core/Observation.h"

#include <optional>
#include <span>

namespace sct {

/// Names of the paper's inference rules.
enum class RuleId : unsigned char {
  // Fetch stage.
  SimpleFetch,     ///< simple-fetch (op/load/store/fence)
  CondFetch,       ///< cond-fetch
  JmpiFetch,       ///< jmpi-fetch
  CallFetch,       ///< call-direct-fetch
  CallIFetch,      ///< calli fetch (indirect-call extension, App. A.1)
  RetFetchRsb,     ///< ret-fetch-rsb
  RetFetchRsbEmpty,///< ret-fetch-rsb-empty
  // Execute stage.
  OpExecute,              ///< op execution (implicit in the paper)
  CondExecuteCorrect,     ///< cond-execute-correct
  CondExecuteIncorrect,   ///< cond-execute-incorrect
  LoadExecuteNodep,       ///< load-execute-nodep
  LoadExecuteForward,     ///< load-execute-forward
  LoadExecuteFwdGuessed,  ///< load-execute-forwarded-guessed (§3.5)
  LoadExecuteAddrOk,      ///< load-execute-addr-ok (§3.5)
  LoadExecuteAddrHazard,  ///< load-execute-addr-hazard (§3.5)
  LoadExecuteAddrMemMatch,///< load-execute-addr-mem-match (§3.5)
  LoadExecuteAddrMemHazard,///< load-execute-addr-mem-hazard (§3.5)
  StoreExecuteValue,      ///< store-execute-value
  StoreExecuteAddrOk,     ///< store-execute-addr-ok
  StoreExecuteAddrHazard, ///< store-execute-addr-hazard
  JmpiExecuteCorrect,     ///< jmpi-execute-correct
  JmpiExecuteIncorrect,   ///< jmpi-execute-incorrect
  // Retire stage.
  ValueRetire, ///< value-retire (also retires resolved loads)
  JumpRetire,  ///< jump-retire
  StoreRetire, ///< store-retire
  FenceRetire, ///< fence-retire
  CallRetire,  ///< call-retire (retires the 3-entry call group)
  RetRetire,   ///< ret-retire (retires the 4-entry ret group)
};

/// Printable rule name (the paper's hyphenated spelling).
std::string_view ruleName(RuleId R);

/// The result of a successful step.
struct StepOutcome {
  Observation Obs;
  RuleId Rule;
};

/// The small-step machine for one program.
class Machine {
public:
  explicit Machine(const Program &P, MachineOptions Opts = {})
      : Prog(P), Opts(Opts) {}

  const Program &program() const { return Prog; }
  const MachineOptions &options() const { return Opts; }

  /// Attempts one step of \p C under directive \p D.  On success mutates
  /// \p C and returns the observation and rule; otherwise leaves \p C
  /// unchanged and (optionally) reports why the directive is inapplicable.
  std::optional<StepOutcome> step(Configuration &C, const Directive &D,
                                  std::string *WhyNot = nullptr) const;

  /// The register resolve function (buf +i ρ) of Figure 3, including the
  /// §3.5 extension for partially-resolved loads.  std::nullopt is ⊥
  /// (latest assignment before \p I is unresolved).
  std::optional<Value> resolveReg(const Configuration &C, BufIdx I,
                                  Reg R) const;

  /// Lifts resolveReg over an operand (immediates resolve to themselves).
  std::optional<Value> resolveOperand(const Configuration &C, BufIdx I,
                                      const Operand &Op) const;

  /// Pointwise lifting to operand lists; ⊥ if any element is ⊥.
  /// Returns an InlineVector so the per-execute resolution never touches
  /// the heap (operand lists are at most a few entries).
  std::optional<InlineVector<Value, 4>>
  resolveOperands(const Configuration &C, BufIdx I,
                  std::span<const Operand> Ops) const;

  /// True iff a fence sits in the buffer strictly before index \p I — the
  /// "∀j < i : buf(j) ≠ fence" premise of every execute rule (§3.6).
  static bool fenceBefore(const ReorderBuffer &Buf, BufIdx I);

  /// All directives applicable in \p C (probing on copies).  Candidate
  /// targets for fetch-target directives (indirect jumps, RSB-empty
  /// returns) are every program point plus end; this is exhaustive for the
  /// small programs used in tests and random exploration.
  std::vector<Directive> applicableDirectives(const Configuration &C) const;

private:
  const Program &Prog;
  MachineOptions Opts;

  std::optional<StepOutcome> stepFetch(Configuration &C, const Directive &D,
                                       std::string *WhyNot) const;
  std::optional<StepOutcome> stepExecute(Configuration &C, const Directive &D,
                                         std::string *WhyNot) const;
  std::optional<StepOutcome> stepRetire(Configuration &C,
                                        std::string *WhyNot) const;

  /// Rolls back to buffer index \p K: widens \p K to its group leader,
  /// truncates the buffer, rolls the RSB journal back, and returns the
  /// origin program point of the (possibly widened) rollback entry.
  PC rollbackTo(Configuration &C, BufIdx K) const;
};

} // namespace sct

#endif // SCT_CORE_MACHINE_H
