//===- sched/RandomScheduler.h - Random well-formed schedules --*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random *well-formed* schedules by repeatedly sampling from
/// the machine's applicable directives.  Used by the property tests to
/// exercise the metatheory: any well-formed schedule must satisfy
/// sequential equivalence (Theorem B.7), and no random schedule may find a
/// leak the worst-case explorer misses (Theorem B.20, scoped).
///
//===----------------------------------------------------------------------===//

#ifndef SCT_SCHED_RANDOMSCHEDULER_H
#define SCT_SCHED_RANDOMSCHEDULER_H

#include "sched/Executor.h"

namespace sct {

/// Knobs for random schedule generation.
struct RandomRunOptions {
  uint64_t Seed = 1;
  /// Stop after this many directives even if the run could continue.
  size_t MaxSteps = 2000;
  /// Suppress fetches once the buffer holds this many entries.
  size_t SpeculationWindow = 16;
  /// Include execute i : fwd j (alias prediction, §3.5) choices.
  bool AllowAliasPrediction = false;
  /// Weight of fetch directives relative to others (higher = deeper
  /// speculation).
  unsigned FetchWeight = 3;
};

/// Runs a freshly sampled random schedule; the schedule is recorded in the
/// result's trace.  The run ends at a final configuration, a stalled one
/// (no applicable directive), or the step bound.
RunResult runRandom(const Machine &M, Configuration Init,
                    const RandomRunOptions &Opts);

} // namespace sct

#endif // SCT_SCHED_RANDOMSCHEDULER_H
