//===- sched/ScheduleExplorer.h - Worst-case schedule exploration -*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pitchfork's schedule generation (§4.1, Definition B.18): a bounded set
/// of *worst-case attacker schedules* that is sound — if any well-formed
/// schedule exhibits a secret-labelled observation, some explored schedule
/// does too (Theorem B.20).
///
/// The schedules eagerly fetch until the reorder buffer holds
/// `SpeculationBound` entries, execute everything as soon as data allows,
/// and fork at the genuine decision points:
///  - both guesses of every conditional branch (the mispredicted guess is
///    resolved as late as possible, maximising wrong-path execution);
///  - for every store, resolving its address eagerly vs. delaying it past
///    younger loads (the §3.4 store-forwarding hazards; Spectre v4);
///  - optionally, alias-predicted forwards `execute i : fwd j` (§3.5);
///  - optionally, attacker-chosen indirect-jump targets (Spectre v2) and
///    RSB-underflow return targets (ret2spec), which the original
///    Pitchfork does not explore (§4, "Pitchfork only exercises a subset
///    of our semantics").
///
/// Every step's observation is checked for a secret label; each finding is
/// reported with the complete directive schedule that reaches it, so a
/// violation is a replayable witness.
///
/// Exploration is engine-shaped: an explicit frontier of `ExploreNode`s
/// (schedule prefix + snapshot) drained by a pool of worker threads.
/// With `Threads = N > 1` the frontier is *sharded*: each worker owns a
/// Chase-Lev-style deque (sched/WorkDeque.h) it pushes and pops LIFO, and
/// steals the oldest half of a random victim's deque when its own runs
/// dry.  `Shards = 1` selects the previous single mutex-guarded frontier,
/// kept as the contention baseline (bench/ContentionBench.cpp measures
/// the difference).  Optionally a cross-schedule seen-state table
/// (`PruneSeen`, sched/SeenStates.h) keyed on `Configuration::hash()`
/// drops frontier candidates whose configuration was already visited on
/// any schedule — v4-mode hazard re-executions converge onto previously
/// forked states constantly, and identical configurations have identical
/// subtrees.
///
/// Forks snapshot by copying the configuration (`SnapshotPolicy::Copy`;
/// cheap now that memory is copy-on-write), by storing only the directive
/// prefix and re-deriving the configuration by replay
/// (`SnapshotPolicy::Replay`) — a `Schedule` is already a replayable
/// witness, so the prefix alone determines the state — or by the hybrid
/// (`SnapshotPolicy::Hybrid`): a running path publishes a shared
/// checkpoint of its configuration every `CheckpointInterval` directives,
/// forked nodes store only the prefix plus a reference to the nearest
/// checkpoint, and materialization replays at most ~CheckpointInterval
/// directives from that checkpoint.  Replay cost is bounded by K while
/// frontier memory stays near `Replay` levels (siblings share one
/// checkpoint; see `ExploreResult::Checkpoints`/`ReplaySteps`).
///
/// **Determinism contract.**  `Threads <= 1` drains the frontier on the
/// calling thread in the legacy depth-first order: schedules complete in
/// a fixed sequence and every counter in `ExploreResult` is reproducible
/// run-to-run (with `PruneSeen` on — the default — still deterministic:
/// the same duplicates are pruned at the same points).  `Threads = N > 1` drains
/// in a racy order but produces the **identical deduplicated leak set**
/// for any N, Shards value, and snapshot policy: schedule-tree forks are
/// independent of drain order, per-worker leak buffers merge through
/// `LeakRecord::key()`, and the MaxLeaks budget counts globally-unique
/// keys.  With `PruneSeen` off, `TotalSteps`/`SchedulesCompleted` are
/// also N-independent (work conservation); with it on (the default) they
/// shrink and, under N > 1, may vary run-to-run by which racing twin got
/// pruned — the leak set still does not.
///
/// **Thread-safety.**  One `explore()` call builds its own workers,
/// frontier, and seen table; concurrent `explore()` calls (as
/// CheckSession::checkMany issues) share nothing but the immutable
/// Machine and Program.  The Configuration's COW memory is safe to share
/// between workers: forks unshare before their first store.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_SCHED_SCHEDULEEXPLORER_H
#define SCT_SCHED_SCHEDULEEXPLORER_H

#include "sched/Executor.h"
#include "sched/SeenStates.h"
#include "support/Hashing.h"

namespace sct {

/// A full-configuration checkpoint published by a Hybrid-policy path: the
/// state reached after applying the first `Len` directives of the path's
/// schedule.  Shared (immutable, behind shared_ptr) between every node
/// forked from the same stretch of path.  When
/// `ExplorerOptions::RecordCheckpointChain` is set each checkpoint also
/// links to the one it superseded, so a consumer holding the newest
/// checkpoint of a path can walk back to the nearest checkpoint at or
/// before *any* prefix length — the witness minimizer seeds its ddmin
/// candidate replays from these rungs instead of the initial
/// configuration (engine/WitnessMinimizer.h).
struct Checkpoint {
  Configuration Config;
  /// How many directives of the publishing path's schedule `Config` has
  /// applied; the prefix Sched[0, Len) of any schedule that reaches this
  /// checkpoint replays Init to exactly `Config`.
  size_t Len = 0;
  /// The previous checkpoint on the same path; null unless
  /// `RecordCheckpointChain` (keeping the whole chain alive costs one
  /// configuration per CheckpointInterval directives of path progress, so
  /// it is opt-in for consumers that replay mid-schedule).
  std::shared_ptr<const Checkpoint> Prev;
};

/// How a fork in the schedule tree checkpoints machine state.
enum class SnapshotPolicy : unsigned char {
  /// Store the forked configuration itself.  Copy-on-write memory makes
  /// this cheap in space until a side writes; it is the fastest policy.
  Copy,
  /// Store only the directive prefix; the worker that picks the node up
  /// re-derives the configuration by replaying the prefix from the
  /// initial configuration.  Trades CPU for near-zero frontier memory —
  /// useful when the frontier grows to millions of nodes.
  Replay,
  /// The replay-snapshot hybrid: a running path publishes a shared,
  /// immutable checkpoint of its configuration every
  /// `ExplorerOptions::CheckpointInterval` directives; forked nodes store
  /// the directive prefix plus a reference to the nearest checkpoint and
  /// re-derive their configuration by replaying at most ~K directives
  /// from it.  Bounds replay CPU by K and frontier memory by one shared
  /// checkpoint per K directives of path progress — the middle ground the
  /// K-sweep in bench/SnapshotBench.cpp measures.
  Hybrid,
};

/// Exploration knobs (§4.2.1's two configurations are:
/// {Bound=250, Hazards=false} and {Bound=20, Hazards=true}).
struct ExplorerOptions {
  /// Reorder-buffer size limit; bounds the depth of speculation.
  unsigned SpeculationBound = 20;
  /// Delay store-address resolution and explore forwarding hazards
  /// (Spectre v4).  The paper's "forwarding hazard detection": stores
  /// resolve their addresses as late as possible, younger loads read
  /// stale memory, and the forced resolution raises hazards that roll
  /// back and re-execute with the forwarded value — so both the stale and
  /// the fresh outcome of every store/load pair are explored.
  bool ExploreForwardingHazards = true;
  /// Fork Pitchfork's explicit [execute s_i : addr; execute l] schedules
  /// (§4.1) for *every* earlier unresolved store.  By default the forks
  /// are taken only for stores sitting in the shadow of unresolved
  /// control flow — stores a rollback would squash before their forced
  /// resolution, i.e. exactly the cases the forced-resolution rollbacks
  /// cannot cover (Spectre v1.1).  Architectural-path stores are covered
  /// by the forced resolution's hazard re-execution, so skipping their
  /// forks loses no leaks and avoids exponential blow-up on store-heavy
  /// straight-line code.
  bool ExhaustiveForwardForks = false;
  /// Mispredict/mistrain forks stop once this many unresolved branches or
  /// indirect jumps are in flight, bounding nested wrong-path loop
  /// unrolling (the paper's "explosion in state space", §4.2).
  unsigned MaxBranchDepth = 4;
  /// Fork on alias-predicted forwards (§3.5's hypothetical predictor).
  bool ExploreAliasPrediction = false;
  /// Extra attacker-chosen targets for indirect jumps (Spectre v2
  /// mistraining).  Empty = predict correctly, as Pitchfork does.
  std::vector<PC> IndirectTargets;
  /// Extra attacker-chosen targets for ret on RSB underflow (ret2spec).
  std::vector<PC> RsbUnderflowTargets;
  /// Budgets, shared atomically between workers.  Exhausting any of them
  /// marks the result `Truncated` (found leaks stay trustworthy; a clean
  /// verdict does not).
  uint64_t MaxSchedules = 1 << 20;
  uint64_t MaxStepsPerSchedule = 1 << 14;
  uint64_t MaxTotalSteps = 8ull << 20;
  size_t MaxLeaks = 4096;
  /// Stop the whole exploration at the first leak.
  bool StopAtFirstLeak = false;
  /// Worker threads draining the exploration frontier.  0 means "unset":
  /// explore() runs sequentially, and a CheckSession substitutes its own
  /// thread share.  0 or 1 explores on the calling thread in
  /// deterministic depth-first order; N > 1 produces the identical
  /// deduplicated leak set (per-worker leak buffers are merged through
  /// LeakRecord::key()).
  unsigned Threads = 0;
  /// How forked nodes checkpoint state (see SnapshotPolicy).
  SnapshotPolicy Snapshots = SnapshotPolicy::Copy;
  /// Hybrid snapshots only: a path publishes a fresh shared checkpoint
  /// once it has run this many directives past the previous one, so
  /// materializing any frontier node replays at most ~CheckpointInterval
  /// directives.  Smaller = more checkpoint memory, less replay CPU;
  /// 0 is treated as 1 (every node checkpoints, ≈ Copy with sharing).
  /// The default follows the committed BENCH_SNAPSHOT.json K-sweep.
  unsigned CheckpointInterval = 16;
  /// Frontier sharding (only meaningful when Threads > 1).  0 (default):
  /// one work-stealing deque per worker.  1: the single mutex-guarded
  /// shared frontier — the pre-sharding engine, kept as a contention
  /// baseline.  N > 1: N deques with workers mapped round-robin, so
  /// fewer shards than workers makes groups of workers share a deque;
  /// values above Threads are clamped (a deque no worker calls home
  /// could never receive work).
  unsigned Shards = 0;
  /// Hybrid snapshots only: link every published checkpoint to the one it
  /// superseded and hand the chain head to each `LeakRecord` (see
  /// `Checkpoint::Prev`).  Off by default — the chain keeps every
  /// checkpoint of a path alive for the lifetime of the leaks referencing
  /// it; CheckSession turns it on when witness minimization will consume
  /// the rungs as mid-schedule replay seeds.
  bool RecordCheckpointChain = false;
  /// Cross-schedule state pruning: fingerprint every frontier candidate
  /// with Configuration::hash() and drop candidates whose configuration
  /// was already visited on any schedule; additionally cut a path short
  /// when a forwarding-hazard rollback re-converges onto a visited state.
  /// Sound up to 64-bit fingerprint collisions (a collision would skip a
  /// never-visited subtree; tests/SeenStateTest.cpp keeps the suite
  /// corpus empirically collision-free) and budget accounting: a pruned
  /// twin inherits the first visitor's per-schedule step budget, so a
  /// run that would truncate anyway may truncate at a different point —
  /// `Truncated` reports it either way.  On by default (it preserves the
  /// leak set everywhere tested and completes previously budget-truncated
  /// trees, see BENCH_CONTENTION.json); opt out with `--no-prune-seen` or
  /// `PruneSeen = false` when exploration statistics must match the
  /// unpruned engine exactly.
  bool PruneSeen = true;
  /// Export this run's seen-state table and its leaky-below subset in
  /// `ExploreResult::SeenExport` (sched/SeenStates.h).  Requires PruneSeen
  /// (claims are what gets exported; with pruning off the export is
  /// empty).  Costs a per-path claim trail — a persistent cons-list
  /// shared between a path and its forks, one node per claim — so it is
  /// opt-in for consumers that re-check a transformed twin of this
  /// program (engine/MitigationSession.h).
  bool ExportSeenStates = false;
  /// Cross-program reuse: drop frontier candidates (and cut hazard
  /// re-executions short) whose configuration is covered() by a prior
  /// exploration of a relocation-equivalent program — the diff-driven
  /// re-check behind mitigation validation.  The filter's PcRemap
  /// contract (see RemappedSeenFilter) is what keeps the leak set
  /// byte-identical with the filter on or off; `ReusePrunedNodes` counts
  /// what it saved.
  std::shared_ptr<const RemappedSeenFilter> Reuse;
  /// Hashing-sensitivity knob: fingerprint states with
  /// Configuration::hashFromScratch() (a full state walk) at every
  /// fork-filter and convergence probe instead of the O(1)-amortized
  /// incremental hash().  Both compute bit-identical values, so leak
  /// sets and prune decisions cannot differ — only the cost does.
  /// bench/StepRateBench.cpp sweeps it against the default to isolate
  /// how much of the engine's step rate rides on probe cost (the >=2x
  /// tentpole number there is measured against the pre-PR layout, not
  /// this knob — lazy folding made the knob gap small on prune-heavy
  /// trees because most entries retire unhashed either way).
  bool FromScratchHashing = false;
  /// Collect ExploreStats (engages `ExploreResult::Stats`).  Off by
  /// default: the per-depth tallies cost a few atomics per fork, and the
  /// counters are a diagnosis tool (`sctcheck --stats`), not part of any
  /// verdict.
  bool CollectStats = false;
};

/// Diagnostic counters for one exploration (ExplorerOptions::CollectStats;
/// surfaced by `sctcheck --stats`).  Built to answer one question about a
/// budget-blown tree: is it hash-table pressure (long probe sequences),
/// missed recurrence detection (every fork insert is fresh), or a
/// genuinely exponential schedule tree (distinct-state growth per depth
/// keeps multiplying)?
struct ExploreStats {
  /// Seen-state table occupancy and probe lengths (sched/SeenStates.h).
  /// Probes / Lookups ≈ 1 means the flat table is healthy; growth here
  /// with a stable state count means table pressure, not tree growth.
  SeenTableStats Seen;
  /// Fork-filter verdicts: candidate nodes whose configuration was fresh
  /// (claimed and explored) vs. already claimed (pruned as duplicates).
  /// A near-zero duplicate share on a blown budget says the tree really
  /// is that big; a high share says pruning is working and the budget
  /// went to the fringe between duplicates.
  uint64_t ForkInsertNew = 0;
  uint64_t ForkInsertDup = 0;
  /// Hazard-rollback convergence probes (the tryStep pure query) and how
  /// many of them cut the path short.
  uint64_t ConvergenceChecks = 0;
  uint64_t ConvergencePrunes = 0;
  /// NewStatesPerDepth[d] counts fork-filter inserts of fresh states whose
  /// schedule prefix held d directives (bucketed by prefix length /
  /// DepthBucket).  A per-depth sequence that keeps multiplying by a
  /// constant factor is the signature of genuine exponential blowup;
  /// flat or shrinking tails mean recurrence pruning is containing it.
  static constexpr size_t DepthBucket = 64;
  std::vector<uint64_t> NewStatesPerDepth;
};

/// Program point responsible for a directive's observation in \p C, read
/// *before* stepping (a rollback may remove the entry): the executed
/// entry's origin, the retiring (oldest) entry's origin, or the current
/// fetch point.  The explorer, the witness minimizer, and the tests all
/// attribute leaks through this one helper so their `LeakRecord::key()`s
/// agree.
PC leakOriginOf(const Configuration &C, const Directive &D);

/// One secret-labelled observation with its replayable witness schedule.
struct LeakRecord {
  Schedule Sched;    ///< Directives up to and including the leaking step.
  Observation Obs;   ///< The secret-labelled observation.
  PC Origin;         ///< Program point of the leaking instruction.
  RuleId Rule;       ///< Rule that produced the observation.
  /// Minimized witness: empty unless witness minimization ran
  /// (engine/WitnessMinimizer.h, requested via
  /// CheckRequest::MinimizeWitnesses).  When set, it replays from the
  /// same initial configuration to an observation with the identical
  /// key(), in far fewer directives than the raw exploration prefix.
  Schedule MinSched;
  /// The checkpoint chain of the path that recorded this leak (null
  /// unless the exploration ran under SnapshotPolicy::Hybrid with
  /// `ExplorerOptions::RecordCheckpointChain` — a pinned checkpoint
  /// lives as long as this record, so it is only kept when a consumer
  /// asked for it).  Each rung's `Len`-prefix of `Sched` replays Init to
  /// exactly its `Config`; the `Prev` links reach every earlier rung of
  /// the path — the minimizer's mid-schedule replay seeds.
  std::shared_ptr<const Checkpoint> Ckpt;

  /// Key used to deduplicate leaks across schedules: a 64-bit hash-combine
  /// over (origin, observation kind, rule, taint mask).  Each field is
  /// avalanched through a splitmix64 finalizer (support/Hashing.h) before
  /// combining, so fields that overlap 8-bit boundaries (large Origin
  /// values, wide taint masks) cannot cancel the way the old shifted-XOR
  /// packing allowed.
  uint64_t key() const {
    return hashFields({uint64_t(Origin), uint64_t(Obs.K), uint64_t(Rule),
                       Obs.Payload.Taint.mask()});
  }
};

/// Result of an exploration.
struct ExploreResult {
  /// Unique leaks (deduplicated by origin/kind/rule/taint).
  std::vector<LeakRecord> Leaks;
  /// Total secret observations seen, including duplicates.
  uint64_t LeakEvents = 0;
  /// Number of complete schedules driven to a final configuration.
  uint64_t SchedulesCompleted = 0;
  uint64_t TotalSteps = 0;
  /// Frontier candidates dropped by the seen-state table (PruneSeen):
  /// forks and continuations whose configuration was already visited,
  /// plus hazard re-executions cut short at a visited state.
  uint64_t PrunedNodes = 0;
  /// Successful steal operations between frontier shards (Threads > 1
  /// with work-stealing; each may move many nodes at once).
  uint64_t Steals = 0;
  /// Directives re-executed while materializing frontier nodes under
  /// Replay/Hybrid snapshots.  Replayed steps never touch budgets, leak
  /// recording, or TotalSteps — they re-derive state already accounted.
  uint64_t ReplaySteps = 0;
  /// Full-configuration checkpoints published by the Hybrid policy (the
  /// frontier-memory proxy bench/SnapshotBench.cpp sweeps).
  uint64_t Checkpoints = 0;
  /// Frontier candidates dropped (and hazard re-executions cut short)
  /// because a prior exploration's exported table covered them
  /// (`ExplorerOptions::Reuse`).
  uint64_t ReusePrunedNodes = 0;
  /// Schedule-tree forks: how many configurations were copied at fork
  /// sites, the reorder-buffer bytes those copies actually moved
  /// (chunk references plus the private tail, under the structurally
  /// shared chunked layout), and what the same copies would have cost
  /// under a flat per-entry slab.  Flat / Copied is the sharing factor
  /// `sctcheck --stats` reports; always collected (three relaxed adds
  /// per fork), unlike the CollectStats-gated tallies.
  uint64_t ConfigsForked = 0;
  uint64_t RobBytesCopied = 0;
  uint64_t RobBytesFlat = 0;
  /// This run's claimed states and their leaky-below subset; engaged iff
  /// `ExplorerOptions::ExportSeenStates`.  Feed it to a
  /// RemappedSeenFilter to reuse this exploration when re-checking a
  /// relocated twin of the program.
  std::shared_ptr<const SeenStateExport> SeenExport;
  /// Diagnostic counters; engaged iff `ExplorerOptions::CollectStats`.
  std::optional<ExploreStats> Stats;
  /// True iff some budget was exhausted (exploration incomplete).
  bool Truncated = false;

  bool secure() const { return Leaks.empty(); }
};

/// Explores the worst-case schedules of \p M from \p Init.
ExploreResult explore(const Machine &M, Configuration Init,
                      const ExplorerOptions &Opts);

} // namespace sct

#endif // SCT_SCHED_SCHEDULEEXPLORER_H
