//===- sched/Executor.h - Big-step execution C ⇓_D C' ----------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a whole schedule against a configuration, recording the directive,
/// observation, and fired rule of every step — the big-step judgement
/// C ⇓^N_D C' with trace O (§3.1).
///
//===----------------------------------------------------------------------===//

#ifndef SCT_SCHED_EXECUTOR_H
#define SCT_SCHED_EXECUTOR_H

#include "core/Machine.h"
#include "sched/Schedule.h"

namespace sct {

/// One recorded step.
struct StepRecord {
  Directive D;
  Observation Obs;
  RuleId Rule;
};

/// Result of running a schedule.
struct RunResult {
  Configuration Final;
  std::vector<StepRecord> Trace;
  /// N: number of retire directives executed.
  size_t Retires = 0;
  /// True iff some directive was inapplicable; the run stops there (the
  /// schedule was not well-formed for the configuration).
  bool Stuck = false;
  size_t StuckAt = 0;
  std::string StuckReason;

  /// The leakage trace O: all non-silent observations in order.
  std::vector<Observation> observations() const;

  /// True iff some observation carries a secret label (an SCT violation
  /// witness under label soundness, Theorem B.9).
  bool hasSecretObservation() const;

  /// Attacker-visible trace equality with \p Other (Definition 3.1's
  /// O = O').
  bool sameObservations(const RunResult &Other) const;
};

/// Runs \p D from \p Init; stops early if a directive is inapplicable.
RunResult runSchedule(const Machine &M, Configuration Init, const Schedule &D);

/// Renders a run as the paper's three-column "Directive | Effect |
/// Leakage" tables (see Figures 1, 2, 5-7, 11-13).
std::string printRun(const Machine &M, const Configuration &Init,
                     const Schedule &D);

} // namespace sct

#endif // SCT_SCHED_EXECUTOR_H
