//===- sched/SequentialScheduler.h - Canonical sequential runs -*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The canonical sequential schedule (§3.1 "Aside, on sequential
/// execution" and Definition B.3): every instruction is fetched, fully
/// executed, and retired before the next is fetched.  Branch guesses and
/// indirect-jump predictions are chosen correctly by peeking at the
/// architectural state (always possible: the buffer is empty at each
/// instruction boundary), so the canonical schedule never rolls back —
/// except for `ret` whose RSB prediction genuinely mismatches the
/// in-memory return address (the retpoline construction of Figure 13
/// relies on exactly that mismatch).
///
/// The sequential machine is the baseline for the paper's metatheory:
/// Theorem 3.2 (equivalence), Theorem B.9 (label stability), and the
/// classical constant-time baseline checker.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_SCHED_SEQUENTIALSCHEDULER_H
#define SCT_SCHED_SEQUENTIALSCHEDULER_H

#include "sched/Executor.h"

namespace sct {

/// Result of a sequential run.
struct SequentialResult {
  RunResult Run;
  Schedule Sched;
  /// True iff the run stopped because it reached \p MaxRetires (e.g. a
  /// non-terminating program) rather than the end of the program.
  bool HitBound = false;
};

/// Runs the canonical sequential schedule from \p Init until the program
/// finishes or \p MaxRetires retire directives have been issued
/// (whichever comes first).
SequentialResult runSequential(const Machine &M, Configuration Init,
                               size_t MaxRetires = 1 << 20);

/// Runs exactly \p N retire directives of the canonical sequential
/// schedule (the ⇓^N_seq of Theorem B.7); stops early at program end.
SequentialResult runSequentialN(const Machine &M, Configuration Init,
                                size_t N);

} // namespace sct

#endif // SCT_SCHED_SEQUENTIALSCHEDULER_H
