//===- sched/Schedule.cpp - Directive schedules ------------------------------===//

#include "sched/Schedule.h"

using namespace sct;

size_t sct::retireCount(const Schedule &D) {
  size_t N = 0;
  for (const Directive &Dir : D)
    if (Dir.isRetire())
      ++N;
  return N;
}

std::string sct::printSchedule(const Schedule &D) {
  std::string Out;
  for (size_t I = 0; I < D.size(); ++I) {
    if (I != 0)
      Out += "; ";
    Out += D[I].str();
  }
  return Out;
}
