//===- sched/SequentialScheduler.cpp - Canonical sequential runs ------------===//

#include "sched/SequentialScheduler.h"

using namespace sct;

namespace {

/// Issues one directive, recording it; returns false (and marks the run
/// stuck) if it is inapplicable.
bool issue(const Machine &M, SequentialResult &R, const Directive &D) {
  std::string Why;
  auto Outcome = M.step(R.Run.Final, D, &Why);
  if (!Outcome) {
    R.Run.Stuck = true;
    R.Run.StuckAt = R.Sched.size();
    R.Run.StuckReason = std::move(Why);
    return false;
  }
  R.Sched.push_back(D);
  R.Run.Trace.push_back({D, Outcome->Obs, Outcome->Rule});
  if (D.isRetire())
    ++R.Run.Retires;
  return true;
}

/// Peeks the resolved value of an operand with an empty buffer (ρ only).
Value peekOperand(const Configuration &C, const Operand &Op) {
  if (Op.isImm())
    return Value::pub(Op.getImm());
  return C.Regs.get(Op.getReg());
}

std::vector<Value> peekOperands(const Configuration &C,
                                const std::vector<Operand> &Ops) {
  std::vector<Value> Values;
  Values.reserve(Ops.size());
  for (const Operand &Op : Ops)
    Values.push_back(peekOperand(C, Op));
  return Values;
}

SequentialResult runSequentialUpTo(const Machine &M, Configuration Init,
                                   size_t MaxRetires) {
  const Program &P = M.program();
  const MachineOptions &Opts = M.options();
  SequentialResult R;
  R.Run.Final = std::move(Init);

  while (!R.Run.Final.isFinal(P)) {
    if (R.Run.Retires >= MaxRetires) {
      R.HitBound = true;
      return R;
    }
    Configuration &C = R.Run.Final;
    assert(C.Buf.empty() && "sequential boundary with non-empty buffer");
    const Instruction &I = P.at(C.N);
    BufIdx Next = C.Buf.nextIndex();

    switch (I.kind()) {
    case InstrKind::Op:
    case InstrKind::Load:
      if (!issue(M, R, Directive::fetch()) ||
          !issue(M, R, Directive::execute(Next)) ||
          !issue(M, R, Directive::retire()))
        return R;
      break;

    case InstrKind::Store: {
      if (!issue(M, R, Directive::fetch()))
        return R;
      // Value/address steps are skipped when already in immediate form
      // (§3.4).
      if (!C.Buf.at(Next).StoreValIsResolved &&
          !issue(M, R, Directive::executeValue(Next)))
        return R;
      if (!C.Buf.at(Next).StoreAddrIsResolved &&
          !issue(M, R, Directive::executeAddr(Next)))
        return R;
      if (!issue(M, R, Directive::retire()))
        return R;
      break;
    }

    case InstrKind::Fence:
      if (!issue(M, R, Directive::fetch()) ||
          !issue(M, R, Directive::retire()))
        return R;
      break;

    case InstrKind::Branch: {
      // Peek the condition to guess correctly (empty buffer: ρ suffices).
      Value Cond = evalOp(I.opcode(), peekOperands(C, I.args()), Opts);
      if (!issue(M, R, Directive::fetchBool(truthy(Cond))) ||
          !issue(M, R, Directive::execute(Next)) ||
          !issue(M, R, Directive::retire()))
        return R;
      break;
    }

    case InstrKind::JumpI: {
      Value Target = evalAddr(peekOperands(C, I.args()), Opts);
      if (!issue(M, R, Directive::fetchTarget(static_cast<PC>(Target.Bits))) ||
          !issue(M, R, Directive::execute(Next)) ||
          !issue(M, R, Directive::retire()))
        return R;
      break;
    }

    case InstrKind::Call:
      // Group: marker, rsp bump, return-address store (value is
      // immediate, address is [rsp]); one retire commits all three.
      if (!issue(M, R, Directive::fetch()) ||
          !issue(M, R, Directive::execute(Next + 1)) ||
          !issue(M, R, Directive::executeAddr(Next + 2)) ||
          !issue(M, R, Directive::retire()))
        return R;
      break;

    case InstrKind::CallI: {
      // As Call, with the callee peeked so the prediction is correct and
      // a fourth group entry (the callee jump) to resolve.
      Value Target = evalAddr(peekOperands(C, I.args()), Opts);
      if (!issue(M, R, Directive::fetchTarget(static_cast<PC>(Target.Bits))) ||
          !issue(M, R, Directive::execute(Next + 1)) ||
          !issue(M, R, Directive::executeAddr(Next + 2)) ||
          !issue(M, R, Directive::execute(Next + 3)) ||
          !issue(M, R, Directive::retire()))
        return R;
      break;
    }

    case InstrKind::Ret: {
      // The RSB predicts; when it cannot (empty, attacker-choice policy)
      // the canonical schedule supplies the architectural return target.
      bool NeedTarget = Opts.RsbOnEmpty == RsbPolicy::AttackerChoice &&
                        !C.Rsb.top().has_value();
      Directive FetchDir = Directive::fetch();
      if (NeedTarget) {
        uint64_t Sp = C.Regs.get(Reg::sp()).Bits;
        FetchDir = Directive::fetchTarget(
            static_cast<PC>(C.Mem.load(Sp).Bits));
      }
      if (!issue(M, R, FetchDir) ||
          !issue(M, R, Directive::execute(Next + 1)) || // rtmp load
          !issue(M, R, Directive::execute(Next + 2)) || // rsp drop
          !issue(M, R, Directive::execute(Next + 3)))   // jump resolve
        return R;
      // A wrong RSB prediction rolled the jump back and re-inserted it
      // resolved at the same index; retiring works either way.
      if (!issue(M, R, Directive::retire()))
        return R;
      break;
    }
    }
  }
  return R;
}

} // namespace

SequentialResult sct::runSequential(const Machine &M, Configuration Init,
                                    size_t MaxRetires) {
  return runSequentialUpTo(M, std::move(Init), MaxRetires);
}

SequentialResult sct::runSequentialN(const Machine &M, Configuration Init,
                                     size_t N) {
  return runSequentialUpTo(M, std::move(Init), N);
}
