//===- sched/RandomScheduler.cpp - Random well-formed schedules -------------===//

#include "sched/RandomScheduler.h"

#include <random>

using namespace sct;

RunResult sct::runRandom(const Machine &M, Configuration Init,
                         const RandomRunOptions &Opts) {
  std::mt19937_64 Rng(Opts.Seed);
  RunResult R;
  R.Final = std::move(Init);

  for (size_t Step = 0; Step < Opts.MaxSteps; ++Step) {
    std::vector<Directive> Choices = M.applicableDirectives(R.Final);

    // Apply the speculation window and alias-prediction filters.
    std::vector<Directive> Filtered;
    for (const Directive &D : Choices) {
      if (D.isFetch() && R.Final.Buf.size() >= Opts.SpeculationWindow)
        continue;
      if (D.K == Directive::Kind::ExecuteFwd && !Opts.AllowAliasPrediction)
        continue;
      Filtered.push_back(D);
    }
    if (Filtered.empty())
      return R; // Final or stalled.

    // Weighted choice: fetches get FetchWeight tickets each.
    std::vector<size_t> Tickets;
    for (size_t I = 0; I < Filtered.size(); ++I) {
      size_t Weight = Filtered[I].isFetch() ? Opts.FetchWeight : 1;
      for (size_t W = 0; W < Weight; ++W)
        Tickets.push_back(I);
    }
    const Directive &D =
        Filtered[Tickets[Rng() % Tickets.size()]];

    auto Outcome = M.step(R.Final, D);
    assert(Outcome && "applicable directive failed to step");
    R.Trace.push_back({D, Outcome->Obs, Outcome->Rule});
    if (D.isRetire())
      ++R.Retires;
  }
  return R;
}
