//===- sched/SeenStates.h - Cross-schedule seen-state table ----*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cross-schedule seen-state table behind ExplorerOptions::PruneSeen:
/// a sharded concurrent set of Configuration fingerprints
/// (Configuration::hash()).  Schedule exploration revisits configurations
/// constantly — v4-mode forwarding hazards roll back and re-execute into
/// exactly the state an [execute s:addr; execute l] fork probed, and
/// independent resolution orders commute into identical buffers.  Since
/// the machine is deterministic given a configuration and a directive,
/// identical configurations have identical schedule subtrees, so the
/// second visitor can stop: its subtree's observations were (or will be)
/// produced by the first.
///
/// Thread-safety: insert() is linearizable per fingerprint — exactly one
/// caller ever gets `true` for a given value, no matter how many workers
/// race on it.  The table is sharded by the fingerprint's low bits so
/// concurrent inserts contend only when they land on the same shard.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_SCHED_SEENSTATES_H
#define SCT_SCHED_SEENSTATES_H

#include "core/Configuration.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_set>

namespace sct {

/// Sharded concurrent set of 64-bit state fingerprints.
class SeenStateTable {
public:
  /// \p ShardCount is rounded up to a power of two so shard selection is a
  /// mask; 64 shards keep 8 workers' inserts effectively contention-free.
  explicit SeenStateTable(unsigned ShardCount = 64) {
    unsigned N = 1;
    while (N < ShardCount && N < 4096)
      N <<= 1;
    Mask = N - 1;
    Shards = std::make_unique<Shard[]>(N);
  }

  /// Records \p Fingerprint; returns true iff this call was the first to
  /// insert it (the caller owns exploring that state's subtree).
  bool insert(uint64_t Fingerprint) {
    Shard &S = Shards[Fingerprint & Mask];
    std::lock_guard<std::mutex> L(S.Mu);
    return S.Set.insert(Fingerprint).second;
  }

  /// True iff \p Fingerprint was inserted before.  Advisory only under
  /// concurrency — a racing insert may land right after the check.
  bool contains(uint64_t Fingerprint) const {
    const Shard &S = Shards[Fingerprint & Mask];
    std::lock_guard<std::mutex> L(S.Mu);
    return S.Set.count(Fingerprint) != 0;
  }

  /// Total distinct fingerprints recorded.  Takes the shard locks one at
  /// a time, so concurrent inserts make this a snapshot, not a fence.
  uint64_t size() const {
    uint64_t Total = 0;
    for (unsigned I = 0; I <= Mask; ++I) {
      std::lock_guard<std::mutex> L(Shards[I].Mu);
      Total += Shards[I].Set.size();
    }
    return Total;
  }

private:
  /// Cache-line sized so neighbouring shards' locks do not false-share.
  struct alignas(64) Shard {
    mutable std::mutex Mu;
    std::unordered_set<uint64_t> Set;
  };

  std::unique_ptr<Shard[]> Shards;
  unsigned Mask = 0;
};

/// An exploration's exported seen-state evidence
/// (`ExplorerOptions::ExportSeenStates`): the claimed fingerprints, plus
/// the subset of claims that cannot be certified leak-free — a leak event
/// occurred somewhere below them, or their subtree's coverage is unknown
/// because a convergence prune cut a path short there.  `Seen \
/// LeakyBelow` is therefore the set of states whose whole schedule
/// subtree was explored and found clean; that is the certificate the
/// cross-program reuse filter below consumes.
struct SeenStateExport {
  SeenStateTable Seen;
  SeenStateTable LeakyBelow;
};

/// The index-remapping adapter behind mitigation re-check reuse
/// (engine/MitigationSession.h): lets a *relocated* program's
/// configurations hash commensurably with the original program's states
/// via `Configuration::hash(const PcRemap &)`, and answers whether a
/// candidate state is *covered* by the original exploration — i.e. its
/// remapped fingerprint was claimed there and certified leak-free.
///
/// Soundness rests on the PcRemap the caller supplies: it must return an
/// image only for states whose schedule subtree in the relocated program
/// is isomorphic to the original's (no inserted instruction reachable —
/// the engine layer's influence analysis enforces this by mapping
/// influenced points to nullopt).  Under that contract, pruning a covered
/// state loses nothing: the isomorphic original subtree was fully
/// explored and contains no leak, so the relocated twin cannot either.
/// Residual caveats are the table's usual 64-bit fingerprint collisions.
///
/// Thread-safety: covered() is safe from any number of explorer workers;
/// the root-site record is mutex-guarded.
class RemappedSeenFilter {
public:
  RemappedSeenFilter(std::shared_ptr<const SeenStateExport> Base,
                     std::shared_ptr<const PcRemap> Remap)
      : Base(std::move(Base)), Remap(std::move(Remap)) {}

  /// True iff \p C's remapped fingerprint names a claimed, leak-free
  /// original subtree.  Records the subtree root's fetch point (original
  /// coordinates) for reporting.
  bool covered(const Configuration &C) const {
    std::optional<uint64_t> H = C.hash(*Remap);
    if (!H)
      return false;
    if (!Base->Seen.contains(*H) || Base->LeakyBelow.contains(*H))
      return false;
    if (std::optional<PC> Root = Remap->target(C.N)) {
      std::lock_guard<std::mutex> L(Mu);
      Roots.insert(*Root);
    }
    return true;
  }

  /// Fetch points (original coordinates) of the subtrees covered()
  /// pruned, sorted.  Meaningful after the exploration consuming the
  /// filter has finished.
  std::vector<PC> prunedRoots() const {
    std::lock_guard<std::mutex> L(Mu);
    return std::vector<PC>(Roots.begin(), Roots.end());
  }

private:
  std::shared_ptr<const SeenStateExport> Base;
  std::shared_ptr<const PcRemap> Remap;
  mutable std::mutex Mu;
  mutable std::set<PC> Roots;
};

} // namespace sct

#endif // SCT_SCHED_SEENSTATES_H
