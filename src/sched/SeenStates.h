//===- sched/SeenStates.h - Cross-schedule seen-state table ----*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cross-schedule seen-state table behind ExplorerOptions::PruneSeen:
/// a sharded concurrent set of Configuration fingerprints
/// (Configuration::hash()).  Schedule exploration revisits configurations
/// constantly — v4-mode forwarding hazards roll back and re-execute into
/// exactly the state an [execute s:addr; execute l] fork probed, and
/// independent resolution orders commute into identical buffers.  Since
/// the machine is deterministic given a configuration and a directive,
/// identical configurations have identical schedule subtrees, so the
/// second visitor can stop: its subtree's observations were (or will be)
/// produced by the first.
///
/// Thread-safety: insert() is linearizable per fingerprint — exactly one
/// caller ever gets `true` for a given value, no matter how many workers
/// race on it.  The table is sharded by the fingerprint's low bits so
/// concurrent inserts contend only when they land on the same shard.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_SCHED_SEENSTATES_H
#define SCT_SCHED_SEENSTATES_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>

namespace sct {

/// Sharded concurrent set of 64-bit state fingerprints.
class SeenStateTable {
public:
  /// \p ShardCount is rounded up to a power of two so shard selection is a
  /// mask; 64 shards keep 8 workers' inserts effectively contention-free.
  explicit SeenStateTable(unsigned ShardCount = 64) {
    unsigned N = 1;
    while (N < ShardCount && N < 4096)
      N <<= 1;
    Mask = N - 1;
    Shards = std::make_unique<Shard[]>(N);
  }

  /// Records \p Fingerprint; returns true iff this call was the first to
  /// insert it (the caller owns exploring that state's subtree).
  bool insert(uint64_t Fingerprint) {
    Shard &S = Shards[Fingerprint & Mask];
    std::lock_guard<std::mutex> L(S.Mu);
    return S.Set.insert(Fingerprint).second;
  }

  /// True iff \p Fingerprint was inserted before.  Advisory only under
  /// concurrency — a racing insert may land right after the check.
  bool contains(uint64_t Fingerprint) const {
    const Shard &S = Shards[Fingerprint & Mask];
    std::lock_guard<std::mutex> L(S.Mu);
    return S.Set.count(Fingerprint) != 0;
  }

  /// Total distinct fingerprints recorded.  Takes the shard locks one at
  /// a time, so concurrent inserts make this a snapshot, not a fence.
  uint64_t size() const {
    uint64_t Total = 0;
    for (unsigned I = 0; I <= Mask; ++I) {
      std::lock_guard<std::mutex> L(Shards[I].Mu);
      Total += Shards[I].Set.size();
    }
    return Total;
  }

private:
  /// Cache-line sized so neighbouring shards' locks do not false-share.
  struct alignas(64) Shard {
    mutable std::mutex Mu;
    std::unordered_set<uint64_t> Set;
  };

  std::unique_ptr<Shard[]> Shards;
  unsigned Mask = 0;
};

} // namespace sct

#endif // SCT_SCHED_SEENSTATES_H
