//===- sched/SeenStates.h - Cross-schedule seen-state table ----*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cross-schedule seen-state table behind ExplorerOptions::PruneSeen:
/// a sharded concurrent set of Configuration fingerprints
/// (Configuration::hash()).  Schedule exploration revisits configurations
/// constantly — v4-mode forwarding hazards roll back and re-execute into
/// exactly the state an [execute s:addr; execute l] fork probed, and
/// independent resolution orders commute into identical buffers.  Since
/// the machine is deterministic given a configuration and a directive,
/// identical configurations have identical schedule subtrees, so the
/// second visitor can stop: its subtree's observations were (or will be)
/// produced by the first.
///
/// Thread-safety: insert() is linearizable per fingerprint — exactly one
/// caller ever gets `true` for a given value, no matter how many workers
/// race on it.  The table is sharded by the fingerprint's low bits so
/// concurrent inserts contend only when they land on the same shard.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_SCHED_SEENSTATES_H
#define SCT_SCHED_SEENSTATES_H

#include "core/Configuration.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

namespace sct {

/// Aggregate occupancy/probe statistics of a SeenStateTable (one explore()
/// call's table), feeding `sctcheck --stats` and the blowup-diagnosis
/// counters in ExploreResult.  Probes count slot inspections, so
/// `Probes / Lookups` is the mean probe-sequence length — the number to
/// watch when diagnosing whether a budget blowup is hash-table pressure or
/// a genuinely exponential schedule tree.
struct SeenTableStats {
  uint64_t Entries = 0;  ///< Distinct fingerprints stored.
  uint64_t Capacity = 0; ///< Total slots across all shards.
  uint64_t Lookups = 0;  ///< insert() + contains() calls.
  uint64_t Probes = 0;   ///< Slots inspected across all lookups.
};

/// Sharded concurrent set of 64-bit state fingerprints.
///
/// Each shard is a flat open-addressing table of raw uint64_t slots
/// (linear probing, empty = 0 with a side flag for the genuine 0
/// fingerprint) rather than a node-based unordered_set: a membership
/// probe touches one cache line in the common case instead of chasing a
/// bucket pointer, and the explorer probes this table at every fork and
/// convergence check.  Fingerprints are already avalanche-mixed
/// (support/Hashing.h), so the value itself indexes well; slots use the
/// *high* bits because shard selection already consumed the low ones.
class SeenStateTable {
public:
  /// \p ShardCount is rounded up to a power of two so shard selection is a
  /// mask; 64 shards keep 8 workers' inserts effectively contention-free.
  explicit SeenStateTable(unsigned ShardCount = 64) {
    unsigned N = 1;
    while (N < ShardCount && N < 4096)
      N <<= 1;
    Mask = N - 1;
    Shards = std::make_unique<Shard[]>(N);
  }

  /// Records \p Fingerprint; returns true iff this call was the first to
  /// insert it (the caller owns exploring that state's subtree).
  bool insert(uint64_t Fingerprint) {
    Shard &S = Shards[Fingerprint & Mask];
    std::lock_guard<std::mutex> L(S.Mu);
    ++S.Lookups;
    if (Fingerprint == 0) {
      ++S.Probes;
      if (S.HasZero)
        return false;
      S.HasZero = true;
      ++S.Count;
      return true;
    }
    if (S.Slots.empty())
      S.rehash(MinSlots);
    else if ((S.Count + 1) * 10 > S.Slots.size() * 7) // 0.7 load factor
      S.rehash(S.Slots.size() * 2);
    size_t I = S.find(Fingerprint);
    if (S.Slots[I] == Fingerprint)
      return false;
    S.Slots[I] = Fingerprint;
    ++S.Count;
    return true;
  }

  /// True iff \p Fingerprint was inserted before.  Advisory only under
  /// concurrency — a racing insert may land right after the check.
  bool contains(uint64_t Fingerprint) const {
    Shard &S = Shards[Fingerprint & Mask];
    std::lock_guard<std::mutex> L(S.Mu);
    ++S.Lookups;
    if (Fingerprint == 0) {
      ++S.Probes;
      return S.HasZero;
    }
    if (S.Slots.empty()) {
      ++S.Probes;
      return false;
    }
    return S.Slots[S.find(Fingerprint)] == Fingerprint;
  }

  /// Total distinct fingerprints recorded.  Takes the shard locks one at
  /// a time, so concurrent inserts make this a snapshot, not a fence.
  uint64_t size() const {
    uint64_t Total = 0;
    for (unsigned I = 0; I <= Mask; ++I) {
      std::lock_guard<std::mutex> L(Shards[I].Mu);
      Total += Shards[I].Count;
    }
    return Total;
  }

  /// Occupancy and probe-length counters, aggregated over all shards
  /// (same snapshot semantics as size()).
  SeenTableStats stats() const {
    SeenTableStats St;
    for (unsigned I = 0; I <= Mask; ++I) {
      std::lock_guard<std::mutex> L(Shards[I].Mu);
      St.Entries += Shards[I].Count;
      St.Capacity += Shards[I].Slots.size();
      St.Lookups += Shards[I].Lookups;
      St.Probes += Shards[I].Probes;
    }
    return St;
  }

private:
  /// Smallest per-shard slot array; allocated lazily on first insert so a
  /// 64-shard table for a tiny exploration stays a few hundred bytes.
  static constexpr size_t MinSlots = 64;

  /// Cache-line sized so neighbouring shards' locks do not false-share.
  /// All fields (counters included) are guarded by Mu; the counters are
  /// mutable so contains() can account its probes.
  struct alignas(64) Shard {
    mutable std::mutex Mu;
    std::vector<uint64_t> Slots; ///< Power-of-two; 0 = empty.
    size_t Count = 0;            ///< Stored fingerprints (incl. zero).
    bool HasZero = false;        ///< The fingerprint 0 is present.
    mutable uint64_t Lookups = 0;
    mutable uint64_t Probes = 0;

    /// Linear probe from the fingerprint's high bits; returns the index
    /// holding \p F or the first empty slot.  Caller holds Mu and
    /// guarantees a free slot exists.
    size_t find(uint64_t F) const {
      size_t M = Slots.size() - 1;
      size_t I = (F >> 32) & M;
      while (true) {
        ++Probes;
        if (Slots[I] == F || Slots[I] == 0)
          return I;
        I = (I + 1) & M;
      }
    }

    void rehash(size_t NewSize) {
      std::vector<uint64_t> Old = std::move(Slots);
      Slots.assign(NewSize, 0);
      uint64_t SavedProbes = Probes; // Rehash moves are not lookups.
      for (uint64_t F : Old)
        if (F != 0)
          Slots[find(F)] = F;
      Probes = SavedProbes;
    }
  };

  std::unique_ptr<Shard[]> Shards;
  unsigned Mask = 0;
};

/// An exploration's exported seen-state evidence
/// (`ExplorerOptions::ExportSeenStates`): the claimed fingerprints, plus
/// the subset of claims that cannot be certified leak-free — a leak event
/// occurred somewhere below them, or their subtree's coverage is unknown
/// because a convergence prune cut a path short there.  `Seen \
/// LeakyBelow` is therefore the set of states whose whole schedule
/// subtree was explored and found clean; that is the certificate the
/// cross-program reuse filter below consumes.
struct SeenStateExport {
  SeenStateTable Seen;
  SeenStateTable LeakyBelow;
};

/// The index-remapping adapter behind mitigation re-check reuse
/// (engine/MitigationSession.h): lets a *relocated* program's
/// configurations hash commensurably with the original program's states
/// via `Configuration::hash(const PcRemap &)`, and answers whether a
/// candidate state is *covered* by the original exploration — i.e. its
/// remapped fingerprint was claimed there and certified leak-free.
///
/// Soundness rests on the PcRemap the caller supplies: it must return an
/// image only for states whose relocated schedule subtree cannot observe
/// anything the original's subtree does not — subtree isomorphism (no
/// inserted instruction reachable; the engine layer's influence analysis
/// enforces this by mapping influenced points to nullopt) is the strict
/// version, and fence-only insertions qualify under the weaker
/// observation-subset reading (engine/MitigationSession.cpp's
/// MitigationRemap).  Under that contract, pruning a covered state loses
/// nothing: the original subtree was fully explored and contains no
/// leak, so the relocated state's subtree cannot either.  Residual
/// caveats are the table's usual 64-bit fingerprint collisions.
///
/// Thread-safety: covered() is safe from any number of explorer workers;
/// the root-site record is mutex-guarded.
class RemappedSeenFilter {
public:
  RemappedSeenFilter(std::shared_ptr<const SeenStateExport> Base,
                     std::shared_ptr<const PcRemap> Remap)
      : Base(std::move(Base)), Remap(std::move(Remap)) {}

  /// True iff \p C's remapped fingerprint names a claimed, leak-free
  /// original subtree.  Records the subtree root's fetch point (original
  /// coordinates) for reporting.
  bool covered(const Configuration &C) const {
    std::optional<uint64_t> H = C.hash(*Remap);
    if (!H)
      return false;
    if (!Base->Seen.contains(*H) || Base->LeakyBelow.contains(*H))
      return false;
    if (std::optional<PC> Root = Remap->fetchPoint(C.N)) {
      std::lock_guard<std::mutex> L(Mu);
      Roots.insert(*Root);
    }
    return true;
  }

  /// Fetch points (original coordinates) of the subtrees covered()
  /// pruned, sorted.  Meaningful after the exploration consuming the
  /// filter has finished.
  std::vector<PC> prunedRoots() const {
    std::lock_guard<std::mutex> L(Mu);
    return std::vector<PC>(Roots.begin(), Roots.end());
  }

private:
  std::shared_ptr<const SeenStateExport> Base;
  std::shared_ptr<const PcRemap> Remap;
  mutable std::mutex Mu;
  mutable std::set<PC> Roots;
};

} // namespace sct

#endif // SCT_SCHED_SEENSTATES_H
