//===- sched/WorkDeque.h - Work-stealing frontier shards -------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sharded exploration frontier: per-worker deques in the Chase-Lev
/// discipline — the owner pushes and pops at the *bottom* (LIFO, so a
/// worker keeps descending the subtree it just forked, which maximises
/// replay affinity and keeps frontier memory at O(tree depth)), while
/// thieves take from the *top* (FIFO, the oldest nodes, whose subtrees are
/// the largest and amortise the steal best).  Thieves steal *half* the
/// victim's deque in one operation (Cilk-style steal-half), so a starving
/// worker rebalances in O(log frontier) steals instead of trickling one
/// node at a time.
///
/// Each shard is guarded by its own mutex rather than the lock-free
/// Chase-Lev protocol: exploration nodes are fat (a Schedule vector plus
/// an optional COW Configuration), so the transfer itself dwarfs an
/// uncontended lock, and the mutex keeps the stealing path trivially
/// data-race-free (the CI ThreadSanitizer job holds the engine to that).
/// What matters for contention is that workers no longer share one global
/// mutex: a worker's fast path touches only its own shard, and thieves
/// contend only with the specific victim they probe.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_SCHED_WORKDEQUE_H
#define SCT_SCHED_WORKDEQUE_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

namespace sct {

/// One frontier shard: a deque with owner-LIFO / thief-FIFO ends.
template <typename T> class WorkDeque {
public:
  /// Owner side: push a node at the bottom.
  void pushBottom(T &&Item) {
    std::lock_guard<std::mutex> L(Mu);
    Items.push_back(std::move(Item));
  }

  /// Owner side: pop the most recently pushed node (depth-first descent).
  bool popBottom(T &Out) {
    std::lock_guard<std::mutex> L(Mu);
    if (Items.empty())
      return false;
    Out = std::move(Items.back());
    Items.pop_back();
    return true;
  }

  /// Thief side: take the oldest half of the deque (at least one node) in
  /// FIFO order.  Returns the number of nodes appended to \p Out.
  size_t stealTopHalf(std::vector<T> &Out) {
    std::lock_guard<std::mutex> L(Mu);
    if (Items.empty())
      return 0;
    size_t Take = (Items.size() + 1) / 2;
    for (size_t I = 0; I < Take; ++I) {
      Out.push_back(std::move(Items.front()));
      Items.pop_front();
    }
    return Take;
  }

  bool empty() const {
    std::lock_guard<std::mutex> L(Mu);
    return Items.empty();
  }

private:
  mutable std::mutex Mu;
  std::deque<T> Items;
};

/// The sharded frontier: a fixed array of WorkDeques plus the randomized
/// steal protocol.  Workers map onto shards round-robin (worker w owns
/// shard w mod shards()); with the default one-shard-per-worker layout the
/// mapping is the identity.
///
/// Thread-safety: every method is safe to call concurrently from any
/// worker.  At most one shard mutex is held at a time (a steal drains the
/// victim into a local buffer before refilling the thief's shard), so the
/// protocol cannot deadlock regardless of victim order.
template <typename T> class StealQueue {
public:
  explicit StealQueue(unsigned ShardCount)
      : Shards(ShardCount ? ShardCount : 1) {
    for (auto &S : Shards)
      S = std::make_unique<WorkDeque<T>>();
  }

  unsigned shards() const { return static_cast<unsigned>(Shards.size()); }

  /// Home shard of worker \p WorkerId.
  unsigned homeOf(unsigned WorkerId) const { return WorkerId % shards(); }

  void push(unsigned Shard, T &&Item) {
    Shards[Shard]->pushBottom(std::move(Item));
  }

  /// Owner fast path: LIFO pop from the worker's own shard.
  bool tryPop(unsigned Shard, T &Out) {
    return Shards[Shard]->popBottom(Out);
  }

  /// Steal for the worker owning \p Home: probe every other shard once,
  /// starting from a caller-supplied random offset (randomization spreads
  /// simultaneous thieves over distinct victims).  On success the oldest
  /// stolen node is returned in \p Out for immediate execution and the
  /// rest refill the home shard; the number of nodes taken is returned, 0
  /// if every victim was empty.
  size_t trySteal(unsigned Home, unsigned RandomOffset, T &Out) {
    unsigned D = shards();
    if (D <= 1)
      return 0;
    std::vector<T> Loot;
    for (unsigned K = 0; K < D; ++K) {
      unsigned Victim = (RandomOffset + K) % D;
      if (Victim == Home)
        continue;
      if (Shards[Victim]->stealTopHalf(Loot) == 0)
        continue;
      // Oldest node runs now; the younger remainder refills home in
      // order, so the owner's next LIFO pops see youngest-first — the
      // same descent order the victim would have used.
      Out = std::move(Loot.front());
      for (size_t I = 1; I < Loot.size(); ++I)
        Shards[Home]->pushBottom(std::move(Loot[I]));
      return Loot.size();
    }
    return 0;
  }

private:
  std::vector<std::unique_ptr<WorkDeque<T>>> Shards;
};

} // namespace sct

#endif // SCT_SCHED_WORKDEQUE_H
