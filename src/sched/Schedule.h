//===- sched/Schedule.h - Directive schedules ------------------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A schedule D is a sequence of attacker directives; the big-step
/// judgement C ⇓_D C' runs one (§3.1).
///
//===----------------------------------------------------------------------===//

#ifndef SCT_SCHED_SCHEDULE_H
#define SCT_SCHED_SCHEDULE_H

#include "core/Directive.h"

#include <string>
#include <vector>

namespace sct {

/// A directive schedule.
using Schedule = std::vector<Directive>;

/// Number of retire directives in \p D — the paper's N (retired
/// instruction count of a big step).
size_t retireCount(const Schedule &D);

/// Renders "fetch; execute 1; retire; ..." (the paper's list notation).
std::string printSchedule(const Schedule &D);

} // namespace sct

#endif // SCT_SCHED_SCHEDULE_H
