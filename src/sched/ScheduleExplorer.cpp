//===- sched/ScheduleExplorer.cpp - Worst-case schedule exploration ---------===//
//
// The exploration engine: an explicit work queue of ExploreNodes (schedule
// prefix + snapshot) drained by worker threads.  A worker pops a node,
// materialises its configuration (moving the stored snapshot out, or
// replaying directives — the whole prefix from the initial configuration
// under SnapshotPolicy::Replay, the tail past a shared checkpoint under
// SnapshotPolicy::Hybrid), and runs the path forward.  Decision points (Definition B.18's schedule-set
// forks) do not recurse: the fork's probed configuration becomes a new
// node, the worker switches to the first fork and pushes the rest plus its
// own continuation, which for a single worker reproduces the legacy
// depth-first order exactly.
//
// Three drain modes share the path-running code:
//  - Threads <= 1: the frontier is a plain vector drained LIFO on the
//    calling thread — the deterministic legacy order.
//  - Threads > 1, Shards == 1: one mutex+condvar-guarded frontier shared
//    by all workers (the pre-sharding engine, kept as the contention
//    baseline for bench/ContentionBench.cpp).
//  - Threads > 1 otherwise: per-worker work-stealing deques
//    (sched/WorkDeque.h); owners pop LIFO, thieves steal the oldest half
//    of a random victim.  Termination is a global in-flight count: nodes
//    queued plus paths running; when it hits zero no work exists or can
//    appear.
//
// Budgets and tallies are shared atomics; leaks collect in per-worker
// buffers merged through LeakRecord::key() at the end, so the deduplicated
// leak set is independent of drain order.  With ExplorerOptions::PruneSeen
// a cross-schedule seen-state table (sched/SeenStates.h) keyed on
// Configuration::hash() drops frontier candidates whose configuration was
// already visited and cuts hazard re-executions short when they converge
// onto a visited state — identical configurations have identical subtrees,
// so the first visitor's exploration covers the twin's.
//
//===----------------------------------------------------------------------===//

#include "sched/ScheduleExplorer.h"

#include "sched/SeenStates.h"
#include "sched/WorkDeque.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <random>
#include <set>
#include <thread>

using namespace sct;

namespace {

/// ExportSeenStates bookkeeping: the fingerprints a path claimed, as a
/// persistent cons-list shared between a path and everything forked from
/// it (the Checkpoint::Prev pattern) — fork inheritance is a pointer
/// copy, not an O(depth) vector copy.  `Marked` lets the leaky-below
/// walk stop at the first node a previous walk already poisoned: a
/// marked node's ancestors are marked too, so total marking work is
/// linear in distinct claims.
struct ClaimNode {
  ClaimNode(uint64_t Fp, std::shared_ptr<const ClaimNode> Prev)
      : Fp(Fp), Prev(std::move(Prev)) {}
  uint64_t Fp;
  std::shared_ptr<const ClaimNode> Prev;
  mutable std::atomic<bool> Marked{false};
};
using ClaimTrail = std::shared_ptr<const ClaimNode>;

/// One immutable segment of a schedule prefix.  A path's schedule is the
/// concatenation of its chain's segments (oldest ancestor first) plus a
/// mutable per-path suffix.  At every fork point the parent's suffix
/// seals into one spine node shared by the continuation and every
/// sibling, so forking is O(1) in schedule depth — the old representation
/// copied the whole directive vector per fork, which dominated fork cost
/// on deep trees.  Total storage is one directive per step of genuinely
/// distinct schedule, not one per step per fork.
struct SchedChain {
  const SchedChain *Parent = nullptr;
  /// Directives on the chain strictly before Seg.
  size_t StartLen = 0;
  std::vector<Directive> Seg;

  size_t endLen() const { return StartLen + Seg.size(); }
};

/// Engine-scoped slab allocator for SchedChain nodes: per-worker chunk
/// lists, each appended only by its owning worker (no lock), all freed
/// together when the engine dies.  Nodes are immutable once made and
/// become visible to other workers only through the frontier queues,
/// whose synchronization publishes them.  Chain nodes are never freed
/// individually: a node's directives are live as long as any descendant
/// path or recorded leak may flatten through it, and one Directive per
/// explored step is the floor any representation pays anyway.
class SchedChainArena {
public:
  explicit SchedChainArena(unsigned Workers) : Pools(Workers) {}

  const SchedChain *make(unsigned WorkerId, const SchedChain *Parent,
                         std::vector<Directive> Seg) {
    Pool &P = Pools[WorkerId];
    if (P.Chunks.empty() || P.Used == ChunkSize) {
      P.Chunks.push_back(std::make_unique<SchedChain[]>(ChunkSize));
      P.Used = 0;
    }
    SchedChain *N = &P.Chunks.back()[P.Used++];
    N->Parent = Parent;
    N->StartLen = Parent ? Parent->endLen() : 0;
    N->Seg = std::move(Seg);
    return N;
  }

private:
  static constexpr size_t ChunkSize = 256;
  /// Cache-line separated so workers' bump pointers do not false-share.
  struct alignas(64) Pool {
    std::vector<std::unique_ptr<SchedChain[]>> Chunks;
    size_t Used = 0;
  };
  std::vector<Pool> Pools;
};

/// Appends the directives at positions [From, end) of the schedule
/// represented by \p Prefix + \p Suffix onto \p Out.
void flattenFrom(const SchedChain *Prefix, const Schedule &Suffix,
                 size_t From, Schedule &Out) {
  // Chain nodes newest-first, stopping at the first that ends at or
  // before From (its ancestors end even earlier).
  std::vector<const SchedChain *> Nodes;
  for (const SchedChain *N = Prefix; N && N->endLen() > From; N = N->Parent)
    Nodes.push_back(N);
  for (auto It = Nodes.rbegin(); It != Nodes.rend(); ++It) {
    const SchedChain *N = *It;
    size_t Skip = From > N->StartLen ? From - N->StartLen : 0;
    Out.insert(Out.end(), N->Seg.begin() + Skip, N->Seg.end());
  }
  size_t SufStart = Prefix ? Prefix->endLen() : 0;
  size_t Skip = From > SufStart ? From - SufStart : 0;
  Out.insert(Out.end(), Suffix.begin() + Skip, Suffix.end());
}

/// One frontier entry: a point in the schedule tree still to be explored.
struct ExploreNode {
  /// The configuration at this point (engaged under SnapshotPolicy::Copy).
  std::optional<Configuration> Snap;
  /// Hybrid snapshots: the nearest published checkpoint, shared between
  /// every node forked from the same stretch of path; Base->Len of
  /// Sched's directives are already applied in it.  Materialization
  /// replays only Sched[Base->Len..] from Base->Config.  Null under
  /// Copy/Replay (Replay re-derives from the initial configuration).
  std::shared_ptr<const Checkpoint> Base;
  /// Directive prefix reaching this point (always kept — it is both the
  /// witness prefix and, under SnapshotPolicy::Replay/Hybrid, the
  /// (remainder of the) snapshot): the sealed chain up to the last fork
  /// point plus the directives issued since.
  const SchedChain *Prefix = nullptr;
  Schedule Suffix;
  /// Steps spent on this path (per-schedule budget accounting).
  size_t PathSteps = 0;
  /// ExportSeenStates only: the fingerprints this node's path claimed in
  /// the seen-state table — its ancestor decision points.  A leak (or a
  /// coverage-unknown convergence prune) below marks them all leaky.
  ClaimTrail Claims;
};

/// The work-queue exploration engine.
class Engine {
public:
  Engine(const Machine &M, const ExplorerOptions &Opts, Configuration Init)
      : M(M), P(M.program()), Opts(Opts), Init(std::move(Init)),
        NumWorkers(Opts.Threads > 1 ? Opts.Threads : 1),
        Stealing(NumWorkers > 1 && Opts.Shards != 1),
        // Deques beyond the worker count could never be pushed to
        // (homeOf maps workers round-robin), so extra shards would only
        // add dead steal probes: clamp to the worker count.
        Deques(Stealing ? std::min(Opts.Shards ? Opts.Shards : NumWorkers,
                                   NumWorkers)
                        : 1),
        Workers(NumWorkers) {
    if (Opts.ExportSeenStates)
      Export = std::make_shared<SeenStateExport>();
  }

  ExploreResult run() {
    {
      ExploreNode Root;
      Root.Snap = Init;
      if (Stealing) {
        InFlight.fetch_add(1);
        Deques.push(0, std::move(Root));
      } else {
        Frontier.push_back(std::move(Root));
      }
    }
    if (NumWorkers == 1) {
      drainSequential();
    } else {
      std::vector<std::thread> Pool;
      Pool.reserve(NumWorkers);
      for (unsigned Id = 0; Id < NumWorkers; ++Id)
        Pool.emplace_back([this, Id] {
          if (Stealing)
            workerLoopStealing(Id);
          else
            workerLoopShared(Id);
        });
      for (std::thread &T : Pool)
        T.join();
    }
    return harvest();
  }

private:
  /// Per-path state a worker advances.
  struct Path {
    Configuration C;
    /// The schedule reaching C: sealed fork-point chain + directives
    /// issued since (see SchedChain).  tryStep appends to Suffix;
    /// recordLeak and materialization flatten.
    const SchedChain *Prefix = nullptr;
    Schedule Suffix;
    size_t Steps = 0;
    /// How much of Steps has been added to the engine-wide TotalSteps.
    /// tryStep only bumps the path-local count; runPath publishes the
    /// delta at loop boundaries (one relaxed fetch_add per fetch round
    /// instead of one per step — the counter was a measurable share of
    /// the step loop).  Forks start with StepsFlushed == Steps: the
    /// inherited prefix was published by the ancestors that stepped it.
    size_t StepsFlushed = 0;
    unsigned WorkerId = 0;

    /// Total directives in the schedule so far.
    size_t schedLen() const {
      return (Prefix ? Prefix->endLen() : 0) + Suffix.size();
    }
    /// Hybrid snapshots: the checkpoint this path (and every node it
    /// forks) replays from, refreshed by runPath once the path has moved
    /// CheckpointInterval directives past it.
    std::shared_ptr<const Checkpoint> Base;
    /// ExportSeenStates only: fingerprints claimed along this path (see
    /// ExploreNode::Claims); forks share the trail by pointer.
    ClaimTrail Claims;
    /// Set when the seen-state table proves this path converged onto an
    /// already-visited configuration (its subtree belongs to the first
    /// visitor); the path stops without completing a schedule.
    bool Dead = false;
  };

  /// Per-worker leak buffer.  Uniqueness is decided against the global
  /// key set (leaks are rare relative to steps, so the lock is cold);
  /// the buffers themselves stay worker-local and merge at harvest.
  struct Worker {
    std::vector<LeakRecord> Leaks;
    /// CollectStats: first-visit states bucketed by schedule depth
    /// (ExploreStats::DepthBucket directives per bucket); merged at
    /// harvest.
    std::vector<uint64_t> NewStatesPerDepth;
  };

  const Machine &M;
  const Program &P;
  const ExplorerOptions &Opts;
  const Configuration Init;
  const unsigned NumWorkers;
  const bool Stealing;

  // Sharded frontier (work-stealing mode).
  StealQueue<ExploreNode> Deques;
  /// Nodes queued in any deque plus paths currently being run.  Zero
  /// means exploration is complete: no node exists and no running path
  /// can create one.
  std::atomic<uint64_t> InFlight{0};

  // Single frontier, shared under QMu (sequential + shared modes).
  std::vector<ExploreNode> Frontier;
  std::mutex QMu;
  std::condition_variable QCv;
  unsigned Busy = 0;

  // Shared tallies and stop signals.
  std::atomic<uint64_t> TotalSteps{0};
  std::atomic<uint64_t> LeakEvents{0};
  std::atomic<uint64_t> SchedulesCompleted{0};
  std::atomic<uint64_t> PrunedNodes{0};
  std::atomic<uint64_t> Steals{0};
  std::atomic<uint64_t> ReplaySteps{0};
  std::atomic<uint64_t> Checkpoints{0};
  std::atomic<uint64_t> ConfigsForked{0};
  std::atomic<uint64_t> RobBytesCopied{0};
  std::atomic<uint64_t> RobBytesFlat{0};
  std::atomic<bool> StopFlag{false};
  std::atomic<bool> TruncatedFlag{false};

  /// Cross-schedule seen-state table (consulted only under
  /// Opts.PruneSeen; constructed unconditionally — 64 empty shards).
  SeenStateTable OwnSeen;
  /// Engaged iff Opts.ExportSeenStates: claims then land in the export's
  /// table (returned through the result) and leak events / convergence
  /// prunes mark claim trails into its LeakyBelow subset.
  std::shared_ptr<SeenStateExport> Export;
  std::atomic<uint64_t> ReusePruned{0};

  SeenStateTable &seen() { return Export ? Export->Seen : OwnSeen; }

  /// ExportSeenStates: a leak event below — or unknowable subtree
  /// coverage at — the current path poisons every claim on its trail;
  /// only unpoisoned claims certify leak-free subtrees to a reuse
  /// consumer.  Stops at the first already-poisoned node (its ancestors
  /// were poisoned by the same earlier walk).
  void markLeakyTrail(const ClaimTrail &Claims) {
    if (!Export)
      return;
    for (const ClaimNode *N = Claims.get();
         N && !N->Marked.exchange(true, std::memory_order_acq_rel);
         N = N->Prev.get())
      Export->LeakyBelow.insert(N->Fp);
  }

  /// Global leak dedup, shared by all workers under LeakMu so the
  /// MaxLeaks budget counts globally-unique keys exactly — a per-worker
  /// tally would double-count cross-worker duplicates and truncate
  /// early, breaking Threads-independence of the leak set.
  std::mutex LeakMu;
  std::set<uint64_t> SeenLeaks;

  std::vector<Worker> Workers;

  /// Slab storage for the schedule-prefix chain; lives exactly as long as
  /// the engine (every frontier node and path dies before harvest
  /// returns, and leaks flatten their schedules out of the chain).
  SchedChainArena Arena{NumWorkers};

  // Blowup-diagnosis tallies (only written under Opts.CollectStats).
  std::atomic<uint64_t> ConvChecks{0};
  std::atomic<uint64_t> ConvPrunes{0};
  std::atomic<uint64_t> ForkNew{0};
  std::atomic<uint64_t> ForkDup{0};

  /// The fingerprint probed at fork-filter and convergence sites.
  /// FromScratchHashing swaps in the full-walk oracle — bit-identical
  /// values (tests/HashEquivalenceTest.cpp), so leak sets and prunes
  /// cannot differ; only the cost does.  This is StepRateBench's
  /// hashing-sensitivity knob.  Takes a mutable configuration so the
  /// incremental path hits the memoizing hash() overload — probing
  /// through a const reference would re-walk the reorder buffer's
  /// pending entries at every probe instead of folding them once.
  uint64_t stateHash(Configuration &C) const {
    return Opts.FromScratchHashing ? C.hashFromScratch() : C.hash();
  }

  /// CollectStats: tallies a first-visit state at schedule depth \p Depth
  /// into the owning worker's histogram.
  void noteNewState(unsigned WorkerId, size_t Depth) {
    std::vector<uint64_t> &V = Workers[WorkerId].NewStatesPerDepth;
    size_t B = Depth / ExploreStats::DepthBucket;
    if (V.size() <= B)
      V.resize(B + 1, 0);
    ++V[B];
  }

  //===------------------------------------------------------ queueing ---===//

  void enqueueNode(Path &&Pth) {
    ExploreNode N;
    switch (Opts.Snapshots) {
    case SnapshotPolicy::Copy:
      N.Snap = std::move(Pth.C);
      break;
    case SnapshotPolicy::Replay:
      break; // Prefix-only; materialize replays from Init.
    case SnapshotPolicy::Hybrid:
      // Share the path's checkpoint: materialization replays only the
      // directives issued since it was published (bounded by the
      // refresh in runPath plus a fork's few probing steps).
      N.Base = Pth.Base;
      break;
    }
    N.Prefix = Pth.Prefix;
    N.Suffix = std::move(Pth.Suffix);
    N.PathSteps = Pth.Steps;
    N.Claims = std::move(Pth.Claims);
    unsigned WorkerId = Pth.WorkerId;
    if (NumWorkers == 1) {
      Frontier.push_back(std::move(N));
      return;
    }
    if (Stealing) {
      InFlight.fetch_add(1);
      Deques.push(Deques.homeOf(WorkerId), std::move(N));
      return;
    }
    {
      std::lock_guard<std::mutex> L(QMu);
      Frontier.push_back(std::move(N));
    }
    QCv.notify_one();
  }

  /// Reconstructs the node's path.  Replay re-derives the configuration
  /// by re-issuing directives — from the initial configuration under
  /// SnapshotPolicy::Replay, from the node's shared checkpoint under
  /// Hybrid.  Replayed steps do not count toward budgets and do not
  /// re-record leaks (they were accounted when first taken).
  Path materialize(ExploreNode &&N, unsigned WorkerId) {
    Path Pth;
    Pth.WorkerId = WorkerId;
    Pth.Steps = N.PathSteps;
    Pth.StepsFlushed = N.PathSteps; // Published before the node parked.
    Pth.Claims = std::move(N.Claims);
    Pth.Prefix = N.Prefix;
    if (N.Snap) {
      Pth.C = std::move(*N.Snap);
      Pth.Suffix = std::move(N.Suffix);
      return Pth;
    }
    size_t BaseLen = N.Base ? N.Base->Len : 0;
    Pth.C = N.Base ? N.Base->Config : Init; // COW: O(1) until a side writes.
    Pth.Base = std::move(N.Base);
    Schedule Tail;
    flattenFrom(N.Prefix, N.Suffix, BaseLen, Tail);
    for (const Directive &D : Tail) {
      [[maybe_unused]] auto Out = M.step(Pth.C, D);
      assert(Out && "replay of an explored prefix cannot go stuck");
    }
    ReplaySteps.fetch_add(Tail.size(), std::memory_order_relaxed);
    Pth.Suffix = std::move(N.Suffix);
    return Pth;
  }

  /// Hybrid snapshots: once the path has issued CheckpointInterval
  /// directives past its checkpoint, publish its current configuration as
  /// the new one.  Every node forked from here on shares this checkpoint,
  /// so materializing any of them replays at most ~K directives.
  void refreshCheckpoint(Path &Pth) {
    if (Opts.Snapshots != SnapshotPolicy::Hybrid)
      return;
    size_t K = Opts.CheckpointInterval ? Opts.CheckpointInterval : 1;
    size_t Len = Pth.schedLen();
    if (Pth.Base && Len - Pth.Base->Len < K)
      return;
    // Without RecordCheckpointChain the superseded checkpoint is dropped
    // as soon as its last frontier referent dies (the PR 3 memory
    // behavior); with it the chain stays alive so leak consumers can seed
    // replays from any rung.
    Pth.Base = std::make_shared<const Checkpoint>(Checkpoint{
        Pth.C, Len, Opts.RecordCheckpointChain ? Pth.Base : nullptr});
    Checkpoints.fetch_add(1, std::memory_order_relaxed);
  }

  void stopAll(bool Truncated) {
    if (Truncated)
      TruncatedFlag.store(true, std::memory_order_relaxed);
    StopFlag.store(true, std::memory_order_relaxed);
    if (NumWorkers > 1 && !Stealing) {
      { std::lock_guard<std::mutex> L(QMu); }
      QCv.notify_all();
    }
    // Stealing workers poll StopFlag between pops and inside runPath; no
    // wakeup is needed (idle workers spin on yield/short sleeps).
  }

  bool stopped() const { return StopFlag.load(std::memory_order_relaxed); }

  //===------------------------------------------------- drain protocols ---===//

  void drainSequential() {
    while (!Frontier.empty() && !stopped()) {
      ExploreNode N = std::move(Frontier.back());
      Frontier.pop_back();
      Path Pth = materialize(std::move(N), 0);
      runPath(Pth);
    }
  }

  /// The shared-frontier baseline: one mutex, one condvar, every pop and
  /// push contends on QMu and sleepers wake through QCv.
  void workerLoopShared(unsigned Id) {
    std::unique_lock<std::mutex> L(QMu);
    for (;;) {
      if (stopped()) {
        QCv.notify_all();
        return;
      }
      if (!Frontier.empty()) {
        ExploreNode N = std::move(Frontier.back());
        Frontier.pop_back();
        ++Busy;
        L.unlock();
        Path Pth = materialize(std::move(N), Id);
        runPath(Pth);
        L.lock();
        --Busy;
        if (Frontier.empty() && Busy == 0) {
          QCv.notify_all();
          return;
        }
        continue;
      }
      if (Busy == 0)
        return;
      QCv.wait(L);
    }
  }

  /// The work-stealing drain: pop the own deque LIFO; when dry, steal the
  /// oldest half of a random victim; when everything is dry, exit once
  /// the in-flight count proves no path can produce new nodes.
  void workerLoopStealing(unsigned Id) {
    std::minstd_rand Rng(Id * 0x9e3779b9u + 0x2545f491u);
    unsigned Home = Deques.homeOf(Id);
    unsigned IdleRounds = 0;
    for (;;) {
      if (stopped())
        return;
      ExploreNode N;
      bool Got = Deques.tryPop(Home, N);
      if (!Got) {
        size_t Taken = Deques.trySteal(Home, static_cast<unsigned>(Rng()), N);
        if (Taken) {
          Steals.fetch_add(1, std::memory_order_relaxed);
          Got = true;
        }
      }
      if (Got) {
        IdleRounds = 0;
        Path Pth = materialize(std::move(N), Id);
        runPath(Pth);
        InFlight.fetch_sub(1);
        continue;
      }
      if (InFlight.load() == 0)
        return;
      // Back off gently: other workers are still running paths that may
      // fork.  Yield first; after a while sleep, so an oversubscribed
      // pool (more workers than cores) does not starve the runners.
      if (++IdleRounds < 64)
        std::this_thread::yield();
      else
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  ExploreResult harvest() {
    ExploreResult R;
    R.LeakEvents = LeakEvents.load();
    R.SchedulesCompleted = SchedulesCompleted.load();
    R.TotalSteps = TotalSteps.load();
    R.PrunedNodes = PrunedNodes.load();
    R.Steals = Steals.load();
    R.ReplaySteps = ReplaySteps.load();
    R.Checkpoints = Checkpoints.load();
    R.ReusePrunedNodes = ReusePruned.load();
    R.ConfigsForked = ConfigsForked.load();
    R.RobBytesCopied = RobBytesCopied.load();
    R.RobBytesFlat = RobBytesFlat.load();
    R.SeenExport = Export;
    R.Truncated = TruncatedFlag.load();
    if (Opts.CollectStats) {
      ExploreStats St;
      St.Seen = seen().stats();
      St.ForkInsertNew = ForkNew.load();
      St.ForkInsertDup = ForkDup.load();
      St.ConvergenceChecks = ConvChecks.load();
      St.ConvergencePrunes = ConvPrunes.load();
      for (Worker &W : Workers) {
        if (St.NewStatesPerDepth.size() < W.NewStatesPerDepth.size())
          St.NewStatesPerDepth.resize(W.NewStatesPerDepth.size(), 0);
        for (size_t I = 0; I < W.NewStatesPerDepth.size(); ++I)
          St.NewStatesPerDepth[I] += W.NewStatesPerDepth[I];
      }
      R.Stats = std::move(St);
    }
    // Merge per-worker buffers in worker order; keys are already
    // globally unique (SeenLeaks gated every insert).
    for (Worker &W : Workers)
      for (LeakRecord &L : W.Leaks)
        if (R.Leaks.size() < Opts.MaxLeaks)
          R.Leaks.push_back(std::move(L));
    return R;
  }

  //===------------------------------------------------------ stepping ---===//

  /// Publishes a path's not-yet-counted steps to the engine-wide total.
  /// Called at runPath loop boundaries, on every fork once its probing
  /// steps ran, and wherever a path leaves runPath — so the loop-top
  /// budget check reads exactly the pre-batching value at the same
  /// program point, and ExploreResult::TotalSteps stays exact.
  void flushSteps(Path &Pth) {
    if (size_t D = Pth.Steps - Pth.StepsFlushed) {
      TotalSteps.fetch_add(D, std::memory_order_relaxed);
      Pth.StepsFlushed = Pth.Steps;
    }
  }

  /// Issues one directive that must be applicable; records leaks.
  void mustStep(Path &Pth, const Directive &D) {
    [[maybe_unused]] bool Ok = tryStep(Pth, D);
    assert(Ok && "explorer issued an inapplicable directive");
  }

  /// Issues one directive if applicable; returns false otherwise.  Under
  /// PruneSeen, a forwarding-hazard rollback that lands on an
  /// already-claimed configuration marks the path Dead: hazard
  /// re-executions converge onto states other schedules forked directly
  /// (the recurring v4 pattern), and the claimant owns the subtree.
  ///
  /// The convergence check is a pure query — it must NOT insert.  tryStep
  /// also runs the probing steps of fork candidates, and a fork may be
  /// discarded right after probing (e.g. a store-forward fork whose load
  /// did not actually forward).  An insert here would let such a
  /// discarded probe claim the post-rollback state without anyone ever
  /// exploring its subtree, and the genuine path converging there later
  /// would be pruned together with its leaks (v1.1-07 regressed exactly
  /// this way when pruning became the default).  States are claimed only
  /// where nodes are kept: the fork filter and the continuation re-queue
  /// in runPath.
  bool tryStep(Path &Pth, const Directive &D) {
    PC Origin = leakOriginOf(Pth.C, D);
    auto Outcome = M.step(Pth.C, D);
    if (!Outcome)
      return false;
    Pth.Suffix.push_back(D);
    ++Pth.Steps;
    if (Outcome->Obs.isSecret())
      recordLeak(Pth, Outcome->Obs, Origin, Outcome->Rule);
    if (!Pth.Dead && (Opts.PruneSeen || Opts.Reuse) &&
        (Outcome->Rule == RuleId::StoreExecuteAddrHazard ||
         Outcome->Rule == RuleId::LoadExecuteAddrHazard ||
         Outcome->Rule == RuleId::LoadExecuteAddrMemHazard)) {
      bool Converged = false;
      if (Opts.PruneSeen) {
        if (Opts.CollectStats)
          ConvChecks.fetch_add(1, std::memory_order_relaxed);
        Converged = seen().contains(stateHash(Pth.C));
      }
      if (Converged) {
        if (Opts.CollectStats)
          ConvPrunes.fetch_add(1, std::memory_order_relaxed);
        PrunedNodes.fetch_add(1, std::memory_order_relaxed);
        // The claimant explored (or will explore) this subtree, but a
        // reuse consumer cannot know whether it leaks from *this* trail's
        // vantage: poison it.
        markLeakyTrail(Pth.Claims);
        Pth.Dead = true;
      } else if (Opts.Reuse && Opts.Reuse->covered(Pth.C)) {
        ReusePruned.fetch_add(1, std::memory_order_relaxed);
        Pth.Dead = true;
      }
    }
    return true;
  }

  void recordLeak(Path &Pth, const Observation &Obs, PC Origin, RuleId Rule) {
    LeakEvents.fetch_add(1, std::memory_order_relaxed);
    // Every leak event — duplicates included — poisons the trail: no
    // ancestor claim of this path certifies a leak-free subtree.
    markLeakyTrail(Pth.Claims);
    Schedule Full;
    Full.reserve(Pth.schedLen());
    flattenFrom(Pth.Prefix, Pth.Suffix, 0, Full);
    LeakRecord L{std::move(Full), Obs, Origin, Rule};
    // Hand the minimizer the path's checkpoint chain: Sched[0, Ckpt->Len)
    // replays Init to exactly Ckpt->Config, so candidate replays sharing
    // that prefix can start mid-schedule.  Gated on the chain flag — a
    // pinned checkpoint lives as long as the LeakRecord, and only a
    // minimizing session consumes it.
    if (Opts.RecordCheckpointChain)
      L.Ckpt = Pth.Base;
    bool New;
    size_t Nth;
    {
      std::lock_guard<std::mutex> G(LeakMu);
      New = SeenLeaks.insert(L.key()).second;
      Nth = SeenLeaks.size();
    }
    if (New) {
      // MaxLeaks gates globally-unique keys: once storage is exhausted
      // the search is cut short and the result marked truncated (the
      // leaks found remain trustworthy; completeness not).
      if (Nth <= Opts.MaxLeaks)
        Workers[Pth.WorkerId].Leaks.push_back(std::move(L));
      else
        stopAll(/*Truncated=*/true);
    }
    if (Opts.StopAtFirstLeak)
      stopAll(/*Truncated=*/false);
  }

  /// Number of unresolved branches / indirect jumps in flight (the
  /// current nesting depth of speculation).
  unsigned branchDepth(const Configuration &C) const {
    if (C.Buf.empty())
      return 0;
    unsigned Depth = 0;
    C.Buf.forEachIn(C.Buf.minIndex(), C.Buf.maxIndex() + 1,
                    [&](BufIdx, const TransientInstr &T) {
                      if (T.Kind == TransientKind::Branch ||
                          T.Kind == TransientKind::JumpI)
                        ++Depth;
                    });
    return Depth;
  }

  /// True iff buffer entry \p S sits in the shadow of unresolved control
  /// flow (a rollback may squash it before retirement).
  bool inSpeculativeShadow(const Configuration &C, BufIdx S) const {
    // Existence check — scan direction is immaterial.
    return C.Buf.scanReverse(C.Buf.minIndex(), S,
                             [](BufIdx, const TransientInstr &T) {
                               return T.Kind == TransientKind::Branch ||
                                      T.Kind == TransientKind::JumpI;
                             });
  }

  /// Probes whether guessing true for the branch at C.N is the correct
  /// prediction.  Returns std::nullopt when the branch cannot be executed
  /// yet (e.g. a fence is in flight) and correctness is unknowable.
  std::optional<bool> probeBranchCorrect(const Configuration &C) {
    Configuration T = C;
    BufIdx I = T.Buf.nextIndex();
    if (!M.step(T, Directive::fetchBool(true)))
      return std::nullopt;
    auto Out = M.step(T, Directive::execute(I));
    if (!Out)
      return std::nullopt;
    return Out->Rule == RuleId::CondExecuteCorrect;
  }

  /// Best-effort resolution of an indirect jump's target at fetch time.
  std::optional<PC> peekJumpTarget(const Configuration &C,
                                   std::span<const Operand> Args) {
    auto Vals = M.resolveOperands(C, C.Buf.nextIndex(), Args);
    if (!Vals)
      return std::nullopt;
    return static_cast<PC>(evalAddr(*Vals, M.options()).Bits);
  }

  /// Best-effort architectural return target for a ret with an empty RSB:
  /// the newest in-flight store to [rsp] or, failing that, memory.
  PC peekReturnTarget(const Configuration &C) {
    auto Sp = M.resolveReg(C, C.Buf.nextIndex(), Reg::sp());
    if (!Sp)
      return 0;
    uint64_t A = Sp->Bits;
    PC Hit = 0;
    if (C.Buf.scanReverse(C.Buf.minIndex(), C.Buf.nextIndex(),
                          [&](BufIdx, const TransientInstr &T) {
                            if (!T.isStoreToAddr(A) || !T.StoreValIsResolved)
                              return false;
                            Hit = static_cast<PC>(T.StoreResolvedVal.Bits);
                            return true;
                          }))
      return Hit;
    return static_cast<PC>(C.Mem.load(A).Bits);
  }

  //===-------------------------------------------------- path running ---===//

  /// Drives one path until it completes, truncates, converges onto a
  /// visited state, or is stopped.  Forks become frontier nodes; to
  /// preserve the legacy depth-first order the worker continues with the
  /// first fork and re-queues its own continuation behind the remaining
  /// forks.
  void runPath(Path &Pth) {
    for (;;) {
      flushSteps(Pth);
      if (stopped() || Pth.Dead)
        return;
      refreshCheckpoint(Pth);
      if (TotalSteps.load(std::memory_order_relaxed) >= Opts.MaxTotalSteps ||
          SchedulesCompleted.load(std::memory_order_relaxed) >=
              Opts.MaxSchedules) {
        stopAll(/*Truncated=*/true);
        return;
      }
      if (Pth.Steps >= Opts.MaxStepsPerSchedule) {
        // Per-schedule budget: only this path is cut short.
        TruncatedFlag.store(true, std::memory_order_relaxed);
        return;
      }
      if (Pth.C.isFinal(P)) {
        SchedulesCompleted.fetch_add(1, std::memory_order_relaxed);
        return;
      }

      bool CanFetch =
          Pth.C.Buf.size() < Opts.SpeculationBound && P.contains(Pth.C.N);
      if (CanFetch) {
        std::vector<Path> Forks;
        bool Alive = fetchAndDecide(Pth, Forks);
        flushSteps(Pth);
        for (Path &F : Forks)
          flushSteps(F);
        if (Pth.Dead)
          Alive = false;
        if ((Opts.PruneSeen || Opts.Reuse) && !Forks.empty()) {
          // Cross-schedule pruning happens where nodes are born: a fork
          // whose probed configuration was already visited (or whose
          // probing steps died on a visited hazard state) is dropped
          // before it costs a frontier slot.  The cross-*program* reuse
          // filter cuts in at the same point: a fork covered by the
          // original exploration's leak-free certificate never becomes a
          // node at all.
          size_t Live = 0;
          for (size_t I = 0; I < Forks.size(); ++I) {
            Path &F = Forks[I];
            if (F.Dead)
              continue; // Counted (and trail-poisoned) at the hazard.
            if (Opts.Reuse && Opts.Reuse->covered(F.C)) {
              ReusePruned.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            if (Opts.PruneSeen) {
              uint64_t H = stateHash(F.C);
              if (!seen().insert(H)) {
                if (Opts.CollectStats)
                  ForkDup.fetch_add(1, std::memory_order_relaxed);
                PrunedNodes.fetch_add(1, std::memory_order_relaxed);
                markLeakyTrail(F.Claims);
                continue;
              }
              if (Opts.CollectStats) {
                ForkNew.fetch_add(1, std::memory_order_relaxed);
                noteNewState(F.WorkerId, F.schedLen());
              }
              if (Export)
                F.Claims =
                    std::make_shared<const ClaimNode>(H, std::move(F.Claims));
            }
            if (Live != I)
              Forks[Live] = std::move(F);
            ++Live;
          }
          Forks.resize(Live);
        }
        if (!Forks.empty()) {
          if (Alive && Opts.Reuse && Opts.Reuse->covered(Pth.C)) {
            ReusePruned.fetch_add(1, std::memory_order_relaxed);
            Alive = false;
          }
          if (Alive && Opts.PruneSeen) {
            uint64_t H = stateHash(Pth.C);
            if (!seen().insert(H)) {
              // The fall-through continuation converged onto a visited
              // state; its subtree is owned elsewhere.
              if (Opts.CollectStats)
                ForkDup.fetch_add(1, std::memory_order_relaxed);
              PrunedNodes.fetch_add(1, std::memory_order_relaxed);
              markLeakyTrail(Pth.Claims);
              Alive = false;
            } else {
              if (Opts.CollectStats) {
                ForkNew.fetch_add(1, std::memory_order_relaxed);
                noteNewState(Pth.WorkerId, Pth.schedLen());
              }
              if (Export)
                Pth.Claims =
                    std::make_shared<const ClaimNode>(H, std::move(Pth.Claims));
            }
          }
          unsigned WorkerId = Pth.WorkerId;
          if (Alive)
            enqueueNode(std::move(Pth));
          for (size_t I = Forks.size(); I-- > 1;)
            enqueueNode(std::move(Forks[I]));
          Pth = std::move(Forks.front());
          Pth.WorkerId = WorkerId;
          continue;
        }
        if (!Alive)
          return; // Path ended (stalled machine, pruned, or stop).
        continue;
      }
      forceOldest(Pth);
      flushSteps(Pth);
      if (Pth.Dead)
        return;
    }
  }

  /// Phase A: fetch the next instruction eagerly, collecting the forks
  /// where B.18 branches the schedule set and advancing \p Pth along the
  /// fall-through.  Returns false iff the fall-through path is over.
  bool fetchAndDecide(Path &Pth, std::vector<Path> &Forks) {
    const Instruction &I = P.at(Pth.C.N);
    BufIdx Next = Pth.C.Buf.nextIndex();

    /// A fork starts as a copy of the current path; its probing steps run
    /// at creation (they both filter the fork and seed its schedule).
    /// The parent's suffix seals into one chain node first, so this fork,
    /// every later sibling, and the continuation share the schedule
    /// prefix by pointer — fork cost is O(1) in depth.
    auto forkFrom = [&]() {
      if (!Pth.Suffix.empty()) {
        Pth.Prefix = Arena.make(Pth.WorkerId, Pth.Prefix,
                                std::move(Pth.Suffix));
        Pth.Suffix.clear();
        // The move donated the old capacity to the arena; re-reserve a
        // fetch round's worth so the next few pushes skip the tiny
        // 1->2->4 growth reallocations (one malloc here instead).
        Pth.Suffix.reserve(8);
      }
      // Fold the parent's pending fingerprint contributions before
      // copying: the fork then inherits folded chunk refs, so the
      // seen-table hashes of this fork, its siblings, and the parent all
      // reuse one folding pass instead of each recomputing the shared
      // entries' contributions.  Folding is internal state only — every
      // hash value is identical either way.  Skipped when the incremental
      // fingerprint is unused (from-scratch mode folds for nothing).
      if (Opts.PruneSeen && !Opts.FromScratchHashing)
        Pth.C.Buf.foldPending();
      Path F;
      F.C = Pth.C;
      // Fork-copy accounting: what the ROB copy above actually moved vs.
      // what a flat per-entry slab would have (the sharing win).
      ConfigsForked.fetch_add(1, std::memory_order_relaxed);
      RobBytesCopied.fetch_add(F.C.Buf.bytesPerCopy(),
                               std::memory_order_relaxed);
      RobBytesFlat.fetch_add(F.C.Buf.bytesIfFlat(), std::memory_order_relaxed);
      F.Prefix = Pth.Prefix;
      F.Suffix.reserve(8); // Probing steps land immediately; same saving.
      F.Steps = Pth.Steps;
      F.StepsFlushed = Pth.Steps; // Inherited steps were published already.
      F.WorkerId = Pth.WorkerId;
      F.Base = Pth.Base; // Hybrid: siblings share the parent's checkpoint.
      F.Claims = Pth.Claims; // Export: shared ancestor trail (cons-list).
      return F;
    };

    switch (I.kind()) {
    case InstrKind::Op:
      mustStep(Pth, Directive::fetch());
      tryStep(Pth, Directive::execute(Next));
      return true;

    case InstrKind::Fence:
      mustStep(Pth, Directive::fetch());
      return true;

    case InstrKind::Load: {
      mustStep(Pth, Directive::fetch());

      // Alias-prediction forks (§3.5): guess a forward from any earlier
      // value-resolved store whose address is still unknown.
      if (Opts.ExploreAliasPrediction && !Pth.C.Buf.empty()) {
        for (BufIdx J = Pth.C.Buf.minIndex(); J < Next; ++J) {
          const TransientInstr &S = Pth.C.Buf.at(J);
          if (!S.is(TransientKind::Store) || !S.StoreValIsResolved ||
              S.StoreAddrIsResolved)
            continue;
          Path F = forkFrom();
          if (tryStep(F, Directive::executeFwd(Next, J))) {
            tryStep(F, Directive::execute(Next));
            Forks.push_back(std::move(F));
          }
          if (stopped())
            return false;
        }
      }

      // Store-forwarding forks (§4.1): for every earlier store with an
      // unresolved address, one schedule resolves exactly that store's
      // address before this load executes — Pitchfork's
      // [execute s_i : addr; execute l] schedules.  The fall-through
      // schedule executes the load with no extra resolution (the "none
      // resolved" schedule: memory reads may be stale, Spectre v4).
      if (Opts.ExploreForwardingHazards && !Pth.C.Buf.empty()) {
        for (BufIdx S = Pth.C.Buf.minIndex(); S < Next; ++S) {
          const TransientInstr &St = Pth.C.Buf.at(S);
          if (!St.is(TransientKind::Store) || St.StoreAddrIsResolved)
            continue;
          // Architectural-path stores are covered by forced resolution
          // and its hazard re-execution; fork only where a rollback would
          // squash the store first (unless exhaustive forks were asked
          // for).
          if (!Opts.ExhaustiveForwardForks &&
              !inSpeculativeShadow(Pth.C, S))
            continue;
          Path F = forkFrom();
          if (!tryStep(F, Directive::executeAddr(S)))
            continue;
          if (F.Dead) {
            Forks.push_back(std::move(F)); // Culled by the fork filter.
            continue;
          }
          if (tryStep(F, Directive::execute(Next))) {
            // Keep the fork only if this store actually forwarded; other
            // outcomes coincide with the fall-through schedule.
            const ReorderBuffer &B2 = F.C.Buf;
            if (!B2.contains(Next) ||
                !B2.at(Next).is(TransientKind::LoadResolved) ||
                !(B2.at(Next).Dep && *B2.at(Next).Dep == S)) {
              flushSteps(F); // Probing steps count even when discarded.
              continue;
            }
          }
          Forks.push_back(std::move(F));
          if (stopped())
            return false;
        }
      }

      tryStep(Pth, Directive::execute(Next));
      return true;
    }

    case InstrKind::Store: {
      mustStep(Pth, Directive::fetch());
      if (!Pth.C.Buf.at(Next).StoreValIsResolved)
        tryStep(Pth, Directive::executeValue(Next));
      // With forwarding-hazard exploration the address stays unresolved —
      // younger loads fork over its resolution; the retire stage forces
      // it at the latest (B.18).  Without it, resolve eagerly.
      if (!Opts.ExploreForwardingHazards)
        tryStep(Pth, Directive::executeAddr(Next));
      return true;
    }

    case InstrKind::Branch: {
      std::optional<bool> TrueCorrect = probeBranchCorrect(Pth.C);
      if (!TrueCorrect) {
        // Condition not executable yet (fence in flight): fork both
        // guesses unresolved; forceOldest() executes them later.
        Path F = forkFrom();
        mustStep(F, Directive::fetchBool(false));
        Forks.push_back(std::move(F));
        if (stopped())
          return false;
        mustStep(Pth, Directive::fetchBool(true));
        return true;
      }
      bool Correct = *TrueCorrect;
      // Mispredicted fork: fetch the wrong guess and delay its resolution
      // as long as possible (B.18).  Nesting is bounded: wrong-path loops
      // would otherwise unroll a fresh fork per iteration.
      if (branchDepth(Pth.C) < Opts.MaxBranchDepth) {
        Path F = forkFrom();
        mustStep(F, Directive::fetchBool(!Correct));
        Forks.push_back(std::move(F));
        if (stopped())
          return false;
      }
      // Correct-guess path: resolve immediately.
      mustStep(Pth, Directive::fetchBool(Correct));
      mustStep(Pth, Directive::execute(Next));
      return true;
    }

    case InstrKind::JumpI: {
      std::optional<PC> Correct = peekJumpTarget(Pth.C, I.args());
      // Mistraining forks (Spectre v2), when requested.
      for (PC T : Opts.IndirectTargets) {
        if (Correct && T == *Correct)
          continue;
        if (branchDepth(Pth.C) >= Opts.MaxBranchDepth)
          break;
        Path F = forkFrom();
        mustStep(F, Directive::fetchTarget(T));
        // Leave unresolved: wrong-path execution proceeds until forced.
        Forks.push_back(std::move(F));
        if (stopped())
          return false;
      }
      mustStep(Pth, Directive::fetchTarget(Correct.value_or(0)));
      tryStep(Pth, Directive::execute(Next));
      return true;
    }

    case InstrKind::Call: {
      mustStep(Pth, Directive::fetch());
      tryStep(Pth, Directive::execute(Next + 1));
      // The return-address store to [rsp] delays like any store when
      // hazard exploration is on — exactly the gadget behind the FaCT
      // MEE finding (§4.2.2).
      if (!Opts.ExploreForwardingHazards)
        tryStep(Pth, Directive::executeAddr(Next + 2));
      return true;
    }

    case InstrKind::CallI: {
      // Indirect call: mistraining forks like jmpi (Spectre v2 via
      // function pointers), then the correct-prediction path; the group's
      // return-address store follows the usual forwarding regime.
      std::optional<PC> Correct = peekJumpTarget(Pth.C, I.args());
      for (PC T : Opts.IndirectTargets) {
        if (Correct && T == *Correct)
          continue;
        if (branchDepth(Pth.C) >= Opts.MaxBranchDepth)
          break;
        Path F = forkFrom();
        mustStep(F, Directive::fetchTarget(T));
        tryStep(F, Directive::execute(Next + 1));
        Forks.push_back(std::move(F));
        if (stopped())
          return false;
      }
      mustStep(Pth, Directive::fetchTarget(Correct.value_or(0)));
      tryStep(Pth, Directive::execute(Next + 1));
      if (!Opts.ExploreForwardingHazards)
        tryStep(Pth, Directive::executeAddr(Next + 2));
      tryStep(Pth, Directive::execute(Next + 3));
      return true;
    }

    case InstrKind::Ret: {
      bool RsbPredicts =
          M.options().RsbOnEmpty == RsbPolicy::Circular || Pth.C.Rsb.top();
      if (!RsbPredicts && M.options().RsbOnEmpty == RsbPolicy::Stall) {
        // The machine refuses to speculate.  Drain what is in flight; if
        // nothing is, the machine has stalled for good — a complete (if
        // unproductive) schedule.
        if (Pth.C.Buf.empty()) {
          SchedulesCompleted.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
        forceOldest(Pth);
        return true;
      }

      if (RsbPredicts) {
        mustStep(Pth, Directive::fetch());
      } else {
        // RSB underflow: fork over attacker targets (ret2spec), then
        // continue with the best-effort architectural target.
        for (PC T : Opts.RsbUnderflowTargets) {
          if (branchDepth(Pth.C) >= Opts.MaxBranchDepth)
            break;
          Path F = forkFrom();
          mustStep(F, Directive::fetchTarget(T));
          Forks.push_back(std::move(F));
          if (stopped())
            return false;
        }
        mustStep(Pth, Directive::fetchTarget(peekReturnTarget(Pth.C)));
      }
      tryStep(Pth, Directive::execute(Next + 1));
      tryStep(Pth, Directive::execute(Next + 2));
      tryStep(Pth, Directive::execute(Next + 3));
      return true;
    }
    }
    return true;
  }

  /// Phase B: the buffer is full (or nothing is fetchable).  In order:
  ///  1. retire the oldest entry if it is ready;
  ///  2. execute any pending *data* instruction (ops, loads, store
  ///     values) — entries that were blocked by a fence become executable
  ///     once it retires, and wrong-path work keeps running while delayed
  ///     control flow stays unresolved (maximal speculation, §4.1);
  ///  3. only then force the front-most delayed decision: a store's
  ///     address (possibly raising a forwarding hazard) or a mispredicted
  ///     branch / indirect jump (rolling back).
  void forceOldest(Path &Pth) {
    Configuration &C = Pth.C;
    assert(!C.Buf.empty() && "nothing to force");
    if (tryStep(Pth, Directive::retire()))
      return;

    // Step 2: oldest-first, try pending data work.
    for (BufIdx K = C.Buf.minIndex(); K <= C.Buf.maxIndex(); ++K) {
      const TransientInstr &T = C.Buf.at(K);
      switch (T.Kind) {
      case TransientKind::Op:
      case TransientKind::Load:
      case TransientKind::LoadGuessed:
        if (tryStep(Pth, Directive::execute(K)))
          return;
        break;
      case TransientKind::Store:
        if (!T.StoreValIsResolved &&
            tryStep(Pth, Directive::executeValue(K)))
          return;
        // Without hazard exploration, store addresses resolve eagerly at
        // fetch — but a fence in flight defeats the eager step, and a
        // younger load executing first would then bypass the store (a
        // forwarding hazard in the mode that excludes them; the SPS
        // differential fuzz suite caught a wild transient return through
        // exactly this gap).  Restore the eager policy here, before any
        // younger load runs: the loop is oldest-first.
        if (!Opts.ExploreForwardingHazards && !T.StoreAddrIsResolved &&
            tryStep(Pth, Directive::executeAddr(K)))
          return;
        break;
      default:
        break;
      }
      if (C.Buf.empty() || K >= C.Buf.maxIndex())
        break;
    }

    // Step 2b: nested *correctly-guessed* control whose eager resolution
    // a fence blocked at fetch time.  A branch's execute IS its jump
    // observation — if only the front-most unresolved entry were ever
    // forced (step 3), a fence-window branch whose condition turned
    // secret on a wrong path would be squashed unobserved, hiding a leak
    // the semantics admit (the SPS differential fuzz suite found exactly
    // this shape: fence; mispredicted branch; wrong-path secret load;
    // nested branch on the loaded value).  Restricted to correct guesses:
    // a delayed *wrong* guess already observed at its fork's sibling (the
    // immediately-resolving fall-through) and must stay unresolved to
    // keep the B.18 worst-case window open — resolving it here would
    // also perturb step counts on fence-free programs.  The correctness
    // pre-check mirrors probeBranchCorrect without the configuration
    // copy.
    {
      bool SeenUnresolved = false;
      for (BufIdx K = C.Buf.minIndex(); K <= C.Buf.maxIndex(); ++K) {
        const TransientInstr &T = C.Buf.at(K);
        if (T.isResolved())
          continue;
        if (!SeenUnresolved) { // Front-most: step 3's call.
          SeenUnresolved = true;
          continue;
        }
        if (!T.is(TransientKind::Branch) && !T.is(TransientKind::JumpI))
          continue;
        auto Args = M.resolveOperands(C, K, T.Args);
        if (!Args)
          continue;
        PC Actual = T.is(TransientKind::Branch)
                        ? (truthy(evalOp(T.Opc, *Args, M.options())) ? T.NTrue
                                                                     : T.NFalse)
                        : static_cast<PC>(evalAddr(*Args, M.options()).Bits);
        if (Actual == T.N0 && tryStep(Pth, Directive::execute(K)))
          return;
      }
    }

    // Step 3: force the first remaining unresolved entry (a delayed store
    // address or speculation-delayed control flow).
    for (BufIdx K = C.Buf.minIndex(); K <= C.Buf.maxIndex(); ++K) {
      const TransientInstr &T = C.Buf.at(K);
      if (T.isResolved())
        continue;
      bool Ok;
      if (T.is(TransientKind::Store))
        Ok = tryStep(Pth, Directive::executeAddr(K));
      else
        Ok = tryStep(Pth, Directive::execute(K));
      assert(Ok && "first unresolved entry must be executable");
      (void)Ok;
      return;
    }
    assert(false && "buffer unretirable yet fully resolved");
  }
};

} // namespace

PC sct::leakOriginOf(const Configuration &C, const Directive &D) {
  if (D.isExecute() && C.Buf.contains(D.Idx))
    return C.Buf.at(D.Idx).Origin;
  if (D.isRetire() && !C.Buf.empty())
    return C.Buf.at(C.Buf.minIndex()).Origin;
  return C.N;
}

ExploreResult sct::explore(const Machine &M, Configuration Init,
                           const ExplorerOptions &Opts) {
  Engine E(M, Opts, std::move(Init));
  return E.run();
}
