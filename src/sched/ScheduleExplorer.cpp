//===- sched/ScheduleExplorer.cpp - Worst-case schedule exploration ---------===//

#include "sched/ScheduleExplorer.h"

#include <set>

using namespace sct;

namespace {

/// Depth-first exploration of the DT(n) schedule tree.  Each path carries
/// its own configuration and schedule prefix; forks recurse on copies.
class Explorer {
public:
  Explorer(const Machine &M, const ExplorerOptions &Opts)
      : M(M), P(M.program()), Opts(Opts) {}

  ExploreResult take(Configuration Init) {
    explorePath(std::move(Init), {}, 0);
    return std::move(Result);
  }

private:
  const Machine &M;
  const Program &P;
  const ExplorerOptions &Opts;
  ExploreResult Result;
  std::set<uint64_t> SeenLeaks;
  bool Done = false;

  bool budgetExceeded(size_t PathSteps) {
    if (Done)
      return true;
    if (Result.TotalSteps >= Opts.MaxTotalSteps ||
        PathSteps >= Opts.MaxStepsPerSchedule ||
        Result.SchedulesCompleted >= Opts.MaxSchedules) {
      Result.Truncated = true;
      return true;
    }
    return false;
  }

  /// Program point responsible for a directive's observation (read before
  /// stepping; rollbacks may remove the entry).
  PC originOf(const Configuration &C, const Directive &D) const {
    if (D.isExecute() && C.Buf.contains(D.Idx))
      return C.Buf.at(D.Idx).Origin;
    if (D.isRetire() && !C.Buf.empty())
      return C.Buf.at(C.Buf.minIndex()).Origin;
    return C.N;
  }

  /// Issues one directive that must be applicable; records leaks.
  void mustStep(Configuration &C, Schedule &Sched, size_t &PathSteps,
                const Directive &D) {
    [[maybe_unused]] bool Ok = tryStep(C, Sched, PathSteps, D);
    assert(Ok && "explorer issued an inapplicable directive");
  }

  /// Issues one directive if applicable; returns false otherwise.
  bool tryStep(Configuration &C, Schedule &Sched, size_t &PathSteps,
               const Directive &D) {
    PC Origin = originOf(C, D);
    std::string Why;
    auto Outcome = M.step(C, D, &Why);
    if (!Outcome)
      return false;
    Sched.push_back(D);
    ++PathSteps;
    ++Result.TotalSteps;
    if (Outcome->Obs.isSecret())
      recordLeak(Sched, Outcome->Obs, Origin, Outcome->Rule);
    return true;
  }

  void recordLeak(const Schedule &Sched, const Observation &Obs, PC Origin,
                  RuleId Rule) {
    ++Result.LeakEvents;
    LeakRecord L{Sched, Obs, Origin, Rule};
    if (SeenLeaks.insert(L.key()).second &&
        Result.Leaks.size() < Opts.MaxLeaks)
      Result.Leaks.push_back(std::move(L));
    if (Opts.StopAtFirstLeak)
      Done = true;
  }

  /// Number of unresolved branches / indirect jumps in flight (the
  /// current nesting depth of speculation).
  unsigned branchDepth(const Configuration &C) const {
    if (C.Buf.empty())
      return 0;
    unsigned Depth = 0;
    for (BufIdx J = C.Buf.minIndex(); J <= C.Buf.maxIndex(); ++J) {
      TransientKind K = C.Buf.at(J).Kind;
      if (K == TransientKind::Branch || K == TransientKind::JumpI)
        ++Depth;
    }
    return Depth;
  }

  /// True iff buffer entry \p S sits in the shadow of unresolved control
  /// flow (a rollback may squash it before retirement).
  bool inSpeculativeShadow(const Configuration &C, BufIdx S) const {
    for (BufIdx J = C.Buf.minIndex(); J < S; ++J) {
      TransientKind K = C.Buf.at(J).Kind;
      if (K == TransientKind::Branch || K == TransientKind::JumpI)
        return true;
    }
    return false;
  }

  /// Probes whether guessing \p Guess for the branch at C.N is the correct
  /// prediction.  Returns std::nullopt when the branch cannot be executed
  /// yet (e.g. a fence is in flight) and correctness is unknowable.
  std::optional<bool> probeBranchCorrect(const Configuration &C) {
    Configuration T = C;
    BufIdx I = T.Buf.nextIndex();
    if (!M.step(T, Directive::fetchBool(true)))
      return std::nullopt;
    auto Out = M.step(T, Directive::execute(I));
    if (!Out)
      return std::nullopt;
    return Out->Rule == RuleId::CondExecuteCorrect;
  }

  /// Best-effort resolution of an indirect jump's target at fetch time.
  std::optional<PC> peekJumpTarget(const Configuration &C,
                                   const std::vector<Operand> &Args) {
    auto Vals = M.resolveOperands(C, C.Buf.nextIndex(), Args);
    if (!Vals)
      return std::nullopt;
    return static_cast<PC>(evalAddr(*Vals, M.options()).Bits);
  }

  /// Best-effort architectural return target for a ret with an empty RSB:
  /// the newest in-flight store to [rsp] or, failing that, memory.
  PC peekReturnTarget(const Configuration &C) {
    auto Sp = M.resolveReg(C, C.Buf.nextIndex(), Reg::sp());
    if (!Sp)
      return 0;
    uint64_t A = Sp->Bits;
    if (!C.Buf.empty())
      for (BufIdx J = C.Buf.maxIndex() + 1; J > C.Buf.minIndex();) {
        --J;
        const TransientInstr &T = C.Buf.at(J);
        if (T.isStoreToAddr(A) && T.StoreValIsResolved)
          return static_cast<PC>(T.StoreResolvedVal.Bits);
      }
    return static_cast<PC>(C.Mem.load(A).Bits);
  }

  /// The DFS driver: runs one path, forking at decision points.
  void explorePath(Configuration C, Schedule Sched, size_t PathSteps) {
    for (;;) {
      if (budgetExceeded(PathSteps))
        return;
      if (C.isFinal(P)) {
        ++Result.SchedulesCompleted;
        return;
      }

      bool CanFetch =
          C.Buf.size() < Opts.SpeculationBound && P.contains(C.N);
      if (CanFetch) {
        if (!fetchAndDecide(C, Sched, PathSteps))
          return; // Path ended (stalled machine or pruned).
        continue;
      }
      forceOldest(C, Sched, PathSteps);
    }
  }

  /// Phase A: fetch the next instruction eagerly, forking where B.18
  /// branches the schedule set.  Returns false iff the path is over.
  bool fetchAndDecide(Configuration &C, Schedule &Sched, size_t &PathSteps) {
    const Instruction &I = P.at(C.N);
    BufIdx Next = C.Buf.nextIndex();

    switch (I.kind()) {
    case InstrKind::Op:
      mustStep(C, Sched, PathSteps, Directive::fetch());
      tryStep(C, Sched, PathSteps, Directive::execute(Next));
      return true;

    case InstrKind::Fence:
      mustStep(C, Sched, PathSteps, Directive::fetch());
      return true;

    case InstrKind::Load: {
      mustStep(C, Sched, PathSteps, Directive::fetch());

      // Alias-prediction forks (§3.5): guess a forward from any earlier
      // value-resolved store whose address is still unknown.
      if (Opts.ExploreAliasPrediction && !C.Buf.empty()) {
        for (BufIdx J = C.Buf.minIndex(); J < Next; ++J) {
          const TransientInstr &S = C.Buf.at(J);
          if (!S.is(TransientKind::Store) || !S.StoreValIsResolved ||
              S.StoreAddrIsResolved)
            continue;
          Configuration C2 = C;
          Schedule S2 = Sched;
          size_t Steps2 = PathSteps;
          if (tryStep(C2, S2, Steps2, Directive::executeFwd(Next, J))) {
            tryStep(C2, S2, Steps2, Directive::execute(Next));
            explorePath(std::move(C2), std::move(S2), Steps2);
          }
          if (Done)
            return false;
        }
      }

      // Store-forwarding forks (§4.1): for every earlier store with an
      // unresolved address, one schedule resolves exactly that store's
      // address before this load executes — Pitchfork's
      // [execute s_i : addr; execute l] schedules.  The fall-through
      // schedule executes the load with no extra resolution (the "none
      // resolved" schedule: memory reads may be stale, Spectre v4).
      if (Opts.ExploreForwardingHazards && !C.Buf.empty()) {
        for (BufIdx S = C.Buf.minIndex(); S < Next; ++S) {
          const TransientInstr &St = C.Buf.at(S);
          if (!St.is(TransientKind::Store) || St.StoreAddrIsResolved)
            continue;
          // Architectural-path stores are covered by forced resolution
          // and its hazard re-execution; fork only where a rollback would
          // squash the store first (unless exhaustive forks were asked
          // for).
          if (!Opts.ExhaustiveForwardForks && !inSpeculativeShadow(C, S))
            continue;
          Configuration C2 = C;
          Schedule S2 = Sched;
          size_t Steps2 = PathSteps;
          if (!tryStep(C2, S2, Steps2, Directive::executeAddr(S)))
            continue;
          if (tryStep(C2, S2, Steps2, Directive::execute(Next))) {
            // Keep the fork only if this store actually forwarded; other
            // outcomes coincide with the fall-through schedule.
            const ReorderBuffer &B2 = C2.Buf;
            if (!B2.contains(Next) ||
                !B2.at(Next).is(TransientKind::LoadResolved) ||
                !(B2.at(Next).Dep && *B2.at(Next).Dep == S))
              continue;
          }
          explorePath(std::move(C2), std::move(S2), Steps2);
          if (Done)
            return false;
        }
      }

      tryStep(C, Sched, PathSteps, Directive::execute(Next));
      return true;
    }

    case InstrKind::Store: {
      mustStep(C, Sched, PathSteps, Directive::fetch());
      if (!C.Buf.at(Next).StoreValIsResolved)
        tryStep(C, Sched, PathSteps, Directive::executeValue(Next));
      // With forwarding-hazard exploration the address stays unresolved —
      // younger loads fork over its resolution; the retire stage forces
      // it at the latest (B.18).  Without it, resolve eagerly.
      if (!Opts.ExploreForwardingHazards)
        tryStep(C, Sched, PathSteps, Directive::executeAddr(Next));
      return true;
    }

    case InstrKind::Branch: {
      std::optional<bool> TrueCorrect = probeBranchCorrect(C);
      if (!TrueCorrect) {
        // Condition not executable yet (fence in flight): fork both
        // guesses unresolved; forceOldest() executes them later.
        Configuration C2 = C;
        Schedule S2 = Sched;
        size_t Steps2 = PathSteps;
        mustStep(C2, S2, Steps2, Directive::fetchBool(false));
        explorePath(std::move(C2), std::move(S2), Steps2);
        if (Done)
          return false;
        mustStep(C, Sched, PathSteps, Directive::fetchBool(true));
        return true;
      }
      bool Correct = *TrueCorrect;
      // Mispredicted fork: fetch the wrong guess and delay its resolution
      // as long as possible (B.18).  Nesting is bounded: wrong-path loops
      // would otherwise unroll a fresh fork per iteration.
      if (branchDepth(C) < Opts.MaxBranchDepth) {
        Configuration C2 = C;
        Schedule S2 = Sched;
        size_t Steps2 = PathSteps;
        mustStep(C2, S2, Steps2, Directive::fetchBool(!Correct));
        explorePath(std::move(C2), std::move(S2), Steps2);
        if (Done)
          return false;
      }
      // Correct-guess path: resolve immediately.
      mustStep(C, Sched, PathSteps, Directive::fetchBool(Correct));
      mustStep(C, Sched, PathSteps, Directive::execute(Next));
      return true;
    }

    case InstrKind::JumpI: {
      std::optional<PC> Correct = peekJumpTarget(C, I.args());
      // Mistraining forks (Spectre v2), when requested.
      for (PC T : Opts.IndirectTargets) {
        if (Correct && T == *Correct)
          continue;
        if (branchDepth(C) >= Opts.MaxBranchDepth)
          break;
        Configuration C2 = C;
        Schedule S2 = Sched;
        size_t Steps2 = PathSteps;
        mustStep(C2, S2, Steps2, Directive::fetchTarget(T));
        // Leave unresolved: wrong-path execution proceeds until forced.
        explorePath(std::move(C2), std::move(S2), Steps2);
        if (Done)
          return false;
      }
      mustStep(C, Sched, PathSteps,
               Directive::fetchTarget(Correct.value_or(0)));
      tryStep(C, Sched, PathSteps, Directive::execute(Next));
      return true;
    }

    case InstrKind::Call: {
      mustStep(C, Sched, PathSteps, Directive::fetch());
      tryStep(C, Sched, PathSteps, Directive::execute(Next + 1));
      // The return-address store to [rsp] delays like any store when
      // hazard exploration is on — exactly the gadget behind the FaCT
      // MEE finding (§4.2.2).
      if (!Opts.ExploreForwardingHazards)
        tryStep(C, Sched, PathSteps, Directive::executeAddr(Next + 2));
      return true;
    }

    case InstrKind::CallI: {
      // Indirect call: mistraining forks like jmpi (Spectre v2 via
      // function pointers), then the correct-prediction path; the group's
      // return-address store follows the usual forwarding regime.
      std::optional<PC> Correct = peekJumpTarget(C, I.args());
      for (PC T : Opts.IndirectTargets) {
        if (Correct && T == *Correct)
          continue;
        if (branchDepth(C) >= Opts.MaxBranchDepth)
          break;
        Configuration C2 = C;
        Schedule S2 = Sched;
        size_t Steps2 = PathSteps;
        mustStep(C2, S2, Steps2, Directive::fetchTarget(T));
        tryStep(C2, S2, Steps2, Directive::execute(Next + 1));
        explorePath(std::move(C2), std::move(S2), Steps2);
        if (Done)
          return false;
      }
      mustStep(C, Sched, PathSteps,
               Directive::fetchTarget(Correct.value_or(0)));
      tryStep(C, Sched, PathSteps, Directive::execute(Next + 1));
      if (!Opts.ExploreForwardingHazards)
        tryStep(C, Sched, PathSteps, Directive::executeAddr(Next + 2));
      tryStep(C, Sched, PathSteps, Directive::execute(Next + 3));
      return true;
    }

    case InstrKind::Ret: {
      bool RsbPredicts =
          M.options().RsbOnEmpty == RsbPolicy::Circular || C.Rsb.top();
      if (!RsbPredicts && M.options().RsbOnEmpty == RsbPolicy::Stall) {
        // The machine refuses to speculate.  Drain what is in flight; if
        // nothing is, the machine has stalled for good — a complete (if
        // unproductive) schedule.
        if (C.Buf.empty()) {
          ++Result.SchedulesCompleted;
          return false;
        }
        forceOldest(C, Sched, PathSteps);
        return true;
      }

      if (RsbPredicts) {
        mustStep(C, Sched, PathSteps, Directive::fetch());
      } else {
        // RSB underflow: fork over attacker targets (ret2spec), then
        // continue with the best-effort architectural target.
        for (PC T : Opts.RsbUnderflowTargets) {
          if (branchDepth(C) >= Opts.MaxBranchDepth)
            break;
          Configuration C2 = C;
          Schedule S2 = Sched;
          size_t Steps2 = PathSteps;
          mustStep(C2, S2, Steps2, Directive::fetchTarget(T));
          explorePath(std::move(C2), std::move(S2), Steps2);
          if (Done)
            return false;
        }
        mustStep(C, Sched, PathSteps,
                 Directive::fetchTarget(peekReturnTarget(C)));
      }
      tryStep(C, Sched, PathSteps, Directive::execute(Next + 1));
      tryStep(C, Sched, PathSteps, Directive::execute(Next + 2));
      tryStep(C, Sched, PathSteps, Directive::execute(Next + 3));
      return true;
    }
    }
    return true;
  }

  /// Phase B: the buffer is full (or nothing is fetchable).  In order:
  ///  1. retire the oldest entry if it is ready;
  ///  2. execute any pending *data* instruction (ops, loads, store
  ///     values) — entries that were blocked by a fence become executable
  ///     once it retires, and wrong-path work keeps running while delayed
  ///     control flow stays unresolved (maximal speculation, §4.1);
  ///  3. only then force the front-most delayed decision: a store's
  ///     address (possibly raising a forwarding hazard) or a mispredicted
  ///     branch / indirect jump (rolling back).
  void forceOldest(Configuration &C, Schedule &Sched, size_t &PathSteps) {
    assert(!C.Buf.empty() && "nothing to force");
    if (tryStep(C, Sched, PathSteps, Directive::retire()))
      return;

    // Step 2: oldest-first, try pending data work.
    for (BufIdx K = C.Buf.minIndex(); K <= C.Buf.maxIndex(); ++K) {
      const TransientInstr &T = C.Buf.at(K);
      switch (T.Kind) {
      case TransientKind::Op:
      case TransientKind::Load:
      case TransientKind::LoadGuessed:
        if (tryStep(C, Sched, PathSteps, Directive::execute(K)))
          return;
        break;
      case TransientKind::Store:
        if (!T.StoreValIsResolved &&
            tryStep(C, Sched, PathSteps, Directive::executeValue(K)))
          return;
        break;
      default:
        break;
      }
      if (C.Buf.empty() || K >= C.Buf.maxIndex())
        break;
    }

    // Step 3: force the first remaining unresolved entry (a delayed store
    // address or speculation-delayed control flow).
    for (BufIdx K = C.Buf.minIndex(); K <= C.Buf.maxIndex(); ++K) {
      const TransientInstr &T = C.Buf.at(K);
      if (T.isResolved())
        continue;
      bool Ok;
      if (T.is(TransientKind::Store))
        Ok = tryStep(C, Sched, PathSteps, Directive::executeAddr(K));
      else
        Ok = tryStep(C, Sched, PathSteps, Directive::execute(K));
      assert(Ok && "first unresolved entry must be executable");
      (void)Ok;
      return;
    }
    assert(false && "buffer unretirable yet fully resolved");
  }
};

} // namespace

ExploreResult sct::explore(const Machine &M, Configuration Init,
                           const ExplorerOptions &Opts) {
  Explorer E(M, Opts);
  return E.take(std::move(Init));
}
