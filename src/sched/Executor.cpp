//===- sched/Executor.cpp - Big-step execution C ⇓_D C' ---------------------===//

#include "sched/Executor.h"

#include "support/Printing.h"

using namespace sct;

std::vector<Observation> RunResult::observations() const {
  std::vector<Observation> O;
  for (const StepRecord &R : Trace)
    if (!R.Obs.isNone())
      O.push_back(R.Obs);
  return O;
}

bool RunResult::hasSecretObservation() const {
  for (const StepRecord &R : Trace)
    if (R.Obs.isSecret())
      return true;
  return false;
}

bool RunResult::sameObservations(const RunResult &Other) const {
  std::vector<Observation> A = observations();
  std::vector<Observation> B = Other.observations();
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (!A[I].observablyEquals(B[I]))
      return false;
  return true;
}

RunResult sct::runSchedule(const Machine &M, Configuration Init,
                           const Schedule &D) {
  RunResult R;
  R.Final = std::move(Init);
  R.Trace.reserve(D.size());
  for (size_t I = 0; I < D.size(); ++I) {
    std::string Why;
    auto Outcome = M.step(R.Final, D[I], &Why);
    if (!Outcome) {
      R.Stuck = true;
      R.StuckAt = I;
      R.StuckReason = std::move(Why);
      return R;
    }
    R.Trace.push_back({D[I], Outcome->Obs, Outcome->Rule});
    if (D[I].isRetire())
      ++R.Retires;
  }
  return R;
}

std::string sct::printRun(const Machine &M, const Configuration &Init,
                          const Schedule &D) {
  Configuration C = Init;
  std::vector<std::vector<std::string>> Rows;
  for (const Directive &Dir : D) {
    std::string Why;
    auto Outcome = M.step(C, Dir, &Why);
    if (!Outcome) {
      Rows.push_back({Dir.str(), "<inapplicable: " + Why + ">", ""});
      break;
    }
    std::string Effect;
    if (Dir.isFetch() || Dir.isExecute()) {
      // Show the buffer entry the directive affected, when still present.
      BufIdx I = Dir.isFetch()
                     ? (C.Buf.empty() ? 0 : C.Buf.maxIndex())
                     : Dir.Idx;
      if (!C.Buf.empty() && C.Buf.contains(I))
        Effect = std::to_string(I) + " -> " + C.Buf.at(I).str(M.program());
      else
        Effect = "(rolled back)";
    } else {
      Effect = "(retired)";
    }
    Rows.push_back({Dir.str(), Effect, Outcome->Obs.str()});
  }
  return renderTable({"Directive", "Effect on buf", "Leakage"}, Rows);
}
