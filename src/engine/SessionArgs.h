//===- engine/SessionArgs.h - Declarative session flag table ---*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The session flag table: every CLI knob that maps onto SessionOptions
/// lives in one declarative row — name, value placeholder, doc line,
/// setter — so a new flag is one table entry instead of parallel edits in
/// each driver's strcmp chain, and `--help` output is generated from the
/// same rows that parse.  Shared by `sctcheck`, `sctworker`, and the
/// bench mains; drivers with extra flags of their own call
/// parseSessionArgs first and then walk the unconsumed arguments.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_ENGINE_SESSIONARGS_H
#define SCT_ENGINE_SESSIONARGS_H

#include "engine/CheckSession.h"

#include <span>
#include <vector>

namespace sct {

/// One row of the flag table.
struct SessionFlag {
  /// Flag spelling, e.g. "--threads".
  const char *Name;
  /// Placeholder for the value argument in help output ("N", "DIR", ...);
  /// null for boolean flags that take no value.
  const char *Arg;
  /// One-line help text.
  const char *Doc;
  /// Applies the flag: \p Value is the following argv word when `Arg` is
  /// set, null otherwise.
  void (*Apply)(SessionOptions &Opts, const char *Value);
};

/// The table itself, for drivers that want to iterate or extend docs.
std::span<const SessionFlag> sessionFlags();

/// What parseSessionArgs consumed.
struct SessionArgs {
  SessionOptions Opts;
  /// Per-argv-slot consumption map (size Argc; slot 0 — the program name
  /// — is never consumed).  A driver with its own flags walks argv once
  /// more and treats any unconsumed slot as its own.
  std::vector<bool> Consumed;
};

/// Parses every table flag out of argv into fresh SessionOptions
/// (thread budget defaulted to the hardware concurrency), marking the
/// consumed slots.  Unknown arguments are left untouched for the driver.
SessionArgs parseSessionArgs(int Argc, char **Argv);

/// Help text generated from the table: one aligned "  --flag ARG  doc"
/// row per entry, ready to append to a driver's usage output.
std::string sessionFlagsHelp();

} // namespace sct

#endif // SCT_ENGINE_SESSIONARGS_H
