//===- engine/ResultCache.h - Persistent content-addressed cache -*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent half of the audit service: a directory of serialized
/// CheckResults, content-addressed by what determines a check's outcome —
/// the canonical program hash and the normalized options fingerprint
/// (engine/Serialization.h).  `CheckSession::checkMany` consults it before
/// exploring, so re-auditing an unchanged corpus is pure lookups and a
/// changed corpus only re-explores the changed cases.
///
/// **Entry format.**  One file per key, `<proghash>-<optsfp>.sctr`, laid
/// out as: magic, format version, both key halves echoed, a length-prefixed
/// serialized CheckResult payload, and a trailing content checksum.  A
/// lookup validates all of it; any mismatch — stale version, key echo
/// disagreement (a hash-collision guard against the filename), truncation,
/// bit rot — is a plain miss, never an error.  Entries are written to a
/// `tmp-<pid>-...` sibling and `rename`d into place, so concurrent
/// sessions sharing a cache directory see complete entries or none.
///
/// **What is cacheable.**  Exactly the `wireable()` requests: a custom
/// initial configuration or a cross-exploration table handle (Reuse /
/// ExportSeenStates) makes a check's outcome depend on state the key
/// cannot see, so those requests bypass the cache wholesale.  The dual
/// obligation — every behavior-affecting *option* must be in the
/// fingerprint — is the cache-key completeness invariant documented in
/// docs/ARCHITECTURE.md.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_ENGINE_RESULTCACHE_H
#define SCT_ENGINE_RESULTCACHE_H

#include "engine/CheckSession.h"

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

namespace sct {

/// Persistent content-addressed store of CheckResults.
class ResultCache {
public:
  /// The two-part content address of an entry.
  struct Key {
    uint64_t ProgHash = 0; ///< programHash(Req.Prog)
    uint64_t OptsFp = 0;   ///< optionsFingerprint(Opts, MOpts, Passes)
  };

  /// Opens (creating if needed) the cache rooted at \p Dir.  Check ok().
  explicit ResultCache(std::string Dir);

  /// False when the directory could not be created; the session then runs
  /// uncached.
  bool ok() const { return Usable; }
  const std::string &dir() const { return Directory; }

  /// The content address of \p Req under resolved passes \p Passes, or
  /// nullopt for requests whose outcome the key cannot capture (custom
  /// Init, reuse filters, seen-state exports — see wireable()).
  static std::optional<Key> keyFor(const CheckRequest &Req,
                                   const PassConfig &Passes);

  /// Raw entry access: the validated payload's deserialized CheckResult,
  /// or nullopt on miss/corruption (a corrupt entry is counted as a miss).
  std::optional<CheckResult> lookup(const Key &K) const;

  /// Atomically stores \p Res under \p K (tmp file + rename).  Returns
  /// false on I/O failure; the cache stays usable either way.
  bool store(const Key &K, const CheckResult &Res) const;

  /// Conveniences fusing keyFor with lookup/store; no-ops (miss / false)
  /// on uncacheable requests.
  std::optional<CheckResult> lookupResult(const CheckRequest &Req,
                                          const PassConfig &Passes) const;
  bool storeResult(const CheckRequest &Req, const PassConfig &Passes,
                   const CheckResult &Res) const;

  /// Session-lifetime counters (lookups that found a valid entry, lookups
  /// that did not, successful stores).
  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  uint64_t stores() const { return Stores.load(std::memory_order_relaxed); }

private:
  std::string entryPath(const Key &K) const;

  std::string Directory;
  bool Usable = false;
  mutable std::atomic<uint64_t> Hits{0};
  mutable std::atomic<uint64_t> Misses{0};
  mutable std::atomic<uint64_t> Stores{0};
};

} // namespace sct

#endif // SCT_ENGINE_RESULTCACHE_H
