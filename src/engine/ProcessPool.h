//===- engine/ProcessPool.h - Worker-process dispatcher --------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-process half of the audit service: a pool of `sctworker`
/// subprocesses fed length-prefixed request frames over pipes and drained
/// for result frames, with one request in flight per worker.  The engine's
/// determinism contract makes this safe to expose at all — a check's leak
/// set does not depend on where it ran — so `CheckSession::checkMany` can
/// dispatch cache misses here and merge the results back in request order.
///
/// **Framing.**  Both directions use the same frame: magic, protocol
/// version, a per-worker monotone sequence stamp, the job index, and a
/// length-prefixed payload (a serialized request out, a serialized
/// CheckResult back — engine/Serialization.h).  The sequence stamp is the
/// ordering proof: each worker must echo exactly the stamp of the request
/// it was sent, so a late reply from a worker that was timed out and
/// replaced can never be attributed to the wrong job, and merging results
/// by job index is deterministic no matter which worker finished first.
///
/// **Failure handling.**  A worker that closes its pipe or writes a
/// malformed/mis-stamped frame is dead: its in-flight job is re-dispatched
/// once to another live worker, and a second failure (or no live worker
/// to take it) lands the job on the fallback list.  A worker that blows
/// the per-request timeout is SIGKILLed and its job goes straight to
/// fallback — a request that slow on one worker is not worth a second
/// worker's time.  The caller (CheckSession) runs the fallback list
/// in-process, so worker trouble degrades throughput, never correctness.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_ENGINE_PROCESSPOOL_H
#define SCT_ENGINE_PROCESSPOOL_H

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <sys/types.h>
#include <vector>

namespace sct {

/// Frame constants shared by the pool and the sctworker main loop.
/// Magic "SCTW" little-endian.
inline constexpr uint32_t WireMagic = 0x57544353;
inline constexpr uint32_t WireProtocolVersion = 1;

/// One length-prefixed frame header (both directions).  Serialized
/// field-by-field little-endian, never memcpy'd as a struct.
struct WireFrame {
  uint64_t Seq = 0;     ///< Per-worker monotone stamp; replies must echo.
  uint64_t Job = 0;     ///< Caller's job index; replies must echo.
  std::vector<uint8_t> Payload;
};

/// Reads one frame from \p Fd (blocking).  Returns false on EOF or a
/// malformed header.
bool readWireFrame(int Fd, WireFrame &F);
/// Writes one frame to \p Fd.  Returns false on a short/failed write.
bool writeWireFrame(int Fd, const WireFrame &F);

/// A pool of worker subprocesses with one in-flight request each.
class ProcessPool {
public:
  struct Options {
    std::string WorkerBinary; ///< argv[0] of each worker.
    unsigned Workers = 1;     ///< Processes to spawn.
    double TimeoutSec = 300;  ///< Per-request wall-clock limit; <=0 = none.
  };

  explicit ProcessPool(const Options &Opts);
  ~ProcessPool();
  ProcessPool(const ProcessPool &) = delete;
  ProcessPool &operator=(const ProcessPool &) = delete;

  /// True iff at least one worker spawned.
  bool ok() const;
  /// Workers still live (informational).
  unsigned aliveWorkers() const;
  pid_t workerPid(unsigned I) const { return W[I].Pid; }

  /// Dispatches every job in \p Jobs to the workers, keeping each worker
  /// saturated with one request at a time.  \p Payload renders a job to
  /// its request bytes (called once per dispatch, so a re-dispatched job
  /// is re-rendered); \p OnResult consumes a reply payload and returns
  /// false to reject it (a rejected reply counts as a worker failure).
  /// Returns the jobs that could not be completed — the caller's
  /// in-process fallback list, in ascending job order.
  std::vector<size_t>
  run(std::span<const size_t> Jobs,
      const std::function<std::vector<uint8_t>(size_t)> &Payload,
      const std::function<bool(size_t, std::span<const uint8_t>)> &OnResult);

private:
  struct Worker {
    pid_t Pid = -1;
    int In = -1;  ///< Pool-side write end (worker's stdin).
    int Out = -1; ///< Pool-side read end (worker's stdout).
    uint64_t TxSeq = 0; ///< Stamps issued to this worker so far.
    bool Alive = false;
    // In-flight request state.
    bool Busy = false;
    size_t Job = 0;
    uint64_t SentSeq = 0;
    double Deadline = 0; ///< Monotonic seconds; 0 = no timeout.
  };

  void spawn(unsigned I);
  void kill(Worker &Wk);

  Options Opts;
  std::vector<Worker> W;
};

} // namespace sct

#endif // SCT_ENGINE_PROCESSPOOL_H
