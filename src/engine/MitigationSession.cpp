//===- engine/MitigationSession.cpp - Mitigation validation engine ----------===//
//
// Baseline check -> transform -> diff-driven re-check.  The two reuse
// mechanisms (seen-state reuse through the provenance remap, witness
// replay) are accelerators and evidence respectively — the re-check's
// verdict never depends on them: reuse prunes only states certified
// leak-free by a complete baseline exploration, and replay only ever
// *adds* proof that a leak is open.
//
//===----------------------------------------------------------------------===//

#include "engine/MitigationSession.h"

#include "sched/SequentialScheduler.h"

#include <algorithm>
#include <set>

using namespace sct;

size_t sct::sequentialScheduleLength(const Program &P,
                                     const MachineOptions &MachOpts) {
  Machine M(P, MachOpts);
  SequentialResult R = runSequential(M, Configuration::initial(P));
  return R.Run.Stuck ? 0 : R.Sched.size();
}

namespace {

/// Old program points from which an *inserted* (or replacing) instruction
/// is reachable in the transformed layout: fetch from any of them in the
/// mitigated program and the subtree can diverge from the baseline's.
/// Conservative over control flow — indirect jumps/calls (and `ret` under
/// the attacker-choice RSB policy) are treated as reaching everything.
/// Size endPC()+1 (the end point participates: an epilogue insertion
/// influences it).
std::vector<char> influencedOldPoints(const Program &P,
                                      const ProvenanceMap &Map,
                                      const Program &NewProg,
                                      const MachineOptions &MachOpts) {
  const PC End = P.endPC();
  std::vector<char> Influenced(End + 1, 0);

  // Seeds: points whose control-flow image differs from their
  // instruction image (something was inserted before them, or the
  // instruction was replaced away).
  bool AnySite = false;
  for (PC Old = 0; Old < End; ++Old) {
    std::optional<PC> T = Map.newTargetOf(Old);
    std::optional<PC> I = Map.newOf(Old);
    if (!T || !I || *T != *I) {
      Influenced[Old] = 1;
      AnySite = true;
    }
  }
  if (Map.newTargetOf(End).value_or(NewProg.endPC()) != NewProg.endPC()) {
    Influenced[End] = 1; // Epilogue insertion at the old end point.
    AnySite = true;
  }
  if (!AnySite)
    return Influenced; // Identity layout: nothing to reach.

  // Return points a `ret` can land on without attacker choice: every
  // call's fall-through (that is what calls push), plus program point 0
  // for the circular RSB (underflow wraps onto an empty slot).
  std::vector<PC> RetSuccs;
  bool RetUnknown = MachOpts.RsbOnEmpty == RsbPolicy::AttackerChoice;
  for (PC N = 0; N < End; ++N)
    if (P.at(N).is(InstrKind::Call) || P.at(N).is(InstrKind::CallI))
      RetSuccs.push_back(P.at(N).next());
  if (MachOpts.RsbOnEmpty == RsbPolicy::Circular)
    RetSuccs.push_back(0);

  // Backward fixpoint: a point is influenced if any successor is.
  bool Changed = true;
  auto Mark = [&](PC N, bool &Out) {
    if (N <= End && Influenced[N])
      Out = true;
  };
  while (Changed) {
    Changed = false;
    for (PC N = 0; N < End; ++N) {
      if (Influenced[N])
        continue;
      const Instruction &I = P.at(N);
      bool Inf = false;
      switch (I.kind()) {
      case InstrKind::Op:
      case InstrKind::Load:
      case InstrKind::Store:
      case InstrKind::Fence:
        Mark(I.next(), Inf);
        break;
      case InstrKind::Branch:
        Mark(I.trueTarget(), Inf);
        Mark(I.falseTarget(), Inf);
        break;
      case InstrKind::Call:
        Mark(I.callee(), Inf);
        Mark(I.next(), Inf);
        break;
      case InstrKind::JumpI:
      case InstrKind::CallI:
        Inf = true; // Data-driven target: reaches anything.
        break;
      case InstrKind::Ret:
        if (RetUnknown)
          Inf = true;
        else
          for (PC S : RetSuccs)
            Mark(S, Inf);
        break;
      }
      if (Inf) {
        Influenced[N] = 1;
        Changed = true;
      }
    }
  }
  return Influenced;
}

/// The strictly-ahead half of the influence veto: true for old point \p n
/// iff an insertion is reachable from n *without counting whatever sits
/// on the way into n itself* — i.e. some successor of n is influenced.
/// This is what a configuration's fetch point must be vetoed by: the
/// machine already consumed anything inserted before n (a blanket fence,
/// say), so only insertions still ahead can make the subtree diverge.
/// Same conservative control-flow treatment as influencedOldPoints; the
/// end point has no successors and is never ahead-influenced.
std::vector<char> influencedAheadPoints(const Program &P,
                                        const std::vector<char> &Influenced,
                                        const MachineOptions &MachOpts) {
  const PC End = P.endPC();
  std::vector<char> Ahead(End + 1, 0);
  std::vector<PC> RetSuccs;
  bool RetUnknown = MachOpts.RsbOnEmpty == RsbPolicy::AttackerChoice;
  for (PC N = 0; N < End; ++N)
    if (P.at(N).is(InstrKind::Call) || P.at(N).is(InstrKind::CallI))
      RetSuccs.push_back(P.at(N).next());
  if (MachOpts.RsbOnEmpty == RsbPolicy::Circular)
    RetSuccs.push_back(0);

  auto Inf = [&](PC M) { return M <= End && Influenced[M]; };
  for (PC N = 0; N < End; ++N) {
    const Instruction &I = P.at(N);
    bool A = false;
    switch (I.kind()) {
    case InstrKind::Op:
    case InstrKind::Load:
    case InstrKind::Store:
    case InstrKind::Fence:
      A = Inf(I.next());
      break;
    case InstrKind::Branch:
      A = Inf(I.trueTarget()) || Inf(I.falseTarget());
      break;
    case InstrKind::Call:
      A = Inf(I.callee()) || Inf(I.next());
      break;
    case InstrKind::JumpI:
    case InstrKind::CallI:
      A = true; // Data-driven target: reaches anything.
      break;
    case InstrKind::Ret:
      if (RetUnknown)
        A = true;
      else
        for (PC S : RetSuccs)
          A = A || Inf(S);
      break;
    }
    Ahead[N] = A;
  }
  return Ahead;
}

/// PcRemap over a mitigation's provenance: maps mitigated coordinates
/// back to baseline ones.  Two tiers, chosen by what the transform
/// inserted:
///
///  - Fence-only transforms (every new slot without provenance is a
///    fence): all three channels map through the raw provenance, no
///    influence veto.  The subtrees are not isomorphic — the mitigated
///    one fetches fences the baseline never sees — but a fence only
///    *removes* speculative behaviour (it blocks younger fetches until it
///    retires) and its own fetch/retire steps observe nothing, so every
///    observation the mitigated subtree can make, the baseline subtree
///    makes too: leak-freedom transfers.  An inserted fence's own PC maps
///    through the target channel to the old point whose arrival it
///    guards; a configuration parked right before an unfetched fence
///    likewise corresponds to the baseline state at the guarded point
///    (fetchPoint).  A fence already *in flight* still refuses an image
///    (its ROB entry has no baseline counterpart), and any state past a
///    *consumed* fence simply never matches — retiring the fence shifted
///    the buffer-index coordinates the fingerprint folds — so both are
///    silent misses, never unsound hits.
///  - Anything else inserted (retpoline thunks, masking ops) can change
///    values and add observations, so the strict contract applies: the
///    arrival (target) and in-flight (instr) channels refuse any
///    influenced old point, and the fetch channel refuses points with an
///    insertion still reachable ahead (consumed insertions are history —
///    that is the one asymmetry a fetch point is entitled to).
class MitigationRemap final : public PcRemap {
public:
  MitigationRemap(ProvenanceMap Map, std::vector<char> InfluencedOld,
                  std::vector<char> AheadOld, bool FencesOnly, PC OldEnd,
                  PC NewEnd)
      : Map(std::move(Map)), Influenced(std::move(InfluencedOld)),
        Ahead(std::move(AheadOld)), FencesOnly(FencesOnly), OldEnd(OldEnd),
        NewEnd(NewEnd) {}

  std::optional<PC> target(PC N) const override {
    std::optional<PC> Old = Map.oldTargetOf(N);
    if (!Old)
      return std::nullopt;
    if (!FencesOnly && *Old < Influenced.size() && Influenced[*Old])
      return std::nullopt;
    return Old;
  }
  std::optional<PC> instr(PC N) const override {
    std::optional<PC> Old = Map.oldOf(N);
    if (!Old)
      return std::nullopt;
    if (!FencesOnly && *Old < Influenced.size() && Influenced[*Old])
      return std::nullopt;
    return Old;
  }
  std::optional<PC> fetchPoint(PC N) const override {
    // The terminal fetch point maps to the terminal fetch point even
    // behind an inserted epilogue: nothing lies ahead of it.
    if (N == NewEnd)
      return OldEnd;
    if (std::optional<PC> Old = Map.oldOf(N)) {
      if (!FencesOnly && *Old < Ahead.size() && Ahead[*Old])
        return std::nullopt;
      return Old;
    }
    // Sitting at an inserted instruction.  Under a fence-only transform
    // the machine is about to fetch a fence guarding arrival at some old
    // point n: this state corresponds to the baseline state whose fetch
    // point is n — the fence's own fetch/retire observe nothing, and
    // everything beyond it is common to both programs.
    if (FencesOnly)
      return Map.oldTargetOf(N);
    return std::nullopt;
  }

private:
  ProvenanceMap Map;
  std::vector<char> Influenced;
  std::vector<char> Ahead;
  bool FencesOnly;
  PC OldEnd;
  PC NewEnd;
};

/// Builds the reuse filter for a variant, or null when reuse would be
/// unsound or pointless: truncated/short-circuited baselines cannot
/// certify subtree coverage, and a transform that grows the register
/// file (retpoline's scratch) shifts every fingerprint anyway.
std::shared_ptr<const RemappedSeenFilter>
makeReuseFilter(const Program &P, const Program &NewProg,
                const ProvenanceMap &Map, const MachineOptions &MachOpts,
                const CheckResult &Baseline) {
  if (Baseline.Exploration.Truncated || Baseline.Opts.StopAtFirstLeak ||
      !Baseline.Exploration.SeenExport)
    return nullptr;
  if (NewProg.numRegs() != P.numRegs())
    return nullptr;
  std::vector<char> Influenced = influencedOldPoints(P, Map, NewProg, MachOpts);
  std::vector<char> Ahead = influencedAheadPoints(P, Influenced, MachOpts);
  // Every provenance-less slot a fence <=> the fetch channel may drop its
  // ahead veto entirely (see MitigationRemap).
  bool FencesOnly = true;
  for (PC N = 0; N < NewProg.endPC(); ++N)
    if (!Map.oldOf(N) && !NewProg.at(N).is(InstrKind::Fence)) {
      FencesOnly = false;
      break;
    }
  auto Remap = std::make_shared<const MitigationRemap>(
      Map, std::move(Influenced), std::move(Ahead), FencesOnly, P.endPC(),
      NewProg.endPC());
  return std::make_shared<const RemappedSeenFilter>(
      Baseline.Exploration.SeenExport, Remap);
}

/// The dedup key the baseline leak would carry at origin \p Origin.
uint64_t keyAtOrigin(const LeakRecord &L, PC Origin) {
  LeakRecord Probe{Schedule{}, L.Obs, Origin, L.Rule};
  return Probe.key();
}

/// Origin-agnostic leak identity, for leaks whose origin instruction the
/// transform rewrote away.
uint64_t leakTriple(const Observation &Obs, RuleId Rule) {
  return hashFields(
      {uint64_t(Obs.K), uint64_t(Rule), Obs.Payload.Taint.mask()});
}

/// Lenient replay of a baseline witness on the mitigated program:
/// directives map through the provenance (predicted targets relocate,
/// buffer indices re-derive from the mitigated allocation ranges), and
/// inserted instructions sitting at the fetch point are swallowed with
/// extra plain fetches.  Returns true iff some executed step emits a
/// secret observation with the mapped leak key — concrete, sound proof
/// the mitigation left the leak open; false is *inconclusive* (the
/// re-exploration decides).
bool witnessReplaysOpen(const Machine &M, const ProvenanceMap &Map,
                        const LeakRecord &L) {
  std::optional<PC> NewOrigin = Map.newOf(L.Origin);
  if (!NewOrigin)
    return false;
  const uint64_t TargetKey = keyAtOrigin(L, *NewOrigin);
  const Schedule &W = L.MinSched.empty() ? L.Sched : L.MinSched;
  const Program &Prog = M.program();

  Configuration C = Configuration::initial(Prog);
  /// Allocation correspondence: the witness's buffer indices are baseline
  /// allocations; each witness fetch allocates the same group shape here
  /// (the instruction is the same, relocated), offset by the inserted
  /// instructions swallowed so far.
  struct Range {
    BufIdx BaseFrom, MitFrom;
    unsigned Slots;
  };
  std::vector<Range> Ranges;
  BufIdx BaseNext = C.Buf.nextIndex();
  auto MapIdx = [&Ranges](BufIdx Base, BufIdx &Out) {
    for (const Range &R : Ranges)
      if (Base >= R.BaseFrom && Base < R.BaseFrom + R.Slots) {
        Out = R.MitFrom + (Base - R.BaseFrom);
        return true;
      }
    return false;
  };

  for (const Directive &D : W) {
    if (D.isFetch()) {
      // Swallow inserted instructions (fences, retpoline thunk heads) at
      // the fetch point so the witness's fetch lands on the instruction
      // it meant.  Bounded: each swallow consumes one inserted slot.
      for (size_t Guard = 0; Guard <= Prog.size(); ++Guard) {
        if (!Prog.contains(C.N) || Map.oldOf(C.N))
          break;
        if (!M.step(C, Directive::fetch()))
          break;
      }
    }
    Directive D2 = D;
    if (D.K == Directive::Kind::FetchTarget) {
      std::optional<PC> T = Map.newTargetOf(D.Target);
      if (T)
        D2.Target = *T;
    } else if (D.isExecute()) {
      if (!MapIdx(D.Idx, D2.Idx))
        continue;
      if (D.K == Directive::Kind::ExecuteFwd && !MapIdx(D.FwdFrom, D2.FwdFrom))
        continue;
    }
    BufIdx MitFrom = C.Buf.nextIndex();
    PC Origin = leakOriginOf(C, D2);
    auto Out = M.step(C, D2);
    if (!Out)
      continue; // Lenient: a fence in flight blocks, rollbacks reshuffle.
    if (D.isFetch()) {
      unsigned Slots = static_cast<unsigned>(C.Buf.nextIndex() - MitFrom);
      if (Slots) {
        Ranges.push_back({BaseNext, MitFrom, Slots});
        BaseNext += Slots;
      }
    }
    if (Out->Obs.isSecret()) {
      LeakRecord Probe{Schedule{}, Out->Obs, Origin, Out->Rule};
      if (Probe.key() == TargetKey)
        return true;
    }
  }
  return false;
}

/// Program points a set of witnesses visit on the baseline program: the
/// fetch points along each (minimized, when available) witness replay.
/// A blanket fence site outside this set never interposed on any known
/// attack — the placement search's seed drops it first.
std::set<PC> witnessTouchedPoints(const Program &P,
                                  const MachineOptions &MachOpts,
                                  const std::vector<LeakRecord> &Leaks) {
  std::set<PC> Touched;
  Machine M(P, MachOpts);
  for (const LeakRecord &L : Leaks) {
    Configuration C = Configuration::initial(P);
    Touched.insert(C.N);
    const Schedule &W = L.MinSched.empty() ? L.Sched : L.MinSched;
    for (const Directive &D : W) {
      if (!M.step(C, D))
        continue;
      Touched.insert(C.N);
    }
  }
  return Touched;
}

} // namespace

MitigationSession::MitigationSession(SessionOptions SOpts,
                                     MitigationOptions MOpts)
    : Session(std::move(SOpts)), Opts(MOpts) {}

MitigationVariant MitigationSession::checkVariant(
    const Program &P, const ExplorerOptions &Mode, const Mitigation &M,
    const CheckResult &Baseline, const MachineOptions &MachOpts) const {
  MitigationVariant V;
  V.Name = M.name();
  MitigationResult MR = M.run(P);
  V.Cost = MR.Cost;
  if (!MR.ok()) {
    V.Error = std::move(MR.Error);
    return V;
  }
  V.Prog = std::move(MR.Prog);
  V.Map = std::move(MR.Map);
  V.SeqSteps = sequentialScheduleLength(V.Prog, MachOpts);

  CheckRequest Req;
  Req.Id = "mitigated/" + V.Name;
  Req.Prog = V.Prog;
  Req.Opts = Mode;
  Req.MOpts = MachOpts;
  // Attacker-chosen targets are baseline coordinates; relocate them.
  for (PC &T : Req.Opts.IndirectTargets)
    T = V.Map.newTargetOf(T).value_or(T);
  for (PC &T : Req.Opts.RsbUnderflowTargets)
    T = V.Map.newTargetOf(T).value_or(T);
  std::shared_ptr<const RemappedSeenFilter> Filter;
  if (Opts.ReuseSeenStates) {
    Filter = makeReuseFilter(P, V.Prog, V.Map, MachOpts, Baseline);
    Req.Opts.Reuse = Filter;
  }
  if (Opts.ProveSpsRecheck) {
    PassConfig &Passes = Req.Passes.emplace();
    Passes.ProveSps = true;
    Passes.Sps = Opts.Sps;
    // The re-check is a verifier, not an agreement check: window-depth
    // consults keep the proof sound and stop looping candidates from
    // depth-clipping into Inconclusive (and the slow explorer fallback).
    Passes.Sps.DepthToWindow = true;
  }
  V.After = Session.check(Req);
  V.ReusePrunedNodes = V.After.Exploration.ReusePrunedNodes;
  if (Filter)
    V.ReusePrunedAt = Filter->prunedRoots();

  // Per-leak closure: a baseline leak is closed iff the re-check found no
  // leak with the corresponding key (mapped origin) — or, when the origin
  // instruction was rewritten away, no leak with the same
  // kind/rule/taint identity.
  std::set<uint64_t> AfterKeys, AfterTriples;
  for (const LeakRecord &AL : V.After.Exploration.Leaks) {
    AfterKeys.insert(AL.key());
    AfterTriples.insert(leakTriple(AL.Obs, AL.Rule));
  }
  // When the SPS backend settled the re-check, its counterexamples (in
  // mitigated coordinates) are the closure evidence: a proof closes every
  // baseline leak, a refutation keeps open exactly the mapped origins it
  // names.  Otherwise the explorer's deduplicated leak set decides.
  bool SpsSettled = V.After.Sps && V.After.Sps->conclusive();
  Machine MitM(V.Prog, MachOpts);
  for (const LeakRecord &L : Baseline.Exploration.Leaks) {
    LeakClosure C;
    C.BaselineKey = L.key();
    C.Origin = L.Origin;
    C.MitigatedOrigin = V.Map.newOf(L.Origin);
    if (SpsSettled) {
      const SpsReport &S = *V.After.Sps;
      C.Closed = S.proved() ||
                 (C.MitigatedOrigin
                      ? !S.hasCounterExampleAt(*C.MitigatedOrigin)
                      : S.CounterExamples.empty());
    } else if (C.MitigatedOrigin)
      C.Closed = !AfterKeys.count(keyAtOrigin(L, *C.MitigatedOrigin));
    else
      C.Closed = !AfterTriples.count(leakTriple(L.Obs, L.Rule));
    if (Opts.ReplayWitnesses)
      C.ReplayPredictsOpen = witnessReplaysOpen(MitM, V.Map, L);
    V.Leaks.push_back(std::move(C));
  }
  return V;
}

MitigationReport
MitigationSession::run(const Program &P, const ExplorerOptions &Mode,
                       std::span<const Mitigation *const> Ms,
                       const MachineOptions &MachOpts) const {
  MitigationReport Rep;
  CheckRequest Base;
  Base.Id = "baseline";
  Base.Prog = P;
  Base.Opts = Mode;
  Base.Opts.ExportSeenStates = Opts.ReuseSeenStates;
  Base.MOpts = MachOpts;
  Base.Passes.emplace().MinimizeWitnesses = Opts.MinimizeBaselineWitnesses;
  Rep.Baseline = Session.check(Base);
  Rep.SeqStepsBaseline = sequentialScheduleLength(P, MachOpts);
  for (const Mitigation *M : Ms)
    Rep.Variants.push_back(checkVariant(P, Mode, *M, Rep.Baseline, MachOpts));
  return Rep;
}

MitigationReport MitigationSession::run(const Program &P,
                                        const ExplorerOptions &Mode,
                                        const Mitigation &M,
                                        const MachineOptions &MachOpts) const {
  const Mitigation *Ms[1] = {&M};
  return run(P, Mode, std::span<const Mitigation *const>(Ms), MachOpts);
}

FencePlacementResult MitigationSession::minimizeFencePlacement(
    const Program &P, const ExplorerOptions &Mode,
    const FencePlacementOptions &FOpts, const MachineOptions &MachOpts,
    const CheckResult *Baseline) const {
  FencePlacementResult R;
  std::vector<PC> Blanket = FenceInsertion::policySites(P, FOpts.Blanket);
  R.BlanketSites = Blanket.size();

  if (Baseline) {
    R.Baseline = *Baseline;
  } else {
    CheckRequest Base;
    Base.Id = "baseline";
    Base.Prog = P;
    Base.Opts = Mode;
    Base.Opts.ExportSeenStates = Opts.ReuseSeenStates;
    Base.MOpts = MachOpts;
    Base.Passes.emplace().MinimizeWitnesses = Opts.MinimizeBaselineWitnesses;
    R.Baseline = Session.check(Base);
  }
  if (R.Baseline.secure()) {
    // Nothing to fix: the empty placement is optimal.
    R.RestoredSct = true;
    R.Final = R.Baseline;
    R.Mitigated = P;
    return R;
  }

  // One candidate fence set -> one diff-driven re-check.
  auto Verify = [&](const std::vector<PC> &Sites) -> bool {
    if (R.ChecksSpent >= FOpts.MaxChecks)
      return false;
    ++R.ChecksSpent;
    FenceInsertion FI(Sites, FOpts.CodePointerAddrs, FOpts.CodePointerRegs);
    MitigationResult MR = FI.run(P);
    if (!MR.ok()) {
      R.Error = std::move(MR.Error);
      return false;
    }
    CheckRequest Req;
    Req.Id = "fence-candidate";
    Req.Prog = MR.Prog;
    Req.Opts = Mode;
    Req.MOpts = MachOpts;
    // The oracle is binary — secure or not — so a failing candidate can
    // stop at its first leak instead of enumerating them all (a passing
    // one necessarily explores everything either way).
    Req.Opts.StopAtFirstLeak = true;
    if (FOpts.ProveSps) {
      PassConfig &Passes = Req.Passes.emplace();
      Passes.ProveSps = true;
      Passes.Sps = FOpts.Sps;
      Passes.Sps.StopAtFirstCounterExample = true;
      Passes.Sps.DepthToWindow = true; // Verifier depth; see checkVariant.
    }
    for (PC &T : Req.Opts.IndirectTargets)
      T = MR.Map.newTargetOf(T).value_or(T);
    for (PC &T : Req.Opts.RsbUnderflowTargets)
      T = MR.Map.newTargetOf(T).value_or(T);
    if (Opts.ReuseSeenStates)
      Req.Opts.Reuse =
          makeReuseFilter(P, MR.Prog, MR.Map, MachOpts, R.Baseline);
    CheckResult CR = Session.check(Req);
    if (!CR.secure())
      return false;
    R.Final = std::move(CR);
    R.Mitigated = std::move(MR.Prog);
    return true;
  };

  std::vector<PC> Cur = Blanket;
  if (!Verify(Cur) || R.Error) {
    // The blanket itself does not restore SCT (v2-style leaks) or the
    // program refused relocation: report honestly, nothing to minimize.
    R.Sites = Cur;
    return R;
  }
  R.RestoredSct = true;
  R.Sites = Cur;

  // Diff-driven seed: fences the witnesses never crossed cannot have
  // interposed on any known attack; try dropping them all at once.
  if (FOpts.WitnessSeed) {
    std::set<PC> Touched =
        witnessTouchedPoints(P, MachOpts, R.Baseline.Exploration.Leaks);
    std::vector<PC> Seed;
    for (PC S : Cur)
      if (Touched.count(S))
        Seed.push_back(S);
    if (!Seed.empty() && Seed.size() < Cur.size() && Verify(Seed)) {
      Cur = std::move(Seed);
      R.Sites = Cur;
    }
  }

  // ddmin over the site set: 1-minimal w.r.t. removing any single fence
  // (budget permitting).
  size_t N = 2;
  while (Cur.size() >= 2 && R.ChecksSpent < FOpts.MaxChecks) {
    if (N > Cur.size())
      N = Cur.size();
    size_t Chunk = (Cur.size() + N - 1) / N;
    bool Reduced = false;
    for (size_t Start = 0; Start < Cur.size(); Start += Chunk) {
      std::vector<PC> Cand;
      for (size_t I = 0; I < Cur.size(); ++I)
        if (I < Start || I >= Start + Chunk)
          Cand.push_back(Cur[I]);
      if (Cand.empty() || Cand.size() >= Cur.size())
        continue;
      if (Verify(Cand)) {
        Cur = std::move(Cand);
        R.Sites = Cur;
        Reduced = true;
        break;
      }
    }
    if (Reduced) {
      N = std::max<size_t>(2, N - 1);
      continue;
    }
    if (Chunk <= 1)
      break;
    N = std::min(N * 2, Cur.size());
  }
  R.Sites = Cur;
  return R;
}
