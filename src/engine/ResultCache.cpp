//===- engine/ResultCache.cpp - Persistent content-addressed cache ----------===//

#include "engine/ResultCache.h"

#include "engine/Serialization.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <unistd.h>

using namespace sct;

namespace {

/// Entry file magic: "SCTC" little-endian.
constexpr uint32_t CacheMagic = 0x43544353;

std::string hex16(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

} // namespace

ResultCache::ResultCache(std::string Dir) : Directory(std::move(Dir)) {
  std::error_code EC;
  std::filesystem::create_directories(Directory, EC);
  Usable = !EC && std::filesystem::is_directory(Directory, EC) && !EC;
}

std::optional<ResultCache::Key>
ResultCache::keyFor(const CheckRequest &Req, const PassConfig &Passes) {
  if (!wireable(Req))
    return std::nullopt;
  Key K;
  K.ProgHash = programHash(Req.Prog);
  K.OptsFp = optionsFingerprint(Req.Opts, Req.MOpts, Passes);
  return K;
}

std::string ResultCache::entryPath(const Key &K) const {
  return Directory + "/" + hex16(K.ProgHash) + "-" + hex16(K.OptsFp) +
         ".sctr";
}

std::optional<CheckResult> ResultCache::lookup(const Key &K) const {
  auto Miss = [&]() -> std::optional<CheckResult> {
    Misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  };

  std::ifstream In(entryPath(K), std::ios::binary);
  if (!In)
    return Miss();
  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
  if (!In.good() && !In.eof())
    return Miss();

  ByteReader R(Bytes);
  if (R.u32() != CacheMagic || R.u32() != SerializationFormatVersion)
    return Miss();
  // Key echo: guards against a renamed/misfiled entry (the filename is
  // not trusted) — and doubles as the collision check for the address.
  if (R.u64() != K.ProgHash || R.u64() != K.OptsFp)
    return Miss();
  uint64_t PayloadLen = R.count(1);
  if (!R.ok())
    return Miss();
  std::span<const uint8_t> Payload(Bytes.data() + (Bytes.size() - R.remaining()),
                                   static_cast<size_t>(PayloadLen));
  std::vector<uint8_t> Skip(static_cast<size_t>(PayloadLen));
  if (!R.bytes(Skip))
    return Miss();
  uint64_t Checksum = R.u64();
  if (!R.done() || Checksum != hashBytes(Payload))
    return Miss();

  std::optional<CheckResult> Res = deserializeCheckResult(Payload);
  if (!Res)
    return Miss();
  Hits.fetch_add(1, std::memory_order_relaxed);
  return Res;
}

bool ResultCache::store(const Key &K, const CheckResult &Res) const {
  std::vector<uint8_t> Payload = serializeCheckResult(Res);

  ByteWriter W;
  W.u32(CacheMagic);
  W.u32(SerializationFormatVersion);
  W.u64(K.ProgHash);
  W.u64(K.OptsFp);
  W.u64(Payload.size());
  W.bytes(Payload);
  W.u64(hashBytes(Payload));

  // tmp + rename: a concurrent reader sees the old entry, the new entry,
  // or no entry — never a torn one.  The tmp name carries the pid plus
  // the key so concurrent sessions (and concurrent stores of different
  // keys in one session) never collide on the scratch file either.
  std::string Final = entryPath(K);
  std::string Tmp = Directory + "/tmp-" + std::to_string(::getpid()) + "-" +
                    hex16(K.ProgHash) + "-" + hex16(K.OptsFp);
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out.write(reinterpret_cast<const char *>(W.buffer().data()),
              static_cast<std::streamsize>(W.size()));
    if (!Out.good())
      return false;
  }
  std::error_code EC;
  std::filesystem::rename(Tmp, Final, EC);
  if (EC) {
    std::filesystem::remove(Tmp, EC);
    return false;
  }
  Stores.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::optional<CheckResult>
ResultCache::lookupResult(const CheckRequest &Req,
                          const PassConfig &Passes) const {
  std::optional<Key> K = keyFor(Req, Passes);
  if (!K)
    return std::nullopt;
  return lookup(*K);
}

bool ResultCache::storeResult(const CheckRequest &Req,
                              const PassConfig &Passes,
                              const CheckResult &Res) const {
  std::optional<Key> K = keyFor(Req, Passes);
  if (!K)
    return false;
  return store(*K, Res);
}
