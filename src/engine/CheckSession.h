//===- engine/CheckSession.h - Unified analysis API ------------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine layer: one API every analysis driver goes through.  A
/// CheckSession owns a thread budget and turns CheckRequests (program +
/// exploration options) into CheckResults (exploration outcome + timing).
///
/// Two axes of parallelism share the budget:
///  - a single check spreads its schedule-tree frontier across the
///    session's workers (ExplorerOptions::Threads), and when witness
///    minimization is requested the same thread share then drains the
///    per-leak minimization jobs (engine/WitnessMinimizer.h) — one
///    `--threads N` budget governs both phases of a check;
///  - checkMany() fans a batch of programs out over a pool of session
///    workers, splitting the thread budget between concurrent programs.
///
/// Program-level fan-out amortizes better than frontier-level (workers
/// never touch each other's frontiers at all), so checkMany prefers it:
/// with W session threads and N programs, min(W, N) programs run
/// concurrently and each gets max(1, W / min(W, N)) frontier workers.
/// Within one check, frontier-level parallelism is the work-stealing
/// sharded engine of sched/ScheduleExplorer.h; its `Shards` and
/// `PruneSeen` knobs ride in through `CheckRequest::Opts` (or the session
/// defaults, which `sessionOptionsFromArgs` fills from `--shards` /
/// `--prune-seen`).
///
/// **Thread-safety.**  A CheckSession is immutable after construction:
/// `check()` and `checkMany()` are const, allocate all mutable state per
/// call, and may be invoked concurrently from any number of threads (each
/// call builds its own worker pool, so concurrent calls multiply thread
/// counts — prefer one batched checkMany).  Requests are taken by
/// span/reference and must outlive the call; results are returned by
/// value in request order.
///
/// **Determinism.**  A check with Threads <= 1 (session and request) is
/// fully reproducible, counters included.  With parallelism anywhere, the
/// deduplicated leak set of every result is still independent of thread
/// count, sharding, and drain order — the engine's contract
/// (sched/ScheduleExplorer.h); wall-clock `Seconds` and, under PruneSeen,
/// step counters are the only racy quantities.
///
/// Layering: isa → core → sched → engine → checker → workloads.  The
/// checkers and every bench/example driver sit on top of this seam;
/// docs/ARCHITECTURE.md walks a CheckRequest through the whole stack.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_ENGINE_CHECKSESSION_H
#define SCT_ENGINE_CHECKSESSION_H

#include "checker/SpsChecker.h"
#include "engine/WitnessMinimizer.h"
#include "sched/ScheduleExplorer.h"

#include <span>
#include <string>

namespace sct {

/// One unit of analysis work: a program plus how to explore it.
struct CheckRequest {
  /// Caller-chosen identifier, echoed in the result (suite case ids,
  /// file names, ...).
  std::string Id;
  /// The program to check.  Stored by value: requests outlive the Machine
  /// that references them for the duration of the check.
  Program Prog;
  /// Exploration knobs.  Threads == 0 means "inherit the session share";
  /// a nonzero value pins this request's frontier workers explicitly.
  ExplorerOptions Opts;
  MachineOptions MOpts;
  /// Start from this configuration instead of Configuration::initial —
  /// lets differential drivers check mutated-secret variants through the
  /// same API.
  std::optional<Configuration> Init;
  /// Delta-debug every witness after exploration
  /// (engine/WitnessMinimizer.h): each leak's `MinSched` is filled with a
  /// minimized schedule replaying to the identical `LeakRecord::key()`,
  /// and `CheckResult::Minimization` reports the aggregate shrink.  Also
  /// enabled session-wide by `SessionOptions::MinimizeWitnesses`.
  bool MinimizeWitnesses = false;
  /// Minimization budget and knobs (used when this request enables
  /// minimization; session-enabled requests use the session's).
  MinimizeOptions Minimize;
  /// Run the SPS proof backend (checker/SpsChecker.h) before exploring.
  /// A conclusive SPS verdict — Proved or CounterExample — settles the
  /// request without running the explorer at all; Inconclusive (options
  /// outside the supported fragment, budgets, custom Init) falls back to
  /// the ordinary exploration transparently.  Also enabled session-wide
  /// by `SessionOptions::ProveSps`.
  bool ProveSps = false;
  /// Tape-enumeration budgets for the SPS pass.
  SpsOptions Sps;
};

/// The outcome of one CheckRequest.
struct CheckResult {
  std::string Id;
  ExploreResult Exploration;
  /// The options the exploration actually ran with (thread share
  /// resolved).
  ExplorerOptions Opts;
  /// Wall-clock seconds spent exploring.
  double Seconds = 0;
  /// Aggregate witness-minimization outcome; engaged iff minimization ran
  /// (raw and minimized directive totals, replays spent, budget state).
  std::optional<MinimizeStats> Minimization;
  /// SPS proof-backend report; engaged iff the request asked for ProveSps.
  /// A conclusive report is the verdict of record (`Exploration` is then
  /// empty — the explorer never ran); an inconclusive one means the
  /// explorer ran as usual and `Exploration` decides.
  std::optional<SpsReport> Sps;

  bool secure() const {
    if (Sps && Sps->conclusive())
      return Sps->proved();
    return Exploration.secure();
  }
};

/// Session-wide knobs.
struct SessionOptions {
  /// Total worker-thread budget shared by frontier- and program-level
  /// parallelism.  0 or 1 = fully sequential.
  unsigned Threads = 1;
  /// Defaults applied by the Program-only conveniences.
  ExplorerOptions DefaultOpts;
  MachineOptions DefaultMOpts;
  /// Minimize witnesses on every check in this session (requests can also
  /// opt in individually via CheckRequest::MinimizeWitnesses).
  bool MinimizeWitnesses = false;
  MinimizeOptions Minimize;
  /// Try the SPS proof backend on every check in this session (requests
  /// can also opt in individually via CheckRequest::ProveSps).
  bool ProveSps = false;
  SpsOptions Sps;
};

/// The unified entry point for running checks.
class CheckSession {
public:
  explicit CheckSession(SessionOptions Opts = {});

  const SessionOptions &options() const { return Opts; }

  /// Checks one request; the frontier spreads over the session's whole
  /// thread budget unless the request pins its own.
  CheckResult check(const CheckRequest &Req) const;

  /// Convenience: checks \p P under the session defaults.
  CheckResult check(const Program &P) const;
  CheckResult check(const Program &P, const ExplorerOptions &EOpts) const;

  /// Batch entry point: fans the requests out over the session's worker
  /// pool.  Results are returned in request order regardless of which
  /// worker finished first.
  std::vector<CheckResult> checkMany(std::span<const CheckRequest> Reqs) const;

  /// Batch convenience: checks each program under the session defaults.
  std::vector<CheckResult> checkMany(std::span<const Program> Progs) const;

private:
  SessionOptions Opts;

  CheckResult runOne(const CheckRequest &Req, unsigned FrontierThreads) const;
};

/// Session options for a CLI driver: parses `--threads N`, `--shards N`,
/// `--prune-seen` / `--no-prune-seen` (PruneSeen is on by default),
/// `--checkpoint-interval N` (selects `SnapshotPolicy::Hybrid` with that
/// K), `--minimize-witnesses`, `--minimize-budget N`,
/// `--minimize-threads N` (0 = inherit the check's frontier share),
/// `--no-slice-excursions`, `--no-slice-polish`, `--no-seed-replays`,
/// `--prove-sps`, and `--sps-max-tapes N` out of argv,
/// defaulting the thread budget to the hardware concurrency.  Shared by
/// the bench mains.
SessionOptions sessionOptionsFromArgs(int Argc, char **Argv);

} // namespace sct

#endif // SCT_ENGINE_CHECKSESSION_H
