//===- engine/CheckSession.h - Unified analysis API ------------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine layer: one API every analysis driver goes through.  A
/// CheckSession owns a thread budget and turns CheckRequests (program +
/// exploration options) into CheckResults (exploration outcome + timing).
///
/// Two axes of parallelism share the budget:
///  - a single check spreads its schedule-tree frontier across the
///    session's workers (ExplorerOptions::Threads), and when witness
///    minimization is requested the same thread share then drains the
///    per-leak minimization jobs (engine/WitnessMinimizer.h) — one
///    `--threads N` budget governs both phases of a check;
///  - checkMany() fans a batch of programs out over a pool of session
///    workers, splitting the thread budget between concurrent programs.
///
/// Program-level fan-out amortizes better than frontier-level (workers
/// never touch each other's frontiers at all), so checkMany prefers it:
/// with W session threads and N programs, min(W, N) programs run
/// concurrently and each gets max(1, W / min(W, N)) frontier workers.
/// Within one check, frontier-level parallelism is the work-stealing
/// sharded engine of sched/ScheduleExplorer.h; its `Shards` and
/// `PruneSeen` knobs ride in through `CheckRequest::Opts` (or the session
/// defaults, which the flag table in engine/SessionArgs.h fills from
/// `--shards` / `--prune-seen`).
///
/// **The audit service.**  Two session knobs turn checkMany into a
/// persistent audit service (docs/ARCHITECTURE.md, "life of a cached
/// audit"):
///  - `SessionOptions::CacheDir` opens a content-addressed ResultCache
///    (engine/ResultCache.h): before exploring, each request's canonical
///    program hash + options fingerprint is looked up, and an unchanged
///    case is served from disk (`CheckResult::FromCache`) instead of
///    re-explored; fresh results are stored back atomically.
///  - `SessionOptions::Workers` dispatches cache-missing requests to a
///    pool of `sctworker` processes over pipes (engine/ProcessPool.h),
///    with crash re-dispatch and timeout fallback to in-process checking.
/// Both are keyed on the *serialized* request (engine/Serialization.h),
/// which is why a request's pass options are one closed `PassConfig`
/// value rather than session-inherited booleans.
///
/// **Thread-safety.**  A CheckSession is immutable after construction:
/// `check()` and `checkMany()` are const, allocate all mutable state per
/// call, and may be invoked concurrently from any number of threads (each
/// call builds its own worker pool, so concurrent calls multiply thread
/// counts — prefer one batched checkMany).  Requests are taken by
/// span/reference and must outlive the call; results are returned by
/// value in request order.  The result cache is safe for concurrent use
/// (lookups read immutable files; stores are atomic renames).
///
/// **Determinism.**  A check with Threads <= 1 (session and request) is
/// fully reproducible, counters included.  With parallelism anywhere, the
/// deduplicated leak set of every result is still independent of thread
/// count, sharding, and snapshot policies — the engine's contract
/// (sched/ScheduleExplorer.h); wall-clock `Seconds` and, under PruneSeen,
/// step counters are the only racy quantities.  The same contract is what
/// lets the cache fingerprint exclude Threads/Shards: a cached verdict is
/// valid at any thread count (counters are the stored run's).
///
/// Layering: isa → core → sched → engine → checker → workloads.  The
/// checkers and every bench/example driver sit on top of this seam;
/// docs/ARCHITECTURE.md walks a CheckRequest through the whole stack.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_ENGINE_CHECKSESSION_H
#define SCT_ENGINE_CHECKSESSION_H

#include "checker/SpsChecker.h"
#include "engine/WitnessMinimizer.h"
#include "sched/ScheduleExplorer.h"

#include <memory>
#include <span>
#include <string>

namespace sct {

class ResultCache;

/// The optional analysis passes of a check, as one closed value: witness
/// minimization (engine/WitnessMinimizer.h) and the SPS proof backend
/// (checker/SpsChecker.h), each with its knobs.  A PassConfig fully
/// describes "which passes ran and how" — the cache fingerprint, the wire
/// serializer, and CheckSession::runOne all consume the same resolved
/// value, so what actually ran is never scattered across structs.
struct PassConfig {
  /// Delta-debug every witness after exploration: each leak's `MinSched`
  /// is filled with a minimized schedule replaying to the identical
  /// `LeakRecord::key()`, and `CheckResult::Minimization` reports the
  /// aggregate shrink.
  bool MinimizeWitnesses = false;
  /// Minimization budget and knobs.
  MinimizeOptions Minimize;
  /// Run the SPS proof backend before exploring.  A conclusive SPS
  /// verdict — Proved or CounterExample — settles the request without
  /// running the explorer at all; Inconclusive (options outside the
  /// supported fragment, budgets, custom Init) falls back to the
  /// ordinary exploration transparently.
  bool ProveSps = false;
  /// Tape-enumeration budgets for the SPS pass.
  SpsOptions Sps;
};

/// Session-wide knobs.
struct SessionOptions {
  /// Total worker-thread budget shared by frontier- and program-level
  /// parallelism.  0 or 1 = fully sequential.
  unsigned Threads = 1;
  /// Defaults applied by the Program-only conveniences.
  ExplorerOptions DefaultOpts;
  MachineOptions DefaultMOpts;
  /// Passes applied to every request that does not pin its own
  /// (`CheckRequest::Passes`); see CheckRequest::resolved.
  PassConfig Passes;
  /// Directory of the persistent content-addressed result cache
  /// (engine/ResultCache.h); empty = caching off.  Created on demand.
  std::string CacheDir;
  /// Worker *processes* for checkMany: 0 = in-process (the thread pool
  /// above); N > 0 dispatches serializable requests to N `sctworker`
  /// subprocesses (engine/ProcessPool.h), falling back to in-process on
  /// spawn failure, crash, or timeout.
  unsigned Workers = 0;
  /// Path of the worker binary; empty = "sctworker" next to the current
  /// executable (or $SCT_WORKER_BIN).
  std::string WorkerBinary;
  /// Per-request worker timeout in seconds; an expired request's worker
  /// is killed and the request re-runs in-process.
  double WorkerTimeoutSec = 300.0;
};

/// One unit of analysis work: a program plus how to explore it.
struct CheckRequest {
  /// Caller-chosen identifier, echoed in the result (suite case ids,
  /// file names, ...).
  std::string Id;
  /// The program to check.  Stored by value: requests outlive the Machine
  /// that references them for the duration of the check.
  Program Prog;
  /// Exploration knobs.  Threads == 0 means "inherit the session share";
  /// a nonzero value pins this request's frontier workers explicitly.
  ExplorerOptions Opts;
  MachineOptions MOpts;
  /// Start from this configuration instead of Configuration::initial —
  /// lets differential drivers check mutated-secret variants through the
  /// same API.  Custom-init requests are never cached or shipped to
  /// worker processes.
  std::optional<Configuration> Init;
  /// Pass configuration override.  Disengaged (the default) inherits the
  /// session's `SessionOptions::Passes`; an engaged value replaces it
  /// wholesale — there is no field-wise merging, so `resolved()` is the
  /// single place "what runs" is decided.
  std::optional<PassConfig> Passes;

  /// The passes this request actually runs under session \p SOpts:
  /// request-overrides-session, as one explicit function shared by
  /// runOne, the cache fingerprint, and the wire serializer.
  const PassConfig &resolved(const SessionOptions &SOpts) const {
    return Passes ? *Passes : SOpts.Passes;
  }
};

/// The outcome of one CheckRequest.
struct CheckResult {
  std::string Id;
  ExploreResult Exploration;
  /// The options the exploration actually ran with (thread share
  /// resolved).
  ExplorerOptions Opts;
  /// Wall-clock seconds spent exploring.  A cache hit reports the
  /// *stored* run's seconds (so serialized results round-trip
  /// byte-identically); `FromCache` tells the two apart.
  double Seconds = 0;
  /// Aggregate witness-minimization outcome; engaged iff minimization ran
  /// (raw and minimized directive totals, replays spent, budget state).
  std::optional<MinimizeStats> Minimization;
  /// SPS proof-backend report; engaged iff the request asked for ProveSps.
  /// A conclusive report is the verdict of record (`Exploration` is then
  /// empty — the explorer never ran); an inconclusive one means the
  /// explorer ran as usual and `Exploration` decides.
  std::optional<SpsReport> Sps;
  /// True iff this result was served from the session's ResultCache
  /// rather than computed.  Not serialized — the stored bytes are those
  /// of the original run, which is what keeps warm and cold audits
  /// byte-comparable.
  bool FromCache = false;

  bool secure() const {
    if (Sps && Sps->conclusive())
      return Sps->proved();
    return Exploration.secure();
  }
};

/// The unified entry point for running checks.
class CheckSession {
public:
  explicit CheckSession(SessionOptions Opts = {});
  ~CheckSession();
  CheckSession(CheckSession &&) noexcept;
  CheckSession &operator=(CheckSession &&) noexcept;

  const SessionOptions &options() const { return Opts; }

  /// The session's result cache, or null when `CacheDir` is empty or the
  /// directory could not be created.  Exposes hit/miss/store counters.
  const ResultCache *cache() const { return Cache.get(); }

  /// Checks one request; the frontier spreads over the session's whole
  /// thread budget unless the request pins its own.  Consults the result
  /// cache (when open) before exploring.
  CheckResult check(const CheckRequest &Req) const;

  /// Convenience: checks \p P under the session defaults.
  CheckResult check(const Program &P) const;
  CheckResult check(const Program &P, const ExplorerOptions &EOpts) const;

  /// Batch entry point: fans the requests out over the session's worker
  /// pool — cache lookups first, then worker processes (Workers > 0) or
  /// the in-process thread pool for the misses.  Results are returned in
  /// request order regardless of which worker finished first.
  std::vector<CheckResult> checkMany(std::span<const CheckRequest> Reqs) const;

  /// Batch convenience: checks each program under the session defaults.
  std::vector<CheckResult> checkMany(std::span<const Program> Progs) const;

private:
  SessionOptions Opts;
  std::unique_ptr<ResultCache> Cache;

  CheckResult runOne(const CheckRequest &Req, unsigned FrontierThreads) const;
  /// runOne plus cache lookup/store (no-op without an open cache).
  CheckResult runOneCached(const CheckRequest &Req,
                           unsigned FrontierThreads) const;
  /// Dispatches \p Pending (indices into \p Reqs) to a process pool;
  /// returns false when no pool could be built (caller falls back to the
  /// in-process path).  Computed results land in \p Results and the
  /// cache.
  bool runOnWorkers(std::span<const CheckRequest> Reqs,
                    std::span<const size_t> Pending,
                    std::vector<CheckResult> &Results) const;
};

/// Session options for a CLI driver, parsed by the declarative flag table
/// in engine/SessionArgs.h (`--threads`, `--shards`, `--prune-seen` /
/// `--no-prune-seen`, `--checkpoint-interval`, the `--minimize-*` family,
/// `--prove-sps` / `--sps-max-tapes`, `--cache-dir`, `--workers`, ...),
/// defaulting the thread budget to the hardware concurrency.  Unknown
/// arguments are ignored — drivers with their own flags use
/// parseSessionArgs to see what was consumed.  Shared by the bench mains.
SessionOptions sessionOptionsFromArgs(int Argc, char **Argv);

} // namespace sct

#endif // SCT_ENGINE_CHECKSESSION_H
