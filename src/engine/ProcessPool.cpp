//===- engine/ProcessPool.cpp - Worker-process dispatcher -------------------===//

#include "engine/ProcessPool.h"

#include "support/ByteStream.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <mutex>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace sct;

namespace {

double monotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool readFull(int Fd, uint8_t *Buf, size_t Len) {
  size_t Got = 0;
  while (Got < Len) {
    ssize_t N = ::read(Fd, Buf + Got, Len - Got);
    if (N == 0)
      return false; // EOF.
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Got += static_cast<size_t>(N);
  }
  return true;
}

bool writeFull(int Fd, const uint8_t *Buf, size_t Len) {
  size_t Put = 0;
  while (Put < Len) {
    ssize_t N = ::write(Fd, Buf + Put, Len - Put);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Put += static_cast<size_t>(N);
  }
  return true;
}

constexpr size_t FrameHeaderBytes = 4 + 4 + 8 + 8 + 8;

/// A dead worker must not take the pool down with SIGPIPE; writes report
/// EPIPE instead.  Installed once, process-wide.
void ignoreSigpipeOnce() {
  static std::once_flag Once;
  std::call_once(Once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

} // namespace

bool sct::readWireFrame(int Fd, WireFrame &F) {
  uint8_t Header[FrameHeaderBytes];
  if (!readFull(Fd, Header, sizeof(Header)))
    return false;
  ByteReader R(std::span<const uint8_t>(Header, sizeof(Header)));
  if (R.u32() != WireMagic || R.u32() != WireProtocolVersion)
    return false;
  F.Seq = R.u64();
  F.Job = R.u64();
  uint64_t Len = R.u64();
  // A frame is bounded by what a serialized request/result can plausibly
  // be; a wild length here means a desynced or corrupted stream.
  if (Len > (1ull << 32))
    return false;
  F.Payload.resize(static_cast<size_t>(Len));
  return readFull(Fd, F.Payload.data(), F.Payload.size());
}

bool sct::writeWireFrame(int Fd, const WireFrame &F) {
  ByteWriter W;
  W.u32(WireMagic);
  W.u32(WireProtocolVersion);
  W.u64(F.Seq);
  W.u64(F.Job);
  W.u64(F.Payload.size());
  W.bytes(F.Payload);
  return writeFull(Fd, W.buffer().data(), W.size());
}

ProcessPool::ProcessPool(const Options &O) : Opts(O) {
  ignoreSigpipeOnce();
  W.resize(std::max(1u, Opts.Workers));
  for (unsigned I = 0; I < W.size(); ++I)
    spawn(I);
}

void ProcessPool::spawn(unsigned I) {
  Worker &Wk = W[I];
  int ToWorker[2], FromWorker[2];
  if (::pipe(ToWorker) != 0)
    return;
  if (::pipe(FromWorker) != 0) {
    ::close(ToWorker[0]);
    ::close(ToWorker[1]);
    return;
  }
  pid_t Pid = ::fork();
  if (Pid < 0) {
    ::close(ToWorker[0]);
    ::close(ToWorker[1]);
    ::close(FromWorker[0]);
    ::close(FromWorker[1]);
    return;
  }
  if (Pid == 0) {
    // Child: frames in on stdin, frames out on stdout.
    ::dup2(ToWorker[0], 0);
    ::dup2(FromWorker[1], 1);
    ::close(ToWorker[0]);
    ::close(ToWorker[1]);
    ::close(FromWorker[0]);
    ::close(FromWorker[1]);
    ::execlp(Opts.WorkerBinary.c_str(), Opts.WorkerBinary.c_str(),
             static_cast<char *>(nullptr));
    _exit(127); // exec failed; the parent sees EOF and marks us dead.
  }
  ::close(ToWorker[0]);
  ::close(FromWorker[1]);
  Wk.Pid = Pid;
  Wk.In = ToWorker[1];
  Wk.Out = FromWorker[0];
  Wk.Alive = true;
}

void ProcessPool::kill(Worker &Wk) {
  if (!Wk.Alive)
    return;
  Wk.Alive = false;
  Wk.Busy = false;
  if (Wk.In >= 0)
    ::close(Wk.In);
  if (Wk.Out >= 0)
    ::close(Wk.Out);
  Wk.In = Wk.Out = -1;
  if (Wk.Pid > 0) {
    ::kill(Wk.Pid, SIGKILL);
    int Status = 0;
    ::waitpid(Wk.Pid, &Status, 0);
    Wk.Pid = -1;
  }
}

ProcessPool::~ProcessPool() {
  for (Worker &Wk : W) {
    // Close stdin first: a healthy idle worker exits cleanly on EOF.
    if (Wk.Alive && Wk.In >= 0) {
      ::close(Wk.In);
      Wk.In = -1;
    }
  }
  for (Worker &Wk : W) {
    if (!Wk.Alive)
      continue;
    if (Wk.Out >= 0)
      ::close(Wk.Out);
    Wk.Out = -1;
    if (Wk.Pid > 0) {
      // Busy workers may run long past teardown; don't wait on them.
      if (Wk.Busy)
        ::kill(Wk.Pid, SIGKILL);
      int Status = 0;
      ::waitpid(Wk.Pid, &Status, 0);
    }
    Wk.Alive = false;
  }
}

bool ProcessPool::ok() const {
  for (const Worker &Wk : W)
    if (Wk.Alive)
      return true;
  return false;
}

unsigned ProcessPool::aliveWorkers() const {
  unsigned N = 0;
  for (const Worker &Wk : W)
    if (Wk.Alive)
      ++N;
  return N;
}

std::vector<size_t> ProcessPool::run(
    std::span<const size_t> Jobs,
    const std::function<std::vector<uint8_t>(size_t)> &Payload,
    const std::function<bool(size_t, std::span<const uint8_t>)> &OnResult) {
  std::deque<size_t> Queue(Jobs.begin(), Jobs.end());
  std::vector<size_t> Fallback;
  // Jobs that already burned their one re-dispatch.
  std::vector<size_t> Retried;
  auto FailJob = [&](size_t Job) {
    for (size_t R : Retried)
      if (R == Job) {
        Fallback.push_back(Job);
        return;
      }
    Retried.push_back(Job);
    Queue.push_front(Job); // Retry before fresh work: results stay warm.
  };

  auto Dispatch = [&](Worker &Wk) {
    while (!Queue.empty()) {
      size_t Job = Queue.front();
      Queue.pop_front();
      WireFrame F;
      F.Seq = ++Wk.TxSeq;
      F.Job = Job;
      F.Payload = Payload(Job);
      if (!writeWireFrame(Wk.In, F)) {
        kill(Wk);
        FailJob(Job);
        return;
      }
      Wk.Busy = true;
      Wk.Job = Job;
      Wk.SentSeq = F.Seq;
      Wk.Deadline =
          Opts.TimeoutSec > 0 ? monotonicSeconds() + Opts.TimeoutSec : 0;
      return;
    }
  };

  for (;;) {
    // Keep every live idle worker fed.
    for (Worker &Wk : W)
      if (Wk.Alive && !Wk.Busy && !Queue.empty())
        Dispatch(Wk);

    // Done when nothing is in flight and nothing is queued.
    bool AnyBusy = false;
    for (Worker &Wk : W)
      AnyBusy |= Wk.Busy;
    if (!AnyBusy) {
      if (Queue.empty())
        break;
      // Jobs remain but no worker could take them: all dead.
      for (size_t Job : Queue)
        Fallback.push_back(Job);
      break;
    }

    // Poll the busy workers up to the nearest deadline.
    std::vector<pollfd> Fds;
    std::vector<size_t> FdWorker;
    double Now = monotonicSeconds();
    double Nearest = -1;
    for (size_t I = 0; I < W.size(); ++I) {
      if (!W[I].Busy)
        continue;
      Fds.push_back({W[I].Out, POLLIN, 0});
      FdWorker.push_back(I);
      if (W[I].Deadline > 0 && (Nearest < 0 || W[I].Deadline < Nearest))
        Nearest = W[I].Deadline;
    }
    int TimeoutMs = -1;
    if (Nearest >= 0)
      TimeoutMs = std::max(0, static_cast<int>((Nearest - Now) * 1000) + 1);
    int N = ::poll(Fds.data(), Fds.size(), TimeoutMs);
    if (N < 0 && errno != EINTR)
      break; // Poll itself broken; unfinished jobs fall back below.

    Now = monotonicSeconds();
    for (size_t F = 0; F < Fds.size(); ++F) {
      Worker &Wk = W[FdWorker[F]];
      if (!Wk.Busy)
        continue;
      if (Fds[F].revents & (POLLIN | POLLHUP | POLLERR)) {
        size_t Job = Wk.Job;
        WireFrame Reply;
        bool Good = readWireFrame(Wk.Out, Reply) && Reply.Seq == Wk.SentSeq &&
                    Reply.Job == Job && OnResult(Job, Reply.Payload);
        if (Good) {
          Wk.Busy = false;
        } else {
          // EOF, desync, stale stamp, or a payload the caller rejected:
          // the worker is untrustworthy from here on.
          kill(Wk);
          FailJob(Job);
        }
      } else if (Wk.Deadline > 0 && Now >= Wk.Deadline) {
        // Timeout: kill and fall back directly (no re-dispatch — a
        // request this slow would just stall a second worker).
        size_t Job = Wk.Job;
        kill(Wk);
        Fallback.push_back(Job);
      }
    }
    // Deadlines for workers poll() didn't flag this round.
    for (Worker &Wk : W) {
      if (Wk.Busy && Wk.Deadline > 0 && Now >= Wk.Deadline) {
        size_t Job = Wk.Job;
        kill(Wk);
        Fallback.push_back(Job);
      }
    }
  }

  // Anything still marked busy when the loop broke abnormally.
  for (Worker &Wk : W)
    if (Wk.Busy) {
      Fallback.push_back(Wk.Job);
      Wk.Busy = false;
    }

  std::sort(Fallback.begin(), Fallback.end());
  Fallback.erase(std::unique(Fallback.begin(), Fallback.end()),
                 Fallback.end());
  return Fallback;
}
