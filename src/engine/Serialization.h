//===- engine/Serialization.h - Binary wire/cache format -------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The binary serialization layer behind the audit service: Programs,
/// option structs (ExplorerOptions / MachineOptions / PassConfig), and
/// whole CheckResults (leak records with their raw and minimized
/// schedules, SPS reports, minimization stats) round-trip exactly through
/// a versioned little-endian format (support/ByteStream.h).  Two
/// consumers share it:
///
///  - the persistent ResultCache (engine/ResultCache.h), which names
///    entries by `programHash` + `optionsFingerprint` and stores
///    serialized CheckResults on disk;
///  - the worker-process backend (engine/ProcessPool.h + sctworker),
///    which ships serialized CheckRequests over pipes and serialized
///    CheckResults back.
///
/// **Exactness.**  deserialize(serialize(x)) reproduces x field-by-field:
/// Programs rebuild through ProgramBuilder's raw() path (which preserves
/// every instruction field including pre-resolved successors), and
/// re-serializing the round-tripped value yields byte-identical output —
/// the property tests/SerializationTest.cpp holds over the random-program
/// generator.  Three runtime-only fields are deliberately outside the
/// format: `LeakRecord::Ckpt` (replay seeds), `ExploreResult::SeenExport`,
/// and `ExplorerOptions::Reuse` (both cross-exploration table handles).
/// Requests carrying the latter two (or a custom `Init`) are not
/// `wireable()` and never reach the cache or a worker.
///
/// **Versioning.**  Every top-level payload starts with
/// `SerializationFormatVersion`; readers reject other versions (a
/// stale cache entry is a miss, not a misparse).  Any format change —
/// field added, width changed, order moved — must bump the version.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_ENGINE_SERIALIZATION_H
#define SCT_ENGINE_SERIALIZATION_H

#include "engine/CheckSession.h"
#include "support/ByteStream.h"

namespace sct {

/// Bump on any wire/cache format change.
inline constexpr uint32_t SerializationFormatVersion = 2;

/// Field-level writers/readers (no version header; compose into the
/// top-level payloads below).  Readers return false / disengaged on
/// malformed input and never read out of bounds.
void writeProgram(ByteWriter &W, const Program &P);
std::optional<Program> readProgram(ByteReader &R);

void writeExplorerOptions(ByteWriter &W, const ExplorerOptions &O);
bool readExplorerOptions(ByteReader &R, ExplorerOptions &O);

void writeMachineOptions(ByteWriter &W, const MachineOptions &O);
bool readMachineOptions(ByteReader &R, MachineOptions &O);

void writePassConfig(ByteWriter &W, const PassConfig &P);
bool readPassConfig(ByteReader &R, PassConfig &P);

void writeCheckResult(ByteWriter &W, const CheckResult &Res);
bool readCheckResult(ByteReader &R, CheckResult &Res);

/// True iff \p Req can cross a serialization boundary: no custom initial
/// configuration and no cross-exploration table handles (Reuse /
/// ExportSeenStates).  The shared gate for caching and worker dispatch.
bool wireable(const CheckRequest &Req);

/// Canonical content hash of a program: a 64-bit hash over its
/// serialized bytes, so two programs hash equal iff every instruction,
/// register name, region, init, label, and the entry point agree.
uint64_t programHash(const Program &P);

/// Normalized fingerprint of everything that determines a check's
/// *outcome*: explorer options (with the thread/shard execution knobs
/// zeroed — the engine's determinism contract makes the leak set
/// independent of them), machine options, and the resolved PassConfig.
/// Includes the format version, so a format bump invalidates old cache
/// entries wholesale.  docs/ARCHITECTURE.md states the completeness
/// invariant: every behavior-affecting option must be in here.
uint64_t optionsFingerprint(const ExplorerOptions &EOpts,
                            const MachineOptions &MOpts,
                            const PassConfig &Passes);

/// Top-level payloads (version header included).  The request payload
/// carries the request's *resolved* pass configuration, so a worker needs
/// no session context to reproduce the check.
std::vector<uint8_t> serializeWireRequest(const CheckRequest &Req,
                                          const PassConfig &Passes);
struct WireRequest {
  std::string Id;
  Program Prog;
  ExplorerOptions Opts;
  MachineOptions MOpts;
  PassConfig Passes;
};
std::optional<WireRequest>
deserializeWireRequest(std::span<const uint8_t> Payload);

std::vector<uint8_t> serializeCheckResult(const CheckResult &Res);
std::optional<CheckResult>
deserializeCheckResult(std::span<const uint8_t> Payload);

/// 64-bit content hash of a byte buffer (hashCombine-chained words).
uint64_t hashBytes(std::span<const uint8_t> Bytes);

/// Default worker binary path: "sctworker" in the directory of the
/// current executable, overridable via $SCT_WORKER_BIN.  May not exist —
/// ProcessPool spawn failure falls back to in-process checking.
std::string defaultWorkerBinary();

} // namespace sct

#endif // SCT_ENGINE_SERIALIZATION_H
