//===- engine/CheckSession.cpp - Unified analysis API -----------------------===//

#include "engine/CheckSession.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

using namespace sct;

SessionOptions sct::sessionOptionsFromArgs(int Argc, char **Argv) {
  SessionOptions SOpts;
  SOpts.Threads = std::thread::hardware_concurrency();
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--threads") && I + 1 < Argc)
      SOpts.Threads = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--shards") && I + 1 < Argc)
      SOpts.DefaultOpts.Shards = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--prune-seen"))
      SOpts.DefaultOpts.PruneSeen = true;
    else if (!std::strcmp(Argv[I], "--no-prune-seen"))
      SOpts.DefaultOpts.PruneSeen = false;
    else if (!std::strcmp(Argv[I], "--checkpoint-interval") && I + 1 < Argc) {
      SOpts.DefaultOpts.Snapshots = SnapshotPolicy::Hybrid;
      SOpts.DefaultOpts.CheckpointInterval =
          static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (!std::strcmp(Argv[I], "--minimize-witnesses"))
      SOpts.MinimizeWitnesses = true;
    else if (!std::strcmp(Argv[I], "--minimize-budget") && I + 1 < Argc)
      SOpts.Minimize.MaxReplays =
          static_cast<uint64_t>(std::atoll(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--minimize-threads") && I + 1 < Argc)
      SOpts.Minimize.Threads = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--no-slice-excursions"))
      SOpts.Minimize.SliceExcursions = false;
    else if (!std::strcmp(Argv[I], "--no-slice-polish"))
      SOpts.Minimize.SlicePolish = false;
    else if (!std::strcmp(Argv[I], "--no-seed-replays"))
      SOpts.Minimize.SeedReplays = false;
    else if (!std::strcmp(Argv[I], "--prove-sps"))
      SOpts.ProveSps = true;
    else if (!std::strcmp(Argv[I], "--sps-max-tapes") && I + 1 < Argc)
      SOpts.Sps.MaxTapes = static_cast<uint64_t>(std::atoll(Argv[++I]));
  }
  return SOpts;
}

CheckSession::CheckSession(SessionOptions Opts) : Opts(std::move(Opts)) {
  if (this->Opts.Threads == 0)
    this->Opts.Threads = 1;
}

CheckResult CheckSession::runOne(const CheckRequest &Req,
                                 unsigned FrontierThreads) const {
  CheckResult Res;
  Res.Id = Req.Id;
  Res.Opts = Req.Opts;
  // Request-pinned thread counts win; otherwise take the share the
  // session computed for this batch.
  if (Res.Opts.Threads == 0)
    Res.Opts.Threads = FrontierThreads ? FrontierThreads : 1;

  Machine M(Req.Prog, Req.MOpts);
  Configuration Init =
      Req.Init ? *Req.Init : Configuration::initial(Req.Prog);

  // SPS proof pass: a conclusive verdict (Proved / CounterExample over
  // the full tape tree) settles the request without exploring at all.
  // Custom initial configurations are excluded — the translation bakes
  // the program's own init lists into P̂'s canonical start state.
  if ((Req.ProveSps || Opts.ProveSps) && !Req.Init) {
    const SpsOptions &SOpts = Req.ProveSps ? Req.Sps : Opts.Sps;
    auto T0 = std::chrono::steady_clock::now();
    Res.Sps = checkSps(Req.Prog, Res.Opts, Req.MOpts, SOpts);
    auto T1 = std::chrono::steady_clock::now();
    Res.Seconds = std::chrono::duration<double>(T1 - T0).count();
    if (Res.Sps->conclusive())
      return Res;
    // Inconclusive: fall through to the ordinary exploration.
  }

  bool Minimizing = Req.MinimizeWitnesses || Opts.MinimizeWitnesses;
  MinimizeOptions MinOpts =
      Req.MinimizeWitnesses ? Req.Minimize : Opts.Minimize;
  // The minimizer seeds its ddmin replays from the explorer's hybrid
  // checkpoints; chain them up (LeakRecord::Ckpt) whenever minimization
  // will consume them.  Copy/Replay explorations have no checkpoints —
  // the minimizer then builds its ladder from scratch.
  if (Minimizing && MinOpts.SeedReplays &&
      Res.Opts.Snapshots == SnapshotPolicy::Hybrid)
    Res.Opts.RecordCheckpointChain = true;

  auto T0 = std::chrono::steady_clock::now();
  Res.Exploration = explore(M, Init, Res.Opts);
  auto T1 = std::chrono::steady_clock::now();
  // += so an inconclusive SPS pass's time stays on the bill.
  Res.Seconds += std::chrono::duration<double>(T1 - T0).count();

  // Witness minimization rides after exploration as a second parallel
  // phase: the raw prefixes stay in LeakRecord::Sched, the delta-debugged
  // schedules land in MinSched.  An unset minimizer thread count inherits
  // this check's frontier share, so one `--threads N` budget governs both
  // phases.
  if (Minimizing) {
    if (MinOpts.Threads == 0)
      MinOpts.Threads = Res.Opts.Threads ? Res.Opts.Threads : 1;
    Res.Minimization =
        minimizeWitnesses(M, Init, Res.Exploration.Leaks, MinOpts);
  }
  return Res;
}

CheckResult CheckSession::check(const CheckRequest &Req) const {
  return runOne(Req, Opts.Threads);
}

CheckResult CheckSession::check(const Program &P) const {
  return check(P, Opts.DefaultOpts);
}

CheckResult CheckSession::check(const Program &P,
                                const ExplorerOptions &EOpts) const {
  CheckRequest Req;
  Req.Prog = P;
  Req.Opts = EOpts;
  Req.MOpts = Opts.DefaultMOpts;
  return check(Req);
}

std::vector<CheckResult>
CheckSession::checkMany(std::span<const CheckRequest> Reqs) const {
  std::vector<CheckResult> Results(Reqs.size());
  if (Reqs.empty())
    return Results;

  // Split the budget: program-level fan-out first, leftover threads go to
  // each program's frontier.
  unsigned PoolSize =
      static_cast<unsigned>(std::min<size_t>(Opts.Threads, Reqs.size()));
  if (PoolSize <= 1) {
    for (size_t I = 0; I < Reqs.size(); ++I)
      Results[I] = runOne(Reqs[I], Opts.Threads);
    return Results;
  }
  unsigned PerProgram = Opts.Threads / PoolSize;
  if (PerProgram == 0)
    PerProgram = 1;

  std::atomic<size_t> NextReq{0};
  auto Drain = [&] {
    for (;;) {
      size_t I = NextReq.fetch_add(1, std::memory_order_relaxed);
      if (I >= Reqs.size())
        return;
      Results[I] = runOne(Reqs[I], PerProgram);
    }
  };
  std::vector<std::thread> Pool;
  Pool.reserve(PoolSize);
  for (unsigned W = 0; W < PoolSize; ++W)
    Pool.emplace_back(Drain);
  for (std::thread &T : Pool)
    T.join();
  return Results;
}

std::vector<CheckResult>
CheckSession::checkMany(std::span<const Program> Progs) const {
  std::vector<CheckRequest> Reqs;
  Reqs.reserve(Progs.size());
  for (size_t I = 0; I < Progs.size(); ++I) {
    CheckRequest Req;
    Req.Id = "program-" + std::to_string(I);
    Req.Prog = Progs[I];
    Req.Opts = Opts.DefaultOpts;
    Req.MOpts = Opts.DefaultMOpts;
    Reqs.push_back(std::move(Req));
  }
  return checkMany(std::span<const CheckRequest>(Reqs));
}
