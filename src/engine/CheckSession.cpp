//===- engine/CheckSession.cpp - Unified analysis API -----------------------===//

#include "engine/CheckSession.h"

#include "engine/ProcessPool.h"
#include "engine/ResultCache.h"
#include "engine/Serialization.h"

#include <atomic>
#include <chrono>
#include <thread>

using namespace sct;

CheckSession::CheckSession(SessionOptions SOpts) : Opts(std::move(SOpts)) {
  if (this->Opts.Threads == 0)
    this->Opts.Threads = 1;
  if (!this->Opts.CacheDir.empty()) {
    auto C = std::make_unique<ResultCache>(this->Opts.CacheDir);
    if (C->ok())
      Cache = std::move(C);
  }
}

CheckSession::~CheckSession() = default;
CheckSession::CheckSession(CheckSession &&) noexcept = default;
CheckSession &CheckSession::operator=(CheckSession &&) noexcept = default;

CheckResult CheckSession::runOne(const CheckRequest &Req,
                                 unsigned FrontierThreads) const {
  CheckResult Res;
  Res.Id = Req.Id;
  Res.Opts = Req.Opts;
  // Request-pinned thread counts win; otherwise take the share the
  // session computed for this batch.
  if (Res.Opts.Threads == 0)
    Res.Opts.Threads = FrontierThreads ? FrontierThreads : 1;

  // The one resolution point: request-overrides-session (see
  // CheckRequest::resolved).  The cache fingerprint and the wire
  // serializer consume the same value.
  const PassConfig &Passes = Req.resolved(Opts);

  Machine M(Req.Prog, Req.MOpts);
  Configuration Init =
      Req.Init ? *Req.Init : Configuration::initial(Req.Prog);

  // SPS proof pass: a conclusive verdict (Proved / CounterExample over
  // the full tape tree) settles the request without exploring at all.
  // Custom initial configurations are excluded — the translation bakes
  // the program's own init lists into P̂'s canonical start state.
  if (Passes.ProveSps && !Req.Init) {
    auto T0 = std::chrono::steady_clock::now();
    Res.Sps = checkSps(Req.Prog, Res.Opts, Req.MOpts, Passes.Sps);
    auto T1 = std::chrono::steady_clock::now();
    Res.Seconds = std::chrono::duration<double>(T1 - T0).count();
    if (Res.Sps->conclusive())
      return Res;
    // Inconclusive: fall through to the ordinary exploration.
  }

  MinimizeOptions MinOpts = Passes.Minimize;
  // The minimizer seeds its ddmin replays from the explorer's hybrid
  // checkpoints; chain them up (LeakRecord::Ckpt) whenever minimization
  // will consume them.  Copy/Replay explorations have no checkpoints —
  // the minimizer then builds its ladder from scratch.
  if (Passes.MinimizeWitnesses && MinOpts.SeedReplays &&
      Res.Opts.Snapshots == SnapshotPolicy::Hybrid)
    Res.Opts.RecordCheckpointChain = true;

  auto T0 = std::chrono::steady_clock::now();
  Res.Exploration = explore(M, Init, Res.Opts);
  auto T1 = std::chrono::steady_clock::now();
  // += so an inconclusive SPS pass's time stays on the bill.
  Res.Seconds += std::chrono::duration<double>(T1 - T0).count();

  // Witness minimization rides after exploration as a second parallel
  // phase: the raw prefixes stay in LeakRecord::Sched, the delta-debugged
  // schedules land in MinSched.  An unset minimizer thread count inherits
  // this check's frontier share, so one `--threads N` budget governs both
  // phases.
  if (Passes.MinimizeWitnesses) {
    if (MinOpts.Threads == 0)
      MinOpts.Threads = Res.Opts.Threads ? Res.Opts.Threads : 1;
    Res.Minimization =
        minimizeWitnesses(M, Init, Res.Exploration.Leaks, MinOpts);
  }
  return Res;
}

CheckResult CheckSession::runOneCached(const CheckRequest &Req,
                                       unsigned FrontierThreads) const {
  if (!Cache)
    return runOne(Req, FrontierThreads);
  const PassConfig &Passes = Req.resolved(Opts);
  if (std::optional<CheckResult> Hit = Cache->lookupResult(Req, Passes)) {
    Hit->Id = Req.Id;
    Hit->FromCache = true;
    return std::move(*Hit);
  }
  CheckResult Res = runOne(Req, FrontierThreads);
  Cache->storeResult(Req, Passes, Res);
  return Res;
}

CheckResult CheckSession::check(const CheckRequest &Req) const {
  return runOneCached(Req, Opts.Threads);
}

CheckResult CheckSession::check(const Program &P) const {
  return check(P, Opts.DefaultOpts);
}

CheckResult CheckSession::check(const Program &P,
                                const ExplorerOptions &EOpts) const {
  CheckRequest Req;
  Req.Prog = P;
  Req.Opts = EOpts;
  Req.MOpts = Opts.DefaultMOpts;
  return check(Req);
}

bool CheckSession::runOnWorkers(std::span<const CheckRequest> Reqs,
                                std::span<const size_t> Pending,
                                std::vector<CheckResult> &Results) const {
  ProcessPool::Options POpts;
  POpts.WorkerBinary =
      Opts.WorkerBinary.empty() ? defaultWorkerBinary() : Opts.WorkerBinary;
  POpts.Workers = Opts.Workers;
  POpts.TimeoutSec = Opts.WorkerTimeoutSec;
  ProcessPool Pool(POpts);
  if (!Pool.ok())
    return false;

  // Each worker process explores single-request-at-a-time; give it the
  // per-program frontier share the in-process pool would have used.
  unsigned PerProgram = Opts.Threads / std::max(1u, Opts.Workers);
  if (PerProgram == 0)
    PerProgram = 1;

  std::vector<size_t> Fallback = Pool.run(
      Pending,
      [&](size_t I) {
        CheckRequest Wire = Reqs[I];
        Wire.Opts.Threads =
            Wire.Opts.Threads ? Wire.Opts.Threads : PerProgram;
        return serializeWireRequest(Wire, Wire.resolved(Opts));
      },
      [&](size_t I, std::span<const uint8_t> Payload) {
        std::optional<CheckResult> Res = deserializeCheckResult(Payload);
        if (!Res)
          return false;
        Res->Id = Reqs[I].Id;
        Results[I] = std::move(*Res);
        return true;
      });

  // Whatever the pool could not finish — workers crashed twice, timed
  // out, or all died — runs in-process on this thread.
  for (size_t I : Fallback)
    Results[I] = runOne(Reqs[I], Opts.Threads);

  if (Cache)
    for (size_t I : Pending)
      Cache->storeResult(Reqs[I], Reqs[I].resolved(Opts), Results[I]);
  return true;
}

std::vector<CheckResult>
CheckSession::checkMany(std::span<const CheckRequest> Reqs) const {
  std::vector<CheckResult> Results(Reqs.size());
  if (Reqs.empty())
    return Results;

  // Cache pass first: an unchanged corpus audit is pure lookups.
  std::vector<size_t> Pending;
  Pending.reserve(Reqs.size());
  for (size_t I = 0; I < Reqs.size(); ++I) {
    if (Cache) {
      if (std::optional<CheckResult> Hit =
              Cache->lookupResult(Reqs[I], Reqs[I].resolved(Opts))) {
        Hit->Id = Reqs[I].Id;
        Hit->FromCache = true;
        Results[I] = std::move(*Hit);
        continue;
      }
    }
    Pending.push_back(I);
  }
  if (Pending.empty())
    return Results;

  // Worker-process backend: ship the serializable misses to sctworker
  // subprocesses; anything non-wireable (custom Init, reuse filters,
  // seen-state exports) stays in-process.
  if (Opts.Workers > 0) {
    std::vector<size_t> Wire, Local;
    for (size_t I : Pending)
      (wireable(Reqs[I]) ? Wire : Local).push_back(I);
    if (!Wire.empty() && runOnWorkers(Reqs, Wire, Results))
      Pending = std::move(Local);
    if (Pending.empty())
      return Results;
  }

  auto ComputeAndStore = [&](size_t I, unsigned FrontierThreads) {
    Results[I] = runOne(Reqs[I], FrontierThreads);
    if (Cache)
      Cache->storeResult(Reqs[I], Reqs[I].resolved(Opts), Results[I]);
  };

  // Split the budget: program-level fan-out first, leftover threads go to
  // each program's frontier.
  unsigned PoolSize =
      static_cast<unsigned>(std::min<size_t>(Opts.Threads, Pending.size()));
  if (PoolSize <= 1) {
    for (size_t I : Pending)
      ComputeAndStore(I, Opts.Threads);
    return Results;
  }
  unsigned PerProgram = Opts.Threads / PoolSize;
  if (PerProgram == 0)
    PerProgram = 1;

  std::atomic<size_t> NextReq{0};
  auto Drain = [&] {
    for (;;) {
      size_t N = NextReq.fetch_add(1, std::memory_order_relaxed);
      if (N >= Pending.size())
        return;
      ComputeAndStore(Pending[N], PerProgram);
    }
  };
  std::vector<std::thread> Pool;
  Pool.reserve(PoolSize);
  for (unsigned W = 0; W < PoolSize; ++W)
    Pool.emplace_back(Drain);
  for (std::thread &T : Pool)
    T.join();
  return Results;
}

std::vector<CheckResult>
CheckSession::checkMany(std::span<const Program> Progs) const {
  std::vector<CheckRequest> Reqs;
  Reqs.reserve(Progs.size());
  for (size_t I = 0; I < Progs.size(); ++I) {
    CheckRequest Req;
    Req.Id = "program-" + std::to_string(I);
    Req.Prog = Progs[I];
    Req.Opts = Opts.DefaultOpts;
    Req.MOpts = Opts.DefaultMOpts;
    Reqs.push_back(std::move(Req));
  }
  return checkMany(std::span<const CheckRequest>(Reqs));
}
