//===- engine/WitnessMinimizer.cpp - Minimal leak witnesses -----------------===//
//
// ddmin over directive schedules with buffer-index repair.  The only
// oracle is strict replay: a candidate reproduces iff stepping it from
// the initial configuration reaches a secret observation with the
// original leak's key (origin, kind, rule, taint mask), and the adopted
// schedule is always the replayed-and-truncated one — so whatever the
// heuristics propose, the result is a valid witness by construction.
//
//===----------------------------------------------------------------------===//

#include "engine/WitnessMinimizer.h"

#include <algorithm>

using namespace sct;

namespace {

class Minimizer {
public:
  Minimizer(const Machine &M, const Configuration &Init, uint64_t TargetKey,
            const MinimizeOptions &Opts)
      : M(M), Init(Init), TargetKey(TargetKey), Opts(Opts) {}

  Schedule run(const Schedule &Raw, MinimizeStats &Stats) {
    Stats.RawDirectives += Raw.size();
    Schedule Kept;
    std::vector<AllocInfo> KA;
    bool Seeded = evaluate(Raw, Kept, KA);
    if (Seeded) {
      Cur = std::move(Kept);
      CurAlloc = std::move(KA);
      for (unsigned Pass = 0; Pass < Opts.MaxPasses && !Exhausted; ++Pass) {
        Schedule Before = Cur;
        ddmin();
        if (Opts.Canonicalize && !Exhausted)
          canonicalize();
        if (Cur == Before)
          break; // Fixpoint: another pass would change nothing.
      }
      Stats.MinimizedDirectives += Cur.size();
    }
    Stats.Replays += Replays;
    Stats.BudgetExhausted |= Exhausted;
    return Seeded ? Cur : Schedule{};
  }

private:
  /// What a directive did to buffer indices when the current schedule
  /// last replayed: a fetch allocated entries [From, From + Slots); a
  /// retire removed the group led by Retired (0 otherwise).  Indices are
  /// monotone over a run (ReorderBuffer), so this is exactly the
  /// bookkeeping needed to renumber execute directives — and to cascade
  /// the retire of a deleted instruction — after a deletion.
  struct AllocInfo {
    BufIdx From = 0;
    unsigned Slots = 0;
    BufIdx Retired = 0;
  };

  const Machine &M;
  const Configuration &Init;
  const uint64_t TargetKey;
  const MinimizeOptions &Opts;
  uint64_t Replays = 0;
  bool Exhausted = false;

  /// Current best witness and its per-position allocation record.
  Schedule Cur;
  std::vector<AllocInfo> CurAlloc;

  /// Replays \p Cand leniently: inapplicable directives are skipped, not
  /// fatal, so the candidate is garbage-collected as it runs (a deleted
  /// fetch's orphaned executes, a corrected guess's dead wrong-path
  /// work).  Success iff some step emits a secret observation with the
  /// target key; \p Kept then holds exactly the directives that applied,
  /// truncated at that step, with \p KeptAlloc their allocation record —
  /// by construction \p Kept replays *strictly* to the same leak, so
  /// adopting it never needs a second validation pass.
  bool evaluate(const Schedule &Cand, Schedule &Kept,
                std::vector<AllocInfo> &KeptAlloc) {
    if (Exhausted || Replays >= Opts.MaxReplays) {
      Exhausted = true;
      return false;
    }
    ++Replays;
    Configuration C = Init;
    Kept.clear();
    KeptAlloc.clear();
    for (const Directive &D : Cand) {
      AllocInfo A;
      if (D.isFetch())
        A.From = C.Buf.nextIndex();
      if (D.isRetire() && !C.Buf.empty())
        A.Retired = C.Buf.minIndex();
      PC Origin = leakOriginOf(C, D);
      auto Out = M.step(C, D);
      if (!Out)
        continue;
      if (D.isFetch())
        A.Slots = static_cast<unsigned>(C.Buf.nextIndex() - A.From);
      Kept.push_back(D);
      KeptAlloc.push_back(A);
      if (Out->Obs.isSecret()) {
        LeakRecord Probe{Schedule{}, Out->Obs, Origin, Out->Rule};
        if (Probe.key() == TargetKey)
          return true; // Truncated at the (re-)found leak.
      }
    }
    return false;
  }

  /// Builds the candidate that deletes the marked positions of Cur,
  /// repairing the survivors: executes naming an entry a deleted fetch
  /// allocated are cascaded out, and the remaining buffer indices are
  /// shifted down by the slots deleted beneath them.
  Schedule buildWithout(const std::vector<char> &Del) const {
    std::vector<AllocInfo> Gone; // Deleted allocations, in index order.
    for (size_t I = 0; I < Cur.size(); ++I)
      if (Del[I] && CurAlloc[I].Slots)
        Gone.push_back(CurAlloc[I]);
    // Maps an old buffer index to its repaired value; false if the entry
    // itself was deleted (the referencing directive must cascade).
    auto Repair = [&Gone](BufIdx Idx, BufIdx &Out) {
      BufIdx Shift = 0;
      for (const AllocInfo &G : Gone) {
        if (Idx < G.From)
          break; // Gone is sorted by From: no further range can contain Idx.
        if (Idx < G.From + G.Slots)
          return false;
        Shift += G.Slots;
      }
      Out = Idx - Shift;
      return true;
    };
    Schedule Cand;
    for (size_t I = 0; I < Cur.size(); ++I) {
      if (Del[I])
        continue;
      Directive D = Cur[I];
      if (D.isExecute()) {
        if (!Repair(D.Idx, D.Idx))
          continue;
        if (D.K == Directive::Kind::ExecuteFwd && !Repair(D.FwdFrom, D.FwdFrom))
          continue;
      } else if (D.isRetire() && CurAlloc[I].Retired) {
        // The retire of a deleted instruction cascades with its fetch —
        // otherwise every junk instruction stays anchored in the witness
        // by the retire that drained it from the buffer.
        BufIdx Dummy;
        if (!Repair(CurAlloc[I].Retired, Dummy))
          continue;
      }
      Cand.push_back(D);
    }
    return Cand;
  }

  /// Zeller's ddmin over the positions of Cur, with cascade-repaired
  /// candidates.  Terminates 1-minimal w.r.t. single-position deletion
  /// (plus cascades) or when the replay budget runs out.
  void ddmin() {
    size_t N = 2;
    while (!Exhausted && Cur.size() >= 2) {
      size_t Len = Cur.size();
      if (N > Len)
        N = Len;
      size_t Chunk = (Len + N - 1) / N;
      bool Reduced = false;
      for (size_t Start = 0; Start < Len && !Exhausted; Start += Chunk) {
        std::vector<char> Del(Len, 0);
        for (size_t I = Start; I < std::min(Start + Chunk, Len); ++I)
          Del[I] = 1;
        Schedule Cand = buildWithout(Del);
        if (Cand.empty() || Cand.size() >= Cur.size())
          continue;
        Schedule Kept;
        std::vector<AllocInfo> KA;
        if (evaluate(Cand, Kept, KA) && Kept.size() < Cur.size()) {
          Cur = std::move(Kept);
          CurAlloc = std::move(KA);
          Reduced = true;
          break;
        }
      }
      if (Reduced) {
        N = std::max<size_t>(2, N - 1);
        continue;
      }
      if (Chunk <= 1)
        break;
      N = std::min(N * 2, Cur.size());
    }
  }

  /// Rewrites each surviving directive to the simplest form that still
  /// reproduces the leak: prefer plain fetch/retire over the fork
  /// directives and plain execute over the resolution variants, so the
  /// minimized schedule spells out only the predictions the attack
  /// genuinely needs.
  void canonicalize() {
    for (size_t I = 0; I < Cur.size() && !Exhausted; ++I) {
      // Simpler-form alternatives are adopted at equal length (the
      // rewrite itself is the win, and it can only move toward plain
      // forms, so it cannot oscillate).
      std::vector<Directive> Alts;
      switch (Cur[I].K) {
      case Directive::Kind::FetchBool:
      case Directive::Kind::FetchTarget:
        Alts = {Directive::fetch(), Directive::retire()};
        break;
      case Directive::Kind::ExecuteValue:
      case Directive::Kind::ExecuteAddr:
      case Directive::Kind::ExecuteFwd:
        Alts = {Directive::execute(Cur[I].Idx), Directive::retire()};
        break;
      default:
        continue;
      }
      for (const Directive &Alt : Alts) {
        Schedule Cand = Cur;
        Cand[I] = Alt;
        Schedule Kept;
        std::vector<AllocInfo> KA;
        if (evaluate(Cand, Kept, KA) && Kept.size() <= Cur.size()) {
          Cur = std::move(Kept);
          CurAlloc = std::move(KA);
          break;
        }
      }
      // Guess flip, adopted only on a strict shrink: correcting an
      // irrelevant misprediction makes its wrong-path excursion
      // inapplicable and the lenient replay garbage-collects it in the
      // same evaluation.  (The strict-shrink bar is what keeps
      // minimization idempotent — a flip that buys nothing, or would
      // merely flip back, never changes the schedule.)
      if (Cur[I].K == Directive::Kind::FetchBool) {
        Schedule Cand = Cur;
        Cand[I] = Directive::fetchBool(!Cur[I].Guess);
        Schedule Kept;
        std::vector<AllocInfo> KA;
        if (evaluate(Cand, Kept, KA) && Kept.size() < Cur.size()) {
          Cur = std::move(Kept);
          CurAlloc = std::move(KA);
        }
      }
    }
  }
};

} // namespace

Schedule sct::minimizeWitness(const Machine &M, const Configuration &Init,
                              const LeakRecord &L, const MinimizeOptions &Opts,
                              MinimizeStats *Stats) {
  MinimizeStats Local;
  Minimizer Min(M, Init, L.key(), Opts);
  Schedule S = Min.run(L.Sched, Stats ? *Stats : Local);
  return S;
}

MinimizeStats sct::minimizeWitnesses(const Machine &M,
                                     const Configuration &Init,
                                     std::vector<LeakRecord> &Leaks,
                                     const MinimizeOptions &Opts) {
  MinimizeStats Stats;
  for (LeakRecord &L : Leaks)
    L.MinSched = minimizeWitness(M, Init, L, Opts, &Stats);
  return Stats;
}
