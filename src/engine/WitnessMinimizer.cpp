//===- engine/WitnessMinimizer.cpp - Minimal leak witnesses -----------------===//
//
// Slice + ddmin over directive schedules with buffer-index repair and
// checkpoint-seeded replays.  The only oracle is strict replay: a
// candidate reproduces iff stepping it reaches a secret observation with
// the original leak's key (origin, kind, rule, taint mask), and the
// adopted schedule is always the replayed-and-truncated one — so whatever
// the heuristics propose, the result is a valid witness by construction.
// Seeding only changes where a replay starts (a checkpointed state of the
// candidate's unedited prefix), never what it concludes.
//
//===----------------------------------------------------------------------===//

#include "engine/WitnessMinimizer.h"

#include "sched/WorkDeque.h"

#include <algorithm>
#include <map>
#include <random>
#include <set>
#include <thread>

using namespace sct;

namespace {

class Minimizer {
public:
  Minimizer(const Machine &M, const Configuration &Init, uint64_t TargetKey,
            const MinimizeOptions &Opts)
      : M(M), Init(Init), TargetKey(TargetKey), Opts(Opts) {}

  Schedule run(const LeakRecord &L, MinimizeStats &Stats) {
    const Schedule &Raw = L.Sched;
    Stats.RawDirectives += Raw.size();
    Schedule Kept;
    std::vector<AllocInfo> KA;
    // The seeding replay: full-length, from the initial configuration —
    // it must compute every position's allocation record, which no
    // checkpoint carries.  Its rungs (recorded along the *kept* prefix)
    // and the explorer's checkpoint chain seed everything after.
    if (Opts.SeedReplays)
      for (std::shared_ptr<const Checkpoint> C = L.Ckpt; C; C = C->Prev)
        if (C->Len > 0 && C->Len < Raw.size())
          ChainRungs.emplace(C->Len, C);
    bool Seeded = evaluate(Raw, Kept, KA);
    ChainRungs.clear();
    if (Seeded) {
      adopt(std::move(Kept), std::move(KA));
      for (unsigned Outer = 0; Outer < Opts.MaxPasses; ++Outer) {
        for (unsigned Pass = 0; Pass < Opts.MaxPasses && !Exhausted;
             ++Pass) {
          Schedule Before = Cur;
          if (Opts.SliceExcursions)
            slice();
          ddmin();
          if (Opts.Canonicalize && !Exhausted)
            canonicalize();
          if (Cur == Before)
            break; // Fixpoint: another pass would change nothing.
        }
        if (!Opts.SliceExcursions || !Opts.SlicePolish || Exhausted)
          break;
        // The polish round hops to the no-slice basin when that is
        // strictly shorter; a successful hop strictly shrinks Cur and
        // re-enters the fixpoint loop above, so the final schedule is
        // stable under every pass — idempotence holds with polish
        // exactly as without it (an unproductive polish restores the
        // fixpoint result byte-for-byte and ends the loop).
        Schedule BeforePolish = Cur;
        polish();
        if (Cur == BeforePolish)
          break;
      }
      Stats.MinimizedDirectives += Cur.size();
    }
    Stats.Replays += Replays;
    Stats.ReplayedSteps += ReplayedSteps;
    Stats.SeededSteps += SeededSteps;
    Stats.SlicedExcursions += SlicedExcursions;
    Stats.SuffixConvergences += SuffixConv;
    Stats.SuffixSkippedSteps += SuffixSkip;
    Stats.BudgetExhausted |= Exhausted;
    return Seeded ? Cur : Schedule{};
  }

private:
  /// What a directive did when the current schedule last replayed: a
  /// fetch allocated buffer entries [From, From + Slots); a retire
  /// removed the group led by Retired (0 otherwise); Rule is the step's
  /// semantics rule and PostN the program point it left.  Indices are
  /// monotone while entries live (ReorderBuffer), so this is exactly the
  /// bookkeeping needed to renumber execute directives — and to cascade
  /// the retire of a deleted instruction — after a deletion, and to spot
  /// misprediction rollbacks for the slice pass.
  struct AllocInfo {
    BufIdx From = 0;
    unsigned Slots = 0;
    BufIdx Retired = 0;
    RuleId Rule = RuleId::SimpleFetch;
    PC PostN = 0;
  };

  /// A mid-schedule replay seed: the state after the current schedule's
  /// first `Len` directives.
  using Ladder = std::map<size_t, std::shared_ptr<const Configuration>>;

  const Machine &M;
  const Configuration &Init;
  const uint64_t TargetKey;
  const MinimizeOptions &Opts;
  uint64_t Replays = 0;
  uint64_t ReplayedSteps = 0;
  uint64_t SeededSteps = 0;
  uint64_t SlicedExcursions = 0;
  uint64_t SuffixConv = 0;
  uint64_t SuffixSkip = 0;
  bool Exhausted = false;

  /// Current best witness and its per-position allocation record.
  Schedule Cur;
  std::vector<AllocInfo> CurAlloc;
  /// CurPosHash[p] is the state fingerprint after Cur[0, p) — recorded by
  /// the replay that produced Cur (incremental hash, O(1) per step) and
  /// probed by later candidates for suffix-convergence rejoins.  Size
  /// Cur.size() + 1; CurPosHash[0] is the initial state's hash.
  std::vector<uint64_t> CurPosHash;
  /// evaluate()'s per-position hashes for the candidate it just accepted;
  /// adopt() promotes it to CurPosHash.
  std::vector<uint64_t> EvalHash;
  /// Checkpoints along Cur's prefix, keyed by prefix length.  Invariant:
  /// every rung's state is what Cur[0, Len) strictly replays to — rungs
  /// above an adopted candidate's first edit are erased, and new rungs
  /// are recorded only while a candidate's unedited prefix replays.
  Ladder Rungs;

  /// First position where the last evaluated candidate differed from Cur
  /// (the longest common prefix, measured on directive values by
  /// evaluate itself — deletion cascades can rewrite survivors *before*
  /// the deleted chunk when rollback-reused buffer indices overlap, so
  /// no call site can be trusted to know its own first edit).
  size_t LastEdit = 0;

  /// Exact-schedule failure memo: the oracle is a pure function of the
  /// candidate (machine, initial configuration, and target key are fixed
  /// per witness), so a failed candidate stays failed forever.  The
  /// fixpoint loop re-proposes byte-identical candidates constantly — the
  /// verification pass re-tries everything the last productive pass
  /// tried, canonicalize re-probes stable positions every pass — and
  /// each hit skips a whole replay.  Keys are the exact packed directive
  /// sequences (no hashing, no collisions), successes are never cached
  /// (they change Cur and cannot recur).
  std::set<std::vector<uint64_t>> FailedCands;

  static std::vector<uint64_t> packSchedule(const Schedule &S) {
    std::vector<uint64_t> P;
    P.reserve(2 * S.size());
    for (const Directive &D : S) {
      // Two words per directive, lossless: buffer indices are bounded by
      // the schedule length (indices allocate one per fetched entry), so
      // 32 bits each cannot truncate here.
      P.push_back(uint64_t(D.K) | (uint64_t(D.Guess) << 8) |
                  (uint64_t(D.Target) << 16));
      P.push_back((uint64_t(D.Idx) << 32) | uint64_t(D.FwdFrom));
    }
    return P;
  }

  /// Adopts \p Kept (the effective schedule of a successful replay) as
  /// the current witness.  Rungs at or below the producing candidate's
  /// first edit survive (that prefix is unchanged); rungs above are
  /// stale.
  void adopt(Schedule &&Kept, std::vector<AllocInfo> &&KA) {
    Cur = std::move(Kept);
    CurAlloc = std::move(KA);
    CurPosHash = std::move(EvalHash);
    Rungs.erase(Rungs.upper_bound(LastEdit), Rungs.end());
  }

  /// The explorer's hybrid checkpoint chain (LeakRecord::Ckpt), indexed
  /// by prefix length while the seeding replay runs.  Each rung claims to
  /// be the state Raw[0, Len) replays to; the seeding replay *verifies*
  /// that claim by hash as it passes Len and only then adopts the rung
  /// (sharing the checkpoint's configuration, no copy).  A stale chain —
  /// a caller pairing a rewritten Sched with the old Ckpt — is thereby
  /// detected and ignored instead of corrupting seeded replays.
  std::map<size_t, std::shared_ptr<const Checkpoint>> ChainRungs;

  /// Replays \p Cand leniently: inapplicable directives are skipped, not
  /// fatal, so the candidate is garbage-collected as it runs (a deleted
  /// fetch's orphaned executes, a corrected guess's dead wrong-path
  /// work).  Success iff some step emits a secret observation with the
  /// target key; \p Kept then holds exactly the directives that applied,
  /// truncated at that step, with \p KeptAlloc their allocation record —
  /// by construction \p Kept replays *strictly* to the same leak, so
  /// adopting it never needs a second validation pass.
  ///
  /// The replay may start from the newest ladder rung at or below the
  /// candidate's first edit — the longest common prefix with Cur,
  /// measured here on directive values (the prefix-validity check: the
  /// candidate's directives up to the rung are byte-identical to Cur's,
  /// which strictly replays to the rung's state with its only target-key
  /// observation at Cur's final step — so skipping them changes neither
  /// the effective schedule nor the verdict).  The from-initial result
  /// is bit-for-bit the same; only the executed step count differs.
  bool evaluate(const Schedule &Cand, Schedule &Kept,
                std::vector<AllocInfo> &KeptAlloc) {
    if (Exhausted || Replays >= Opts.MaxReplays) {
      Exhausted = true;
      return false;
    }
    ++Replays;
    // Memo probe.  A hit still costs its replay from the budget
    // (incremented above) — the memo trades machine steps, not budget, so
    // budget exhaustion fires at exactly the same candidate with the memo
    // on or off and the search stays bit-for-bit reproducible.
    std::vector<uint64_t> Packed;
    if (Opts.MemoizeCandidates) {
      Packed = packSchedule(Cand);
      if (FailedCands.count(Packed))
        return false;
    }
    // The seeding replay (empty Cur) has no prefix to preserve: every
    // state it passes becomes a rung of the witness it adopts.
    size_t FirstEdit = Cand.size();
    if (!Cur.empty()) {
      FirstEdit = 0;
      while (FirstEdit < Cand.size() && FirstEdit < Cur.size() &&
             Cand[FirstEdit] == Cur[FirstEdit])
        ++FirstEdit;
    }
    LastEdit = FirstEdit;
    size_t SeedLen = 0;
    const Configuration *Seed = nullptr;
    if (Opts.SeedReplays && FirstEdit > 0 && !Rungs.empty()) {
      auto It = Rungs.upper_bound(FirstEdit);
      if (It != Rungs.begin()) {
        --It;
        SeedLen = It->first;
        Seed = It->second.get();
      }
    }
    Configuration C = Seed ? *Seed : Init; // COW: cheap until a write.
    Kept.assign(Cur.begin(), Cur.begin() + SeedLen);
    KeptAlloc.assign(CurAlloc.begin(), CurAlloc.begin() + SeedLen);
    if (SeedLen)
      EvalHash.assign(CurPosHash.begin(), CurPosHash.begin() + SeedLen + 1);
    else
      EvalHash.assign(1, C.hash());
    SeededSteps += SeedLen;
    // Longest common *suffix* of candidate and current witness, so the
    // rejoin probe below is one comparison per step instead of a tail
    // scan.
    size_t CommonSuffix = 0;
    if (Opts.SuffixConverge)
      while (CommonSuffix < Cand.size() && CommonSuffix < Cur.size() &&
             Cand[Cand.size() - 1 - CommonSuffix] ==
                 Cur[Cur.size() - 1 - CommonSuffix])
        ++CommonSuffix;
    size_t K = Opts.SeedInterval ? Opts.SeedInterval : 1;
    size_t NextRung = SeedLen + K;
    for (size_t Pos = SeedLen; Pos < Cand.size(); ++Pos) {
      const Directive &D = Cand[Pos];
      // Adopt an explorer checkpoint once the seeding replay proves it:
      // the chain rung at this prefix length must hash-match the state
      // the prefix actually replays to (the aliasing share keeps the
      // checkpoint alive, costs no copy).
      if (!ChainRungs.empty() && Pos == Kept.size()) {
        auto It = ChainRungs.find(Kept.size());
        if (It != ChainRungs.end() && It->second->Config.hash() == C.hash())
          Rungs.emplace(Kept.size(), std::shared_ptr<const Configuration>(
                                         It->second, &It->second->Config));
      }
      // Densify the ladder while the unedited prefix replays: here the
      // state is exactly what Cur[0, Kept.size()) reaches, valid as a
      // rung no matter how this candidate ends.  (During the seeding
      // replay FirstEdit covers the whole schedule, so the ladder spans
      // the adopted witness end to end.)
      if (Opts.SeedReplays && Kept.size() >= NextRung &&
          Kept.size() <= FirstEdit && Pos == Kept.size()) {
        if (!Rungs.count(Kept.size()))
          Rungs.emplace(Kept.size(),
                        std::make_shared<const Configuration>(C));
        NextRung = Kept.size() + K;
      }
      AllocInfo A;
      if (D.isFetch())
        A.From = C.Buf.nextIndex();
      if (D.isRetire() && !C.Buf.empty())
        A.Retired = C.Buf.minIndex();
      PC Origin = leakOriginOf(C, D);
      ++ReplayedSteps;
      auto Out = M.step(C, D);
      if (!Out)
        continue;
      if (D.isFetch())
        A.Slots = static_cast<unsigned>(C.Buf.nextIndex() - A.From);
      A.Rule = Out->Rule;
      A.PostN = C.N;
      Kept.push_back(D);
      KeptAlloc.push_back(A);
      EvalHash.push_back(C.hash());
      if (Out->Obs.isSecret()) {
        LeakRecord Probe{Schedule{}, Out->Obs, Origin, Out->Rule};
        if (Probe.key() == TargetKey)
          return true; // Truncated at the (re-)found leak.
      }
      // Suffix-convergence rejoin: the state just reached fingerprints
      // equal to the current witness's state at position P, and the
      // candidate's remaining directives are byte-identical to Cur[P..]
      // (so P is forced: remaining length pins it).  Cur proved that
      // suffix replays strictly from that state to the target leak, so
      // adopt it unexecuted.  Requires at least one remaining directive —
      // the leaking step itself must come from the proven suffix, not
      // from a state match alone — and only fires at or past the first
      // edit: before it the candidate IS Cur, and stopping on a
      // stream-revisited state there would adopt a shrink the full
      // replay would not produce (rejoins must change cost, never
      // results).
      if (CommonSuffix > 0 && Pos >= FirstEdit) {
        size_t RemLen = Cand.size() - Pos - 1;
        if (RemLen >= 1 && RemLen <= CommonSuffix && RemLen < Cur.size()) {
          size_t P = Cur.size() - RemLen;
          if (CurPosHash[P] == EvalHash.back()) {
            Kept.insert(Kept.end(), Cur.begin() + P, Cur.end());
            KeptAlloc.insert(KeptAlloc.end(), CurAlloc.begin() + P,
                             CurAlloc.end());
            EvalHash.insert(EvalHash.end(), CurPosHash.begin() + P + 1,
                            CurPosHash.end());
            ++SuffixConv;
            SuffixSkip += RemLen;
            return true;
          }
        }
      }
    }
    if (Opts.MemoizeCandidates)
      FailedCands.insert(std::move(Packed));
    return false;
  }


  /// Builds the candidate that deletes the marked positions of Cur,
  /// repairing the survivors: executes naming an entry a deleted fetch
  /// allocated are cascaded out, and the remaining buffer indices are
  /// shifted down by the slots deleted beneath them.
  Schedule buildWithout(const std::vector<char> &Del) const {
    std::vector<AllocInfo> Gone; // Deleted allocations, in index order.
    for (size_t I = 0; I < Cur.size(); ++I)
      if (Del[I] && CurAlloc[I].Slots)
        Gone.push_back(CurAlloc[I]);
    // Maps an old buffer index to its repaired value; false if the entry
    // itself was deleted (the referencing directive must cascade).
    auto Repair = [&Gone](BufIdx Idx, BufIdx &Out) {
      BufIdx Shift = 0;
      for (const AllocInfo &G : Gone) {
        if (Idx < G.From)
          break; // Gone is sorted by From: no further range can contain Idx.
        if (Idx < G.From + G.Slots)
          return false;
        Shift += G.Slots;
      }
      Out = Idx - Shift;
      return true;
    };
    Schedule Cand;
    for (size_t I = 0; I < Cur.size(); ++I) {
      if (Del[I])
        continue;
      Directive D = Cur[I];
      if (D.isExecute()) {
        if (!Repair(D.Idx, D.Idx))
          continue;
        if (D.K == Directive::Kind::ExecuteFwd && !Repair(D.FwdFrom, D.FwdFrom))
          continue;
      } else if (D.isRetire() && CurAlloc[I].Retired) {
        // The retire of a deleted instruction cascades with its fetch —
        // otherwise every junk instruction stays anchored in the witness
        // by the retire that drained it from the buffer.
        BufIdx Dummy;
        if (!Repair(CurAlloc[I].Retired, Dummy))
          continue;
      }
      Cand.push_back(D);
    }
    return Cand;
  }

  /// The excursion slice pass: delete a whole wrong-path excursion — the
  /// misprediction fetch, its transient fetches/executes, and the
  /// rollback — as one candidate, before chunk ddmin nibbles at it.
  ///
  /// A rollback at position R (rule cond/jmpi-execute-incorrect)
  /// resolves buffer entry B: the machine discards every entry at or
  /// above B, re-inserts the resolved jump at index B, and redirects the
  /// program point — the same state the *correct* prediction reaches
  /// directly.  So the candidate flips the prediction fetch (position F,
  /// the latest fetch whose allocation covers B) to its resolving form,
  /// drops every fetch and every execute of an entry above B strictly
  /// between F and R (all wrong-path: fetches follow the mispredicted
  /// program point until the rollback, and entries above B are squashed
  /// by it), keeps the interleaved architectural work (retires and
  /// executes of entries below B), and keeps R itself, which now
  /// resolves correct.  No index repair is needed: the rollback resets
  /// allocation to B+1, so the suffix's indices mean the same thing in
  /// the sliced replay.  Nested excursions vanish with their enclosing
  /// one — the scan restarts outermost-first (descending R) after every
  /// adoption.
  void slice() {
    bool Changed = true;
    while (Changed && !Exhausted) {
      Changed = false;
      for (size_t R = Cur.size(); R-- > 0 && !Exhausted;) {
        if (CurAlloc[R].Rule != RuleId::CondExecuteIncorrect &&
            CurAlloc[R].Rule != RuleId::JmpiExecuteIncorrect)
          continue;
        BufIdx B = Cur[R].Idx;
        // The prediction that created entry B: the latest covering fetch
        // before R (rollbacks reuse indices, so earlier covering ranges
        // may be stale).
        size_t F = SIZE_MAX;
        for (size_t I = 0; I < R; ++I)
          if (CurAlloc[I].Slots && CurAlloc[I].From <= B &&
              B < CurAlloc[I].From + CurAlloc[I].Slots)
            F = I;
        if (F == SIZE_MAX)
          continue;
        Directive Flip;
        if (Cur[F].K == Directive::Kind::FetchBool)
          Flip = Directive::fetchBool(!Cur[F].Guess);
        else if (Cur[F].K == Directive::Kind::FetchTarget)
          // The rollback recorded where the jump actually went; predict
          // that and the kept execute resolves correct.
          Flip = Directive::fetchTarget(CurAlloc[R].PostN);
        else
          continue; // Hazard re-executions share the rules' rollback
                    // shape but not the prediction fetch; never sliced.
        Schedule Cand(Cur.begin(), Cur.begin() + F);
        Cand.push_back(Flip);
        for (size_t I = F + 1; I < R; ++I) {
          const Directive &D = Cur[I];
          if (D.isFetch() || (D.isExecute() && D.Idx > B))
            continue;
          Cand.push_back(D);
        }
        Cand.insert(Cand.end(), Cur.begin() + R, Cur.end());
        Schedule Kept;
        std::vector<AllocInfo> KA;
        // Adopted only on a strict shrink, which is also what keeps the
        // pass idempotent: a sliced witness has no incorrect resolutions
        // left to find.
        if (evaluate(Cand, Kept, KA) && Kept.size() < Cur.size()) {
          adopt(std::move(Kept), std::move(KA));
          ++SlicedExcursions;
          Changed = true;
          break;
        }
      }
    }
  }

  /// The slice-polish pass (ROADMAP open item 4).  The slice pass's
  /// fixpoint is 1-minimal in its own basin — predictions flipped to
  /// their resolving forms, rollback executes kept — which on some
  /// bloated witnesses sits ±2 directives from the no-slice optimum,
  /// whose schedules keep a misprediction un-flipped instead.  The
  /// fixpoint loop cannot hop between the basins: its guess-flips adopt
  /// only strict shrinks.  Polish hops deliberately: flip each surviving
  /// branch guess at *equal* length, rerun the no-slice passes
  /// (ddmin + canonicalize) from there, and keep the whole excursion only
  /// if the result is strictly shorter than the fixpoint's — otherwise
  /// restore it byte-for-byte, which is also what keeps minimization
  /// idempotent and never-longer.
  void polish() {
    Schedule Saved = Cur;
    std::vector<AllocInfo> SavedAlloc = CurAlloc;
    std::vector<uint64_t> SavedPosHash = CurPosHash;
    Ladder SavedRungs = Rungs;

    bool Improved = false;
    for (size_t I = 0; I < Cur.size() && !Exhausted; ++I) {
      if (Cur[I].K != Directive::Kind::FetchBool)
        continue;
      Schedule Cand = Cur;
      Cand[I] = Directive::fetchBool(!Cur[I].Guess);
      Schedule Kept;
      std::vector<AllocInfo> KA;
      // Equal length is enough to hop; the replays below must then earn
      // the strict shrink.
      if (!evaluate(Cand, Kept, KA) || Kept.size() > Cur.size())
        continue;
      adopt(std::move(Kept), std::move(KA));
      for (unsigned Pass = 0; Pass < Opts.MaxPasses && !Exhausted; ++Pass) {
        Schedule Before = Cur;
        ddmin();
        if (Opts.Canonicalize && !Exhausted)
          canonicalize();
        if (Cur == Before)
          break;
      }
      if (Cur.size() < Saved.size()) {
        Improved = true;
        break; // Strictly better basin found; keep it.
      }
      // No win: restore the fixpoint result exactly (rungs and position
      // hashes included — their invariants are tied to Cur's prefix).
      Cur = Saved;
      CurAlloc = SavedAlloc;
      CurPosHash = SavedPosHash;
      Rungs = SavedRungs;
    }
    if (!Improved && (Cur != Saved)) {
      Cur = Saved;
      CurAlloc = SavedAlloc;
      CurPosHash = std::move(SavedPosHash);
      Rungs = std::move(SavedRungs);
    }
  }

  /// Zeller's ddmin over the positions of Cur, with cascade-repaired
  /// candidates.  Terminates 1-minimal w.r.t. single-position deletion
  /// (plus cascades) or when the replay budget runs out.
  void ddmin() {
    size_t N = 2;
    while (!Exhausted && Cur.size() >= 2) {
      size_t Len = Cur.size();
      if (N > Len)
        N = Len;
      size_t Chunk = (Len + N - 1) / N;
      bool Reduced = false;
      for (size_t Start = 0; Start < Len && !Exhausted; Start += Chunk) {
        std::vector<char> Del(Len, 0);
        for (size_t I = Start; I < std::min(Start + Chunk, Len); ++I)
          Del[I] = 1;
        Schedule Cand = buildWithout(Del);
        if (Cand.empty() || Cand.size() >= Cur.size())
          continue;
        Schedule Kept;
        std::vector<AllocInfo> KA;
        if (evaluate(Cand, Kept, KA) && Kept.size() < Cur.size()) {
          adopt(std::move(Kept), std::move(KA));
          Reduced = true;
          break;
        }
      }
      if (Reduced) {
        N = std::max<size_t>(2, N - 1);
        continue;
      }
      if (Chunk <= 1)
        break;
      N = std::min(N * 2, Cur.size());
    }
  }

  /// Rewrites each surviving directive to the simplest form that still
  /// reproduces the leak: prefer plain fetch/retire over the fork
  /// directives and plain execute over the resolution variants, so the
  /// minimized schedule spells out only the predictions the attack
  /// genuinely needs.
  void canonicalize() {
    for (size_t I = 0; I < Cur.size() && !Exhausted; ++I) {
      // Simpler-form alternatives are adopted at equal length (the
      // rewrite itself is the win, and it can only move toward plain
      // forms, so it cannot oscillate).
      std::vector<Directive> Alts;
      switch (Cur[I].K) {
      case Directive::Kind::FetchBool:
      case Directive::Kind::FetchTarget:
        Alts = {Directive::fetch(), Directive::retire()};
        break;
      case Directive::Kind::ExecuteValue:
      case Directive::Kind::ExecuteAddr:
      case Directive::Kind::ExecuteFwd:
        Alts = {Directive::execute(Cur[I].Idx), Directive::retire()};
        break;
      default:
        continue;
      }
      for (const Directive &Alt : Alts) {
        Schedule Cand = Cur;
        Cand[I] = Alt;
        Schedule Kept;
        std::vector<AllocInfo> KA;
        if (evaluate(Cand, Kept, KA) && Kept.size() <= Cur.size()) {
          adopt(std::move(Kept), std::move(KA));
          break;
        }
      }
      // Guess flip, adopted only on a strict shrink: correcting an
      // irrelevant misprediction makes its wrong-path excursion
      // inapplicable and the lenient replay garbage-collects it in the
      // same evaluation.  (The strict-shrink bar is what keeps
      // minimization idempotent — a flip that buys nothing, or would
      // merely flip back, never changes the schedule.)
      if (Cur[I].K == Directive::Kind::FetchBool) {
        Schedule Cand = Cur;
        Cand[I] = Directive::fetchBool(!Cur[I].Guess);
        Schedule Kept;
        std::vector<AllocInfo> KA;
        if (evaluate(Cand, Kept, KA) && Kept.size() < Cur.size())
          adopt(std::move(Kept), std::move(KA));
      }
    }
  }
};

} // namespace

Schedule sct::minimizeWitness(const Machine &M, const Configuration &Init,
                              const LeakRecord &L, const MinimizeOptions &Opts,
                              MinimizeStats *Stats) {
  MinimizeStats Local;
  Minimizer Min(M, Init, L.key(), Opts);
  Schedule S = Min.run(L, Stats ? *Stats : Local);
  return S;
}

MinimizeStats sct::minimizeWitnesses(const Machine &M,
                                     const Configuration &Init,
                                     std::vector<LeakRecord> &Leaks,
                                     const MinimizeOptions &Opts) {
  MinimizeStats Stats;
  unsigned Workers = Opts.Threads;
  if (Workers > Leaks.size())
    Workers = static_cast<unsigned>(Leaks.size());
  if (Workers <= 1) {
    // Sequential: today's deterministic order (and what any thread count
    // reproduces per leak — each job is a pure function of its inputs).
    for (LeakRecord &L : Leaks)
      L.MinSched = minimizeWitness(M, Init, L, Opts, &Stats);
    return Stats;
  }

  // Per-leak jobs on the explorer's work-stealing deques: worker W owns
  // deque W preloaded round-robin, pops LIFO, and steals half a random
  // victim's deque when dry.  Jobs never create jobs, so a worker exits
  // once every deque probes empty.  Each worker replays through its own
  // Configurations (COW forks of the shared Init — the same sharing
  // discipline the explorer's frontier workers use) and fills only its
  // jobs' MinSched slots; stats merge by summation at join.
  StealQueue<size_t> Jobs(Workers);
  for (size_t I = 0; I < Leaks.size(); ++I)
    Jobs.push(static_cast<unsigned>(I % Workers), size_t(I));
  std::vector<MinimizeStats> PerWorker(Workers);
  std::vector<std::thread> Pool;
  Pool.reserve(Workers);
  for (unsigned Id = 0; Id < Workers; ++Id)
    Pool.emplace_back([&, Id] {
      std::minstd_rand Rng(Id * 0x9e3779b9u + 0x1b873593u);
      for (;;) {
        size_t Job;
        if (!Jobs.tryPop(Id, Job) &&
            !Jobs.trySteal(Id, static_cast<unsigned>(Rng()), Job))
          return;
        Leaks[Job].MinSched =
            minimizeWitness(M, Init, Leaks[Job], Opts, &PerWorker[Id]);
      }
    });
  for (std::thread &T : Pool)
    T.join();
  for (const MinimizeStats &S : PerWorker)
    Stats.merge(S);
  return Stats;
}
