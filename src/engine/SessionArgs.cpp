//===- engine/SessionArgs.cpp - Declarative session flag table --------------===//

#include "engine/SessionArgs.h"

#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

using namespace sct;

namespace {

unsigned asUnsigned(const char *V) {
  return static_cast<unsigned>(std::atoi(V));
}
uint64_t asU64(const char *V) {
  return static_cast<uint64_t>(std::atoll(V));
}

// The one place a session flag is declared.  Rows parse *and* document:
// sessionFlagsHelp() renders Name/Arg/Doc, parseSessionArgs dispatches to
// Apply.  Keep Doc to one line — it becomes one help row.
constexpr SessionFlag Flags[] = {
    {"--threads", "N", "engine worker threads (default: hardware concurrency)",
     [](SessionOptions &O, const char *V) { O.Threads = asUnsigned(V); }},
    {"--shards", "N",
     "frontier shards (default: one per worker; 1 = shared frontier)",
     [](SessionOptions &O, const char *V) {
       O.DefaultOpts.Shards = asUnsigned(V);
     }},
    {"--prune-seen", nullptr, "enable seen-state pruning (the default)",
     [](SessionOptions &O, const char *) { O.DefaultOpts.PruneSeen = true; }},
    {"--no-prune-seen", nullptr, "disable cross-schedule seen-state pruning",
     [](SessionOptions &O, const char *) { O.DefaultOpts.PruneSeen = false; }},
    {"--checkpoint-interval", "K",
     "hybrid snapshots: shared checkpoint every K directives",
     [](SessionOptions &O, const char *V) {
       O.DefaultOpts.Snapshots = SnapshotPolicy::Hybrid;
       O.DefaultOpts.CheckpointInterval = asUnsigned(V);
     }},
    {"--minimize-witnesses", nullptr,
     "delta-debug witnesses to minimal attack schedules",
     [](SessionOptions &O, const char *) {
       O.Passes.MinimizeWitnesses = true;
     }},
    {"--minimize-budget", "N", "replays spent minimizing each witness",
     [](SessionOptions &O, const char *V) {
       O.Passes.Minimize.MaxReplays = asU64(V);
     }},
    {"--minimize-threads", "N",
     "minimization worker threads (0 = the check's frontier share)",
     [](SessionOptions &O, const char *V) {
       O.Passes.Minimize.Threads = asUnsigned(V);
     }},
    {"--no-slice-excursions", nullptr, "disable the excursion slice pass",
     [](SessionOptions &O, const char *) {
       O.Passes.Minimize.SliceExcursions = false;
     }},
    {"--no-slice-polish", nullptr, "disable the slice-polish basin hop",
     [](SessionOptions &O, const char *) {
       O.Passes.Minimize.SlicePolish = false;
     }},
    {"--no-seed-replays", nullptr,
     "replay every candidate from the initial configuration",
     [](SessionOptions &O, const char *) {
       O.Passes.Minimize.SeedReplays = false;
     }},
    {"--no-suffix-converge", nullptr,
     "disable suffix-convergence rejoins in minimization",
     [](SessionOptions &O, const char *) {
       O.Passes.Minimize.SuffixConverge = false;
     }},
    {"--prove-sps", nullptr,
     "try the SPS proof backend first; conclusive verdicts skip exploring",
     [](SessionOptions &O, const char *) { O.Passes.ProveSps = true; }},
    {"--sps-max-tapes", "N", "oracle-tape budget for --prove-sps",
     [](SessionOptions &O, const char *V) {
       O.Passes.Sps.MaxTapes = asU64(V);
     }},
    {"--cache-dir", "DIR",
     "persistent result cache: serve unchanged checks from DIR",
     [](SessionOptions &O, const char *V) { O.CacheDir = V; }},
    {"--workers", "N", "dispatch checkMany to N sctworker processes",
     [](SessionOptions &O, const char *V) { O.Workers = asUnsigned(V); }},
    {"--worker-bin", "PATH",
     "worker binary (default: sctworker beside this executable)",
     [](SessionOptions &O, const char *V) { O.WorkerBinary = V; }},
    {"--worker-timeout", "SEC",
     "kill a worker past SEC seconds on one request; re-run in-process",
     [](SessionOptions &O, const char *V) {
       O.WorkerTimeoutSec = std::atof(V);
     }},
};

} // namespace

std::span<const SessionFlag> sct::sessionFlags() { return Flags; }

SessionArgs sct::parseSessionArgs(int Argc, char **Argv) {
  SessionArgs Parsed;
  Parsed.Opts.Threads = std::thread::hardware_concurrency();
  Parsed.Consumed.assign(static_cast<size_t>(Argc < 0 ? 0 : Argc), false);
  for (int I = 1; I < Argc; ++I) {
    for (const SessionFlag &F : Flags) {
      if (std::strcmp(Argv[I], F.Name) != 0)
        continue;
      if (F.Arg) {
        if (I + 1 >= Argc)
          break; // Trailing flag without its value: leave it unconsumed.
        Parsed.Consumed[static_cast<size_t>(I)] = true;
        ++I;
        F.Apply(Parsed.Opts, Argv[I]);
      } else {
        F.Apply(Parsed.Opts, nullptr);
      }
      Parsed.Consumed[static_cast<size_t>(I)] = true;
      break;
    }
  }
  return Parsed;
}

std::string sct::sessionFlagsHelp() {
  // Align the doc column on the widest "--flag ARG" spelling.
  size_t Widest = 0;
  for (const SessionFlag &F : Flags) {
    size_t W = std::strlen(F.Name) + (F.Arg ? 1 + std::strlen(F.Arg) : 0);
    Widest = std::max(Widest, W);
  }
  std::string Out;
  for (const SessionFlag &F : Flags) {
    std::string Head = F.Name;
    if (F.Arg) {
      Head += ' ';
      Head += F.Arg;
    }
    Out += "  " + Head + std::string(Widest + 2 - Head.size(), ' ') +
           F.Doc + "\n";
  }
  return Out;
}

SessionOptions sct::sessionOptionsFromArgs(int Argc, char **Argv) {
  return parseSessionArgs(Argc, Argv).Opts;
}
