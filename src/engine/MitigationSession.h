//===- engine/MitigationSession.h - Mitigation validation engine -*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mitigation engine: checks a baseline program, applies any list of
/// `Mitigation` transforms (checker/Mitigation.h), re-checks each
/// mitigated variant, and reports — per baseline leak — whether the
/// transform closed it, at what placement cost, and how much of the
/// re-check the baseline exploration paid for.  On top of the report it
/// offers a *minimal fence placement* search: shrink a blanket
/// `FencePolicy` down to a minimal fence set that still restores SCT.
///
/// **Diff-driven re-checks.**  A mitigation only *closes* subtrees — it
/// never opens behaviour the baseline machine lacked — so re-exploring
/// the mitigated variant from scratch repeats work the baseline already
/// did.  Two reuse mechanisms exploit that:
///
///  - *Seen-state reuse*: the baseline check exports its seen-state table
///    plus the subset of claims with a leak (or unknown coverage) below
///    them (`ExplorerOptions::ExportSeenStates`).  The mitigated re-check
///    then prunes any candidate state whose configuration, hashed back
///    into baseline coordinates through the transform's provenance map
///    (`Configuration::hash(const PcRemap &)`), names a baseline subtree
///    that was fully explored and certified leak-free — the
///    `RemappedSeenFilter` of sched/SeenStates.h.  The remap refuses an
///    image for any state from which an inserted instruction is still
///    reachable (a static influence analysis over the old program's
///    control flow), so a pruned state's subtree is isomorphic to its
///    leak-free baseline twin and pruning cannot change the verdict:
///    leak sets are identical with reuse on or off, only step counts
///    move (tests/MitigationTest.cpp pins this across the corpus).
///    Reuse is skipped when the baseline was truncated (its table would
///    certify subtrees it never finished).
///  - *Witness replay*: before trusting absence-of-leaks, each baseline
///    witness (minimized when available) is replayed leniently on the
///    mitigated program with directives mapped through the provenance;
///    if it still reaches the same leak key the leak is *proven* open by
///    a concrete schedule — `LeakClosure::ReplayPredictsOpen` — without
///    waiting for the re-exploration to find it.
///
/// **Cost.**  Each variant reports the transform's static cost
/// (instructions/fences added, sites rewritten) and the dynamic cost the
/// paper-style ablation uses: sequential-schedule growth, the abstract
/// machine's stand-in for runtime overhead.
///
/// Layering note: the mitigation *transforms* are engine-independent
/// program rewriters (checker/ProgramRewriter.h and the Mitigation
/// implementations); this engine component consumes them, while the
/// checker *verdicts* (SctChecker) sit on top of the engine as before.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_ENGINE_MITIGATIONSESSION_H
#define SCT_ENGINE_MITIGATIONSESSION_H

#include "checker/FenceInsertion.h"
#include "engine/CheckSession.h"

#include <span>

namespace sct {

/// Fate of one baseline leak under one mitigation.
struct LeakClosure {
  /// The baseline leak's dedup key and origin (baseline coordinates).
  uint64_t BaselineKey = 0;
  PC Origin = 0;
  /// The origin's image in the mitigated program (nullopt if the
  /// instruction was rewritten away, e.g. a retpolined jmpi).
  std::optional<PC> MitigatedOrigin;
  /// True iff the mitigated check found no leak with the corresponding
  /// key (same kind/rule/taint at the mapped origin).
  bool Closed = false;
  /// True iff the remapped baseline witness still reproduces the leak on
  /// the mitigated program — concrete proof the leak is open, available
  /// before (and independently of) the re-exploration.
  bool ReplayPredictsOpen = false;
};

/// One mitigated variant's outcome.
struct MitigationVariant {
  std::string Name;
  /// Engaged iff the transform refused (jump tables, unsupported); the
  /// remaining fields are then meaningless.
  std::optional<MitigationError> Error;
  MitigationCost Cost;
  /// Sequential-schedule length of the mitigated program (0 if stuck);
  /// compare against MitigationReport::SeqStepsBaseline for the
  /// paper-style overhead column.
  size_t SeqSteps = 0;
  /// The mitigated program and its provenance (valid iff !Error).
  Program Prog;
  ProvenanceMap Map;
  /// The re-check outcome.
  CheckResult After;
  /// Per-baseline-leak closure verdicts, in baseline leak order.
  std::vector<LeakClosure> Leaks;
  /// Schedule subtrees the baseline's seen-state table pruned from this
  /// re-check: how many candidate states, and the distinct subtree-root
  /// fetch points (baseline coordinates) they covered.
  uint64_t ReusePrunedNodes = 0;
  std::vector<PC> ReusePrunedAt;

  bool applied() const { return !Error.has_value(); }
  bool restoredSct() const { return applied() && After.secure(); }
  size_t closedCount() const {
    size_t N = 0;
    for (const LeakClosure &L : Leaks)
      N += L.Closed;
    return N;
  }
};

/// The full before/after report.
struct MitigationReport {
  CheckResult Baseline;
  size_t SeqStepsBaseline = 0;
  std::vector<MitigationVariant> Variants;
};

/// Session-level knobs.
struct MitigationOptions {
  /// Reuse the baseline's seen-state table in every mitigated re-check
  /// (skipped automatically when the baseline was truncated or the
  /// transform changed the register file).
  bool ReuseSeenStates = true;
  /// Run the witness-replay pre-pass per leak.
  bool ReplayWitnesses = true;
  /// Minimize baseline witnesses (sharpens the replay pre-pass and the
  /// placement search's witness seed; costs the usual ddmin replays).
  bool MinimizeBaselineWitnesses = true;
  /// Verify each mitigated variant with the SPS proof backend
  /// (checker/SpsChecker.h) before falling back to re-exploration: a
  /// proof settles "restored SCT" outright — including on programs whose
  /// mitigated schedule tree the explorer cannot finish (kocher-05
  /// fenced) — and a refutation yields source-level counterexamples the
  /// per-leak closure verdicts key on.  Inconclusive runs fall through
  /// to the ordinary diff-driven re-check transparently.
  bool ProveSpsRecheck = false;
  SpsOptions Sps;
};

/// Options for the minimal-fence-placement search.
struct FencePlacementOptions {
  /// The blanket policy to shrink.
  FencePolicy Blanket = FencePolicy::BranchTargets;
  /// Total re-check budget (each candidate fence set costs one engine
  /// check of the fenced program).  On exhaustion the best set found so
  /// far is returned.
  unsigned MaxChecks = 128;
  /// Seed the search with the blanket sites the baseline witnesses
  /// actually touch — the diff says every other fence never mattered, so
  /// the seed usually verifies and skips most of ddmin's work.
  bool WitnessSeed = true;
  /// Verify candidate fence sets with the SPS proof backend (conclusive
  /// verdicts skip the candidate's re-exploration entirely; see
  /// MitigationOptions::ProveSpsRecheck).  This is what makes minimal
  /// placement tractable on explorer-intractable cases.
  bool ProveSps = false;
  SpsOptions Sps;
  /// Forwarded to FenceInsertion (jump-table relocation).
  std::vector<uint64_t> CodePointerAddrs;
  std::vector<Reg> CodePointerRegs;
};

/// Result of the minimal-fence-placement search.
struct FencePlacementResult {
  /// The minimal fence set found (baseline coordinates), 1-minimal w.r.t.
  /// single-site removal when the check budget sufficed.
  std::vector<PC> Sites;
  /// Sites the blanket policy would have used.
  size_t BlanketSites = 0;
  /// True iff `Sites` restores SCT (false also when even the blanket
  /// does not — fences cannot fix every leak, e.g. Figure 11's v2).
  bool RestoredSct = false;
  /// Engine checks spent (including the blanket verification).
  unsigned ChecksSpent = 0;
  /// Engaged if fence insertion refused the program.
  std::optional<MitigationError> Error;
  CheckResult Baseline;
  /// The re-check of the final `Sites` (valid iff RestoredSct).
  CheckResult Final;
  Program Mitigated;
};

/// The mitigation engine.  Thread-safe like CheckSession: immutable after
/// construction; run() and minimizeFencePlacement() are const and
/// allocate per call, and their exploration/minimization phases inherit
/// the session's thread budget.
class MitigationSession {
public:
  explicit MitigationSession(SessionOptions SOpts = {},
                             MitigationOptions MOpts = {});

  const CheckSession &session() const { return Session; }
  const MitigationOptions &options() const { return Opts; }

  /// Checks \p P under \p Mode, applies each mitigation, re-checks, and
  /// reports per-leak closure + cost.
  MitigationReport run(const Program &P, const ExplorerOptions &Mode,
                       std::span<const Mitigation *const> Ms,
                       const MachineOptions &MachOpts = {}) const;

  /// Convenience for one mitigation.
  MitigationReport run(const Program &P, const ExplorerOptions &Mode,
                       const Mitigation &M,
                       const MachineOptions &MachOpts = {}) const;

  /// Greedy/ddmin minimal fence placement: verifies the blanket policy
  /// restores SCT, seeds from the witness-touched sites, then
  /// delta-debugs the site set down to a minimal set that still checks
  /// secure.  Every candidate re-check reuses the baseline's seen-state
  /// table, so shrinking is much cheaper than |sites| fresh checks.
  /// \p Baseline, when non-null, supplies a baseline CheckResult this
  /// session already produced for \p P under \p Mode (e.g. from run())
  /// so the search does not re-explore it.
  FencePlacementResult
  minimizeFencePlacement(const Program &P, const ExplorerOptions &Mode,
                         const FencePlacementOptions &FOpts = {},
                         const MachineOptions &MachOpts = {},
                         const CheckResult *Baseline = nullptr) const;

private:
  CheckSession Session;
  MitigationOptions Opts;

  MitigationVariant checkVariant(const Program &P, const ExplorerOptions &Mode,
                                 const Mitigation &M,
                                 const CheckResult &Baseline,
                                 const MachineOptions &MachOpts) const;
};

/// Length of \p P's sequential (in-order) schedule — the dynamic-cost
/// metric of the mitigation report; 0 if the program gets stuck.
size_t sequentialScheduleLength(const Program &P,
                                const MachineOptions &MachOpts = {});

} // namespace sct

#endif // SCT_ENGINE_MITIGATIONSESSION_H
