//===- engine/Serialization.cpp - Binary wire/cache format ------------------===//

#include "engine/Serialization.h"

#include "isa/ProgramBuilder.h"
#include "support/Hashing.h"

#include <cstdlib>
#include <unistd.h>

using namespace sct;

namespace {

// ---------------------------------------------------------------- basics ---

void writeOperand(ByteWriter &W, const Operand &Op) {
  W.b(Op.isReg());
  if (Op.isReg())
    W.u16(Op.getReg().id());
  else
    W.u64(Op.getImm());
}

std::optional<Operand> readOperand(ByteReader &R, unsigned NumRegs) {
  if (R.b()) {
    uint16_t Id = R.u16();
    if (!R.ok() || Id >= NumRegs)
      return std::nullopt;
    return Operand::reg(Reg(Id));
  }
  uint64_t Imm = R.u64();
  if (!R.ok())
    return std::nullopt;
  return Operand::imm(Imm);
}

void writeOperands(ByteWriter &W, const std::vector<Operand> &Ops) {
  W.u64(Ops.size());
  for (const Operand &Op : Ops)
    writeOperand(W, Op);
}

std::optional<std::vector<Operand>> readOperands(ByteReader &R,
                                                 unsigned NumRegs) {
  uint64_t N = R.count(3); // 1 tag byte + u16 register id at minimum.
  std::vector<Operand> Ops;
  Ops.reserve(static_cast<size_t>(N));
  for (uint64_t I = 0; I < N; ++I) {
    std::optional<Operand> Op = readOperand(R, NumRegs);
    if (!Op)
      return std::nullopt;
    Ops.push_back(*Op);
  }
  return Ops;
}

std::optional<Reg> readReg(ByteReader &R, unsigned NumRegs) {
  uint16_t Id = R.u16();
  if (!R.ok() || Id >= NumRegs)
    return std::nullopt;
  return Reg(Id);
}

std::optional<Opcode> readOpcode(ByteReader &R) {
  uint8_t V = R.u8();
  if (!R.ok() || V > static_cast<uint8_t>(Opcode::Pred))
    return std::nullopt;
  return static_cast<Opcode>(V);
}

// ----------------------------------------------------------- instructions ---

void writeInstruction(ByteWriter &W, const Instruction &I) {
  W.u8(static_cast<uint8_t>(I.kind()));
  switch (I.kind()) {
  case InstrKind::Op:
    W.u16(I.dest().id());
    W.u8(static_cast<uint8_t>(I.opcode()));
    writeOperands(W, I.args());
    break;
  case InstrKind::Branch:
    W.u8(static_cast<uint8_t>(I.opcode()));
    writeOperands(W, I.args());
    W.u32(I.trueTarget());
    W.u32(I.falseTarget());
    break;
  case InstrKind::Load:
    W.u16(I.dest().id());
    writeOperands(W, I.args());
    break;
  case InstrKind::Store:
    writeOperand(W, I.storeValue());
    writeOperands(W, I.args());
    break;
  case InstrKind::JumpI:
  case InstrKind::CallI:
    writeOperands(W, I.args());
    break;
  case InstrKind::Call:
    W.u32(I.callee());
    break;
  case InstrKind::Ret:
  case InstrKind::Fence:
    break;
  }
  W.u32(I.next());
}

std::optional<Instruction> readInstruction(ByteReader &R, unsigned NumRegs) {
  uint8_t RawKind = R.u8();
  if (!R.ok() || RawKind > static_cast<uint8_t>(InstrKind::Fence))
    return std::nullopt;
  std::optional<Instruction> I;
  switch (static_cast<InstrKind>(RawKind)) {
  case InstrKind::Op: {
    std::optional<Reg> Dest = readReg(R, NumRegs);
    std::optional<Opcode> Opc = readOpcode(R);
    std::optional<std::vector<Operand>> Args = readOperands(R, NumRegs);
    if (!Dest || !Opc || !Args)
      return std::nullopt;
    I = Instruction::makeOp(*Dest, *Opc, std::move(*Args));
    break;
  }
  case InstrKind::Branch: {
    std::optional<Opcode> Opc = readOpcode(R);
    std::optional<std::vector<Operand>> Args = readOperands(R, NumRegs);
    PC NTrue = R.u32(), NFalse = R.u32();
    if (!Opc || !Args || !R.ok())
      return std::nullopt;
    I = Instruction::makeBranch(*Opc, std::move(*Args), NTrue, NFalse);
    break;
  }
  case InstrKind::Load: {
    std::optional<Reg> Dest = readReg(R, NumRegs);
    std::optional<std::vector<Operand>> Args = readOperands(R, NumRegs);
    if (!Dest || !Args)
      return std::nullopt;
    I = Instruction::makeLoad(*Dest, std::move(*Args));
    break;
  }
  case InstrKind::Store: {
    std::optional<Operand> Val = readOperand(R, NumRegs);
    std::optional<std::vector<Operand>> Args = readOperands(R, NumRegs);
    if (!Val || !Args)
      return std::nullopt;
    I = Instruction::makeStore(*Val, std::move(*Args));
    break;
  }
  case InstrKind::JumpI: {
    std::optional<std::vector<Operand>> Args = readOperands(R, NumRegs);
    if (!Args)
      return std::nullopt;
    I = Instruction::makeJumpI(std::move(*Args));
    break;
  }
  case InstrKind::CallI: {
    std::optional<std::vector<Operand>> Args = readOperands(R, NumRegs);
    if (!Args)
      return std::nullopt;
    I = Instruction::makeCallI(std::move(*Args));
    break;
  }
  case InstrKind::Call:
    I = Instruction::makeCall(R.u32());
    break;
  case InstrKind::Ret:
    I = Instruction::makeRet();
    break;
  case InstrKind::Fence:
    I = Instruction::makeFence();
    break;
  }
  PC Next = R.u32();
  if (!R.ok())
    return std::nullopt;
  I->setNext(Next);
  return I;
}

// -------------------------------------------------- schedules/observations ---

void writeDirective(ByteWriter &W, const Directive &D) {
  W.u8(static_cast<uint8_t>(D.K));
  W.b(D.Guess);
  W.u32(D.Target);
  W.u64(D.Idx);
  W.u64(D.FwdFrom);
}

bool readDirective(ByteReader &R, Directive &D) {
  uint8_t K = R.u8();
  if (!R.ok() || K > static_cast<uint8_t>(Directive::Kind::Retire))
    return false;
  D.K = static_cast<Directive::Kind>(K);
  D.Guess = R.b();
  D.Target = R.u32();
  D.Idx = R.u64();
  D.FwdFrom = R.u64();
  return R.ok();
}

void writeSchedule(ByteWriter &W, const Schedule &S) {
  W.u64(S.size());
  for (const Directive &D : S)
    writeDirective(W, D);
}

bool readSchedule(ByteReader &R, Schedule &S) {
  uint64_t N = R.count(22); // Serialized directive size.
  S.resize(static_cast<size_t>(N));
  for (Directive &D : S)
    if (!readDirective(R, D))
      return false;
  return R.ok();
}

void writeObservation(ByteWriter &W, const Observation &O) {
  W.u8(static_cast<uint8_t>(O.K));
  W.b(O.Rollback);
  W.u64(O.Payload.Bits);
  W.u64(O.Payload.Taint.mask());
}

bool readObservation(ByteReader &R, Observation &O) {
  uint8_t K = R.u8();
  if (!R.ok() || K > static_cast<uint8_t>(Observation::Kind::Jump))
    return false;
  O.K = static_cast<Observation::Kind>(K);
  O.Rollback = R.b();
  uint64_t Bits = R.u64();
  O.Payload = Value(Bits, Label::fromMask(R.u64()));
  return R.ok();
}

void writeLeakRecord(ByteWriter &W, const LeakRecord &L) {
  writeSchedule(W, L.Sched);
  writeObservation(W, L.Obs);
  W.u32(L.Origin);
  W.u8(static_cast<uint8_t>(L.Rule));
  writeSchedule(W, L.MinSched);
  // LeakRecord::Ckpt is a replay seed, not part of the verdict; it stays
  // runtime-only (see the file comment in Serialization.h).
}

bool readLeakRecord(ByteReader &R, LeakRecord &L) {
  if (!readSchedule(R, L.Sched))
    return false;
  if (!readObservation(R, L.Obs))
    return false;
  L.Origin = R.u32();
  uint8_t Rule = R.u8();
  if (!R.ok() || Rule > static_cast<uint8_t>(RuleId::RetRetire))
    return false;
  L.Rule = static_cast<RuleId>(Rule);
  return readSchedule(R, L.MinSched);
}

// ------------------------------------------------------------ sub-options ---

void writeMinimizeOptions(ByteWriter &W, const MinimizeOptions &O) {
  W.u64(O.MaxReplays);
  W.b(O.Canonicalize);
  W.b(O.SliceExcursions);
  W.b(O.SlicePolish);
  W.b(O.SeedReplays);
  W.b(O.SuffixConverge);
  W.b(O.MemoizeCandidates);
  W.u32(O.SeedInterval);
  W.u32(O.Threads);
  W.u32(O.MaxPasses);
}

bool readMinimizeOptions(ByteReader &R, MinimizeOptions &O) {
  O.MaxReplays = R.u64();
  O.Canonicalize = R.b();
  O.SliceExcursions = R.b();
  O.SlicePolish = R.b();
  O.SeedReplays = R.b();
  O.SuffixConverge = R.b();
  O.MemoizeCandidates = R.b();
  O.SeedInterval = R.u32();
  O.Threads = R.u32();
  O.MaxPasses = R.u32();
  return R.ok();
}

void writeSpsOptions(ByteWriter &W, const SpsOptions &O) {
  W.u64(O.MaxTapes);
  W.u64(O.MaxRetiresPerTape);
  W.u64(O.MaxCounterExamples);
  W.b(O.StopAtFirstCounterExample);
  W.b(O.DepthToWindow);
}

bool readSpsOptions(ByteReader &R, SpsOptions &O) {
  O.MaxTapes = R.u64();
  O.MaxRetiresPerTape = static_cast<size_t>(R.u64());
  O.MaxCounterExamples = static_cast<size_t>(R.u64());
  O.StopAtFirstCounterExample = R.b();
  O.DepthToWindow = R.b();
  return R.ok();
}

// --------------------------------------------------------------- results ---

void writeMinimizeStats(ByteWriter &W, const MinimizeStats &S) {
  W.u64(S.RawDirectives);
  W.u64(S.MinimizedDirectives);
  W.u64(S.Replays);
  W.u64(S.ReplayedSteps);
  W.u64(S.SeededSteps);
  W.u64(S.SlicedExcursions);
  W.u64(S.SuffixConvergences);
  W.u64(S.SuffixSkippedSteps);
  W.b(S.BudgetExhausted);
}

bool readMinimizeStats(ByteReader &R, MinimizeStats &S) {
  S.RawDirectives = R.u64();
  S.MinimizedDirectives = R.u64();
  S.Replays = R.u64();
  S.ReplayedSteps = R.u64();
  S.SeededSteps = R.u64();
  S.SlicedExcursions = R.u64();
  S.SuffixConvergences = R.u64();
  S.SuffixSkippedSteps = R.u64();
  S.BudgetExhausted = R.b();
  return R.ok();
}

void writeExploreStats(ByteWriter &W, const ExploreStats &S) {
  W.u64(S.Seen.Entries);
  W.u64(S.Seen.Capacity);
  W.u64(S.Seen.Lookups);
  W.u64(S.Seen.Probes);
  W.u64(S.ForkInsertNew);
  W.u64(S.ForkInsertDup);
  W.u64(S.ConvergenceChecks);
  W.u64(S.ConvergencePrunes);
  W.u64(S.NewStatesPerDepth.size());
  for (uint64_t V : S.NewStatesPerDepth)
    W.u64(V);
}

bool readExploreStats(ByteReader &R, ExploreStats &S) {
  S.Seen.Entries = R.u64();
  S.Seen.Capacity = R.u64();
  S.Seen.Lookups = R.u64();
  S.Seen.Probes = R.u64();
  S.ForkInsertNew = R.u64();
  S.ForkInsertDup = R.u64();
  S.ConvergenceChecks = R.u64();
  S.ConvergencePrunes = R.u64();
  uint64_t N = R.count(8);
  S.NewStatesPerDepth.resize(static_cast<size_t>(N));
  for (uint64_t &V : S.NewStatesPerDepth)
    V = R.u64();
  return R.ok();
}

void writeSpsReport(ByteWriter &W, const SpsReport &S) {
  W.u8(static_cast<uint8_t>(S.Verdict));
  W.str(S.Reason);
  W.u64(S.CounterExamples.size());
  for (const SpsCounterExample &CE : S.CounterExamples) {
    W.u32(CE.Origin);
    W.b(CE.Speculative);
    writeObservation(W, CE.Obs);
    W.u32(CE.TransPC);
    W.u64(CE.Tape.size());
    for (uint64_t T : CE.Tape)
      W.u64(T);
  }
  W.b(S.Complete);
  W.u64(S.TapesRun);
  W.u64(S.RetiresTotal);
  W.f64(S.Seconds);
}

bool readSpsReport(ByteReader &R, SpsReport &S) {
  uint8_t V = R.u8();
  if (!R.ok() || V > static_cast<uint8_t>(SpsVerdict::Inconclusive))
    return false;
  S.Verdict = static_cast<SpsVerdict>(V);
  S.Reason = R.str();
  uint64_t N = R.count(28); // Serialized counterexample minimum size.
  S.CounterExamples.resize(static_cast<size_t>(N));
  for (SpsCounterExample &CE : S.CounterExamples) {
    CE.Origin = R.u32();
    CE.Speculative = R.b();
    if (!readObservation(R, CE.Obs))
      return false;
    CE.TransPC = R.u32();
    uint64_t TapeLen = R.count(8);
    CE.Tape.resize(static_cast<size_t>(TapeLen));
    for (uint64_t &T : CE.Tape)
      T = R.u64();
  }
  S.Complete = R.b();
  S.TapesRun = R.u64();
  S.RetiresTotal = R.u64();
  S.Seconds = R.f64();
  return R.ok();
}

void writeExploreResult(ByteWriter &W, const ExploreResult &E) {
  W.u64(E.Leaks.size());
  for (const LeakRecord &L : E.Leaks)
    writeLeakRecord(W, L);
  W.u64(E.LeakEvents);
  W.u64(E.SchedulesCompleted);
  W.u64(E.TotalSteps);
  W.u64(E.PrunedNodes);
  W.u64(E.Steals);
  W.u64(E.ReplaySteps);
  W.u64(E.Checkpoints);
  W.u64(E.ReusePrunedNodes);
  W.u64(E.ConfigsForked);
  W.u64(E.RobBytesCopied);
  W.u64(E.RobBytesFlat);
  // SeenExport is a cross-exploration table handle; wireable() keeps it
  // out of serialized requests, so results never carry one either.
  W.b(E.Stats.has_value());
  if (E.Stats)
    writeExploreStats(W, *E.Stats);
  W.b(E.Truncated);
}

bool readExploreResult(ByteReader &R, ExploreResult &E) {
  uint64_t N = R.count(16); // Two schedule counts minimum per record.
  E.Leaks.resize(static_cast<size_t>(N));
  for (LeakRecord &L : E.Leaks)
    if (!readLeakRecord(R, L))
      return false;
  E.LeakEvents = R.u64();
  E.SchedulesCompleted = R.u64();
  E.TotalSteps = R.u64();
  E.PrunedNodes = R.u64();
  E.Steals = R.u64();
  E.ReplaySteps = R.u64();
  E.Checkpoints = R.u64();
  E.ReusePrunedNodes = R.u64();
  E.ConfigsForked = R.u64();
  E.RobBytesCopied = R.u64();
  E.RobBytesFlat = R.u64();
  if (R.b()) {
    E.Stats.emplace();
    if (!readExploreStats(R, *E.Stats))
      return false;
  }
  E.Truncated = R.b();
  return R.ok();
}

} // namespace

// ---------------------------------------------------------- public: program ---

void sct::writeProgram(ByteWriter &W, const Program &P) {
  W.u32(P.numRegs());
  for (unsigned I = 0; I < P.numRegs(); ++I)
    W.str(P.regName(Reg(static_cast<uint16_t>(I))));
  W.u64(P.text().size());
  for (const Instruction &I : P.text())
    writeInstruction(W, I);
  W.u64(P.regions().size());
  for (const MemRegion &M : P.regions()) {
    W.str(M.Name);
    W.u64(M.Base);
    W.u64(M.Size);
    W.u64(M.RegionLabel.mask());
  }
  W.u64(P.regInits().size());
  for (const auto &[R, V] : P.regInits()) {
    W.u16(R.id());
    W.u64(V);
  }
  W.u64(P.memInits().size());
  for (const auto &[A, V] : P.memInits()) {
    W.u64(A);
    W.u64(V);
  }
  W.u64(P.codeLabels().size());
  for (const auto &[Name, N] : P.codeLabels()) {
    W.str(Name);
    W.u32(N);
  }
  W.u32(P.entry());
}

std::optional<Program> sct::readProgram(ByteReader &R) {
  uint32_t NumRegs = R.u32();
  if (!R.ok() || NumRegs < Reg::FirstUserId || NumRegs > UINT16_MAX)
    return std::nullopt;
  // ProgramBuilder pre-declares the reserved pair; the stream must agree.
  ProgramBuilder B;
  for (uint32_t I = 0; I < NumRegs; ++I) {
    std::string Name = R.str();
    if (!R.ok())
      return std::nullopt;
    if (I == Reg::SpId || I == Reg::TmpId) {
      if (Name != (I == Reg::SpId ? "rsp" : "rtmp"))
        return std::nullopt;
      continue;
    }
    if (B.reg(Name).id() != I)
      return std::nullopt; // Duplicate or out-of-order register name.
  }
  uint64_t TextLen = R.count(5); // kind + next at minimum.
  if (TextLen > UINT32_MAX)
    return std::nullopt;
  for (uint64_t I = 0; I < TextLen; ++I) {
    std::optional<Instruction> Ins = readInstruction(R, NumRegs);
    if (!Ins)
      return std::nullopt;
    B.raw(std::move(*Ins));
  }
  uint64_t NumRegions = R.count(8);
  for (uint64_t I = 0; I < NumRegions; ++I) {
    std::string Name = R.str();
    uint64_t Base = R.u64(), Size = R.u64(), Mask = R.u64();
    if (!R.ok())
      return std::nullopt;
    B.region(Name, Base, Size, Label::fromMask(Mask));
  }
  uint64_t NumRegInits = R.count(10);
  for (uint64_t I = 0; I < NumRegInits; ++I) {
    uint16_t Id = R.u16();
    uint64_t V = R.u64();
    if (!R.ok() || Id >= NumRegs)
      return std::nullopt;
    B.init(Reg(Id), V);
  }
  uint64_t NumMemInits = R.count(16);
  for (uint64_t I = 0; I < NumMemInits; ++I) {
    uint64_t A = R.u64(), V = R.u64();
    if (!R.ok())
      return std::nullopt;
    B.data(A, {V});
  }
  uint64_t NumLabels = R.count(12);
  for (uint64_t I = 0; I < NumLabels; ++I) {
    std::string Name = R.str();
    PC N = R.u32();
    if (!R.ok() || N > TextLen)
      return std::nullopt;
    B.labelAtPC(Name, N);
  }
  PC Entry = R.u32();
  if (!R.ok() || (Entry != 0 && Entry > TextLen))
    return std::nullopt;
  B.entryPC(Entry);
  return B.build();
}

// ---------------------------------------------------------- public: options ---

void sct::writeExplorerOptions(ByteWriter &W, const ExplorerOptions &O) {
  W.u32(O.SpeculationBound);
  W.b(O.ExploreForwardingHazards);
  W.b(O.ExhaustiveForwardForks);
  W.u32(O.MaxBranchDepth);
  W.b(O.ExploreAliasPrediction);
  W.u64(O.IndirectTargets.size());
  for (PC N : O.IndirectTargets)
    W.u32(N);
  W.u64(O.RsbUnderflowTargets.size());
  for (PC N : O.RsbUnderflowTargets)
    W.u32(N);
  W.u64(O.MaxSchedules);
  W.u64(O.MaxStepsPerSchedule);
  W.u64(O.MaxTotalSteps);
  W.u64(O.MaxLeaks);
  W.b(O.StopAtFirstLeak);
  W.u32(O.Threads);
  W.u8(static_cast<uint8_t>(O.Snapshots));
  W.u32(O.CheckpointInterval);
  W.u32(O.Shards);
  W.b(O.RecordCheckpointChain);
  W.b(O.PruneSeen);
  W.b(O.ExportSeenStates);
  // `Reuse` is a live table handle, not data; wireable() gates it out.
  W.b(O.FromScratchHashing);
  W.b(O.CollectStats);
}

bool sct::readExplorerOptions(ByteReader &R, ExplorerOptions &O) {
  O.SpeculationBound = R.u32();
  O.ExploreForwardingHazards = R.b();
  O.ExhaustiveForwardForks = R.b();
  O.MaxBranchDepth = R.u32();
  O.ExploreAliasPrediction = R.b();
  uint64_t NI = R.count(4);
  O.IndirectTargets.resize(static_cast<size_t>(NI));
  for (PC &N : O.IndirectTargets)
    N = R.u32();
  uint64_t NR = R.count(4);
  O.RsbUnderflowTargets.resize(static_cast<size_t>(NR));
  for (PC &N : O.RsbUnderflowTargets)
    N = R.u32();
  O.MaxSchedules = R.u64();
  O.MaxStepsPerSchedule = R.u64();
  O.MaxTotalSteps = R.u64();
  O.MaxLeaks = static_cast<size_t>(R.u64());
  O.StopAtFirstLeak = R.b();
  O.Threads = R.u32();
  uint8_t Snap = R.u8();
  if (!R.ok() || Snap > static_cast<uint8_t>(SnapshotPolicy::Hybrid))
    return false;
  O.Snapshots = static_cast<SnapshotPolicy>(Snap);
  O.CheckpointInterval = R.u32();
  O.Shards = R.u32();
  O.RecordCheckpointChain = R.b();
  O.PruneSeen = R.b();
  O.ExportSeenStates = R.b();
  O.FromScratchHashing = R.b();
  O.CollectStats = R.b();
  return R.ok();
}

void sct::writeMachineOptions(ByteWriter &W, const MachineOptions &O) {
  W.u8(static_cast<uint8_t>(O.Addressing));
  W.b(O.StackGrowsDown);
  W.u64(O.StackStep);
  W.u8(static_cast<uint8_t>(O.RsbOnEmpty));
  W.u32(O.RsbCircularSize);
}

bool sct::readMachineOptions(ByteReader &R, MachineOptions &O) {
  uint8_t Addr = R.u8();
  if (!R.ok() || Addr > static_cast<uint8_t>(AddrMode::BaseIndexScale))
    return false;
  O.Addressing = static_cast<AddrMode>(Addr);
  O.StackGrowsDown = R.b();
  O.StackStep = R.u64();
  uint8_t Rsb = R.u8();
  if (!R.ok() || Rsb > static_cast<uint8_t>(RsbPolicy::Circular))
    return false;
  O.RsbOnEmpty = static_cast<RsbPolicy>(Rsb);
  O.RsbCircularSize = R.u32();
  return R.ok();
}

void sct::writePassConfig(ByteWriter &W, const PassConfig &P) {
  W.b(P.MinimizeWitnesses);
  writeMinimizeOptions(W, P.Minimize);
  W.b(P.ProveSps);
  writeSpsOptions(W, P.Sps);
}

bool sct::readPassConfig(ByteReader &R, PassConfig &P) {
  P.MinimizeWitnesses = R.b();
  if (!readMinimizeOptions(R, P.Minimize))
    return false;
  P.ProveSps = R.b();
  return readSpsOptions(R, P.Sps);
}

// ---------------------------------------------------------- public: results ---

void sct::writeCheckResult(ByteWriter &W, const CheckResult &Res) {
  W.str(Res.Id);
  writeExploreResult(W, Res.Exploration);
  writeExplorerOptions(W, Res.Opts);
  W.f64(Res.Seconds);
  W.b(Res.Minimization.has_value());
  if (Res.Minimization)
    writeMinimizeStats(W, *Res.Minimization);
  W.b(Res.Sps.has_value());
  if (Res.Sps)
    writeSpsReport(W, *Res.Sps);
  // FromCache is per-lookup state, never stored.
}

bool sct::readCheckResult(ByteReader &R, CheckResult &Res) {
  Res.Id = R.str();
  if (!readExploreResult(R, Res.Exploration))
    return false;
  if (!readExplorerOptions(R, Res.Opts))
    return false;
  Res.Seconds = R.f64();
  if (R.b()) {
    Res.Minimization.emplace();
    if (!readMinimizeStats(R, *Res.Minimization))
      return false;
  }
  if (R.b()) {
    Res.Sps.emplace();
    if (!readSpsReport(R, *Res.Sps))
      return false;
  }
  return R.ok();
}

// ----------------------------------------------------- public: keys/payloads ---

bool sct::wireable(const CheckRequest &Req) {
  return !Req.Init && !Req.Opts.Reuse && !Req.Opts.ExportSeenStates;
}

uint64_t sct::hashBytes(std::span<const uint8_t> Bytes) {
  uint64_t H = HashSeed;
  size_t I = 0;
  for (; I + 8 <= Bytes.size(); I += 8) {
    uint64_t Word;
    std::memcpy(&Word, Bytes.data() + I, 8);
    H = hashCombine(H, Word);
  }
  uint64_t Tail = 0;
  for (unsigned B = 0; I < Bytes.size(); ++I, ++B)
    Tail |= static_cast<uint64_t>(Bytes[I]) << (8 * B);
  H = hashCombine(H, Tail);
  return hashCombine(H, Bytes.size());
}

uint64_t sct::programHash(const Program &P) {
  ByteWriter W;
  writeProgram(W, P);
  return hashBytes(W.buffer());
}

uint64_t sct::optionsFingerprint(const ExplorerOptions &EOpts,
                                 const MachineOptions &MOpts,
                                 const PassConfig &Passes) {
  // Normalize the execution knobs the determinism contract proves
  // irrelevant to the verdict: thread count and frontier sharding.
  // Everything else — budgets, attacker power, snapshot policy, pass
  // configuration — is behavior-affecting and must stay in (the cache-key
  // completeness invariant, docs/ARCHITECTURE.md).
  ExplorerOptions Norm = EOpts;
  Norm.Threads = 0;
  Norm.Shards = 0;
  ByteWriter W;
  W.u32(SerializationFormatVersion);
  writeExplorerOptions(W, Norm);
  writeMachineOptions(W, MOpts);
  writePassConfig(W, Passes);
  return hashBytes(W.buffer());
}

std::vector<uint8_t> sct::serializeWireRequest(const CheckRequest &Req,
                                               const PassConfig &Passes) {
  ByteWriter W;
  W.u32(SerializationFormatVersion);
  W.str(Req.Id);
  writeProgram(W, Req.Prog);
  writeExplorerOptions(W, Req.Opts);
  writeMachineOptions(W, Req.MOpts);
  writePassConfig(W, Passes);
  return W.take();
}

std::optional<WireRequest>
sct::deserializeWireRequest(std::span<const uint8_t> Payload) {
  ByteReader R(Payload);
  if (R.u32() != SerializationFormatVersion)
    return std::nullopt;
  WireRequest Req;
  Req.Id = R.str();
  std::optional<Program> P = readProgram(R);
  if (!P)
    return std::nullopt;
  Req.Prog = std::move(*P);
  if (!readExplorerOptions(R, Req.Opts) || !readMachineOptions(R, Req.MOpts) ||
      !readPassConfig(R, Req.Passes) || !R.done())
    return std::nullopt;
  return Req;
}

std::vector<uint8_t> sct::serializeCheckResult(const CheckResult &Res) {
  ByteWriter W;
  W.u32(SerializationFormatVersion);
  writeCheckResult(W, Res);
  return W.take();
}

std::optional<CheckResult>
sct::deserializeCheckResult(std::span<const uint8_t> Payload) {
  ByteReader R(Payload);
  if (R.u32() != SerializationFormatVersion)
    return std::nullopt;
  CheckResult Res;
  if (!readCheckResult(R, Res) || !R.done())
    return std::nullopt;
  return Res;
}

std::string sct::defaultWorkerBinary() {
  if (const char *Env = std::getenv("SCT_WORKER_BIN"))
    return Env;
  char Buf[4096];
  ssize_t Len = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (Len <= 0)
    return "sctworker";
  Buf[Len] = '\0';
  std::string Path(Buf);
  size_t Slash = Path.rfind('/');
  if (Slash == std::string::npos)
    return "sctworker";
  return Path.substr(0, Slash + 1) + "sctworker";
}
