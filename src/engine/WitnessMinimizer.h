//===- engine/WitnessMinimizer.h - Minimal leak witnesses ------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Witness minimization: shrink a leaking directive schedule to a short,
/// readable attack.  The explorer's raw witnesses are full exploration
/// prefixes — every directive the engine issued on the path from the
/// initial configuration to the leaking step, frequently hundreds or
/// thousands of directives on real trees — while the *attack* they
/// contain is usually a handful: mispredict one branch, fetch the gadget
/// loads, execute them.  Pitchfork reports exactly such attack schedules;
/// this pass recovers them from ours.
///
/// The algorithm is delta debugging (Zeller's ddmin) over the directive
/// sequence, specialized to the semantics in two ways:
///
///  - **Buffer-index repair.**  Reorder-buffer indices are monotone over a
///    run, so deleting a fetch shifts the index of every later-allocated
///    entry.  A naive ddmin candidate would then issue `execute i` against
///    the wrong entry and almost always fail, trapping the search at the
///    raw schedule.  The minimizer records how many buffer slots each
///    fetch directive allocated when the current schedule last replayed,
///    cascades the deletion of a fetch to every directive that names one
///    of its entries, and renumbers the surviving `execute` directives.
///  - **Per-directive canonicalization.**  After ddmin reaches a
///    1-minimal schedule, each remaining directive is rewritten to the
///    simplest form that still reproduces the leak: plain `fetch` or
///    `retire` over the fork directives (`fetch: b`, `fetch: n`), plain
///    `execute i` over `execute i : addr/value/fwd j`.  The surviving
///    fork directives are exactly the predictions the attack needs.
///
/// Candidates are validated by lenient replay through `Machine::step`:
/// inapplicable directives are skipped (garbage-collecting whatever a
/// deletion or guess-flip orphaned), and a candidate counts as
/// reproducing iff some step emits a secret-labelled observation whose
/// `LeakRecord::key()` — origin, observation kind, rule, taint mask —
/// equals the original leak's.  What gets adopted is the *effective*
/// schedule — exactly the directives that applied, truncated at the
/// reproducing step — which by construction replays strictly,
/// end-to-end, to the same leak; soundness never depends on the repair
/// heuristics.  ddmin + canonicalization iterate to a fixpoint, so
/// minimization is idempotent (minimizing a minimized witness returns it
/// unchanged), budget permitting.
///
/// Every candidate costs one replay of at most |schedule| machine steps;
/// `MinimizeOptions::MaxReplays` bounds the total per witness.  When the
/// budget runs out the best schedule found so far is returned — it is
/// still a valid witness, just possibly not 1-minimal.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_ENGINE_WITNESSMINIMIZER_H
#define SCT_ENGINE_WITNESSMINIMIZER_H

#include "sched/ScheduleExplorer.h"

namespace sct {

/// Minimization knobs.
struct MinimizeOptions {
  /// Replay budget per witness: each candidate schedule costs one replay.
  /// ddmin needs O(n log n) replays on well-behaved inputs and O(n^2) in
  /// the worst case; the default comfortably minimizes every witness in
  /// the repo's suites.
  uint64_t MaxReplays = 1 << 14;
  /// Run the per-directive canonicalization pass after ddmin.
  bool Canonicalize = true;
  /// Upper bound on ddmin+canonicalization fixpoint iterations (each pass
  /// is a no-op once the schedule is stable; this is a safety rail, not a
  /// tuning knob).
  unsigned MaxPasses = 8;
};

/// What one (or an aggregated batch of) minimization(s) did.
struct MinimizeStats {
  /// Directives in the raw witness prefix(es).
  uint64_t RawDirectives = 0;
  /// Directives in the minimized schedule(s).
  uint64_t MinimizedDirectives = 0;
  /// Candidate replays spent.
  uint64_t Replays = 0;
  /// True iff some witness hit MaxReplays before reaching a fixpoint (its
  /// minimized schedule is valid but possibly not 1-minimal).
  bool BudgetExhausted = false;
};

/// Minimizes \p L's witness schedule against \p M from \p Init.  Returns
/// a schedule that strictly replays to an observation with the identical
/// `LeakRecord::key()`; empty only if even the raw schedule fails to
/// reproduce (never the case for explorer-produced witnesses) or the
/// budget is exhausted before the first replay.  \p Stats, when non-null,
/// accumulates (does not reset) counters so batch callers can aggregate.
Schedule minimizeWitness(const Machine &M, const Configuration &Init,
                         const LeakRecord &L,
                         const MinimizeOptions &Opts = {},
                         MinimizeStats *Stats = nullptr);

/// Minimizes every leak in \p Leaks in place, filling each
/// `LeakRecord::MinSched`; returns the aggregated stats.
MinimizeStats minimizeWitnesses(const Machine &M, const Configuration &Init,
                                std::vector<LeakRecord> &Leaks,
                                const MinimizeOptions &Opts = {});

} // namespace sct

#endif // SCT_ENGINE_WITNESSMINIMIZER_H
