//===- engine/WitnessMinimizer.h - Minimal leak witnesses ------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Witness minimization: shrink a leaking directive schedule to a short,
/// readable attack.  The explorer's raw witnesses are full exploration
/// prefixes — every directive the engine issued on the path from the
/// initial configuration to the leaking step, frequently hundreds or
/// thousands of directives on real trees — while the *attack* they
/// contain is usually a handful: mispredict one branch, fetch the gadget
/// loads, execute them.  Pitchfork reports exactly such attack schedules;
/// this pass recovers them from ours.
///
/// The algorithm is delta debugging (Zeller's ddmin) over the directive
/// sequence, specialized to the semantics in three ways:
///
///  - **Excursion slicing.**  Before chunk ddmin runs, a dedicated pass
///    deletes an entire wrong-path excursion as one candidate: the
///    misprediction fetch is flipped to the resolving prediction, every
///    wrong-path fetch and transient execute between it and the rollback
///    is dropped, and the rollback execute is kept (it now resolves
///    correct — the machine re-inserts the resolved jump at the same
///    buffer index either way, so the post-rollback suffix replays
///    verbatim).  ddmin removes the same junk one cascading deletion at a
///    time; the slice removes it in one replay per excursion, which is
///    what cuts nested-speculation witnesses down fast.
///  - **Buffer-index repair.**  Reorder-buffer indices are monotone over a
///    run, so deleting a fetch shifts the index of every later-allocated
///    entry.  A naive ddmin candidate would then issue `execute i` against
///    the wrong entry and almost always fail, trapping the search at the
///    raw schedule.  The minimizer records how many buffer slots each
///    fetch directive allocated when the current schedule last replayed,
///    cascades the deletion of a fetch to every directive that names one
///    of its entries, and renumbers the surviving `execute` directives.
///  - **Per-directive canonicalization.**  After ddmin reaches a
///    1-minimal schedule, each remaining directive is rewritten to the
///    simplest form that still reproduces the leak: plain `fetch` or
///    `retire` over the fork directives (`fetch: b`, `fetch: n`), plain
///    `execute i` over `execute i : addr/value/fwd j`.  The surviving
///    fork directives are exactly the predictions the attack needs.
///
/// Candidates are validated by lenient replay through `Machine::step`:
/// inapplicable directives are skipped (garbage-collecting whatever a
/// deletion or guess-flip orphaned), and a candidate counts as
/// reproducing iff some step emits a secret-labelled observation whose
/// `LeakRecord::key()` — origin, observation kind, rule, taint mask —
/// equals the original leak's.  What gets adopted is the *effective*
/// schedule — exactly the directives that applied, truncated at the
/// reproducing step — which by construction replays strictly,
/// end-to-end, to the same leak; soundness never depends on the repair
/// heuristics.  Slicing + ddmin + canonicalization iterate to a fixpoint,
/// so minimization is idempotent (minimizing a minimized witness returns
/// it unchanged), budget permitting.
///
/// **Checkpoint-seeded replays.**  Every candidate differs from the
/// current schedule only from its first edited position onward, so the
/// replay needs the state *at* that position, not a walk from the initial
/// configuration.  The minimizer keeps a ladder of mid-schedule
/// checkpoints — seeded by the explorer's `SnapshotPolicy::Hybrid`
/// checkpoint chain threaded through `LeakRecord::Ckpt`, and densified
/// lazily with rungs recorded every `MinimizeOptions::SeedInterval` kept
/// directives while prefixes replay — and starts each candidate replay
/// from the newest rung at or below the candidate's first edit (the
/// prefix-validity bar: a rung is only used when the candidate has not
/// edited any directive at or before it; rungs above an adopted edit are
/// discarded).  Seeding changes which machine steps run, never the
/// outcome: the skipped prefix is byte-identical to the current
/// schedule's, which is known to replay strictly with its only
/// target-key observation at its final step.  `MinimizeStats` reports
/// the steps executed and the steps seeding skipped.
///
/// **Suffix convergence.**  Seeding removes the *prefix* a candidate
/// shares with the current witness; the mirror-image optimization removes
/// the shared *suffix*.  Every successful replay records the incremental
/// state fingerprint after each kept directive, so the adopted witness
/// carries a per-position hash stream.  When a later candidate's replay
/// reaches a state whose fingerprint matches position p of that stream
/// and the candidate's remaining directives equal the witness's remaining
/// suffix `Cur[p..]`, the replay stops: the witness already proved that
/// suffix replays strictly from that state to the target leak, so the
/// candidate adopts `applied-prefix + Cur[p..]` unexecuted (see
/// `MinimizeOptions::SuffixConverge` for the fingerprint caveat and
/// `MinimizeStats::SuffixSkippedSteps` for the win).
///
/// Every candidate costs one replay of at most |schedule| machine steps;
/// `MinimizeOptions::MaxReplays` bounds the total per witness.  When the
/// budget runs out the best schedule found so far is returned — it is
/// still a valid witness, just possibly not 1-minimal.
///
/// **Parallel minimization.**  The per-leak searches are independent, so
/// `minimizeWitnesses` drains them as jobs from the same work-stealing
/// deques the explorer's frontier uses (sched/WorkDeque.h) when
/// `MinimizeOptions::Threads > 1`: each worker owns a deque of leak
/// indices, steals half a random victim's when dry, and replays through
/// its own per-worker `Configuration`s (copy-on-write forks of the shared
/// initial state).  Each leak's result is a pure function of (machine,
/// initial configuration, leak, options), so the minimized schedules are
/// byte-identical at any thread count; `Threads <= 1` keeps the
/// deterministic sequential order.  Per-worker `MinimizeStats` merge by
/// summation, which is order-independent.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_ENGINE_WITNESSMINIMIZER_H
#define SCT_ENGINE_WITNESSMINIMIZER_H

#include "sched/ScheduleExplorer.h"

namespace sct {

/// Minimization knobs.
struct MinimizeOptions {
  /// Replay budget per witness: each candidate schedule costs one replay
  /// (seeded or not — seeding shortens a replay, it does not refund one).
  /// ddmin needs O(n log n) replays on well-behaved inputs and O(n^2) in
  /// the worst case; the default comfortably minimizes every witness in
  /// the repo's suites.
  uint64_t MaxReplays = 1 << 14;
  /// Run the per-directive canonicalization pass after ddmin.
  bool Canonicalize = true;
  /// Run the excursion slice pass before each ddmin pass.
  bool SliceExcursions = true;
  /// After the slice+ddmin+canonicalize fixpoint, run a polish round that
  /// hops basins: each surviving branch guess is flipped at *equal*
  /// length (the fixpoint's guess-flips only ever adopt strict shrinks)
  /// and the no-slice passes rerun from there; the polished schedule is
  /// kept only if strictly shorter, else the fixpoint result is restored
  /// byte-for-byte.  Closes the ±2-directive gap the slice pass's own
  /// 1-minimal fixpoint can leave against the no-slice optimum on some
  /// bloated witnesses (same leak key; never longer; idempotence
  /// preserved by the restore).
  bool SlicePolish = true;
  /// Seed candidate replays from mid-schedule checkpoints (the explorer's
  /// hybrid chain via `LeakRecord::Ckpt` plus self-recorded rungs)
  /// instead of always replaying from the initial configuration.  Off
  /// reproduces the from-initial replay cost exactly; the minimized
  /// schedules are identical either way.
  bool SeedReplays = true;
  /// Early-accept a candidate replay as soon as its state *rejoins* the
  /// adopted witness's state stream — fingerprint equality against the
  /// per-position hashes recorded along the current witness — at a
  /// position whose remaining directives are byte-identical to the
  /// candidate's remaining suffix.  The rest of the replay is then known:
  /// the adopted witness already proved that exact suffix replays
  /// strictly from that exact state to the leak, so the candidate adopts
  /// `applied-prefix + witness-suffix` without executing the suffix
  /// again.  ddmin and canonicalize candidates edit a few positions and
  /// keep long common tails, so most of their replay cost is this
  /// re-execution; the rejoin check makes it O(1) per step (the
  /// fingerprints are the engine's incremental hashes).  A hit still
  /// counts one replay against MaxReplays and the minimized schedules
  /// are byte-identical either way — only executed steps drop
  /// (MinimizeStats::SuffixSkippedSteps).  Validity of a hit rests on
  /// 64-bit fingerprint equality, the same avalanched-hash caveat as the
  /// explorer's seen-state pruning; off restores the pure strict-replay
  /// oracle.
  bool SuffixConverge = true;
  /// Remember failed candidates (exact directive sequences) and skip
  /// their replays when the fixpoint loop re-proposes them — the
  /// verification pass and canonicalize retries are then nearly free.
  /// A memo hit still counts against MaxReplays, so the search visits
  /// the same candidates in the same order with the memo on or off and
  /// the minimized schedules are identical either way.
  bool MemoizeCandidates = true;
  /// Record a ladder rung every this many kept directives while a
  /// candidate's unedited prefix replays (0 is treated as 1).  Smaller =
  /// denser seeding, more checkpoint copies; the default follows the
  /// committed BENCH_MINIMIZER.json sweep.
  unsigned SeedInterval = 4;
  /// Worker threads for `minimizeWitnesses` batches: 0 or 1 minimizes
  /// leaks sequentially in order; N > 1 drains per-leak jobs from
  /// work-stealing deques.  0 additionally means "unset" to CheckSession,
  /// which substitutes the session's frontier thread share.
  unsigned Threads = 0;
  /// Upper bound on slice+ddmin+canonicalization fixpoint iterations
  /// (each pass is a no-op once the schedule is stable; this is a safety
  /// rail, not a tuning knob).
  unsigned MaxPasses = 8;
};

/// What one (or an aggregated batch of) minimization(s) did.
struct MinimizeStats {
  /// Directives in the raw witness prefix(es).
  uint64_t RawDirectives = 0;
  /// Directives in the minimized schedule(s).
  uint64_t MinimizedDirectives = 0;
  /// Candidate replays spent.
  uint64_t Replays = 0;
  /// Machine steps actually executed across all candidate replays.
  uint64_t ReplayedSteps = 0;
  /// Directives checkpoint seeding skipped instead of re-executing (the
  /// from-initial baseline would have replayed these too).
  uint64_t SeededSteps = 0;
  /// Wrong-path excursions removed by the slice pass.
  uint64_t SlicedExcursions = 0;
  /// Candidate replays early-accepted by a suffix-convergence rejoin
  /// (MinimizeOptions::SuffixConverge).
  uint64_t SuffixConvergences = 0;
  /// Directives those rejoins skipped instead of re-executing.
  uint64_t SuffixSkippedSteps = 0;
  /// True iff some witness hit MaxReplays before reaching a fixpoint (its
  /// minimized schedule is valid but possibly not 1-minimal).
  bool BudgetExhausted = false;

  /// Accumulates \p Other (summation — order-independent, so per-worker
  /// stats merge to the same totals at any thread count).
  void merge(const MinimizeStats &Other) {
    RawDirectives += Other.RawDirectives;
    MinimizedDirectives += Other.MinimizedDirectives;
    Replays += Other.Replays;
    ReplayedSteps += Other.ReplayedSteps;
    SeededSteps += Other.SeededSteps;
    SlicedExcursions += Other.SlicedExcursions;
    SuffixConvergences += Other.SuffixConvergences;
    SuffixSkippedSteps += Other.SuffixSkippedSteps;
    BudgetExhausted |= Other.BudgetExhausted;
  }
};

/// Minimizes \p L's witness schedule against \p M from \p Init.  Returns
/// a schedule that strictly replays to an observation with the identical
/// `LeakRecord::key()`; empty only if even the raw schedule fails to
/// reproduce (never the case for explorer-produced witnesses) or the
/// budget is exhausted before the first replay.  \p Stats, when non-null,
/// accumulates (does not reset) counters so batch callers can aggregate.
Schedule minimizeWitness(const Machine &M, const Configuration &Init,
                         const LeakRecord &L,
                         const MinimizeOptions &Opts = {},
                         MinimizeStats *Stats = nullptr);

/// Minimizes every leak in \p Leaks in place, filling each
/// `LeakRecord::MinSched`; returns the aggregated stats.  With
/// `Opts.Threads > 1` the per-leak jobs run on a work-stealing worker
/// pool; the filled schedules are byte-identical to the sequential order
/// (each job is independent and deterministic).
MinimizeStats minimizeWitnesses(const Machine &M, const Configuration &Init,
                                std::vector<LeakRecord> &Leaks,
                                const MinimizeOptions &Opts = {});

} // namespace sct

#endif // SCT_ENGINE_WITNESSMINIMIZER_H
