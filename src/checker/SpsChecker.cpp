//===- checker/SpsChecker.cpp - Sequential proofs of SCT ------------------===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "checker/SpsChecker.h"

#include "checker/SequentialCt.h"
#include "core/Machine.h"
#include "sched/SequentialScheduler.h"

#include <algorithm>
#include <chrono>
#include <set>

using namespace sct;

namespace {

/// Loads one oracle tape into an initial configuration: word i of the
/// tape at OracleBase + i, public (the attacker chooses predictions, so
/// the oracle is attacker-visible data).  Unwritten words read as the
/// region default (0: "predict correctly").
Configuration initWithTape(const Program &Phat, uint64_t OracleBase,
                           const std::vector<uint64_t> &Tape) {
  Configuration C = Configuration::initial(Phat);
  for (size_t I = 0; I < Tape.size(); ++I)
    C.Mem.store(OracleBase + I, Value::pub(Tape[I]));
  return C;
}

/// Replays a recorded schedule step by step to attribute each secret
/// observation to the P̂ program point that emitted it.  The sequential
/// run itself only records (directive, observation); origins live in the
/// transients, so we re-execute and peek at the buffer before each step.
struct AttributedLeak {
  PC PhatPc;
  Observation Obs;
};

std::vector<AttributedLeak> attributeLeaks(const Machine &M,
                                           Configuration C,
                                           const Schedule &Sched) {
  std::vector<AttributedLeak> Out;
  for (const Directive &D : Sched) {
    PC Origin = 0;
    if (D.isFetch())
      Origin = C.N;
    else if (D.isExecute() && C.Buf.contains(D.Idx))
      Origin = C.Buf.at(D.Idx).Origin;
    else if (D.isRetire() && !C.Buf.empty())
      Origin = C.Buf.at(C.Buf.minIndex()).Origin;
    auto Step = M.step(C, D);
    if (!Step)
      break; // Replay diverged — callers treat missing leaks as harness.
    if (Step->Obs.isSecret())
      Out.push_back({Origin, Step->Obs});
  }
  return Out;
}

} // namespace

bool SpsReport::hasCounterExampleAt(PC Origin) const {
  return std::any_of(CounterExamples.begin(), CounterExamples.end(),
                     [&](const SpsCounterExample &CE) {
                       return CE.Origin == Origin;
                     });
}

SpsReport sct::checkSps(const Program &P, const ExplorerOptions &EOpts,
                        const MachineOptions &MOpts, const SpsOptions &Opts) {
  auto Start = std::chrono::steady_clock::now();
  SpsReport Rep;
  auto Finish = [&](SpsReport &&R) {
    R.Seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              Start)
                    .count();
    return std::move(R);
  };

  // Proof-strength depth: widen the consult gate to the speculation
  // window before translating, so the depth clip cannot force
  // Inconclusive (see SpsOptions::DepthToWindow).
  ExplorerOptions TOpts = EOpts;
  if (Opts.DepthToWindow)
    TOpts.MaxBranchDepth = std::max(TOpts.MaxBranchDepth,
                                    TOpts.SpeculationBound);

  std::string Why;
  if (!SpsTranslator::supports(P, TOpts, MOpts, &Why)) {
    Rep.Reason = "unsupported fragment: " + Why;
    return Finish(std::move(Rep));
  }

  // T owns P̂; the Machine holds a reference, so T must outlive M.
  SpsTranslation T = SpsTranslator::translate(P, TOpts, MOpts);
  Machine M(T.Prog, MOpts);

  // Lazy-oracle DFS over misprediction tapes.
  std::vector<std::vector<uint64_t>> Work{{}};
  std::set<std::pair<PC, bool>> SeenCe;
  bool CovIncomplete = false;

  while (!Work.empty()) {
    if (Rep.TapesRun >= Opts.MaxTapes) {
      Rep.Reason = "tape budget exhausted (" +
                   std::to_string(Opts.MaxTapes) + " tapes)";
      Rep.Verdict = Rep.CounterExamples.empty() ? SpsVerdict::Inconclusive
                                                : SpsVerdict::CounterExample;
      if (!Rep.CounterExamples.empty())
        Rep.Reason = "counterexample set truncated: " + Rep.Reason;
      return Finish(std::move(Rep));
    }

    std::vector<uint64_t> Tape = std::move(Work.back());
    Work.pop_back();
    ++Rep.TapesRun;

    Configuration Init = initWithTape(T.Prog, T.OracleBase, Tape);
    SequentialResult R = runSequential(M, Init, Opts.MaxRetiresPerTape);
    Rep.RetiresTotal += R.Run.Retires;

    if (R.HitBound || R.Run.Stuck) {
      Rep.Reason = R.Run.Stuck
                       ? ("P\xcc\x82 run stuck: " + R.Run.StuckReason)
                       : "per-tape retire bound hit (non-terminating tape)";
      return Finish(std::move(Rep));
    }

    uint64_t Cursor = R.Run.Final.Regs.get(T.OracleCursor).Bits;
    uint64_t Consults = Cursor >= T.OracleBase ? Cursor - T.OracleBase : 0;
    bool Valid = R.Run.Final.Regs.get(T.ValidFlag).Bits != 0;
    bool Cov = R.Run.Final.Regs.get(T.CovFlag).Bits != 0;

    if (!Valid) {
      // A source access strayed into harness address space: the harness
      // regions alias source data and the run's observations are garbage.
      Rep.Reason = "source program touched the harness address space";
      return Finish(std::move(Rep));
    }
    if (!Cov)
      CovIncomplete = true; // Unmodelled event (ret mismatch or a
                            // depth-clipped consult): blocks Proved only.

    if (R.Run.hasSecretObservation()) {
      Configuration Replay = initWithTape(T.Prog, T.OracleBase, Tape);
      auto Leaks = attributeLeaks(M, std::move(Replay), R.Sched);
      bool Mapped = false;
      for (const AttributedLeak &L : Leaks) {
        auto Src = T.srcOf(L.PhatPc);
        if (!Src)
          continue; // Harness machinery: shadowed by a mapped leak.
        Mapped = true;
        bool Spec = T.ModeOf[L.PhatPc] == SpsMode::Spec;
        if (!SeenCe.insert({*Src, Spec}).second)
          continue;
        if (Rep.CounterExamples.size() < Opts.MaxCounterExamples)
          Rep.CounterExamples.push_back({*Src, Spec, L.Obs, L.PhatPc, Tape});
      }
      if (!Mapped) {
        // Secret data reached a pure harness site with no mapped shadow
        // on this tape — outside the faithfulness argument, so refuse to
        // conclude anything rather than mis-attribute.
        Rep.Reason = "secret observation at an unmapped harness site";
        return Finish(std::move(Rep));
      }
      if (Opts.StopAtFirstCounterExample) {
        Rep.Verdict = SpsVerdict::CounterExample;
        Rep.Reason = "stopped at first counterexample";
        return Finish(std::move(Rep));
      }
    }

    // Children: flip each not-yet-pinned consult position to "mispredict".
    for (uint64_t I = Tape.size(); I < Consults; ++I) {
      std::vector<uint64_t> Child(Tape);
      Child.resize(I, 0);
      Child.push_back(1);
      Work.push_back(std::move(Child));
    }
  }

  // Full enumeration within budget.
  Rep.Complete = true;
  if (!Rep.CounterExamples.empty()) {
    Rep.Verdict = SpsVerdict::CounterExample;
  } else if (CovIncomplete) {
    Rep.Reason = "clean but coverage-incomplete (unmodelled ret mismatch "
                 "or depth-clipped oracle consult)";
  } else {
    Rep.Verdict = SpsVerdict::Proved;
  }
  return Finish(std::move(Rep));
}
