//===- checker/SctChecker.cpp - The Pitchfork-style SCT checker -------------===//

#include "checker/SctChecker.h"

using namespace sct;

ExplorerOptions sct::v1v11Mode() {
  ExplorerOptions Opts;
  Opts.SpeculationBound = 250;
  Opts.ExploreForwardingHazards = false;
  return Opts;
}

ExplorerOptions sct::v4Mode() {
  ExplorerOptions Opts;
  Opts.SpeculationBound = 20;
  Opts.ExploreForwardingHazards = true;
  return Opts;
}

SctReport sct::checkSct(const Program &P, const ExplorerOptions &Opts,
                        const MachineOptions &MOpts) {
  Machine M(P, MOpts);
  SctReport R;
  R.Opts = Opts;
  R.Exploration = explore(M, Configuration::initial(P), Opts);
  return R;
}

std::string TwoModeReport::cell() const {
  if (flaggedWithoutForwarding())
    return "x";
  if (flaggedOnlyWithForwarding())
    return "f";
  return "-";
}

TwoModeReport sct::checkSctBothModes(const Program &P,
                                     const MachineOptions &MOpts) {
  TwoModeReport R;
  R.V1V11 = checkSct(P, v1v11Mode(), MOpts);
  R.V4 = checkSct(P, v4Mode(), MOpts);
  return R;
}
