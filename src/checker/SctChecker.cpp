//===- checker/SctChecker.cpp - The Pitchfork-style SCT checker -------------===//

#include "checker/SctChecker.h"

using namespace sct;

ExplorerOptions sct::v1v11Mode() {
  ExplorerOptions Opts;
  Opts.SpeculationBound = 250;
  Opts.ExploreForwardingHazards = false;
  return Opts;
}

ExplorerOptions sct::v4Mode() {
  ExplorerOptions Opts;
  Opts.SpeculationBound = 20;
  Opts.ExploreForwardingHazards = true;
  return Opts;
}

SctReport sct::toReport(CheckResult R) {
  SctReport Rep;
  Rep.Exploration = std::move(R.Exploration);
  Rep.Opts = R.Opts;
  Rep.Seconds = R.Seconds;
  return Rep;
}

SctReport sct::checkSct(const Program &P, const ExplorerOptions &Opts,
                        const MachineOptions &MOpts) {
  SessionOptions SOpts;
  SOpts.Threads = Opts.Threads ? Opts.Threads : 1;
  SOpts.DefaultMOpts = MOpts;
  CheckSession Session(SOpts);
  return toReport(Session.check(P, Opts));
}

std::string TwoModeReport::cell() const {
  if (flaggedWithoutForwarding())
    return "x";
  if (flaggedOnlyWithForwarding())
    return "f";
  return "-";
}

TwoModeReport sct::checkSctBothModes(const Program &P,
                                     const MachineOptions &MOpts,
                                     unsigned Threads) {
  SessionOptions SOpts;
  SOpts.Threads = Threads ? Threads : 1;
  SOpts.DefaultMOpts = MOpts;
  CheckSession Session(SOpts);

  CheckRequest Reqs[2];
  Reqs[0].Id = "v1v11";
  Reqs[0].Prog = P;
  Reqs[0].Opts = v1v11Mode();
  Reqs[0].MOpts = MOpts;
  Reqs[1].Id = "v4";
  Reqs[1].Prog = P;
  Reqs[1].Opts = v4Mode();
  Reqs[1].MOpts = MOpts;

  std::vector<CheckResult> Results =
      Session.checkMany(std::span<const CheckRequest>(Reqs));
  TwoModeReport R;
  R.V1V11 = toReport(std::move(Results[0]));
  R.V4 = toReport(std::move(Results[1]));
  return R;
}
