//===- checker/Mitigation.h - Uniform mitigation interface -----*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The uniform interface every §3.6 / Appendix A.2 countermeasure
/// implements: a named program-to-program transform that reports its
/// static cost and the instruction-index provenance of the relocation
/// (checker/ProgramRewriter.h), or a *structured* refusal when the
/// program cannot be relocated soundly (jump tables whose code pointers
/// were not declared).
///
/// The interface is what makes mitigations first-class for the engine:
/// `engine/MitigationSession.h` checks a baseline, applies any list of
/// Mitigations, re-checks each variant while reusing the baseline's
/// seen-state table through the provenance map, and reports per-leak
/// closure plus placement cost — mitigation quality as *cost*, not just
/// soundness (cf. Serberus, Mosier et al., S&P 2024; the Spectre-defenses
/// SoK, Cauligi et al., S&P 2022).
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CHECKER_MITIGATION_H
#define SCT_CHECKER_MITIGATION_H

#include "checker/ProgramRewriter.h"

#include <string>

namespace sct {

/// Why a transform refused to run.
struct MitigationError {
  enum class Kind : unsigned char {
    /// The program stashes code pointers in data words (or register
    /// inits) that the rewriter was not told about; relocating the text
    /// would silently miscompile every indirect jump through them.
    NotRelocatable,
    /// The transform does not apply to this program/configuration.
    Unsupported,
  };
  Kind K = Kind::Unsupported;
  std::string Message;
  /// NotRelocatable: the data addresses whose initial words look like
  /// undeclared code pointers.
  std::vector<uint64_t> SuspectAddrs;
};

/// Static placement cost of a transform (the dynamic cost — sequential
/// schedule growth — is measured by the engine, which can run programs).
struct MitigationCost {
  /// Instructions the transform added, net.
  unsigned InstructionsAdded = 0;
  /// Fence instructions among them.
  unsigned FencesAdded = 0;
  /// Program points rewritten (fence insertion sites, retpolined jumps).
  unsigned Sites = 0;
};

/// Outcome of applying a Mitigation: either a relocated program with its
/// provenance and cost, or a structured error.
struct MitigationResult {
  Program Prog;       ///< Meaningful iff ok().
  ProvenanceMap Map;  ///< Old/new instruction-index provenance.
  MitigationCost Cost;
  std::optional<MitigationError> Error;

  bool ok() const { return !Error.has_value(); }
};

/// A named program transform intended to close speculative leaks.
class Mitigation {
public:
  virtual ~Mitigation() = default;

  /// Human-readable transform name ("fence@branch-targets", "retpoline").
  virtual std::string name() const = 0;

  /// Applies the transform to \p P.  Must either produce a relocated
  /// program whose architectural behaviour matches \p P's, or a
  /// structured error — never a silently miscompiled program.
  virtual MitigationResult run(const Program &P) const = 0;
};

/// Shared jump-table screening: data words whose initial values land
/// inside the text section *when the program contains indirect control
/// flow* (jmpi/calli) are suspect code pointers.  A transform that
/// relocates code must either be told about them
/// (ProgramRewriter::markCodePointer) or refuse — the old `insertFences`
/// silently miscompiled such programs.  Returns the NotRelocatable error
/// listing the undeclared suspects, or std::nullopt when relocation is
/// safe as far as static screening can tell.  Register inits are *not*
/// screened (small indices would be constant false positives); a
/// register-held code pointer must be declared explicitly
/// (markCodePointerReg) to survive relocation.
std::optional<MitigationError>
checkRelocatable(const Program &P, const std::vector<uint64_t> &DeclaredAddrs);

} // namespace sct

#endif // SCT_CHECKER_MITIGATION_H
