//===- checker/SequentialCt.cpp - Classical constant-time baseline ----------===//

#include "checker/SequentialCt.h"

using namespace sct;

SequentialCtReport sct::checkSequentialCt(const Program &P,
                                          const MachineOptions &MOpts,
                                          size_t MaxRetires) {
  Machine M(P, MOpts);
  SequentialCtReport R;
  R.Seq = runSequential(M, Configuration::initial(P), MaxRetires);
  for (const StepRecord &S : R.Seq.Run.Trace)
    if (S.Obs.isSecret())
      R.Leaks.push_back(S.Obs);
  return R;
}
