//===- checker/DifferentialChecker.h - Definition 3.1, literally -*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Speculative constant-time by its definition (3.1): for low-equivalent
/// configurations C ≃pub C' and any schedule D, the two runs must produce
/// identical observation traces (and remain low-equivalent).  This checker
/// instantiates the secrets of a program with fresh random values to
/// manufacture low-equivalent pairs and replays a schedule on both.
///
/// It cross-validates the label-based checker: every label-flagged leak
/// should be realizable as a concrete trace divergence for some secret
/// pair (taint is an over-approximation, so the converse direction — no
/// divergence found — is only evidence, not proof).
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CHECKER_DIFFERENTIALCHECKER_H
#define SCT_CHECKER_DIFFERENTIALCHECKER_H

#include "engine/CheckSession.h"
#include "sched/Executor.h"

namespace sct {

/// Outcome of running one schedule on a low-equivalent pair.
struct DifferentialOutcome {
  RunResult A;
  RunResult B;
  /// Both runs accepted the same prefix of the schedule and produced
  /// attacker-equal traces.
  bool TracesEqual = false;
  /// Index (into the observation list) of the first divergence.
  size_t FirstDivergence = 0;

  /// A divergence in traces or in schedule well-formedness — a concrete
  /// SCT counterexample.
  bool violation() const { return !TracesEqual; }
};

/// Returns a copy of \p Init whose secret-labelled memory words are
/// replaced by fresh pseudo-random values (seeded by \p Seed); the result
/// is ≃pub-equivalent to \p Init by construction.
Configuration mutateSecrets(const Program &P, const Configuration &Init,
                            uint64_t Seed);

/// Returns a copy of \p Init with every secret-labelled memory word set to
/// \p Bits.  Targeted pairs (e.g. all-0 vs all-42) expose leaks that random
/// sampling rarely hits, such as equality tests against a constant.
Configuration fillSecrets(const Program &P, const Configuration &Init,
                          uint64_t Bits);

/// Runs \p D on \p A and \p B and compares traces step-aligned.
DifferentialOutcome runPair(const Machine &M, Configuration A,
                            Configuration B, const Schedule &D);

/// Differential check of one schedule: tries \p Pairs random secret
/// instantiations against the program's own initial configuration.
/// Returns the first violating outcome, if any.
std::optional<DifferentialOutcome>
checkScheduleDifferentially(const Machine &M, const Schedule &D,
                            unsigned Pairs = 8, uint64_t Seed = 1);

/// Cross-validation of an exploration's witnesses: every label-flagged
/// leak is replayed differentially (random secret pairs plus the targeted
/// all-0 / all-42 pair) and counted as *confirmed* when some pair's traces
/// concretely diverge.  Taint over-approximates, so unconfirmed witnesses
/// are possible false positives — worth human eyes, not proof of one.
struct WitnessValidation {
  size_t Checked = 0;
  size_t Confirmed = 0;
  /// Per-leak verdict, parallel to ExploreResult::Leaks.
  std::vector<bool> PerLeak;

  bool allConfirmed() const { return Confirmed == Checked; }
};

/// \p Base is the configuration the witnesses were explored from; when
/// null, the program's initial configuration.  Witness schedules only
/// replay faithfully from the configuration that produced them.
WitnessValidation validateWitnesses(const Machine &M, const ExploreResult &R,
                                    unsigned Pairs = 8, uint64_t Seed = 1,
                                    const Configuration *Base = nullptr);

/// The engine-integrated differential check: explores \p Req through
/// \p Session, then cross-validates every witness found.
struct DifferentialReport {
  CheckResult Check;
  WitnessValidation Validation;

  bool secure() const { return Check.secure(); }
};

DifferentialReport checkDifferential(const CheckSession &Session,
                                     const CheckRequest &Req,
                                     unsigned Pairs = 8, uint64_t Seed = 1);

/// Cross-validation against the SPS proof backend (checker/SpsChecker.h):
/// the explorer and the sequential proof are independent oracles for the
/// same property, so on a conclusive SPS run every distinct explorer leak
/// origin must reappear among the SPS counterexample origins.  (The
/// converse containment need not hold observation-by-observation — the
/// explorer deduplicates by (origin, kind, rule, taint) while SPS
/// deduplicates by (origin, speculative) — so agreement is checked at
/// origin granularity, exactly the coordinates both sides report.)
struct SpsCrossCheck {
  SpsReport Sps;
  /// Distinct explorer leak origins, sorted.
  std::vector<PC> ExplorerOrigins;
  /// Explorer origins with / without a matching SPS counterexample.
  std::vector<PC> Matched;
  std::vector<PC> Unmatched;
  /// True when no comparison was possible: SPS inconclusive or
  /// incomplete, or the exploration was truncated (its leak set may miss
  /// origins SPS finds, and vice versa — neither side is authoritative).
  bool Skipped = false;
  std::string SkipReason;
  /// Top-level verdict agreement: explorer found leaks iff SPS holds
  /// counterexamples (meaningless when Skipped).
  bool VerdictsAgree = false;

  /// The cross-validation invariant (docs/ARCHITECTURE.md): holds
  /// trivially when skipped, otherwise requires (a) verdict agreement —
  /// explorer leak-free iff SPS proved — and (b) every explorer origin
  /// matched by an SPS counterexample origin.
  bool agrees() const { return Skipped || (VerdictsAgree && Unmatched.empty()); }
};

/// Runs checkSps over \p P under \p EOpts and compares against an
/// exploration's deduplicated leak set.  \p Explored must come from the
/// same (program, options) pair, started from the canonical initial
/// configuration.
SpsCrossCheck crossValidateSps(const Program &P, const ExplorerOptions &EOpts,
                               const ExploreResult &Explored,
                               const MachineOptions &MOpts = {},
                               const SpsOptions &Opts = {});

} // namespace sct

#endif // SCT_CHECKER_DIFFERENTIALCHECKER_H
