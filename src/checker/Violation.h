//===- checker/Violation.h - SCT violation reports -------------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable reports for speculative constant-time violations: the
/// leaking instruction, which secret reaches the observation, and the
/// replayable attacker schedule that witnesses it.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CHECKER_VIOLATION_H
#define SCT_CHECKER_VIOLATION_H

#include "sched/ScheduleExplorer.h"

#include <string>

namespace sct {

/// Renders one leak as a short single-line summary.
std::string summarizeLeak(const Program &P, const LeakRecord &L);

/// Renders one leak in full: summary, the witness schedule, and the
/// replayed directive/effect/leakage table (paper-figure style).  When
/// the leak carries a minimized witness (LeakRecord::MinSched, filled by
/// engine/WitnessMinimizer.h), the table replays that short schedule and
/// the raw prefix is reported by length only.
std::string describeLeak(const Machine &M, const Configuration &Init,
                         const LeakRecord &L);

/// Renders an exploration result: verdict plus one summary line per leak.
std::string describeResult(const Program &P, const ExploreResult &R);

} // namespace sct

#endif // SCT_CHECKER_VIOLATION_H
