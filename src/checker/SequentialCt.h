//===- checker/SequentialCt.h - Classical constant-time baseline -*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classical ("decade-old", §1) constant-time discipline as a checker:
/// run the canonical *sequential* schedule and flag secret-labelled
/// observations — secret branches, secret-indexed accesses.  This is the
/// baseline both motivating examples of §2 satisfy while still leaking
/// speculatively, and Proposition B.11's weaker property (SCT ⟹
/// sequential CT, never the converse).
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CHECKER_SEQUENTIALCT_H
#define SCT_CHECKER_SEQUENTIALCT_H

#include "sched/SequentialScheduler.h"

namespace sct {

/// Verdict of the sequential constant-time baseline.
struct SequentialCtReport {
  SequentialResult Seq;
  /// Secret-labelled observations in program order.
  std::vector<Observation> Leaks;

  bool secure() const { return Leaks.empty(); }
};

/// Runs the canonical sequential schedule of \p P and collects
/// secret-labelled observations.
SequentialCtReport checkSequentialCt(const Program &P,
                                     const MachineOptions &MOpts = {},
                                     size_t MaxRetires = 1 << 20);

} // namespace sct

#endif // SCT_CHECKER_SEQUENTIALCT_H
