//===- checker/SpsTranslator.cpp - Speculation-passing-style form -----------===//

#include "checker/SpsTranslator.h"

#include "isa/ProgramBuilder.h"

#include <cassert>

using namespace sct;

namespace {

/// Harness memory layout, all above SpsTranslation::HarnessBase.  None of
/// these are declared as regions: unwritten harness words read as
/// 0_public, which is exactly the "predict correctly" oracle default.
constexpr uint64_t SaveBase = SpsTranslation::HarnessBase + 0x0000000;
constexpr uint64_t UndoBase = SpsTranslation::HarnessBase + 0x0100000;
constexpr uint64_t ShadowBase = SpsTranslation::HarnessBase + 0x0200000;
constexpr uint64_t TableSeqBase = SpsTranslation::HarnessBase + 0x0300000;
constexpr uint64_t TableSpecBase = SpsTranslation::HarnessBase + 0x0400000;
constexpr uint64_t OracleBase = SpsTranslation::HarnessBase + 0x0500000;

std::string q(PC P) { return "q" + std::to_string(P); }
std::string s(PC P) { return "s" + std::to_string(P); }

/// Emits the SPS program and records block spans for provenance.
class Emitter {
public:
  Emitter(const Program &P, const ExplorerOptions &EOpts,
          const MachineOptions &MOpts)
      : P(P), End(P.endPC()), Bound(EOpts.SpeculationBound),
        Depth(EOpts.MaxBranchDepth), MOpts(MOpts) {
    // Excursions exist at all only if the explorer may both guess wrong
    // and fetch the mispredicted branch; a wrong path with instructions
    // in it additionally needs window room past the branch itself.
    HaveExcursions = Depth >= 1 && Bound >= 1;
    HasSpecBody = HaveExcursions && Bound >= 2;
  }

  SpsTranslation run();

private:
  const Program &P;
  const PC End;
  const unsigned Bound, Depth;
  const MachineOptions MOpts;
  bool HaveExcursions, HasSpecBody;

  ProgramBuilder B;

  // Harness registers (created after the source registers so source
  // operand ids stay valid verbatim).
  Reg OCur, Valid, Cov, ShIdx, UCur, Fuel, DepthR, Res, A, V, W, T, C;
  std::vector<Reg> Saved; // source regs + ShIdx, spilled per excursion

  struct Span {
    std::string Lbl;
    PC Src; // ProvenanceMap::None for harness blocks
    SpsMode Mode;
  };
  std::vector<Span> Spans;

  static Operand r(Reg R) { return ProgramBuilder::r(R); }
  static Operand imm(uint64_t V) { return ProgramBuilder::imm(V); }

  void beginBlock(const std::string &Lbl, PC Src, SpsMode Mode) {
    B.label(Lbl);
    Spans.push_back({Lbl, Src, Mode});
  }

  /// dest := sum of the source addressing operands (the Sum addressing
  /// mode's evalAddr), joining taints exactly as the machine does.
  void emitAddrSum(Reg Dest, const std::vector<Operand> &Args) {
    assert(!Args.empty() && "address needs operands");
    if (Args.size() == 1) {
      B.op(Dest, Opcode::Mov, {Args[0]});
      return;
    }
    B.op(Dest, Opcode::Add, {Args[0], Args[1]});
    for (size_t I = 2; I < Args.size(); ++I)
      B.op(Dest, Opcode::Add, {r(Dest), Args[I]});
  }

  /// Valid &= (AddrReg < HarnessBase): a source access into harness
  /// space would diverge from the source machine, so the tape is marked
  /// unusable instead.
  void emitBoundsCheck(Reg AddrReg) {
    B.op(T, Opcode::Ult, {r(AddrReg), imm(SpsTranslation::HarnessBase)});
    B.op(Valid, Opcode::And, {r(Valid), r(T)});
  }

  /// Valid &= (TargetReg <= End): computed control targets outside the
  /// program have no table image.
  void emitTargetCheck(Reg TargetReg) {
    B.op(T, Opcode::Ule, {r(TargetReg), imm(End)});
    B.op(Valid, Opcode::And, {r(Valid), r(T)});
  }

  /// Ends a straight-line block whose architectural successor is \p Next:
  /// fall through when the next emitted block is its image, else jump.
  void emitSeqSuccessor(PC Here, PC Next) {
    if (Next == Here + 1 && Next < End)
      return; // q(Here+1) is emitted immediately after
    B.jmp(q(Next));
  }
  void emitSpecSuccessor(PC Here, PC Next) {
    if (Next == Here + 1)
      return; // s(Here+1) / s(End) is emitted immediately after
    B.jmp(s(Next));
  }

  /// Materialises a branch condition into C (True/False are the nullary
  /// always/never conditions `jmp` encodes with).
  void emitCond(const Instruction &I) {
    if (I.opcode() == Opcode::True)
      B.movi(C, 1);
    else if (I.opcode() == Opcode::False)
      B.movi(C, 0);
    else
      B.op(C, I.opcode(), I.args());
  }

  /// The branch itself with \p TTrue / \p TFalse as label targets,
  /// emitting the same jump observation (condition taint) the machine's
  /// cond-execute rules produce.  Statically-decided conditions become
  /// direct jumps (public, as in the machine).
  void emitBranchOn(const Instruction &I, const std::string &TTrue,
                    const std::string &TFalse) {
    if (I.opcode() == Opcode::True)
      B.jmp(TTrue);
    else if (I.opcode() == Opcode::False)
      B.jmp(TFalse);
    else
      B.br(I.opcode(), I.args(), TTrue, TFalse);
  }

  void emitSeqBlock(PC Pc, const Instruction &I);
  void emitSpecBlock(PC Pc, const Instruction &I);
  void emitExcursionEntry(const Instruction &I);
  void emitCallEmulation(const Instruction &I, bool Spec);
  void emitRetEmulation(const Instruction &I, bool Spec);

  /// Spec-block fuel prologue for an instruction costing \p Entries
  /// reorder-buffer slots.  Mirrors the explorer's fetch gate
  /// (`Buf.size() < SpeculationBound`, checked before the group is
  /// pushed, overshoot allowed): with the mispredicted branch occupying
  /// one slot, a further fetch needs used <= Bound - 2.
  void emitFuelGate(PC Pc, unsigned Entries) {
    std::string Cont = "sf" + std::to_string(Pc);
    B.br(Opcode::Ugt, {r(Fuel), imm(Bound - 2)}, "rb", Cont);
    B.label(Cont);
    B.op(Fuel, Opcode::Add, {r(Fuel), imm(Entries)});
  }
};

void Emitter::emitExcursionEntry(const Instruction &I) {
  // Spill the architectural state the excursion may clobber.
  for (size_t K = 0; K < Saved.size(); ++K)
    B.store(r(Saved[K]), {imm(SaveBase + K)});
  B.movi(UCur, UndoBase);
  B.movi(Fuel, 0);
  B.movi(DepthR, Depth - 1);
  // Resume point: the branch's *correct* architectural target, fetched
  // through the pc-translation table (label pcs are unknown while
  // emitting).  The table read carries the condition taint — the same
  // taint the machine's rollback jump observation carries.
  emitCond(I);
  B.op(Res, Opcode::Select,
       {r(C), imm(I.trueTarget()), imm(I.falseTarget())});
  B.op(Res, Opcode::Add, {r(Res), imm(TableSeqBase)});
  B.load(Res, {r(Res)});
  // Enter the wrong path: the inverted branch emits a jump observation
  // with the condition taint, mirroring cond-execute-incorrect.
  if (!HasSpecBody) {
    // Window of 1: the branch fills it; the wrong path fetches nothing.
    emitBranchOn(I, "sx", "sx");
    return;
  }
  emitBranchOn(I, s(I.falseTarget()), s(I.trueTarget()));
}

void Emitter::emitCallEmulation(const Instruction &I, bool Spec) {
  bool Indirect = I.is(InstrKind::CallI);
  PC Ret = I.next();
  if (Indirect) {
    emitAddrSum(W, I.args());
    emitTargetCheck(W);
  }
  B.op(Reg::sp(), Opcode::Succ, {r(Reg::sp())});
  emitBoundsCheck(Reg::sp());
  if (Spec) {
    // Undo-logged return-address store: load the old word (observable at
    // the rsp taint, like the machine's store-address resolution), log
    // (value, address), then write through.
    B.load(V, {r(Reg::sp())});
    B.store(r(V), {r(UCur)});
    B.store(r(Reg::sp()), {r(UCur), imm(1)});
    B.op(UCur, Opcode::Add, {r(UCur), imm(2)});
  }
  B.store(imm(Ret), {r(Reg::sp())});
  // Shadow RSB push (predicts the matching ret like the machine's RSB).
  B.op(A, Opcode::Add, {imm(ShadowBase), r(ShIdx)});
  if (Spec) {
    B.load(V, {r(A)});
    B.store(r(V), {r(UCur)});
    B.store(r(A), {r(UCur), imm(1)});
    B.op(UCur, Opcode::Add, {r(UCur), imm(2)});
  }
  B.store(imm(Ret), {r(A)});
  B.op(ShIdx, Opcode::Add, {r(ShIdx), imm(1)});
  if (!Indirect) {
    B.jmp(Spec ? s(I.callee()) : q(I.callee()));
    return;
  }
  B.op(A, Opcode::Add, {r(W), imm(Spec ? TableSpecBase : TableSeqBase)});
  B.load(A, {r(A)});
  B.jmpi({r(A)});
}

void Emitter::emitRetEmulation(const Instruction &I, bool Spec) {
  emitBoundsCheck(Reg::sp());
  B.load(Reg::tmp(), {r(Reg::sp())}); // read(rsp), as in the ret group
  B.op(Reg::sp(), Opcode::Pred, {r(Reg::sp())});
  // Shadow RSB pop with underflow guard.  On underflow the machine's
  // explorer (attacker-choice policy, no mistraining targets) predicts
  // the architectural target — i.e. correctly — so treat it as a match.
  B.op(T, Opcode::Eq, {r(ShIdx), imm(0)});
  B.op(W, Opcode::Sub, {r(ShIdx), imm(1)});
  B.op(ShIdx, Opcode::Select, {r(T), imm(0), r(W)});
  B.op(A, Opcode::Add, {imm(ShadowBase), r(ShIdx)});
  B.load(V, {r(A)});
  // A genuine RSB mismatch (wrong path overwrote the return slot) is the
  // retpoline-style excursion this translation does not model: record it
  // in the coverage flag and continue at the architectural target.
  B.op(C, Opcode::Eq, {r(Reg::tmp()), r(V)});
  B.op(C, Opcode::Or, {r(C), r(T)});
  B.op(Cov, Opcode::And, {r(Cov), r(C)});
  emitTargetCheck(Reg::tmp());
  B.op(A, Opcode::Add,
       {r(Reg::tmp()), imm(Spec ? TableSpecBase : TableSeqBase)});
  B.load(A, {r(A)});
  B.jmpi({r(A)}); // jump observation at the return address taint
}

void Emitter::emitSeqBlock(PC Pc, const Instruction &I) {
  beginBlock(q(Pc), Pc, SpsMode::Seq);
  switch (I.kind()) {
  case InstrKind::Op:
    B.op(I.dest(), I.opcode(), I.args());
    emitSeqSuccessor(Pc, I.next());
    break;
  case InstrKind::Load:
    emitAddrSum(A, I.args());
    emitBoundsCheck(A);
    B.load(I.dest(), {r(A)});
    emitSeqSuccessor(Pc, I.next());
    break;
  case InstrKind::Store:
    emitAddrSum(A, I.args());
    emitBoundsCheck(A);
    B.store(I.storeValue(), {r(A)});
    emitSeqSuccessor(Pc, I.next());
    break;
  case InstrKind::Fence:
    B.fence();
    emitSeqSuccessor(Pc, I.next());
    break;
  case InstrKind::Branch: {
    PC NT = I.trueTarget(), NF = I.falseTarget();
    if (!HaveExcursions || NT == NF) {
      // Equal targets: a wrong guess fetches the same point and the
      // branch resolves correctly — the explorer never forks here.
      emitBranchOn(I, q(NT), q(NF));
      break;
    }
    // Consult the misprediction oracle (public), then either take the
    // branch architecturally or enter an excursion.
    std::string Br = "qb" + std::to_string(Pc);
    std::string Exc = "qx" + std::to_string(Pc);
    B.load(W, {r(OCur)});
    B.op(OCur, Opcode::Add, {r(OCur), imm(1)});
    B.br(Opcode::Ne, {r(W), imm(0)}, Exc, Br);
    B.label(Br);
    emitBranchOn(I, q(NT), q(NF));
    B.label(Exc);
    emitExcursionEntry(I);
    break;
  }
  case InstrKind::JumpI:
    emitAddrSum(W, I.args());
    emitTargetCheck(W);
    B.op(A, Opcode::Add, {r(W), imm(TableSeqBase)});
    B.load(A, {r(A)});
    B.jmpi({r(A)});
    break;
  case InstrKind::Call:
  case InstrKind::CallI:
    emitCallEmulation(I, /*Spec=*/false);
    break;
  case InstrKind::Ret:
    emitRetEmulation(I, /*Spec=*/false);
    break;
  }
}

void Emitter::emitSpecBlock(PC Pc, const Instruction &I) {
  beginBlock(s(Pc), Pc, SpsMode::Spec);
  switch (I.kind()) {
  case InstrKind::Op:
    emitFuelGate(Pc, 1);
    B.op(I.dest(), I.opcode(), I.args());
    emitSpecSuccessor(Pc, I.next());
    break;
  case InstrKind::Load:
    emitFuelGate(Pc, 1);
    emitAddrSum(A, I.args());
    emitBoundsCheck(A);
    B.load(I.dest(), {r(A)});
    emitSpecSuccessor(Pc, I.next());
    break;
  case InstrKind::Store:
    // Write-through with an undo log.  The old-value load is observable
    // at the store-address taint — the same taint the machine leaks via
    // store-execute-addr-ok when the transient store resolves.
    emitFuelGate(Pc, 1);
    emitAddrSum(A, I.args());
    emitBoundsCheck(A);
    B.load(V, {r(A)});
    B.store(r(V), {r(UCur)});
    B.store(r(A), {r(UCur), imm(1)});
    B.op(UCur, Opcode::Add, {r(UCur), imm(2)});
    B.store(I.storeValue(), {r(A)});
    emitSpecSuccessor(Pc, I.next());
    break;
  case InstrKind::Fence:
    // A transient fence never retires and blocks every younger entry
    // from executing: the excursion observes nothing further.
    B.jmp("rb");
    break;
  case InstrKind::Branch: {
    PC NT = I.trueTarget(), NF = I.falseTarget();
    emitFuelGate(Pc, 1);
    if (NT == NF) {
      emitBranchOn(I, s(NT), s(NF));
      break;
    }
    // Nested wrong guesses are depth-gated exactly like the explorer's
    // branchDepth < MaxBranchDepth fork filter; a correctly guessed
    // nested branch resolves in place and emits the same jump
    // observation as cond-execute-correct.
    std::string Consult = "sk" + std::to_string(Pc);
    std::string Wrong = "sw" + std::to_string(Pc);
    std::string Normal = "sn" + std::to_string(Pc);
    std::string Clip = "sc" + std::to_string(Pc);
    B.br(Opcode::Ugt, {r(DepthR), imm(0)}, Consult, Clip);
    // Depth exhausted: the oracle is not consulted, so deeper wrong
    // guesses go unexplored — a clean run is then a bounded claim, not a
    // proof.  Record it in the coverage flag (like the RSB clause in
    // emitExcursionEntry) so the checker reports Inconclusive rather
    // than Proved; counterexamples found elsewhere stand regardless.
    B.label(Clip);
    B.movi(Cov, 0);
    B.jmp(Normal);
    B.label(Consult);
    B.load(W, {r(OCur)});
    B.op(OCur, Opcode::Add, {r(OCur), imm(1)});
    B.br(Opcode::Ne, {r(W), imm(0)}, Wrong, Normal);
    B.label(Wrong);
    B.op(DepthR, Opcode::Sub, {r(DepthR), imm(1)});
    emitBranchOn(I, s(NF), s(NT)); // inverted
    B.label(Normal);
    emitBranchOn(I, s(NT), s(NF));
    break;
  }
  case InstrKind::JumpI:
    emitFuelGate(Pc, 1);
    emitAddrSum(W, I.args());
    emitTargetCheck(W);
    B.op(A, Opcode::Add, {r(W), imm(TableSpecBase)});
    B.load(A, {r(A)});
    B.jmpi({r(A)});
    break;
  case InstrKind::Call:
    emitFuelGate(Pc, 3); // marker + rsp bump + return-address store
    emitCallEmulation(I, /*Spec=*/true);
    break;
  case InstrKind::CallI:
    emitFuelGate(Pc, 4); // call group + target-validating jmpi
    emitCallEmulation(I, /*Spec=*/true);
    break;
  case InstrKind::Ret:
    emitFuelGate(Pc, 4); // marker + return load + rsp drop + jmpi
    emitRetEmulation(I, /*Spec=*/true);
    break;
  }
}

SpsTranslation Emitter::run() {
  // Source registers first so operand ids survive verbatim (the builder
  // pre-declares rsp/rtmp as ids 0 and 1, matching every program).
  for (unsigned Id = Reg::FirstUserId; Id < P.numRegs(); ++Id)
    B.reg(P.regName(Reg(static_cast<uint16_t>(Id))));
  OCur = B.reg("sps$ocur");
  Valid = B.reg("sps$valid");
  Cov = B.reg("sps$cov");
  ShIdx = B.reg("sps$shidx");
  UCur = B.reg("sps$ucur");
  Fuel = B.reg("sps$fuel");
  DepthR = B.reg("sps$depth");
  Res = B.reg("sps$res");
  A = B.reg("sps$a");
  V = B.reg("sps$v");
  W = B.reg("sps$w");
  T = B.reg("sps$t");
  C = B.reg("sps$c");
  for (unsigned Id = 0; Id < P.numRegs(); ++Id)
    Saved.push_back(Reg(static_cast<uint16_t>(Id)));
  Saved.push_back(ShIdx); // call emulation bumps it on excursion paths

  for (const MemRegion &R : P.regions())
    B.region(R.Name, R.Base, R.Size, R.RegionLabel);
  for (const auto &[Reg_, Val] : P.regInits())
    B.init(Reg_, Val);
  for (const auto &[Addr, Word] : P.memInits())
    B.data(Addr, {Word});

  // Harness prologue, then the architectural copy, the wrong-path copy,
  // the rollback machinery, and the exit point — in that order, so
  // straight-line fall-through inside each copy stays valid.
  beginBlock("init", ProvenanceMap::None, SpsMode::Harness);
  B.movi(OCur, OracleBase);
  B.movi(Valid, 1);
  B.movi(Cov, 1);
  B.movi(ShIdx, 0);
  B.jmp(q(P.entry()));

  for (PC Pc = 0; Pc < End; ++Pc)
    emitSeqBlock(Pc, P.at(Pc));

  if (HasSpecBody) {
    for (PC Pc = 0; Pc < End; ++Pc)
      emitSpecBlock(Pc, P.at(Pc));
    // The wrong path running off the program end stalls until rollback.
    beginBlock(s(End), ProvenanceMap::None, SpsMode::Harness);
    B.jmp("rb");
  }

  if (HaveExcursions) {
    if (!HasSpecBody) {
      // Window of 1: excursions roll back before fetching anything.
      beginBlock("sx", ProvenanceMap::None, SpsMode::Harness);
      B.jmp("rb");
    }
    // Rollback: walk the undo log backwards restoring memory (values
    // keep their original labels), reload the spilled registers, and
    // resume at the correct architectural target.
    beginBlock("rb", ProvenanceMap::None, SpsMode::Harness);
    B.br(Opcode::Eq, {r(UCur), imm(UndoBase)}, "rbr", "rbb");
    B.label("rbb");
    B.op(UCur, Opcode::Sub, {r(UCur), imm(2)});
    B.load(A, {r(UCur), imm(1)});
    B.load(V, {r(UCur)});
    B.store(r(V), {r(A)});
    B.jmp("rb");
    B.label("rbr");
    for (size_t K = 0; K < Saved.size(); ++K)
      B.load(Saved[K], {imm(SaveBase + K)});
    B.jmpi({r(Res)});
  }

  // The program-end image: one silent instruction that falls off P̂.
  beginBlock(q(End), ProvenanceMap::None, SpsMode::Harness);
  B.fence();

  // Program-point translation tables (public data): src pc -> copy pc.
  std::vector<PC> SeqImage(End + 1);
  for (PC Pc = 0; Pc <= End; ++Pc) {
    SeqImage[Pc] = B.pcOf(q(Pc));
    B.data(TableSeqBase + Pc, {SeqImage[Pc]});
    if (HasSpecBody)
      B.data(TableSpecBase + Pc, {B.pcOf(s(Pc))});
  }

  SpsTranslation Out;
  Out.OracleBase = OracleBase;
  Out.OracleCursor = OCur;
  Out.ValidFlag = Valid;
  Out.CovFlag = Cov;
  Out.Bound = Bound;
  Out.Depth = Depth;

  // Resolve spans into the provenance map before build() consumes B.
  std::vector<PC> Starts;
  Starts.reserve(Spans.size());
  for (const Span &Sp : Spans)
    Starts.push_back(B.pcOf(Sp.Lbl));

  Out.Prog = B.build();
  const PC PhatEnd = Out.Prog.endPC();

  Out.ModeOf.assign(PhatEnd, SpsMode::Harness);
  Out.Map.InstrNewToOld.assign(PhatEnd, ProvenanceMap::None);
  Out.Map.InstrOldToNew.assign(End, ProvenanceMap::None);
  Out.Map.TargetOldToNew.assign(End + 1, ProvenanceMap::None);
  Out.Map.TargetNewToOld.assign(PhatEnd, ProvenanceMap::None);
  for (size_t I = 0; I < Spans.size(); ++I) {
    PC From = Starts[I];
    PC To = I + 1 < Spans.size() ? Starts[I + 1] : PhatEnd;
    for (PC Pc = From; Pc < To; ++Pc) {
      Out.ModeOf[Pc] = Spans[I].Mode;
      Out.Map.InstrNewToOld[Pc] = Spans[I].Src;
    }
  }
  for (PC Pc = 0; Pc <= End; ++Pc) {
    if (Pc < End)
      Out.Map.InstrOldToNew[Pc] = SeqImage[Pc];
    Out.Map.TargetOldToNew[Pc] = SeqImage[Pc];
    Out.Map.TargetNewToOld[SeqImage[Pc]] = Pc;
  }
  return Out;
}

} // namespace

bool SpsTranslator::supports(const Program &P, const ExplorerOptions &EOpts,
                             const MachineOptions &MOpts, std::string *Why) {
  auto No = [&](const char *Reason) {
    if (Why)
      *Why = Reason;
    return false;
  };
  if (EOpts.SpeculationBound < 1)
    return No("speculation bound 0: nothing ever fetches");
  if (EOpts.ExploreForwardingHazards || EOpts.ExhaustiveForwardForks)
    return No("forwarding-hazard exploration (v4 mode) is not modelled");
  if (EOpts.ExploreAliasPrediction)
    return No("alias prediction is not modelled");
  if (!EOpts.IndirectTargets.empty())
    return No("indirect-target mistraining (v2) is not modelled");
  if (!EOpts.RsbUnderflowTargets.empty())
    return No("RSB-underflow mistraining (ret2spec) is not modelled");
  if (MOpts.Addressing != AddrMode::Sum)
    return No("non-Sum addressing is not modelled");
  if (MOpts.RsbOnEmpty != RsbPolicy::AttackerChoice)
    return No("non-default RSB-empty policy is not modelled");
  for (const MemRegion &R : P.regions())
    if (R.Base + R.Size > SpsTranslation::HarnessBase)
      return No("source region overlaps the SPS harness address space");
  for (const auto &[Addr, Word] : P.memInits()) {
    (void)Word;
    if (Addr >= SpsTranslation::HarnessBase)
      return No("source data overlaps the SPS harness address space");
  }
  for (unsigned Id = 0; Id < P.numRegs(); ++Id)
    if (P.regName(Reg(static_cast<uint16_t>(Id))).starts_with("sps$"))
      return No("source register names collide with the SPS harness");
  return true;
}

SpsTranslation SpsTranslator::translate(const Program &P,
                                        const ExplorerOptions &EOpts,
                                        const MachineOptions &MOpts) {
  assert(supports(P, EOpts, MOpts) && "translate() outside the fragment");
  return Emitter(P, EOpts, MOpts).run();
}
