//===- checker/SpsChecker.h - Sequential proofs of SCT ---------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SPS proof backend: enumerates misprediction-oracle tapes for the
/// speculation-passing-style translation (SpsTranslator) and runs the
/// classical *sequential* CT analysis once per tape.  Unlike the schedule
/// explorer — which can only find leaks or exhaust budgets — this checker
/// returns one of three verdicts:
///
///  - Proved: no tape produces a secret observation; the source program
///    is speculative constant-time within the explorer fragment the
///    translation models (v1/v1.1: hazards off, no mistraining sets).
///  - CounterExample: some tape leaks; each counterexample carries the
///    source program point (via the provenance map), the observation,
///    whether it occurred on a wrong path, and the tape reproducing it.
///  - Inconclusive: the options lie outside the fragment, a budget was
///    hit before the tape tree was exhausted, or a run strayed into
///    unmodelled territory (harness-space access, genuine RSB mismatch).
///
/// Tape enumeration is the standard lazy-oracle DFS: run a tape (words
/// beyond its end read as 0, "predict correctly"), observe how many
/// oracle consults the run made, and branch a child tape per consult
/// position not yet pinned.  Fenced programs collapse almost immediately
/// — an excursion that hits a fence stops consulting — which is exactly
/// why kocher-05's fenced tree is seconds here and 8M steps for the
/// explorer.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CHECKER_SPSCHECKER_H
#define SCT_CHECKER_SPSCHECKER_H

#include "checker/SpsTranslator.h"
#include "core/Observation.h"

#include <string>
#include <vector>

namespace sct {

/// Budgets for the tape enumeration.
struct SpsOptions {
  /// Max oracle tapes to run before giving up on a proof.
  uint64_t MaxTapes = 1 << 13;
  /// Retire bound per sequential run of P̂.
  size_t MaxRetiresPerTape = 1 << 18;
  /// Stop collecting counterexamples past this many.
  size_t MaxCounterExamples = 256;
  /// Return on the first counterexample (for verdict-only callers).
  bool StopAtFirstCounterExample = false;
  /// Gate oracle consults by the speculation window instead of the
  /// explorer's branch-depth fork filter.  The window bounds *any*
  /// nesting the explorer can realise (every in-flight wrong guess
  /// occupies a buffer entry), so a Proved verdict is sound regardless
  /// of how the explorer's depth gate interacts with fences in flight —
  /// and the depth clip that would otherwise force Inconclusive on
  /// looping programs becomes unreachable.  Leave this off for
  /// differential agreement checks: window-depth counterexamples may
  /// exceed the explorer's MaxBranchDepth and read as disagreements.
  bool DepthToWindow = false;
};

enum class SpsVerdict : unsigned char { Proved, CounterExample, Inconclusive };

/// One secret observation, lowered back to source coordinates.
struct SpsCounterExample {
  PC Origin = 0;           ///< source instruction the observation maps to
  bool Speculative = false; ///< on a wrong path (vs. architecturally)?
  Observation Obs;         ///< the secret observation itself
  PC TransPC = 0;          ///< P̂ instruction that emitted it
  std::vector<uint64_t> Tape; ///< oracle tape reproducing the leak
};

/// The proof backend's report.
struct SpsReport {
  SpsVerdict Verdict = SpsVerdict::Inconclusive;
  std::string Reason; ///< set when Inconclusive (or truncated)
  std::vector<SpsCounterExample> CounterExamples;
  /// True iff the whole tape tree was enumerated within budget — required
  /// for Proved, and for treating the counterexample set as *complete*
  /// (cross-validation matches explorer leaks against it only then).
  bool Complete = false;
  uint64_t TapesRun = 0;
  uint64_t RetiresTotal = 0;
  double Seconds = 0;

  bool proved() const { return Verdict == SpsVerdict::Proved; }
  bool conclusive() const { return Verdict != SpsVerdict::Inconclusive; }
  /// True iff some counterexample maps to source pc \p Origin.
  bool hasCounterExampleAt(PC Origin) const;
};

/// Proves or refutes speculative constant-time for \p P under the
/// explorer fragment \p EOpts describes.  Returns Inconclusive (with a
/// reason) when the fragment is unsupported — never wrong, sometimes
/// silent.
SpsReport checkSps(const Program &P, const ExplorerOptions &EOpts,
                   const MachineOptions &MOpts = {},
                   const SpsOptions &Opts = {});

} // namespace sct

#endif // SCT_CHECKER_SPSCHECKER_H
