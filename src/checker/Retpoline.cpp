//===- checker/Retpoline.cpp - The retpoline mitigation ---------------------===//

#include "checker/Retpoline.h"

#include "checker/ProgramRewriter.h"

using namespace sct;

RetpolineResult sct::retpolineTransform(
    const Program &P, const std::vector<uint64_t> &CodePointerAddrs) {
  ProgramRewriter RW(P);
  for (uint64_t Addr : CodePointerAddrs)
    RW.markCodePointer(Addr);

  bool HasJumpI = false;
  for (PC N = 0; N < P.endPC(); ++N)
    if (P.at(N).is(InstrKind::JumpI))
      HasJumpI = true;
  if (!HasJumpI)
    return {RW.apply(), 0};

  Reg Scratch = RW.scratchReg("rretp");
  unsigned Rewritten = 0;

  for (PC N = 0; N < P.endPC(); ++N) {
    const Instruction &I = P.at(N);
    if (!I.is(InstrKind::JumpI))
      continue;
    ++Rewritten;

    // Body: fold the target address into the scratch register (sum
    // addressing), overwrite the saved return address, return.
    std::vector<Instruction> Body;
    const std::vector<Operand> &Args = I.args();
    Body.push_back(
        Instruction::makeOp(Scratch, Opcode::Mov, {Args[0]}));
    for (size_t A = 1; A < Args.size(); ++A)
      Body.push_back(Instruction::makeOp(
          Scratch, Opcode::Add, {Operand::reg(Scratch), Args[A]}));
    Body.push_back(Instruction::makeStore(Operand::reg(Scratch),
                                          {Operand::reg(Reg::sp())}));
    Body.push_back(Instruction::makeRet());
    PC BodyPC = RW.append(std::move(Body));

    // Replacement: call the body; the fall-through slot is the
    // self-looping fence trap the RSB will predict.
    Instruction Trap = Instruction::makeFence();
    Trap.setNext(ProgramRewriter::SelfLoop);
    RW.replace(N, {Instruction::makeCall(BodyPC), std::move(Trap)});
  }

  return {RW.apply(), Rewritten};
}
