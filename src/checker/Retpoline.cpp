//===- checker/Retpoline.cpp - The retpoline mitigation ---------------------===//

#include "checker/Retpoline.h"

#include "checker/ProgramRewriter.h"

using namespace sct;

MitigationResult Retpoline::run(const Program &P) const {
  MitigationResult R;

  bool HasJumpI = false;
  for (PC N = 0; N < P.endPC(); ++N)
    if (P.at(N).is(InstrKind::JumpI))
      HasJumpI = true;
  if (!HasJumpI) {
    // Nothing to rewrite: identity (and trivially safe).
    R.Prog = P;
    R.Map = ProvenanceMap::identityFor(P);
    return R;
  }

  // The rewrite relocates code, so every code pointer reachable through
  // data must be declared — jump tables are exactly where jmpi targets
  // come from, so this screen is load-bearing here.
  if (auto E = checkRelocatable(P, CodePointerAddrs)) {
    R.Error = std::move(E);
    return R;
  }

  ProgramRewriter RW(P);
  for (uint64_t Addr : CodePointerAddrs)
    RW.markCodePointer(Addr);
  for (Reg Rg : CodePointerRegs)
    RW.markCodePointerReg(Rg);

  Reg Scratch = RW.scratchReg("rretp");
  unsigned Rewritten = 0;

  for (PC N = 0; N < P.endPC(); ++N) {
    const Instruction &I = P.at(N);
    if (!I.is(InstrKind::JumpI))
      continue;
    ++Rewritten;

    // Body: fold the target address into the scratch register (sum
    // addressing), overwrite the saved return address, return.
    std::vector<Instruction> Body;
    const std::vector<Operand> &Args = I.args();
    Body.push_back(Instruction::makeOp(Scratch, Opcode::Mov, {Args[0]}));
    for (size_t A = 1; A < Args.size(); ++A)
      Body.push_back(Instruction::makeOp(
          Scratch, Opcode::Add, {Operand::reg(Scratch), Args[A]}));
    Body.push_back(Instruction::makeStore(Operand::reg(Scratch),
                                          {Operand::reg(Reg::sp())}));
    Body.push_back(Instruction::makeRet());
    PC BodyPC = RW.append(std::move(Body));

    // Replacement: call the body; the fall-through slot is the
    // self-looping fence trap the RSB will predict.
    Instruction Trap = Instruction::makeFence();
    Trap.setNext(ProgramRewriter::SelfLoop);
    RW.replace(N, {Instruction::makeCall(BodyPC), std::move(Trap)});
  }

  R.Prog = RW.apply();
  R.Map = RW.provenance();
  R.Cost.Sites = Rewritten;
  // Each jmpi becomes call+trap plus an appended body, so the program
  // strictly grows; one trap fence per rewritten jump.
  R.Cost.InstructionsAdded = static_cast<unsigned>(R.Prog.size() - P.size());
  R.Cost.FencesAdded = Rewritten;
  return R;
}
