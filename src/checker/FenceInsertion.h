//===- checker/FenceInsertion.h - Speculation-barrier mitigation -*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fence-insertion mitigations (§3.6, Figure 8): a `fence` placed in the
/// shadow of a conditional branch keeps younger instructions from
/// executing until the branch has resolved, defeating Spectre v1/v1.1;
/// a fence after every store defeats Spectre v4 (the younger load cannot
/// execute until the store has retired its value to memory).
///
/// The paper notes fences do *not* help against mistrained indirect jumps
/// (Figure 11) — use the retpoline transform for those.
///
/// FenceInsertion implements the uniform Mitigation interface
/// (checker/Mitigation.h): it can place fences per blanket FencePolicy or
/// at an explicit site list — the handle `engine/MitigationSession.h`'s
/// minimal-placement search turns — and it *refuses* (structured
/// NotRelocatable error) on jump-table programs whose code pointers were
/// not declared, instead of silently miscompiling them.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CHECKER_FENCEINSERTION_H
#define SCT_CHECKER_FENCEINSERTION_H

#include "checker/Mitigation.h"

namespace sct {

/// Where fences go.
enum class FencePolicy : unsigned char {
  BranchTargets,          ///< Before both targets of every branch (v1/v1.1).
  AfterStores,            ///< After every store (v4).
  BranchTargetsAndStores, ///< Union of the two.
};

/// Printable policy name.
std::string_view fencePolicyName(FencePolicy Policy);

/// The fence-insertion transform.
class FenceInsertion final : public Mitigation {
public:
  /// Blanket placement per \p Policy.
  explicit FenceInsertion(FencePolicy Policy,
                          std::vector<uint64_t> CodePointerAddrs = {},
                          std::vector<Reg> CodePointerRegs = {});

  /// Explicit placement: one fence immediately before each program point
  /// in \p Sites (old coordinates).  This is the minimal-placement
  /// search's knob.
  explicit FenceInsertion(std::vector<PC> Sites,
                          std::vector<uint64_t> CodePointerAddrs = {},
                          std::vector<Reg> CodePointerRegs = {});

  std::string name() const override;
  MitigationResult run(const Program &P) const override;

  /// The sites a blanket \p Policy would fence in \p P, sorted.  Exposed
  /// so the placement search can start from the blanket set.
  static std::vector<PC> policySites(const Program &P, FencePolicy Policy);

private:
  std::optional<FencePolicy> Policy;
  std::vector<PC> Sites;
  std::vector<uint64_t> CodePointerAddrs;
  std::vector<Reg> CodePointerRegs;
};

/// Number of fence instructions in \p P (mitigation-cost metric).
size_t countFences(const Program &P);

} // namespace sct

#endif // SCT_CHECKER_FENCEINSERTION_H
