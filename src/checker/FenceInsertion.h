//===- checker/FenceInsertion.h - Speculation-barrier mitigation -*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fence-insertion mitigations (§3.6, Figure 8): a `fence` placed in the
/// shadow of a conditional branch keeps younger instructions from
/// executing until the branch has resolved, defeating Spectre v1/v1.1;
/// a fence after every store defeats Spectre v4 (the younger load cannot
/// execute until the store has retired its value to memory).
///
/// The paper notes fences do *not* help against mistrained indirect jumps
/// (Figure 11) — use the retpoline transform for those.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CHECKER_FENCEINSERTION_H
#define SCT_CHECKER_FENCEINSERTION_H

#include "isa/Program.h"

namespace sct {

/// Where fences go.
enum class FencePolicy : unsigned char {
  BranchTargets,          ///< Before both targets of every branch (v1/v1.1).
  AfterStores,            ///< After every store (v4).
  BranchTargetsAndStores, ///< Union of the two.
};

/// Returns a copy of \p P with fences inserted per \p Policy; all
/// control-flow targets are relocated.  Programs that stash code pointers
/// in data words (jump tables) are not relocatable by this pass.
Program insertFences(const Program &P, FencePolicy Policy);

/// Number of fence instructions in \p P (mitigation-cost metric).
size_t countFences(const Program &P);

} // namespace sct

#endif // SCT_CHECKER_FENCEINSERTION_H
