//===- checker/SctChecker.h - The Pitchfork-style SCT checker --*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The speculative constant-time checker (§4): explores the worst-case
/// attacker schedules DT(n) and flags secret-labelled observations.  By
/// label soundness (Theorem B.9 and the discussion of §3.1), a program
/// whose explored traces carry no secret label satisfies SCT for all
/// schedules within the speculation bound; a secret-labelled observation
/// is a replayable violation witness.
///
/// The two evaluation modes of §4.2.1 are packaged as presets:
///   - `v1v11Mode()`  — speculation bound 250, forwarding-hazard
///     detection off (Spectre v1 / v1.1 only);
///   - `v4Mode()`     — speculation bound 20, forwarding-hazard
///     detection on (adds Spectre v4 / stale forwards).
///
/// Both presets leave the engine knobs (`Threads`, `Shards`, `PruneSeen`,
/// `Snapshots`) at their defaults; callers tune them on the returned
/// ExplorerOptions before checking.
///
/// **Thread-safety and determinism.**  The free functions here are
/// stateless: they build a fresh CheckSession per call and may run
/// concurrently on distinct or identical programs.  The verdict
/// (`secure()`) and the deduplicated leak set of a report are independent
/// of `Threads`/`Shards`/`PruneSeen`/`Snapshots`; exploration counters
/// are reproducible exactly whenever `Threads <= 1` — pruned (the
/// default) or not — and additionally N-independent with `PruneSeen` off
/// (the engine's determinism contract, sched/ScheduleExplorer.h).
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CHECKER_SCTCHECKER_H
#define SCT_CHECKER_SCTCHECKER_H

#include "checker/Violation.h"
#include "engine/CheckSession.h"

namespace sct {

/// A full checker verdict for one program.
struct SctReport {
  ExploreResult Exploration;
  /// The options used (for reporting).
  ExplorerOptions Opts;
  /// Wall-clock seconds spent exploring.
  double Seconds = 0;

  bool secure() const { return Exploration.secure(); }
};

/// Converts an engine result into a checker report.
SctReport toReport(CheckResult R);

/// Checker presets mirroring §4.2.1.
ExplorerOptions v1v11Mode();
ExplorerOptions v4Mode();

/// Checks \p P from its initial configuration under \p Opts.  Routed
/// through the engine layer: `Opts.Threads` workers drain the frontier.
SctReport checkSct(const Program &P, const ExplorerOptions &Opts,
                   const MachineOptions &MOpts = {});

/// Convenience: checks under both §4.2.1 modes; returns the pair
/// (v1/v1.1 verdict, v4 verdict).  The paper's Table 2 `f` marker means
/// "first secure, second insecure".
struct TwoModeReport {
  SctReport V1V11;
  SctReport V4;

  bool flaggedWithoutForwarding() const { return !V1V11.secure(); }
  bool flaggedOnlyWithForwarding() const {
    return V1V11.secure() && !V4.secure();
  }
  bool secure() const { return V1V11.secure() && V4.secure(); }

  /// Table-2 cell: "✓" flagged without forwarding, "f" only with, "—"
  /// clean.
  std::string cell() const;
};

/// With \p Threads > 1 the two modes run concurrently as one engine
/// batch.
TwoModeReport checkSctBothModes(const Program &P,
                                const MachineOptions &MOpts = {},
                                unsigned Threads = 1);

} // namespace sct

#endif // SCT_CHECKER_SCTCHECKER_H
