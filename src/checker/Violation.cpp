//===- checker/Violation.cpp - SCT violation reports -------------------------===//

#include "checker/Violation.h"

#include "isa/AsmPrinter.h"

using namespace sct;

std::string sct::summarizeLeak(const Program &P, const LeakRecord &L) {
  std::string Where = "pc " + std::to_string(L.Origin);
  if (auto Name = P.labelAt(L.Origin))
    Where += " (" + *Name + ")";
  std::string Instr =
      P.contains(L.Origin) ? printInstruction(P, L.Origin) : "<expanded>";
  std::string Out = "leak at " + Where + ": `" + Instr + "` emits " +
                    L.Obs.str() + " via " + std::string(ruleName(L.Rule)) +
                    " after " + std::to_string(L.Sched.size()) +
                    " directives";
  if (!L.MinSched.empty())
    Out += " (minimized: " + std::to_string(L.MinSched.size()) + ")";
  return Out;
}

std::string sct::describeLeak(const Machine &M, const Configuration &Init,
                              const LeakRecord &L) {
  std::string Out = summarizeLeak(M.program(), L) + "\n";
  // Prefer the minimized witness for the replayed table — it is the
  // readable attack — but always print the raw schedule's length so the
  // shrink is visible; docs/WITNESSES.md walks the format.
  if (!L.MinSched.empty()) {
    Out += "raw witness: " + std::to_string(L.Sched.size()) +
           " directives (full exploration prefix)\n";
    Out += "minimized witness schedule: " + printSchedule(L.MinSched) + "\n";
    Out += printRun(M, Init, L.MinSched);
    return Out;
  }
  Out += "witness schedule: " + printSchedule(L.Sched) + "\n";
  Out += printRun(M, Init, L.Sched);
  return Out;
}

std::string sct::describeResult(const Program &P, const ExploreResult &R) {
  std::string Out;
  if (R.secure()) {
    Out = "no speculative constant-time violation found (";
    Out += std::to_string(R.SchedulesCompleted) + " schedules, " +
           std::to_string(R.TotalSteps) + " steps";
    Out += R.Truncated ? ", TRUNCATED)\n" : ")\n";
    return Out;
  }
  Out = "VIOLATION: " + std::to_string(R.Leaks.size()) + " distinct leak(s), " +
        std::to_string(R.LeakEvents) + " leak event(s) across " +
        std::to_string(R.SchedulesCompleted) + " schedules\n";
  for (const LeakRecord &L : R.Leaks)
    Out += "  - " + summarizeLeak(P, L) + "\n";
  return Out;
}
