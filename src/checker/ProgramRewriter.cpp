//===- checker/ProgramRewriter.cpp - Structured program rewriting -----------===//

#include "checker/ProgramRewriter.h"

#include "isa/ProgramBuilder.h"

using namespace sct;

void ProgramRewriter::insertBefore(PC At, Instruction I) {
  assert(!Applied && "rewriter already applied");
  assert(At <= Orig.endPC() && "insertion point out of range");
  Inserted[At].push_back(std::move(I));
}

void ProgramRewriter::replace(PC At, std::vector<Instruction> Seq) {
  assert(!Applied && "rewriter already applied");
  assert(Orig.contains(At) && "replacement point out of range");
  assert(!Seq.empty() && "replacement sequence must not be empty");
  Replaced[At] = std::move(Seq);
}

PC ProgramRewriter::append(std::vector<Instruction> Block) {
  assert(!Applied && "rewriter already applied");
  assert(!Block.empty() && "appended block must not be empty");
  Appended.push_back(std::move(Block));
  // Virtual points start just past the old end point.
  return Orig.endPC() + static_cast<PC>(Appended.size());
}

Reg ProgramRewriter::scratchReg(const std::string &Name) {
  assert(!Applied && "rewriter already applied");
  assert(!Orig.regByName(Name) && "scratch register name collides");
  ExtraRegs.push_back(Name);
  return Reg(static_cast<uint16_t>(Orig.numRegs() + ExtraRegs.size() - 1));
}

PC ProgramRewriter::newPC(PC OldPC) const {
  assert(Applied && "layout known only after apply()");
  auto It = Remap.find(OldPC);
  assert(It != Remap.end() && "unmapped program point");
  return It->second;
}

ProvenanceMap sct::ProvenanceMap::identityFor(const Program &P) {
  ProvenanceMap Map;
  for (PC N = 0; N < P.endPC(); ++N) {
    Map.InstrOldToNew.push_back(N);
    Map.InstrNewToOld.push_back(N);
  }
  for (PC N = 0; N <= P.endPC(); ++N) {
    Map.TargetOldToNew.push_back(N);
    Map.TargetNewToOld.push_back(N);
  }
  return Map;
}

bool sct::ProvenanceMap::identity() const {
  if (InstrOldToNew.size() != InstrNewToOld.size())
    return false;
  for (PC N = 0; N < InstrOldToNew.size(); ++N)
    if (InstrOldToNew[N] != N)
      return false;
  return true;
}

ProvenanceMap ProgramRewriter::provenance() const {
  assert(Applied && "provenance known only after apply()");
  ProvenanceMap Map;
  Map.InstrNewToOld = SlotOldPC;
  Map.InstrOldToNew.assign(Orig.endPC(), ProvenanceMap::None);
  for (PC New = 0; New < SlotOldPC.size(); ++New)
    if (SlotOldPC[New] != ProvenanceMap::None)
      Map.InstrOldToNew[SlotOldPC[New]] = New;
  Map.TargetOldToNew.assign(Orig.endPC() + 1, ProvenanceMap::None);
  Map.TargetNewToOld.assign(SlotOldPC.size() + 1, ProvenanceMap::None);
  for (PC Old = 0; Old <= Orig.endPC(); ++Old) {
    PC New = Remap.at(Old);
    Map.TargetOldToNew[Old] = New;
    if (New < Map.TargetNewToOld.size())
      Map.TargetNewToOld[New] = Old;
  }
  return Map;
}

Program ProgramRewriter::apply() {
  assert(!Applied && "rewriter already applied");
  Applied = true;

  // --- Pass 1: layout.  Slot order: originals (with insertions and
  // replacements), then appended blocks, then end-point insertions.  The
  // old end point maps *after* the appended blocks, so code that falls
  // off the original end still exits instead of running into them
  // (appended blocks must end in explicit control flow).
  struct Slot {
    const Instruction *I;
    bool IsOriginal; // Original instructions remap their successor.
  };
  std::vector<Slot> Slots;
  auto pushSlot = [&](const Instruction &I, bool IsOriginal, PC OldPC) {
    Slots.push_back({&I, IsOriginal});
    SlotOldPC.push_back(OldPC);
  };

  for (PC Old = 0; Old < Orig.endPC(); ++Old) {
    Remap[Old] = static_cast<PC>(Slots.size());
    if (auto It = Inserted.find(Old); It != Inserted.end())
      for (const Instruction &I : It->second)
        pushSlot(I, false, ProvenanceMap::None);
    if (auto It = Replaced.find(Old); It != Replaced.end()) {
      for (const Instruction &I : It->second)
        pushSlot(I, false, ProvenanceMap::None);
    } else {
      pushSlot(Orig.at(Old), true, Old);
    }
  }
  for (size_t K = 0; K < Appended.size(); ++K) {
    Remap[Orig.endPC() + 1 + static_cast<PC>(K)] =
        static_cast<PC>(Slots.size());
    for (const Instruction &I : Appended[K])
      pushSlot(I, false, ProvenanceMap::None);
  }
  Remap[Orig.endPC()] = static_cast<PC>(Slots.size());
  if (auto It = Inserted.find(Orig.endPC()); It != Inserted.end())
    for (const Instruction &I : It->second)
      pushSlot(I, false, ProvenanceMap::None);

  // --- Pass 2: emission through a builder (keeps register ids stable).
  ProgramBuilder B;
  for (unsigned R = Reg::FirstUserId; R < Orig.numRegs(); ++R)
    B.reg(Orig.regName(Reg(static_cast<uint16_t>(R))));
  for (const std::string &Name : ExtraRegs)
    B.reg(Name);

  auto MapPC = [&](PC Old) {
    auto It = Remap.find(Old);
    assert(It != Remap.end() && "target points outside the program");
    return It->second;
  };

  for (size_t S = 0; S < Slots.size(); ++S) {
    Instruction I = *Slots[S].I;
    PC Here = static_cast<PC>(S);
    switch (I.kind()) {
    case InstrKind::Branch:
      I.setBranchTargets(MapPC(I.trueTarget()), MapPC(I.falseTarget()));
      break;
    case InstrKind::Call:
      I.setCallee(MapPC(I.callee()));
      break;
    default:
      break;
    }
    if (I.next() == SelfLoop)
      I.setNext(Here);
    else if (Slots[S].IsOriginal)
      I.setNext(MapPC(I.next()));
    else
      I.setNext(Here + 1);
    B.raw(std::move(I));
  }

  for (const MemRegion &R : Orig.regions())
    B.region(R.Name, R.Base, R.Size, R.RegionLabel);
  for (const auto &[R, V] : Orig.regInits()) {
    bool IsCodePtr = false;
    for (Reg Marked : CodePointerRegs)
      if (Marked == R)
        IsCodePtr = true;
    B.init(R, IsCodePtr ? MapPC(static_cast<PC>(V)) : V);
  }
  for (const auto &[Addr, V] : Orig.memInits()) {
    bool IsCodePtr = false;
    for (uint64_t Marked : CodePointers)
      if (Marked == Addr)
        IsCodePtr = true;
    B.data(Addr, {IsCodePtr ? MapPC(static_cast<PC>(V)) : V});
  }
  for (const auto &[Name, Old] : Orig.codeLabels())
    B.labelAtPC(Name, MapPC(Old));
  B.entryPC(MapPC(Orig.entry()));
  return B.build();
}
