//===- checker/DifferentialChecker.cpp - Definition 3.1, literally ----------===//

#include "checker/DifferentialChecker.h"

#include <random>
#include <set>

using namespace sct;

Configuration sct::mutateSecrets(const Program &P, const Configuration &Init,
                                 uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  Configuration C = Init;
  for (const MemRegion &R : P.regions()) {
    if (!R.RegionLabel.isSecret())
      continue;
    for (uint64_t Off = 0; Off < R.Size; ++Off) {
      uint64_t Addr = R.Base + Off;
      // Keep secrets small enough to act as plausible indices/bytes; wild
      // 64-bit values would jump outside the modelled address space and
      // make divergences trivial rather than representative.
      uint64_t Fresh = Rng() & 0xFF;
      C.Mem.store(Addr, Value(Fresh, R.RegionLabel));
    }
  }
  return C;
}

Configuration sct::fillSecrets(const Program &P, const Configuration &Init,
                               uint64_t Bits) {
  Configuration C = Init;
  for (const MemRegion &R : P.regions()) {
    if (!R.RegionLabel.isSecret())
      continue;
    for (uint64_t Off = 0; Off < R.Size; ++Off)
      C.Mem.store(R.Base + Off, Value(Bits, R.RegionLabel));
  }
  return C;
}

DifferentialOutcome sct::runPair(const Machine &M, Configuration A,
                                 Configuration B, const Schedule &D) {
  DifferentialOutcome Out;
  Out.A = runSchedule(M, std::move(A), D);
  Out.B = runSchedule(M, std::move(B), D);

  // Definition 3.1 requires C ⇓_D iff C' ⇓_D: a schedule well-formed for
  // one side only is itself distinguishing.
  if (Out.A.Stuck != Out.B.Stuck ||
      (Out.A.Stuck && Out.A.StuckAt != Out.B.StuckAt)) {
    Out.TracesEqual = false;
    Out.FirstDivergence = 0;
    return Out;
  }

  std::vector<Observation> OA = Out.A.observations();
  std::vector<Observation> OB = Out.B.observations();
  size_t Common = OA.size() < OB.size() ? OA.size() : OB.size();
  for (size_t I = 0; I < Common; ++I) {
    if (!OA[I].observablyEquals(OB[I])) {
      Out.TracesEqual = false;
      Out.FirstDivergence = I;
      return Out;
    }
  }
  if (OA.size() != OB.size()) {
    Out.TracesEqual = false;
    Out.FirstDivergence = Common;
    return Out;
  }
  Out.TracesEqual = true;
  return Out;
}

std::optional<DifferentialOutcome>
sct::checkScheduleDifferentially(const Machine &M, const Schedule &D,
                                 unsigned Pairs, uint64_t Seed) {
  Configuration Init = Configuration::initial(M.program());
  for (unsigned I = 0; I < Pairs; ++I) {
    Configuration Variant = mutateSecrets(M.program(), Init, Seed + I);
    DifferentialOutcome Out = runPair(M, Init, Variant, D);
    if (Out.violation())
      return Out;
  }
  return std::nullopt;
}

WitnessValidation sct::validateWitnesses(const Machine &M,
                                         const ExploreResult &R,
                                         unsigned Pairs, uint64_t Seed,
                                         const Configuration *Base) {
  WitnessValidation V;
  // Replay from the configuration the witnesses were explored from —
  // a schedule derived from a custom start may be ill-formed (or take
  // different branches) from the default one.
  Configuration Init =
      Base ? *Base : Configuration::initial(M.program());
  for (const LeakRecord &L : R.Leaks) {
    bool Confirmed = false;
    for (unsigned I = 0; I < Pairs && !Confirmed; ++I)
      Confirmed = runPair(M, Init, mutateSecrets(M.program(), Init, Seed + I),
                          L.Sched)
                      .violation();
    if (!Confirmed) {
      // Random sampling misses value-specific leaks (equality against a
      // constant); the targeted all-0 vs all-42 pair catches most.
      DifferentialOutcome Out =
          runPair(M, fillSecrets(M.program(), Init, 0),
                  fillSecrets(M.program(), Init, 42), L.Sched);
      Confirmed = Out.violation();
    }
    V.PerLeak.push_back(Confirmed);
    ++V.Checked;
    if (Confirmed)
      ++V.Confirmed;
  }
  return V;
}

DifferentialReport sct::checkDifferential(const CheckSession &Session,
                                          const CheckRequest &Req,
                                          unsigned Pairs, uint64_t Seed) {
  DifferentialReport Rep;
  Rep.Check = Session.check(Req);
  Machine M(Req.Prog, Req.MOpts);
  Rep.Validation =
      validateWitnesses(M, Rep.Check.Exploration, Pairs, Seed,
                        Req.Init ? &*Req.Init : nullptr);
  return Rep;
}


SpsCrossCheck sct::crossValidateSps(const Program &P,
                                    const ExplorerOptions &EOpts,
                                    const ExploreResult &Explored,
                                    const MachineOptions &MOpts,
                                    const SpsOptions &Opts) {
  SpsCrossCheck X;
  X.Sps = checkSps(P, EOpts, MOpts, Opts);

  std::set<PC> Origins;
  for (const LeakRecord &L : Explored.Leaks)
    Origins.insert(L.Origin);
  X.ExplorerOrigins.assign(Origins.begin(), Origins.end());

  // Both oracles must have finished for their leak sets to be complete:
  // a truncated exploration may miss origins, an incomplete SPS run may
  // miss counterexamples — in either case containment says nothing.
  if (!X.Sps.conclusive() || !X.Sps.Complete) {
    X.Skipped = true;
    X.SkipReason = "SPS not conclusive/complete: " + X.Sps.Reason;
    return X;
  }
  if (Explored.Truncated) {
    X.Skipped = true;
    X.SkipReason = "exploration truncated; explorer leak set incomplete";
    return X;
  }

  X.VerdictsAgree =
      Origins.empty() == X.Sps.CounterExamples.empty();
  for (PC O : X.ExplorerOrigins) {
    if (X.Sps.hasCounterExampleAt(O))
      X.Matched.push_back(O);
    else
      X.Unmatched.push_back(O);
  }
  return X;
}
