//===- checker/Mitigation.cpp - Uniform mitigation interface ----------------===//

#include "checker/Mitigation.h"

using namespace sct;

std::optional<MitigationError>
sct::checkRelocatable(const Program &P,
                      const std::vector<uint64_t> &DeclaredAddrs) {
  // Without indirect control flow no data word can ever become a jump
  // target, so relocation cannot miscompile through data.  (A `ret`
  // normally consumes targets that calls pushed at run time — remapped
  // values of remapped call sites, not initial data.  A program that
  // seeds a *return address* into initial stack memory and underflows
  // into it is not caught by this screen; declare such words as code
  // pointers explicitly.)
  bool HasIndirect = false;
  for (PC N = 0; N < P.endPC(); ++N)
    if (P.at(N).is(InstrKind::JumpI) || P.at(N).is(InstrKind::CallI))
      HasIndirect = true;
  if (!HasIndirect)
    return std::nullopt;

  MitigationError E;
  E.K = MitigationError::Kind::NotRelocatable;
  for (const auto &[Addr, V] : P.memInits()) {
    if (V >= P.endPC())
      continue; // Cannot be a program point.
    bool Declared = false;
    for (uint64_t D : DeclaredAddrs)
      if (D == Addr)
        Declared = true;
    if (!Declared)
      E.SuspectAddrs.push_back(Addr);
  }
  if (E.SuspectAddrs.empty())
    return std::nullopt;

  E.Message = "program has indirect control flow and ";
  E.Message += std::to_string(E.SuspectAddrs.size());
  E.Message += " data word(s) that look like undeclared code pointers; "
               "relocating the text would miscompile jumps through them "
               "(declare them as code pointers, or leave the program "
               "untransformed)";
  return E;
}
