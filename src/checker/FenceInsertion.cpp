//===- checker/FenceInsertion.cpp - Speculation-barrier mitigation ----------===//

#include "checker/FenceInsertion.h"

#include "checker/ProgramRewriter.h"

#include <set>

using namespace sct;

Program sct::insertFences(const Program &P, FencePolicy Policy) {
  ProgramRewriter RW(P);
  std::set<PC> FenceAt;

  bool WantBranches = Policy == FencePolicy::BranchTargets ||
                      Policy == FencePolicy::BranchTargetsAndStores;
  bool WantStores = Policy == FencePolicy::AfterStores ||
                    Policy == FencePolicy::BranchTargetsAndStores;

  for (PC N = 0; N < P.endPC(); ++N) {
    const Instruction &I = P.at(N);
    if (WantBranches && I.is(InstrKind::Branch)) {
      // Unconditional encodings (jmp) never misspeculate; skip them.
      if (I.trueTarget() != I.falseTarget() ||
          I.opcode() != Opcode::True) {
        FenceAt.insert(I.trueTarget());
        FenceAt.insert(I.falseTarget());
      }
    }
    if (WantStores && I.is(InstrKind::Store))
      FenceAt.insert(I.next());
  }

  for (PC At : FenceAt)
    RW.insertBefore(At, Instruction::makeFence());
  return RW.apply();
}

size_t sct::countFences(const Program &P) {
  size_t Count = 0;
  for (PC N = 0; N < P.endPC(); ++N)
    if (P.at(N).is(InstrKind::Fence))
      ++Count;
  return Count;
}
