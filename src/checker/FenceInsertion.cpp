//===- checker/FenceInsertion.cpp - Speculation-barrier mitigation ----------===//

#include "checker/FenceInsertion.h"

#include "checker/ProgramRewriter.h"

#include <algorithm>
#include <set>

using namespace sct;

std::string_view sct::fencePolicyName(FencePolicy Policy) {
  switch (Policy) {
  case FencePolicy::BranchTargets:
    return "branch-targets";
  case FencePolicy::AfterStores:
    return "after-stores";
  case FencePolicy::BranchTargetsAndStores:
    return "branch-targets+stores";
  }
  return "?";
}

FenceInsertion::FenceInsertion(FencePolicy Policy,
                               std::vector<uint64_t> CodePointerAddrs,
                               std::vector<Reg> CodePointerRegs)
    : Policy(Policy), CodePointerAddrs(std::move(CodePointerAddrs)),
      CodePointerRegs(std::move(CodePointerRegs)) {}

FenceInsertion::FenceInsertion(std::vector<PC> Sites,
                               std::vector<uint64_t> CodePointerAddrs,
                               std::vector<Reg> CodePointerRegs)
    : Sites(std::move(Sites)), CodePointerAddrs(std::move(CodePointerAddrs)),
      CodePointerRegs(std::move(CodePointerRegs)) {
  std::sort(this->Sites.begin(), this->Sites.end());
  this->Sites.erase(std::unique(this->Sites.begin(), this->Sites.end()),
                    this->Sites.end());
}

std::string FenceInsertion::name() const {
  if (Policy)
    return "fence@" + std::string(fencePolicyName(*Policy));
  return "fence@" + std::to_string(Sites.size()) + "-sites";
}

std::vector<PC> FenceInsertion::policySites(const Program &P,
                                            FencePolicy Policy) {
  std::set<PC> FenceAt;
  bool WantBranches = Policy == FencePolicy::BranchTargets ||
                      Policy == FencePolicy::BranchTargetsAndStores;
  bool WantStores = Policy == FencePolicy::AfterStores ||
                    Policy == FencePolicy::BranchTargetsAndStores;
  for (PC N = 0; N < P.endPC(); ++N) {
    const Instruction &I = P.at(N);
    if (WantBranches && I.is(InstrKind::Branch)) {
      // Unconditional encodings (jmp) never misspeculate; skip them.
      if (I.trueTarget() != I.falseTarget() || I.opcode() != Opcode::True) {
        FenceAt.insert(I.trueTarget());
        FenceAt.insert(I.falseTarget());
      }
    }
    if (WantStores && I.is(InstrKind::Store))
      FenceAt.insert(I.next());
  }
  return std::vector<PC>(FenceAt.begin(), FenceAt.end());
}

MitigationResult FenceInsertion::run(const Program &P) const {
  MitigationResult R;
  std::vector<PC> At = Policy ? policySites(P, *Policy) : Sites;

  if (At.empty()) {
    // Nothing to place: the transform is the identity, which is always
    // safe (no relocation happens, so no code pointer can go stale).
    R.Prog = P;
    R.Map = ProvenanceMap::identityFor(P);
    return R;
  }

  // Explicit site lists come from callers (the placement search, CLIs);
  // a site past the program must surface as a structured error, not a
  // debug-only assert that release builds would turn into a program
  // reported fenced with fences silently dropped.
  for (PC N : At)
    if (N > P.endPC()) {
      R.Error = MitigationError{
          MitigationError::Kind::Unsupported,
          "fence site " + std::to_string(N) + " lies outside the program",
          {}};
      return R;
    }

  if (auto E = checkRelocatable(P, CodePointerAddrs)) {
    R.Error = std::move(E);
    return R;
  }

  ProgramRewriter RW(P);
  for (uint64_t Addr : CodePointerAddrs)
    RW.markCodePointer(Addr);
  for (Reg Rg : CodePointerRegs)
    RW.markCodePointerReg(Rg);
  for (PC N : At)
    RW.insertBefore(N, Instruction::makeFence());
  R.Prog = RW.apply();
  R.Map = RW.provenance();
  R.Cost.InstructionsAdded = static_cast<unsigned>(At.size());
  R.Cost.FencesAdded = static_cast<unsigned>(At.size());
  R.Cost.Sites = static_cast<unsigned>(At.size());
  return R;
}

size_t sct::countFences(const Program &P) {
  size_t Count = 0;
  for (PC N = 0; N < P.endPC(); ++N)
    if (P.at(N).is(InstrKind::Fence))
      ++Count;
  return Count;
}
