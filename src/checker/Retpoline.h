//===- checker/Retpoline.h - The retpoline mitigation ----------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The retpoline construction (Appendix A.2, Figure 13): each indirect
/// jump `jmpi [args]` becomes
///
///     call body          ; pushes the *trap* as the predicted return
///   trap:
///     fence trap         ; self-looping speculation sink
///   body:
///     rretp = <args sum> ; compute the real target
///     store rretp, [rsp] ; overwrite the saved return address
///     ret                ; RSB predicts the trap; the resolved jump
///                        ; rolls back and lands on the real target
///
/// Speculative execution can only ever reach the fence trap; the attacker
/// never steers the transient target (the paper's Figure 13 walkthrough).
///
/// Retpoline implements the uniform Mitigation interface
/// (checker/Mitigation.h); like FenceInsertion it refuses with a
/// structured NotRelocatable error when undeclared code pointers would go
/// stale.  Requires the sum addressing mode (the default).
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CHECKER_RETPOLINE_H
#define SCT_CHECKER_RETPOLINE_H

#include "checker/Mitigation.h"

namespace sct {

/// The retpoline transform.  \p CodePointerAddrs lists data addresses
/// whose initial words are code pointers (jump tables) and must be
/// relocated along with the code; \p CodePointerRegs the registers whose
/// initial values are.
class Retpoline final : public Mitigation {
public:
  explicit Retpoline(std::vector<uint64_t> CodePointerAddrs = {},
                     std::vector<Reg> CodePointerRegs = {})
      : CodePointerAddrs(std::move(CodePointerAddrs)),
        CodePointerRegs(std::move(CodePointerRegs)) {}

  std::string name() const override { return "retpoline"; }
  MitigationResult run(const Program &P) const override;

private:
  std::vector<uint64_t> CodePointerAddrs;
  std::vector<Reg> CodePointerRegs;
};

} // namespace sct

#endif // SCT_CHECKER_RETPOLINE_H
