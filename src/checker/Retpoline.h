//===- checker/Retpoline.h - The retpoline mitigation ----------*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The retpoline construction (Appendix A.2, Figure 13): each indirect
/// jump `jmpi [args]` becomes
///
///     call body          ; pushes the *trap* as the predicted return
///   trap:
///     fence trap         ; self-looping speculation sink
///   body:
///     rretp = <args sum> ; compute the real target
///     store rretp, [rsp] ; overwrite the saved return address
///     ret                ; RSB predicts the trap; the resolved jump
///                        ; rolls back and lands on the real target
///
/// Speculative execution can only ever reach the fence trap; the attacker
/// never steers the transient target (the paper's Figure 13 walkthrough).
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CHECKER_RETPOLINE_H
#define SCT_CHECKER_RETPOLINE_H

#include "isa/Program.h"

namespace sct {

/// Result of the transform.
struct RetpolineResult {
  Program Prog;
  /// Number of indirect jumps rewritten.
  unsigned Rewritten = 0;
};

/// Rewrites every `jmpi` in \p P into a retpoline.  \p CodePointerAddrs
/// lists data addresses whose initial words are code pointers (jump
/// tables) and must be relocated along with the code.  Requires the
/// sum addressing mode (the default).
RetpolineResult retpolineTransform(const Program &P,
                                   const std::vector<uint64_t>
                                       &CodePointerAddrs = {});

} // namespace sct

#endif // SCT_CHECKER_RETPOLINE_H
