//===- checker/SpsTranslator.h - Speculation-passing-style form -*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The speculation-passing-style (SPS) translation (Arranz-Olmos et al.,
/// "(Dis)Proving Spectre Security with Speculation-Passing Style"): a
/// source program under the speculative semantics is rewritten into a
/// *sequential* program `P̂` that carries its speculation state explicitly.
/// Misprediction decisions become inputs (an oracle tape read from a
/// reserved memory region), the reorder buffer's bounded window becomes a
/// fuel counter, and rollback becomes ordinary state restoration (an undo
/// log of transiently overwritten memory plus a register save area).
///
/// The payoff: the *classical sequential* CT analysis over `P̂` — one run
/// per oracle tape, no directive non-determinism — decides speculative
/// constant-time for the source program.  A program with no secret
/// observation on any tape is *proved* leak-free; a secret observation on
/// some tape is a counterexample that lowers back to source coordinates
/// through the provenance map.
///
/// ## The supported fragment and the collapse argument
///
/// The translation targets the v1/v1.1 exploration fragment: forwarding
/// hazards off (stores resolve eagerly, so store-to-load forwarding is
/// deterministic), no alias prediction, no mistraining target sets
/// (`IndirectTargets` / `RsbUnderflowTargets` empty), Sum addressing.  In
/// this fragment every explorer-reachable observation lies on a schedule
/// whose speculative activity is a union of *disjoint excursions*: a
/// mispredicted branch runs the wrong path for at most
/// `SpeculationBound - 1` reorder-buffer entries (with at most
/// `MaxBranchDepth` simultaneously-unresolved wrong guesses), then rolls
/// back to exactly the pre-excursion architectural state.  Nested
/// rollbacks need no explicit modelling: an observation made after an
/// inner rollback is made from the restored state, which is the state of
/// the tape that guessed the inner branch *correctly* — so the union over
/// plain (rollback-free) tapes already covers it.  `P̂` realises exactly
/// that union: each oracle tape is one excursion-choice sequence, and the
/// checker enumerates tapes.
///
/// ## Observation faithfulness
///
/// `P̂`'s sequential observations match the source program's speculative
/// ones at (source instruction, secrecy) granularity:
///
///  - loads emit `read(addr)` with the address taint in both machines;
///  - a transient store's address resolution is observable in the source
///    machine (`store-execute-addr-ok` emits `fwd(addr)`), and `P̂`'s
///    write-through + undo-log emits `read(addr)`/`write(addr)` with the
///    same taint;
///  - a mispredicted branch's rollback jump carries the condition taint;
///    `P̂`'s excursion entry emits an inverted branch with the same taint;
///  - call/ret are emulated (stack bump, return-address store, shadow
///    RSB) so `P̂` itself contains no Call/Ret and its canonical
///    sequential run never rolls back.
///
/// Harness bookkeeping (oracle reads, fuel/depth updates, save/undo
/// traffic) only touches public addresses above `HarnessBase`, so it adds
/// no secret observations that lack a source-mapped shadow.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CHECKER_SPSTRANSLATOR_H
#define SCT_CHECKER_SPSTRANSLATOR_H

#include "checker/ProgramRewriter.h"
#include "core/Eval.h"
#include "sched/ScheduleExplorer.h"

#include <string>
#include <vector>

namespace sct {

/// Which copy of the program a `P̂` instruction belongs to.
enum class SpsMode : unsigned char {
  Harness, ///< oracle/rollback/epilogue machinery, no source image
  Seq,     ///< the architectural (committed) copy
  Spec,    ///< the wrong-path (excursion) copy
};

/// The result of translating a source program into SPS form.
struct SpsTranslation {
  /// All harness state (save area, undo log, shadow RSB, program-point
  /// tables, oracle tape) lives at or above this address; source accesses
  /// are bounds-checked against it at runtime (the `ValidFlag` register).
  static constexpr uint64_t HarnessBase = 1ull << 44;

  /// The sequential SPS program P̂.
  Program Prog;

  /// Source ↔ P̂ provenance in ProgramRewriter's shape: `oldOf(phatPc)`
  /// is the source instruction a P̂ instruction implements,
  /// `newTargetOf(srcPc)` the architectural-copy landing point.
  ProvenanceMap Map;

  /// Per-P̂-pc mode tag (same length as `Prog.size()`).
  std::vector<SpsMode> ModeOf;

  /// First address of the misprediction oracle tape.  The checker writes
  /// tape words here in the initial memory; unwritten words read as 0
  /// ("predict correctly / no excursion").
  uint64_t OracleBase = 0;

  /// Harness registers the checker inspects in the final configuration.
  Reg OracleCursor; ///< final value - OracleBase = number of consults
  Reg ValidFlag;    ///< 0 iff a source access strayed into harness space
  Reg CovFlag;      ///< 0 iff an unmodelled event occurred (ret mismatch)

  /// The explorer parameters the translation was specialised to.
  unsigned Bound = 0;
  unsigned Depth = 0;

  /// Source pc of a P̂ instruction, or nullopt for harness machinery.
  std::optional<PC> srcOf(PC PhatPc) const { return Map.oldOf(PhatPc); }
};

/// Translates programs into speculation-passing style.
class SpsTranslator {
public:
  /// True iff the (options, program) pair lies in the fragment the
  /// translation models faithfully.  On false, \p Why (if non-null)
  /// receives a one-line reason.
  static bool supports(const Program &P, const ExplorerOptions &EOpts,
                       const MachineOptions &MOpts,
                       std::string *Why = nullptr);

  /// Builds P̂ for \p P specialised to \p EOpts' speculation window.
  /// Pre: supports(P, EOpts, MOpts).
  static SpsTranslation translate(const Program &P,
                                  const ExplorerOptions &EOpts,
                                  const MachineOptions &MOpts);
};

} // namespace sct

#endif // SCT_CHECKER_SPSTRANSLATOR_H
