//===- checker/ProgramRewriter.h - Structured program rewriting -*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small rewriting engine for program transformations (the fence and
/// retpoline mitigations): insert instructions before existing program
/// points, replace instructions with sequences, and append fresh blocks,
/// with all control-flow targets — branch targets, callees, successors,
/// the entry point, code labels, and designated code-pointer data words —
/// remapped to the new layout.
///
/// Instructions given to the rewriter express control flow in *old*
/// program-point coordinates (or virtual points returned by append());
/// apply() relocates them.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CHECKER_PROGRAMREWRITER_H
#define SCT_CHECKER_PROGRAMREWRITER_H

#include "isa/Program.h"

#include <map>

namespace sct {

/// Rewrites one program.
class ProgramRewriter {
public:
  /// Sentinel successor: apply() points the instruction at itself (used
  /// for the self-looping fence trap of the retpoline construction).
  static constexpr PC SelfLoop = 0xFFFFFFFF;

  explicit ProgramRewriter(const Program &P) : Orig(P) {}

  /// Inserts \p I immediately before old program point \p At; everything
  /// that targeted \p At now targets the inserted instruction.  Multiple
  /// insertions at one point keep their call order.  \p At may be the old
  /// end point (appending an epilogue).
  void insertBefore(PC At, Instruction I);

  /// Replaces the instruction at old point \p At with \p Seq (straight-
  /// line; the last element falls through to the old successor unless it
  /// has explicit targets).
  void replace(PC At, std::vector<Instruction> Seq);

  /// Appends a fresh block after the program; returns the virtual program
  /// point of its first instruction, usable as a branch/call target in
  /// other rewriter instructions.
  PC append(std::vector<Instruction> Block);

  /// Declares that the data word initialised at \p Addr holds a code
  /// pointer and must be remapped.
  void markCodePointer(uint64_t Addr) { CodePointers.push_back(Addr); }

  /// Declares an extra (scratch) register for use by rewritten code;
  /// usable in rewriter instructions immediately.
  Reg scratchReg(const std::string &Name);

  /// Runs the rewrite.
  Program apply();

  /// After apply(): the new location of old (or virtual) point \p OldPC.
  PC newPC(PC OldPC) const;

private:
  const Program &Orig;
  std::map<PC, std::vector<Instruction>> Inserted;
  std::map<PC, std::vector<Instruction>> Replaced;
  std::vector<std::vector<Instruction>> Appended;
  std::vector<uint64_t> CodePointers;
  std::vector<std::string> ExtraRegs;
  std::map<PC, PC> Remap;
  bool Applied = false;
};

} // namespace sct

#endif // SCT_CHECKER_PROGRAMREWRITER_H
