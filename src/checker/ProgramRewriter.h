//===- checker/ProgramRewriter.h - Structured program rewriting -*- C++ -*-===//
//
// Part of libsct, a reproduction of "Constant-Time Foundations for the New
// Spectre Era" (Cauligi et al., PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small rewriting engine for program transformations (the fence and
/// retpoline mitigations): insert instructions before existing program
/// points, replace instructions with sequences, and append fresh blocks,
/// with all control-flow targets — branch targets, callees, successors,
/// the entry point, code labels, and designated code-pointer data words —
/// remapped to the new layout.
///
/// Instructions given to the rewriter express control flow in *old*
/// program-point coordinates (or virtual points returned by append());
/// apply() relocates them.
///
//===----------------------------------------------------------------------===//

#ifndef SCT_CHECKER_PROGRAMREWRITER_H
#define SCT_CHECKER_PROGRAMREWRITER_H

#include "isa/Program.h"

#include <map>
#include <optional>

namespace sct {

/// Instruction-index provenance of a rewrite: where each old program
/// point ended up in the new layout, in both of the senses a consumer
/// needs.
///
///  - The *instruction* maps track the old instruction itself: `newOf(n)`
///    is the slot the instruction at old point `n` occupies in the new
///    program (nullopt if it was replaced away), and `oldOf(m)` inverts
///    that (nullopt for inserted/appended instructions, which have no old
///    identity).  Transient-instruction origins live in this coordinate
///    system.
///  - The *target* maps track control flow: `newTargetOf(n)` is where a
///    jump to old point `n` lands in the new program — the first
///    instruction inserted before `n`, when there is one — and
///    `oldTargetOf(m)` inverts it.  Fetch points, branch targets, and RSB
///    entries live here.
///
/// The engine's seen-state reuse hashes a mitigated program's
/// configurations back into baseline coordinates through these maps
/// (sched/SeenStates.h); the mitigation reports use them to relate leak
/// origins across the transform.
struct ProvenanceMap {
  /// Sentinel for "no image".
  static constexpr PC None = 0xFFFFFFFF;

  /// Old instruction index -> its new slot (None if replaced away).
  std::vector<PC> InstrOldToNew;
  /// New slot -> the old instruction it carries (None if inserted).
  std::vector<PC> InstrNewToOld;
  /// Old control-flow point -> new landing point (size oldEndPC + 1; the
  /// end point maps too).
  std::vector<PC> TargetOldToNew;
  /// New control-flow point -> the old point it is the image of (None if
  /// nothing targeted it).
  std::vector<PC> TargetNewToOld;

  std::optional<PC> newOf(PC Old) const {
    if (Old >= InstrOldToNew.size() || InstrOldToNew[Old] == None)
      return std::nullopt;
    return InstrOldToNew[Old];
  }
  std::optional<PC> oldOf(PC New) const {
    if (New >= InstrNewToOld.size() || InstrNewToOld[New] == None)
      return std::nullopt;
    return InstrNewToOld[New];
  }
  std::optional<PC> newTargetOf(PC Old) const {
    if (Old >= TargetOldToNew.size())
      return std::nullopt;
    return TargetOldToNew[Old];
  }
  std::optional<PC> oldTargetOf(PC New) const {
    if (New >= TargetNewToOld.size() || TargetNewToOld[New] == None)
      return std::nullopt;
    return TargetNewToOld[New];
  }

  /// True iff the rewrite moved nothing: every instruction kept its index
  /// and nothing was inserted, replaced, or appended.
  bool identity() const;

  /// The identity provenance for \p P — what a transform that changed
  /// nothing reports.
  static ProvenanceMap identityFor(const Program &P);
};

/// Rewrites one program.
class ProgramRewriter {
public:
  /// Sentinel successor: apply() points the instruction at itself (used
  /// for the self-looping fence trap of the retpoline construction).
  static constexpr PC SelfLoop = 0xFFFFFFFF;

  explicit ProgramRewriter(const Program &P) : Orig(P) {}

  /// Inserts \p I immediately before old program point \p At; everything
  /// that targeted \p At now targets the inserted instruction.  Multiple
  /// insertions at one point keep their call order.  \p At may be the old
  /// end point (appending an epilogue).
  void insertBefore(PC At, Instruction I);

  /// Replaces the instruction at old point \p At with \p Seq (straight-
  /// line; the last element falls through to the old successor unless it
  /// has explicit targets).
  void replace(PC At, std::vector<Instruction> Seq);

  /// Appends a fresh block after the program; returns the virtual program
  /// point of its first instruction, usable as a branch/call target in
  /// other rewriter instructions.
  PC append(std::vector<Instruction> Block);

  /// Declares that the data word initialised at \p Addr holds a code
  /// pointer and must be remapped.
  void markCodePointer(uint64_t Addr) { CodePointers.push_back(Addr); }

  /// Declares that register \p R's initial value is a code pointer and
  /// must be remapped (e.g. a function pointer seeded through `.init`).
  void markCodePointerReg(Reg R) { CodePointerRegs.push_back(R); }

  /// Declares an extra (scratch) register for use by rewritten code;
  /// usable in rewriter instructions immediately.
  Reg scratchReg(const std::string &Name);

  /// Runs the rewrite.
  Program apply();

  /// After apply(): the new location of old (or virtual) point \p OldPC.
  PC newPC(PC OldPC) const;

  /// After apply(): the full instruction-index provenance of the rewrite.
  ProvenanceMap provenance() const;

private:
  const Program &Orig;
  std::map<PC, std::vector<Instruction>> Inserted;
  std::map<PC, std::vector<Instruction>> Replaced;
  std::vector<std::vector<Instruction>> Appended;
  std::vector<uint64_t> CodePointers;
  std::vector<Reg> CodePointerRegs;
  std::vector<std::string> ExtraRegs;
  std::map<PC, PC> Remap;
  /// Per new slot: the old instruction index it carries, or
  /// ProvenanceMap::None for inserted/replacement/appended slots.
  std::vector<PC> SlotOldPC;
  bool Applied = false;
};

} // namespace sct

#endif // SCT_CHECKER_PROGRAMREWRITER_H
