//===- tests/HashEquivalenceTest.cpp - Incremental fingerprint oracle -------===//
//
// The incremental-hash maintenance contract (ARCHITECTURE.md invariant 4):
// every component keeps its fingerprint as a running XOR-multiset updated
// at each mutation, and `hash()` must be *bit-equal* to the full-walk
// oracle `hashFromScratch()` at every reachable configuration.  The
// explorer's seen-state pruning keys on these values, so a maintenance
// bug silently changes which subtrees get explored — this suite is the
// tripwire.
//
// Properties, over random programs and random well-formed schedules
// (which exercise fetch/execute/retire, store forwarding, hazard
// rollbacks, and RSB push/pop):
//   - whole-configuration and per-component incremental == from-scratch
//     after every single step;
//   - copy-on-write sharing and unsharing (configuration copies that then
//     diverge) preserves both sides' fingerprints;
//   - the remap-aware hash under an identity remap equals the plain hash
//     (the full-walk fallback path used by mitigation re-check reuse);
//   - the flat copy-on-write memory agrees with a reference map oracle on
//     every load, and is canonical: store order and default-valued cells
//     do not affect equality or the fingerprint.
//
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"

#include "core/Configuration.h"
#include "sched/RandomScheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <random>
#include <thread>

using namespace sct;

namespace {

/// Asserts the incremental fingerprint of every component — and their
/// chained combination — against the full-walk oracles.
void expectHashesMatchScratch(const Configuration &C, uint64_t Seed,
                              size_t Step) {
  ASSERT_EQ(C.Regs.hash(), C.Regs.hashFromScratch())
      << "registers diverged; seed " << Seed << " step " << Step;
  ASSERT_EQ(C.Mem.hash(), C.Mem.hashFromScratch())
      << "memory diverged; seed " << Seed << " step " << Step;
  ASSERT_EQ(C.Buf.hash(), C.Buf.hashFromScratch())
      << "reorder buffer diverged; seed " << Seed << " step " << Step;
  ASSERT_EQ(C.Rsb.hash(), C.Rsb.hashFromScratch())
      << "RSB diverged; seed " << Seed << " step " << Step;
  ASSERT_EQ(C.hash(), C.hashFromScratch())
      << "configuration diverged; seed " << Seed << " step " << Step;
}

class HashEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HashEquivalence, IncrementalMatchesScratchEveryStep) {
  uint64_t Seed = GetParam();
  RandomProgramOptions POpts;
  POpts.WithJumpI = (Seed % 3 == 0); // Mix in indirect control flow.
  Program P = randomProgram(Seed, POpts);
  ASSERT_TRUE(P.validate().empty());
  Machine M(P);
  Configuration Init = Configuration::initial(P);
  expectHashesMatchScratch(Init, Seed, 0);

  RandomRunOptions Ropts;
  Ropts.Seed = Seed * 131 + 17;
  Ropts.MaxSteps = 300;
  RunResult R = runRandom(M, Init, Ropts);

  Configuration C = Init;
  size_t Step = 0;
  for (const StepRecord &S : R.Trace) {
    ASSERT_TRUE(M.step(C, S.D).has_value());
    expectHashesMatchScratch(C, Seed, ++Step);
  }
}

TEST_P(HashEquivalence, CowUnsharePreservesBothFingerprints) {
  uint64_t Seed = GetParam();
  Program P = randomProgram(Seed);
  Machine M(P);
  Configuration Init = Configuration::initial(P);

  RandomRunOptions Ropts;
  Ropts.Seed = Seed * 977 + 3;
  Ropts.MaxSteps = 200;
  RunResult R = runRandom(M, Init, Ropts);
  if (R.Trace.size() < 4)
    GTEST_SKIP() << "run too short to fork";

  // Fork mid-run (the explorer's fork pattern: a plain copy, memory cells
  // COW-shared), then advance the two sides along different suffixes.
  Configuration A = Init;
  size_t Half = R.Trace.size() / 2;
  for (size_t I = 0; I < Half; ++I)
    ASSERT_TRUE(M.step(A, R.Trace[I].D).has_value());
  Configuration B = A;
  EXPECT_TRUE(B.Mem.sharesCells() || A.Mem.cellCount() == 0);
  ASSERT_EQ(A.hash(), B.hash());

  for (size_t I = Half; I < R.Trace.size(); ++I)
    ASSERT_TRUE(M.step(A, R.Trace[I].D).has_value());

  RandomRunOptions BOpts;
  BOpts.Seed = Seed * 613 + 41;
  BOpts.MaxSteps = 100;
  RunResult RB = runRandom(M, B, BOpts);
  for (const StepRecord &S : RB.Trace)
    ASSERT_TRUE(M.step(B, S.D).has_value());

  // Both sides' incremental fingerprints survived the unsharing writes.
  expectHashesMatchScratch(A, Seed, Half + 1000);
  expectHashesMatchScratch(B, Seed, Half + 2000);
}

/// The trivial remap: every point maps to itself.  Under it the
/// remap-aware full-walk hash must reproduce the plain fingerprint — the
/// property the mitigation reuse filter's commensurability rests on.
struct IdentityRemap final : PcRemap {
  std::optional<PC> target(PC N) const override { return N; }
  std::optional<PC> instr(PC N) const override { return N; }
};

TEST_P(HashEquivalence, IdentityRemapEqualsPlainHash) {
  uint64_t Seed = GetParam();
  Program P = randomProgram(Seed);
  Machine M(P);
  Configuration C = Configuration::initial(P);

  RandomRunOptions Ropts;
  Ropts.Seed = Seed * 389 + 11;
  Ropts.MaxSteps = 150;
  RunResult R = runRandom(M, C, Ropts);

  IdentityRemap Id;
  size_t Step = 0;
  for (const StepRecord &S : R.Trace) {
    ASSERT_TRUE(M.step(C, S.D).has_value());
    ++Step;
    if (Step % 7 != 0) // Sample; the walk is O(state).
      continue;
    std::optional<uint64_t> H = C.hash(Id);
    ASSERT_TRUE(H.has_value()) << "identity remap refused a point";
    EXPECT_EQ(*H, C.hash()) << "seed " << Seed << " step " << Step;
    std::optional<uint64_t> BufH = C.Buf.hash(Id);
    ASSERT_TRUE(BufH.has_value());
    EXPECT_EQ(*BufH, C.Buf.hash());
  }
}

//===------------------------------------------------ flat memory oracle ---===//

TEST_P(HashEquivalence, FlatMemoryMatchesReferenceMap) {
  uint64_t Seed = GetParam();
  Program P = randomProgram(Seed);
  Configuration Init = Configuration::initial(P);
  std::mt19937_64 Rng(Seed * 0x9e3779b97f4a7c15ull + 1);

  // Addresses stay inside the regions randomProgram maps (stack + pub +
  // sec); values are sampled from the initial contents so secret-labelled
  // values circulate too.
  auto RandomAddr = [&] { return 0x30 + Rng() % 0x20; };
  auto RandomVal = [&] { return Init.Mem.load(0x40 + Rng() % 0x10); };

  Memory Flat = Init.Mem;
  std::map<uint64_t, Value> Oracle; // Reference: last store wins.
  for (unsigned I = 0; I < 200; ++I) {
    uint64_t A = RandomAddr();
    Value V = RandomVal();
    Flat.store(A, V);
    Oracle[A] = V;
    ASSERT_EQ(Flat.hash(), Flat.hashFromScratch()) << "store " << I;
  }
  for (uint64_t A = 0x30; A < 0x50; ++A) {
    auto It = Oracle.find(A);
    Value Expect = It != Oracle.end() ? It->second : Init.Mem.load(A);
    EXPECT_EQ(Flat.load(A), Expect) << "addr " << A;
  }
  // forEachCell visits ascending addresses, covering every stored cell.
  uint64_t Prev = 0;
  bool First = true;
  size_t Visited = 0;
  Flat.forEachCell([&](uint64_t A, const Value &V) {
    EXPECT_TRUE(First || A > Prev) << "visit order not ascending";
    First = false;
    Prev = A;
    ++Visited;
    auto It = Oracle.find(A);
    if (It != Oracle.end())
      EXPECT_EQ(V, It->second);
  });
  EXPECT_GE(Visited, Oracle.size());
}

TEST_P(HashEquivalence, MemoryEqualityIsStoreOrderAndDefaultCanonical) {
  uint64_t Seed = GetParam();
  Program P = randomProgram(Seed);
  Configuration Init = Configuration::initial(P);
  std::mt19937_64 Rng(Seed * 0x2545f4914f6cdd1dull + 7);

  // Distinct addresses, so permuting the stores preserves final content.
  std::vector<std::pair<uint64_t, Value>> Writes;
  for (uint64_t A = 0x30; A < 0x48; ++A)
    if (Rng() % 2)
      Writes.push_back({A, Init.Mem.load(0x40 + Rng() % 0x10)});

  Memory Fwd = Init.Mem, Rev = Init.Mem;
  for (const auto &[A, V] : Writes)
    Fwd.store(A, V);
  for (auto It = Writes.rbegin(); It != Writes.rend(); ++It)
    Rev.store(It->first, It->second);
  EXPECT_TRUE(Fwd == Rev);
  EXPECT_EQ(Fwd.hash(), Rev.hash());

  // Storing an address's default value materialises a cell but must be
  // invisible to both equality and the fingerprint (default-canonical).
  Memory Padded = Fwd;
  uint64_t Untouched = 0x48;
  while (std::any_of(Writes.begin(), Writes.end(),
                     [&](const auto &W) { return W.first == Untouched; }))
    ++Untouched;
  Padded.store(Untouched, Init.Mem.load(Untouched));
  EXPECT_TRUE(Padded == Fwd);
  EXPECT_EQ(Padded.hash(), Fwd.hash());
  EXPECT_EQ(Padded.hash(), Padded.hashFromScratch());
}

// The chunked reorder buffer's structural sharing: a copy shares sealed
// chunks until one side writes through mut(), which must unshare just
// that chunk and leave BOTH sides' incremental fingerprints bit-equal to
// their oracles.  Drives the buffer directly (pushes across several
// chunk seals, retires across chunk seams, rollbacks into sealed
// territory, in-place rewrites) so every unshare path runs, interleaved
// on both sides of a fork.
TEST_P(HashEquivalence, ChunkUnshareOnMutateKeepsForksOracleEqual) {
  uint64_t Seed = GetParam();
  std::mt19937_64 Rng(Seed * 0x6a09e667f3bcc909ull + 5);
  auto RandomEntry = [&](PC N) {
    switch (Rng() % 3) {
    case 0:
      return TransientInstr::makeJump(PC(Rng() % 64), N);
    case 1:
      return TransientInstr::makeFence(N);
    default:
      return TransientInstr::makeStore(
          Operand::imm(Rng() % 256),
          {Operand::imm(0x30 + Rng() % 16)}, N);
    }
  };

  ReorderBuffer A;
  // Grow past several chunk seals, probing some prefixes so chunks reach
  // the fork in a mix of folded and pending states.
  PC Grow = PC(3 * ReorderBuffer::ChunkCap + Rng() % 5);
  for (PC N = 0; N < Grow; ++N) {
    A.push(RandomEntry(N));
    if (Rng() % 4 == 0)
      A.hash();
  }
  ASSERT_EQ(A.hash(), A.hashFromScratch());

  ReorderBuffer B = A;
  ASSERT_TRUE(A.sharesChunks());
  ASSERT_EQ(B.hash(), A.hash());

  for (unsigned Step = 0; Step < 120; ++Step) {
    ReorderBuffer &R = (Rng() % 2) ? A : B;
    switch (Rng() % 5) {
    case 0:
      R.push(RandomEntry(PC(64 + Step)));
      break;
    case 1:
      if (!R.empty())
        R.popFront();
      break;
    case 2:
      if (!R.empty()) {
        // In-place rewrite through the mutation chokepoint — the
        // unshare-on-first-write path when the chunk is shared.  Fences
        // are never rewritten (mirrors Machine.cpp, which only retires
        // them; the fence-index list is maintained at push/pop/truncate).
        BufIdx I = R.minIndex() + Rng() % R.size();
        if (!R.at(I).is(TransientKind::Fence))
          R.mut(I) = TransientInstr::makeJump(PC(Rng() % 64), PC(Step));
      }
      break;
    case 3:
      if (!R.empty())
        R.truncateFrom(R.minIndex() + Rng() % (R.size() + 1));
      break;
    default: {
      const ReorderBuffer &Frozen = R;
      ASSERT_EQ(Frozen.hash(), R.hashFromScratch())
          << "const probe diverged; seed " << Seed << " step " << Step;
      break;
    }
    }
    ASSERT_EQ(A.hash(), A.hashFromScratch())
        << "fork A diverged; seed " << Seed << " step " << Step;
    ASSERT_EQ(B.hash(), B.hashFromScratch())
        << "fork B diverged; seed " << Seed << " step " << Step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HashEquivalence,
                         ::testing::Range<uint64_t>(1, 33));

// The const hash() overload's concurrency contract: a shared (frozen)
// configuration — the explorer holds exactly this shape in checkpoint
// rungs — may be fingerprinted from many threads at once.  The const
// overload performs NO writes at all: pending contributions are
// recomputed on the fly and combined into the running value without
// touching the per-copy fold state or the chunks' shared memo caches
// (those relaxed atomics exist for cross-fork fold/retire/clone races,
// where every writer derives the same bit-identical value from the same
// settled entry).  Run under TSan this is the tripwire for anyone adding
// writes to the const path; it also pins that concurrent reads agree
// with the oracle bit-for-bit.
TEST(HashEquivalenceConcurrent, SharedConfigurationConstHashIsWriteFree) {
  Program P = randomProgram(7);
  Machine M(P);
  Configuration C = Configuration::initial(P);
  RandomRunOptions Ropts;
  Ropts.Seed = 7 * 131 + 17;
  Ropts.MaxSteps = 120;
  RunResult R = runRandom(M, C, Ropts);
  for (const StepRecord &S : R.Trace)
    ASSERT_TRUE(M.step(C, S.D).has_value());
  // Leave pending (never-probed) ROB entries in place: the mutable
  // memoizing overload must NOT be reachable through the const ref.
  const Configuration &Shared = C;
  uint64_t Expect = Shared.hashFromScratch();

  std::vector<std::thread> Pool;
  std::atomic<unsigned> Mismatches{0};
  for (int T = 0; T < 8; ++T)
    Pool.emplace_back([&] {
      for (int I = 0; I < 1000; ++I)
        if (Shared.hash() != Expect)
          Mismatches.fetch_add(1, std::memory_order_relaxed);
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(Mismatches.load(), 0u);
}

// The shared-checkpoint shape under fire: a frozen configuration whose
// sealed ROB chunks are ALSO shared (structurally) with live forks that
// other threads are mutating.  The mutators unshare chunks and fold
// fingerprints on their private copies while const probes of the frozen
// side run full tilt through the same shared memo atomics.  Under TSan
// this pins that the only cross-thread accesses are those relaxed
// atomics; the counters pin that every side stays bit-equal to its
// oracle throughout.
TEST(HashEquivalenceConcurrent, SharedChunksConstHashRacesMutatingForks) {
  Program P = randomProgram(11);
  Machine M(P);
  Configuration C = Configuration::initial(P);
  RandomRunOptions Ropts;
  Ropts.Seed = 11 * 131 + 17;
  Ropts.MaxSteps = 160;
  RunResult R = runRandom(M, C, Ropts);
  for (const StepRecord &S : R.Trace)
    ASSERT_TRUE(M.step(C, S.D).has_value());

  const Configuration &Frozen = C;
  uint64_t Expect = Frozen.hashFromScratch();

  std::vector<std::thread> Pool;
  std::atomic<unsigned> Mismatches{0};
  // Four const probes of the frozen checkpoint...
  for (int T = 0; T < 4; ++T)
    Pool.emplace_back([&] {
      for (int I = 0; I < 1000; ++I)
        if (Frozen.hash() != Expect)
          Mismatches.fetch_add(1, std::memory_order_relaxed);
    });
  // ...racing four forks that each advance (and so unshare and re-fold)
  // a private copy whose chunks start out shared with Frozen.
  for (int T = 0; T < 4; ++T)
    Pool.emplace_back([&, T] {
      Configuration F = C;
      RandomRunOptions FOpts;
      FOpts.Seed = 1000 + uint64_t(T) * 7919;
      FOpts.MaxSteps = 120;
      RunResult FR = runRandom(M, F, FOpts);
      for (const StepRecord &S : FR.Trace)
        if (!M.step(F, S.D).has_value()) {
          Mismatches.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      if (F.hash() != F.hashFromScratch())
        Mismatches.fetch_add(1, std::memory_order_relaxed);
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(Mismatches.load(), 0u);
}

} // namespace
