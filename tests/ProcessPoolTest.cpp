//===- tests/ProcessPoolTest.cpp - Multi-process checkMany identity ---------===//
//
// The audit service's soundness contract for the worker backend
// (engine/ProcessPool.h): dispatching checkMany over N sctworker
// subprocesses must produce exactly the in-process results — same leak
// sets, same verdicts, byte-identical serialized CheckResults — at every
// worker count, after a worker is killed mid-batch (single re-dispatch),
// and when the worker binary cannot be spawned at all (in-process
// fallback).  Anything less and `--workers` would be a verdict-changing
// flag, which it must never be.
//
// The worker binary is found next to this test executable (all targets
// land in the build root) via defaultWorkerBinary(); SCT_WORKER_BIN
// overrides.
//
//===----------------------------------------------------------------------===//

#include "engine/ProcessPool.h"
#include "engine/Serialization.h"
#include "checker/SctChecker.h"
#include "workloads/Kocher.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <gtest/gtest.h>
#include <thread>
#include <unistd.h>

using namespace sct;

namespace {

std::vector<CheckRequest> corpus(size_t MaxCases) {
  std::vector<CheckRequest> Reqs;
  for (const SuiteCase &C : kocherCases()) {
    if (Reqs.size() >= MaxCases)
      break;
    CheckRequest Req;
    Req.Id = C.Id;
    Req.Prog = C.Prog;
    Req.Opts = v1v11Mode();
    Reqs.push_back(std::move(Req));
  }
  return Reqs;
}

/// Leak-set + verdict identity, plus the stronger byte-identity of the
/// whole serialized result.
void expectResultsIdentical(const std::vector<CheckResult> &A,
                            const std::vector<CheckResult> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Id, B[I].Id);
    EXPECT_EQ(A[I].secure(), B[I].secure()) << A[I].Id;
    ASSERT_EQ(A[I].Exploration.Leaks.size(), B[I].Exploration.Leaks.size())
        << A[I].Id;
    for (size_t L = 0; L < A[I].Exploration.Leaks.size(); ++L) {
      EXPECT_EQ(A[I].Exploration.Leaks[L].key(),
                B[I].Exploration.Leaks[L].key())
          << A[I].Id << " leak " << L;
      EXPECT_EQ(A[I].Exploration.Leaks[L].Sched,
                B[I].Exploration.Leaks[L].Sched)
          << A[I].Id << " leak " << L;
    }
    // Compare everything else through the serializer with the fields the
    // determinism contract excludes zeroed: wall-clock, and the resolved
    // thread/shard share (each backend splits the budget differently —
    // exactly why optionsFingerprint normalizes them).
    CheckResult CA = A[I], CB = B[I];
    CA.Seconds = CB.Seconds = 0;
    if (CA.Sps)
      CA.Sps->Seconds = 0;
    if (CB.Sps)
      CB.Sps->Seconds = 0;
    CA.Opts.Threads = CB.Opts.Threads = 0;
    CA.Opts.Shards = CB.Opts.Shards = 0;
    EXPECT_EQ(serializeCheckResult(CA), serializeCheckResult(CB)) << A[I].Id;
  }
}

/// Byte-identity across backends is only meaningful with single-threaded
/// frontiers: a multithreaded frontier may record a different (equally
/// valid) witness schedule for the same leak key depending on which
/// worker thread reaches it first.  Identity tests pin Threads = 1; the
/// any-thread-count contract (same leak *set*) is checked separately.
std::vector<CheckResult> runWith(unsigned Workers,
                                 const std::vector<CheckRequest> &Reqs,
                                 unsigned Threads = 1) {
  SessionOptions SOpts;
  SOpts.Threads = Threads;
  SOpts.Workers = Workers;
  CheckSession Session(SOpts);
  return Session.checkMany(std::span<const CheckRequest>(Reqs));
}

/// Order-insensitive leak identity: the multiset of leak keys per result.
std::vector<std::vector<uint64_t>> leakKeys(const std::vector<CheckResult> &Rs) {
  std::vector<std::vector<uint64_t>> Keys;
  for (const CheckResult &R : Rs) {
    std::vector<uint64_t> K;
    for (const LeakRecord &L : R.Exploration.Leaks)
      K.push_back(L.key());
    std::sort(K.begin(), K.end());
    Keys.push_back(std::move(K));
  }
  return Keys;
}

} // namespace

TEST(ProcessPool, WorkerBinaryIsDiscoverable) {
  std::string Bin = defaultWorkerBinary();
  ASSERT_FALSE(Bin.empty());
  EXPECT_EQ(::access(Bin.c_str(), X_OK), 0)
      << "sctworker not built next to the test binary: " << Bin;
}

TEST(ProcessPool, LeakSetsIdenticalToInProcessAtEveryWorkerCount) {
  std::vector<CheckRequest> Reqs = corpus(6);
  std::vector<CheckResult> InProc = runWith(0, Reqs);
  for (unsigned Workers : {1u, 4u}) {
    std::vector<CheckResult> Remote = runWith(Workers, Reqs);
    SCOPED_TRACE("workers=" + std::to_string(Workers));
    expectResultsIdentical(InProc, Remote);
  }

  // With a multithreaded frontier the recorded witness schedules may
  // legally differ, but the leak sets and verdicts must not.
  std::vector<CheckResult> InProcMt = runWith(0, Reqs, /*Threads=*/4);
  std::vector<CheckResult> RemoteMt = runWith(2, Reqs, /*Threads=*/4);
  EXPECT_EQ(leakKeys(InProcMt), leakKeys(RemoteMt));
  for (size_t I = 0; I < Reqs.size(); ++I)
    EXPECT_EQ(InProcMt[I].secure(), RemoteMt[I].secure()) << Reqs[I].Id;
}

TEST(ProcessPool, MinimizationAndSpsSurviveTheWire) {
  // Pass outputs (minimized witnesses, SPS reports) are part of the
  // serialized reply; they must come back exactly as computed in-process.
  std::vector<CheckRequest> Reqs = corpus(3);
  for (CheckRequest &R : Reqs) {
    PassConfig &Passes = R.Passes.emplace();
    Passes.MinimizeWitnesses = true;
    Passes.ProveSps = true;
    Passes.Sps.DepthToWindow = true;
  }
  std::vector<CheckResult> InProc = runWith(0, Reqs);
  std::vector<CheckResult> Remote = runWith(2, Reqs);
  expectResultsIdentical(InProc, Remote);
  for (const CheckResult &R : Remote)
    EXPECT_TRUE(R.Minimization.has_value() || (R.Sps && R.Sps->conclusive()))
        << R.Id;
}

TEST(ProcessPool, KilledWorkerIsRedispatched) {
  // Kill every worker we can see while the batch is in flight; the
  // dispatcher detects the EOF, re-dispatches each lost job once to a
  // fresh slot (or the fallback path), and the results stay identical.
  std::vector<CheckRequest> Reqs = corpus(6);
  std::vector<CheckResult> InProc = runWith(0, Reqs);

  ProcessPool::Options POpts;
  POpts.WorkerBinary = defaultWorkerBinary();
  POpts.Workers = 2;
  ProcessPool Pool(POpts);
  ASSERT_TRUE(Pool.ok());
  ASSERT_EQ(Pool.aliveWorkers(), 2u);

  pid_t Victim = Pool.workerPid(0);
  ASSERT_GT(Victim, 0);

  std::vector<size_t> Jobs(Reqs.size());
  for (size_t I = 0; I < Jobs.size(); ++I)
    Jobs[I] = I;
  std::vector<CheckResult> Remote(Reqs.size());
  std::vector<bool> Got(Reqs.size(), false);

  std::thread Killer([Victim] {
    // Give the dispatcher a moment to put the victim to work, then kill
    // it mid-job.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ::kill(Victim, SIGKILL);
  });

  std::vector<size_t> Fallback = Pool.run(
      Jobs,
      [&](size_t Job) {
        PassConfig Passes;
        return serializeWireRequest(Reqs[Job], Passes);
      },
      [&](size_t Job, std::span<const uint8_t> Payload) {
        std::optional<CheckResult> Res = deserializeCheckResult(Payload);
        if (!Res)
          return false;
        Remote[Job] = std::move(*Res);
        Got[Job] = true;
        return true;
      });
  Killer.join();

  // Jobs the pool could not finish (e.g. both workers dead) come back as
  // fallback indices; run them in-process like CheckSession does.
  CheckSession Direct(SessionOptions{});
  for (size_t Job : Fallback) {
    Remote[Job] = Direct.check(Reqs[Job]);
    Got[Job] = true;
  }
  for (size_t I = 0; I < Reqs.size(); ++I)
    ASSERT_TRUE(Got[I]) << "job " << I << " neither completed nor fell back";
  expectResultsIdentical(InProc, Remote);
}

TEST(ProcessPool, UnspawnableBinaryFallsBackInProcess) {
  std::vector<CheckRequest> Reqs = corpus(3);
  std::vector<CheckResult> InProc = runWith(0, Reqs);

  SessionOptions SOpts;
  SOpts.Threads = 2;
  SOpts.Workers = 2;
  SOpts.WorkerBinary = "/nonexistent/sctworker-definitely-missing";
  CheckSession Session(SOpts);
  std::vector<CheckResult> Fallback =
      Session.checkMany(std::span<const CheckRequest>(Reqs));
  expectResultsIdentical(InProc, Fallback);
}

TEST(ProcessPool, NonWireableRequestsStayLocalAndCorrect) {
  // Reuse-carrying and init-carrying requests are not wireable; checkMany
  // must route them through the in-process path even when workers are on,
  // and still return the same results.
  std::vector<CheckRequest> Reqs = corpus(4);
  Reqs[1].Opts.ExportSeenStates = true; // Not wireable.
  std::vector<CheckResult> InProc = runWith(0, Reqs);
  std::vector<CheckResult> Mixed = runWith(2, Reqs);
  expectResultsIdentical(InProc, Mixed);
}
