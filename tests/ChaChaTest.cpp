//===- tests/ChaChaTest.cpp - ARX kernel workload ----------------------------===//

#include "workloads/ChaCha.h"

#include "checker/SctChecker.h"
#include "checker/SequentialCt.h"

#include <gtest/gtest.h>

using namespace sct;

namespace {

TEST(ChaCha, KernelComputesAKeystreamBlock) {
  SuiteCase C = chachaKernel();
  ASSERT_TRUE(C.Prog.validate().empty());
  Machine M(C.Prog);
  SequentialResult R = runSequential(M, Configuration::initial(C.Prog));
  ASSERT_FALSE(R.Run.Stuck) << R.Run.StuckReason;
  EXPECT_TRUE(R.Run.Final.isFinal(C.Prog));
  // The block is the permuted state plus the initial state: every output
  // word is 32-bit, key-tainted, and differs from the raw key.
  for (uint64_t W = 0; W < 16; ++W) {
    Value Out = R.Run.Final.Mem.load(0x340 + W);
    EXPECT_LE(Out.Bits, 0xFFFFFFFFu);
    EXPECT_TRUE(Out.isSecret()) << "word " << W;
  }
  // ARX diffusion: two different keys give different first words.
  Configuration Other = Configuration::initial(C.Prog);
  Other.Mem.store(0x304, Value::sec(0x99));
  SequentialResult R2 = runSequential(M, Other);
  ASSERT_FALSE(R2.Run.Stuck);
  EXPECT_NE(R.Run.Final.Mem.load(0x340).Bits,
            R2.Run.Final.Mem.load(0x340).Bits);
}

TEST(ChaCha, KernelIsSpeculativeConstantTimeInBothModes) {
  SuiteCase C = chachaKernel();
  EXPECT_TRUE(checkSequentialCt(C.Prog).secure());
  SctReport NoFwd = checkSct(C.Prog, v1v11Mode());
  EXPECT_TRUE(NoFwd.secure())
      << describeResult(C.Prog, NoFwd.Exploration);
  EXPECT_FALSE(NoFwd.Exploration.Truncated);
  SctReport Fwd = checkSct(C.Prog, v4Mode());
  EXPECT_TRUE(Fwd.secure()) << describeResult(C.Prog, Fwd.Exploration);
}

TEST(ChaCha, LeakyWrapperIsFlaggedButKernelStaysClean) {
  SuiteCase C = chachaWithLeakyWrapper();
  EXPECT_TRUE(checkSequentialCt(C.Prog).secure());
  SctReport R = checkSct(C.Prog, v1v11Mode());
  EXPECT_FALSE(R.secure());
  // Every leak lies in the wrapper's guarded read, not the primitive.
  PC Rd = C.Prog.codeLabels().at("rd");
  for (const LeakRecord &L : R.Exploration.Leaks)
    EXPECT_GE(L.Origin, Rd) << summarizeLeak(C.Prog, L);
}

TEST(ChaCha, KernelScalesWithRounds) {
  // A bigger kernel stays clean and completes exploration — the checker
  // is linear-ish on straight-line code (the tractability §4.2 relies
  // on for the real crypto binaries).
  SuiteCase C = chachaKernel(/*DoubleRounds=*/4);
  EXPECT_GT(C.Prog.size(), 700u);
  SctReport R = checkSct(C.Prog, v4Mode());
  EXPECT_TRUE(R.secure());
  EXPECT_FALSE(R.Exploration.Truncated);
}

} // namespace
