//===- tests/SeenStateTest.cpp - Seen-state table and state hashing ---------===//
//
// Coverage for the explorer's cross-schedule pruning machinery:
//  - Configuration::hash() is canonical (schedule prefixes that commute
//    into the same configuration hash identically — the convergence the
//    pruner lives on) and discriminating (single-field perturbations of a
//    configuration never collide);
//  - an empirical no-collision guarantee over the whole suite corpus,
//    since a 64-bit collision would soundlessly skip an unexplored
//    subtree;
//  - the SeenStateTable's first-insert-wins contract, sequentially and
//    under a thread hammer;
//  - the explorer-level regression: two schedule prefixes converging to
//    the same configuration explore the shared subtree once.
//
//===----------------------------------------------------------------------===//

#include "sched/SeenStates.h"

#include "checker/SctChecker.h"
#include "isa/AsmParser.h"
#include "sched/RandomScheduler.h"
#include "sched/ScheduleExplorer.h"
#include "workloads/Figures.h"
#include "workloads/Kocher.h"
#include "workloads/SpectreSuites.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <unordered_map>

using namespace sct;

namespace {

ExploreResult exploreProgram(const Program &P, const ExplorerOptions &Opts) {
  Machine M(P);
  return explore(M, Configuration::initial(P), Opts);
}

std::set<std::pair<PC, unsigned>> leakSet(const ExploreResult &R) {
  std::set<std::pair<PC, unsigned>> S;
  for (const LeakRecord &L : R.Leaks)
    S.insert({L.Origin, static_cast<unsigned>(L.Rule)});
  return S;
}

//===----------------------------------------------------- hash canonicity ---===//

TEST(StateHash, ConvergingPrefixesHashEqual) {
  // Two schedule prefixes that resolve independent ops in opposite orders
  // commute into the *same* configuration — the convergence the pruner
  // keys on.  They must compare equal and hash equal.
  Program P = parseAsmOrDie(R"(
    .reg ra rb
    start:
      ra = mov 1
      rb = mov 2
  )");
  Machine M(P);
  auto Run = [&](std::initializer_list<Directive> Ds) {
    Configuration C = Configuration::initial(P);
    for (const Directive &D : Ds)
      EXPECT_TRUE(M.step(C, D).has_value());
    return C;
  };
  Configuration A = Run({Directive::fetch(), Directive::fetch(),
                         Directive::execute(1), Directive::execute(2)});
  Configuration B = Run({Directive::fetch(), Directive::fetch(),
                         Directive::execute(2), Directive::execute(1)});
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.hash(), B.hash());

  // A third prefix interleaving fetch and execute converges too.
  Configuration C3 = Run({Directive::fetch(), Directive::execute(1),
                          Directive::fetch(), Directive::execute(2)});
  EXPECT_EQ(A, C3);
  EXPECT_EQ(A.hash(), C3.hash());
}

TEST(StateHash, ExplicitDefaultCellHashesLikeUnwritten) {
  // Memory equality reads through region defaults; the hash must too.
  Program P = parseAsmOrDie(R"(
    .reg ra
    .region A 0x40 4 public
    start:
      ra = mov 1
  )");
  Configuration A = Configuration::initial(P);
  Configuration B = A;
  B.Mem.store(0x40, Value(0, B.Mem.defaultLabel(0x40))); // Spelled-out default.
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.Mem.hash(), B.Mem.hash());
  EXPECT_EQ(A.hash(), B.hash());
}

//===------------------------------------------------ hash discrimination ---===//

TEST(StateHash, SingleFieldPerturbationsNeverCollide) {
  FigureCase Fig = figure1();
  Configuration Base = Configuration::initial(Fig.Prog);
  // Put something in every component so perturbations have structure to
  // disturb: fetch the branch and a load.
  Machine M(Fig.Prog);
  ASSERT_TRUE(M.step(Base, Directive::fetchBool(true)).has_value());
  ASSERT_TRUE(M.step(Base, Directive::fetch()).has_value());

  const uint64_t H = Base.hash();

  // One memory word, each differing in exactly one bit position group.
  for (uint64_t Addr : {0x40ull, 0x44ull, 0x48ull, 0x1000ull}) {
    for (uint64_t Bits : {1ull, 0x100ull, 1ull << 32, ~0ull}) {
      Value V(Bits, Label::publicLabel());
      if (Base.Mem.load(Addr) == V)
        continue; // Writing the current value back is not a perturbation.
      Configuration C = Base;
      C.Mem.store(Addr, V);
      EXPECT_NE(C.hash(), H) << Addr << " " << Bits;
    }
    // Same bits, secret label: the taint must separate.
    Configuration C = Base;
    C.Mem.store(Addr, Value(1, Label::secret()));
    Configuration D = Base;
    D.Mem.store(Addr, Value(1, Label::publicLabel()));
    EXPECT_NE(C.hash(), D.hash()) << Addr;
  }

  // One ROB entry: resolving the in-flight branch flips exactly one
  // transient's state.
  {
    Configuration C = Base;
    ASSERT_TRUE(M.step(C, Directive::execute(1)).has_value());
    EXPECT_NE(C.hash(), H);
  }

  // One register.
  {
    Configuration C = Base;
    C.Regs.set(Reg(Reg::FirstUserId), Value::pub(0xdead));
    EXPECT_NE(C.hash(), H);
  }

  // The program point alone.
  {
    Configuration C = Base;
    C.N = C.N + 1;
    EXPECT_NE(C.hash(), H);
  }

  // The RSB journal alone.
  {
    Configuration C = Base;
    C.Rsb.push(7, 42);
    EXPECT_NE(C.hash(), H);
  }
}

TEST(StateHash, ResolutionStateSeparatesRobEntries) {
  // A store with a resolved address must not hash like its unresolved
  // twin even when the resolved values are zero (all-default fields).
  Program P = parseAsmOrDie(R"(
    .reg ra
    .init ra 0
    start:
      store ra, [ra]
  )");
  Machine M(P);
  Configuration A = Configuration::initial(P);
  ASSERT_TRUE(M.step(A, Directive::fetch()).has_value());
  Configuration B = A;
  ASSERT_TRUE(M.step(B, Directive::executeAddr(1)).has_value());
  EXPECT_NE(A, B);
  EXPECT_NE(A.hash(), B.hash());
}

//===------------------------------------------------- corpus collisions ---===//

TEST(StateHash, SuiteCorpusIsCollisionFree) {
  // Every configuration reachable along random well-formed schedules of
  // the whole suite corpus, plus every program's worst-case exploration
  // entry state: distinct configurations must get distinct hashes.  A
  // collision here is the one event that would make PruneSeen skip a
  // subtree it never explored.
  std::vector<Program> Corpus;
  for (const SuiteCase &C : kocherCases())
    Corpus.push_back(C.Prog);
  for (const SuiteCase &C : kocherOriginalCases())
    Corpus.push_back(C.Prog);
  for (const SuiteCase &C : spectreV11Cases())
    Corpus.push_back(C.Prog);
  for (const SuiteCase &C : spectreV4Cases())
    Corpus.push_back(C.Prog);
  for (const FigureCase &C : allFigures())
    Corpus.push_back(C.Prog);

  uint64_t Checked = 0;
  for (const Program &P : Corpus) {
    // Hashes are only ever compared within one exploration, i.e. within
    // one program: the table is per-explore() call.
    std::unordered_map<uint64_t, Configuration> ByHash;
    Machine M(P);
    Configuration Init = Configuration::initial(P);
    for (uint64_t Seed = 1; Seed <= 24; ++Seed) {
      RandomRunOptions Opts;
      Opts.Seed = Seed;
      Opts.MaxSteps = 300;
      RunResult R = runRandom(M, Init, Opts);
      // Replay the recorded schedule, fingerprinting every intermediate
      // configuration.
      Configuration C = Init;
      for (const StepRecord &S : R.Trace) {
        ASSERT_TRUE(M.step(C, S.D).has_value());
        auto [It, Fresh] = ByHash.try_emplace(C.hash(), C);
        if (!Fresh) {
          EXPECT_EQ(It->second, C) << "64-bit state-hash collision";
        }
        ++Checked;
      }
    }
  }
  // The corpus walk must have actually exercised a meaningful number of
  // states (guards against the generator silently going empty).
  EXPECT_GT(Checked, 10000u);
}

//===------------------------------------------------------- table contract ---===//

TEST(SeenStateTable, FirstInsertWins) {
  SeenStateTable T(4);
  EXPECT_FALSE(T.contains(42));
  EXPECT_TRUE(T.insert(42));
  EXPECT_FALSE(T.insert(42));
  EXPECT_TRUE(T.contains(42));
  EXPECT_TRUE(T.insert(43));
  EXPECT_EQ(T.size(), 2u);
}

TEST(SeenStateTable, ConcurrentInsertsLinearize) {
  // 8 threads hammer overlapping key ranges; every key must be claimed by
  // exactly one thread.
  SeenStateTable T;
  constexpr unsigned Threads = 8;
  constexpr uint64_t Keys = 20000;
  std::vector<uint64_t> Claimed(Threads, 0);
  std::vector<std::thread> Pool;
  for (unsigned W = 0; W < Threads; ++W)
    Pool.emplace_back([&, W] {
      // Each thread walks the full key space in a different order.
      for (uint64_t I = 0; I < Keys; ++I) {
        uint64_t K = (I * (2 * W + 1)) % Keys;
        if (T.insert(hashAvalanche(K)))
          ++Claimed[W];
      }
    });
  for (std::thread &Th : Pool)
    Th.join();
  uint64_t Total = 0;
  for (uint64_t C : Claimed)
    Total += C;
  EXPECT_EQ(Total, Keys);
  EXPECT_EQ(T.size(), Keys);
}

//===-------------------------------------------- explorer-level pruning ---===//

/// A v4-style program whose schedule tree converges: the store sits in a
/// branch shadow, so the explorer forks [execute s:addr; execute l]
/// against the stale-load fall-through, the stale path's forced
/// resolution hazards back into the forked state, and the trailing
/// branches fork again *after* the convergence point — exactly where the
/// seen-state table can prove the subtrees identical.
Program convergentV4Gadget() {
  return parseAsmOrDie(R"(
    .reg ra rb rc rd
    .init ra 9
    .region A   0x40 4 public
    .region Key 0x48 4 secret
    .data 0x48 11 22 33 44
    start:
      br ult ra, 16 -> body, end
    body:
      store ra, [0x40]
      rb = load [0x40]
      br ult rb, 8 -> t1, t2
    t1:
      rc = mov 1
      jmp tail
    t2:
      rc = mov 2
    tail:
      rd = load [0x48]       ; secret value at a public address
      rd = load [0x40, rd]   ; secret-dependent address: the leak
    end:
  )");
}

TEST(SeenStatePruning, ConvergentSubtreeExploredOnce) {
  Program P = convergentV4Gadget();
  ExplorerOptions Plain = v4Mode();
  Plain.PruneSeen = false; // The unpruned engine as the work reference.
  ExplorerOptions Pruned = v4Mode();
  Pruned.PruneSeen = true;

  ExploreResult A = exploreProgram(P, Plain);
  ExploreResult B = exploreProgram(P, Pruned);

  // Convergence was detected at least once and its subtree skipped...
  EXPECT_GE(B.PrunedNodes, 1u);
  EXPECT_LT(B.TotalSteps, A.TotalSteps);
  EXPECT_LT(B.SchedulesCompleted, A.SchedulesCompleted);
  // ...without losing a single finding (the gadget does leak: a
  // secret-dependent load address past the convergence point).
  ASSERT_FALSE(A.secure());
  EXPECT_EQ(leakSet(A), leakSet(B));
  EXPECT_EQ(A.secure(), B.secure());
}

TEST(SeenStatePruning, HazardReexecutionsPruneOnSuite) {
  // The ISSUE's motivating recurrence: v4-mode hazard re-executions
  // revisit forked states across the Spectre v4 suite; pruning must
  // strictly reduce work somewhere in the suite while preserving every
  // verdict.
  uint64_t PrunedTotal = 0;
  for (const SuiteCase &C : spectreV4Cases()) {
    ExplorerOptions PlainOpts = v4Mode();
    PlainOpts.PruneSeen = false;
    ExploreResult Plain = exploreProgram(C.Prog, PlainOpts);
    ExplorerOptions Opts = v4Mode();
    Opts.PruneSeen = true;
    ExploreResult Pruned = exploreProgram(C.Prog, Opts);
    EXPECT_EQ(leakSet(Plain), leakSet(Pruned)) << C.Id;
    EXPECT_LE(Pruned.TotalSteps, Plain.TotalSteps) << C.Id;
    PrunedTotal += Pruned.PrunedNodes;
  }
  EXPECT_GE(PrunedTotal, 1u);
}

TEST(SeenStatePruning, PrunedParallelStillFindsEveryKocherLeak) {
  // Pruning under the full parallel stealing engine, vs the unpruned
  // sequential reference, across the fork-heaviest standard corpus.
  for (const SuiteCase &C : kocherCases()) {
    ExplorerOptions RefOpts = v4Mode();
    RefOpts.PruneSeen = false;
    ExploreResult Ref = exploreProgram(C.Prog, RefOpts);
    ExplorerOptions Opts = v4Mode();
    Opts.Threads = 8;
    Opts.PruneSeen = true;
    ExploreResult R = exploreProgram(C.Prog, Opts);
    EXPECT_EQ(leakSet(Ref), leakSet(R)) << C.Id;
  }
}

} // namespace
