//===- tests/CoreTest.cpp - Unit tests for the core value/state types -------===//

#include "core/Configuration.h"
#include "core/Directive.h"
#include "core/Eval.h"
#include "core/Observation.h"

#include "isa/ProgramBuilder.h"

#include <gtest/gtest.h>

using namespace sct;

namespace {

//===----------------------------------------------------------------------===//
// Label lattice
//===----------------------------------------------------------------------===//

TEST(Label, PublicIsBottom) {
  Label Pub = Label::publicLabel();
  EXPECT_TRUE(Pub.isPublic());
  EXPECT_FALSE(Pub.isSecret());
  EXPECT_EQ(Pub.join(Pub), Pub);
  EXPECT_TRUE(Pub.flowsTo(Label::secret(3)));
}

TEST(Label, JoinIsUnionOfSources) {
  Label A = Label::secret(0);
  Label B = Label::secret(5);
  Label J = A.join(B);
  EXPECT_TRUE(J.contains(0));
  EXPECT_TRUE(J.contains(5));
  EXPECT_FALSE(J.contains(1));
  EXPECT_TRUE(A.flowsTo(J));
  EXPECT_TRUE(B.flowsTo(J));
  EXPECT_FALSE(J.flowsTo(A));
}

TEST(Label, JoinIsIdempotentCommutativeAssociative) {
  Label A = Label::fromMask(0b1010);
  Label B = Label::fromMask(0b0110);
  Label C = Label::fromMask(0b1000);
  EXPECT_EQ(A.join(A), A);
  EXPECT_EQ(A.join(B), B.join(A));
  EXPECT_EQ(A.join(B).join(C), A.join(B.join(C)));
}

TEST(Label, Rendering) {
  EXPECT_EQ(Label::publicLabel().str(), "pub");
  EXPECT_EQ(Label::secret(0).str(), "sec");
  EXPECT_EQ(Label::secret(2).str(), "sec{2}");
  EXPECT_EQ(Label::secret(1).join(Label::secret(4)).str(), "sec{1,4}");
}

//===----------------------------------------------------------------------===//
// Values
//===----------------------------------------------------------------------===//

TEST(Value, EqualityIncludesLabel) {
  EXPECT_EQ(Value::pub(7), Value::pub(7));
  EXPECT_FALSE(Value::pub(7) == Value::sec(7));
  EXPECT_FALSE(Value::pub(7) == Value::pub(8));
}

TEST(Value, Rendering) {
  EXPECT_EQ(Value::pub(9).str(), "9_pub");
  EXPECT_EQ(Value::sec(0x48).str(), "0x48_sec");
}

//===----------------------------------------------------------------------===//
// Memory
//===----------------------------------------------------------------------===//

TEST(Memory, UnwrittenCellsReadRegionDefaults) {
  Memory M({{"key", 0x40, 4, Label::secret()}});
  EXPECT_EQ(M.load(0x41), Value(0, Label::secret()));
  EXPECT_EQ(M.load(0x44), Value::pub(0)); // Outside every region.
  M.store(0x41, Value::pub(7));
  EXPECT_EQ(M.load(0x41), Value::pub(7)); // Labels follow stored values.
}

TEST(Memory, EqualityIsExtensional) {
  Memory A({{"d", 0x10, 2, Label::publicLabel()}});
  Memory B({{"d", 0x10, 2, Label::publicLabel()}});
  B.store(0x10, Value::pub(0)); // Explicit default write.
  EXPECT_TRUE(A == B);
  B.store(0x10, Value::pub(1));
  EXPECT_FALSE(A == B);
}

TEST(Memory, LowEquivalenceIgnoresSecretBits) {
  Memory A({{"key", 0x40, 2, Label::secret()}});
  Memory B({{"key", 0x40, 2, Label::secret()}});
  A.store(0x40, Value::sec(1));
  B.store(0x40, Value::sec(99));
  EXPECT_TRUE(A.lowEquivalent(B));
  B.store(0x41, Value::pub(5)); // Label disagreement: secret vs public.
  EXPECT_FALSE(A.lowEquivalent(B));
}

//===----------------------------------------------------------------------===//
// Transient-instruction layout
//===----------------------------------------------------------------------===//

// A reorder-buffer entry is copied at every schedule fork (tail slots) and
// chunk unshare, so its size is a measured engine cost, not a cosmetic
// one.  The 160-byte ceiling reflects the packed layout: resolution flags
// share the leading word with the tag/opcode/register, the optional
// forwarding index is a one-word sentinel (OptBufIdx), and the 4-byte
// program points sit last so no alignment padding survives.
static_assert(sizeof(TransientInstr) <= 160,
              "TransientInstr grew past the packed-layout ceiling; "
              "check for padding before accepting a larger entry");

TEST(TransientInstr, OptBufIdxSentinelRoundTrips) {
  OptBufIdx None;
  EXPECT_FALSE(None);
  EXPECT_EQ(None.raw(), 0u);
  OptBufIdx Some = BufIdx(7);
  ASSERT_TRUE(Some);
  EXPECT_EQ(*Some, 7u);
  // The raw word is the index-plus-one sentinel the entry fingerprint
  // folds — index 0 must stay distinguishable from "none".
  EXPECT_EQ(Some.raw(), 8u);
  OptBufIdx Zero = BufIdx(0);
  ASSERT_TRUE(Zero);
  EXPECT_EQ(*Zero, 0u);
  EXPECT_NE(Zero, None);
  Some = std::nullopt;
  EXPECT_FALSE(Some);
  EXPECT_EQ(Some, None);
}

//===----------------------------------------------------------------------===//
// Reorder buffer
//===----------------------------------------------------------------------===//

TEST(ReorderBuffer, IndicesStartAtOneAndStayContiguous) {
  ReorderBuffer Buf;
  EXPECT_TRUE(Buf.empty());
  EXPECT_EQ(Buf.nextIndex(), 1u);
  BufIdx A = Buf.push(TransientInstr::makeFence(0));
  BufIdx B = Buf.push(TransientInstr::makeFence(1));
  EXPECT_EQ(A, 1u);
  EXPECT_EQ(B, 2u);
  EXPECT_EQ(Buf.minIndex(), 1u);
  EXPECT_EQ(Buf.maxIndex(), 2u);
  Buf.popFront();
  EXPECT_EQ(Buf.minIndex(), 2u);
  EXPECT_FALSE(Buf.contains(1));
  // Indices are never reused.
  EXPECT_EQ(Buf.push(TransientInstr::makeFence(2)), 3u);
}

TEST(ReorderBuffer, TruncateFromRemovesSuffix) {
  ReorderBuffer Buf;
  for (PC N = 0; N < 5; ++N)
    Buf.push(TransientInstr::makeFence(N));
  Buf.truncateFrom(3);
  EXPECT_EQ(Buf.size(), 2u);
  EXPECT_TRUE(Buf.contains(2));
  EXPECT_FALSE(Buf.contains(3));
  Buf.truncateFrom(100); // Past the end: no-op.
  EXPECT_EQ(Buf.size(), 2u);
  EXPECT_EQ(Buf.nextIndex(), 3u);
}

TEST(ReorderBuffer, PushDefaultsGroupLeaderToOwnIndex) {
  ReorderBuffer Buf;
  BufIdx A = Buf.push(TransientInstr::makeFence(0));
  EXPECT_EQ(Buf.at(A).GroupLeader, A);
  TransientInstr Grouped = TransientInstr::makeFence(0);
  Grouped.GroupLeader = A;
  BufIdx B = Buf.push(std::move(Grouped));
  EXPECT_EQ(Buf.at(B).GroupLeader, A);
}

TEST(ReorderBuffer, CopiesShareChunksUntilMutation) {
  ReorderBuffer Buf;
  // Two sealed chunks plus a partial tail.
  for (PC N = 0; N < 2 * ReorderBuffer::ChunkCap + 3; ++N)
    Buf.push(TransientInstr::makeJump(N, N));
  ReorderBuffer Fork = Buf;
  EXPECT_TRUE(Buf.sharesChunks());
  EXPECT_TRUE(Fork.sharesChunks());
  // A copy duplicates pointers and the tail, not the live suffix.
  EXPECT_LT(Buf.bytesPerCopy(), Buf.bytesIfFlat());

  // Mutating one side must not be visible through the other.
  BufIdx Mid = 2; // Inside the first sealed chunk.
  Fork.mut(Mid) = TransientInstr::makeFence(99);
  EXPECT_TRUE(Fork.at(Mid).is(TransientKind::Fence));
  EXPECT_TRUE(Buf.at(Mid).is(TransientKind::Jump));
  // The untouched chunk stays shared.
  EXPECT_TRUE(Buf.sharesChunks());
  EXPECT_TRUE(Buf == Buf);
  EXPECT_FALSE(Buf == Fork);
}

TEST(ReorderBuffer, RetireAndRollbackCrossChunkSeams) {
  ReorderBuffer Buf;
  const size_t Cap = ReorderBuffer::ChunkCap;
  for (PC N = 0; N < 3 * Cap + 1; ++N)
    Buf.push(TransientInstr::makeJump(N, N));
  ReorderBuffer Fork = Buf;
  // Retire through the whole first chunk and into the second.
  for (size_t K = 0; K < Cap + 2; ++K)
    Buf.popFront();
  EXPECT_EQ(Buf.minIndex(), BufIdx(Cap + 3));
  EXPECT_EQ(Buf.size(), 2 * Cap - 1);
  // Roll back to the middle of the second sealed chunk: the cut chunk's
  // surviving prefix re-opens as tail; contents must match a fresh walk.
  BufIdx Cut = Cap + 5;
  Buf.truncateFrom(Cut);
  EXPECT_EQ(Buf.nextIndex(), Cut);
  for (BufIdx I = Buf.minIndex(); I <= Buf.maxIndex(); ++I)
    EXPECT_EQ(Buf.at(I).N0, PC(I - 1)); // Jump N was pushed at index N+1.
  // Pushes after the rollback continue the same index sequence.
  EXPECT_EQ(Buf.push(TransientInstr::makeFence(0)), Cut);
  // The fork saw none of it.
  EXPECT_EQ(Fork.size(), 3 * Cap + 1);
  EXPECT_EQ(Fork.minIndex(), 1u);
  for (BufIdx I = Fork.minIndex(); I <= Fork.maxIndex(); ++I)
    EXPECT_EQ(Fork.at(I).N0, PC(I - 1));
}

//===----------------------------------------------------------------------===//
// Return stack buffer
//===----------------------------------------------------------------------===//

TEST(ReturnStackBuffer, StackDisciplineAndBottom) {
  ReturnStackBuffer Rsb;
  EXPECT_FALSE(Rsb.top().has_value()); // ⊥ when empty.
  Rsb.push(1, 10);
  Rsb.push(2, 20);
  EXPECT_EQ(Rsb.top(), 20u);
  Rsb.pop(3);
  EXPECT_EQ(Rsb.top(), 10u);
  Rsb.pop(4);
  EXPECT_FALSE(Rsb.top().has_value());
  // Paper's worked example: ∅[1↦push 4][2↦push 5][3↦pop] has top 4.
  ReturnStackBuffer Example;
  Example.push(1, 4);
  Example.push(2, 5);
  Example.pop(3);
  EXPECT_EQ(Example.top(), 4u);
}

TEST(ReturnStackBuffer, RollbackDropsYoungerJournalEntries) {
  ReturnStackBuffer Rsb;
  Rsb.push(1, 10);
  Rsb.push(5, 50);
  Rsb.pop(7);
  Rsb.rollbackFrom(5); // Removes the push@5 and the pop@7.
  EXPECT_EQ(Rsb.top(), 10u);
  EXPECT_EQ(Rsb.journalSize(), 1u);
}

TEST(ReturnStackBuffer, CircularModelWrapsOnUnderflow) {
  ReturnStackBuffer Rsb;
  // Fill a 2-slot ring: pushes 10, 20, 30; 30 overwrote the slot of 10.
  Rsb.push(1, 10);
  Rsb.push(2, 20);
  Rsb.push(3, 30);
  EXPECT_EQ(Rsb.topCircular(2), 30u);
  Rsb.pop(4);
  EXPECT_EQ(Rsb.topCircular(2), 20u);
  Rsb.pop(5);
  // Underflow past the genuine entries: exposes the stale slot (30).
  Rsb.pop(6);
  EXPECT_EQ(Rsb.topCircular(2), 20u);
}

//===----------------------------------------------------------------------===//
// Evaluation
//===----------------------------------------------------------------------===//

struct EvalCase {
  Opcode Opc;
  std::vector<uint64_t> Args;
  uint64_t Expected;
};

class EvalOps : public ::testing::TestWithParam<EvalCase> {};

TEST_P(EvalOps, ComputesAndStaysPublic) {
  const EvalCase &C = GetParam();
  std::vector<Value> Args;
  for (uint64_t A : C.Args)
    Args.push_back(Value::pub(A));
  Value R = evalOp(C.Opc, Args, MachineOptions{});
  EXPECT_EQ(R.Bits, C.Expected);
  EXPECT_TRUE(R.isPublic());
}

INSTANTIATE_TEST_SUITE_P(
    Table, EvalOps,
    ::testing::Values(
        EvalCase{Opcode::Add, {3, 4}, 7},
        EvalCase{Opcode::Sub, {3, 4}, uint64_t(0) - 1},
        EvalCase{Opcode::Mul, {3, 4}, 12},
        EvalCase{Opcode::UDiv, {12, 4}, 3},
        EvalCase{Opcode::UDiv, {12, 0}, 0}, // Total: x/0 = 0.
        EvalCase{Opcode::URem, {13, 4}, 1},
        EvalCase{Opcode::URem, {13, 0}, 13}, // Total: x%0 = x.
        EvalCase{Opcode::And, {0b1100, 0b1010}, 0b1000},
        EvalCase{Opcode::Or, {0b1100, 0b1010}, 0b1110},
        EvalCase{Opcode::Xor, {0b1100, 0b1010}, 0b0110},
        EvalCase{Opcode::Shl, {1, 65}, 2},  // Shift mod 64.
        EvalCase{Opcode::Shr, {4, 1}, 2},
        EvalCase{Opcode::Not, {0}, ~uint64_t(0)},
        EvalCase{Opcode::Neg, {1}, ~uint64_t(0)},
        EvalCase{Opcode::Mov, {42}, 42},
        EvalCase{Opcode::Select, {1, 10, 20}, 10},
        EvalCase{Opcode::Select, {0, 10, 20}, 20},
        EvalCase{Opcode::Eq, {3, 3}, 1},
        EvalCase{Opcode::Ne, {3, 3}, 0},
        EvalCase{Opcode::Ult, {3, 4}, 1},
        EvalCase{Opcode::Ule, {4, 4}, 1},
        EvalCase{Opcode::Ugt, {4, 3}, 1},
        EvalCase{Opcode::Uge, {3, 4}, 0},
        EvalCase{Opcode::Slt, {uint64_t(0) - 1, 0}, 1}, // -1 < 0 signed.
        EvalCase{Opcode::Ult, {uint64_t(0) - 1, 0}, 0}, // but not unsigned.
        EvalCase{Opcode::Sge, {0, uint64_t(0) - 5}, 1},
        EvalCase{Opcode::True, {}, 1},
        EvalCase{Opcode::False, {}, 0}));

TEST(Eval, LabelsJoinAcrossOperands) {
  Value R = evalOp(Opcode::Add, {Value::sec(1, 0), Value::sec(2, 3)},
                   MachineOptions{});
  EXPECT_TRUE(R.Taint.contains(0));
  EXPECT_TRUE(R.Taint.contains(3));
}

TEST(Eval, SelectTaintsResultWithSelector) {
  // A constant-time select of two public values under a secret condition
  // must produce a secret: the chosen value reveals the condition.
  Value R = evalOp(Opcode::Select,
                   {Value::sec(1), Value::pub(10), Value::pub(20)},
                   MachineOptions{});
  EXPECT_TRUE(R.isSecret());
}

TEST(Eval, AddrModes) {
  MachineOptions Sum;
  EXPECT_EQ(evalAddr({Value::pub(0x40), Value::pub(9)}, Sum).Bits, 0x49u);
  MachineOptions Scaled;
  Scaled.Addressing = AddrMode::BaseIndexScale;
  EXPECT_EQ(
      evalAddr({Value::pub(0x40), Value::pub(3), Value::pub(8)}, Scaled).Bits,
      0x40u + 24u);
  // Fewer than three operands fall back to summation.
  EXPECT_EQ(evalAddr({Value::pub(0x40), Value::pub(2)}, Scaled).Bits, 0x42u);
}

TEST(Eval, StackSuccPredFollowOptions) {
  MachineOptions Down; // Default: downward, step 1.
  EXPECT_EQ(evalOp(Opcode::Succ, {Value::pub(0x40)}, Down).Bits, 0x3Fu);
  EXPECT_EQ(evalOp(Opcode::Pred, {Value::pub(0x40)}, Down).Bits, 0x41u);
  MachineOptions Up;
  Up.StackGrowsDown = false;
  Up.StackStep = 4;
  EXPECT_EQ(evalOp(Opcode::Succ, {Value::pub(0x40)}, Up).Bits, 0x44u);
  EXPECT_EQ(evalOp(Opcode::Pred, {Value::pub(0x40)}, Up).Bits, 0x3Cu);
}

//===----------------------------------------------------------------------===//
// Directives and observations
//===----------------------------------------------------------------------===//

TEST(Directive, PaperNotation) {
  EXPECT_EQ(Directive::fetch().str(), "fetch");
  EXPECT_EQ(Directive::fetchBool(true).str(), "fetch: true");
  EXPECT_EQ(Directive::fetchTarget(17).str(), "fetch: 17");
  EXPECT_EQ(Directive::execute(3).str(), "execute 3");
  EXPECT_EQ(Directive::executeValue(2).str(), "execute 2 : value");
  EXPECT_EQ(Directive::executeAddr(2).str(), "execute 2 : addr");
  EXPECT_EQ(Directive::executeFwd(7, 2).str(), "execute 7 : fwd 2");
  EXPECT_EQ(Directive::retire().str(), "retire");
}

TEST(Observation, SecretDetectionAndEquality) {
  Observation Pub = Observation::read(Value::pub(0x49));
  Observation Sec = Observation::read(Value::sec(0x49));
  EXPECT_FALSE(Pub.isSecret());
  EXPECT_TRUE(Sec.isSecret());
  // Attacker-visible equality ignores labels but not payload bits.
  EXPECT_TRUE(Pub.observablyEquals(Sec));
  EXPECT_FALSE(Pub.observablyEquals(Observation::read(Value::pub(0x4A))));
  EXPECT_FALSE(Pub.observablyEquals(Observation::fwd(Value::pub(0x49))));
  EXPECT_FALSE(
      Pub.observablyEquals(Observation::read(Value::pub(0x49), true)));
}

TEST(Observation, PaperNotation) {
  EXPECT_EQ(Observation::read(Value::pub(0x49)).str(), "read 0x49_pub");
  EXPECT_EQ(Observation::fwd(Value::sec(0x45), true).str(),
            "rollback, fwd 0x45_sec");
  EXPECT_EQ(Observation::write(Value::pub(0x40)).str(), "write 0x40_pub");
  EXPECT_EQ(Observation::jump(Value::pub(9)).str(), "jump 9_pub");
}

//===----------------------------------------------------------------------===//
// Configurations
//===----------------------------------------------------------------------===//

TEST(Configuration, InitialStateFromProgram) {
  ProgramBuilder B;
  Reg Ra = B.reg("ra");
  B.init(Ra, 9);
  B.region("key", 0x40, 2, Label::secret());
  B.data(0x40, {7, 8});
  B.entry("start");
  B.label("start").movi(Ra, 1);
  Program P = B.build();

  Configuration C = Configuration::initial(P);
  EXPECT_EQ(C.Regs.get(Ra), Value::pub(9));
  EXPECT_EQ(C.Mem.load(0x40), Value::sec(7));
  EXPECT_EQ(C.Mem.load(0x41), Value::sec(8));
  EXPECT_EQ(C.N, P.entry());
  EXPECT_TRUE(C.isTerminal());
  EXPECT_FALSE(C.isFinal(P));
}

TEST(Configuration, LowEquivalenceTracksOnlyPublicBits) {
  ProgramBuilder B;
  B.reg("ra");
  B.region("key", 0x40, 1, Label::secret());
  B.movi(B.reg("ra"), 0);
  Program P = B.build();

  Configuration A = Configuration::initial(P);
  Configuration C = Configuration::initial(P);
  C.Mem.store(0x40, Value::sec(99));
  EXPECT_TRUE(A.lowEquivalent(C));
  EXPECT_FALSE(A.sameArchState(C));
  C.Mem.store(0x50, Value::pub(1)); // Public cell differs.
  EXPECT_FALSE(A.lowEquivalent(C));
}

} // namespace
