//===- tests/DifferentialTest.cpp - Definition 3.1 cross-validation ---------===//
//
// Cross-validates the label-based checker against the literal two-run SCT
// definition: every leak witness schedule must produce diverging traces
// for some pair of low-equivalent configurations, and secure programs
// must produce identical traces on every tried pair/schedule.
//
//===----------------------------------------------------------------------===//

#include "checker/DifferentialChecker.h"

#include "checker/SctChecker.h"
#include "sched/RandomScheduler.h"
#include "workloads/CryptoLibs.h"
#include "workloads/Figures.h"
#include "workloads/Kocher.h"
#include "workloads/SpectreSuites.h"

#include <gtest/gtest.h>

using namespace sct;

namespace {

TEST(Differential, MutatedSecretsAreLowEquivalent) {
  Program P = figure1().Prog;
  Configuration Init = Configuration::initial(P);
  for (uint64_t Seed = 1; Seed < 16; ++Seed) {
    Configuration Variant = mutateSecrets(P, Init, Seed);
    EXPECT_TRUE(Init.lowEquivalent(Variant));
    EXPECT_TRUE(Variant.lowEquivalent(Init));
  }
}

TEST(Differential, Figure1WitnessDivergesConcretely) {
  FigureCase C = figure1();
  Machine M(C.Prog);
  // The paper-schedule leak must be realizable as a concrete divergence.
  auto Violation = checkScheduleDifferentially(M, C.PaperSchedule,
                                               /*Pairs=*/16, /*Seed=*/1);
  ASSERT_TRUE(Violation.has_value());
  EXPECT_FALSE(Violation->TracesEqual);
  // Both runs accept the whole schedule; only the traces differ.
  EXPECT_FALSE(Violation->A.Stuck);
  EXPECT_FALSE(Violation->B.Stuck);
}

TEST(Differential, LeakWitnessesAcrossSuitesDiverge) {
  // For each flagged suite case: the checker's first witness schedule
  // must diverge for some secret pair.  Taint is an over-approximation in
  // principle, but on these gadgets the leaks are real.
  std::vector<SuiteCase> Cases;
  for (const SuiteCase &C : kocherCases())
    Cases.push_back(C);
  for (const SuiteCase &C : spectreV11Cases())
    Cases.push_back(C);
  for (const SuiteCase &C : spectreV4Cases())
    Cases.push_back(C);

  unsigned Checked = 0;
  for (const SuiteCase &C : Cases) {
    ExplorerOptions Mode = C.ExpectV1V11Leak ? v1v11Mode() : v4Mode();
    Mode.StopAtFirstLeak = true;
    SctReport R = checkSct(C.Prog, Mode);
    if (R.secure())
      continue;
    Machine M(C.Prog);
    const Schedule &Witness = R.Exploration.Leaks.front().Sched;
    bool Diverged =
        checkScheduleDifferentially(M, Witness, /*Pairs=*/32, /*Seed=*/7)
            .has_value();
    if (!Diverged) {
      // Equality-test leaks (e.g. `br eq secret, K`) only diverge for
      // pairs straddling the constant; try a targeted all-0 vs all-42
      // pair (42 is the constant the suites compare against).
      Configuration Init = Configuration::initial(C.Prog);
      DifferentialOutcome Out =
          runPair(M, fillSecrets(C.Prog, Init, 0),
                  fillSecrets(C.Prog, Init, 42), Witness);
      Diverged = Out.violation();
    }
    EXPECT_TRUE(Diverged) << C.Id;
    ++Checked;
  }
  EXPECT_GE(Checked, 25u);
}

TEST(Differential, SecureProgramsProduceEqualTraces) {
  // Clean case studies: random schedules and random secret pairs never
  // diverge (Definition 3.1 holding concretely).
  for (const SuiteCase &C :
       {donnaFact(), secretboxFact(), kocherCases()[7] /* kocher-08 */}) {
    Machine M(C.Prog);
    for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
      RandomRunOptions Ropts;
      Ropts.Seed = Seed;
      Ropts.MaxSteps = 800;
      RunResult R = runRandom(M, Configuration::initial(C.Prog), Ropts);
      Schedule D;
      for (const StepRecord &S : R.Trace)
        D.push_back(S.D);
      auto Violation = checkScheduleDifferentially(M, D, /*Pairs=*/8,
                                                   /*Seed=*/Seed * 97);
      EXPECT_FALSE(Violation.has_value()) << C.Id << " seed " << Seed;
    }
  }
}

TEST(Differential, StuckMismatchCountsAsViolation) {
  // A schedule well-formed for only one side of a pair distinguishes the
  // two configurations (Definition 3.1's "iff").
  Program P = figure1().Prog;
  Machine M(P);
  Configuration A = Configuration::initial(P);
  Configuration B = A;
  // Make the second run diverge structurally: poison B's branch input so
  // a directive targeting the fetched path becomes inapplicable earlier.
  // (Simplest concrete check: truncated schedule on A vs B where B stalls
  // — emulate by comparing a run against one with an extra directive.)
  Schedule D = figure1().PaperSchedule;
  DifferentialOutcome Same = runPair(M, A, B, D);
  EXPECT_TRUE(Same.TracesEqual); // Identical configs: identical traces.
}

} // namespace
