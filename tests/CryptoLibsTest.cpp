//===- tests/CryptoLibsTest.cpp - Table 2 detection matrix ------------------===//
//
// The §4.2 evaluation: both checker modes against the eight case-study
// models, reproducing the Table 2 matrix (donna clean; C secretbox / C
// ssl3 / C MEE flagged without forwarding-hazard detection; FaCT ssl3 and
// FaCT MEE only with it).
//
//===----------------------------------------------------------------------===//

#include "workloads/CryptoLibs.h"

#include "checker/SctChecker.h"
#include "checker/SequentialCt.h"

#include <gtest/gtest.h>

using namespace sct;

namespace {

class CryptoSuite : public ::testing::TestWithParam<SuiteCase> {};

TEST_P(CryptoSuite, SequentiallyConstantTime) {
  // §4.2.1: the case studies "have been verified to be (sequentially)
  // constant-time" — the models must preserve that.
  const SuiteCase &C = GetParam();
  SequentialCtReport R = checkSequentialCt(C.Prog);
  EXPECT_EQ(!R.secure(), C.ExpectSeqLeak) << C.Id;
  EXPECT_FALSE(R.Seq.Run.Stuck) << C.Id << ": " << R.Seq.Run.StuckReason;
  EXPECT_TRUE(R.Seq.Run.Final.isFinal(C.Prog)) << C.Id;
}

TEST_P(CryptoSuite, Table2VerdictWithoutForwarding) {
  const SuiteCase &C = GetParam();
  SctReport R = checkSct(C.Prog, v1v11Mode());
  EXPECT_EQ(!R.secure(), C.ExpectV1V11Leak)
      << C.Id << ": " << describeResult(C.Prog, R.Exploration);
}

TEST_P(CryptoSuite, Table2VerdictWithForwarding) {
  const SuiteCase &C = GetParam();
  SctReport R = checkSct(C.Prog, v4Mode());
  EXPECT_EQ(!R.secure(), C.ExpectV4Leak)
      << C.Id << ": " << describeResult(C.Prog, R.Exploration);
}

INSTANTIATE_TEST_SUITE_P(
    Table2, CryptoSuite, ::testing::ValuesIn(cryptoCases()),
    [](const ::testing::TestParamInfo<SuiteCase> &Info) {
      std::string Name = Info.param.Id;
      for (char &Ch : Name)
        if (Ch == '-' || Ch == '.')
          Ch = '_';
      return Name;
    });

TEST(Table2, FullMatrixMatchesThePaper) {
  // One assertion per Table 2 cell, via the two-mode report.
  struct Row {
    SuiteCase CCase, FactCase;
    const char *CCell, *FactCell;
  };
  const Row Rows[] = {
      {donnaC(), donnaFact(), "-", "-"},
      {secretboxC(), secretboxFact(), "x", "-"},
      {ssl3C(), ssl3Fact(), "x", "f"},
      {meeC(), meeFact(), "x", "f"},
  };
  for (const Row &R : Rows) {
    EXPECT_EQ(checkSctBothModes(R.CCase.Prog).cell(), R.CCell)
        << R.CCase.Id;
    EXPECT_EQ(checkSctBothModes(R.FactCase.Prog).cell(), R.FactCell)
        << R.FactCase.Id;
  }
}

TEST(Table2, MeeFactLeakIsTheFigure10Gadget) {
  // The FaCT MEE leak must be the re-executed record access: the load at
  // L1 whose address depends on the secret-derived r14.
  SuiteCase C = meeFact();
  SctReport R = checkSct(C.Prog, v4Mode());
  ASSERT_FALSE(R.secure());
  PC L1 = C.Prog.codeLabels().at("L1");
  bool FoundAtL1 = false;
  for (const LeakRecord &L : R.Exploration.Leaks)
    if (L.Origin == L1 && L.Obs.K == Observation::Kind::Read)
      FoundAtL1 = true;
  EXPECT_TRUE(FoundAtL1) << describeResult(C.Prog, R.Exploration);
}

TEST(Table2, SecretboxLeakIsInTheErrorPath) {
  // The C secretbox leak must come from the __libc_message walk (the
  // smash path), not the crypto kernel.
  SuiteCase C = secretboxC();
  SctReport R = checkSct(C.Prog, v1v11Mode());
  ASSERT_FALSE(R.secure());
  PC Smash = C.Prog.codeLabels().at("smash");
  for (const LeakRecord &L : R.Exploration.Leaks)
    EXPECT_GE(L.Origin, Smash) << describeResult(C.Prog, R.Exploration);
}

TEST(DonnaModel, ComputesTheSameLimbsInBothBuilds) {
  // The looped (C) and unrolled (FaCT) ladders implement the same
  // function: their final architectural states agree on every limb.
  SuiteCase CC = donnaC(), CF = donnaFact();
  Machine MC(CC.Prog), MF(CF.Prog);
  SequentialResult RC = runSequential(MC, Configuration::initial(CC.Prog));
  SequentialResult RF = runSequential(MF, Configuration::initial(CF.Prog));
  ASSERT_FALSE(RC.Run.Stuck);
  ASSERT_FALSE(RF.Run.Stuck);
  for (uint64_t Addr = 0x210; Addr < 0x250; ++Addr)
    EXPECT_EQ(RC.Run.Final.Mem.load(Addr).Bits,
              RF.Run.Final.Mem.load(Addr).Bits)
        << "limb at " << Addr;
}

} // namespace
