//===- tests/SchedTest.cpp - Executor and scheduler behaviours --------------===//

#include "sched/Executor.h"
#include "sched/RandomScheduler.h"
#include "sched/Schedule.h"
#include "sched/SequentialScheduler.h"

#include "isa/AsmParser.h"

#include <gtest/gtest.h>

using namespace sct;

namespace {

//===----------------------------------------------------------------------===//
// Schedule utilities
//===----------------------------------------------------------------------===//

TEST(Schedule, RetireCountAndPrinting) {
  Schedule D = {Directive::fetch(), Directive::execute(1),
                Directive::retire(), Directive::fetchBool(true),
                Directive::retire()};
  EXPECT_EQ(retireCount(D), 2u);
  EXPECT_EQ(printSchedule(D),
            "fetch; execute 1; retire; fetch: true; retire");
}

//===----------------------------------------------------------------------===//
// Executor
//===----------------------------------------------------------------------===//

TEST(Executor, StopsAtFirstInapplicableDirective) {
  Program P = parseAsmOrDie(R"(
    .reg ra
    start:
      ra = mov 1
  )");
  Machine M(P);
  Schedule D = {Directive::fetch(), Directive::retire(), // Not resolved yet!
                Directive::execute(1)};
  RunResult R = runSchedule(M, Configuration::initial(P), D);
  EXPECT_TRUE(R.Stuck);
  EXPECT_EQ(R.StuckAt, 1u);
  EXPECT_EQ(R.Trace.size(), 1u); // Only the fetch landed.
  EXPECT_NE(R.StuckReason.find("unresolved"), std::string::npos);
}

TEST(Executor, ObservationsFilterSilentSteps) {
  Program P = parseAsmOrDie(R"(
    .reg ra
    start:
      ra = load [0x40]
  )");
  Machine M(P);
  Schedule D = {Directive::fetch(), Directive::execute(1),
                Directive::retire()};
  RunResult R = runSchedule(M, Configuration::initial(P), D);
  ASSERT_FALSE(R.Stuck);
  EXPECT_EQ(R.Trace.size(), 3u);
  EXPECT_EQ(R.observations().size(), 1u); // Only the read.
  EXPECT_EQ(R.Retires, 1u);
}

//===----------------------------------------------------------------------===//
// Sequential scheduler
//===----------------------------------------------------------------------===//

TEST(Sequential, NeverRollsBackOnStraightPrograms) {
  Program P = parseAsmOrDie(R"(
    .reg ra rb i
    .region D 0x40 8 public
    start:
      i = mov 0
    loop:
      ra = load [0x40, i]
      rb = add rb, ra
      store rb, [0x44, i]
      i = add i, 1
      br ult i, 3 -> loop, out
    out:
  )");
  Machine M(P);
  SequentialResult R = runSequential(M, Configuration::initial(P));
  ASSERT_FALSE(R.Run.Stuck) << R.Run.StuckReason;
  EXPECT_TRUE(R.Run.Final.isFinal(P));
  for (const StepRecord &S : R.Run.Trace) {
    EXPECT_FALSE(S.Obs.Rollback) << S.D.str();
    EXPECT_NE(S.Rule, RuleId::CondExecuteIncorrect);
  }
  // 3 iterations x 5 instructions + the mov: 16 retires.
  EXPECT_EQ(R.Run.Retires, 16u);
}

TEST(Sequential, HitsBoundOnInfiniteLoops) {
  Program P = parseAsmOrDie(R"(
    .reg ra
    start:
      ra = add ra, 1
      jmp start
  )");
  Machine M(P);
  SequentialResult R = runSequential(M, Configuration::initial(P),
                                     /*MaxRetires=*/100);
  EXPECT_TRUE(R.HitBound);
  EXPECT_FALSE(R.Run.Stuck);
  EXPECT_EQ(R.Run.Retires, 100u);
}

TEST(Sequential, CallRetRoundTripRestoresTheStack) {
  Program P = parseAsmOrDie(R"(
    .reg rv
    .init rsp 0x30
    .region stack 0x28 9 public
    start:
      call f
      call f
      jmp done
    f:
      rv = add rv, 1
      ret
    done:
  )");
  Machine M(P);
  SequentialResult R = runSequential(M, Configuration::initial(P));
  ASSERT_FALSE(R.Run.Stuck) << R.Run.StuckReason;
  EXPECT_TRUE(R.Run.Final.isFinal(P));
  EXPECT_EQ(R.Run.Final.Regs.get(*P.regByName("rv")).Bits, 2u);
  EXPECT_EQ(R.Run.Final.Regs.get(Reg::sp()), Value::pub(0x30));
  // Each ret's jump resolved correctly through the RSB: no rollbacks.
  for (const StepRecord &S : R.Run.Trace)
    EXPECT_FALSE(S.Obs.Rollback);
}

TEST(Sequential, RetpolineMismatchIsTheOneAllowedRollback) {
  // The canonical sequential schedule never mispredicts — except a ret
  // whose RSB prediction genuinely disagrees with the stored return
  // address (Figure 13's construction overwrites it on purpose).
  Program P = parseAsmOrDie(R"(
    .reg rt
    .init rt @real
    .init rsp 0x30
    .region stack 0x28 9 public
    start:
      call body
    trap:
      jmp trap
    body:
      store rt, [rsp]
      ret
    real:
      rt = mov 0
  )");
  Machine M(P);
  SequentialResult R = runSequential(M, Configuration::initial(P));
  ASSERT_FALSE(R.Run.Stuck) << R.Run.StuckReason;
  EXPECT_TRUE(R.Run.Final.isFinal(P));
  unsigned Rollbacks = 0;
  for (const StepRecord &S : R.Run.Trace)
    Rollbacks += S.Obs.Rollback ? 1 : 0;
  EXPECT_EQ(Rollbacks, 1u);
  EXPECT_EQ(R.Run.Final.Regs.get(*P.regByName("rt")).Bits, 0u);
}

TEST(Sequential, RespectsBaseIndexScaleAddressing) {
  Program P = parseAsmOrDie(R"(
    .reg ra rb
    .init ra 3
    .region D 0x40 32 public
    .data 0x46 99
    start:
      rb = load [0x40, ra, 2]   ; base + index*scale = 0x40 + 3*2
  )");
  MachineOptions Opts;
  Opts.Addressing = AddrMode::BaseIndexScale;
  Machine M(P, Opts);
  SequentialResult R = runSequential(M, Configuration::initial(P));
  ASSERT_FALSE(R.Run.Stuck);
  EXPECT_EQ(R.Run.Final.Regs.get(*P.regByName("rb")).Bits, 99u);
}

//===----------------------------------------------------------------------===//
// Random scheduler
//===----------------------------------------------------------------------===//

TEST(RandomScheduler, RespectsTheSpeculationWindow) {
  Program P = parseAsmOrDie(R"(
    .reg ra
    start:
      ra = mov 1
      ra = mov 2
      ra = mov 3
      ra = mov 4
      ra = mov 5
      ra = mov 6
  )");
  Machine M(P);
  RandomRunOptions Opts;
  Opts.Seed = 3;
  Opts.SpeculationWindow = 2;
  Opts.MaxSteps = 200;
  // Re-run the recorded schedule, checking the buffer never exceeds the
  // window.
  RunResult R = runRandom(M, Configuration::initial(P), Opts);
  Configuration C = Configuration::initial(P);
  size_t MaxSeen = 0;
  for (const StepRecord &S : R.Trace) {
    ASSERT_TRUE(M.step(C, S.D).has_value());
    MaxSeen = std::max(MaxSeen, C.Buf.size());
  }
  EXPECT_LE(MaxSeen, 2u);
}

TEST(RandomScheduler, AliasPredictionOnlyWhenEnabled) {
  Program P = parseAsmOrDie(R"(
    .reg ra rb
    .init ra 0x40
    start:
      store 7, [ra]
      rb = load [0x40]
  )");
  Machine M(P);
  for (bool Allow : {false, true}) {
    bool SawFwdGuess = false;
    for (uint64_t Seed = 0; Seed < 20; ++Seed) {
      RandomRunOptions Opts;
      Opts.Seed = Seed;
      Opts.AllowAliasPrediction = Allow;
      RunResult R = runRandom(M, Configuration::initial(P), Opts);
      for (const StepRecord &S : R.Trace)
        if (S.D.K == Directive::Kind::ExecuteFwd)
          SawFwdGuess = true;
    }
    EXPECT_EQ(SawFwdGuess, Allow);
  }
}

} // namespace
