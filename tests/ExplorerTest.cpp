//===- tests/ExplorerTest.cpp - Worst-case schedule exploration -------------===//

#include "sched/ScheduleExplorer.h"

#include "checker/SctChecker.h"
#include "isa/AsmParser.h"
#include "workloads/Figures.h"
#include "workloads/SpectreSuites.h"

#include <gtest/gtest.h>

using namespace sct;

namespace {

ExploreResult exploreProgram(const Program &P, const ExplorerOptions &Opts) {
  Machine M(P);
  return explore(M, Configuration::initial(P), Opts);
}

TEST(Explorer, StraightLinePublicProgramIsOneSchedule) {
  Program P = parseAsmOrDie(R"(
    .reg ra rb
    start:
      ra = mov 1
      rb = add ra, 2
      store rb, [0x40]
      ra = load [0x40]
  )");
  ExplorerOptions Opts;
  Opts.ExploreForwardingHazards = false;
  ExploreResult R = exploreProgram(P, Opts);
  EXPECT_TRUE(R.secure());
  EXPECT_EQ(R.SchedulesCompleted, 1u);
  EXPECT_FALSE(R.Truncated);
}

TEST(Explorer, BranchDoublesTheScheduleCount) {
  Program P = parseAsmOrDie(R"(
    .reg ra
    .init ra 1
    start:
      br ult ra, 4 -> a, b
    a:
      ra = mov 1
    b:
      ra = mov 2
  )");
  ExplorerOptions Opts;
  Opts.ExploreForwardingHazards = false;
  ExploreResult R = exploreProgram(P, Opts);
  EXPECT_EQ(R.SchedulesCompleted, 2u); // Correct + mispredicted.
}

TEST(Explorer, StopAtFirstLeakShortCircuits) {
  FigureCase C = figure1();
  ExplorerOptions Opts = C.CheckOpts;
  ExploreResult Full = exploreProgram(C.Prog, Opts);
  Opts.StopAtFirstLeak = true;
  ExploreResult Short = exploreProgram(C.Prog, Opts);
  EXPECT_FALSE(Short.secure());
  EXPECT_LE(Short.TotalSteps, Full.TotalSteps);
  EXPECT_EQ(Short.Leaks.size(), 1u);
}

TEST(Explorer, LeaksDeduplicateAcrossSchedules) {
  FigureCase C = figure1();
  ExploreResult R = exploreProgram(C.Prog, C.CheckOpts);
  ASSERT_FALSE(R.secure());
  // The same (origin, kind) leak shows up in many schedules but is
  // reported once; the raw event count keeps the tally.
  EXPECT_GE(R.LeakEvents, R.Leaks.size());
  for (size_t I = 0; I < R.Leaks.size(); ++I)
    for (size_t J = I + 1; J < R.Leaks.size(); ++J)
      EXPECT_NE(R.Leaks[I].key(), R.Leaks[J].key());
}

TEST(Explorer, BudgetsTruncateGracefully) {
  SuiteCase C = spectreV11Cases()[0];
  ExplorerOptions Opts = v1v11Mode();
  Opts.MaxTotalSteps = 10;
  ExploreResult R = exploreProgram(C.Prog, Opts);
  EXPECT_TRUE(R.Truncated);
  EXPECT_LE(R.TotalSteps, 12u); // Allow the in-flight step to finish.
}

TEST(Explorer, SpeculationBoundLimitsLeakDepth) {
  // A v1 gadget pushed deep behind the branch: a small speculation bound
  // cannot reach the leak, a larger one can — the tradeoff §4.2 reports.
  std::string Body = R"(
    .reg ra rb rc
    .init ra 9
    .region A   0x40 4 public
    .region Key 0x48 8 secret
    start:
      br ult ra, 4 -> body, end
    body:
  )";
  for (int Pad = 0; Pad < 10; ++Pad)
    Body += "      rc = add rc, 1\n";
  Body += R"(
      rb = load [0x40, ra]
      rc = load [0x44, rb]
    end:
  )";
  Program P = parseAsmOrDie(Body);

  ExplorerOptions Narrow = v1v11Mode();
  Narrow.SpeculationBound = 6; // Leak sits ~12 instructions deep.
  EXPECT_TRUE(exploreProgram(P, Narrow).secure());

  ExplorerOptions Wide = v1v11Mode();
  Wide.SpeculationBound = 20;
  EXPECT_FALSE(exploreProgram(P, Wide).secure());
}

TEST(Explorer, ExhaustiveForwardForksAgreeOnSuiteVerdicts) {
  // The targeted (shadowed-store) forks and the full B.18 fork set agree
  // on every v1.1/v4 case verdict.
  std::vector<SuiteCase> Cases = spectreV11Cases();
  for (const SuiteCase &C : spectreV4Cases())
    Cases.push_back(C);
  for (const SuiteCase &C : Cases) {
    ExplorerOptions Targeted = v4Mode();
    ExplorerOptions Exhaustive = v4Mode();
    Exhaustive.ExhaustiveForwardForks = true;
    ExploreResult A = exploreProgram(C.Prog, Targeted);
    ExploreResult B = exploreProgram(C.Prog, Exhaustive);
    EXPECT_EQ(A.secure(), B.secure()) << C.Id;
  }
}

TEST(Explorer, AliasPredictionAddsOnlyNewLeaks) {
  // Figure 2's gadget leaks only under alias prediction; Figure 1's leak
  // set is unchanged by enabling it.
  FigureCase F1 = figure1();
  ExplorerOptions Plain;
  ExplorerOptions WithAlias;
  WithAlias.ExploreAliasPrediction = true;
  ExploreResult A = exploreProgram(F1.Prog, Plain);
  ExploreResult B = exploreProgram(F1.Prog, WithAlias);
  EXPECT_EQ(A.secure(), B.secure());

  FigureCase F2 = figure2();
  EXPECT_TRUE(exploreProgram(F2.Prog, Plain).secure());
  EXPECT_FALSE(exploreProgram(F2.Prog, WithAlias).secure());
}

TEST(Explorer, WitnessSchedulesAreMinimalPrefixes) {
  // Each witness ends exactly at its leaking step.
  FigureCase C = figure7();
  ExploreResult R = exploreProgram(C.Prog, v4Mode());
  ASSERT_FALSE(R.secure());
  Machine M(C.Prog);
  for (const LeakRecord &L : R.Leaks) {
    RunResult Replay = runSchedule(M, Configuration::initial(C.Prog),
                                   L.Sched);
    ASSERT_FALSE(Replay.Stuck);
    EXPECT_TRUE(Replay.Trace.back().Obs.isSecret());
    // No earlier step of this schedule shows this same leak... the final
    // step is the first occurrence for minimal witnesses.
    EXPECT_EQ(Replay.Trace.back().Obs, L.Obs);
  }
}

TEST(Explorer, RetpolineSurvivesAllAttackerKnobs) {
  FigureCase C = figure13();
  ExplorerOptions Opts = C.CheckOpts;
  Opts.ExploreAliasPrediction = true;
  ExploreResult R = exploreProgram(C.Prog, Opts);
  EXPECT_TRUE(R.secure());
}

} // namespace

namespace {

TEST(Explorer, SpectreV2ViaFunctionPointer) {
  // The indirect-call analogue of Figure 11: a vtable-style dispatch the
  // attacker mistrains toward a gadget.  Flagged only when the checker is
  // told the mistraining target, like jmpi.
  Program P = parseAsmOrDie(R"(
    .reg rf rc rd
    .init rf @handler
    .init rsp 0x20
    .region stack 0x18 9 public
    .region B   0x44 4 public
    .region Key 0x48 4 secret
    .data 0x48 5 6 7 8
    start:
      rc = load [0x48]       ; secret value in a register (public address)
      calli [rf]
    after:
      rd = mov 0
      jmp done
    gadget:
      rd = load [0x44, rc]   ; leaks rc
    handler:
      ret
    done:
  )");
  ExplorerOptions Plain;
  EXPECT_TRUE(exploreProgram(P, Plain).secure());
  ExplorerOptions Mistrained;
  Mistrained.IndirectTargets = {P.codeLabels().at("gadget")};
  ExploreResult R = exploreProgram(P, Mistrained);
  EXPECT_FALSE(R.secure());
  // The leak is in the gadget, with the secret in the address.
  ASSERT_FALSE(R.Leaks.empty());
  EXPECT_EQ(R.Leaks.front().Origin, P.codeLabels().at("gadget"));
}

} // namespace
