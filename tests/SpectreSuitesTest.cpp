//===- tests/SpectreSuitesTest.cpp - v1.1 and v4 suite verdicts -------------===//
//
// The paper's own suites (§4.2): v1.1 cases are found without
// forwarding-hazard detection; v4 cases only with it; all are
// sequentially constant-time.
//
//===----------------------------------------------------------------------===//

#include "workloads/SpectreSuites.h"

#include "checker/FenceInsertion.h"
#include "checker/SctChecker.h"
#include "checker/SequentialCt.h"

#include <gtest/gtest.h>

using namespace sct;

namespace {

class SpectreSuite : public ::testing::TestWithParam<SuiteCase> {};

TEST_P(SpectreSuite, AllThreeVerdictsMatch) {
  const SuiteCase &C = GetParam();
  EXPECT_EQ(!checkSequentialCt(C.Prog).secure(), C.ExpectSeqLeak) << C.Id;

  SctReport NoFwd = checkSct(C.Prog, v1v11Mode());
  EXPECT_EQ(!NoFwd.secure(), C.ExpectV1V11Leak)
      << C.Id << ": " << describeResult(C.Prog, NoFwd.Exploration);

  SctReport Fwd = checkSct(C.Prog, v4Mode());
  EXPECT_EQ(!Fwd.secure(), C.ExpectV4Leak)
      << C.Id << ": " << describeResult(C.Prog, Fwd.Exploration);
}

TEST_P(SpectreSuite, WitnessSchedulesReplay) {
  const SuiteCase &C = GetParam();
  Machine M(C.Prog);
  for (const ExplorerOptions &Mode : {v1v11Mode(), v4Mode()}) {
    SctReport R = checkSct(C.Prog, Mode);
    for (const LeakRecord &L : R.Exploration.Leaks) {
      RunResult Replay =
          runSchedule(M, Configuration::initial(C.Prog), L.Sched);
      ASSERT_FALSE(Replay.Stuck) << C.Id << ": " << Replay.StuckReason;
      EXPECT_TRUE(Replay.Trace.back().Obs.isSecret()) << C.Id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    V11, SpectreSuite, ::testing::ValuesIn(spectreV11Cases()),
    [](const ::testing::TestParamInfo<SuiteCase> &Info) {
      std::string Name = Info.param.Id;
      for (char &Ch : Name)
        if (Ch == '-' || Ch == '.')
          Ch = '_';
      return Name;
    });

INSTANTIATE_TEST_SUITE_P(
    V4, SpectreSuite, ::testing::ValuesIn(spectreV4Cases()),
    [](const ::testing::TestParamInfo<SuiteCase> &Info) {
      std::string Name = Info.param.Id;
      for (char &Ch : Name)
        if (Ch == '-' || Ch == '.')
          Ch = '_';
      return Name;
    });

TEST(SpectreSuiteMitigations, FencesAfterStoresFixV4Cases) {
  // A fence between every store and younger loads forces the memory
  // commit before the load can execute — the §3.6 mitigation for v4.
  for (const SuiteCase &C : spectreV4Cases()) {
    MitigationResult FR = FenceInsertion(FencePolicy::AfterStores).run(C.Prog);
    ASSERT_TRUE(FR.ok()) << C.Id;
    Program Fenced = std::move(FR.Prog);
    ASSERT_TRUE(Fenced.validate().empty()) << C.Id;
    SctReport R = checkSct(Fenced, v4Mode());
    EXPECT_TRUE(R.secure())
        << C.Id << ": " << describeResult(Fenced, R.Exploration);
  }
}

TEST(SpectreSuiteMitigations, BranchFencesFixV11Cases) {
  for (const SuiteCase &C : spectreV11Cases()) {
    MitigationResult FR = FenceInsertion(FencePolicy::BranchTargets).run(C.Prog);
    ASSERT_TRUE(FR.ok()) << C.Id;
    Program Fenced = std::move(FR.Prog);
    ASSERT_TRUE(Fenced.validate().empty()) << C.Id;
    SctReport R = checkSct(Fenced, v1v11Mode());
    EXPECT_TRUE(R.secure())
        << C.Id << ": " << describeResult(Fenced, R.Exploration);
  }
}

} // namespace
