//===- tests/SpsDifferentialTest.cpp - Two oracles, one property ------------===//
//
// The SPS proof backend (checker/SpsChecker.h) and the schedule explorer
// are independent oracles for speculative constant-time: one enumerates
// misprediction-oracle tapes over a sequential translation, the other
// walks reorder-buffer schedules.  This suite pins their agreement:
//
//   - handcrafted gadgets where each verdict (counterexample, proof,
//     architectural leak) is known, including the fence-shadowed nested
//     branch shape the fuzzer originally caught the explorer missing;
//   - a seeded differential fuzz sweep over random programs with bounded
//     loops and table-load (v1) gadgets, asserting leak-found iff
//     SPS-counterexample on every conclusive run, with the failing seed
//     and program printed on disagreement.
//
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"

#include "checker/DifferentialChecker.h"
#include "checker/FenceInsertion.h"
#include "checker/SctChecker.h"
#include "checker/SpsChecker.h"
#include "isa/AsmParser.h"
#include "isa/AsmPrinter.h"
#include "sched/ScheduleExplorer.h"

#include <gtest/gtest.h>

using namespace sct;

namespace {

ExploreResult exploreProgram(const Program &P, const ExplorerOptions &Opts) {
  Machine M(P);
  return explore(M, Configuration::initial(P), Opts);
}

/// The classic v1 gadget: a bounds check guarding pub[idx], then a
/// dependent table load.  Architecturally constant-time; the mispredicted
/// check leaks sec[] through the second load's address.
Program v1Gadget() {
  return parseAsmOrDie(R"(
    .reg idx val t
    .init idx 12
    .region pub   0x40 8 public
    .region sec   0x48 8 secret
    .region table 0x60 16 public
    .data 0x48 3 1 4 1 5 9 2 6
    start:
      br ult idx, 8 -> body, end
    body:
      val = load [0x40, idx]
      t = load [0x60, val]
    end:
      t = mov 0
  )");
}

//===----------------------------------------------------- handcrafted ----===//

TEST(SpsBackend, V1GadgetYieldsSpeculativeCounterExample) {
  Program P = v1Gadget();
  SpsReport S = checkSps(P, v1v11Mode());
  ASSERT_TRUE(S.conclusive()) << S.Reason;
  ASSERT_EQ(S.Verdict, SpsVerdict::CounterExample);
  // The leak is the table load (pc 2), on a wrong path, and the tape
  // reproducing it mispredicts the very first consult.
  EXPECT_TRUE(S.hasCounterExampleAt(2));
  for (const SpsCounterExample &C : S.CounterExamples) {
    EXPECT_TRUE(C.Speculative) << "architecturally this program is CT";
    ASSERT_FALSE(C.Tape.empty());
    EXPECT_EQ(C.Tape.front(), 1u);
  }
  // Both oracles, same verdict, same origins.
  SpsCrossCheck X =
      crossValidateSps(P, v1v11Mode(), exploreProgram(P, v1v11Mode()));
  EXPECT_FALSE(X.Skipped) << X.SkipReason;
  EXPECT_TRUE(X.agrees());
}

TEST(SpsBackend, FencedV1GadgetProvedLeakFree) {
  MitigationResult FR =
      FenceInsertion(FencePolicy::BranchTargets).run(v1Gadget());
  ASSERT_TRUE(FR.ok());
  SpsReport S = checkSps(FR.Prog, v1v11Mode());
  ASSERT_TRUE(S.conclusive()) << S.Reason;
  EXPECT_TRUE(S.proved());
  EXPECT_TRUE(S.Complete);
  // Fences collapse the excursions: the tape tree stays tiny.
  EXPECT_LE(S.TapesRun, 64u);
}

TEST(SpsBackend, ArchitecturalSecretBranchIsNonSpeculativeCounterExample) {
  // A branch directly on secret data leaks sequentially — the SPS
  // counterexample must say so (Speculative = false), on the empty tape.
  Program P = parseAsmOrDie(R"(
    .reg s t
    .region sec 0x48 4 secret
    .data 0x48 7 7 7 7
    start:
      s = load [0x48]
      br eq s, 7 -> a, b
    a:
      t = mov 1
    b:
      t = mov 0
  )");
  SpsReport S = checkSps(P, v1v11Mode());
  ASSERT_EQ(S.Verdict, SpsVerdict::CounterExample);
  ASSERT_TRUE(S.hasCounterExampleAt(1));
  bool SawArchitectural = false;
  for (const SpsCounterExample &C : S.CounterExamples)
    if (C.Origin == 1 && !C.Speculative && C.Tape.empty())
      SawArchitectural = true;
  EXPECT_TRUE(SawArchitectural);
}

TEST(SpsBackend, FenceShadowedNestedBranchAgreesBothWays) {
  // Regression for an explorer gap this differential suite caught: with
  // an architectural fence in flight, wrong-path branches fetch
  // unresolved (probeBranchCorrect cannot run), and forcing only the
  // front-most unresolved entry squashed a nested branch — whose
  // condition had turned secret via a wrong-path load — before its jump
  // observation ever happened.  SPS reported the leak; the explorer
  // missed it until forceOldest learned to resolve nested
  // correctly-guessed control first.
  Program P = parseAsmOrDie(R"(
    .reg ra rb
    .init ra 0
    .region pub 0x40 8 public
    .region sec 0x48 8 secret
    .data 0x48 5 5 5 5 5 5 5 5
    start:
      fence
      br ult ra, ra -> wrong, rest
    wrong:
      rb = load [0x48]
      br eq rb, 2 -> rest, rest
    rest:
      ra = mov 0
  )");
  // pcs: 0 fence, 1 branch, 2 wrong-path load, 3 nested branch, 4 mov.
  ExploreResult R = exploreProgram(P, v1v11Mode());
  ASSERT_FALSE(R.Truncated);
  bool ExplorerSawNestedBranch = false;
  for (const LeakRecord &L : R.Leaks)
    ExplorerSawNestedBranch |= L.Origin == 3;
  EXPECT_TRUE(ExplorerSawNestedBranch)
      << "the nested wrong-path branch must be observed before rollback";

  SpsReport S = checkSps(P, v1v11Mode());
  ASSERT_EQ(S.Verdict, SpsVerdict::CounterExample);
  EXPECT_TRUE(S.hasCounterExampleAt(3));

  SpsCrossCheck X = crossValidateSps(P, v1v11Mode(), R);
  EXPECT_FALSE(X.Skipped) << X.SkipReason;
  EXPECT_TRUE(X.agrees());
}

//===------------------------------------------------------- fuzz sweep ---===//

// The sweep's explorer fragment: window and depth small enough that both
// oracles finish on most seeds, hazards off (the fragment SPS models).
ExplorerOptions fuzzMode() {
  ExplorerOptions Mode;
  Mode.SpeculationBound = 16;
  Mode.MaxBranchDepth = 4;
  Mode.ExploreForwardingHazards = false;
  Mode.MaxTotalSteps = 1u << 22;
  Mode.Threads = 1; // Deterministic truncation, reproducible seeds.
  return Mode;
}

TEST(SpsDifferentialFuzz, LeakFoundIffSpsCounterExample) {
  RandomProgramOptions RO;
  RO.MinLength = 6;
  RO.MaxLength = 14;
  RO.WithLoops = true;
  RO.WithTableLoads = true;
  SpsOptions SO;
  SO.MaxTapes = 2048;

  const uint64_t Seeds = 420;
  unsigned Conclusive = 0, Leaky = 0, Disagreements = 0;
  for (uint64_t Seed = 1; Seed <= Seeds; ++Seed) {
    Program P = randomProgram(Seed, RO);
    ASSERT_TRUE(P.validate().empty()) << "seed " << Seed;
    ExploreResult R = exploreProgram(P, fuzzMode());
    SpsCrossCheck X = crossValidateSps(P, fuzzMode(), R, {}, SO);
    if (X.Skipped)
      continue; // A budget gave out on one side; neither is authoritative.
    ++Conclusive;
    Leaky += !R.Leaks.empty();
    if (!X.agrees()) {
      ++Disagreements;
      ADD_FAILURE() << "oracle disagreement at seed " << Seed << ": explorer "
                    << R.Leaks.size() << " leak(s), SPS "
                    << X.Sps.CounterExamples.size()
                    << " counterexample(s), verdictsAgree=" << X.VerdictsAgree
                    << ", unmatched origins=" << X.Unmatched.size() << "\n"
                    << printAsm(P);
    }
  }
  EXPECT_EQ(Disagreements, 0u);
  // The sweep must actually exercise both verdicts, at scale.
  EXPECT_GE(Conclusive, 200u);
  EXPECT_GT(Leaky, 50u);
  EXPECT_GT(Conclusive - Leaky, 50u);
}

} // namespace
