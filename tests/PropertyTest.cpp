//===- tests/PropertyTest.cpp - The paper's metatheory, randomized ----------===//
//
// Appendix B as executable properties over random programs and random
// well-formed schedules:
//   - Lemma B.1   determinism of the step relation
//   - Theorem B.7 sequential equivalence (any well-formed prefix with N
//                 retires matches the canonical sequential machine run N)
//   - Corollary B.8 general consistency (all terminal runs agree)
//   - Theorem B.9 / Corollary B.10 label stability (secret-free
//                 speculative traces imply secret-free sequential traces)
//   - Theorem B.20 (scoped) worst-case schedule soundness: no random
//                 schedule finds a leak the explorer misses
//
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"

#include "checker/SctChecker.h"
#include "checker/SequentialCt.h"
#include "sched/RandomScheduler.h"
#include "sched/ScheduleExplorer.h"
#include "sched/SequentialScheduler.h"

#include <gtest/gtest.h>

using namespace sct;

namespace {

class RandomizedMetatheory : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomizedMetatheory, SequentialEquivalenceTheoremB7) {
  uint64_t Seed = GetParam();
  Program P = randomProgram(Seed);
  ASSERT_TRUE(P.validate().empty());
  Machine M(P);

  // A random well-formed schedule (any prefix is well-formed too).
  RandomRunOptions Ropts;
  Ropts.Seed = Seed * 31 + 7;
  Ropts.MaxSteps = 400;
  RunResult Speculative = runRandom(M, Configuration::initial(P), Ropts);

  // The canonical sequential machine, run for the same retire count.
  SequentialResult Seq =
      runSequentialN(M, Configuration::initial(P), Speculative.Retires);
  ASSERT_FALSE(Seq.Run.Stuck) << Seq.Run.StuckReason;
  ASSERT_EQ(Seq.Run.Retires, Speculative.Retires);

  // ≈: registers and memory agree; speculative state may differ.
  EXPECT_TRUE(Speculative.Final.sameArchState(Seq.Run.Final))
      << "seed " << Seed;
}

TEST_P(RandomizedMetatheory, DeterminismLemmaB1) {
  uint64_t Seed = GetParam();
  Program P = randomProgram(Seed);
  Machine M(P);

  RandomRunOptions Ropts;
  Ropts.Seed = Seed ^ 0x9E3779B97F4A7C15ull;
  Ropts.MaxSteps = 200;
  RunResult First = runRandom(M, Configuration::initial(P), Ropts);

  // Replay the exact directive sequence: everything must coincide.
  Schedule D;
  for (const StepRecord &R : First.Trace)
    D.push_back(R.D);
  RunResult Second = runSchedule(M, Configuration::initial(P), D);
  ASSERT_FALSE(Second.Stuck) << Second.StuckReason;
  EXPECT_TRUE(First.Final == Second.Final) << "seed " << Seed;
  ASSERT_EQ(First.Trace.size(), Second.Trace.size());
  for (size_t I = 0; I < First.Trace.size(); ++I) {
    EXPECT_EQ(First.Trace[I].Obs, Second.Trace[I].Obs);
    EXPECT_EQ(First.Trace[I].Rule, Second.Trace[I].Rule);
  }
}

TEST_P(RandomizedMetatheory, TerminalConsistencyCorollaryB8) {
  uint64_t Seed = GetParam();
  Program P = randomProgram(Seed);
  Machine M(P);

  // Drive two different random runs to completion (keep sampling
  // directives until the configuration is final).
  auto RunToCompletion = [&](uint64_t SubSeed) -> std::optional<Configuration> {
    Configuration C = Configuration::initial(P);
    std::mt19937_64 Rng(SubSeed);
    for (unsigned Step = 0; Step < 4000; ++Step) {
      if (C.isFinal(P))
        return C;
      std::vector<Directive> Ds = M.applicableDirectives(C);
      if (Ds.empty())
        return std::nullopt; // Stalled (e.g. empty-RSB policies).
      Directive D = Ds[Rng() % Ds.size()];
      if (!M.step(C, D))
        return std::nullopt;
    }
    return std::nullopt; // Did not converge within the bound.
  };

  auto A = RunToCompletion(Seed * 3 + 1);
  auto B = RunToCompletion(Seed * 5 + 2);
  if (!A || !B)
    GTEST_SKIP() << "random runs did not reach a final configuration";
  EXPECT_TRUE(A->sameArchState(*B)) << "seed " << Seed;

  // And both agree with the canonical sequential execution.
  SequentialResult Seq = runSequential(M, Configuration::initial(P));
  if (!Seq.Run.Stuck && !Seq.HitBound)
    EXPECT_TRUE(A->sameArchState(Seq.Run.Final)) << "seed " << Seed;
}

TEST_P(RandomizedMetatheory, ExplorerSoundnessTheoremB20) {
  uint64_t Seed = GetParam();
  RandomProgramOptions POpts;
  POpts.WithCalls = false; // Scope: the fragment Pitchfork explores.
  Program P = randomProgram(Seed, POpts);
  Machine M(P);

  // Union of the two checker modes (§4.2.1).
  bool ExplorerFindsLeak = !checkSct(P, v1v11Mode()).secure() ||
                           !checkSct(P, v4Mode()).secure();

  // Many random schedules within the speculation window.
  bool RandomFindsLeak = false;
  for (unsigned Round = 0; Round < 12 && !RandomFindsLeak; ++Round) {
    RandomRunOptions Ropts;
    Ropts.Seed = Seed * 131 + Round;
    Ropts.MaxSteps = 600;
    Ropts.SpeculationWindow = 20;
    RunResult R = runRandom(M, Configuration::initial(P), Ropts);
    RandomFindsLeak = R.hasSecretObservation();
  }

  if (RandomFindsLeak)
    EXPECT_TRUE(ExplorerFindsLeak) << "seed " << Seed;
}

TEST_P(RandomizedMetatheory, LabelStabilityCorollaryB10) {
  uint64_t Seed = GetParam();
  Program P = randomProgram(Seed);
  Machine M(P);

  // If the worst-case speculative exploration is secret-free, the
  // sequential trace must be too (B.10 is the schedule-by-schedule
  // statement; the explorer covers the worst cases).
  bool SpecClean =
      checkSct(P, v1v11Mode()).secure() && checkSct(P, v4Mode()).secure();
  if (!SpecClean)
    GTEST_SKIP() << "program leaks speculatively";
  EXPECT_TRUE(checkSequentialCt(P).secure()) << "seed " << Seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedMetatheory,
                         ::testing::Range(uint64_t(1), uint64_t(61)));

//===----------------------------------------------------------------------===//
// SCT implies sequential CT on the full workload zoo (Proposition B.11)
//===----------------------------------------------------------------------===//

TEST(PropositionB11, SctImpliesSequentialCtOnSuites) {
  // Checked structurally across the suites in their own tests; here we
  // assert the contrapositive over random programs: a sequential leak
  // must show up speculatively too (sequential schedules are a subset of
  // well-formed schedules).
  for (uint64_t Seed = 100; Seed < 140; ++Seed) {
    Program P = randomProgram(Seed);
    if (checkSequentialCt(P).secure())
      continue;
    bool SpecFinds = !checkSct(P, v1v11Mode()).secure() ||
                     !checkSct(P, v4Mode()).secure();
    EXPECT_TRUE(SpecFinds) << "seed " << Seed;
  }
}

} // namespace
