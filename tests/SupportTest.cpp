//===- tests/SupportTest.cpp - Support utilities and pretty-printing --------===//

#include "support/Printing.h"

#include "core/ReorderBuffer.h"
#include "isa/AsmParser.h"

#include <gtest/gtest.h>

using namespace sct;

namespace {

TEST(Printing, ToHex) {
  EXPECT_EQ(toHex(0), "0x0");
  EXPECT_EQ(toHex(0x4A), "0x4a");
  EXPECT_EQ(toHex(0xDEADBEEF), "0xdeadbeef");
}

TEST(Printing, JoinAndPadding) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(padLeft("x", 3), "  x");
  EXPECT_EQ(padRight("x", 3), "x  ");
  EXPECT_EQ(padLeft("long", 2), "long"); // Never truncates.
}

TEST(Printing, RenderTableAlignsColumns) {
  std::string T = renderTable({"a", "bb"}, {{"ccc", "d"}});
  // Header, rule, one row.
  EXPECT_EQ(T,
            "| a   | bb |\n"
            "|-----|----|\n"
            "| ccc | d  |\n");
}

TEST(TransientInstr, PaperNotationRendering) {
  Program P = parseAsmOrDie(R"(
    .reg ra rb
    start:
      rb = load [0x40, ra]
      store rb, [0x40]
      br ult ra, 4 -> start, e
    e:
  )");
  TransientInstr Load = TransientInstr::makeLoad(
      *P.regByName("rb"), {Operand::imm(0x40), Operand::reg(*P.regByName("ra"))},
      0);
  EXPECT_EQ(Load.str(P), "(rb = load([0x40, ra]))");

  TransientInstr Resolved = Load;
  Resolved.Kind = TransientKind::LoadResolved;
  Resolved.Val = Value::sec(22);
  Resolved.Dep = std::nullopt;
  Resolved.LoadAddr = 0x49;
  EXPECT_EQ(Resolved.str(P), "(rb = 22_sec{_, 0x49})");

  Resolved.Dep = 2;
  EXPECT_EQ(Resolved.str(P), "(rb = 22_sec{2, 0x49})");

  TransientInstr Branch = TransientInstr::makeBranch(
      Opcode::Ult, {Operand::reg(*P.regByName("ra")), Operand::imm(4)}, 0, 0,
      3, 2);
  EXPECT_EQ(Branch.str(P), "br(ult, [ra, 4], 0, (0, 3))");

  TransientInstr Jump = TransientInstr::makeJump(9, 0);
  EXPECT_EQ(Jump.str(P), "jump 9");

  TransientInstr Store = TransientInstr::makeStore(
      Operand::reg(*P.regByName("rb")), {Operand::imm(0x40)}, 1);
  // Single-immediate addresses are born resolved (§3.4).
  EXPECT_EQ(Store.str(P), "store(rb, 0x40_pub)");
}

TEST(TransientInstr, ResolvednessByKind) {
  TransientInstr Fence = TransientInstr::makeFence(0);
  EXPECT_TRUE(Fence.isResolved());
  TransientInstr Op =
      TransientInstr::makeOp(Reg::tmp(), Opcode::Mov, {Operand::imm(1)}, 0);
  EXPECT_FALSE(Op.isResolved());
  TransientInstr Val =
      TransientInstr::makeResolvedValue(Reg::tmp(), Value::pub(1), 0);
  EXPECT_TRUE(Val.isResolved());
  TransientInstr Store = TransientInstr::makeStore(
      Operand::imm(1), {Operand::reg(Reg::sp())}, 0);
  EXPECT_FALSE(Store.isResolved()); // Register address still pending.
}

TEST(ReorderBufferDump, MirrorsFigureLayout) {
  Program P = parseAsmOrDie(R"(
    .reg ra
    start:
      ra = mov 1
  )");
  ReorderBuffer Buf;
  Buf.push(TransientInstr::makeOp(*P.regByName("ra"), Opcode::Mov,
                                  {Operand::imm(1)}, 0));
  std::string Dump = dumpReorderBuffer(Buf, P);
  EXPECT_NE(Dump.find("1 -> (ra = op(mov, [1]))"), std::string::npos);
}

} // namespace
