//===- tests/FiguresTest.cpp - Paper figures as executable tests ------------===//
//
// Replays every worked figure of the paper against the semantics: the
// figure's own directive schedule must be well-formed, produce the
// figure's observations, and the checker must agree with the paper's
// verdict for each.
//
//===----------------------------------------------------------------------===//

#include "workloads/Figures.h"

#include "checker/SctChecker.h"
#include "checker/SequentialCt.h"

#include <gtest/gtest.h>

using namespace sct;

namespace {

RunResult replay(const FigureCase &C) {
  Machine M(C.Prog);
  return runSchedule(M, Configuration::initial(C.Prog), C.PaperSchedule);
}

/// Collects (kind, rollback, secret?) triples for compact assertions.
std::vector<std::string> obsSummary(const RunResult &R) {
  std::vector<std::string> Out;
  for (const Observation &O : R.observations())
    Out.push_back(O.str());
  return Out;
}

TEST(Figure1, PaperScheduleLeaksKeyByte) {
  FigureCase C = figure1();
  RunResult R = replay(C);
  ASSERT_FALSE(R.Stuck) << R.StuckReason;

  // Directive column of Figure 1: the first load reads Key[1] at public
  // address 0x49; the second leaks the secret-dependent address.
  ASSERT_EQ(R.Trace.size(), 5u);
  EXPECT_EQ(R.Trace[3].Rule, RuleId::LoadExecuteNodep);
  EXPECT_EQ(R.Trace[3].Obs.K, Observation::Kind::Read);
  EXPECT_EQ(R.Trace[3].Obs.Payload.Bits, 0x49u);
  EXPECT_TRUE(R.Trace[3].Obs.Payload.isPublic());

  EXPECT_EQ(R.Trace[4].Rule, RuleId::LoadExecuteNodep);
  EXPECT_EQ(R.Trace[4].Obs.K, Observation::Kind::Read);
  EXPECT_EQ(R.Trace[4].Obs.Payload.Bits, 0x44u + 22u); // 44 + Key[1]
  EXPECT_TRUE(R.Trace[4].Obs.Payload.isSecret());
  EXPECT_TRUE(R.hasSecretObservation());
}

TEST(Figure1, SequentiallyConstantTimeButNotSCT) {
  FigureCase C = figure1();
  EXPECT_TRUE(checkSequentialCt(C.Prog).secure());
  SctReport Report = checkSct(C.Prog, C.CheckOpts);
  EXPECT_FALSE(Report.secure());
}

TEST(Figure2, AliasPredictionForwardsAndLeaksSecret) {
  FigureCase C = figure2();
  Machine M(C.Prog);
  RunResult R = replay(C);
  ASSERT_FALSE(R.Stuck) << R.StuckReason;

  // execute 4 leaks the secret through the dependent load's address.
  const StepRecord &Leak = R.Trace[7];
  EXPECT_EQ(Leak.D, Directive::execute(4));
  EXPECT_EQ(Leak.Obs.K, Observation::Kind::Read);
  EXPECT_EQ(Leak.Obs.Payload.Bits, 0x48u + 9u); // 48 + x_sec
  EXPECT_TRUE(Leak.Obs.Payload.isSecret());

  // execute 2 : addr resolves the store elsewhere -> fwd 0x42, no hazard
  // (the guessed load has not resolved its address yet).
  const StepRecord &StoreAddr = R.Trace[8];
  EXPECT_EQ(StoreAddr.Rule, RuleId::StoreExecuteAddrOk);
  EXPECT_EQ(StoreAddr.Obs.Payload.Bits, 0x42u);

  // execute 3 detects the mispredicted alias and rolls back.
  const StepRecord &Hazard = R.Trace[9];
  EXPECT_EQ(Hazard.Rule, RuleId::LoadExecuteAddrHazard);
  EXPECT_TRUE(Hazard.Obs.Rollback);
  EXPECT_EQ(Hazard.Obs.Payload.Bits, 0x45u);
}

TEST(Figure2, FlaggedOnlyWithAliasPrediction) {
  FigureCase C = figure2();
  ExplorerOptions NoAlias = C.CheckOpts;
  NoAlias.ExploreAliasPrediction = false;
  EXPECT_TRUE(checkSct(C.Prog, NoAlias).secure());
  EXPECT_FALSE(checkSct(C.Prog, C.CheckOpts).secure());
  EXPECT_TRUE(checkSequentialCt(C.Prog).secure());
}

TEST(Figure4, CorrectPredictionResolvesToJump) {
  FigureCase C = figure4a();
  RunResult R = replay(C);
  ASSERT_FALSE(R.Stuck) << R.StuckReason;
  EXPECT_EQ(R.Trace.back().Rule, RuleId::CondExecuteCorrect);
  EXPECT_FALSE(R.Trace.back().Obs.Rollback);
  // The speculatively fetched else-instruction survives.
  EXPECT_EQ(R.Final.Buf.size(), 3u);
}

TEST(Figure4, MispredictionRollsBackTo4) {
  FigureCase C = figure4b();
  RunResult R = replay(C);
  ASSERT_FALSE(R.Stuck) << R.StuckReason;
  EXPECT_EQ(R.Trace.back().Rule, RuleId::CondExecuteIncorrect);
  EXPECT_TRUE(R.Trace.back().Obs.Rollback);
  // Everything younger than the branch is gone; the resolved jump remains.
  EXPECT_EQ(R.Final.Buf.size(), 2u);
  EXPECT_TRUE(R.Final.Buf.at(R.Final.Buf.maxIndex())
                  .is(TransientKind::Jump));
}

TEST(Figure5, LateStoreAddressRaisesHazard) {
  FigureCase C = figure5();
  RunResult R = replay(C);
  ASSERT_FALSE(R.Stuck) << R.StuckReason;

  // The load forwards 12 from the *older* store at 0x43.
  EXPECT_EQ(R.Trace[3].Rule, RuleId::LoadExecuteForward);
  EXPECT_EQ(R.Trace[3].Obs.K, Observation::Kind::Fwd);
  EXPECT_EQ(R.Trace[3].Obs.Payload.Bits, 0x43u);

  // Resolving the newer store's address exposes the stale forward.
  EXPECT_EQ(R.Trace[4].Rule, RuleId::StoreExecuteAddrHazard);
  EXPECT_TRUE(R.Trace[4].Obs.Rollback);
  EXPECT_EQ(R.Trace[4].Obs.Payload.Bits, 0x43u);
  // The load was discarded; the two stores remain.
  EXPECT_EQ(R.Final.Buf.size(), 2u);
}

TEST(Figure6, SpeculativeStoreForwardsSecretToBenignLoad) {
  FigureCase C = figure6();
  RunResult R = replay(C);
  ASSERT_FALSE(R.Stuck) << R.StuckReason;

  std::vector<std::string> Obs = obsSummary(R);
  // The benign load forwards the secret (fwd 0x45), and the dependent
  // load leaks it: read (0x48 + 9)_sec.
  EXPECT_EQ(R.Trace[9].Rule, RuleId::LoadExecuteForward);
  EXPECT_EQ(R.Trace[9].Obs.Payload.Bits, 0x45u);
  EXPECT_EQ(R.Trace[10].Obs.Payload.Bits, 0x48u + 6u); // 48 + Key[3]
  EXPECT_TRUE(R.Trace[10].Obs.Payload.isSecret());
  // Finally the bounds check resolves and rolls everything back.
  EXPECT_EQ(R.Trace[11].Rule, RuleId::CondExecuteIncorrect);
}

TEST(Figure6, FlaggedWithoutForwardingHazardDetection) {
  FigureCase C = figure6();
  EXPECT_FALSE(checkSct(C.Prog, C.CheckOpts).secure());
  EXPECT_TRUE(checkSequentialCt(C.Prog).secure());
}

TEST(Figure7, StaleLoadLeaksAndStoreResolutionRollsBack) {
  FigureCase C = figure7();
  RunResult R = replay(C);
  ASSERT_FALSE(R.Stuck) << R.StuckReason;

  // The load reads the stale secret from memory...
  EXPECT_EQ(R.Trace[3].Rule, RuleId::LoadExecuteNodep);
  EXPECT_EQ(R.Trace[3].Obs.Payload.Bits, 0x43u);
  // ...the dependent load leaks it...
  EXPECT_EQ(R.Trace[4].Obs.Payload.Bits, 0x44u + 44u);
  EXPECT_TRUE(R.Trace[4].Obs.Payload.isSecret());
  // ...and the store's address resolution detects the hazard.
  EXPECT_EQ(R.Trace[5].Rule, RuleId::StoreExecuteAddrHazard);
  EXPECT_TRUE(R.Trace[5].Obs.Rollback);
}

TEST(Figure7, FlaggedOnlyWithForwardingHazardDetection) {
  FigureCase C = figure7();
  EXPECT_TRUE(checkSct(C.Prog, v1v11Mode()).secure());
  EXPECT_FALSE(checkSct(C.Prog, v4Mode()).secure());
  EXPECT_TRUE(checkSequentialCt(C.Prog).secure());
}

TEST(Figure8, FenceBlocksTheLoads) {
  FigureCase C = figure8();
  Machine M(C.Prog);
  Configuration Conf = Configuration::initial(C.Prog);
  // Fetch the mispredicted path: branch, fence, both loads.
  for (const Directive &D :
       {Directive::fetchBool(true), Directive::fetch(), Directive::fetch(),
        Directive::fetch()})
    ASSERT_TRUE(M.step(Conf, D));
  // The loads cannot execute behind the fence.
  std::string Why;
  EXPECT_FALSE(M.step(Conf, Directive::execute(3), &Why));
  EXPECT_NE(Why.find("fence"), std::string::npos) << Why;
  EXPECT_FALSE(M.step(Conf, Directive::execute(4), &Why));
  // Executing the branch exposes the misprediction; everything rolls back.
  auto Out = M.step(Conf, Directive::execute(1));
  ASSERT_TRUE(Out);
  EXPECT_EQ(Out->Rule, RuleId::CondExecuteIncorrect);
  EXPECT_EQ(Conf.Buf.size(), 1u); // Only the resolved jump.
}

TEST(Figure8, SecureUnderFullExploration) {
  FigureCase C = figure8();
  EXPECT_TRUE(checkSct(C.Prog, C.CheckOpts).secure());
  ExplorerOptions WithHazards = v4Mode();
  EXPECT_TRUE(checkSct(C.Prog, WithHazards).secure());
}

TEST(Figure11, MistrainedIndirectJumpLeaksDespiteFence) {
  FigureCase C = figure11();
  RunResult R = replay(C);
  ASSERT_FALSE(R.Stuck) << R.StuckReason;
  const StepRecord &Leak = R.Trace.back();
  EXPECT_EQ(Leak.Obs.K, Observation::Kind::Read);
  EXPECT_EQ(Leak.Obs.Payload.Bits, 0x44u + 6u); // 0x44 + Key[1]
  EXPECT_TRUE(Leak.Obs.Payload.isSecret());
}

TEST(Figure11, FlaggedOnlyWithMistrainingTargets) {
  FigureCase C = figure11();
  ExplorerOptions NoTargets = C.CheckOpts;
  NoTargets.IndirectTargets.clear();
  EXPECT_TRUE(checkSct(C.Prog, NoTargets).secure());
  EXPECT_FALSE(checkSct(C.Prog, C.CheckOpts).secure());
}

TEST(Figure12, RsbUnderflowSendsSpeculationToGadget) {
  FigureCase C = figure12();
  RunResult R = replay(C);
  ASSERT_FALSE(R.Stuck) << R.StuckReason;
  EXPECT_TRUE(R.hasSecretObservation());
  // The final jump resolution rolls the gadget back.
  EXPECT_EQ(R.Trace.back().Rule, RuleId::JmpiExecuteIncorrect);
  EXPECT_TRUE(R.Trace.back().Obs.Rollback);
}

TEST(Figure12, FlaggedOnlyWithUnderflowTargets) {
  FigureCase C = figure12();
  ExplorerOptions NoTargets = C.CheckOpts;
  NoTargets.RsbUnderflowTargets.clear();
  EXPECT_TRUE(checkSct(C.Prog, NoTargets).secure());
  EXPECT_FALSE(checkSct(C.Prog, C.CheckOpts).secure());
}

TEST(Figure13, RetpolineDefeatsMistraining) {
  FigureCase C = figure13();
  // Even with the attacker steering both the (now absent) indirect jump
  // and RSB underflows toward the gadget, nothing leaks.
  EXPECT_FALSE(checkSct(C.Prog, C.CheckOpts).secure() == false)
      << "retpolined program must be secure";
  EXPECT_TRUE(checkSct(C.Prog, v4Mode()).secure());
}

TEST(Figure13, TransformPreservesArchitecturalBehaviour) {
  FigureCase C = figure13();
  Machine M(C.Prog);
  SequentialResult Seq = runSequential(M, Configuration::initial(C.Prog));
  ASSERT_FALSE(Seq.Run.Stuck) << Seq.Run.StuckReason;
  // The program must end at its real end, with rd = 0 (the legit path).
  EXPECT_TRUE(Seq.Run.Final.isFinal(C.Prog));
  Reg Rd = *C.Prog.regByName("rd");
  EXPECT_EQ(Seq.Run.Final.Regs.get(Rd).Bits, 0u);
}

TEST(AllFigures, CheckerMatchesPaperVerdicts) {
  for (const FigureCase &C : allFigures()) {
    SctReport Report = checkSct(C.Prog, C.CheckOpts);
    EXPECT_EQ(!Report.secure(), C.ExpectLeak) << C.Name;
    EXPECT_EQ(!checkSequentialCt(C.Prog).secure(), C.ExpectSequentialLeak)
        << C.Name;
  }
}

} // namespace
